// Package sdrad is the public API of SDRaD-Go, a reproduction of
// "Rewind & Discard: Improving Software Resilience using Isolated Domains"
// (Gülmez, Nyman, Baumann, Mühlberg — DSN 2023).
//
// SDRaD improves the resilience of software under run-time attack: instead
// of terminating a victim application when a memory-safety defense fires,
// it compartmentalizes the application into hardware-isolated domains,
// confines the attack's effects to the failing domain's memory, discards
// that memory, and rewinds the thread to a recovery point established
// before the domain began executing — so the application keeps serving its
// other clients.
//
// Because the original system is built on Intel Memory Protection Keys,
// per-thread PKRU state, setjmp/longjmp, and POSIX signals — none of which
// coexist with the Go runtime — this reproduction runs applications on a
// simulated substrate: a software MMU with full PKU semantics
// (sdrad/internal/mem), simulated signals, per-domain TLSF subheaps, and
// per-domain stacks with stack-protector canaries. Every byte of
// application state lives in the simulated address space, so the same bug
// classes fault the same way and the same recovery machinery repairs them.
//
// # Quick start
//
//	p := sdrad.NewProcess("myapp")
//	lib, err := sdrad.Setup(p)
//	...
//	err = p.Attach("main", func(t *sdrad.Thread) error {
//		const udiF = sdrad.UDI(1)
//		err := lib.Guard(t, udiF, func() error {
//			arg, _ := lib.Malloc(t, udiF, uint64(len(input)))
//			lib.WriteBytes(t, arg, input)    // copy argument in
//			if err := lib.Enter(t, udiF); err != nil {
//				return err
//			}
//			runRiskyParser(t, arg)           // isolated execution
//			return lib.Exit(t)
//		}, sdrad.Accessible())
//		var abn *sdrad.AbnormalExit
//		if errors.As(err, &abn) {
//			// The parser was attacked; its memory is already discarded.
//			// Close the offending connection and keep serving.
//		}
//		return nil
//	})
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package sdrad

import (
	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
)

// Re-exported core types. Aliases keep errors.Is/errors.As working across
// the package boundary.
type (
	// Library is the SDRaD reference monitor for one process.
	Library = core.Library
	// UDI is a user domain index (Table I of the paper).
	UDI = core.UDI
	// AbnormalExit reports a recovered attack: the failing domain index
	// and the detection oracle. Returned by Guard; match with errors.As.
	AbnormalExit = core.AbnormalExit
	// Kind distinguishes execution and data domains.
	Kind = core.Kind
	// InitOption configures domain initialization.
	InitOption = core.InitOption
	// SetupOption configures Setup.
	SetupOption = core.SetupOption
	// DestroyOption selects heap disposal on Destroy.
	DestroyOption = core.DestroyOption
	// Stats holds the monitor's activity counters.
	Stats = core.Stats

	// Process is a simulated OS process hosting the application.
	Process = proc.Process
	// Thread is a simulated thread; all SDRaD calls take the calling
	// thread explicitly (the substitute for thread-local state).
	Thread = proc.Thread
	// Addr is a virtual address in the simulated address space.
	Addr = mem.Addr
	// Prot is a page/domain protection bit set for DProtect.
	Prot = mem.Prot
	// Signal identifies the detection oracle in an AbnormalExit.
	Signal = sig.Signal
)

// RootUDI is the index of the root domain.
const RootUDI = core.RootUDI

// Domain kinds.
const (
	ExecDomain = core.ExecDomain
	DataDomain = core.DataDomain
)

// Destroy options.
const (
	NoHeapMerge = core.NoHeapMerge
	HeapMerge   = core.HeapMerge
)

// Protection bits for DProtect.
const (
	ProtNone  = mem.ProtNone
	ProtRead  = mem.ProtRead
	ProtWrite = mem.ProtWrite
	ProtRW    = mem.ProtRW
)

// Re-exported errors; see the core package for semantics.
var (
	ErrAlreadyInit    = core.ErrAlreadyInit
	ErrUnknownDomain  = core.ErrUnknownDomain
	ErrBadDomainKind  = core.ErrBadDomainKind
	ErrNotChild       = core.ErrNotChild
	ErrNoContext      = core.ErrNoContext
	ErrRootOperation  = core.ErrRootOperation
	ErrDomainBusy     = core.ErrDomainBusy
	ErrNotEntered     = core.ErrNotEntered
	ErrNoGrandparent  = core.ErrNoGrandparent
	ErrUDIInUse       = core.ErrUDIInUse
	ErrHeapExhausted  = core.ErrHeapExhausted
	ErrTooManyDomains = core.ErrTooManyDomains
)

// NewProcess creates a simulated process to host an SDRaD application.
func NewProcess(name string, opts ...proc.Option) *Process {
	return proc.NewProcess(name, opts...)
}

// WithSeed fixes the process random seed (canaries).
func WithSeed(seed int64) proc.Option { return proc.WithSeed(seed) }

// WithWRPKRUCost enables the WRPKRU cost model on the process address
// space: every PKRU write burns the given number of busy iterations,
// modeling the pipeline flush of the real instruction (used by the
// domain-switch profiling experiments).
func WithWRPKRUCost(iterations int) proc.Option {
	return proc.WithMemOptions(mem.WithWRPKRUCost(iterations))
}

// Setup links SDRaD into the process: it allocates protection keys, maps
// the monitor data domain, installs the fault handler, and arranges for
// every thread to start in the root domain.
func Setup(p *Process, opts ...SetupOption) (*Library, error) {
	return core.Setup(p, opts...)
}

// Setup options.
var (
	// WithDefaultStackSize sets the default nested-domain stack size.
	WithDefaultStackSize = core.WithDefaultStackSize
	// WithDefaultHeapSize sets the default nested-domain heap size.
	WithDefaultHeapSize = core.WithDefaultHeapSize
	// WithRootHeapSize sets the root-domain heap size.
	WithRootHeapSize = core.WithRootHeapSize
	// WithScrubOnDiscard zeroes discarded domain memory.
	WithScrubOnDiscard = core.WithScrubOnDiscard
	// WithStackReuse toggles the stack-reuse optimization (§IV-C).
	WithStackReuse = core.WithStackReuse
)

// Init options.
var (
	// Accessible makes the domain's memory accessible to its parent.
	Accessible = core.Accessible
	// AsData creates a data domain (shareable pages, no execution).
	AsData = core.AsData
	// HandlerAtGrandparent routes abnormal exits to the parent's
	// recovery point (Figure 2 of the paper).
	HandlerAtGrandparent = core.HandlerAtGrandparent
	// StackSize overrides the domain stack size.
	StackSize = core.StackSize
	// HeapSize overrides the domain heap size.
	HeapSize = core.HeapSize
)

// RewindEvent describes one absorbed attack, delivered to the observer
// registered with WithRewindObserver (incident reporting, paper §VI).
type RewindEvent = core.RewindEvent

// Observability and policy options (paper §VI).
var (
	// WithRewindObserver registers an incident callback per rewind.
	WithRewindObserver = core.WithRewindObserver
	// WithRewindLimit terminates the process after N absorbed rewinds,
	// forcing a restart that re-randomizes probabilistic defenses.
	WithRewindLimit = core.WithRewindLimit
)
