package sdrad_test

import (
	"errors"
	"testing"

	"sdrad"
)

// TestTableI_APISurface exercises every Table-I operation through the
// public package, pinning the API surface the paper documents:
// ① sdrad_init ② sdrad_malloc ③ sdrad_free ④ sdrad_dprotect
// ⑤ sdrad_enter ⑥ sdrad_exit ⑦ sdrad_destroy ⑧ sdrad_deinit.
func TestTableI_APISurface(t *testing.T) {
	p := sdrad.NewProcess("api-surface", sdrad.WithSeed(1))
	lib, err := sdrad.Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Attach("main", func(th *sdrad.Thread) error {
		const (
			udiF   = sdrad.UDI(1)
			udiDat = sdrad.UDI(2)
		)
		// ① init (data domain variant) + ② malloc + ④ dprotect
		if err := lib.InitDomain(th, udiDat, sdrad.AsData(), sdrad.Accessible()); err != nil {
			return err
		}
		shared, err := lib.Malloc(th, udiDat, 128)
		if err != nil {
			return err
		}
		th.CPU().WriteU64(shared, 1234)

		// ① init (execution domain, via Guard) ⑤ enter ⑥ exit ⑧ deinit
		err = lib.Guard(th, udiF, func() error {
			if err := lib.DProtect(th, udiF, udiDat, sdrad.ProtRead); err != nil {
				return err
			}
			if err := lib.Enter(th, udiF); err != nil {
				return err
			}
			if got := th.CPU().ReadU64(shared); got != 1234 {
				t.Errorf("shared read = %d", got)
			}
			if err := lib.Exit(th); err != nil {
				return err
			}
			return lib.Deinit(th, udiF)
		}, sdrad.Accessible())
		if err != nil {
			return err
		}
		// ③ free ⑦ destroy
		if err := lib.Free(th, udiDat, shared); err != nil {
			return err
		}
		if err := lib.Destroy(th, udiF, sdrad.NoHeapMerge); err != nil {
			return err
		}
		return lib.Destroy(th, udiDat, sdrad.NoHeapMerge)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicRewindFlow runs the quick-start scenario end to end: a guarded
// domain is attacked, the application observes an AbnormalExit through
// errors.As, and the process keeps running.
func TestPublicRewindFlow(t *testing.T) {
	p := sdrad.NewProcess("quickstart", sdrad.WithSeed(1))
	lib, err := sdrad.Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Attach("main", func(th *sdrad.Thread) error {
		const udi = sdrad.UDI(7)
		gerr := lib.Guard(th, udi, func() error {
			if err := lib.Enter(th, udi); err != nil {
				return err
			}
			th.CPU().WriteU8(0xBAD00000, 1)
			return nil
		})
		var abn *sdrad.AbnormalExit
		if !errors.As(gerr, &abn) {
			t.Fatalf("guard err = %v", gerr)
		}
		if abn.FailedUDI != udi {
			t.Errorf("failed = %d", abn.FailedUDI)
		}
		// Application continues.
		ptr, err := lib.Malloc(th, sdrad.RootUDI, 32)
		if err != nil {
			return err
		}
		return lib.Free(th, sdrad.RootUDI, ptr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Killed() {
		t.Error("process terminated despite rewind")
	}
	if lib.Stats().Rewinds.Load() != 1 {
		t.Error("rewind not counted")
	}
}

// TestErrorAliasesMatch verifies errors.Is works across the façade.
func TestErrorAliasesMatch(t *testing.T) {
	p := sdrad.NewProcess("alias", sdrad.WithSeed(1))
	lib, err := sdrad.Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Attach("main", func(th *sdrad.Thread) error {
		if err := lib.InitDomain(th, sdrad.RootUDI); !errors.Is(err, sdrad.ErrRootOperation) {
			t.Errorf("err = %v", err)
		}
		if err := lib.Enter(th, 99); !errors.Is(err, sdrad.ErrUnknownDomain) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
