// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md §5 for the experiment index):
//
//	BenchmarkFig4_MemcachedYCSB          — Figure 4 (per-op cost per variant/worker count)
//	BenchmarkTable_MemcachedRewind       — §V-A rewind latency
//	BenchmarkTable_MemcachedRestart      — §V-A restart+reload reference
//	BenchmarkFig5_NginxThroughput        — Figure 5 (per-request cost per variant/size)
//	BenchmarkTable_NginxRewind           — §V-B rewind latency
//	BenchmarkTable_NginxWorkerRestart    — §V-B worker-restart reference
//	BenchmarkTable_OpenSSLSpeed          — §V-C speed benchmark
//	BenchmarkTable_X509Rewind            — §V-C CVE-2022-3786 recovery
//	BenchmarkTable_DomainSwitch          — §V-B profiling (PKRU share)
//	BenchmarkAblation_*                  — DESIGN.md §6 ablations
//
// The cmd/sdrad-bench binary renders the same experiments as paper-style
// tables with relative overheads.
package sdrad_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sdrad"
	"sdrad/internal/cryptolib"
	"sdrad/internal/httpd"
	"sdrad/internal/memcache"
	"sdrad/internal/ycsb"
)

// --- Figure 4: Memcached YCSB -----------------------------------------------

func benchMemcachedOps(b *testing.B, variant memcache.Variant, workers int) {
	b.Helper()
	const records = 2000
	s, err := memcache.NewServer(memcache.Config{
		Variant:    variant,
		Workers:    workers,
		HashPower:  13,
		CacheBytes: records*1536 + 8<<20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	conn := s.NewConn()
	for i := 0; i < records; i++ {
		if _, _, err := conn.Do(memcache.FormatSet(ycsb.Key(i), ycsb.Value(i, 1024), 0)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	val := ycsb.Value(0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ycsb.Key(rng.Intn(records))
		var err error
		if rng.Float64() < 0.95 {
			_, _, err = conn.Do(memcache.FormatGet(key))
		} else {
			_, _, err = conn.Do(memcache.FormatSet(key, val, 0))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_MemcachedYCSB(b *testing.B) {
	for _, v := range []memcache.Variant{memcache.VariantVanilla, memcache.VariantTLSF, memcache.VariantSDRaD} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", v, workers), func(b *testing.B) {
				benchMemcachedOps(b, v, workers)
			})
		}
	}
}

// --- §V-A: Memcached recovery ------------------------------------------------

func BenchmarkTable_MemcachedRewind(b *testing.B) {
	s, err := memcache.NewServer(memcache.Config{
		Variant:    memcache.VariantSDRaD,
		Workers:    1,
		CacheBytes: 8 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	attack := memcache.FormatBSet("atk", 64<<20, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evil := s.NewConn()
		_, closed, err := evil.Do(attack)
		if err != nil || !closed {
			b.Fatalf("attack not recovered: closed=%v err=%v", closed, err)
		}
	}
	b.StopTimer()
	if s.Rewinds() != int64(b.N) {
		b.Fatalf("rewinds = %d, want %d", s.Rewinds(), b.N)
	}
}

func BenchmarkTable_MemcachedRestart(b *testing.B) {
	const records = 1000
	for i := 0; i < b.N; i++ {
		s, err := memcache.NewServer(memcache.Config{
			Variant:    memcache.VariantSDRaD,
			Workers:    1,
			CacheBytes: records*1536 + 8<<20,
		})
		if err != nil {
			b.Fatal(err)
		}
		conn := s.NewConn()
		for j := 0; j < records; j++ {
			if _, _, err := conn.Do(memcache.FormatSet(ycsb.Key(j), ycsb.Value(j, 1024), 0)); err != nil {
				b.Fatal(err)
			}
		}
		s.Stop()
	}
}

// --- Figure 5: NGINX throughput ----------------------------------------------

func benchNginxRequests(b *testing.B, variant httpd.Variant, sizeKiB int) {
	b.Helper()
	path := fmt.Sprintf("/f%dk.bin", sizeKiB)
	m, err := httpd.NewMaster(httpd.Config{
		Variant: variant,
		Workers: 1,
		Files:   map[string]int{path: sizeKiB * 1024},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	conn := m.Worker(0).NewConn()
	req := httpd.FormatRequest(path, true)
	b.SetBytes(int64(sizeKiB * 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _, err := conn.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.HasPrefix(resp, []byte("HTTP/1.1 200")) {
			b.Fatalf("resp = %q", resp[:20])
		}
	}
}

func BenchmarkFig5_NginxThroughput(b *testing.B) {
	for _, v := range []httpd.Variant{httpd.VariantVanilla, httpd.VariantTLSF, httpd.VariantSDRaD} {
		for _, kib := range []int{1, 16, 128} {
			b.Run(fmt.Sprintf("%s/size=%dKiB", v, kib), func(b *testing.B) {
				benchNginxRequests(b, v, kib)
			})
		}
	}
}

// --- §V-B: NGINX recovery ------------------------------------------------------

func BenchmarkTable_NginxRewind(b *testing.B) {
	m, err := httpd.NewMaster(httpd.Config{
		Variant: httpd.VariantSDRaD,
		Workers: 1,
		Files:   map[string]int{"/x": 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	w := m.Worker(0)
	attack := httpd.FormatRequest("/"+strings.Repeat("../", 200), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evil := w.NewConn()
		_, closed, err := evil.Do(attack)
		if err != nil || !closed {
			b.Fatalf("attack not recovered: closed=%v err=%v", closed, err)
		}
	}
}

func BenchmarkTable_NginxWorkerRestart(b *testing.B) {
	m, err := httpd.NewMaster(httpd.Config{
		Variant: httpd.VariantVanilla,
		Workers: 1,
		Files:   map[string]int{"/x": 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	attack := httpd.FormatRequest("/"+strings.Repeat("../", 200), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evil := m.Worker(0).NewConn()
		if _, _, err := evil.Do(attack); err == nil {
			b.Fatal("worker survived the attack")
		}
		if _, err := m.RestartWorker(0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §V-C: OpenSSL -------------------------------------------------------------

func benchOpenSSL(b *testing.B, mode cryptolib.Mode, size int) {
	b.Helper()
	p := sdrad.NewProcess("openssl-bench", sdrad.WithSeed(9))
	lib, err := sdrad.Setup(p, sdrad.WithRootHeapSize(4<<20))
	if err != nil {
		b.Fatal(err)
	}
	key := bytes.Repeat([]byte{0x33}, 32)
	err = p.Attach("main", func(t *sdrad.Thread) error {
		eng := cryptolib.NewEngine()
		cr, err := cryptolib.NewCrypto(t, lib, eng, mode, key, 65536)
		if err != nil {
			return err
		}
		var in, out sdrad.Addr
		if mode == cryptolib.ModeShared {
			in, out = cr.DataBuf(), cr.SharedOut()
		} else {
			if in, err = lib.Malloc(t, sdrad.RootUDI, uint64(size)); err != nil {
				return err
			}
			if out, err = lib.Malloc(t, sdrad.RootUDI, uint64(size)+cryptolib.GCMTagSize); err != nil {
				return err
			}
		}
		t.CPU().Memset(in, 0x61, size)
		b.SetBytes(int64(size))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cr.EncryptUpdate(t, out, in, size); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable_OpenSSLSpeed(b *testing.B) {
	for _, mode := range []cryptolib.Mode{cryptolib.ModeNative, cryptolib.ModeCopyOut, cryptolib.ModeCopyBoth, cryptolib.ModeShared} {
		for _, size := range []int{64, 1024, 32768} {
			b.Run(fmt.Sprintf("%s/size=%d", mode, size), func(b *testing.B) {
				benchOpenSSL(b, mode, size)
			})
		}
	}
}

func BenchmarkTable_X509Rewind(b *testing.B) {
	p := sdrad.NewProcess("x509-bench", sdrad.WithSeed(10))
	lib, err := sdrad.Setup(p)
	if err != nil {
		b.Fatal(err)
	}
	err = p.Attach("main", func(t *sdrad.Thread) error {
		v := cryptolib.NewVerifier(lib, 4096)
		evil := cryptolib.MaliciousCertificate()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, verr := v.Verify(t, evil)
			var abn *sdrad.AbnormalExit
			if !errors.As(verr, &abn) {
				return fmt.Errorf("attack %d: %v", i, verr)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- §V-B profiling + ablations -------------------------------------------------

func benchSwitch(b *testing.B, wrpkruIters int) {
	b.Helper()
	p := sdrad.NewProcess("switch-bench", sdrad.WithSeed(5),
		sdrad.WithWRPKRUCost(wrpkruIters))
	lib, err := sdrad.Setup(p)
	if err != nil {
		b.Fatal(err)
	}
	err = p.Attach("main", func(t *sdrad.Thread) error {
		return lib.Guard(t, 1, func() error {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := lib.Enter(t, 1); err != nil {
					return err
				}
				if err := lib.Exit(t); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable_DomainSwitch(b *testing.B) {
	for _, iters := range []int{0, 1600, 25600} {
		b.Run(fmt.Sprintf("wrpkru=%d", iters), func(b *testing.B) {
			benchSwitch(b, iters)
		})
	}
}

func BenchmarkAblation_StackReuse(b *testing.B) {
	for _, reuse := range []bool{true, false} {
		b.Run(fmt.Sprintf("reuse=%v", reuse), func(b *testing.B) {
			p := sdrad.NewProcess("ablation", sdrad.WithSeed(6))
			lib, err := sdrad.Setup(p, sdrad.WithStackReuse(reuse))
			if err != nil {
				b.Fatal(err)
			}
			err = p.Attach("main", func(t *sdrad.Thread) error {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := lib.InitDomain(t, 1); err != nil {
						return err
					}
					if err := lib.Destroy(t, 1, sdrad.NoHeapMerge); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAblation_HeapMergeVsDiscard(b *testing.B) {
	for _, opt := range []sdrad.DestroyOption{sdrad.HeapMerge, sdrad.NoHeapMerge} {
		name := "merge"
		if opt == sdrad.NoHeapMerge {
			name = "discard"
		}
		b.Run(name, func(b *testing.B) {
			p := sdrad.NewProcess("ablation", sdrad.WithSeed(7))
			lib, err := sdrad.Setup(p, sdrad.WithRootHeapSize(256<<20))
			if err != nil {
				b.Fatal(err)
			}
			err = p.Attach("main", func(t *sdrad.Thread) error {
				warm, err := lib.Malloc(t, sdrad.RootUDI, 8)
				if err != nil {
					return err
				}
				defer func() { _ = lib.Free(t, sdrad.RootUDI, warm) }()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gerr := lib.Guard(t, 1, func() error {
						_, err := lib.Malloc(t, 1, 256)
						return err
					}, sdrad.Accessible())
					if gerr != nil {
						return gerr
					}
					if err := lib.Destroy(t, 1, opt); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAblation_RewindWithScrub(b *testing.B) {
	for _, scrub := range []bool{false, true} {
		b.Run(fmt.Sprintf("scrub=%v", scrub), func(b *testing.B) {
			p := sdrad.NewProcess("ablation", sdrad.WithSeed(8))
			lib, err := sdrad.Setup(p, sdrad.WithScrubOnDiscard(scrub))
			if err != nil {
				b.Fatal(err)
			}
			err = p.Attach("main", func(t *sdrad.Thread) error {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gerr := lib.Guard(t, 1, func() error {
						if err := lib.Enter(t, 1); err != nil {
							return err
						}
						t.CPU().WriteU8(0xDEAD0000, 1)
						return nil
					})
					var abn *sdrad.AbnormalExit
					if !errors.As(gerr, &abn) {
						return fmt.Errorf("no rewind: %v", gerr)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
