package sched

import "sync/atomic"

// Router is the worker→shard affinity map: shard s is flushed by worker
// assign[s]. Events whose key maps to shard s are routed to that worker,
// so concurrent workers take disjoint lock stripes through
// ApplyShardBatch instead of colliding on whichever shard their
// round-robin connections happen to touch. Assignments are read on the
// per-request submit path and rebiasable at runtime, hence the atomics.
type Router struct {
	workers int
	assign  []atomic.Int32
	keyless atomic.Int64 // round-robin cursor for keyless/out-of-range shards
}

// NewRouter builds the initial bias: shard s → worker s mod workers, a
// uniform stripe-to-worker partition.
func NewRouter(workers, shards int) *Router {
	if workers < 1 {
		workers = 1
	}
	if shards < 1 {
		shards = 1
	}
	r := &Router{workers: workers, assign: make([]atomic.Int32, shards)}
	for s := range r.assign {
		r.assign[s].Store(int32(s % workers))
	}
	return r
}

// Worker returns the worker biased to shard. Out-of-range shards
// (callers pass -1 for "no key") have no affinity to preserve, so they
// are spread round-robin — pinning them all to worker 0, as an earlier
// version did, silently concentrated every keyless command on one
// worker.
func (r *Router) Worker(shard int) int {
	if shard < 0 || shard >= len(r.assign) {
		return int(r.keyless.Add(1)-1) % r.workers
	}
	return int(r.assign[shard].Load())
}

// Rebias reassigns a shard to a worker.
func (r *Router) Rebias(shard, worker int) {
	if shard < 0 || shard >= len(r.assign) || worker < 0 || worker >= r.workers {
		return
	}
	r.assign[shard].Store(int32(worker))
}

// Assignments snapshots the shard→worker map.
func (r *Router) Assignments() []int {
	out := make([]int, len(r.assign))
	for s := range r.assign {
		out[s] = int(r.assign[s].Load())
	}
	return out
}
