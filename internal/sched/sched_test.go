package sched

import (
	"testing"
	"time"

	"sdrad/internal/policy"
)

func manualController(t *testing.T, maxBatch int) (*Controller, *policy.ManualClock) {
	t.Helper()
	mc := &policy.ManualClock{}
	mc.Set(int64(time.Hour))
	c := NewController(Config{Clock: mc.Now}, maxBatch)
	return c, mc
}

func TestControllerStartsAtCeiling(t *testing.T) {
	c, _ := manualController(t, 16)
	if got := c.Bound(); got != 16 {
		t.Fatalf("initial bound = %d, want 16", got)
	}
	if got := c.MaxBatch(); got != 16 {
		t.Fatalf("MaxBatch = %d, want 16", got)
	}
}

func TestControllerIdleCollapseTowardOne(t *testing.T) {
	c, mc := manualController(t, 16)
	// Single-item rounds with no backlog: collapse one halving step per
	// IdleRounds (default 2) until the bound reaches 1.
	for i := 0; i < 20; i++ {
		c.ObserveRound(0, 1, 1000)
		mc.Advance(time.Millisecond)
	}
	if got := c.Bound(); got != 1 {
		t.Fatalf("bound after idle rounds = %d, want 1", got)
	}
	if c.Snapshot().Collapses == 0 {
		t.Fatalf("expected collapse steps to be counted")
	}
}

func TestControllerGrowsUnderSustainedBacklog(t *testing.T) {
	c, mc := manualController(t, 16)
	// Collapse first, then show sustained depth.
	for i := 0; i < 20; i++ {
		c.ObserveRound(0, 1, 1000)
	}
	if c.Bound() != 1 {
		t.Fatalf("precondition: bound = %d, want 1", c.Bound())
	}
	for i := 0; i < 30; i++ {
		c.ObserveRound(4, c.Bound(), int64(1000*c.Bound()))
		mc.Advance(time.Millisecond)
	}
	if got := c.Bound(); got != 16 {
		t.Fatalf("bound under sustained backlog = %d, want 16", got)
	}
}

func TestControllerGuardCostAcceleratesGrowth(t *testing.T) {
	mc := &policy.ManualClock{}
	mc.Set(int64(time.Hour))
	slow := NewController(Config{Clock: mc.Now}, 16)
	fast := NewController(Config{Clock: mc.Now, GuardCostNs: func() int64 { return 100_000 }}, 16)
	for _, c := range []*Controller{slow, fast} {
		for i := 0; i < 20; i++ {
			c.ObserveRound(0, 1, 1000)
		}
	}
	// Three backlogged rounds: the guard-cost-aware controller grows in
	// steps of 2, the plain one in steps of 1.
	for i := 0; i < 3; i++ {
		slow.ObserveRound(4, slow.Bound(), int64(1000*slow.Bound()))
		fast.ObserveRound(4, fast.Bound(), int64(1000*fast.Bound()))
	}
	if slow.Bound() >= fast.Bound() {
		t.Fatalf("guard-cost growth: slow=%d fast=%d, want fast > slow", slow.Bound(), fast.Bound())
	}
}

func TestControllerRewindMultiplicativeDecrease(t *testing.T) {
	c, mc := manualController(t, 16)
	c.NoteRewind()
	if got := c.Bound(); got != 8 {
		t.Fatalf("bound after 1 rewind = %d, want 8", got)
	}
	c.NoteRewind()
	c.NoteRewind()
	// Three rewinds in the window: halved each time AND capped at
	// MaxBatch>>3 = 2.
	if got := c.Bound(); got != 2 {
		t.Fatalf("bound after 3 rewinds = %d, want 2", got)
	}
	if got := c.Snapshot().WindowRewinds; got != 3 {
		t.Fatalf("window rewinds = %d, want 3", got)
	}
	// While the window is hot, backlogged rounds must not outgrow the
	// rewind ceiling.
	for i := 0; i < 10; i++ {
		c.ObserveRound(8, c.Bound(), int64(1000*c.Bound()))
		mc.Advance(time.Millisecond)
	}
	if got := c.Bound(); got > 2 {
		t.Fatalf("bound grew to %d under a hot rewind window, cap 2", got)
	}
}

func TestControllerWindowDrainRestoresGrowth(t *testing.T) {
	c, mc := manualController(t, 16)
	c.NoteRewind()
	c.NoteRewind()
	c.NoteRewind()
	mc.Advance(2 * time.Second) // default window is 1s
	for i := 0; i < 30; i++ {
		c.ObserveRound(8, c.Bound(), int64(1000*c.Bound()))
		mc.Advance(time.Millisecond)
	}
	if got := c.Bound(); got != 16 {
		t.Fatalf("bound after window drain = %d, want 16", got)
	}
	if got := c.Snapshot().WindowRewinds; got != 0 {
		t.Fatalf("window rewinds after drain = %d, want 0", got)
	}
}

func TestControllerLatencyBrake(t *testing.T) {
	c, mc := manualController(t, 16)
	// Establish a baseline EWMA with healthy multi-item rounds (keep the
	// backlog nonzero so no idle collapse interferes).
	for i := 0; i < 10; i++ {
		c.ObserveRound(4, 16, 16*1000)
		mc.Advance(time.Millisecond)
	}
	if c.Bound() != 16 {
		t.Fatalf("precondition: bound = %d, want 16", c.Bound())
	}
	// One pathological round: 10x the per-item EWMA.
	c.ObserveRound(4, 16, 16*10_000)
	if got := c.Bound(); got != 8 {
		t.Fatalf("bound after latency spike = %d, want 8", got)
	}
}

func TestControllerClockGoingBackwardsIsClamped(t *testing.T) {
	c, mc := manualController(t, 16)
	c.NoteRewind()
	mc.Set(0) // clock jumps backwards; the monotonic clamp must hold
	c.ObserveRound(1, 1, 1000)
	if got := c.Snapshot().WindowRewinds; got != 1 {
		t.Fatalf("window rewinds after clock jump = %d, want 1 (not pruned, not stuck)", got)
	}
}

func TestRouterUniformInitialAssignment(t *testing.T) {
	r := NewRouter(4, 16)
	for s := 0; s < 16; s++ {
		if got := r.Worker(s); got != s%4 {
			t.Fatalf("shard %d → worker %d, want %d", s, got, s%4)
		}
	}
	r.Rebias(5, 3)
	if got := r.Worker(5); got != 3 {
		t.Fatalf("after rebias shard 5 → worker %d, want 3", got)
	}
}

func TestRouterKeylessSpreadsRoundRobin(t *testing.T) {
	// Keyless (-1) and out-of-range shards have no affinity to honour;
	// they must spread round-robin across all workers instead of piling
	// onto worker 0.
	r := NewRouter(4, 16)
	counts := make([]int, 4)
	for i := 0; i < 40; i++ {
		shard := -1
		if i%2 == 1 {
			shard = 16 + i // out-of-range behaves like keyless
		}
		w := r.Worker(shard)
		if w < 0 || w >= 4 {
			t.Fatalf("keyless pick %d out of range", w)
		}
		counts[w]++
	}
	for w, n := range counts {
		if n != 10 {
			t.Fatalf("worker %d got %d keyless events, want 10 (counts %v)", w, n, counts)
		}
	}
	// Keyed routing is unaffected by the keyless cursor.
	if got := r.Worker(7); got != 7%4 {
		t.Fatalf("keyed shard 7 → worker %d, want %d", got, 7%4)
	}
}

func TestRebalancerMovesHotSlot(t *testing.T) {
	// 4 shards, 16 slots, identity mapping slot→slot%4. Shard 1 is hot:
	// all its traffic on slots 1 and 5.
	shardOf := func(slot int) int { return slot % 4 }
	rb := NewRebalancer(RebalanceConfig{MinOps: 100})
	shards := make([]ShardLoad, 4)
	slots := make([]int64, 16)
	shards[1] = ShardLoad{WaitNs: 4_000_000, BatchOps: 4000}
	shards[0] = ShardLoad{BatchOps: 100}
	shards[2] = ShardLoad{BatchOps: 100}
	shards[3] = ShardLoad{BatchOps: 100}
	slots[1] = 2600
	slots[5] = 1400
	moves := rb.Plan(shardOf, shards, slots)
	if len(moves) != 1 {
		t.Fatalf("planned %d moves, want 1: %+v", len(moves), moves)
	}
	m := moves[0]
	if m.From != 1 {
		t.Fatalf("move from shard %d, want 1", m.From)
	}
	if m.Slot != 1 && m.Slot != 5 {
		t.Fatalf("moved slot %d, want one of shard 1's slots", m.Slot)
	}
	if m.To == 1 {
		t.Fatalf("move targets the hot shard itself")
	}
	// The non-dominant slot is preferred: slot 1 carries 65% of the
	// traffic, so slot 5 should move.
	if m.Slot != 5 {
		t.Fatalf("moved slot %d, want the non-dominant slot 5", m.Slot)
	}
}

func TestRebalancerBalancedLoadPlansNothing(t *testing.T) {
	shardOf := func(slot int) int { return slot % 4 }
	rb := NewRebalancer(RebalanceConfig{MinOps: 100})
	shards := make([]ShardLoad, 4)
	slots := make([]int64, 16)
	for i := range shards {
		shards[i] = ShardLoad{BatchOps: 1000}
	}
	for s := range slots {
		slots[s] = 250
	}
	if moves := rb.Plan(shardOf, shards, slots); len(moves) != 0 {
		t.Fatalf("balanced load planned moves: %+v", moves)
	}
}

func TestRebalancerWorksOnDeltas(t *testing.T) {
	shardOf := func(slot int) int { return slot % 2 }
	rb := NewRebalancer(RebalanceConfig{MinOps: 100})
	shards := []ShardLoad{{BatchOps: 10_000}, {BatchOps: 100}}
	slots := []int64{6000, 50, 4000, 50}
	if moves := rb.Plan(shardOf, shards, slots); len(moves) != 1 {
		t.Fatalf("first plan: want 1 move, got %+v", moves)
	}
	// Same cumulative counters again: zero delta, nothing to do.
	if moves := rb.Plan(shardOf, shards, slots); len(moves) != 0 {
		t.Fatalf("zero-delta plan proposed moves: %+v", moves)
	}
}

func TestRebalancerBelowMinOpsPlansNothing(t *testing.T) {
	shardOf := func(slot int) int { return slot % 2 }
	rb := NewRebalancer(RebalanceConfig{MinOps: 1000})
	shards := []ShardLoad{{BatchOps: 400}, {BatchOps: 10}}
	slots := []int64{300, 5, 100, 5}
	if moves := rb.Plan(shardOf, shards, slots); len(moves) != 0 {
		t.Fatalf("below-MinOps plan proposed moves: %+v", moves)
	}
}

func TestControllerAtFloor(t *testing.T) {
	c, mc := manualController(t, 16)
	if c.AtFloor() {
		t.Fatal("fresh controller at ceiling reports AtFloor")
	}
	for i := 0; i < 20; i++ {
		c.ObserveRound(0, 1, 1000)
		mc.Advance(time.Millisecond)
	}
	if !c.AtFloor() {
		t.Fatalf("bound %d after idle collapse, AtFloor = false", c.Bound())
	}
	// A rewind heats the window: the floor fast path must stay off until
	// the window drains, even though the bound is still 1.
	c.NoteRewind()
	if c.AtFloor() {
		t.Fatal("AtFloor with a hot rewind window")
	}
	mc.Advance(2 * time.Second)
	c.ObserveRound(0, 1, 1000)
	if !c.AtFloor() {
		t.Fatal("AtFloor = false after the rewind window drained")
	}
}
