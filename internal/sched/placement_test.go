package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestPlacementPickPrefersCalmWorker(t *testing.T) {
	loads := []WorkerLoad{
		{Queue: 8, EWMAItemNs: 2000},
		{Queue: 0, EWMAItemNs: 2000},
		{Queue: 8, EWMAItemNs: 2000},
	}
	if got := PlacementPick(loads, 0); got != 1 {
		t.Fatalf("pick = %d, want the empty-queue worker 1", got)
	}
}

func TestPlacementPickAvoidsRewindHotWorker(t *testing.T) {
	// Same queue depth and latency everywhere, but worker 0 has a hot
	// rewind window: the 2x-per-rewind penalty must steer away from it
	// even from a tie-cursor that would otherwise land there.
	loads := []WorkerLoad{
		{Queue: 2, EWMAItemNs: 1500, WindowRewinds: 3},
		{Queue: 2, EWMAItemNs: 1500},
	}
	if got := PlacementPick(loads, 0); got != 1 {
		t.Fatalf("pick = %d, want the rewind-free worker 1", got)
	}
	if got := PlacementPick(loads, 1); got != 1 {
		t.Fatalf("pick from tie=1 = %d, want 1", got)
	}
}

func TestPlacementPickWeighsLatencyAgainstDepth(t *testing.T) {
	// A deep queue on a fast worker can still beat a shallow queue on a
	// slow one: 3 items x 1µs < 2 items x 10µs.
	loads := []WorkerLoad{
		{Queue: 2, EWMAItemNs: 10_000},
		{Queue: 1, EWMAItemNs: 10_000},
	}
	if got := PlacementPick(loads, 0); got != 1 {
		t.Fatalf("pick = %d, want shallower worker 1", got)
	}
	loads[1].EWMAItemNs = 50_000
	if got := PlacementPick(loads, 0); got != 0 {
		t.Fatalf("pick = %d, want faster worker 0 despite deeper queue", got)
	}
}

func TestPlacementPickTieBreaksRoundRobin(t *testing.T) {
	// Idle cluster: all scores equal, so the tie cursor must reproduce
	// the legacy round-robin fill order exactly.
	loads := make([]WorkerLoad, 4)
	for tie := 0; tie < 12; tie++ {
		if got := PlacementPick(loads, tie); got != tie%4 {
			t.Fatalf("idle tie=%d pick = %d, want %d", tie, got, tie%4)
		}
	}
}

func TestPlacementPickEmptyAndNegativeTie(t *testing.T) {
	if got := PlacementPick(nil, 3); got != 0 {
		t.Fatalf("empty loads pick = %d, want 0", got)
	}
	loads := make([]WorkerLoad, 3)
	if got := PlacementPick(loads, -5); got < 0 || got >= 3 {
		t.Fatalf("negative tie pick = %d out of range", got)
	}
}

func TestPlacementScoreRewindPenaltyCapped(t *testing.T) {
	l := WorkerLoad{Queue: 1000, EWMAItemNs: 1 << 40, WindowRewinds: 1000}
	if s := PlacementScore(l); s <= 0 {
		t.Fatalf("pathological load overflowed the score: %d", s)
	}
}

func TestControllerLoadPublishesAcrossGoroutines(t *testing.T) {
	c := NewController(Config{}, 16)
	c.ObserveRound(4, 4, 8000) // EWMA = 2000
	c.NoteRewind()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ewma, wins := c.Load()
		if ewma != 2000 {
			t.Errorf("published EWMA = %d, want 2000", ewma)
		}
		if wins != 1 {
			t.Errorf("published window rewinds = %d, want 1", wins)
		}
	}()
	<-done
}

func TestControllerObserveIdleCollapsesToFloor(t *testing.T) {
	c := NewController(Config{IdleRounds: 1}, 16)
	if c.AtFloor() {
		t.Fatal("fresh controller reports AtFloor")
	}
	for i := 0; i < 10 && !c.AtFloor(); i++ {
		c.ObserveIdle()
	}
	if !c.AtFloor() {
		t.Fatalf("bound %d after idle-only rounds, want floor", c.Bound())
	}
}

func TestControllerFloorPinnedFiresOncePerWindow(t *testing.T) {
	var fired []int64
	clk := int64(time.Hour)
	cfg := Config{
		Window:        time.Second,
		Clock:         func() int64 { return clk },
		OnFloorPinned: func(ns int64) { fired = append(fired, ns) },
	}
	c := NewController(cfg, 16)
	// Rewinds every 100ms pin the bound at 1 and keep the window hot.
	for i := 0; i < 25; i++ {
		c.NoteRewind()
		clk += int64(100 * time.Millisecond)
	}
	// 25 rewinds over 2.5s with a 1s window: the pin timer arms at the
	// first floor-pinned observation and fires roughly once per second.
	if len(fired) < 1 || len(fired) > 3 {
		t.Fatalf("OnFloorPinned fired %d times over 2.5s, want 1-3", len(fired))
	}
	for _, ns := range fired {
		if ns < int64(time.Second) {
			t.Fatalf("OnFloorPinned pinned duration %dns < window", ns)
		}
	}
	if got := c.Snapshot().FloorPins; got != int64(len(fired)) {
		t.Fatalf("FloorPins counter = %d, want %d", got, len(fired))
	}
	// Window drains: the pin disarms and does not fire again.
	clk += int64(3 * time.Second)
	n := len(fired)
	c.ObserveRound(0, 1, 1000)
	c.ObserveIdle()
	if len(fired) != n {
		t.Fatalf("OnFloorPinned fired after the window drained")
	}
}

func TestControllerIdleCollapseAloneDoesNotFloorPin(t *testing.T) {
	var fired int
	clk := int64(time.Hour)
	cfg := Config{
		Window:        time.Second,
		IdleRounds:    1,
		Clock:         func() int64 { return clk },
		OnFloorPinned: func(int64) { fired++ },
	}
	c := NewController(cfg, 16)
	// A healthy idle worker parks at bound 1 for many windows; that is
	// not a backoff signal.
	for i := 0; i < 50; i++ {
		c.ObserveIdle()
		clk += int64(200 * time.Millisecond)
	}
	if fired != 0 {
		t.Fatalf("OnFloorPinned fired %d times on a rewind-free idle worker", fired)
	}
}

// TestRouterRaceHammer exercises Worker/Rebias/Assignments from many
// goroutines concurrent with a rebalancer tick loop, mirroring how the
// memcache submit path races StartRebalancer in production. Run with
// -race; the assertions only check range invariants.
func TestRouterRaceHammer(t *testing.T) {
	const (
		workers = 4
		shards  = 64
		slots   = 256
	)
	r := NewRouter(workers, shards)
	rb := NewRebalancer(RebalanceConfig{MinOps: 1})
	stop := make(chan struct{})
	var wg, tickerWg sync.WaitGroup

	// Rebalancer ticker: plans over synthetic drifting counters and
	// applies the moves via Rebias, exactly the StartRebalancer shape.
	tickerWg.Add(1)
	go func() {
		defer tickerWg.Done()
		rng := rand.New(rand.NewSource(1))
		shardLoads := make([]ShardLoad, shards)
		slotOps := make([]int64, slots)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range shardLoads {
				shardLoads[i].BatchOps += rng.Int63n(500)
				shardLoads[i].WaitNs += rng.Int63n(10_000)
			}
			for s := range slotOps {
				slotOps[s] += rng.Int63n(100)
			}
			moves := rb.Plan(func(slot int) int { return slot % shards }, shardLoads, slotOps)
			for _, m := range moves {
				r.Rebias(m.Slot%shards, rng.Intn(workers))
			}
			asn := r.Assignments()
			if len(asn) != shards {
				t.Errorf("Assignments len = %d, want %d", len(asn), shards)
				return
			}
		}
	}()

	// Submit-path readers, including keyless traffic through the shared
	// round-robin cursor.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20_000; i++ {
				shard := rng.Intn(shards + 2)
				if rng.Intn(8) == 0 {
					shard = -1
				}
				w := r.Worker(shard)
				if w < 0 || w >= workers {
					t.Errorf("Worker(%d) = %d out of range", shard, w)
					return
				}
			}
		}(int64(g + 2))
	}

	// Rebias writers racing the ticker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 20_000; i++ {
			r.Rebias(rng.Intn(shards), rng.Intn(workers))
		}
	}()

	// Readers and writers run bounded loops; once they finish, stop the
	// ticker.
	wg.Wait()
	close(stop)
	tickerWg.Wait()
}
