package sched

// Placement scores workers at connection-accept time. Round-robin
// pinning spreads connections evenly but blindly: one hot or
// rewind-storming worker keeps receiving fresh connections at the same
// rate as its calm siblings, and every connection unlucky enough to
// land there inherits its tail. The scorer makes the three live load
// signals — queue depth, EWMA per-item service latency, rewind-window
// heat — visible at the one moment a connection can still be steered.

// WorkerLoad is one worker's placement inputs, assembled by the server
// from its queue lengths and the controller's published Load().
type WorkerLoad struct {
	// Queue is the worker's pending event count (channel depths).
	Queue int
	// EWMAItemNs is the controller's published per-item service latency
	// estimate (0 until the worker has drained a round).
	EWMAItemNs int64
	// WindowRewinds is the live rewind count inside the controller's
	// sliding window — the "this worker is absorbing faults" signal.
	WindowRewinds int
}

// placementDefaultItemNs stands in for an unmeasured worker's service
// latency so queue depth still differentiates workers before any EWMA
// exists (a fresh worker scores as cheap, which is what we want).
const placementDefaultItemNs = 1000

// placementRewindCap bounds the rewind penalty exponent so the score
// stays well inside int64 even under a pathological window.
const placementRewindCap = 6

// PlacementScore is the estimated cost of adding one connection to a
// worker: expected queueing delay (depth × per-item latency) inflated
// 2× per live window rewind — a rewind-storming worker is about to
// discard and retry work, so its effective service rate is far below
// its EWMA.
func PlacementScore(l WorkerLoad) int64 {
	item := l.EWMAItemNs
	if item < placementDefaultItemNs {
		item = placementDefaultItemNs
	}
	pen := l.WindowRewinds
	if pen > placementRewindCap {
		pen = placementRewindCap
	}
	return int64(l.Queue+1) * item << uint(pen)
}

// PlacementPick returns the index of the lowest-score worker. Ties are
// broken by scanning from (tie mod len) so equally calm workers are
// filled round-robin rather than always worker 0 — under no load the
// pick sequence degenerates to exactly the legacy round-robin order.
func PlacementPick(loads []WorkerLoad, tie int) int {
	if len(loads) == 0 {
		return 0
	}
	n := len(loads)
	start := tie % n
	if start < 0 {
		start += n
	}
	best := start
	bestScore := PlacementScore(loads[start])
	for i := 1; i < n; i++ {
		idx := (start + i) % n
		if s := PlacementScore(loads[idx]); s < bestScore {
			best, bestScore = idx, s
		}
	}
	return best
}
