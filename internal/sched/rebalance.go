package sched

// ShardLoad is one shard's cumulative contention counters, as the
// storage layer accounts them: nanoseconds spent waiting on the shard
// lock (contended acquisitions only) and ops applied through the batch
// path.
type ShardLoad struct {
	WaitNs   int64
	BatchOps int64
}

// Move is one planned remap change: slot moves from shard From to shard
// To. The storage layer executes it under both shard locks with an
// epoch bump (the handoff in-flight batches revalidate against).
type Move struct {
	Slot, From, To int
}

// RebalanceConfig tunes the planner.
type RebalanceConfig struct {
	// MinOps is the minimum total batched-op delta since the last plan
	// before any move is considered (default 512) — don't chase noise.
	MinOps int64
	// Imbalance is the hottest-shard score over the mean score that
	// triggers a move (default 2.0).
	Imbalance float64
	// MaxMoves bounds moves per Plan call (default 1): one slot at a
	// time keeps each epoch handoff cheap and observable.
	MaxMoves int
	// OpCostNs converts a batched-op count into the score's nanosecond
	// unit when no lock waiting was observed (default 200).
	OpCostNs int64
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.MinOps <= 0 {
		c.MinOps = 512
	}
	if c.Imbalance <= 1 {
		c.Imbalance = 2.0
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 1
	}
	if c.OpCostNs <= 0 {
		c.OpCostNs = 200
	}
	return c
}

// Rebalancer plans hot-slot moves from cumulative contention counters.
// It is pure decision logic — deterministic given the counter values —
// and keeps only the previous snapshot so each Plan works on deltas.
type Rebalancer struct {
	cfg       RebalanceConfig
	prevShard []ShardLoad
	prevSlot  []int64
}

// NewRebalancer builds a planner.
func NewRebalancer(cfg RebalanceConfig) *Rebalancer {
	return &Rebalancer{cfg: cfg.withDefaults()}
}

// Plan inspects the deltas since the previous call and proposes at most
// MaxMoves slot moves. shardOf maps a slot to its current shard; shards
// and slotOps are cumulative counters (per shard / per slot). A move is
// proposed when one shard's contention score exceeds Imbalance times the
// mean and that shard currently owns more than one slot: its busiest
// slot goes to the least-loaded shard.
func (r *Rebalancer) Plan(shardOf func(slot int) int, shards []ShardLoad, slotOps []int64) []Move {
	nsh := len(shards)
	if nsh < 2 || len(slotOps) == 0 {
		return nil
	}
	if len(r.prevShard) != nsh {
		r.prevShard = make([]ShardLoad, nsh)
	}
	if len(r.prevSlot) != len(slotOps) {
		r.prevSlot = make([]int64, len(slotOps))
	}
	// Deltas + score per shard.
	scores := make([]int64, nsh)
	opsDelta := make([]int64, nsh)
	var totalOps int64
	for i := 0; i < nsh; i++ {
		dw := shards[i].WaitNs - r.prevShard[i].WaitNs
		do := shards[i].BatchOps - r.prevShard[i].BatchOps
		if dw < 0 {
			dw = 0
		}
		if do < 0 {
			do = 0
		}
		totalOps += do
		opsDelta[i] = do
		scores[i] = dw + do*r.cfg.OpCostNs
	}
	slotDelta := make([]int64, len(slotOps))
	slotsPerShard := make([]int, nsh)
	for s := range slotOps {
		d := slotOps[s] - r.prevSlot[s]
		if d < 0 {
			d = 0
		}
		slotDelta[s] = d
		if sh := shardOf(s); sh >= 0 && sh < nsh {
			slotsPerShard[sh]++
		}
	}
	// Advance the snapshot regardless of the outcome: the next plan
	// should see fresh deltas, not re-litigate this interval.
	copy(r.prevShard, shards)
	copy(r.prevSlot, slotOps)

	if totalOps < r.cfg.MinOps {
		return nil
	}
	var moves []Move
	for len(moves) < r.cfg.MaxMoves {
		hot, cold := 0, 0
		var sum int64
		for i := 0; i < nsh; i++ {
			sum += scores[i]
			if scores[i] > scores[hot] {
				hot = i
			}
			if scores[i] < scores[cold] {
				cold = i
			}
		}
		// The hot shard is judged against the mean of the OTHERS: with few
		// shards the global mean is dominated by the hot shard itself and a
		// 2x trigger could never fire.
		meanOthers := float64(sum-scores[hot]) / float64(nsh-1)
		if meanOthers < 0 || float64(scores[hot]) <= r.cfg.Imbalance*meanOthers || hot == cold {
			break
		}
		if slotsPerShard[hot] < 2 {
			break // a single-slot shard has nothing to shed
		}
		// Busiest slot currently on the hot shard — but not one so
		// dominant that moving it just relocates the hotspot: prefer the
		// busiest slot that is NOT the majority of the shard's traffic,
		// falling back to the busiest outright.
		best, bestOps := -1, int64(-1)
		for s := range slotDelta {
			if shardOf(s) != hot {
				continue
			}
			if slotDelta[s] > bestOps && 2*slotDelta[s] <= opsDelta[hot] {
				best, bestOps = s, slotDelta[s]
			}
		}
		if best < 0 {
			for s := range slotDelta {
				if shardOf(s) == hot && slotDelta[s] > bestOps {
					best, bestOps = s, slotDelta[s]
				}
			}
		}
		if best < 0 || bestOps <= 0 {
			break
		}
		moves = append(moves, Move{Slot: best, From: hot, To: cold})
		// Account the move so a MaxMoves>1 plan doesn't re-pick it.
		delta := bestOps * r.cfg.OpCostNs
		scores[hot] -= delta
		scores[cold] += delta
		opsDelta[hot] -= bestOps
		opsDelta[cold] += bestOps
		slotsPerShard[hot]--
		slotsPerShard[cold]++
		slotDelta[best] = 0
	}
	return moves
}
