// Package sched is the self-tuning batch/shard scheduler consulted by
// the worker drain loops of the hardened servers (internal/memcache,
// internal/httpd). It has three cooperating parts, all stdlib-only and
// deterministic under a hand-advanced clock (mirroring internal/policy's
// ManualClock discipline):
//
//   - Controller: a per-worker AIMD batch-size controller. The guard
//     scope amortizes one Guard/Enter/Exit domain-switch round over a
//     batch, but a single fault discards the whole batch, so the optimal
//     size depends on load AND on the live rewind rate. The controller
//     grows the bound additively toward MaxBatch while the channel shows
//     sustained backlog, collapses it toward 1 across idle rounds (a
//     lone request should not drag a 16-slot scope around), and shrinks
//     it multiplicatively the moment a rewind lands, holding a ceiling
//     of MaxBatch >> windowRewinds while the sliding rewind window is
//     hot — the "Unlimited Lives" rewind-rate signal applied to batch
//     sizing instead of admission.
//
//   - Router: the worker→shard affinity bias. Keys hash-partition over
//     the storage shards; routing an event to the worker assigned to
//     its key's shard makes concurrent workers flush disjoint lock
//     stripes through ApplyShardBatch.
//
//   - Rebalancer: pure decision logic over per-shard contention counters
//     (lock-wait nanoseconds, batched ops) and per-slot op counts. It
//     plans hot-slot moves in the storage key→shard remap table; the
//     storage layer executes them with an epoch handoff so in-flight
//     batches stay consistent.
package sched

import (
	"sync/atomic"
	"time"
)

// Config parameterizes a Controller (and carries the server-side split
// tuning). The zero value is usable: defaults are applied by the server
// when it adopts the config.
type Config struct {
	// MaxBatch is the controller ceiling. The server defaults it to its
	// own MaxBatch; the adaptive bound never exceeds it, which is why
	// domain-heap sizing may keep tracking MaxBatch.
	MaxBatch int
	// Window is the sliding rewind window (default 1s, matching
	// internal/policy's default).
	Window time.Duration
	// IdleRounds is how many consecutive backlog-free rounds trigger one
	// halving step toward bound 1 (default 2).
	IdleRounds int
	// MinSplitRun is the smallest contiguous same-shard event run worth
	// its own guard scope when a mixed batch is split by dominant shard
	// (default 4; 0 uses the default, negative disables splitting).
	MinSplitRun int
	// Clock returns nanoseconds; nil uses time.Now().UnixNano(). Chaos
	// campaigns and tests install a policy.ManualClock's Now so every
	// window decision is deterministic.
	Clock func() int64
	// GuardCostNs, when non-nil, estimates the current Enter+Exit
	// domain-switch cost (typically the telemetry enter/exit latency
	// histograms' median). When the guard cost is a large share of the
	// observed per-item latency the controller grows in bigger steps —
	// amortization is paying for itself.
	GuardCostNs func() int64
	// Route enables load-aware connection placement: the accept path
	// scores workers by queue depth, EWMA service latency, and
	// rewind-window heat instead of blind round-robin. Off keeps the
	// legacy round-robin pinning bit-identical.
	Route bool
	// Steal enables cross-worker stealing: a worker at the AIMD floor
	// with an empty queue takes a shard-affinity-aligned segment of the
	// most-backlogged sibling's pending events and runs it as its own
	// guard scope. Off keeps the legacy per-worker queues bit-identical.
	Steal bool
	// StealInterval bounds how long an idle floor worker blocks before
	// re-checking sibling backlogs (default 200µs). Chaos campaigns set
	// it very large so steals happen only when explicitly poked.
	StealInterval time.Duration
	// OnFloorPinned, when non-nil, fires when a controller has been
	// pinned at bound 1 by a hot rewind window for a full Window — the
	// signal that batching alone cannot absorb the fault rate and the
	// policy engine should start backing the domain off. Called from the
	// owning worker goroutine with the pinned duration in nanoseconds.
	OnFloorPinned func(pinnedNs int64)
}

func (c Config) withDefaults(maxBatch int) Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = maxBatch
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.IdleRounds <= 0 {
		c.IdleRounds = 2
	}
	if c.MinSplitRun == 0 {
		c.MinSplitRun = 4
	}
	if c.StealInterval <= 0 {
		c.StealInterval = 200 * time.Microsecond
	}
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// Controller is one worker's adaptive batch-bound state. All mutating
// calls (ObserveRound, NoteRewind) happen on the owning worker
// goroutine; the current bound is published atomically so snapshots and
// metric scrapes from other goroutines are safe.
type Controller struct {
	cfg   Config
	bound atomic.Int64

	// Worker-goroutine-owned state.
	idle       int
	ewmaItemNs int64
	rewinds    []int64 // rewind timestamps inside the window, oldest first
	lastNow    int64   // monotonic clamp, mirroring policy.Engine.now
	floorSince int64   // clock ns when the bound became rewind-pinned at 1; 0 = not pinned

	// Cross-goroutine mirrors of the worker-owned load signals, published
	// so the conn-accept placement scorer can read them without racing
	// the drain loop.
	ewmaPub atomic.Int64
	winPub  atomic.Int32

	grows     atomic.Int64
	shrinks   atomic.Int64
	collapses atomic.Int64
	floorPins atomic.Int64
}

// NewController builds a controller. maxBatch is the server's configured
// ceiling, used when cfg.MaxBatch is unset. The bound starts at the
// ceiling: with no signal yet, the legacy fixed-MaxBatch behaviour is
// the safe default, and the idle collapse walks it down within a few
// quiet rounds.
func NewController(cfg Config, maxBatch int) *Controller {
	c := &Controller{cfg: cfg.withDefaults(maxBatch)}
	c.bound.Store(int64(c.cfg.MaxBatch))
	return c
}

// Bound returns the current batch bound in [1, MaxBatch].
func (c *Controller) Bound() int { return int(c.bound.Load()) }

// MaxBatch returns the controller ceiling.
func (c *Controller) MaxBatch() int { return c.cfg.MaxBatch }

// MinSplitRun returns the configured shard-split run floor (<=0 means
// splitting is disabled).
func (c *Controller) MinSplitRun() int { return c.cfg.MinSplitRun }

// Now reads the controller clock (the worker uses it to time rounds so
// manual-clock runs stay deterministic).
func (c *Controller) Now() int64 { return c.cfg.Clock() }

// Route reports whether load-aware connection placement is enabled.
func (c *Controller) Route() bool { return c.cfg.Route }

// Steal reports whether cross-worker stealing is enabled.
func (c *Controller) Steal() bool { return c.cfg.Steal }

// StealInterval is the idle floor worker's backlog re-check period.
func (c *Controller) StealInterval() time.Duration { return c.cfg.StealInterval }

// Load returns the published load signals — EWMA per-item latency and
// the live rewind-window count — safe to read from any goroutine. The
// placement scorer combines them with queue depth to pick calm workers.
func (c *Controller) Load() (ewmaItemNs int64, windowRewinds int) {
	return c.ewmaPub.Load(), int(c.winPub.Load())
}

// AtFloor reports that the controller sits at bound 1 with an empty
// rewind window — the state a lone idle request cannot move, which lets
// the worker skip the round observation entirely. Call it from the
// owning worker goroutine (it reads the window).
func (c *Controller) AtFloor() bool {
	return c.bound.Load() == 1 && len(c.rewinds) == 0
}

// now reads the clock with a monotonic clamp, as policy.Engine does.
func (c *Controller) now() int64 {
	n := c.cfg.Clock()
	if n < c.lastNow {
		n = c.lastNow
	}
	c.lastNow = n
	return n
}

// pruneWindow drops rewind timestamps older than the window.
func (c *Controller) pruneWindow(now int64) {
	cut := now - int64(c.cfg.Window)
	i := 0
	for i < len(c.rewinds) && c.rewinds[i] <= cut {
		i++
	}
	if i > 0 {
		c.rewinds = append(c.rewinds[:0], c.rewinds[i:]...)
	}
	c.winPub.Store(int32(len(c.rewinds)))
}

// checkFloorPin tracks how long the bound has been rewind-pinned at the
// floor. Idle collapse also parks the bound at 1, but that is healthy;
// only "1 because the rewind window keeps it there" counts. Once the
// pin has lasted a full Window the OnFloorPinned hook fires and the
// timer re-arms, so a persistently faulting domain escalates once per
// window rather than once per round.
func (c *Controller) checkFloorPin(now int64) {
	if c.bound.Load() != 1 || len(c.rewinds) == 0 {
		c.floorSince = 0
		return
	}
	if c.floorSince == 0 {
		c.floorSince = now
		return
	}
	if pinned := now - c.floorSince; pinned >= int64(c.cfg.Window) {
		c.floorPins.Add(1)
		c.floorSince = now
		if c.cfg.OnFloorPinned != nil {
			c.cfg.OnFloorPinned(pinned)
		}
	}
}

// rewindCap is the multiplicative ceiling the hot rewind window imposes:
// MaxBatch >> windowRewinds, floored at 1. Every additional rewind in
// the window halves how much work one fault may discard.
func (c *Controller) rewindCap() int {
	n := len(c.rewinds)
	if n >= 63 {
		return 1
	}
	cap := c.cfg.MaxBatch >> uint(n)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// NoteRewind records an absorbed rewind: multiplicative decrease, and
// the window ceiling tightens for as long as the window stays hot. Call
// it from the worker goroutine that absorbed the fault.
func (c *Controller) NoteRewind() {
	now := c.now()
	c.pruneWindow(now)
	c.rewinds = append(c.rewinds, now)
	c.winPub.Store(int32(len(c.rewinds)))
	b := int(c.bound.Load()) / 2
	if b < 1 {
		b = 1
	}
	if cap := c.rewindCap(); b > cap {
		b = cap
	}
	c.bound.Store(int64(b))
	c.shrinks.Add(1)
	c.checkFloorPin(now)
}

// ObserveRound feeds one drain-round observation: backlog is the channel
// queue depth left after the drain, drained the number of items taken
// into the round, elapsedNs the round's wall time. It applies, in order:
// the rewind-window ceiling, the latency brake (a round whose per-item
// latency blows far past the EWMA halves the bound), additive increase
// under sustained backlog, and the idle collapse toward 1.
func (c *Controller) ObserveRound(backlog, drained int, elapsedNs int64) {
	if drained <= 0 {
		return
	}
	now := c.now()
	c.pruneWindow(now)
	b := int(c.bound.Load())

	itemNs := elapsedNs / int64(drained)
	// The brake compares this round against the EWMA as it stood BEFORE
	// the round — folding the spike in first would dilute the baseline it
	// is judged against.
	prev := c.ewmaItemNs
	if prev == 0 {
		prev = itemNs
	}
	ewma := (3*prev + itemNs) / 4
	c.ewmaItemNs = ewma
	c.ewmaPub.Store(ewma)

	if cap := c.rewindCap(); b > cap {
		b = cap
		c.shrinks.Add(1)
	}
	// Latency brake: a 4x per-item blowup on a multi-item round means the
	// batch is queuing behind itself (lock convoy, slab pressure) — shed
	// size before growing again.
	if drained > 1 && prev > 0 && itemNs > 4*prev {
		if b > 1 {
			b /= 2
			c.shrinks.Add(1)
		}
	} else if backlog > 0 && drained >= b {
		// Additive increase under sustained depth. When the guard cost
		// dominates the per-item latency, amortization is the whole game:
		// grow twice as fast.
		step := 1
		if c.cfg.GuardCostNs != nil && b > 0 {
			if g := c.cfg.GuardCostNs(); g > 0 && ewma > 0 && g/int64(b) > ewma/10 {
				step = 2
			}
		}
		nb := b + step
		if cap := c.rewindCap(); nb > cap {
			nb = cap
		}
		if nb > c.cfg.MaxBatch {
			nb = c.cfg.MaxBatch
		}
		if nb > b {
			b = nb
			c.grows.Add(1)
		}
		c.idle = 0
	}
	if backlog == 0 && drained <= 1 {
		c.idle++
		if c.idle >= c.cfg.IdleRounds && b > 1 {
			b /= 2
			c.idle = 0
			c.collapses.Add(1)
		}
	} else {
		c.idle = 0
	}
	if b < 1 {
		b = 1
	}
	c.bound.Store(int64(b))
	c.checkFloorPin(now)
}

// ObserveIdle feeds one traffic-free round (a steal-interval timeout
// with nothing drained). ObserveRound ignores drained==0, so a worker
// that never sees traffic would otherwise be stuck at the MaxBatch
// starting bound forever and never reach the floor that makes it a
// steal candidate. Call it from the owning worker goroutine.
func (c *Controller) ObserveIdle() {
	now := c.now()
	c.pruneWindow(now)
	c.idle++
	if c.idle >= c.cfg.IdleRounds {
		c.idle = 0
		if b := int(c.bound.Load()); b > 1 {
			c.bound.Store(int64(b / 2))
			c.collapses.Add(1)
		}
	}
	c.checkFloorPin(now)
}

// Snapshot is a point-in-time controller state for chaos assertions,
// tests, and metric exposition.
type Snapshot struct {
	Bound         int
	MaxBatch      int
	WindowRewinds int
	EWMAItemNs    int64
	Grows         int64
	Shrinks       int64
	Collapses     int64
	FloorPins     int64
}

// Snapshot reads the controller state. Bound and the counters are exact
// from any goroutine; WindowRewinds and EWMAItemNs are owned by the
// worker goroutine and are exact only when the worker is quiescent
// (which is how the deterministic chaos campaign reads them).
func (c *Controller) Snapshot() Snapshot {
	return Snapshot{
		Bound:         int(c.bound.Load()),
		MaxBatch:      c.cfg.MaxBatch,
		WindowRewinds: len(c.rewinds),
		EWMAItemNs:    c.ewmaItemNs,
		Grows:         c.grows.Load(),
		Shrinks:       c.shrinks.Load(),
		Collapses:     c.collapses.Load(),
		FloorPins:     c.floorPins.Load(),
	}
}
