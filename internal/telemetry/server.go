package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// Handler returns the recorder's HTTP surface:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON metrics snapshot
//	/flightrecorder flight-recorder events (JSON, sequence order)
//	/forensics      retained rewind post-mortem reports (JSON)
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.reg.SnapshotJSON())
	})
	mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"capacity": r.flight.Capacity(),
			"written":  r.flight.Written(),
			"events":   r.flight.Snapshot(),
		})
	})
	mux.HandleFunc("/forensics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"total":   r.store.Added(),
			"reports": r.store.Reports(),
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "sdrad telemetry: /metrics /metrics.json /flightrecorder /forensics")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve binds addr and serves Handler in a background goroutine,
// returning the bound address (useful with a ":0" port). The listener
// lives until process exit; telemetry endpoints have no shutdown
// ceremony.
func (r *Recorder) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Dump is the full state of a recorder, as written by -flight-dump.
type Dump struct {
	Metrics   map[string]any `json:"metrics"`
	Events    []Event        `json:"events"`
	Forensics []RewindReport `json:"forensics"`
}

// DumpJSON serializes metrics, flight events, and forensics reports in
// one document.
func (r *Recorder) DumpJSON() ([]byte, error) {
	return json.MarshalIndent(Dump{
		Metrics:   r.reg.SnapshotJSON(),
		Events:    r.flight.Snapshot(),
		Forensics: r.store.Reports(),
	}, "", "  ")
}
