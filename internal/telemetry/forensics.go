package telemetry

import (
	"sync"
	"sync/atomic"
)

// RewindReport is the post-mortem synthesized for one absorbed rewind:
// everything an operator needs to understand why a domain was discarded,
// captured before the evidence (the domain's heap) is thrown away.
type RewindReport struct {
	// Seq is the monitor's rewind sequence number (1-based).
	Seq    int64 `json:"seq"`
	TimeNs int64 `json:"time_ns"`

	ThreadID   int    `json:"thread_id"`
	ThreadName string `json:"thread_name,omitempty"`

	// FailedUDI is the domain that faulted and was discarded.
	FailedUDI int `json:"failed_udi"`
	// DomainStack is the nested-domain enter stack at the time of the
	// fault, outermost first; the last element is the failing domain.
	DomainStack []int `json:"domain_stack"`

	Signal     int    `json:"signal"`
	SignalName string `json:"signal_name"`
	// SiCode is the fault's si_code (0 for non-memory oracles such as a
	// stack-canary SIGABRT).
	SiCode     int    `json:"si_code"`
	SiCodeName string `json:"si_code_name"`
	Addr       uint64 `json:"addr"`
	PKey       int    `json:"pkey"`
	// Injected marks faults planted by the chaos fault injector.
	Injected bool `json:"injected"`

	// Discard accounting: the heap region thrown away with the domain
	// and the stack region reset under it.
	HeapBase   uint64 `json:"heap_base"`
	HeapBytes  uint64 `json:"heap_bytes"`
	HeapPages  int    `json:"heap_pages"`
	StackBytes uint64 `json:"stack_bytes"`
	StackPages int    `json:"stack_pages"`
	// LiveAllocs is the number of allocations still live in the
	// discarded heap (allocs minus frees) — the state the rewind lost.
	LiveAllocs int64 `json:"live_allocs"`

	// RewindCount is the monitor's cumulative rewind count including
	// this one; RewindLimit is the configured abort threshold (0 =
	// unlimited), per the Unlimited Lives rate-limiting argument.
	RewindCount int64 `json:"rewind_count"`
	RewindLimit int64 `json:"rewind_limit"`

	// Policy decision taken for this rewind, when a resilience-policy
	// engine is attached: the ladder state after the decision, the
	// action, and the sliding-window rewind count at decision time.
	PolicyState       string `json:"policy_state,omitempty"`
	PolicyAction      string `json:"policy_action,omitempty"`
	PolicyWindowCount int    `json:"policy_window_count,omitempty"`
	// PolicyRetryAfterNs is the re-init hold-off the decision imposed
	// (backoff or quarantine), 0 otherwise.
	PolicyRetryAfterNs int64 `json:"policy_retry_after_ns,omitempty"`
}

// ForensicsStore retains the last N rewind reports and counts all of
// them. The cumulative Added count is what campaign assertions diff:
// unlike the retained window it can never lose a report to eviction.
type ForensicsStore struct {
	added  atomic.Int64
	retain int

	mu   sync.Mutex
	ring []RewindReport
	next int
	full bool
}

func newForensicsStore(retain int) *ForensicsStore {
	return &ForensicsStore{retain: retain, ring: make([]RewindReport, retain)}
}

// Add stores a report, evicting the oldest when the window is full.
func (s *ForensicsStore) Add(rep RewindReport) {
	s.mu.Lock()
	s.ring[s.next] = rep
	s.next++
	if s.next == s.retain {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
	s.added.Add(1)
}

// Added returns the cumulative number of reports ever stored.
func (s *ForensicsStore) Added() int64 { return s.added.Load() }

// Reports returns the retained reports, oldest first.
func (s *ForensicsStore) Reports() []RewindReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]RewindReport(nil), s.ring[:s.next]...)
	}
	out := make([]RewindReport, 0, s.retain)
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Last returns the most recent report, if any.
func (s *ForensicsStore) Last() (RewindReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full && s.next == 0 {
		return RewindReport{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = s.retain - 1
	}
	return s.ring[i], true
}
