package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets covers [0, 2^47) ns — sub-ns to ~1.6 days — in log2 steps.
const histBuckets = 48

// Histogram is a lock-free log2-bucketed histogram of non-negative
// int64 observations (nanoseconds, byte counts). Bucket i holds values
// whose bit length is i, i.e. the range [2^(i-1), 2^i-1]; bucket 0 holds
// zero. Observe is three atomic adds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) by linear
// interpolation inside the containing log2 bucket, or 0 with no data.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(i)
			frac := float64(target-cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// metric family kinds for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one exposition family: either a single metric, a labeled set
// of children, or a list of callback funcs whose values are summed (so
// several producers — e.g. one reference monitor per worker process —
// can feed one series).
type family struct {
	name     string
	help     string
	kind     string
	labelKey string

	mu       sync.Mutex
	single   any
	children map[string]any
	order    []string
	funcs    []func() int64
}

func (f *family) child(label string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.children == nil {
		f.children = make(map[string]any)
	}
	m, ok := f.children[label]
	if !ok {
		m = mk()
		f.children[label] = m
		f.order = append(f.order, label)
	}
	return m
}

// funcValue sums the registered callbacks.
func (f *family) funcValue() int64 {
	var v int64
	for _, fn := range f.funcs {
		v += fn()
	}
	return v
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the label value, creating it on
// first use.
func (v *CounterVec) With(label string) *Counter {
	return v.f.child(label, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label value.
func (v *GaugeVec) With(label string) *Gauge {
	return v.f.child(label, func() any { return new(Gauge) }).(*Gauge)
}

// Registry is a get-or-create metrics registry with Prometheus text
// exposition and a JSON snapshot. Families expose in registration order.
type Registry struct {
	mu       sync.Mutex
	order    []*family
	byName   map[string]*family
	families map[string]*family // alias of byName, kept for clarity in lookup
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	byName := map[string]*family{}
	return &Registry{byName: byName, families: byName}
}

// lookup returns the family, creating it if absent; it panics on a
// name registered with a different kind or label key — that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help, kind, labelKey string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.labelKey != labelKey {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s/%q (was %s/%q)",
				name, kind, labelKey, f.kind, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labelKey: labelKey}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter returns the plain counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = new(Counter)
	}
	return f.single.(*Counter)
}

// Gauge returns the plain gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = new(Gauge)
	}
	return f.single.(*Gauge)
}

// Histogram returns the histogram with the given name.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.lookup(name, help, kindHistogram, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = new(Histogram)
	}
	return f.single.(*Histogram)
}

// CounterVec returns the labeled counter family with the given name and
// label key.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, labelKey)}
}

// GaugeVec returns the labeled gauge family with the given name and
// label key.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labelKey)}
}

// CounterFunc registers a callback-backed counter. Multiple callbacks on
// one name are summed at exposition — the pattern for mirroring native
// producer counters (monitor stats, MMU stats) without double-counting
// writes on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.lookup(name, help, kindCounter, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	f.funcs = append(f.funcs, fn)
}

// GaugeFunc registers a callback-backed gauge; multiple callbacks sum.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.lookup(name, help, kindGauge, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	f.funcs = append(f.funcs, fn)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	single := f.single
	labels := append([]string(nil), f.order...)
	children := make(map[string]any, len(labels))
	for _, l := range labels {
		children[l] = f.children[l]
	}
	hasPlain := single != nil || len(f.funcs) > 0
	var plain int64
	if len(f.funcs) > 0 {
		plain = f.funcValue()
	}
	f.mu.Unlock()

	sort.Strings(labels)
	switch f.kind {
	case kindHistogram:
		h, _ := single.(*Histogram)
		if h == nil {
			h = new(Histogram)
		}
		return writeHistogram(w, f.name, h)
	default:
		switch m := single.(type) {
		case *Counter:
			plain += m.Value()
		case *Gauge:
			plain += m.Value()
		}
		if hasPlain {
			if _, err := fmt.Fprintf(w, "%s %d\n", f.name, plain); err != nil {
				return err
			}
		}
		for _, l := range labels {
			var v int64
			switch m := children[l].(type) {
			case *Counter:
				v = m.Value()
			case *Gauge:
				v = m.Value()
			}
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n",
				f.name, f.labelKey, escapeLabel(l), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram writes the cumulative bucket series plus _sum and
// _count. Bucket upper bounds are 0, 1, 3, 7, ... 2^i-1, then +Inf;
// empty high buckets beyond the last populated one are elided.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	// Derive _count from the one pass over the buckets rather than the
	// live count field, so the series stays internally consistent
	// (+Inf == _count) under concurrent Observe calls.
	var counts [histBuckets]int64
	top := 0
	var count int64
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		count += counts[i]
		if counts[i] > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		_, hi := bucketBounds(i)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, hi, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
		name, h.Sum(), name, count); err != nil {
		return err
	}
	return nil
}

// SnapshotJSON returns the registry as a JSON-marshalable map: plain
// metrics as numbers, labeled families as {label: value} objects, and
// histograms as {count, sum, p50, p95, p99}.
func (r *Registry) SnapshotJSON() map[string]any {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	out := make(map[string]any, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		switch {
		case f.kind == kindHistogram:
			h, _ := f.single.(*Histogram)
			if h == nil {
				h = new(Histogram)
			}
			out[f.name] = map[string]int64{
				"count": h.Count(),
				"sum":   h.Sum(),
				"p50":   h.Quantile(0.50),
				"p95":   h.Quantile(0.95),
				"p99":   h.Quantile(0.99),
			}
		case f.labelKey != "":
			m := make(map[string]int64, len(f.order))
			for _, l := range f.order {
				switch c := f.children[l].(type) {
				case *Counter:
					m[l] = c.Value()
				case *Gauge:
					m[l] = c.Value()
				}
			}
			out[f.name] = m
		default:
			var v int64
			if len(f.funcs) > 0 {
				v = f.funcValue()
			}
			switch m := f.single.(type) {
			case *Counter:
				v += m.Value()
			case *Gauge:
				v += m.Value()
			}
			out[f.name] = v
		}
		f.mu.Unlock()
	}
	return out
}
