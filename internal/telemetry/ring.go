package telemetry

import (
	"math/bits"
	"sort"
	"sync/atomic"
)

// flightShards spreads writers over independent rings keyed by thread ID,
// so concurrent threads do not contend on one ring cursor.
const flightShards = 8

// Event is one decoded flight-recorder entry.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_ns"`
	Kind   string `json:"kind"`
	Thread int    `json:"thread"`
	// UDI is the domain the event concerns, or -1 when not applicable.
	UDI  int    `json:"udi"`
	Code int    `json:"code"`
	PKey int    `json:"pkey"`
	Addr uint64 `json:"addr"`
	// Aux carries per-kind payload: heap bytes for init/discard/heap-merge,
	// latency ns for enter/exit, injected flag for fault/rewind.
	Aux uint64 `json:"aux"`
}

// slot is one ring entry: a state ticket plus seven payload words, all
// plain atomics so concurrent access is race-detector clean. A writer
// claims ticket i, stores state 2i+1 (writing), fills the payload, then
// stores 2i+2 (complete). Readers accept a slot only when the state reads
// exactly 2i+2 before and after copying the payload; a writer lapping the
// ring bumps the ticket, so torn snapshots are detected and skipped
// rather than locked against.
type slot struct {
	state atomic.Uint64
	w     [7]atomic.Uint64
}

// payload word layout inside a slot.
const (
	slotSeq     = 0 // global sequence number
	slotTime    = 1 // TimeNs
	slotKindTID = 2 // kind<<32 | uint32(tid)
	slotUDI     = 3 // uint64(int64(udi))
	slotCodeKey = 4 // uint32(code)<<32 | uint32(pkey)
	slotAddr    = 5
	slotAux     = 6
)

// ringShard is one single-cursor ring.
type ringShard struct {
	pos   atomic.Uint64
	slots []slot
}

// FlightRecorder is the fixed-size, lock-free event ring. Writers never
// block and never allocate; readers reconstruct a best-effort globally
// ordered snapshot from the per-shard rings.
type FlightRecorder struct {
	seq    atomic.Uint64
	mask   uint64
	shards [flightShards]ringShard
}

// newFlightRecorder sizes each shard to the next power of two of
// total/flightShards, minimum 64 events.
func newFlightRecorder(total int) *FlightRecorder {
	per := total / flightShards
	if per < 64 {
		per = 64
	}
	if per&(per-1) != 0 {
		per = 1 << bits.Len(uint(per))
	}
	f := &FlightRecorder{mask: uint64(per - 1)}
	for i := range f.shards {
		f.shards[i].slots = make([]slot, per)
	}
	return f
}

// Capacity returns the total number of events the recorder retains.
func (f *FlightRecorder) Capacity() int {
	return flightShards * int(f.mask+1)
}

// record writes one event. The hot path is a shard-cursor fetch-add plus
// nine straight atomic stores — no locks, no allocation.
func (f *FlightRecorder) record(timeNs int64, kind EventKind, tid, udi, code, pkey int, addr, aux uint64) {
	seq := f.seq.Add(1)
	sh := &f.shards[uint(tid)%flightShards]
	i := sh.pos.Add(1) - 1
	s := &sh.slots[i&f.mask]
	s.state.Store(2*i + 1)
	s.w[slotSeq].Store(seq)
	s.w[slotTime].Store(uint64(timeNs))
	s.w[slotKindTID].Store(uint64(kind)<<32 | uint64(uint32(tid)))
	s.w[slotUDI].Store(uint64(int64(udi)))
	s.w[slotCodeKey].Store(uint64(uint32(code))<<32 | uint64(uint32(pkey)))
	s.w[slotAddr].Store(addr)
	s.w[slotAux].Store(aux)
	s.state.Store(2*i + 2)
}

// Written returns the cumulative number of events recorded.
func (f *FlightRecorder) Written() uint64 { return f.seq.Load() }

// Snapshot returns the retained events ordered by sequence number. Slots
// being concurrently rewritten are skipped; the result is a consistent
// sample, not a barrier.
func (f *FlightRecorder) Snapshot() []Event {
	out := make([]Event, 0, f.Capacity())
	cap64 := f.mask + 1
	for si := range f.shards {
		sh := &f.shards[si]
		pos := sh.pos.Load()
		lo := uint64(0)
		if pos > cap64 {
			lo = pos - cap64
		}
		for i := lo; i < pos; i++ {
			s := &sh.slots[i&f.mask]
			want := 2*i + 2
			if s.state.Load() != want {
				continue
			}
			var w [7]uint64
			for j := range w {
				w[j] = s.w[j].Load()
			}
			if s.state.Load() != want {
				continue
			}
			out = append(out, Event{
				Seq:    w[slotSeq],
				TimeNs: int64(w[slotTime]),
				Kind:   EventKind(w[slotKindTID] >> 32).String(),
				Thread: int(uint32(w[slotKindTID])),
				UDI:    int(int64(w[slotUDI])),
				Code:   int(uint32(w[slotCodeKey] >> 32)),
				PKey:   int(uint32(w[slotCodeKey])),
				Addr:   w[slotAddr],
				Aux:    w[slotAux],
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}
