// Package telemetry is the observability subsystem of the SDRaD
// reproduction: a fixed-size lock-free flight recorder of structured
// domain-lifecycle events, a metrics registry with Prometheus text
// exposition and a JSON snapshot API, and a rewind-forensics store that
// retains a post-mortem report for every absorbed rewind.
//
// The paper's pitch is that a compromised domain is discarded and the
// service keeps running — which makes the *record* of why a rewind
// happened the only artifact an operator ever sees of an absorbed
// attack. "Unlimited Lives" (Gülmez et al., 2022) motivates rewind
// accounting and rate-limiting against repeated-attack DoS, and ERIM
// (Vahldiek-Oberwagner et al.) identifies domain-crossing counts as the
// key cost metric; both need the first-class telemetry implemented here.
//
// Wiring: producers (internal/core, internal/mem, internal/proc,
// internal/sig) hold an atomic.Pointer[Recorder] and record only when it
// is non-nil, so the disabled-recorder cost on a hot path is exactly one
// atomic pointer load. Enter/exit transitions are additionally sampled
// (1 in 2^TransitionSampleShift carries a flight-recorder event and a
// latency observation); rare events — faults, rewinds, discards, heap
// merges, signals — are always recorded. The package deliberately
// imports nothing but the standard library so every layer of the
// simulation, down to the MMU, can feed it.
package telemetry

import (
	"strconv"
	"sync/atomic"
	"time"
)

// EventKind discriminates flight-recorder events.
type EventKind uint8

// Domain-lifecycle event kinds.
const (
	EvInit EventKind = iota + 1
	EvEnter
	EvExit
	EvFault
	EvRewind
	EvDiscard
	EvHeapMerge
	EvSignal
	EvCrash
	EvThreadStart
	EvThreadExit
	// EvPolicy records a resilience-policy decision (escalation or
	// readmission); code carries the ladder state, pkey the action, aux
	// the sliding-window rewind count. Appended last so earlier kinds
	// keep their values in persisted dumps.
	EvPolicy
)

func (k EventKind) String() string {
	switch k {
	case EvInit:
		return "init"
	case EvEnter:
		return "enter"
	case EvExit:
		return "exit"
	case EvFault:
		return "fault"
	case EvRewind:
		return "rewind"
	case EvDiscard:
		return "discard"
	case EvHeapMerge:
		return "heap-merge"
	case EvSignal:
		return "signal"
	case EvCrash:
		return "crash"
	case EvThreadStart:
		return "thread-start"
	case EvThreadExit:
		return "thread-exit"
	case EvPolicy:
		return "policy"
	default:
		return "unknown"
	}
}

// Options configures a Recorder.
type Options struct {
	// FlightEvents is the total flight-recorder capacity in events,
	// spread over the per-thread shards (default 4096; rounded up to a
	// power of two per shard).
	FlightEvents int
	// ForensicsRetain is how many rewind post-mortem reports are kept
	// (default 64). The cumulative count is unbounded.
	ForensicsRetain int
	// TransitionSampleShift selects 1-in-2^shift sampling of enter/exit
	// transitions for flight events and latency histograms. 0 means the
	// default (4, i.e. 1 in 16); negative records every transition.
	TransitionSampleShift int
}

// defaultTransitionSampleShift is the 1-in-16 default.
const defaultTransitionSampleShift = 4

// Recorder ties the flight recorder, the metrics registry, and the
// forensics store together. One Recorder may be shared by any number of
// simulated processes; all its methods are safe for concurrent use.
type Recorder struct {
	start   time.Time
	enabled atomic.Bool

	flight     *FlightRecorder
	reg        *Registry
	store      *ForensicsStore
	sampleMask uint64

	// Pre-registered metrics (cold-path families resolve labels on use).
	mDiscardBytes *Counter
	mHeapMerges   *Counter
	mCrashes      *Counter
	mRewinds      *CounterVec // by si_code
	mFaults       *CounterVec // by si_code
	mDomainFaults *CounterVec // by udi
	mLastFault    *GaugeVec   // by udi
	mSignals      *CounterVec // by signal
	mEnterLat     *Histogram
	mExitLat      *Histogram
}

// New builds an enabled Recorder.
func New(opts Options) *Recorder {
	if opts.FlightEvents <= 0 {
		opts.FlightEvents = 4096
	}
	if opts.ForensicsRetain <= 0 {
		opts.ForensicsRetain = 64
	}
	shift := opts.TransitionSampleShift
	switch {
	case shift == 0:
		shift = defaultTransitionSampleShift
	case shift < 0:
		shift = 0
	}
	r := &Recorder{
		start:      time.Now(),
		flight:     newFlightRecorder(opts.FlightEvents),
		reg:        NewRegistry(),
		store:      newForensicsStore(opts.ForensicsRetain),
		sampleMask: 1<<uint(shift) - 1,
	}
	r.enabled.Store(true)

	reg := r.reg
	r.mDiscardBytes = reg.Counter("sdrad_discarded_bytes_total",
		"Heap bytes discarded with their domain (rewinds, destroys, thread teardown).")
	r.mHeapMerges = reg.Counter("sdrad_heap_merges_total",
		"Subheaps merged into the parent heap on clean destroy.")
	r.mCrashes = reg.Counter("sdrad_process_crashes_total",
		"Simulated processes terminated by an unrecovered fault.")
	r.mRewinds = reg.CounterVec("sdrad_rewinds_total",
		"Rewinds absorbed by the reference monitor, by detection oracle.", "si_code")
	r.mFaults = reg.CounterVec("sdrad_faults_total",
		"Memory faults raised by the simulated MMU, by si_code.", "si_code")
	r.mDomainFaults = reg.CounterVec("sdrad_domain_faults_total",
		"Faults attributed to a failing domain, by UDI.", "udi")
	r.mLastFault = reg.GaugeVec("sdrad_domain_last_fault_address",
		"Faulting address of the most recent fault attributed to each UDI.", "udi")
	r.mSignals = reg.CounterVec("sdrad_signals_total",
		"Signals delivered through the process signal table.", "signal")
	r.mEnterLat = reg.Histogram("sdrad_enter_latency_ns",
		"Sampled latency of monitor Enter transitions (ns).")
	r.mExitLat = reg.Histogram("sdrad_exit_latency_ns",
		"Sampled latency of monitor Exit transitions (ns).")
	reg.CounterFunc("sdrad_flight_events_total",
		"Events written to the flight recorder.",
		func() int64 { return int64(r.flight.seq.Load()) })
	reg.CounterFunc("sdrad_forensics_reports_total",
		"Rewind post-mortem reports synthesized.",
		func() int64 { return r.store.Added() })
	reg.GaugeFunc("sdrad_forensics_reports_retained",
		"Rewind post-mortem reports currently retained for inspection.",
		func() int64 { return int64(len(r.store.Reports())) })
	return r
}

// Enabled reports whether recording is active.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// SetEnabled pauses or resumes recording. Metrics backed by producer
// counters (CounterFunc/GaugeFunc) keep moving; events, histograms, and
// forensics stop.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Registry returns the metrics registry, for producers registering
// CounterFunc/GaugeFunc mirrors of their native counters and for
// consumers creating workload metrics.
func (r *Recorder) Registry() *Registry { return r.reg }

// Flight returns the flight recorder.
func (r *Recorder) Flight() *FlightRecorder { return r.flight }

// Forensics returns the rewind post-mortem store.
func (r *Recorder) Forensics() *ForensicsStore { return r.store }

// Clock returns monotonic nanoseconds since the recorder was created —
// the timebase of flight events and forensics reports.
func (r *Recorder) Clock() int64 { return int64(time.Since(r.start)) }

// Sampled reports whether transition number n (the producer's own
// monotonic transition counter) should carry a flight event and a
// latency observation. Always false while disabled, so producers that
// clock latency only on sampled transitions pay nothing when an attached
// recorder is paused.
func (r *Recorder) Sampled(n uint64) bool { return r.enabled.Load() && n&r.sampleMask == 0 }

// RecordDomainInit records a domain initialization.
func (r *Recorder) RecordDomainInit(tid, udi, kind int, heapBytes uint64) {
	if !r.enabled.Load() {
		return
	}
	r.flight.record(r.Clock(), EvInit, tid, udi, kind, 0, 0, heapBytes)
}

// RecordEnter records a sampled Enter transition and its latency.
func (r *Recorder) RecordEnter(tid, udi int, latNs int64) {
	if !r.enabled.Load() {
		return
	}
	r.mEnterLat.Observe(latNs)
	r.flight.record(r.Clock(), EvEnter, tid, udi, 0, 0, 0, uint64(latNs))
}

// RecordExit records a sampled Exit transition and its latency.
func (r *Recorder) RecordExit(tid, udi int, latNs int64) {
	if !r.enabled.Load() {
		return
	}
	r.mExitLat.Observe(latNs)
	r.flight.record(r.Clock(), EvExit, tid, udi, 0, 0, 0, uint64(latNs))
}

// RecordDiscard records a domain heap discard of the given size.
func (r *Recorder) RecordDiscard(tid, udi int, heapBytes uint64) {
	if !r.enabled.Load() {
		return
	}
	r.mDiscardBytes.Add(int64(heapBytes))
	r.flight.record(r.Clock(), EvDiscard, tid, udi, 0, 0, 0, heapBytes)
}

// RecordHeapMerge records a clean-destroy subheap merge into the parent.
func (r *Recorder) RecordHeapMerge(tid, udi int, heapBytes uint64) {
	if !r.enabled.Load() {
		return
	}
	r.mHeapMerges.Add(1)
	r.flight.record(r.Clock(), EvHeapMerge, tid, udi, 0, 0, 0, heapBytes)
}

// RecordFault records a raised MMU fault. codeName is the si_code label
// (e.g. "SEGV_PKUERR"); the raising layer does not know the victim
// domain — attribution happens in RecordRewind.
func (r *Recorder) RecordFault(codeName string, code int, addr uint64, pkey int, injected bool) {
	if !r.enabled.Load() {
		return
	}
	r.mFaults.With(codeName).Add(1)
	aux := uint64(0)
	if injected {
		aux = 1
	}
	r.flight.record(r.Clock(), EvFault, 0, -1, code, pkey, addr, aux)
}

// RecordSignal records a delivery through the process signal table.
func (r *Recorder) RecordSignal(tid int, signalName string, signal, code int, addr uint64) {
	if !r.enabled.Load() {
		return
	}
	r.mSignals.With(signalName).Add(1)
	r.flight.record(r.Clock(), EvSignal, tid, -1, code, signal, addr, 0)
}

// RecordCrash records an unrecovered fault terminating a simulated
// process.
func (r *Recorder) RecordCrash(tid int) {
	if !r.enabled.Load() {
		return
	}
	r.mCrashes.Add(1)
	r.flight.record(r.Clock(), EvCrash, tid, -1, 0, 0, 0, 0)
}

// RecordThreadStart records a thread acquiring its domain state.
func (r *Recorder) RecordThreadStart(tid int) {
	if !r.enabled.Load() {
		return
	}
	r.flight.record(r.Clock(), EvThreadStart, tid, -1, 0, 0, 0, 0)
}

// RecordThreadExit records a thread releasing its domain state.
func (r *Recorder) RecordThreadExit(tid int) {
	if !r.enabled.Load() {
		return
	}
	r.flight.record(r.Clock(), EvThreadExit, tid, -1, 0, 0, 0, 0)
}

// RecordPolicy records a resilience-policy decision: state and action
// are the policy package's State/Action values (kept as ints so this
// package stays dependency-free), aux is the sliding-window rewind
// count at decision time.
func (r *Recorder) RecordPolicy(tid, udi, state, action int, aux uint64) {
	if !r.enabled.Load() {
		return
	}
	r.flight.record(r.Clock(), EvPolicy, tid, udi, state, action, 0, aux)
}

// RecordRewind stores the post-mortem report of one absorbed rewind and
// accounts it in the metrics. The report's TimeNs is stamped here if the
// producer left it zero.
func (r *Recorder) RecordRewind(rep RewindReport) {
	if !r.enabled.Load() {
		return
	}
	if rep.TimeNs == 0 {
		rep.TimeNs = r.Clock()
	}
	r.store.Add(rep)
	r.mRewinds.With(rep.SiCodeName).Add(1)
	udi := strconv.Itoa(rep.FailedUDI)
	r.mDomainFaults.With(udi).Add(1)
	r.mLastFault.With(udi).Set(int64(rep.Addr))
	aux := uint64(0)
	if rep.Injected {
		aux = 1
	}
	r.flight.record(rep.TimeNs, EvRewind, rep.ThreadID, rep.FailedUDI, rep.SiCode, rep.PKey, rep.Addr, aux)
}
