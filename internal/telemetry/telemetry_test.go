package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// --- flight recorder ---

func TestFlightFieldRoundTrip(t *testing.T) {
	f := newFlightRecorder(8)
	f.record(12345, EvFault, 42, -1, 4, 7, 0xdeadbeef, 1)
	evs := f.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Seq != 1 || ev.TimeNs != 12345 || ev.Kind != "fault" ||
		ev.Thread != 42 || ev.UDI != -1 || ev.Code != 4 || ev.PKey != 7 ||
		ev.Addr != 0xdeadbeef || ev.Aux != 1 {
		t.Fatalf("field round-trip mismatch: %+v", ev)
	}
	if f.Written() != 1 {
		t.Fatalf("Written() = %d, want 1", f.Written())
	}
}

func TestFlightKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvInit: "init", EvEnter: "enter", EvExit: "exit", EvFault: "fault",
		EvRewind: "rewind", EvDiscard: "discard", EvHeapMerge: "heap-merge",
		EvSignal: "signal", EvCrash: "crash", EvThreadStart: "thread-start",
		EvThreadExit: "thread-exit", EventKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestFlightWrapKeepsNewest(t *testing.T) {
	// Minimum shard capacity is 64 slots; one tid pins one shard, so the
	// ring must retain exactly the 64 newest events after 3 laps.
	f := newFlightRecorder(1)
	const n = 3 * 64
	for i := 0; i < n; i++ {
		f.record(int64(i), EvEnter, 0, i, 0, 0, uint64(i), uint64(i))
	}
	if f.Written() != n {
		t.Fatalf("Written() = %d, want %d", f.Written(), n)
	}
	evs := f.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("snapshot holds %d events, want 64", len(evs))
	}
	for i, ev := range evs {
		want := uint64(n - 64 + i + 1)
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest must be dropped, order by seq)", i, ev.Seq, want)
		}
		// payload written alongside seq must stay paired with it
		if uint64(ev.UDI) != ev.Seq-1 || ev.Addr != ev.Seq-1 || ev.Aux != ev.Seq-1 {
			t.Fatalf("event %d: payload torn from seq: %+v", i, ev)
		}
	}
}

func TestFlightShardedCapacity(t *testing.T) {
	f := newFlightRecorder(4096)
	if f.Capacity() != 4096 {
		t.Fatalf("Capacity() = %d, want 4096", f.Capacity())
	}
	// Spread writers over every shard: all events retained up to capacity.
	for i := 0; i < 1024; i++ {
		f.record(int64(i), EvExit, i, 0, 0, 0, 0, 0)
	}
	evs := f.Snapshot()
	if len(evs) != 1024 {
		t.Fatalf("snapshot holds %d events, want all 1024", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not strictly ordered by seq at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// --- histogram ---

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", q)
	}
	vals := []int64{0, 1, 5, 100, 1000, 12345, 1 << 20, -7}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		if v > 0 {
			sum += v
		}
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("Count() = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum { // negative observation clamps to zero
		t.Fatalf("Sum() = %d, want %d", h.Sum(), sum)
	}
	p50, p95, p99, p100 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Quantile(1)
	if p50 > p95 || p95 > p99 || p99 > p100 {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d p100=%d", p50, p95, p99, p100)
	}
	// The top quantile must land in the bucket of the max observation.
	lo, hi := bucketBounds(bits.Len64(uint64(1 << 20)))
	if p100 < lo || p100 > hi {
		t.Fatalf("Quantile(1) = %d outside max bucket [%d, %d]", p100, lo, hi)
	}
}

func TestBucketBounds(t *testing.T) {
	if lo, hi := bucketBounds(0); lo != 0 || hi != 0 {
		t.Fatalf("bucket 0 = [%d, %d], want [0, 0]", lo, hi)
	}
	for i := 1; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != 1<<(i-1) || hi != 1<<i-1 {
			t.Fatalf("bucket %d = [%d, %d], want [%d, %d]", i, lo, hi, 1<<(i-1), 1<<i-1)
		}
		if bits.Len64(uint64(lo)) != i || bits.Len64(uint64(hi)) != i {
			t.Fatalf("bucket %d bounds have wrong bit length", i)
		}
	}
}

// --- Prometheus text-format parser (hand-written, for exposition tests) ---

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promDoc struct {
	types   map[string]string       // family name -> counter|gauge|histogram
	samples map[string][]promSample // family name -> samples in file order
}

func isValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// parsePromLine parses `name value` or `name{k="v",...} value`.
func parsePromLine(t *testing.T, no int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	var after string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		rest := line[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label pair in %q", no, line)
			}
			key := rest[:eq]
			if !isValidMetricName(key) {
				t.Fatalf("line %d: invalid label key %q", no, key)
			}
			var val strings.Builder
			j := eq + 2
			for j < len(rest) && rest[j] != '"' {
				c := rest[j]
				if c == '\\' {
					j++
					if j >= len(rest) {
						t.Fatalf("line %d: dangling escape", no)
					}
					switch rest[j] {
					case 'n':
						val.WriteByte('\n')
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					default:
						t.Fatalf("line %d: bad escape \\%c", no, rest[j])
					}
				} else {
					val.WriteByte(c)
				}
				j++
			}
			if j >= len(rest) {
				t.Fatalf("line %d: unterminated label value", no)
			}
			s.labels[key] = val.String()
			j++ // past closing quote
			if j >= len(rest) {
				t.Fatalf("line %d: truncated after label value", no)
			}
			if rest[j] == ',' {
				rest = rest[j+1:]
				continue
			}
			if rest[j] == '}' {
				after = rest[j+1:]
				break
			}
			t.Fatalf("line %d: expected ',' or '}' after label value in %q", no, line)
		}
	} else {
		var ok bool
		s.name, after, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: no value in %q", no, line)
		}
		after = " " + after
	}
	if !isValidMetricName(s.name) {
		t.Fatalf("line %d: invalid metric name %q", no, s.name)
	}
	valStr := strings.TrimSpace(after)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", no, valStr, err)
	}
	s.value = v
	return s
}

// parsePrometheus validates the text exposition format: HELP/TYPE comments
// precede their samples, kinds are legal, sample syntax parses, and no
// series (name + label set) appears twice.
func parsePrometheus(t *testing.T, text string) promDoc {
	t.Helper()
	doc := promDoc{types: map[string]string{}, samples: map[string][]promSample{}}
	helps := map[string]bool{}
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		no := ln + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !isValidMetricName(name) {
				t.Fatalf("line %d: malformed HELP %q", no, line)
			}
			helps[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found || !isValidMetricName(name) {
				t.Fatalf("line %d: malformed TYPE %q", no, line)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: illegal TYPE kind %q", no, kind)
			}
			if _, dup := doc.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", no, name)
			}
			doc.types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unrecognized comment %q", no, line)
		}
		s := parsePromLine(t, no, line)
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(s.name, suf); ok && doc.types[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := doc.types[base]; !ok {
			t.Fatalf("line %d: sample %q appears before its TYPE", no, s.name)
		}
		if !helps[base] {
			t.Fatalf("line %d: sample %q appears before its HELP", no, s.name)
		}
		key := s.name
		for k, v := range s.labels {
			key += "|" + k + "=" + v
		}
		if len(s.labels) > 1 {
			t.Fatalf("line %d: more than one label on %q (registry emits at most one)", no, s.name)
		}
		if seen[key] {
			t.Fatalf("line %d: duplicate series %q", no, key)
		}
		seen[key] = true
		doc.samples[base] = append(doc.samples[base], s)
	}
	return doc
}

// checkPromHistogram validates the cumulative-bucket invariants of one
// histogram family: le bounds strictly increase, cumulative counts never
// decrease, the +Inf bucket exists and equals _count.
func checkPromHistogram(t *testing.T, doc promDoc, name string) (count, sum float64) {
	t.Helper()
	var prevLe, prevCum = math.Inf(-1), -1.0
	var infCount float64
	seenInf, seenCount, seenSum := false, false, false
	for _, s := range doc.samples[name] {
		switch s.name {
		case name + "_bucket":
			leStr, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s_bucket sample without le label", name)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("%s_bucket: bad le %q", name, leStr)
			}
			if le <= prevLe {
				t.Fatalf("%s_bucket: le %v not increasing (prev %v)", name, le, prevLe)
			}
			if s.value < prevCum {
				t.Fatalf("%s_bucket{le=%q}: cumulative count %v decreased (prev %v)", name, leStr, s.value, prevCum)
			}
			prevLe, prevCum = le, s.value
			if math.IsInf(le, 1) {
				seenInf, infCount = true, s.value
			}
		case name + "_count":
			seenCount, count = true, s.value
		case name + "_sum":
			seenSum, sum = true, s.value
		default:
			t.Fatalf("unexpected sample %q in histogram family %q", s.name, name)
		}
	}
	if !seenInf || !seenCount || !seenSum {
		t.Fatalf("histogram %q missing series: +Inf=%v _count=%v _sum=%v", name, seenInf, seenCount, seenSum)
	}
	if infCount != count {
		t.Fatalf("histogram %q: +Inf bucket %v != _count %v", name, infCount, count)
	}
	return count, sum
}

// --- registry / exposition ---

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "Jobs processed.").Add(7)
	reg.Gauge("queue_depth", "Current queue depth.").Set(3)
	cv := reg.CounterVec("ops_total", "Operations by kind.", "op")
	cv.With("get").Add(2)
	cv.With(`we"ird\la` + "\n" + `bel`).Inc()
	h := reg.Histogram("lat_ns", "Latency.")
	for _, v := range []int64{0, 3, 9, 1000, 1_000_000} {
		h.Observe(v)
	}
	// Two funcs plus a native single counter on one name must sum into
	// exactly one plain sample.
	reg.CounterFunc("mirrored_total", "Producer-mirrored counter.", func() int64 { return 3 })
	reg.CounterFunc("mirrored_total", "Producer-mirrored counter.", func() int64 { return 4 })
	reg.Counter("mirrored_total", "Producer-mirrored counter.").Add(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	doc := parsePrometheus(t, b.String())

	if doc.types["jobs_total"] != "counter" || doc.types["queue_depth"] != "gauge" ||
		doc.types["ops_total"] != "counter" || doc.types["lat_ns"] != "histogram" {
		t.Fatalf("TYPE lines wrong: %v", doc.types)
	}
	get := func(fam string, label map[string]string) float64 {
		t.Helper()
		for _, s := range doc.samples[fam] {
			if len(s.labels) != len(label) {
				continue
			}
			match := true
			for k, v := range label {
				if s.labels[k] != v {
					match = false
				}
			}
			if match {
				return s.value
			}
		}
		t.Fatalf("no sample %s%v in:\n%s", fam, label, b.String())
		return 0
	}
	if v := get("jobs_total", nil); v != 7 {
		t.Fatalf("jobs_total = %v, want 7", v)
	}
	if v := get("queue_depth", nil); v != 3 {
		t.Fatalf("queue_depth = %v, want 3", v)
	}
	if v := get("ops_total", map[string]string{"op": "get"}); v != 2 {
		t.Fatalf(`ops_total{op="get"} = %v, want 2`, v)
	}
	// The escaped label value must round-trip through the parser.
	if v := get("ops_total", map[string]string{"op": `we"ird\la` + "\n" + `bel`}); v != 1 {
		t.Fatalf("escaped label sample = %v, want 1", v)
	}
	if v := get("mirrored_total", nil); v != 12 {
		t.Fatalf("mirrored_total = %v, want 3+4+5=12", v)
	}
	count, sum := checkPromHistogram(t, doc, "lat_ns")
	if count != 5 || sum != 1_001_012 {
		t.Fatalf("lat_ns count/sum = %v/%v, want 5/1001012", count, sum)
	}
}

func TestRegistryReRegisterPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge must panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c").Add(9)
	reg.CounterVec("v_total", "v", "k").With("a").Add(4)
	h := reg.Histogram("h_ns", "h")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	reg.GaugeFunc("g", "g", func() int64 { return 11 })

	raw, err := json.Marshal(reg.SnapshotJSON())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["c_total"].(float64) != 9 {
		t.Fatalf("c_total = %v", got["c_total"])
	}
	if got["g"].(float64) != 11 {
		t.Fatalf("g = %v", got["g"])
	}
	if v := got["v_total"].(map[string]any); v["a"].(float64) != 4 {
		t.Fatalf("v_total = %v", v)
	}
	hm := got["h_ns"].(map[string]any)
	for _, k := range []string{"count", "sum", "p50", "p95", "p99"} {
		if _, ok := hm[k]; !ok {
			t.Fatalf("h_ns snapshot missing %q: %v", k, hm)
		}
	}
	if hm["count"].(float64) != 100 || hm["sum"].(float64) != 5050 {
		t.Fatalf("h_ns count/sum = %v/%v", hm["count"], hm["sum"])
	}
	if hm["p50"].(float64) > hm["p95"].(float64) || hm["p95"].(float64) > hm["p99"].(float64) {
		t.Fatalf("h_ns quantiles not monotone: %v", hm)
	}
}

// --- forensics store ---

func TestForensicsRetention(t *testing.T) {
	s := newForensicsStore(4)
	if _, ok := s.Last(); ok {
		t.Fatal("empty store must report no last entry")
	}
	for i := 1; i <= 6; i++ {
		s.Add(RewindReport{Seq: int64(i), FailedUDI: i})
	}
	if s.Added() != 6 {
		t.Fatalf("Added() = %d, want 6", s.Added())
	}
	reps := s.Reports()
	if len(reps) != 4 {
		t.Fatalf("retained %d, want 4", len(reps))
	}
	for i, r := range reps {
		if r.Seq != int64(i+3) {
			t.Fatalf("report %d has seq %d, want %d (oldest-first, oldest two evicted)", i, r.Seq, i+3)
		}
	}
	last, ok := s.Last()
	if !ok || last.Seq != 6 {
		t.Fatalf("Last() = %+v/%v, want seq 6", last, ok)
	}
}

// --- recorder behavior ---

func TestRecorderDisabledRecordsNothing(t *testing.T) {
	rec := New(Options{})
	if !rec.Enabled() {
		t.Fatal("New must return an enabled recorder")
	}
	rec.SetEnabled(false)
	rec.RecordDomainInit(1, 2, 0, 100)
	rec.RecordEnter(1, 2, 50)
	rec.RecordExit(1, 2, 50)
	rec.RecordDiscard(1, 2, 100)
	rec.RecordHeapMerge(1, 2, 100)
	rec.RecordFault("SEGV_PKUERR", 4, 0x1000, 2, false)
	rec.RecordSignal(1, "SIGSEGV", 11, 4, 0x1000)
	rec.RecordCrash(1)
	rec.RecordThreadStart(1)
	rec.RecordThreadExit(1)
	rec.RecordRewind(RewindReport{Seq: 1, FailedUDI: 2, SiCodeName: "SEGV_PKUERR"})
	if n := rec.Flight().Written(); n != 0 {
		t.Fatalf("disabled recorder wrote %d flight events", n)
	}
	if n := rec.Forensics().Added(); n != 0 {
		t.Fatalf("disabled recorder stored %d forensics reports", n)
	}
	rec.SetEnabled(true)
	rec.RecordCrash(1)
	if n := rec.Flight().Written(); n != 1 {
		t.Fatalf("re-enabled recorder wrote %d events, want 1", n)
	}
}

func TestRecorderSampling(t *testing.T) {
	def := New(Options{})
	for n := uint64(0); n < 64; n++ {
		if got, want := def.Sampled(n), n%16 == 0; got != want {
			t.Fatalf("default Sampled(%d) = %v, want %v (1 in 16)", n, got, want)
		}
	}
	all := New(Options{TransitionSampleShift: -1})
	for n := uint64(0); n < 8; n++ {
		if !all.Sampled(n) {
			t.Fatalf("shift -1 must sample every transition, missed %d", n)
		}
	}
	half := New(Options{TransitionSampleShift: 1})
	for n := uint64(0); n < 8; n++ {
		if got, want := half.Sampled(n), n%2 == 0; got != want {
			t.Fatalf("shift 1 Sampled(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestRecordRewindAccounting(t *testing.T) {
	rec := New(Options{})
	rep := RewindReport{
		Seq: 1, ThreadID: 3, FailedUDI: 5, DomainStack: []int{0, 5},
		Signal: 11, SignalName: "SIGSEGV", SiCode: 4, SiCodeName: "SEGV_PKUERR",
		Addr: 0xbeef, PKey: 2, Injected: true,
		HeapBytes: 4096, RewindCount: 1,
	}
	rec.RecordRewind(rep)
	if rec.Forensics().Added() != 1 {
		t.Fatalf("Added() = %d, want 1", rec.Forensics().Added())
	}
	last, ok := rec.Forensics().Last()
	if !ok || last.FailedUDI != 5 || last.SiCodeName != "SEGV_PKUERR" {
		t.Fatalf("Last() = %+v/%v", last, ok)
	}
	if last.TimeNs == 0 {
		t.Fatal("RecordRewind must stamp TimeNs when the producer leaves it zero")
	}
	evs := rec.Flight().Snapshot()
	if len(evs) != 1 || evs[0].Kind != "rewind" || evs[0].UDI != 5 || evs[0].Aux != 1 {
		t.Fatalf("rewind flight event wrong: %+v", evs)
	}
	var b strings.Builder
	if err := rec.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	doc := parsePrometheus(t, b.String())
	find := func(fam, key, val string) float64 {
		t.Helper()
		for _, s := range doc.samples[fam] {
			if s.labels[key] == val {
				return s.value
			}
		}
		t.Fatalf("no %s{%s=%q} sample", fam, key, val)
		return 0
	}
	if v := find("sdrad_rewinds_total", "si_code", "SEGV_PKUERR"); v != 1 {
		t.Fatalf("sdrad_rewinds_total = %v, want 1", v)
	}
	if v := find("sdrad_domain_faults_total", "udi", "5"); v != 1 {
		t.Fatalf("sdrad_domain_faults_total = %v, want 1", v)
	}
	if v := find("sdrad_domain_last_fault_address", "udi", "5"); v != 0xbeef {
		t.Fatalf("sdrad_domain_last_fault_address = %v, want %d", v, 0xbeef)
	}
	for _, s := range doc.samples["sdrad_forensics_reports_total"] {
		if len(s.labels) == 0 && s.value != 1 {
			t.Fatalf("sdrad_forensics_reports_total = %v, want 1", s.value)
		}
	}
	checkPromHistogram(t, doc, "sdrad_enter_latency_ns")
	checkPromHistogram(t, doc, "sdrad_exit_latency_ns")
}

// TestRecorderExpositionParses checks the full pre-registered metric set
// of a working recorder against the text-format parser.
func TestRecorderExpositionParses(t *testing.T) {
	rec := New(Options{})
	rec.RecordDomainInit(1, 2, 1, 1<<20)
	rec.RecordEnter(1, 2, 120)
	rec.RecordExit(1, 2, 90)
	rec.RecordFault("SEGV_PKUERR", 4, 0x1000, 2, true)
	rec.RecordSignal(1, "SIGSEGV", 11, 4, 0x1000)
	rec.RecordRewind(RewindReport{Seq: 1, FailedUDI: 2, SiCodeName: "SEGV_PKUERR", SiCode: 4})
	rec.RecordDiscard(1, 2, 1<<20)
	rec.RecordHeapMerge(1, 3, 1<<10)
	rec.RecordCrash(1)

	var b strings.Builder
	if err := rec.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	doc := parsePrometheus(t, b.String())
	for _, fam := range []string{
		"sdrad_discarded_bytes_total", "sdrad_heap_merges_total",
		"sdrad_process_crashes_total", "sdrad_rewinds_total",
		"sdrad_faults_total", "sdrad_domain_faults_total",
		"sdrad_domain_last_fault_address", "sdrad_signals_total",
		"sdrad_enter_latency_ns", "sdrad_exit_latency_ns",
		"sdrad_flight_events_total", "sdrad_forensics_reports_total",
		"sdrad_forensics_reports_retained",
	} {
		if _, ok := doc.types[fam]; !ok {
			t.Errorf("pre-registered family %q missing from exposition", fam)
		}
	}
}

// --- HTTP surface ---

func TestHandlerEndpoints(t *testing.T) {
	rec := New(Options{})
	rec.RecordRewind(RewindReport{Seq: 1, FailedUDI: 7, SiCodeName: "SEGV_ACCERR"})
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	parsePrometheus(t, string(get("/metrics")))

	var mj map[string]any
	if err := json.Unmarshal(get("/metrics.json"), &mj); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	var fr struct {
		Capacity int     `json:"capacity"`
		Written  uint64  `json:"written"`
		Events   []Event `json:"events"`
	}
	if err := json.Unmarshal(get("/flightrecorder"), &fr); err != nil {
		t.Fatalf("/flightrecorder: %v", err)
	}
	if fr.Capacity == 0 || fr.Written != 1 || len(fr.Events) != 1 {
		t.Fatalf("/flightrecorder = %+v", fr)
	}
	var fo struct {
		Total   int64          `json:"total"`
		Reports []RewindReport `json:"reports"`
	}
	if err := json.Unmarshal(get("/forensics"), &fo); err != nil {
		t.Fatalf("/forensics: %v", err)
	}
	if fo.Total != 1 || len(fo.Reports) != 1 || fo.Reports[0].FailedUDI != 7 {
		t.Fatalf("/forensics = %+v", fo)
	}
	if resp, err := srv.Client().Get(srv.URL + "/nope"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("GET /nope: %v status=%v, want 404", err, resp.StatusCode)
	}
}

func TestDumpJSON(t *testing.T) {
	rec := New(Options{})
	rec.RecordEnter(1, 2, 100)
	rec.RecordRewind(RewindReport{Seq: 1, FailedUDI: 2, SiCodeName: "SEGV_PKUERR"})
	raw, err := rec.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Metrics == nil || len(d.Events) != 2 || len(d.Forensics) != 1 {
		t.Fatalf("dump = metrics:%v events:%d forensics:%d", d.Metrics != nil, len(d.Events), len(d.Forensics))
	}
}

// --- concurrency hammer (run under -race) ---

// TestConcurrentHammer pounds the recorder from writer goroutines while
// readers snapshot the flight ring, scrape Prometheus text, take JSON
// snapshots, and read forensics. The all-atomic slot protocol and the
// mutex-guarded registry must be race-detector clean and must never
// produce a torn event.
func TestConcurrentHammer(t *testing.T) {
	rec := New(Options{FlightEvents: 256, ForensicsRetain: 8, TransitionSampleShift: -1})
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	const writers, readers = 4, 3
	var wWG, rWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(tid int) {
			defer wWG.Done()
			for i := 0; i < iters; i++ {
				switch i % 6 {
				case 0:
					rec.RecordEnter(tid, i%4, int64(i))
				case 1:
					rec.RecordExit(tid, i%4, int64(i))
				case 2:
					rec.RecordFault("SEGV_PKUERR", 4, uint64(i), 2, false)
				case 3:
					rec.RecordDiscard(tid, i%4, uint64(i))
				case 4:
					rec.RecordRewind(RewindReport{Seq: int64(i), ThreadID: tid, FailedUDI: i % 4, SiCodeName: "SEGV_PKUERR"})
				case 5:
					rec.RecordSignal(tid, "SIGSEGV", 11, 4, uint64(i))
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rWG.Add(1)
		go func(which int) {
			defer rWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch which {
				case 0:
					evs := rec.Flight().Snapshot()
					for i, ev := range evs {
						if ev.Kind == "unknown" {
							t.Errorf("torn event surfaced: %+v", ev)
							return
						}
						if i > 0 && evs[i].Seq <= evs[i-1].Seq {
							t.Errorf("snapshot out of order at %d", i)
							return
						}
					}
				case 1:
					if err := rec.Registry().WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
					_ = rec.Registry().SnapshotJSON()
				case 2:
					_ = rec.Forensics().Reports()
					_, _ = rec.Forensics().Last()
				}
			}
		}(r)
	}
	wWG.Wait()
	close(stop)
	rWG.Wait()

	if got, want := rec.Flight().Written(), uint64(writers*iters); got != want {
		t.Fatalf("Written() = %d, want %d (every record call lands exactly one event)", got, want)
	}
	rewindsPerWriter := 0
	for i := 0; i < iters; i++ {
		if i%6 == 4 {
			rewindsPerWriter++
		}
	}
	if got, want := rec.Forensics().Added(), int64(writers*rewindsPerWriter); got != want {
		t.Fatalf("Added() = %d, want %d", got, want)
	}
}
