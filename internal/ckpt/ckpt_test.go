package ckpt

import (
	"bytes"
	"errors"
	"testing"

	"sdrad/internal/mem"
)

// buildAS makes an address space with recognizable contents.
func buildAS(t *testing.T) (*mem.AddressSpace, mem.Addr) {
	t.Helper()
	as := mem.NewAddressSpace()
	k, _ := as.PkeyAlloc()
	a, err := as.MapAnon(3*mem.PageSize, mem.ProtRW, k)
	if err != nil {
		t.Fatal(err)
	}
	cpu := as.NewCPU()
	cpu.WRPKRU(mem.PKRUAllow(mem.PKRUInit, k, true))
	cpu.Memset(a, 0xAB, 3*mem.PageSize)
	cpu.WriteU64(a+100, 0xFEEDC0DE)
	return as, a
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	as, a := buildAS(t)
	im := Capture(as)
	if im.Pages() != 3 {
		t.Fatalf("pages = %d", im.Pages())
	}
	if im.Bytes() != 3*mem.PageSize {
		t.Errorf("bytes = %d", im.Bytes())
	}
	if im.CaptureCost() <= 0 {
		t.Error("no capture cost recorded")
	}

	// Corrupt the original after capture; the restore must be pristine.
	if err := as.KernelWrite(a+100, []byte{0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	restored, dur, err := im.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Error("no restore duration")
	}
	var buf [8]byte
	if err := restored.KernelRead(a+100, buf[:]); err != nil {
		t.Fatal(err)
	}
	got := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24
	if got != 0xFEEDC0DE {
		t.Errorf("restored word = %#x", got)
	}
	// Protections and keys restored: same pkey checks apply.
	prot, pkey, ok := restored.PageInfo(a)
	if !ok || prot != mem.ProtRW || pkey == 0 {
		t.Errorf("restored page info = %v %d %v", prot, pkey, ok)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	as, a := buildAS(t)
	im := Capture(as)
	var buf bytes.Buffer
	n, err := im.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Errorf("written = %d, buffer = %d", n, buf.Len())
	}
	im2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if im2.Pages() != im.Pages() {
		t.Fatalf("pages = %d", im2.Pages())
	}
	restored, _, err := im2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	var word [8]byte
	if err := restored.KernelRead(a+100, word[:]); err != nil {
		t.Fatal(err)
	}
	if word[0] != 0xDE || word[3] != 0xFE {
		t.Errorf("deserialized word = %v", word)
	}
}

func TestSerializedSizeCompresses(t *testing.T) {
	as, _ := buildAS(t) // constant fill: compresses well
	im := Capture(as)
	n, err := im.SerializedSize()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= im.Bytes() {
		t.Errorf("serialized %d vs raw %d", n, im.Bytes())
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage"))); !errors.Is(err, ErrBadImage) {
		t.Errorf("err = %v", err)
	}
	// Valid gzip, wrong magic.
	var buf bytes.Buffer
	im := &Image{}
	if _, err := im.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncated stream.
	if _, err := Read(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated image accepted")
	}
}

func TestEmptyImage(t *testing.T) {
	as := mem.NewAddressSpace()
	im := Capture(as)
	if im.Pages() != 0 {
		t.Errorf("pages = %d", im.Pages())
	}
	restored, _, err := im.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats().MappedBytes.Load() != 0 {
		t.Error("empty restore mapped pages")
	}
}
