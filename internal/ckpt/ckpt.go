// Package ckpt implements the checkpoint & restore baseline the paper
// positions SDRaD against (§II-A, §VII): a CRIU-style snapshot of the
// whole process memory image that can later be restored. Its costs — a
// full-image copy at checkpoint time, serialized size at rest, and a
// full-image rebuild at restore time — are exactly what makes rollback by
// checkpointing expensive for large-state services like Memcached, and
// what SDRaD's per-domain discard avoids.
package ckpt

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"sdrad/internal/mem"
)

// Image is an in-memory checkpoint of a process address space.
type Image struct {
	pages []mem.PageDump
	taken time.Duration
}

// ErrBadImage reports a corrupt serialized checkpoint.
var ErrBadImage = errors.New("ckpt: malformed checkpoint image")

// magic identifies serialized images.
const magic = 0x53445243_4B505431 // "SDRCKPT1"

// Capture snapshots every mapped page of the address space. The recorded
// duration is the checkpoint cost.
func Capture(as *mem.AddressSpace) *Image {
	start := time.Now()
	pages := as.ExportPages()
	return &Image{pages: pages, taken: time.Since(start)}
}

// Pages returns the number of captured pages.
func (im *Image) Pages() int { return len(im.pages) }

// Bytes returns the raw captured memory size.
func (im *Image) Bytes() int64 { return int64(len(im.pages)) * mem.PageSize }

// CaptureCost returns how long the snapshot took.
func (im *Image) CaptureCost() time.Duration { return im.taken }

// Restore rebuilds a fresh address space from the image, returning it and
// the restore duration.
func (im *Image) Restore() (*mem.AddressSpace, time.Duration, error) {
	start := time.Now()
	as := mem.NewAddressSpace()
	if err := as.ImportPages(im.pages); err != nil {
		return nil, 0, err
	}
	return as, time.Since(start), nil
}

// WriteTo serializes the image (gzip-compressed), modeling checkpoint
// data at rest. Returns bytes written.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	zw := gzip.NewWriter(cw)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], magic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(im.pages)))
	if _, err := zw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	var rec [24]byte
	for _, pg := range im.pages {
		binary.LittleEndian.PutUint64(rec[0:], uint64(pg.Addr))
		binary.LittleEndian.PutUint64(rec[8:], uint64(pg.Prot))
		binary.LittleEndian.PutUint64(rec[16:], uint64(pg.PKey))
		if _, err := zw.Write(rec[:]); err != nil {
			return cw.n, err
		}
		if _, err := zw.Write(pg.Data); err != nil {
			return cw.n, err
		}
	}
	if err := zw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read deserializes an image written by WriteTo.
func Read(r io.Reader) (*Image, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	defer func() { _ = zr.Close() }()
	var hdr [16]byte
	if _, err := io.ReadFull(zr, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != magic {
		return nil, ErrBadImage
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > 1<<24 {
		return nil, ErrBadImage
	}
	im := &Image{pages: make([]mem.PageDump, 0, n)}
	var rec [24]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(zr, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
		}
		data := make([]byte, mem.PageSize)
		if _, err := io.ReadFull(zr, data); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
		}
		im.pages = append(im.pages, mem.PageDump{
			Addr: mem.Addr(binary.LittleEndian.Uint64(rec[0:])),
			Prot: mem.Prot(binary.LittleEndian.Uint64(rec[8:])),
			PKey: int(binary.LittleEndian.Uint64(rec[16:])),
			Data: data,
		})
	}
	return im, nil
}

// SerializedSize returns the gzip-compressed at-rest size of the image.
func (im *Image) SerializedSize() (int64, error) {
	var buf bytes.Buffer
	n, err := im.WriteTo(&buf)
	return n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
