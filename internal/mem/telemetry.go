package mem

import "sdrad/internal/telemetry"

// SetTelemetry attaches a recorder to the address space: raised faults
// are recorded as flight events, and the MMU's native counters (mapped
// bytes, fault total, TLB shootdowns) are mirrored into the registry via
// callbacks — the hot paths gain no writes. With no recorder attached the
// only added cost anywhere in this package is one atomic pointer load on
// the (already cold) fault path.
func (as *AddressSpace) SetTelemetry(rec *telemetry.Recorder) {
	as.tel.Store(rec)
	if rec == nil {
		return
	}
	reg := rec.Registry()
	reg.GaugeFunc("sdrad_mapped_bytes",
		"Mapped page bytes in the simulated address space (RSS analog).",
		func() int64 { return as.stats.MappedBytes.Load() })
	reg.CounterFunc("sdrad_mmu_faults_total",
		"Memory faults raised by the simulated MMU (all si_codes).",
		func() int64 { return as.stats.Faults.Load() })
	reg.CounterFunc("sdrad_tlb_shootdowns_total",
		"TLB shootdown IPIs broadcast by page-table mutators.",
		func() int64 { return as.shootdowns.Load() })
	reg.CounterFunc("sdrad_lease_grants_total",
		"Span leases granted after a full verification walk.",
		func() int64 { return as.leaseGrants.Load() })
	reg.CounterFunc("sdrad_lease_renewals_total",
		"Span leases renewed via the O(1) same-epoch recheck.",
		func() int64 { return as.leaseRenewals.Load() })
	reg.CounterFunc("sdrad_lease_refusals_total",
		"Span lease grant/renew refusals (callers fell back to checked accessors).",
		func() int64 { return as.leaseRefusals.Load() })
	reg.CounterFunc("sdrad_lease_invalidations_total",
		"Address-space-wide lease invalidations (shootdowns + policy-generation bumps).",
		func() int64 { return int64(as.leaseEpoch.Load()) })
}

// Telemetry returns the attached recorder, or nil.
func (as *AddressSpace) Telemetry() *telemetry.Recorder { return as.tel.Load() }
