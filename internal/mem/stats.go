package mem

import "sync/atomic"

// Stats aggregates counters across an address space and all CPU contexts
// attached to it. All fields are updated atomically and may be read at any
// time; they power the memory-overhead ("RSS") and domain-switch-profiling
// experiments.
type Stats struct {
	// Reads and Writes count access operations (not bytes).
	Reads  atomic.Int64
	Writes atomic.Int64
	// BytesRead and BytesWritten count payload bytes moved.
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
	// PKRUWrites counts WRPKRU executions across all threads; the paper
	// attributes 30-50% of domain-switch cost to this instruction.
	PKRUWrites atomic.Int64
	// Faults counts raised memory faults.
	Faults atomic.Int64
	// MappedBytes is the current total of mapped page bytes — the
	// simulation's resident-set-size analog used for the memory-overhead
	// experiments (paper §V-A, §V-B).
	MappedBytes atomic.Int64
}

// Snapshot is a point-in-time copy of Stats, safe to compare and print.
type Snapshot struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	PKRUWrites   int64
	Faults       int64
	MappedBytes  int64
}

// Snapshot captures the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Reads:        s.Reads.Load(),
		Writes:       s.Writes.Load(),
		BytesRead:    s.BytesRead.Load(),
		BytesWritten: s.BytesWritten.Load(),
		PKRUWrites:   s.PKRUWrites.Load(),
		Faults:       s.Faults.Load(),
		MappedBytes:  s.MappedBytes.Load(),
	}
}

// Sub returns the delta s minus o, field by field. MappedBytes is copied
// from s (it is a gauge, not a counter).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Reads:        s.Reads - o.Reads,
		Writes:       s.Writes - o.Writes,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		PKRUWrites:   s.PKRUWrites - o.PKRUWrites,
		Faults:       s.Faults - o.Faults,
		MappedBytes:  s.MappedBytes,
	}
}
