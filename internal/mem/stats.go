package mem

import "sync/atomic"

// Stats aggregates counters for an address space and the CPU contexts
// attached to it; they power the memory-overhead ("RSS") and
// domain-switch-profiling experiments.
//
// The hot access counters (reads, writes, bytes, PKRU writes) live on each
// CPU as plain thread-local fields so the access fast path never touches a
// shared cache line; Snapshot folds them together. The fields kept here are
// the cold shared ones: Faults (raised at trap frequency, not access
// frequency) and the MappedBytes gauge.
type Stats struct {
	// Faults counts raised memory faults.
	Faults atomic.Int64
	// MappedBytes is the current total of mapped page bytes — the
	// simulation's resident-set-size analog used for the memory-overhead
	// experiments (paper §V-A, §V-B).
	MappedBytes atomic.Int64

	as *AddressSpace
}

// Snapshot is a point-in-time copy of the counters, safe to compare and
// print.
type Snapshot struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	PKRUWrites   int64
	Faults       int64
	MappedBytes  int64
}

// Snapshot aggregates the per-CPU counters with the shared gauges. The
// per-CPU fields are plain (unsynchronized) thread-local counters, so a
// snapshot is exact only when the counted threads are quiescent (joined or
// parked); concurrent snapshots see a consistent-enough running total for
// monitoring but must not race with a -race-instrumented access stream.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		Faults:      s.Faults.Load(),
		MappedBytes: s.MappedBytes.Load(),
	}
	as := s.as
	as.cpuMu.Lock()
	for _, c := range as.cpus {
		snap.Reads += c.counts.reads
		snap.Writes += c.counts.writes
		snap.BytesRead += c.counts.bytesRead
		snap.BytesWritten += c.counts.bytesWritten
		snap.PKRUWrites += c.counts.pkruWrites
	}
	as.cpuMu.Unlock()
	return snap
}

// Sub returns the delta s minus o, field by field. MappedBytes is copied
// from s (it is a gauge, not a counter).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Reads:        s.Reads - o.Reads,
		Writes:       s.Writes - o.Writes,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		PKRUWrites:   s.PKRUWrites - o.PKRUWrites,
		Faults:       s.Faults - o.Faults,
		MappedBytes:  s.MappedBytes,
	}
}
