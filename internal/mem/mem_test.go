package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

// mustMap maps length bytes at an anonymous address and fails the test on
// error.
func mustMap(t *testing.T, as *AddressSpace, length int, prot Prot, pkey int) Addr {
	t.Helper()
	a, err := as.MapAnon(length, prot, pkey)
	if err != nil {
		t.Fatalf("MapAnon(%d, %v, %d): %v", length, prot, pkey, err)
	}
	return a
}

// catchFault runs f and returns the *Fault it panicked with, or nil.
func catchFault(f func()) (fault *Fault) {
	defer func() {
		if r := recover(); r != nil {
			if ft := AsFault(r); ft != nil {
				fault = ft
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if got := a.PageNum(); got != 0x12 {
		t.Errorf("PageNum = %#x, want 0x12", got)
	}
	if got := a.PageOff(); got != 0x345 {
		t.Errorf("PageOff = %#x, want 0x345", got)
	}
	if a.PageAligned() {
		t.Error("0x12345 should not be page aligned")
	}
	if !Addr(0x2000).PageAligned() {
		t.Error("0x2000 should be page aligned")
	}
}

func TestProtString(t *testing.T) {
	cases := []struct {
		p    Prot
		want string
	}{
		{ProtNone, "---"},
		{ProtRead, "r--"},
		{ProtRW, "rw-"},
		{ProtRX, "r-x"},
		{ProtRead | ProtWrite | ProtExec, "rwx"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Prot(%d).String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestMapAndRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, 3*PageSize, ProtRW, 0)

	data := []byte("hello, simulated world")
	cpu.Write(a+100, data)
	got := cpu.ReadBytes(a+100, len(data))
	if string(got) != string(data) {
		t.Errorf("round trip = %q, want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, 2*PageSize, ProtRW, 0)

	// A write spanning the page boundary must land contiguously.
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	at := a + Addr(PageSize-256)
	cpu.Write(at, data)
	got := cpu.ReadBytes(at, len(data))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestIntegerAccessors(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, PageSize, ProtRW, 0)

	cpu.WriteU16(a, 0xBEEF)
	if got := cpu.ReadU16(a); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	cpu.WriteU32(a+8, 0xDEADBEEF)
	if got := cpu.ReadU32(a + 8); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	cpu.WriteU64(a+16, 0x0123456789ABCDEF)
	if got := cpu.ReadU64(a + 16); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	cpu.WriteAddr(a+24, a)
	if got := cpu.ReadAddr(a + 24); got != a {
		t.Errorf("Addr = %#x, want %#x", got, a)
	}
	// Little-endian byte order.
	cpu.WriteU32(a+32, 0x04030201)
	b := cpu.ReadBytes(a+32, 4)
	if b[0] != 1 || b[1] != 2 || b[2] != 3 || b[3] != 4 {
		t.Errorf("LE layout = %v", b)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	f := catchFault(func() { cpu.ReadU8(0xdead0000) })
	if f == nil {
		t.Fatal("expected fault")
	}
	if f.Code != CodeMapErr {
		t.Errorf("code = %v, want SEGV_MAPERR", f.Code)
	}
	if f.Kind != AccessRead {
		t.Errorf("kind = %v, want read", f.Kind)
	}
	if f.Addr != 0xdead0000 {
		t.Errorf("addr = %#x", uint64(f.Addr))
	}
}

func TestProtectionFaults(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	ro := mustMap(t, as, PageSize, ProtRead, 0)

	if f := catchFault(func() { _ = cpu.ReadU8(ro) }); f != nil {
		t.Fatalf("read of read-only page faulted: %v", f)
	}
	f := catchFault(func() { cpu.WriteU8(ro, 1) })
	if f == nil {
		t.Fatal("expected write fault on read-only page")
	}
	if f.Code != CodeAccErr {
		t.Errorf("code = %v, want SEGV_ACCERR", f.Code)
	}

	none := mustMap(t, as, PageSize, ProtNone, 0)
	f = catchFault(func() { _ = cpu.ReadU8(none) })
	if f == nil || f.Code != CodeAccErr {
		t.Errorf("PROT_NONE read fault = %v, want SEGV_ACCERR", f)
	}
}

func TestWXEnforcement(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.MapAnon(PageSize, ProtWrite|ProtExec, 0); !errors.Is(err, ErrWXViolation) {
		t.Errorf("W+X MapAnon err = %v, want ErrWXViolation", err)
	}
	a := mustMap(t, as, PageSize, ProtRW, 0)
	if err := as.Protect(a, PageSize, ProtRead|ProtWrite|ProtExec); !errors.Is(err, ErrWXViolation) {
		t.Errorf("W+X Protect err = %v, want ErrWXViolation", err)
	}
	if err := as.Protect(a, PageSize, ProtRX); err != nil {
		t.Errorf("RX Protect err = %v", err)
	}
}

func TestPkeyAllocFree(t *testing.T) {
	as := NewAddressSpace()
	got := make(map[int]bool)
	for i := 0; i < NumKeys-1; i++ {
		k, err := as.PkeyAlloc()
		if err != nil {
			t.Fatalf("PkeyAlloc #%d: %v", i, err)
		}
		if k <= 0 || k >= NumKeys {
			t.Fatalf("key %d out of range", k)
		}
		if got[k] {
			t.Fatalf("key %d allocated twice", k)
		}
		got[k] = true
	}
	if _, err := as.PkeyAlloc(); !errors.Is(err, ErrNoKeys) {
		t.Errorf("16th alloc err = %v, want ErrNoKeys", err)
	}
	if err := as.PkeyFree(3); err != nil {
		t.Errorf("PkeyFree(3): %v", err)
	}
	k, err := as.PkeyAlloc()
	if err != nil || k != 3 {
		t.Errorf("realloc = (%d, %v), want (3, nil)", k, err)
	}
	if err := as.PkeyFree(0); !errors.Is(err, ErrBadKey) {
		t.Errorf("freeing key 0 err = %v, want ErrBadKey", err)
	}
	if err := as.PkeyFree(99); !errors.Is(err, ErrBadKey) {
		t.Errorf("freeing key 99 err = %v, want ErrBadKey", err)
	}
}

func TestPkeyFreeInUse(t *testing.T) {
	as := NewAddressSpace()
	k, _ := as.PkeyAlloc()
	a := mustMap(t, as, PageSize, ProtRW, k)
	if err := as.PkeyFree(k); !errors.Is(err, ErrKeyInUse) {
		t.Errorf("free of in-use key = %v, want ErrKeyInUse", err)
	}
	if err := as.Unmap(a, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.PkeyFree(k); err != nil {
		t.Errorf("free after unmap: %v", err)
	}
}

func TestPKUEnforcement(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	k, _ := as.PkeyAlloc()
	a := mustMap(t, as, PageSize, ProtRW, k)

	// Default PKRU denies everything but key 0.
	f := catchFault(func() { _ = cpu.ReadU8(a) })
	if f == nil || f.Code != CodePkuErr {
		t.Fatalf("read fault = %v, want SEGV_PKUERR", f)
	}
	if f.PKey != k {
		t.Errorf("fault pkey = %d, want %d", f.PKey, k)
	}

	// Read-only grant: reads pass, writes fault.
	cpu.WRPKRU(PKRUAllow(PKRUInit, k, false))
	if f := catchFault(func() { _ = cpu.ReadU8(a) }); f != nil {
		t.Fatalf("read with RO grant faulted: %v", f)
	}
	f = catchFault(func() { cpu.WriteU8(a, 1) })
	if f == nil || f.Code != CodePkuErr {
		t.Fatalf("write fault = %v, want SEGV_PKUERR", f)
	}

	// Full grant: all accesses pass.
	cpu.WRPKRU(PKRUAllow(PKRUInit, k, true))
	if f := catchFault(func() { cpu.WriteU8(a, 1) }); f != nil {
		t.Fatalf("write with RW grant faulted: %v", f)
	}

	// Revocation applies immediately (TLB does not cache PKRU decisions).
	cpu.WRPKRU(PKRUDeny(cpu.PKRU(), k))
	if f := catchFault(func() { _ = cpu.ReadU8(a) }); f == nil {
		t.Fatal("read after deny should fault")
	}
}

func TestPKRUIsPerCPU(t *testing.T) {
	as := NewAddressSpace()
	k, _ := as.PkeyAlloc()
	a := mustMap(t, as, PageSize, ProtRW, k)

	granted := as.NewCPU()
	granted.WRPKRU(PKRUAllow(PKRUInit, k, true))
	granted.WriteU8(a, 42)

	denied := as.NewCPU()
	if f := catchFault(func() { _ = denied.ReadU8(a) }); f == nil {
		t.Fatal("second CPU inherited rights it was never granted")
	}
	if got := granted.ReadU8(a); got != 42 {
		t.Errorf("granted CPU read %d, want 42", got)
	}
}

func TestPKRUHelpers(t *testing.T) {
	if PKRUInit != PKRUAllow(PKRUDenyAll, 0, true) {
		t.Error("PKRUInit should equal deny-all with key0 rw")
	}
	v := PKRUAllow(PKRUDenyAll, 5, false)
	ad, wd := PKRURights(v, 5)
	if ad || !wd {
		t.Errorf("key5 rights = ad=%v wd=%v, want ad=false wd=true", ad, wd)
	}
	ad, _ = PKRURights(v, 4)
	if !ad {
		t.Error("key4 should remain access-disabled")
	}
	v = PKRUDeny(v, 5)
	ad, _ = PKRURights(v, 5)
	if !ad {
		t.Error("PKRUDeny did not set AD")
	}
}

func TestPkeyMprotectRetag(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	k1, _ := as.PkeyAlloc()
	k2, _ := as.PkeyAlloc()
	a := mustMap(t, as, 2*PageSize, ProtRW, k1)
	cpu.WRPKRU(PKRUAllow(PKRUInit, k1, true))
	cpu.WriteU8(a, 9)

	// Retag the first page with k2: the same CPU must lose access even
	// though its TLB may have cached the old translation.
	if err := as.PkeyMprotect(a, PageSize, ProtRW, k2); err != nil {
		t.Fatal(err)
	}
	f := catchFault(func() { _ = cpu.ReadU8(a) })
	if f == nil || f.Code != CodePkuErr || f.PKey != k2 {
		t.Fatalf("post-retag fault = %v, want PKUERR with pkey %d", f, k2)
	}
	// Second page keeps k1.
	if f := catchFault(func() { _ = cpu.ReadU8(a + PageSize) }); f != nil {
		t.Fatalf("second page faulted: %v", f)
	}
}

func TestUnmapInvalidatesTLB(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, PageSize, ProtRW, 0)
	cpu.WriteU8(a, 1) // populate TLB
	if err := as.Unmap(a, PageSize); err != nil {
		t.Fatal(err)
	}
	f := catchFault(func() { _ = cpu.ReadU8(a) })
	if f == nil || f.Code != CodeMapErr {
		t.Fatalf("post-unmap access = %v, want SEGV_MAPERR", f)
	}
}

func TestMapErrors(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(Addr(123), PageSize, ProtRW, 0); !errors.Is(err, ErrAlignment) {
		t.Errorf("unaligned Map err = %v", err)
	}
	if err := as.Map(Addr(0x4000), 0, ProtRW, 0); !errors.Is(err, ErrBadLength) {
		t.Errorf("zero-length Map err = %v", err)
	}
	if err := as.Map(Addr(0x4000), PageSize, ProtRW, 7); !errors.Is(err, ErrBadKey) {
		t.Errorf("unallocated-key Map err = %v", err)
	}
	if err := as.Map(Addr(0x4000), PageSize, ProtRW, -1); !errors.Is(err, ErrBadKey) {
		t.Errorf("negative-key Map err = %v", err)
	}
	if err := as.Map(Addr(0x4000), PageSize, ProtRW, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(Addr(0x4000), PageSize, ProtRW, 0); !errors.Is(err, ErrOverlap) {
		t.Errorf("overlapping Map err = %v", err)
	}
	if err := as.Unmap(Addr(0x8000), PageSize); !errors.Is(err, ErrUnmapped) {
		t.Errorf("Unmap of hole err = %v", err)
	}
	if err := as.Protect(Addr(0x8000), PageSize, ProtRead); !errors.Is(err, ErrUnmapped) {
		t.Errorf("Protect of hole err = %v", err)
	}
}

func TestGuardGapBetweenMappings(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, PageSize, ProtRW, 0)
	b := mustMap(t, as, PageSize, ProtRW, 0)
	if b <= a+PageSize {
		t.Fatalf("no gap between regions: a=%#x b=%#x", uint64(a), uint64(b))
	}
	// An overflow running off the end of region a hits unmapped memory.
	f := catchFault(func() { cpu.WriteU8(a+PageSize, 0xFF) })
	if f == nil || f.Code != CodeMapErr {
		t.Fatalf("overflow into gap = %v, want SEGV_MAPERR", f)
	}
}

func TestMappedAndPageInfo(t *testing.T) {
	as := NewAddressSpace()
	k, _ := as.PkeyAlloc()
	a := mustMap(t, as, 2*PageSize, ProtRead, k)
	if !as.Mapped(a, 2*PageSize) {
		t.Error("range should be mapped")
	}
	if as.Mapped(a, 3*PageSize) {
		t.Error("range extending past mapping reported mapped")
	}
	if as.Mapped(a, 0) {
		t.Error("zero-length range reported mapped")
	}
	prot, pkey, ok := as.PageInfo(a + PageSize + 17)
	if !ok || prot != ProtRead || pkey != k {
		t.Errorf("PageInfo = (%v, %d, %v)", prot, pkey, ok)
	}
	if _, _, ok := as.PageInfo(0xffff0000); ok {
		t.Error("PageInfo of hole reported ok")
	}
}

func TestKernelAccess(t *testing.T) {
	as := NewAddressSpace()
	k, _ := as.PkeyAlloc()
	a := mustMap(t, as, PageSize, ProtNone, k) // no user access at all
	want := []byte{1, 2, 3, 4}
	if err := as.KernelWrite(a, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := as.KernelRead(a, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernel round trip = %v", got)
		}
	}
	if err := as.KernelRead(0xeeee0000, got); !errors.Is(err, ErrUnmapped) {
		t.Errorf("kernel read of hole err = %v", err)
	}
	if err := as.KernelWrite(0xeeee0000, want); !errors.Is(err, ErrUnmapped) {
		t.Errorf("kernel write of hole err = %v", err)
	}
}

func TestMemsetAndCopy(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, 2*PageSize, ProtRW, 0)
	cpu.Memset(a, 0xAB, PageSize+123)
	if got := cpu.ReadU8(a + PageSize + 122); got != 0xAB {
		t.Errorf("memset tail byte = %#x", got)
	}
	if got := cpu.ReadU8(a + PageSize + 123); got != 0 {
		t.Errorf("byte past memset = %#x, want 0", got)
	}
	b := mustMap(t, as, PageSize, ProtRW, 0)
	cpu.Copy(b, a, 256)
	if got := cpu.ReadU8(b + 255); got != 0xAB {
		t.Errorf("copied byte = %#x", got)
	}
}

func TestProbe(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, PageSize, ProtRead, 0)
	if err := cpu.Probe(a, PageSize, AccessRead); err != nil {
		t.Errorf("probe read: %v", err)
	}
	err := cpu.Probe(a, PageSize, AccessWrite)
	var f *Fault
	if !errors.As(err, &f) || f.Code != CodeAccErr {
		t.Errorf("probe write err = %v, want ACCERR fault", err)
	}
	if err := cpu.Probe(a, PageSize+1, AccessRead); err == nil {
		t.Error("probe past end should fail")
	}
	if err := cpu.Probe(a, 0, AccessRead); err != nil {
		t.Errorf("zero-length probe: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	a := mustMap(t, as, PageSize, ProtRW, 0)
	before := as.Stats().Snapshot()
	cpu.Write(a, make([]byte, 100))
	cpu.Read(a, make([]byte, 40))
	cpu.WRPKRU(PKRUInit)
	d := as.Stats().Snapshot().Sub(before)
	if d.BytesWritten != 100 || d.BytesRead != 40 {
		t.Errorf("bytes = written %d read %d", d.BytesWritten, d.BytesRead)
	}
	if d.PKRUWrites != 1 {
		t.Errorf("PKRU writes = %d", d.PKRUWrites)
	}
	if d.Writes != 1 || d.Reads != 1 {
		t.Errorf("ops = %d writes %d reads", d.Writes, d.Reads)
	}
	catchFault(func() { cpu.ReadU8(0xdddd0000) })
	if got := as.Stats().Faults.Load(); got != 1 {
		t.Errorf("faults = %d", got)
	}
}

func TestMappedBytesGauge(t *testing.T) {
	as := NewAddressSpace()
	a := mustMap(t, as, 3*PageSize, ProtRW, 0)
	if got := as.Stats().MappedBytes.Load(); got != 3*PageSize {
		t.Errorf("mapped = %d", got)
	}
	if err := as.Unmap(a, PageSize); err != nil {
		t.Fatal(err)
	}
	if got := as.Stats().MappedBytes.Load(); got != 2*PageSize {
		t.Errorf("mapped after partial unmap = %d", got)
	}
}

func TestWRPKRUCostModel(t *testing.T) {
	as := NewAddressSpace(WithWRPKRUCost(10))
	cpu := as.NewCPU()
	cpu.WRPKRU(PKRUAllowAll) // must not hang or panic
	if cpu.PKRU() != PKRUAllowAll {
		t.Error("PKRU not updated under cost model")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x1000, Kind: AccessWrite, Code: CodePkuErr, PKey: 3}
	msg := f.Error()
	if msg == "" || !f.IsPKU() {
		t.Errorf("fault formatting broken: %q", msg)
	}
	var err error = f
	var out *Fault
	if !errors.As(err, &out) || out.PKey != 3 {
		t.Error("errors.As failed on Fault")
	}
	f2 := &Fault{Addr: 0x2000, Kind: AccessRead, Code: CodeMapErr}
	if f2.IsPKU() || f2.Error() == "" {
		t.Error("MAPERR fault formatting broken")
	}
	if AsFault("not a fault") != nil {
		t.Error("AsFault should return nil for foreign panics")
	}
}

// Property: writes followed by reads at arbitrary in-range offsets return
// the written data (memory behaves like memory).
func TestQuickReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	const regionPages = 8
	a := mustMap(t, as, regionPages*PageSize, ProtRW, 0)

	prop := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		pos := a + Addr(off%uint32(regionPages*PageSize-len(data)))
		cpu.Write(pos, data)
		got := cpu.ReadBytes(pos, len(data))
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PKRUAllow/PKRUDeny only affect the targeted key.
func TestQuickPKRUIsolation(t *testing.T) {
	prop := func(base uint32, key uint8, write bool) bool {
		k := int(key % NumKeys)
		v := PKRUAllow(base, k, write)
		for other := 0; other < NumKeys; other++ {
			if other == k {
				continue
			}
			ad0, wd0 := PKRURights(base, other)
			ad1, wd1 := PKRURights(v, other)
			if ad0 != ad1 || wd0 != wd1 {
				return false
			}
		}
		ad, wd := PKRURights(v, k)
		return !ad && wd == !write
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: mapping N pages then unmapping them restores the gauge.
func TestQuickMappedBytesBalance(t *testing.T) {
	prop := func(sizes []uint16) bool {
		as := NewAddressSpace()
		var addrs []Addr
		var lens []int
		for _, s := range sizes {
			n := int(s%64+1) * 64 // 64B..4KiB, sub-page sizes round up
			a, err := as.MapAnon(n, ProtRW, 0)
			if err != nil {
				return false
			}
			addrs = append(addrs, a)
			lens = append(lens, n)
		}
		for i, a := range addrs {
			if err := as.Unmap(a, lens[i]); err != nil {
				return false
			}
		}
		return as.Stats().MappedBytes.Load() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" ||
		AccessExec.String() != "exec" || AccessKind(99).String() != "unknown" {
		t.Error("AccessKind.String broken")
	}
}

func TestFaultCodeString(t *testing.T) {
	if CodeMapErr.String() != "SEGV_MAPERR" || CodeAccErr.String() != "SEGV_ACCERR" ||
		CodePkuErr.String() != "SEGV_PKUERR" {
		t.Error("FaultCode.String broken")
	}
	if FaultCode(9).String() == "" {
		t.Error("unknown code should still format")
	}
}

func TestCPUString(t *testing.T) {
	as := NewAddressSpace()
	cpu := as.NewCPU()
	if cpu.String() == "" {
		t.Error("CPU.String empty")
	}
}
