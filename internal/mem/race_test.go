package mem

import (
	"sync"
	"testing"
)

// TestTranslateRaceWithMapping hammers the lock-free translation path from
// several CPUs while another goroutine continuously maps, remaps,
// protects, and unmaps a churn region. It pins down the invariants the
// radix table and TLB-shootdown protocol must uphold under -race:
//
//   - a translation never observes torn page-table state (the race
//     detector verifies the atomics discipline);
//   - accesses to a stable region keep succeeding, with stable contents;
//   - accesses to the churn region either succeed or raise a well-formed
//     Fault for the mapping state they raced with — never anything else.
func TestTranslateRaceWithMapping(t *testing.T) {
	as := NewAddressSpace()

	stable, err := as.MapAnon(4*PageSize, ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	init := as.NewCPU()
	for i := 0; i < 4*PageSize; i += 8 {
		init.WriteU64(stable+Addr(i), uint64(i))
	}

	churn, err := as.MapAnon(8*PageSize, ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	key, err := as.PkeyAlloc()
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	iters := 30000
	if testing.Short() {
		iters = 8000
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Mutator: cycles the churn region through unmap/map/protect/
	// pkey_mprotect, each step a full shootdown.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < iters; i++ {
			switch i % 4 {
			case 0:
				if err := as.Unmap(churn, 8*PageSize); err != nil {
					t.Errorf("unmap: %v", err)
					return
				}
			case 1:
				if err := as.Map(churn, 8*PageSize, ProtRW, 0); err != nil {
					t.Errorf("map: %v", err)
					return
				}
			case 2:
				if err := as.Protect(churn, 8*PageSize, ProtRead); err != nil {
					t.Errorf("protect: %v", err)
					return
				}
			case 3:
				if err := as.PkeyMprotect(churn, 8*PageSize, ProtRW, key); err != nil {
					t.Errorf("pkey_mprotect: %v", err)
					return
				}
			}
		}
	}()

	// Readers: each on its own CPU, interleaving stable-region checks with
	// churn-region probes.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := as.NewCPU()
			c.WRPKRU(PKRUAllow(PKRUInit, key, true))
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				off := Addr((i * 8) % (4 * PageSize))
				if got := c.ReadU64(stable + off); got != uint64(off) {
					t.Errorf("reader %d: stable word at +%#x = %d, want %d", r, off, got, off)
					return
				}
				addr := churn + Addr((i*64)%(8*PageSize))
				if err := c.Probe(addr, 1, AccessWrite); err != nil {
					f := AsFault(err)
					if f == nil {
						t.Errorf("reader %d: non-fault error %v", r, err)
						return
					}
					if f.Code != CodeMapErr && f.Code != CodeAccErr && f.Code != CodePkuErr {
						t.Errorf("reader %d: unexpected fault code %v", r, f.Code)
						return
					}
				}
				i++
			}
		}(r)
	}

	wg.Wait()

	// After the dust settles every CPU must observe the final state
	// exactly: the mutator ends on a PkeyMprotect(ProtRW, key) step.
	final := as.NewCPU()
	final.WRPKRU(PKRUAllow(PKRUInit, key, true))
	final.WriteU8(churn, 0xAB)
	if got := final.ReadU8(churn); got != 0xAB {
		t.Fatalf("final churn byte = %#x, want 0xAB", got)
	}
}

// TestShootdownIsExactForOwnThread verifies the amortized TLB-invalidation
// scheme never lets a thread see its own stale mapping: mutate-then-access
// on one goroutine must fault (or see new rights) immediately, which is
// the property the fault-semantics tests and rewind machinery rely on.
func TestShootdownIsExactForOwnThread(t *testing.T) {
	as := NewAddressSpace()
	addr, err := as.MapAnon(PageSize, ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := as.NewCPU()
	c.WriteU8(addr, 1) // populate TLB

	if err := as.Protect(addr, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := c.Probe(addr, 1, AccessWrite); AsFault(err) == nil || AsFault(err).Code != CodeAccErr {
		t.Fatalf("write after Protect(r--): err = %v, want ACCERR fault", err)
	}

	if err := as.Unmap(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := c.Probe(addr, 1, AccessRead); AsFault(err) == nil || AsFault(err).Code != CodeMapErr {
		t.Fatalf("read after Unmap: err = %v, want MAPERR fault", err)
	}
}
