package mem

import (
	"sync/atomic"
	"testing"
)

// benchSpace maps npages of RW memory and returns a CPU for them.
func benchSpace(b *testing.B, npages int) (*AddressSpace, *CPU, Addr) {
	b.Helper()
	as := NewAddressSpace()
	addr, err := as.MapAnon(npages*PageSize, ProtRW, 0)
	if err != nil {
		b.Fatal(err)
	}
	return as, as.NewCPU(), addr
}

// BenchmarkTranslateHit measures the TLB-hit fast path: repeated one-byte
// loads of the same address.
func BenchmarkTranslateHit(b *testing.B) {
	_, c, addr := benchSpace(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink = c.ReadU8(addr)
	}
	_ = sink
}

// BenchmarkTranslateMiss measures the page-table walk: alternating
// accesses to two pages whose page numbers collide in the direct-mapped
// TLB, so every translation misses.
func BenchmarkTranslateMiss(b *testing.B) {
	_, c, addr := benchSpace(b, 2*tlbSize)
	conflict := addr + tlbSize*PageSize // same TLB index as addr
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			sink = c.ReadU8(addr)
		} else {
			sink = c.ReadU8(conflict)
		}
	}
	_ = sink
}

// BenchmarkReadU64 measures the aligned scalar fast path used by the tlsf
// header, stack canary, and memcache item-header accesses.
func BenchmarkReadU64(b *testing.B) {
	_, c, addr := benchSpace(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = c.ReadU64(addr + 8)
	}
	_ = sink
}

// BenchmarkReadSpan measures bulk access: reading one full page through
// the span-chunked Read path.
func BenchmarkReadSpan(b *testing.B) {
	_, c, addr := benchSpace(b, 1)
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(addr, buf)
	}
}

// BenchmarkCopy measures the zero-allocation page-to-page copy path.
func BenchmarkCopy(b *testing.B) {
	_, c, addr := benchSpace(b, 32)
	b.SetBytes(16 * PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Copy(addr+16*PageSize, addr, 16*PageSize)
	}
}

// BenchmarkParallelRW measures the lock-free read path under parallelism:
// each worker owns a CPU and hammers a disjoint page, the scenario the
// per-CPU counters and lock-free table exist for.
func BenchmarkParallelRW(b *testing.B) {
	as := NewAddressSpace()
	const workers = 8
	addr, err := as.MapAnon(workers*PageSize, ProtRW, 0)
	if err != nil {
		b.Fatal(err)
	}
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := as.NewCPU()
		// Hand each goroutine its own page, wrapping if GOMAXPROCS
		// exceeds the mapped pages.
		w := int(atomic.AddInt64(&next, 1)-1) % workers
		base := addr + Addr(w*PageSize)
		i := uint64(0)
		for pb.Next() {
			off := Addr(i % (PageSize - 8))
			c.WriteU8(base+off, byte(i))
			_ = c.ReadU8(base + off)
			i++
		}
	})
}
