// Package mem implements a simulated 64-bit virtual address space with
// 4 KiB pages, page-granular memory protection, and Memory Protection Keys
// (MPK/PKU) semantics equivalent to those of 64-bit x86 processors.
//
// The package is the hardware substrate for the SDRaD reproduction: the
// original system relies on Intel PKU, which cannot be exercised from Go
// (the runtime scheduler and garbage collector conflict with per-thread
// PKRU state and foreign stacks), so every byte of "application memory" in
// this repository lives in a simulated AddressSpace and every load/store is
// performed through a CPU context that enforces page protections and
// protection-key rights exactly the way the hardware would:
//
//   - each mapped page carries read/write/execute permissions and a 4-bit
//     protection key stored in its (simulated) page-table entry;
//   - each hardware thread owns a PKRU register with access-disable (AD)
//     and write-disable (WD) bits per key, checked on every data access;
//   - violations raise a Fault carrying the same si_code discrimination
//     Linux delivers to user space (SEGV_MAPERR, SEGV_ACCERR, SEGV_PKUERR).
//
// Faults are reported by panicking with a *Fault value, playing the role of
// a synchronous hardware trap; the process layer (internal/proc) and the
// SDRaD reference monitor (internal/core) contain the "signal handlers"
// that recover such panics and decide between rewinding and termination.
//
// The page table is a lock-free two-level radix tree (see DESIGN.md,
// "MMU fast path"): translations never take a lock, mutations serialize on
// a mutex and publish through atomic pointer stores plus a per-CPU TLB
// shootdown flag.
package mem

import (
	"errors"
	"sync"
	"sync/atomic"

	"sdrad/internal/telemetry"
)

// Page geometry of the simulated MMU. The values match x86-64 4 KiB pages.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// NumKeys is the number of protection keys available to a process. Intel
// PKU provides 16 keys, of which key 0 is the implicit default for all
// memory not explicitly tagged.
const NumKeys = 16

// Addr is a virtual address in the simulated address space.
type Addr uint64

// PageNum returns the virtual page number containing a.
func (a Addr) PageNum() uint64 { return uint64(a) >> PageShift }

// PageOff returns the offset of a within its page.
func (a Addr) PageOff() uint64 { return uint64(a) & PageMask }

// PageAligned reports whether a is aligned to a page boundary.
func (a Addr) PageAligned() bool { return uint64(a)&PageMask == 0 }

// Prot is a page-protection bit set, mirroring PROT_READ/WRITE/EXEC.
type Prot uint8

// Page protection bits.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtExec  Prot = 1 << 2
	ProtRW         = ProtRead | ProtWrite
	ProtRX         = ProtRead | ProtExec
)

func (p Prot) String() string {
	b := [3]byte{'-', '-', '-'}
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b[:])
}

// Errors returned by mapping and key-management operations.
var (
	ErrNoKeys       = errors.New("mem: no free protection keys")
	ErrBadKey       = errors.New("mem: invalid or unallocated protection key")
	ErrOverlap      = errors.New("mem: mapping overlaps an existing mapping")
	ErrUnmapped     = errors.New("mem: address range is not fully mapped")
	ErrAlignment    = errors.New("mem: address is not page aligned")
	ErrBadLength    = errors.New("mem: length must be positive")
	ErrWXViolation  = errors.New("mem: mapping would be writable and executable (W^X)")
	ErrKeyInUse     = errors.New("mem: protection key still tags mapped pages")
	ErrOutOfAddress = errors.New("mem: simulated address space exhausted")
)

// page is a simulated page-table entry together with its backing frame.
// Once published into the page table a page is immutable except for its
// data: protection or key changes replace the entry with a copy sharing the
// same frame (copy-on-write of the PTE), so lock-free readers always see a
// consistent (prot, pkey) pair.
type page struct {
	data []byte // len == PageSize
	// span is the whole backing array of the mapping this page was created
	// in, and spanOff this page's byte offset within it. Map allocates one
	// contiguous backing array per mapping, so two pages belong to the same
	// mapping exactly when their spans share a first element; span leases
	// use this to hand out multi-page native windows (see lease.go).
	// Protection changes preserve span identity through the PTE copy.
	span    []byte
	spanOff uint64
	prot    Prot
	pkey    uint8
}

// Two-level radix page-table geometry. The root is an inline array of
// atomic pointers to leaves; each leaf is an array of atomic pointers to
// pages. Together they cover 2^(rootBits+leafBits) pages = 2 TiB of
// virtual address space, far above the simulation's bump-allocated
// placements; pages beyond that fall back to a mutex-guarded overflow map.
const (
	leafBits     = 14
	rootBits     = 15
	leafPages    = 1 << leafBits
	coveredPages = 1 << (rootBits + leafBits)
)

// pageLeaf is one second-level page-table node covering 64 MiB of VA.
type pageLeaf [leafPages]atomic.Pointer[page]

// AddressSpace is a simulated per-process virtual address space: a sparse
// page table plus protection-key allocation state. All methods are safe for
// concurrent use by multiple simulated threads; data accesses to distinct
// bytes behave like real shared memory (no implicit synchronization).
type AddressSpace struct {
	// root is the first radix level. Translation reads it lock-free;
	// mutations (all serialized on mu) publish entries with atomic stores.
	// Leaves are allocated on first use and never freed — an empty leaf is
	// just a cached interior node, as in a real page table.
	root [1 << rootBits]atomic.Pointer[pageLeaf]

	// mu serializes all page-table and key-state mutations. Translations
	// never take it.
	mu       sync.Mutex
	pkeys    [NumKeys]bool    // allocated keys; key 0 always allocated
	keyPages [NumKeys]int64   // mapped pages tagged with each key
	overflow map[uint64]*page // pages with pn >= coveredPages
	nextMap  Addr             // bump pointer for MapAnon placement

	// overflowMu guards overflow for lock-free-path readers; mutators hold
	// mu as well.
	overflowMu sync.RWMutex

	// cpuMu guards cpus, the registry of CPU contexts attached to this
	// address space. CPUs are per simulated thread, so the registry is
	// small and bounded by the process's thread count.
	cpuMu sync.Mutex
	cpus  []*CPU

	// guardGap is the unmapped gap (bytes) MapAnon leaves between regions
	// so that large overflows out of a mapping hit unmapped memory, the
	// moral equivalent of guard pages between process mappings.
	guardGap uint64

	// wrpkruSpin models the pipeline-serialization cost of WRPKRU as busy
	// iterations; see WithWRPKRUCost.
	wrpkruSpin int

	// faults is the bounded log of recent traps; see RecentFaults.
	faults faultLog

	// shootdowns counts shootdown broadcasts; tel is the optional
	// telemetry recorder (nil = disabled, see SetTelemetry).
	shootdowns atomic.Int64
	tel        atomic.Pointer[telemetry.Recorder]

	// leaseEpoch revokes outstanding span leases (see lease.go): bumped by
	// every shootdown and by BumpLeaseEpoch. The grant/renewal/refusal
	// counters record lease traffic for telemetry.
	leaseEpoch    atomic.Uint64
	leaseGrants   atomic.Int64
	leaseRenewals atomic.Int64
	leaseRefusals atomic.Int64

	stats Stats
}

// mapAnonBase is where MapAnon starts placing regions. Placed high so that
// small integers used as lengths or indices never alias valid addresses.
const mapAnonBase Addr = 0x1_0000_0000

// defaultGuardGap separates MapAnon regions by 16 unmapped pages.
const defaultGuardGap = 16 * PageSize

// Option configures an AddressSpace.
type Option func(*AddressSpace)

// WithGuardGap sets the unmapped gap MapAnon leaves between regions.
func WithGuardGap(bytes uint64) Option {
	return func(as *AddressSpace) { as.guardGap = bytes }
}

// WithWRPKRUCost sets the modeled cost of a PKRU write, expressed as busy
// iterations executed inside WRPKRU. The real instruction costs ~20-30 ns
// because it serializes the pipeline; benchmarks use this knob to study how
// sensitive SDRaD overhead is to the hardware cost (paper §V-B observes
// 30-50% of domain-switch cost is the PKRU write).
func WithWRPKRUCost(iterations int) Option {
	return func(as *AddressSpace) { as.wrpkruSpin = iterations }
}

// NewAddressSpace returns an empty address space with protection key 0
// allocated (the architectural default key).
func NewAddressSpace(opts ...Option) *AddressSpace {
	as := &AddressSpace{
		nextMap:  mapAnonBase,
		guardGap: defaultGuardGap,
	}
	as.pkeys[0] = true
	as.stats.as = as
	for _, o := range opts {
		o(as)
	}
	return as
}

// PkeyAlloc allocates a fresh protection key (1..15), mirroring the
// pkey_alloc(2) system call. It fails with ErrNoKeys when all 15
// allocatable keys are in use — the same resource limit the paper notes
// caps the number of simultaneously isolated domains.
func (as *AddressSpace) PkeyAlloc() (int, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	for k := 1; k < NumKeys; k++ {
		if !as.pkeys[k] {
			as.pkeys[k] = true
			return k, nil
		}
	}
	return 0, ErrNoKeys
}

// PkeyFree releases a protection key, mirroring pkey_free(2). Freeing a key
// that still tags mapped pages is refused (the real syscall permits it but
// the result is a well-known foot-gun; SDRaD never needs it).
func (as *AddressSpace) PkeyFree(key int) error {
	if key <= 0 || key >= NumKeys {
		return ErrBadKey
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if !as.pkeys[key] {
		return ErrBadKey
	}
	if as.keyPages[key] != 0 {
		return ErrKeyInUse
	}
	as.pkeys[key] = false
	return nil
}

// KeyAllocated reports whether key is currently allocated.
func (as *AddressSpace) KeyAllocated(key int) bool {
	if key < 0 || key >= NumKeys {
		return false
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.pkeys[key]
}

// roundUp rounds n up to a multiple of PageSize.
func roundUp(n int) uint64 {
	return (uint64(n) + PageMask) &^ uint64(PageMask)
}

// lookup returns the page containing pn or nil. It is the translation slow
// path (TLB miss) and takes no locks on the radix-covered range.
func (as *AddressSpace) lookup(pn uint64) *page {
	if pn < coveredPages {
		leaf := as.root[pn>>leafBits].Load()
		if leaf == nil {
			return nil
		}
		return leaf[pn&(leafPages-1)].Load()
	}
	as.overflowMu.RLock()
	pg := as.overflow[pn]
	as.overflowMu.RUnlock()
	return pg
}

// setPage publishes (or, with nil, removes) the page-table entry for pn.
// Callers hold as.mu; readers observe the change via atomic loads.
func (as *AddressSpace) setPage(pn uint64, pg *page) {
	if pn < coveredPages {
		slot := &as.root[pn>>leafBits]
		leaf := slot.Load()
		if leaf == nil {
			if pg == nil {
				return
			}
			leaf = new(pageLeaf)
			slot.Store(leaf)
		}
		leaf[pn&(leafPages-1)].Store(pg)
		return
	}
	as.overflowMu.Lock()
	if pg == nil {
		delete(as.overflow, pn)
	} else {
		if as.overflow == nil {
			as.overflow = make(map[uint64]*page)
		}
		as.overflow[pn] = pg
	}
	as.overflowMu.Unlock()
}

// Map establishes a mapping of length bytes at addr with the given
// protection and key, mirroring mmap(MAP_FIXED)+pkey_mprotect. addr must be
// page aligned and the range must not overlap an existing mapping. W^X is
// enforced at mapping time (threat-model assumption A1 of the paper).
func (as *AddressSpace) Map(addr Addr, length int, prot Prot, pkey int) error {
	if !addr.PageAligned() {
		return ErrAlignment
	}
	if length <= 0 {
		return ErrBadLength
	}
	if prot&ProtWrite != 0 && prot&ProtExec != 0 {
		return ErrWXViolation
	}
	if pkey < 0 || pkey >= NumKeys {
		return ErrBadKey
	}
	npages := roundUp(length) >> PageShift
	as.mu.Lock()
	defer as.mu.Unlock()
	if !as.pkeys[pkey] {
		return ErrBadKey
	}
	base := addr.PageNum()
	if base+npages < base {
		return ErrOutOfAddress
	}
	for i := uint64(0); i < npages; i++ {
		if as.lookup(base+i) != nil {
			return ErrOverlap
		}
	}
	// One slab of page structs and one backing array per mapping: the
	// radix walk chases root -> leaf -> *page -> data, and individually
	// allocated structs land wherever the allocator's span layout puts
	// them, making the walk's cache behavior (and the translate_miss
	// benchmark) bimodal across processes. Contiguity by construction
	// keeps it flat. The slab stays reachable until every page of the
	// mapping is unmapped and re-protect copies have dropped their frame
	// references — acceptable, since regions are unmapped as units.
	slab := make([]page, npages)
	data := make([]byte, int(npages)<<PageShift)
	for i := uint64(0); i < npages; i++ {
		pg := &slab[i]
		lo := int(i) << PageShift
		pg.data = data[lo : lo+PageSize : lo+PageSize]
		pg.span = data
		pg.spanOff = uint64(lo)
		pg.prot = prot
		pg.pkey = uint8(pkey)
		as.setPage(base+i, pg)
	}
	as.keyPages[pkey] += int64(npages)
	as.stats.MappedBytes.Add(int64(npages) * PageSize)
	as.shootdown()
	return nil
}

// MapAnon establishes a mapping of length bytes at an address chosen by the
// address space (mmap with addr=NULL). Consecutive MapAnon regions are
// separated by an unmapped guard gap.
func (as *AddressSpace) MapAnon(length int, prot Prot, pkey int) (Addr, error) {
	if length <= 0 {
		return 0, ErrBadLength
	}
	as.mu.Lock()
	addr := as.nextMap
	span := roundUp(length)
	if uint64(addr)+span < uint64(addr) {
		as.mu.Unlock()
		return 0, ErrOutOfAddress
	}
	as.nextMap = addr + Addr(span+as.guardGap)
	as.mu.Unlock()
	if err := as.Map(addr, length, prot, pkey); err != nil {
		return 0, err
	}
	return addr, nil
}

// Unmap removes the mapping covering [addr, addr+length), mirroring
// munmap(2). The full range must be mapped.
func (as *AddressSpace) Unmap(addr Addr, length int) error {
	if !addr.PageAligned() {
		return ErrAlignment
	}
	if length <= 0 {
		return ErrBadLength
	}
	npages := roundUp(length) >> PageShift
	as.mu.Lock()
	defer as.mu.Unlock()
	base := addr.PageNum()
	for i := uint64(0); i < npages; i++ {
		if as.lookup(base+i) == nil {
			return ErrUnmapped
		}
	}
	for i := uint64(0); i < npages; i++ {
		pg := as.lookup(base + i)
		as.keyPages[pg.pkey]--
		as.setPage(base+i, nil)
	}
	as.stats.MappedBytes.Add(-int64(npages) * PageSize)
	as.shootdown()
	return nil
}

// Protect changes the page protection of [addr, addr+length), mirroring
// mprotect(2). The key is left untouched.
func (as *AddressSpace) Protect(addr Addr, length int, prot Prot) error {
	return as.protect(addr, length, prot, -1)
}

// PkeyMprotect changes protection and key of [addr, addr+length),
// mirroring pkey_mprotect(2).
func (as *AddressSpace) PkeyMprotect(addr Addr, length int, prot Prot, pkey int) error {
	if pkey < 0 || pkey >= NumKeys {
		return ErrBadKey
	}
	return as.protect(addr, length, prot, pkey)
}

func (as *AddressSpace) protect(addr Addr, length int, prot Prot, pkey int) error {
	if !addr.PageAligned() {
		return ErrAlignment
	}
	if length <= 0 {
		return ErrBadLength
	}
	if prot&ProtWrite != 0 && prot&ProtExec != 0 {
		return ErrWXViolation
	}
	npages := roundUp(length) >> PageShift
	as.mu.Lock()
	defer as.mu.Unlock()
	if pkey >= 0 && !as.pkeys[pkey] {
		return ErrBadKey
	}
	base := addr.PageNum()
	for i := uint64(0); i < npages; i++ {
		if as.lookup(base+i) == nil {
			return ErrUnmapped
		}
	}
	for i := uint64(0); i < npages; i++ {
		old := as.lookup(base + i)
		// Copy-on-write of the PTE: lock-free readers may hold the old
		// entry, which stays internally consistent; they pick up the new
		// rights after the shootdown below, exactly like a stale TLB entry
		// on hardware.
		next := &page{data: old.data, span: old.span, spanOff: old.spanOff, prot: prot, pkey: old.pkey}
		if pkey >= 0 && uint8(pkey) != old.pkey {
			as.keyPages[old.pkey]--
			as.keyPages[pkey]++
			next.pkey = uint8(pkey)
		}
		as.setPage(base+i, next)
	}
	as.shootdown()
	return nil
}

// PageInfo returns the protection and key of the page containing addr.
// ok is false when the page is unmapped.
func (as *AddressSpace) PageInfo(addr Addr) (prot Prot, pkey int, ok bool) {
	pg := as.lookup(addr.PageNum())
	if pg == nil {
		return 0, 0, false
	}
	return pg.prot, int(pg.pkey), true
}

// Mapped reports whether the whole range [addr, addr+length) is mapped.
func (as *AddressSpace) Mapped(addr Addr, length int) bool {
	if length <= 0 {
		return false
	}
	first := addr.PageNum()
	last := (Addr(uint64(addr) + uint64(length) - 1)).PageNum()
	for pn := first; pn <= last; pn++ {
		if as.lookup(pn) == nil {
			return false
		}
	}
	return true
}

// forEachPage calls f for every mapped page. Caller holds as.mu.
func (as *AddressSpace) forEachPage(f func(pn uint64, pg *page)) {
	for ri := range as.root {
		leaf := as.root[ri].Load()
		if leaf == nil {
			continue
		}
		for li := range leaf {
			if pg := leaf[li].Load(); pg != nil {
				f(uint64(ri)<<leafBits|uint64(li), pg)
			}
		}
	}
	as.overflowMu.RLock()
	for pn, pg := range as.overflow {
		f(pn, pg)
	}
	as.overflowMu.RUnlock()
}

// Stats returns the address-space counters. The returned pointer is live;
// callers read the atomic gauge fields directly or aggregate the per-CPU
// counters with Snapshot.
func (as *AddressSpace) Stats() *Stats { return &as.stats }
