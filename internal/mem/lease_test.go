package mem

import (
	"sync"
	"testing"
)

// leaseFixture is the fixed layout the bounds tests lease against:
//
//	prim  4 pages RW  key k1  — one Map call, one backing span
//	adj   2 pages RW  key k1  — immediately after prim, separate span
//	mixed 2 pages RW  k1|k2   — one span, second page re-keyed to k2
//	ro    1 page  R   key k1
//
// The CPU's PKRU allows both keys for reads and writes, so every refusal
// below comes from the span's structure, not from rights.
type leaseFixture struct {
	as                   *AddressSpace
	c                    *CPU
	prim, adj, mixed, ro Addr
	k1, k2               int
}

func newLeaseFixture(t *testing.T) *leaseFixture {
	t.Helper()
	as := NewAddressSpace()
	k1, err := as.PkeyAlloc()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := as.PkeyAlloc()
	if err != nil {
		t.Fatal(err)
	}
	f := &leaseFixture{
		as: as, k1: k1, k2: k2,
		prim:  0x10_0000,
		mixed: 0x20_0000,
		ro:    0x30_0000,
	}
	f.adj = f.prim + 4*PageSize
	if err := as.Map(f.prim, 4*PageSize, ProtRW, k1); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(f.adj, 2*PageSize, ProtRW, k1); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(f.mixed, 2*PageSize, ProtRW, k1); err != nil {
		t.Fatal(err)
	}
	if err := as.PkeyMprotect(f.mixed+PageSize, PageSize, ProtRW, k2); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(f.ro, PageSize, ProtRead, k1); err != nil {
		t.Fatal(err)
	}
	f.c = as.NewCPU()
	f.c.WRPKRU(PKRUAllow(PKRUAllow(PKRUInit, k1, true), k2, true))
	return f
}

// TestLeaseBounds pins down which spans may lease: a lease must cover one
// contiguous backing allocation under one protection key with sufficient
// page rights, and refuse everything else — in particular spans that cross
// a mapping edge into an adjacent-but-distinct mapping, the case a naive
// "every page is mapped" probe would wrongly admit.
func TestLeaseBounds(t *testing.T) {
	f := newLeaseFixture(t)
	cases := []struct {
		name string
		base Addr
		n    int
		kind AccessKind
		want bool
	}{
		{"interior of one page", f.prim + 16, 100, AccessWrite, true},
		{"exactly one page", f.prim, PageSize, AccessWrite, true},
		{"straddles page boundary", f.prim + PageSize - 8, 16, AccessWrite, true},
		{"whole four-page mapping", f.prim, 4 * PageSize, AccessWrite, true},
		{"last byte of mapping", f.prim + 4*PageSize - 1, 1, AccessWrite, true},
		{"crosses into adjacent mapping", f.prim + 4*PageSize - 8, 16, AccessWrite, false},
		{"adjacent mapping alone", f.adj, 2 * PageSize, AccessWrite, true},
		{"runs past last mapped page", f.adj + 2*PageSize - 8, 16, AccessWrite, false},
		{"starts unmapped", f.adj + 2*PageSize, 8, AccessRead, false},
		{"mixed keys across pages", f.mixed + PageSize - 8, 16, AccessRead, false},
		{"first key alone", f.mixed, PageSize, AccessWrite, true},
		{"re-keyed page alone", f.mixed + PageSize, PageSize, AccessWrite, true},
		{"write lease on read-only page", f.ro, 8, AccessWrite, false},
		{"read lease on read-only page", f.ro, 8, AccessRead, true},
		{"zero length", f.prim, 0, AccessRead, false},
		{"negative length", f.prim, -5, AccessRead, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := f.c.NewLease(tc.base, tc.n, tc.kind)
			if got := l.Valid(); got != tc.want {
				t.Fatalf("NewLease(%#x, %d, %v).Valid() = %v, want %v",
					tc.base, tc.n, tc.kind, got, tc.want)
			}
			if w, ok := l.Window(); ok != tc.want {
				t.Fatalf("Window() ok = %v, want %v", ok, tc.want)
			} else if ok && len(w) != tc.n {
				t.Fatalf("Window() len = %d, want %d", len(w), tc.n)
			}
		})
	}
}

// TestLeaseWindowAliasesMemory verifies the window is the real backing:
// writes through it are visible to the checked accessors and vice versa.
func TestLeaseWindowAliasesMemory(t *testing.T) {
	f := newLeaseFixture(t)
	l := f.c.NewLease(f.prim+PageSize-4, 8, AccessWrite)
	w, ok := l.Window()
	if !ok {
		t.Fatal("window refused")
	}
	w[0] = 0xAB
	if got := f.c.ReadU8(f.prim + PageSize - 4); got != 0xAB {
		t.Fatalf("checked read after window write = %#x, want 0xAB", got)
	}
	f.c.WriteU8(f.prim+PageSize+3, 0xCD)
	if w[7] != 0xCD {
		t.Fatalf("window byte after checked write = %#x, want 0xCD", w[7])
	}
}

// TestLeaseBytesSubrange checks Bytes' range arithmetic at the span edges.
func TestLeaseBytesSubrange(t *testing.T) {
	f := newLeaseFixture(t)
	base := f.prim + 100
	l := f.c.NewLease(base, 64, AccessWrite)
	for _, tc := range []struct {
		name string
		addr Addr
		n    int
		want bool
	}{
		{"full span", base, 64, true},
		{"interior", base + 10, 20, true},
		{"last byte", base + 63, 1, true},
		{"before base", base - 1, 4, false},
		{"past end", base + 60, 8, false},
		{"zero bytes", base, 0, false},
		{"negative bytes", base, -1, false},
	} {
		if b, ok := l.Bytes(tc.addr, tc.n); ok != tc.want {
			t.Errorf("%s: Bytes(%#x, %d) ok = %v, want %v", tc.name, tc.addr, tc.n, ok, tc.want)
		} else if ok && len(b) != tc.n {
			t.Errorf("%s: len = %d, want %d", tc.name, len(b), tc.n)
		}
	}
}

// TestLeaseLivePKRURights pins the core of the check-elision design: lease
// validity re-derives the span key's rights from the CPU's live PKRU on
// every access. Dropping the key's rights makes the lease invalid at once
// (no revocation event needed); restoring them makes it valid again
// without any renewal walk.
func TestLeaseLivePKRURights(t *testing.T) {
	f := newLeaseFixture(t)
	as, c := f.as, f.c
	wl := c.NewLease(f.prim, 64, AccessWrite)
	rl := c.NewLease(f.prim, 64, AccessRead)
	if !wl.Valid() || !rl.Valid() {
		t.Fatal("fresh leases invalid")
	}
	renewals := as.leaseRenewals.Load()

	// Deny the key entirely: both kinds go invalid.
	allowed := c.PKRU()
	c.WRPKRU(PKRUDeny(allowed, f.k1))
	if wl.Valid() || rl.Valid() {
		t.Fatal("leases valid under access-denied PKRU")
	}

	// Write-deny only: the read lease works, the write lease does not —
	// the same asymmetry the hardware key check has.
	c.WRPKRU(PKRUAllow(PKRUDeny(allowed, f.k1), f.k1, false))
	if wl.Valid() {
		t.Fatal("write lease valid under write-disabled PKRU")
	}
	if !rl.Valid() {
		t.Fatal("read lease invalid under write-disabled (access-enabled) PKRU")
	}

	// Restore full rights: validity comes back by itself. No Renew walk
	// may have run for it — that is the Enter/Exit-costs-nothing property.
	c.WRPKRU(allowed)
	if !wl.Valid() || !rl.Valid() {
		t.Fatal("leases not valid again after rights restored")
	}
	if got := as.leaseRenewals.Load(); got != renewals {
		t.Fatalf("rights round-trip cost %d renewals, want 0", got-renewals)
	}

	// An access ATTEMPTED while rights are down refuses (Bytes neither
	// elides the check nor faults), and the failed renewal walk marks the
	// lease unverified: restoring rights alone no longer suffices, the
	// next use pays one Renew re-walk.
	c.WRPKRU(PKRUDeny(allowed, f.k1))
	if _, ok := wl.Bytes(f.prim, 8); ok {
		t.Fatal("Bytes elided the check under access-denied PKRU")
	}
	c.WRPKRU(allowed)
	if wl.Valid() {
		t.Fatal("lease valid without renewal after a refused access")
	}
	if !wl.Renew() {
		t.Fatal("Renew failed after rights restored")
	}
	if got := as.leaseRenewals.Load(); got != renewals+1 {
		t.Fatalf("refusal round-trip cost %d renewals, want 1", got-renewals)
	}
}

// TestLeaseRevocation covers the two forced-revocation channels — the
// address-space lease epoch (page-table mutations, BumpLeaseEpoch) and the
// per-CPU generation (InvalidateLeases) — and that Renew's full re-walk
// brings a lease back exactly when the span would lease afresh.
func TestLeaseRevocation(t *testing.T) {
	f := newLeaseFixture(t)
	as, c := f.as, f.c
	l := c.NewLease(f.prim, 2*PageSize, AccessWrite)

	as.BumpLeaseEpoch()
	if l.Valid() {
		t.Fatal("lease valid across BumpLeaseEpoch")
	}
	if !l.Renew() {
		t.Fatal("Renew failed with unchanged span")
	}

	c.InvalidateLeases()
	if l.Valid() {
		t.Fatal("lease valid across InvalidateLeases")
	}
	if !l.Renew() {
		t.Fatal("Renew failed after InvalidateLeases with unchanged span")
	}

	// Downgrade the pages: the shootdown revokes, and Renew must refuse a
	// write lease until the pages are writable again.
	if err := as.Protect(f.prim, 4*PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if l.Valid() {
		t.Fatal("write lease valid across Protect(r--)")
	}
	if l.Renew() {
		t.Fatal("write lease renewed over read-only pages")
	}
	if err := as.Protect(f.prim, 4*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if !l.Renew() {
		t.Fatal("Renew failed after rights restored")
	}

	// Unmap kills it; remapping the range lets Renew re-verify against the
	// fresh backing.
	if err := as.Unmap(f.prim, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if l.Valid() || l.Renew() {
		t.Fatal("lease usable over unmapped range")
	}
	if err := as.Map(f.prim, 4*PageSize, ProtRW, f.k1); err != nil {
		t.Fatal(err)
	}
	if !l.Renew() {
		t.Fatal("Renew failed over remapped range")
	}
	if w, ok := l.Window(); !ok || len(w) != 2*PageSize {
		t.Fatal("window refused after remap renewal")
	}
}

// TestLeaseInjectorFaultSemantics verifies the property the chaos engine
// depends on: an armed fault injector tears down every window (Valid and
// Renew both refuse while armed), so the access falls back to the checked
// path and the injected fault fires with its exact code and address — the
// same si_code at the same byte an unleased access would report.
func TestLeaseInjectorFaultSemantics(t *testing.T) {
	f := newLeaseFixture(t)
	c := f.c
	l := c.NewLease(f.prim, 64, AccessWrite)
	if !l.Valid() {
		t.Fatal("fresh lease invalid")
	}

	c.SetFaultInjector(func(addr Addr, kind AccessKind) *Fault {
		return &Fault{Kind: kind, Code: CodePkuErr, PKey: f.k1}
	})
	if l.Valid() {
		t.Fatal("lease valid with injector armed")
	}
	if l.Renew() {
		t.Fatal("lease renewed with injector armed")
	}
	if _, ok := l.Bytes(f.prim, 8); ok {
		t.Fatal("Bytes elided the check with injector armed")
	}

	// The checked fallback raises the injected fault at the exact access:
	// same code, same first faulting byte (Probe translates page-wise, so
	// go through the byte accessor the real fallback uses).
	target := f.prim + 17
	fault := func() (fault *Fault) {
		defer func() { fault = AsFault(recover()) }()
		c.WriteU8(target, 0xFF)
		return nil
	}()
	if fault == nil {
		t.Fatal("checked fallback did not raise the injected fault")
	}
	if fault.Code != CodePkuErr || fault.Addr != target || !fault.Injected {
		t.Fatalf("fault = code %v addr %#x injected %v, want PKUERR at %#x injected",
			fault.Code, fault.Addr, fault.Injected, target)
	}

	// The injector is one-shot: having fired it is disarmed, and the lease
	// comes back through a renewal walk.
	if c.FaultInjectorArmed() {
		t.Fatal("injector still armed after firing")
	}
	if l.Valid() {
		t.Fatal("lease valid without renewal after injector cycle")
	}
	if !l.Renew() {
		t.Fatal("Renew failed after injector disarmed")
	}
}

// TestSpanLeaseCache exercises the per-CPU lease cache: hits return the
// same slot, and round-robin eviction past the capacity still yields
// freshly verified leases.
func TestSpanLeaseCache(t *testing.T) {
	f := newLeaseFixture(t)
	c := f.c
	a := c.SpanLease(f.prim, 64, AccessWrite)
	if a != c.SpanLease(f.prim, 64, AccessWrite) {
		t.Fatal("identical span missed the cache")
	}
	if a == c.SpanLease(f.prim, 64, AccessRead) {
		t.Fatal("different kind hit the same slot")
	}
	// Blow through the cache: every lease handed out must still be usable.
	for i := 0; i < 2*cpuLeaseSlots; i++ {
		l := c.SpanLease(f.prim+Addr(i*8), 8, AccessWrite)
		if _, ok := l.Window(); !ok {
			t.Fatalf("evicted-slot lease %d unusable", i)
		}
	}
}

// TestLeaseRaceHammer hammers lease grant/use/renewal from several CPUs
// while a mutator cycles a churn region through protection, key, and epoch
// changes. Under -race it pins the synchronization discipline; with or
// without it, it checks that
//
//   - a reader's stable-region lease always serves the right bytes, no
//     matter how many revocations it absorbs through Renew, and
//   - churn-region accesses either go through a valid window or fall back
//     to the checked path, which must raise only well-formed faults.
func TestLeaseRaceHammer(t *testing.T) {
	as := NewAddressSpace()
	stable, err := as.MapAnon(4*PageSize, ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	init := as.NewCPU()
	for i := 0; i < 4*PageSize; i += 8 {
		init.WriteU64(stable+Addr(i), uint64(i))
	}
	const readers = 4
	// One churn page per reader, so window writes never race each other.
	churn, err := as.MapAnon(readers*PageSize, ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	key, err := as.PkeyAlloc()
	if err != nil {
		t.Fatal(err)
	}

	iters := 20000
	if testing.Short() {
		iters = 5000
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Mutator: each step is a revocation — two shootdown-bumped protection
	// cycles, one explicit epoch bump (the monitor's policy-change path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < iters; i++ {
			switch i % 4 {
			case 0:
				if err := as.Protect(churn, readers*PageSize, ProtRead); err != nil {
					t.Errorf("protect: %v", err)
					return
				}
			case 1:
				if err := as.PkeyMprotect(churn, readers*PageSize, ProtRW, key); err != nil {
					t.Errorf("pkey_mprotect: %v", err)
					return
				}
			case 2:
				as.BumpLeaseEpoch()
			case 3:
				if err := as.PkeyMprotect(churn, readers*PageSize, ProtRW, 0); err != nil {
					t.Errorf("pkey_mprotect: %v", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := as.NewCPU()
			c.WRPKRU(PKRUAllow(PKRUInit, key, true))
			mine := churn + Addr(r)*PageSize
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Stable span: revoked arbitrarily often by the epoch bumps,
				// but Renew must always succeed and the window must always
				// hold the original pattern.
				off := Addr((i * 8) % (4 * PageSize))
				sl := c.SpanLease(stable, 4*PageSize, AccessRead)
				b, ok := sl.Bytes(stable+off, 8)
				if !ok {
					t.Errorf("reader %d: stable lease refused", r)
					return
				}
				got := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
					uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
				if got != uint64(off) {
					t.Errorf("reader %d: stable word at +%#x = %d, want %d", r, off, got, off)
					return
				}
				// Churn span: use the window when the lease holds, otherwise
				// fall back checked and accept only the faults the racing
				// mapping states can produce.
				cl := c.SpanLease(mine, PageSize, AccessWrite)
				if w, ok := cl.Bytes(mine+Addr(i%PageSize), 1); ok {
					w[0] = byte(i)
				} else if err := c.Probe(mine+Addr(i%PageSize), 1, AccessWrite); err != nil {
					f := AsFault(err)
					if f == nil {
						t.Errorf("reader %d: non-fault error %v", r, err)
						return
					}
					if f.Code != CodeAccErr && f.Code != CodePkuErr {
						t.Errorf("reader %d: unexpected fault code %v", r, f.Code)
						return
					}
				}
				i++
			}
		}(r)
	}
	wg.Wait()

	// The mutator ends on PkeyMprotect(ProtRW, 0): every lease must renew
	// and serve writes again on a fresh CPU's checked view of the world.
	final := as.NewCPU()
	l := final.NewLease(churn, readers*PageSize, AccessWrite)
	if w, ok := l.Window(); !ok {
		t.Fatal("final churn lease refused")
	} else {
		w[0] = 0xEE
	}
	if got := final.ReadU8(churn); got != 0xEE {
		t.Fatalf("final churn byte = %#x, want 0xEE", got)
	}
}
