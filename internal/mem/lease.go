package mem

// This file implements ERIM-style span leases: the check-elision fast path
// of the simulated MMU. A lease verifies a span's protection once — page
// presence, page permissions, a single protection key, PKRU rights — and
// hands out a native []byte window over the backing frames, so parser and
// storage inner loops touch memory at native speed instead of paying a
// checked accessor per run.
//
// Safety comes from revocation, not from rechecking: the lease records the
// address-space lease epoch and the issuing CPU's lease generation at
// verification time, and every event that could change the answer bumps
// one of the two:
//
//   - leaseEpoch (per address space, atomic): bumped by every page-table
//     mutation's shootdown (Map/Unmap/Protect/PkeyMprotect) and by the
//     reference monitor whenever its policy generation changes
//     (BumpLeaseEpoch) — domain init, discard, DProtect grants.
//   - leaseGen (per CPU, plain): bumped by InvalidateLeases on the rewind
//     unwind paths and by SetFaultInjector — forced revocation for events
//     that must drop every window regardless of what the page table says.
//
// PKRU rights are not revoked, they are re-derived: Valid rechecks the
// span's single protection key against the CPU's live PKRU value on every
// access (a shift and mask, exactly the check the hardware makes per
// load), so an Enter/Exit domain transition — which only rewrites PKRU —
// costs outstanding leases nothing. The per-access validity check is one
// atomic epoch load, two plain field loads, and the PKRU mask. A stale
// lease is never an error: Renew re-verifies with a full page re-walk,
// and on refusal the caller falls back to the existing checked accessors,
// which raise the exact fault the unleased code would have raised — same
// si_code at the same first faulting byte, injector hooks preserved. The
// window between a successful validity check and the access is the same
// stale-TLB window real hardware has until a shootdown IPI lands.
//
// Counting discipline: a grant or renewal counts one op covering the whole
// span (the same span-counted-once discipline AccessRun uses); individual
// accesses through the window are not counted.

// Lease is a verified native window over [base, base+n). The zero Lease is
// invalid and never renews. A Lease must only be used from the goroutine
// modeling the CPU's thread.
type Lease struct {
	c    *CPU
	base Addr
	n    int
	kind AccessKind

	data    []byte // native window, len n, set by verify
	pkey    uint8  // the single protection key tagging every page of the span
	asEpoch uint64 // as.leaseEpoch at verification
	cpuGen  uint64 // c.leaseGen at verification
	ok      bool
}

// NewLease verifies [base, base+n) for accesses of the given kind and
// returns the lease. On refusal (unmapped or non-contiguous backing, mixed
// protection keys, insufficient page or PKRU rights, armed fault injector)
// the lease is returned invalid; it may still become valid later through
// Renew. A write-kind lease also serves reads, matching PKU semantics
// (write permission implies access permission).
func (c *CPU) NewLease(base Addr, n int, kind AccessKind) Lease {
	l := Lease{c: c, base: base, n: n, kind: kind}
	l.verify()
	return l
}

// Base returns the first address covered by the lease.
func (l *Lease) Base() Addr { return l.base }

// Len returns the number of bytes covered by the lease.
func (l *Lease) Len() int { return l.n }

// Valid reports whether the lease's verification is still current. The
// structural half (backing pages, page permissions, single key) is
// vouched for by the generations; the rights half is re-derived from the
// CPU's live PKRU on every call — the same per-access key check the
// hardware makes — so a domain transition that only rewrites PKRU neither
// invalidates the lease nor costs a re-walk.
func (l *Lease) Valid() bool {
	c := l.c
	if !l.ok || c.inject != nil ||
		l.cpuGen != c.leaseGen || l.asEpoch != c.as.leaseEpoch.Load() {
		return false
	}
	ad, wd := PKRURights(c.pkru, int(l.pkey))
	return !ad && (l.kind != AccessWrite || !wd)
}

// Renew attempts to bring a stale lease back to validity with a full
// re-verification walk. It returns false on refusal (insufficient rights
// under the current PKRU, armed injector, changed backing), leaving the
// lease renewable later.
func (l *Lease) Renew() bool {
	if l.verify() {
		l.c.as.leaseRenewals.Add(1)
		return true
	}
	return false
}

// Bytes returns the native window over [addr, addr+n] when it lies inside
// the lease and the lease is (or renews to) valid. On any refusal it
// returns ok=false and the caller must fall back to the checked accessors.
func (l *Lease) Bytes(addr Addr, n int) ([]byte, bool) {
	if n <= 0 || addr < l.base || uint64(addr-l.base)+uint64(n) > uint64(l.n) {
		return nil, false
	}
	if !l.Valid() && !l.Renew() {
		return nil, false
	}
	off := uint64(addr - l.base)
	return l.data[off : off+uint64(n)], true
}

// Window returns the whole leased span; see Bytes.
func (l *Lease) Window() ([]byte, bool) {
	if l.n <= 0 {
		return nil, false
	}
	if !l.Valid() && !l.Renew() {
		return nil, false
	}
	return l.data, true
}

// leasePageOK performs the per-page half of translate's checks (page
// permission, then PKRU) for a prospective lease, without faulting.
func leasePageOK(pg *page, pkru uint32, kind AccessKind) bool {
	if kind == AccessWrite {
		if pg.prot&ProtWrite == 0 {
			return false
		}
	} else if pg.prot&ProtRead == 0 {
		return false
	}
	ad, wd := PKRURights(pkru, int(pg.pkey))
	return !ad && (kind != AccessWrite || !wd)
}

// verify is the full issuance probe: it replicates translate's checks over
// every page of the span without faulting, requires one contiguous backing
// allocation under one protection key, and snapshots the revocation
// generations. The epoch is loaded before the walk, so a mutation racing
// with verification at worst yields a lease that is already stale at its
// first use and re-verifies then.
func (l *Lease) verify() bool {
	c := l.c
	as := c.as
	if l.n <= 0 || c.inject != nil {
		l.ok = false
		as.leaseRefusals.Add(1)
		return false
	}
	epoch := as.leaseEpoch.Load()
	first := l.base.PageNum()
	last := Addr(uint64(l.base) + uint64(l.n) - 1).PageNum()
	pg0 := as.lookup(first)
	if pg0 == nil || len(pg0.span) == 0 || !leasePageOK(pg0, c.pkru, l.kind) {
		l.ok = false
		as.leaseRefusals.Add(1)
		return false
	}
	for pn := first + 1; pn <= last; pn++ {
		pg := as.lookup(pn)
		// The single-key requirement is load-bearing for Valid: rights are
		// re-derived for l.pkey alone, so a second key in the span would
		// escape the per-access PKRU check.
		if pg == nil || len(pg.span) == 0 || pg.pkey != pg0.pkey ||
			!leasePageOK(pg, c.pkru, l.kind) ||
			&pg.span[0] != &pg0.span[0] ||
			pg.spanOff != pg0.spanOff+(pn-first)<<PageShift {
			l.ok = false
			as.leaseRefusals.Add(1)
			return false
		}
	}
	start := pg0.spanOff + l.base.PageOff()
	l.data = pg0.span[start : start+uint64(l.n)]
	l.pkey = pg0.pkey
	l.asEpoch = epoch
	l.cpuGen = c.leaseGen
	l.ok = true
	l.count()
	as.leaseGrants.Add(1)
	return true
}

// count records a grant or renewal in the CPU's access counters as one op
// covering the span, mirroring AccessRun's span-counted-once discipline.
func (l *Lease) count() {
	if l.kind == AccessWrite {
		l.c.counts.writes++
		l.c.counts.bytesWritten += int64(l.n)
	} else {
		l.c.counts.reads++
		l.c.counts.bytesRead += int64(l.n)
	}
}

// cpuLeaseSlots sizes the per-CPU lease cache; SpanLease evicts round-robin
// beyond it. Sixteen covers a worker's batch slots plus the storage arena
// with room to spare.
const cpuLeaseSlots = 16

// SpanLease returns this CPU's cached lease for exactly (base, n, kind),
// minting (and evicting round-robin) on miss. The returned pointer aliases
// the CPU's cache and is owned by the CPU's thread; callers use it
// immediately via Bytes/Window rather than retaining it.
func (c *CPU) SpanLease(base Addr, n int, kind AccessKind) *Lease {
	for i := range c.leases {
		l := &c.leases[i]
		if l.c != nil && l.base == base && l.n == n && l.kind == kind {
			return l
		}
	}
	i := int(c.leaseHand) % cpuLeaseSlots
	c.leaseHand++
	l := &c.leases[i]
	*l = Lease{c: c, base: base, n: n, kind: kind}
	l.verify()
	return l
}

// InvalidateLeases forcibly revokes every lease minted by this CPU: the
// next use falls into Renew's full re-walk. The reference monitor calls
// it on the rewind unwind paths (a rewound domain's windows must die even
// if its pages survive), and SetFaultInjector calls it so an armed
// injector tears down windows immediately. Ordinary Enter/Exit domain
// transitions do NOT invalidate: they only rewrite PKRU, which Valid
// re-derives per access.
func (c *CPU) InvalidateLeases() { c.leaseGen++ }

// BumpLeaseEpoch revokes every outstanding lease in the address space.
// Page-table mutators do this implicitly via shootdown; the reference
// monitor calls it whenever its policy generation changes (domain init,
// discard, DProtect), since those change PKRU derivation without
// necessarily touching the page table.
func (as *AddressSpace) BumpLeaseEpoch() { as.leaseEpoch.Add(1) }

// LeaseEpoch returns the current lease epoch (diagnostics and tests).
func (as *AddressSpace) LeaseEpoch() uint64 { return as.leaseEpoch.Load() }
