package mem

import "sort"

// KernelRead copies n bytes at addr into p without protection or key
// checks, as kernel code would. It returns ErrUnmapped if the range is not
// fully mapped. Intended for loaders, checkpointing, and test assertions;
// application and library code must use CPU accessors.
func (as *AddressSpace) KernelRead(addr Addr, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if !as.Mapped(addr, len(p)) {
		return ErrUnmapped
	}
	for len(p) > 0 {
		pg := as.lookup(addr.PageNum())
		off := addr.PageOff()
		n := copy(p, pg.data[off:])
		p = p[n:]
		addr += Addr(n)
	}
	return nil
}

// KernelWrite copies p to addr without protection or key checks.
func (as *AddressSpace) KernelWrite(addr Addr, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if !as.Mapped(addr, len(p)) {
		return ErrUnmapped
	}
	for len(p) > 0 {
		pg := as.lookup(addr.PageNum())
		off := addr.PageOff()
		n := copy(pg.data[off:], p)
		p = p[n:]
		addr += Addr(n)
	}
	return nil
}

// PageDump is one mapped page's full state, for checkpointing.
type PageDump struct {
	Addr Addr
	Prot Prot
	PKey int
	Data []byte // PageSize bytes
}

// ExportPages dumps every mapped page (kernel view, no access checks),
// sorted by address. This is the substrate for the CRIU-style
// checkpoint/restore baseline the paper compares rewinding against.
func (as *AddressSpace) ExportPages() []PageDump {
	as.mu.Lock()
	defer as.mu.Unlock()
	dumps := make([]PageDump, 0, as.stats.MappedBytes.Load()>>PageShift)
	as.forEachPage(func(pn uint64, pg *page) {
		data := make([]byte, PageSize)
		copy(data, pg.data)
		dumps = append(dumps, PageDump{
			Addr: Addr(pn << PageShift),
			Prot: pg.prot,
			PKey: int(pg.pkey),
			Data: data,
		})
	})
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].Addr < dumps[j].Addr })
	return dumps
}

// ImportPages recreates mappings from a dump into this (empty or
// disjoint) address space. Keys referenced by the dump are marked
// allocated.
func (as *AddressSpace) ImportPages(dumps []PageDump) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, d := range dumps {
		if !d.Addr.PageAligned() || len(d.Data) != PageSize {
			return ErrAlignment
		}
		pn := d.Addr.PageNum()
		if as.lookup(pn) != nil {
			return ErrOverlap
		}
		if d.PKey < 0 || d.PKey >= NumKeys {
			return ErrBadKey
		}
		data := make([]byte, PageSize)
		copy(data, d.Data)
		as.setPage(pn, &page{data: data, prot: d.Prot, pkey: uint8(d.PKey)})
		as.pkeys[d.PKey] = true
		as.keyPages[d.PKey]++
		as.stats.MappedBytes.Add(PageSize)
	}
	as.shootdown()
	return nil
}
