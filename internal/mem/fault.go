package mem

import "fmt"

// AccessKind describes the kind of memory access that raised a fault.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
	AccessExec
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return "unknown"
	}
}

// FaultCode discriminates the cause of a memory fault. The values match the
// si_code constants Linux delivers with SIGSEGV, which is how the SDRaD
// signal handler tells protection-key violations apart from plain
// segmentation faults (paper §IV-B, "Error Detection").
type FaultCode int

// Fault codes (Linux si_code values for SIGSEGV).
const (
	// CodeMapErr: address not mapped to an object (SEGV_MAPERR).
	CodeMapErr FaultCode = 1
	// CodeAccErr: invalid permissions for mapped object (SEGV_ACCERR).
	CodeAccErr FaultCode = 2
	// CodePkuErr: access denied by protection keys (SEGV_PKUERR).
	CodePkuErr FaultCode = 4
)

func (c FaultCode) String() string {
	switch c {
	case CodeMapErr:
		return "SEGV_MAPERR"
	case CodeAccErr:
		return "SEGV_ACCERR"
	case CodePkuErr:
		return "SEGV_PKUERR"
	default:
		return fmt.Sprintf("SEGV_code(%d)", int(c))
	}
}

// Fault is a synchronous memory-access fault, the simulation's analog of a
// hardware trap that the kernel would surface as SIGSEGV. Accessors panic
// with a *Fault; the process layer and the SDRaD reference monitor recover
// such panics and route them through the simulated signal machinery.
//
// Fault also implements error so that recovered faults compose with
// errors.Is/errors.As once converted into ordinary return values.
type Fault struct {
	// Addr is the faulting virtual address (si_addr).
	Addr Addr
	// Kind is the access that faulted.
	Kind AccessKind
	// Code discriminates the cause (si_code).
	Code FaultCode
	// PKey is the protection key of the target page for CodePkuErr faults
	// (si_pkey), and 0 otherwise.
	PKey int
	// Injected marks faults raised by a CPU fault injector (see
	// SetFaultInjector) rather than a genuine protection violation. The
	// trap machinery treats both identically; the flag exists so chaos
	// campaigns can tell their own faults apart in the fault log.
	Injected bool
}

// Error implements error.
func (f *Fault) Error() string {
	if f.Code == CodePkuErr {
		return fmt.Sprintf("mem: %s fault at 0x%x (%s, pkey %d)", f.Kind, uint64(f.Addr), f.Code, f.PKey)
	}
	return fmt.Sprintf("mem: %s fault at 0x%x (%s)", f.Kind, uint64(f.Addr), f.Code)
}

// IsPKU reports whether the fault is a protection-key violation.
func (f *Fault) IsPKU() bool { return f.Code == CodePkuErr }

// AsFault extracts a *Fault from a recovered panic value, returning nil if
// the panic was not a memory fault.
func AsFault(recovered any) *Fault {
	f, _ := recovered.(*Fault)
	return f
}
