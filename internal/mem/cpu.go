package mem

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// PKRU bit layout: for key k, bit 2k is the access-disable (AD) bit and bit
// 2k+1 is the write-disable (WD) bit, exactly as on 64-bit x86.
const (
	// PKRUDenyAll disables access to every key.
	PKRUDenyAll uint32 = 0x5555_5555
	// PKRUInit is the architectural reset value used by Linux: every key
	// access-disabled except key 0.
	PKRUInit uint32 = 0x5555_5554
	// PKRUAllowAll grants full access to every key (all bits clear).
	PKRUAllowAll uint32 = 0
)

// PKRUAllow returns pkru with access to key enabled. If write is false the
// write-disable bit is set, yielding read-only access — the mechanism SDRaD
// uses to make the root domain readable but not writable from nested
// domains.
func PKRUAllow(pkru uint32, key int, write bool) uint32 {
	ad := uint32(1) << (2 * uint(key))
	wd := uint32(1) << (2*uint(key) + 1)
	pkru &^= ad
	if write {
		pkru &^= wd
	} else {
		pkru |= wd
	}
	return pkru
}

// PKRUDeny returns pkru with access to key fully disabled.
func PKRUDeny(pkru uint32, key int) uint32 {
	return pkru | 1<<(2*uint(key))
}

// PKRURights reports the AD/WD bits of key in pkru.
func PKRURights(pkru uint32, key int) (accessDisable, writeDisable bool) {
	return pkru&(1<<(2*uint(key))) != 0, pkru&(1<<(2*uint(key)+1)) != 0
}

// TLB geometry: direct-mapped, per CPU context.
const (
	tlbBits = 8
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

// tlbEntry caches one translation. An entry is valid only when its epoch
// matches the CPU's current tlbEpoch; bumping the epoch (on shootdown)
// invalidates the whole TLB in O(1).
type tlbEntry struct {
	pn    uint64
	epoch uint64
	pg    *page
}

// cpuCounters are the hot access counters, owned exclusively by the CPU's
// thread and therefore plain (non-atomic) — the whole point of the per-CPU
// split is that the fast path touches no shared cache line. They are read
// by Stats.Snapshot, which callers must invoke only when quiescent with
// respect to the counted accesses (after joining worker threads), the same
// discipline per-CPU kernel counters require.
type cpuCounters struct {
	reads        int64
	writes       int64
	bytesRead    int64
	bytesWritten int64
	pkruWrites   int64
}

// CPU is a simulated hardware-thread context: the PKRU register plus a
// small TLB. Every simulated thread owns exactly one CPU and performs all
// its loads and stores through it, so protection-key rights are enforced
// per thread, as on real hardware. A CPU must only be used from the
// goroutine that models its thread.
type CPU struct {
	as   *AddressSpace
	pkru uint32

	// tlbEpoch tags valid TLB entries; needFlush is set by page-table
	// mutations (the shootdown IPI) and consumed at the next translation,
	// which bumps the epoch and thereby drops every cached entry.
	tlbEpoch  uint64
	needFlush atomic.Bool

	counts cpuCounters

	// WRPKRU lockdown: when locked, only the holder of the token (the
	// SDRaD reference monitor) may write PKRU. This models the paper's
	// R4 precondition that untrusted code contains no usable WRPKRU or
	// XRSTOR instructions — guaranteed on real systems by W^X plus binary
	// inspection (ERIM) or hardware call gates (Donky).
	wrpkruLocked bool
	wrpkruToken  uint64

	// inject, when non-nil, is consulted before every translation; see
	// SetFaultInjector.
	inject FaultInjector

	// leaseGen revokes this CPU's span leases (see lease.go): bumped on
	// every domain transition of the owning thread and whenever a fault
	// injector is installed. leases is the SpanLease cache; leaseHand its
	// round-robin eviction cursor.
	leaseGen  uint64
	leaseHand uint8
	leases    [cpuLeaseSlots]Lease

	tlb [tlbSize]tlbEntry
}

// NewCPU returns a CPU attached to the address space with the
// architectural initial PKRU value (only key 0 accessible). The CPU is
// registered with the address space for TLB shootdowns and stats
// aggregation; CPUs are created once per simulated thread, so the registry
// stays small.
func (as *AddressSpace) NewCPU() *CPU {
	c := &CPU{as: as, pkru: PKRUInit, tlbEpoch: 1}
	as.cpuMu.Lock()
	as.cpus = append(as.cpus, c)
	as.cpuMu.Unlock()
	return c
}

// shootdown flags every registered CPU to flush its TLB before the next
// translation — the simulation's TLB-shootdown IPI. Page-table mutators
// call it after publishing their changes, so a CPU that observes its flag
// clear may still use a translation from before the mutation (exactly the
// stale-TLB window real hardware has until the IPI lands), while the
// mutating thread itself always observes its own mutation.
func (as *AddressSpace) shootdown() {
	as.shootdowns.Add(1)
	// Every page-table mutation also revokes outstanding span leases: the
	// epoch bump is what downgrades a lease holder to the checked slow
	// path after a protection change, exactly as the TLB flush does for
	// cached translations.
	as.leaseEpoch.Add(1)
	as.cpuMu.Lock()
	for _, c := range as.cpus {
		c.needFlush.Store(true)
	}
	as.cpuMu.Unlock()
}

// AddressSpace returns the address space this CPU is attached to.
func (c *CPU) AddressSpace() *AddressSpace { return c.as }

// PKRU returns the current PKRU value (RDPKRU).
func (c *CPU) PKRU() uint32 { return c.pkru }

// WRPKRU writes the PKRU register. The write is counted in the address
// -space stats and, when a WRPKRU cost model is configured, burns the
// configured number of busy iterations to model the pipeline flush the
// real instruction causes.
//
// On a locked CPU (see LockWRPKRU) the call panics: it corresponds to an
// unsanctioned WRPKRU instruction in application code, which the deployed
// binary-inspection defense would have rejected at load time.
func (c *CPU) WRPKRU(v uint32) {
	if c.wrpkruLocked {
		panic("mem: WRPKRU in untrusted code (rejected by binary inspection, paper §VI R4)")
	}
	c.wrpkru(v)
}

// LockWRPKRU enables WRPKRU enforcement: after this call, only
// MonitorWRPKRU with the same token writes PKRU. It reports false if the
// CPU was already locked (the token cannot be replaced).
func (c *CPU) LockWRPKRU(token uint64) bool {
	if c.wrpkruLocked {
		return false
	}
	c.wrpkruLocked = true
	c.wrpkruToken = token
	return true
}

// WRPKRULocked reports whether the lockdown is active.
func (c *CPU) WRPKRULocked() bool { return c.wrpkruLocked }

// MonitorWRPKRU is the reference monitor's PKRU write: it presents the
// lockdown token. A wrong token panics like WRPKRU.
func (c *CPU) MonitorWRPKRU(token uint64, v uint32) {
	if c.wrpkruLocked && token != c.wrpkruToken {
		panic("mem: WRPKRU with foreign token (rejected by binary inspection, paper §VI R4)")
	}
	c.wrpkru(v)
}

func (c *CPU) wrpkru(v uint32) {
	c.pkru = v
	c.counts.pkruWrites++
	if n := c.as.wrpkruSpin; n > 0 {
		spin(n)
	}
}

// spinSink defeats dead-code elimination of the WRPKRU cost-model loop.
var spinSink uint64

func spin(n int) {
	var x uint64 = 88172645463325252
	for i := 0; i < n; i++ { // xorshift keeps the loop non-collapsible
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink = x
}

// fault raises a memory fault: it counts the event and panics with a
// *Fault, the simulation's synchronous hardware trap.
func (c *CPU) fault(addr Addr, kind AccessKind, code FaultCode, pkey int) {
	c.raise(&Fault{Addr: addr, Kind: kind, Code: code, PKey: pkey})
}

// raise counts and logs f, then panics with it.
func (c *CPU) raise(f *Fault) {
	c.as.stats.Faults.Add(1)
	c.as.recordFault(f)
	if rec := c.as.tel.Load(); rec != nil {
		rec.RecordFault(f.Code.String(), int(f.Code), uint64(f.Addr), f.PKey, f.Injected)
	}
	panic(f)
}

// translate returns the page containing addr after performing the full
// protection check for an access of the given kind, faulting on violation.
// The fast path — TLB hit with no pending shootdown — touches only
// CPU-local state plus one uncontended atomic flag load.
func (c *CPU) translate(addr Addr, kind AccessKind) *page {
	if c.inject != nil {
		if f := c.inject(addr, kind); f != nil {
			c.inject = nil // one-shot: disarm before the trap handler runs
			if f.Addr == 0 {
				f.Addr = addr
			}
			f.Injected = true
			c.raise(f)
		}
	}
	if c.needFlush.Load() {
		c.needFlush.Store(false)
		c.tlbEpoch++
	}
	pn := addr.PageNum()
	e := &c.tlb[pn&tlbMask]
	pg := e.pg
	if e.pn != pn || e.epoch != c.tlbEpoch {
		pg = c.as.lookup(pn)
		if pg == nil {
			c.fault(addr, kind, CodeMapErr, 0)
		}
		e.pn = pn
		e.epoch = c.tlbEpoch
		e.pg = pg
	}
	switch kind {
	case AccessRead:
		if pg.prot&ProtRead == 0 {
			c.fault(addr, kind, CodeAccErr, 0)
		}
	case AccessWrite:
		if pg.prot&ProtWrite == 0 {
			c.fault(addr, kind, CodeAccErr, 0)
		}
	case AccessExec:
		if pg.prot&ProtExec == 0 {
			c.fault(addr, kind, CodeAccErr, 0)
		}
	}
	// Protection keys gate data accesses only; instruction fetch is not
	// subject to PKU on x86.
	if kind != AccessExec {
		ad, wd := PKRURights(c.pkru, int(pg.pkey))
		if ad || (kind == AccessWrite && wd) {
			c.fault(addr, kind, CodePkuErr, int(pg.pkey))
		}
	}
	return pg
}

// translateRange translates addr for an access of the given kind and
// returns the accessible span starting at addr within its page, clipped to
// max bytes. It is the bulk-translation primitive: one permission check
// covers every byte of the returned span (they share a PTE), and a
// multi-page access faults at the exact first byte of the offending page
// because each page is entered through a fresh translate at its first
// touched address. Counters are the caller's responsibility.
func (c *CPU) translateRange(addr Addr, max int, kind AccessKind) []byte {
	pg := c.translate(addr, kind)
	run := pg.data[addr.PageOff():]
	if len(run) > max {
		run = run[:max]
	}
	return run
}

// AccessRun checks an access of the given kind at addr and returns a
// direct view of the underlying frame: up to max bytes, clipped at the
// page boundary. The span stays valid after page-table changes (frames are
// shared by PTE copies) but rights are only checked now — callers must not
// cache spans across domain switches. One op and len(span) bytes are
// counted.
func (c *CPU) AccessRun(addr Addr, max int, kind AccessKind) []byte {
	if max <= 0 {
		return nil
	}
	run := c.translateRange(addr, max, kind)
	if kind == AccessWrite {
		c.counts.writes++
		c.counts.bytesWritten += int64(len(run))
	} else {
		c.counts.reads++
		c.counts.bytesRead += int64(len(run))
	}
	return run
}

// ReadRun returns a readable span of up to max bytes starting at addr,
// clipped at the page boundary; see AccessRun.
func (c *CPU) ReadRun(addr Addr, max int) []byte {
	return c.AccessRun(addr, max, AccessRead)
}

// WriteRun returns a writable span of up to max bytes ending no later than
// the page boundary after addr; see AccessRun.
func (c *CPU) WriteRun(addr Addr, max int) []byte {
	return c.AccessRun(addr, max, AccessWrite)
}

// ReadRunBack returns a readable span ending at addr inclusive, extending
// backwards up to max bytes but not across addr's page boundary. The
// access is checked at addr itself, so a backward scan that walks off
// mapped memory faults at exactly the first byte the scan touches in each
// page — matching a byte-at-a-time descending loop.
func (c *CPU) ReadRunBack(addr Addr, max int) []byte {
	if max <= 0 {
		return nil
	}
	pg := c.translate(addr, AccessRead)
	hi := int(addr.PageOff()) + 1
	lo := 0
	if hi > max {
		lo = hi - max
	}
	run := pg.data[lo:hi]
	c.counts.reads++
	c.counts.bytesRead += int64(len(run))
	return run
}

// Probe performs the access check for [addr, addr+n) without moving data,
// returning the fault as an error instead of trapping. Intended for tests
// and assertions.
func (c *CPU) Probe(addr Addr, n int, kind AccessKind) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f := AsFault(r); f != nil {
				err = f
				return
			}
			panic(r)
		}
	}()
	if n <= 0 {
		return nil
	}
	first := addr.PageNum()
	last := Addr(uint64(addr) + uint64(n) - 1).PageNum()
	for pn := first; pn <= last; pn++ {
		c.translate(Addr(pn<<PageShift), kind)
	}
	return nil
}

// ReadU8 loads one byte from addr.
func (c *CPU) ReadU8(addr Addr) byte {
	pg := c.translate(addr, AccessRead)
	c.counts.reads++
	c.counts.bytesRead++
	return pg.data[addr.PageOff()]
}

// WriteU8 stores one byte at addr.
func (c *CPU) WriteU8(addr Addr, b byte) {
	pg := c.translate(addr, AccessWrite)
	c.counts.writes++
	c.counts.bytesWritten++
	pg.data[addr.PageOff()] = b
}

// Read copies len(p) bytes starting at addr into p, faulting at the first
// inaccessible byte (partial progress is visible in p, as on hardware).
func (c *CPU) Read(addr Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	c.counts.reads++
	c.counts.bytesRead += int64(len(p))
	for len(p) > 0 {
		n := copy(p, c.translateRange(addr, len(p), AccessRead))
		p = p[n:]
		addr += Addr(n)
	}
}

// Write copies p into memory starting at addr, faulting at the first
// inaccessible byte.
func (c *CPU) Write(addr Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	c.counts.writes++
	c.counts.bytesWritten += int64(len(p))
	for len(p) > 0 {
		run := c.translateRange(addr, len(p), AccessWrite)
		n := copy(run, p)
		p = p[n:]
		addr += Addr(n)
	}
}

// ReadBytes returns a fresh copy of the n bytes at addr.
func (c *CPU) ReadBytes(addr Addr, n int) []byte {
	p := make([]byte, n)
	c.Read(addr, p)
	return p
}

// Memset fills [addr, addr+n) with b.
func (c *CPU) Memset(addr Addr, b byte, n int) {
	if n <= 0 {
		return
	}
	c.counts.writes++
	c.counts.bytesWritten += int64(n)
	for n > 0 {
		d := c.translateRange(addr, n, AccessWrite)
		for i := range d {
			d[i] = b
		}
		n -= len(d)
		addr += Addr(len(d))
	}
}

// Copy moves n bytes from src to dst within the address space, performing
// both the read and the write checks (a memcpy executed by this thread).
// The copy proceeds page run by page run with no staging buffer; like
// memcpy, overlapping ranges yield unspecified contents.
func (c *CPU) Copy(dst, src Addr, n int) {
	if n <= 0 {
		return
	}
	c.counts.reads++
	c.counts.bytesRead += int64(n)
	c.counts.writes++
	c.counts.bytesWritten += int64(n)
	for n > 0 {
		s := c.translateRange(src, n, AccessRead)
		d := c.translateRange(dst, len(s), AccessWrite)
		m := copy(d, s)
		src += Addr(m)
		dst += Addr(m)
		n -= m
	}
}

// ReadU16 loads a little-endian uint16 from addr.
func (c *CPU) ReadU16(addr Addr) uint16 {
	if off := addr.PageOff(); off <= PageSize-2 {
		pg := c.translate(addr, AccessRead)
		c.counts.reads++
		c.counts.bytesRead += 2
		return binary.LittleEndian.Uint16(pg.data[off:])
	}
	var b [2]byte
	c.Read(addr, b[:])
	return binary.LittleEndian.Uint16(b[:])
}

// WriteU16 stores a little-endian uint16 at addr.
func (c *CPU) WriteU16(addr Addr, v uint16) {
	if off := addr.PageOff(); off <= PageSize-2 {
		pg := c.translate(addr, AccessWrite)
		c.counts.writes++
		c.counts.bytesWritten += 2
		binary.LittleEndian.PutUint16(pg.data[off:], v)
		return
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.Write(addr, b[:])
}

// ReadU32 loads a little-endian uint32 from addr.
func (c *CPU) ReadU32(addr Addr) uint32 {
	if off := addr.PageOff(); off <= PageSize-4 {
		pg := c.translate(addr, AccessRead)
		c.counts.reads++
		c.counts.bytesRead += 4
		return binary.LittleEndian.Uint32(pg.data[off:])
	}
	var b [4]byte
	c.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 stores a little-endian uint32 at addr.
func (c *CPU) WriteU32(addr Addr, v uint32) {
	if off := addr.PageOff(); off <= PageSize-4 {
		pg := c.translate(addr, AccessWrite)
		c.counts.writes++
		c.counts.bytesWritten += 4
		binary.LittleEndian.PutUint32(pg.data[off:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.Write(addr, b[:])
}

// ReadU64 loads a little-endian uint64 from addr.
func (c *CPU) ReadU64(addr Addr) uint64 {
	if off := addr.PageOff(); off <= PageSize-8 {
		pg := c.translate(addr, AccessRead)
		c.counts.reads++
		c.counts.bytesRead += 8
		return binary.LittleEndian.Uint64(pg.data[off:])
	}
	var b [8]byte
	c.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 stores a little-endian uint64 at addr.
func (c *CPU) WriteU64(addr Addr, v uint64) {
	if off := addr.PageOff(); off <= PageSize-8 {
		pg := c.translate(addr, AccessWrite)
		c.counts.writes++
		c.counts.bytesWritten += 8
		binary.LittleEndian.PutUint64(pg.data[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.Write(addr, b[:])
}

// ReadAddr loads a little-endian Addr (pointer-sized) from addr.
func (c *CPU) ReadAddr(addr Addr) Addr { return Addr(c.ReadU64(addr)) }

// WriteAddr stores a little-endian Addr at addr.
func (c *CPU) WriteAddr(addr Addr, v Addr) { c.WriteU64(addr, uint64(v)) }

// String describes the CPU context for debugging.
func (c *CPU) String() string {
	return fmt.Sprintf("CPU{PKRU=0x%08x}", c.pkru)
}
