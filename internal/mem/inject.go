package mem

import "sync"

// This file is the fault-injection surface of the simulated MMU, used by
// internal/chaos to attack the SDRaD rewind machinery deterministically:
// a per-CPU injector that turns a chosen memory access into a trap, and a
// per-address-space fault log recording every trap (genuine or injected)
// so campaigns can correlate injected faults with absorbed rewinds.

// FaultRecord is one entry in the address-space fault log.
type FaultRecord struct {
	// Seq numbers faults in the order they were raised, starting at 1.
	Seq int64
	// Addr, Kind, Code, PKey mirror the Fault fields.
	Addr Addr
	Kind AccessKind
	Code FaultCode
	PKey int
	// Injected reports whether the fault came from a CPU fault injector
	// rather than a genuine protection violation.
	Injected bool
}

// faultLogCap bounds the fault log; older entries are dropped.
const faultLogCap = 256

// faultLog is the bounded ring of recent faults kept on an AddressSpace.
type faultLog struct {
	mu   sync.Mutex
	seq  int64
	ring [faultLogCap]FaultRecord
	n    int // number of valid entries, <= faultLogCap
}

// recordFault stamps f with the next sequence number and logs it.
func (as *AddressSpace) recordFault(f *Fault) {
	l := &as.faults
	l.mu.Lock()
	l.seq++
	l.ring[int((l.seq-1)%faultLogCap)] = FaultRecord{
		Seq:      l.seq,
		Addr:     f.Addr,
		Kind:     f.Kind,
		Code:     f.Code,
		PKey:     f.PKey,
		Injected: f.Injected,
	}
	if l.n < faultLogCap {
		l.n++
	}
	l.mu.Unlock()
}

// RecentFaults returns the logged faults, oldest first. At most the last
// faultLogCap faults are retained; Seq exposes gaps.
func (as *AddressSpace) RecentFaults() []FaultRecord {
	l := &as.faults
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]FaultRecord, 0, l.n)
	start := l.seq - int64(l.n)
	for s := start; s < l.seq; s++ {
		out = append(out, l.ring[int(s%faultLogCap)])
	}
	return out
}

// FaultSeq returns the sequence number of the most recent fault (0 if none
// has been raised). Campaigns snapshot it before an attack and slice
// RecentFaults afterwards.
func (as *AddressSpace) FaultSeq() int64 {
	l := &as.faults
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// FaultInjector decides whether a given memory access should trap. It runs
// at the top of the CPU's translation path, before any real protection
// check, and returns nil to let the access proceed or a *Fault to raise.
// The returned fault's Addr may be zero, in which case the faulting access
// address is filled in.
type FaultInjector func(addr Addr, kind AccessKind) *Fault

// SetFaultInjector installs (or, with nil, removes) the fault injector of
// this CPU. The injector is one-shot: as soon as it returns a non-nil
// fault it is disarmed, so the trap handler and rewind path that run next
// execute without interference. Like all CPU state it must only be touched
// from the goroutine modeling the thread.
//
// Installing an injector also invalidates the CPU's span leases and makes
// them unrenewable while armed, so every access a campaign schedules goes
// through the checked translation path and the injected fault fires with
// the same si_code at the same byte it would hit without leases.
func (c *CPU) SetFaultInjector(fn FaultInjector) {
	c.inject = fn
	c.InvalidateLeases()
}

// FaultInjectorArmed reports whether an injector is currently installed,
// letting campaigns detect whether a scheduled injection actually fired.
func (c *CPU) FaultInjectorArmed() bool { return c.inject != nil }
