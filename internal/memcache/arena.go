package memcache

import (
	"errors"
	"sync"

	"sdrad/internal/galloc"
	"sdrad/internal/mem"
	"sdrad/internal/tlsf"
)

// ErrArenaFull is returned when the cache memory limit is reached; the
// storage engine responds by evicting (Memcached's -m behaviour).
var ErrArenaFull = errors.New("memcache: cache memory limit reached")

// bumpArena sub-allocates slab pages out of one pre-sized block, the
// equivalent of Memcached allocating 1 MiB slab pages until its memory
// limit. It never frees — slab pages are recycled by the chunk free
// lists.
type bumpArena struct {
	mu   sync.Mutex
	base mem.Addr
	size uint64
	off  uint64
}

func newBumpArena(base mem.Addr, size uint64) *bumpArena {
	return &bumpArena{base: base, size: size}
}

func (a *bumpArena) alloc(size uint64) (mem.Addr, error) {
	size = (size + 7) &^ 7
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.off+size > a.size {
		return 0, ErrArenaFull
	}
	p := a.base + mem.Addr(a.off)
	a.off += size
	return p, nil
}

// connAlloc is the allocator used for connection buffers and other
// per-connection state; it is where the vanilla/TLSF variants differ.
type connAlloc interface {
	Alloc(c *mem.CPU, size uint64) (mem.Addr, error)
	Free(c *mem.CPU, ptr mem.Addr) error
}

// gallocAlloc adapts the first-fit baseline allocator with a lock
// (glibc's malloc is thread-safe; ours needs the same property).
type gallocAlloc struct {
	mu sync.Mutex
	h  *galloc.Heap
}

func (g *gallocAlloc) Alloc(c *mem.CPU, size uint64) (mem.Addr, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.h.Alloc(c, size)
}

func (g *gallocAlloc) Free(c *mem.CPU, ptr mem.Addr) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.h.Free(c, ptr)
}

// tlsfAlloc adapts a TLSF heap the same way.
type tlsfAlloc struct {
	mu sync.Mutex
	h  *tlsf.Heap
}

func (t *tlsfAlloc) Alloc(c *mem.CPU, size uint64) (mem.Addr, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h.Alloc(c, size)
}

func (t *tlsfAlloc) Free(c *mem.CPU, ptr mem.Addr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h.Free(c, ptr)
}
