package memcache

import (
	"encoding/binary"

	"sdrad/internal/mem"
)

// sview is the storage engine's memory view for one locked operation: the
// executing CPU plus, when the arena span lease verified, a native byte
// window over the whole cache arena. Every accessor takes the native path
// only for addresses inside the window; anything else — a corrupted chain
// pointer aimed outside the arena, or an operation running without a
// lease — falls back to the checked CPU accessors, so out-of-arena
// dereferences fault with exactly the si_code and address they always
// had. Constructed once per exported Storage operation (one lease
// validity check amortized over the whole locked critical section, the
// software analog of a TLB hit).
type sview struct {
	c    *mem.CPU
	w    []byte // nil: checked accessors only
	base mem.Addr
}

// view builds the access view for one operation. The lease is minted (or
// renewed in O(1)) from the CPU's per-CPU lease cache; a refusal — armed
// fault injector, stale epoch that fails re-verification, no arena bounds
// registered — yields a windowless view.
func (st *Storage) view(c *mem.CPU) sview {
	v := sview{c: c}
	if st.arenaLen > 0 {
		l := c.SpanLease(st.arenaBase, st.arenaLen, mem.AccessWrite)
		if w, ok := l.Window(); ok {
			v.w, v.base = w, st.arenaBase
		}
	}
	return v
}

// off translates a to a window offset, reporting whether [a, a+n) lies
// entirely inside the native window.
func (v sview) off(a mem.Addr, n int) (uint64, bool) {
	if v.w == nil || a < v.base {
		return 0, false
	}
	o := uint64(a) - uint64(v.base)
	return o, o+uint64(n) <= uint64(len(v.w))
}

func (v sview) u64(a mem.Addr) uint64 {
	if o, ok := v.off(a, 8); ok {
		return binary.LittleEndian.Uint64(v.w[o:])
	}
	return v.c.ReadU64(a)
}

func (v sview) putU64(a mem.Addr, x uint64) {
	if o, ok := v.off(a, 8); ok {
		binary.LittleEndian.PutUint64(v.w[o:], x)
		return
	}
	v.c.WriteU64(a, x)
}

func (v sview) addr(a mem.Addr) mem.Addr { return mem.Addr(v.u64(a)) }

func (v sview) putAddr(a, x mem.Addr) { v.putU64(a, uint64(x)) }

func (v sview) write(a mem.Addr, p []byte) {
	if o, ok := v.off(a, len(p)); ok {
		copy(v.w[o:], p)
		return
	}
	v.c.Write(a, p)
}

func (v sview) readBytes(a mem.Addr, n int) []byte {
	if o, ok := v.off(a, n); ok {
		out := make([]byte, n)
		copy(out, v.w[o:])
		return out
	}
	return v.c.ReadBytes(a, n)
}

// appendBytes appends [a, a+n) to dst — the copy-once read AppendGet
// builds replies from.
func (v sview) appendBytes(dst []byte, a mem.Addr, n int) []byte {
	if o, ok := v.off(a, n); ok {
		return append(dst, v.w[o:o+uint64(n)]...)
	}
	return append(dst, v.c.ReadBytes(a, n)...)
}
