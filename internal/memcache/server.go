package memcache

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"bytes"

	"time"

	"sdrad/internal/core"
	"sdrad/internal/galloc"
	"sdrad/internal/mem"
	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/sched"
	"sdrad/internal/telemetry"
	"sdrad/internal/tlsf"
)

// Variant selects the build under test (Figure 4 of the paper).
type Variant int

// Build variants.
const (
	// VariantVanilla is the unmodified baseline (glibc-like allocator).
	VariantVanilla Variant = iota + 1
	// VariantTLSF swaps the allocator for TLSF but adds no isolation.
	VariantTLSF
	// VariantSDRaD is the hardened build: per-event isolated domains,
	// deep-copied connection buffers, deferred store updates.
	VariantSDRaD
)

func (v Variant) String() string {
	switch v {
	case VariantVanilla:
		return "vanilla"
	case VariantTLSF:
		return "tlsf"
	case VariantSDRaD:
		return "sdrad"
	default:
		return "unknown"
	}
}

// Domain indices used by the hardened build.
const (
	// storageUDI is the shared data domain holding the hash table and
	// slab memory, accessible by every worker's event domain.
	storageUDI = core.UDI(9)
	// eventUDI is each worker's nested event-handling domain (execution
	// domains are per thread, so every worker uses the same index).
	eventUDI = core.UDI(1)
)

// Config sizes the server.
type Config struct {
	// Variant selects the build (default VariantVanilla).
	Variant Variant
	// Workers is the number of worker threads (default 1).
	Workers int
	// HashPower sets the bucket count to 1<<HashPower (default 14).
	HashPower int
	// CacheBytes is the cache memory limit (default 32 MiB).
	CacheBytes uint64
	// ConnBufSize is the per-connection read/write buffer size
	// (default 16 KiB).
	ConnBufSize int
	// Shards is the number of lock-striped storage shards (rounded up
	// to a power of two, default 8, max MaxShards). 1 restores the old
	// single-mutex cache.
	Shards int
	// MaxBatch is the maximum number of pipelined client events one
	// guard scope handles — one domain switch, one scratch arena, one
	// deferred-op apply for the whole batch (default 16; 1 disables
	// batching).
	MaxBatch int
	// Sched, when non-nil, enables the self-tuning batch/shard scheduler
	// (internal/sched): per-worker adaptive drain bounds, shard-affinity
	// event routing and batch splitting, and the storage slot remap the
	// contention-driven rebalancer moves hot buckets through. Nil keeps
	// the legacy fixed-MaxBatch drain, bit for bit.
	Sched *sched.Config
	// DomainHeapSize is the hardened build's per-event-domain heap. The
	// default follows the sizing formula at domainScratchSlack.
	DomainHeapSize uint64
	// Seed fixes process randomness.
	Seed int64
	// Telemetry optionally attaches a recorder: the hardened build wires
	// it through the reference monitor, the vanilla build through the
	// address space only (fault events and MMU counters).
	Telemetry *telemetry.Recorder
	// Policy optionally attaches a resilience-policy engine to the
	// hardened build (ignored by baselines). When the event domain is
	// quarantined the server serves gets as misses and refuses mutations
	// with SERVER_ERROR instead of re-creating the domain; a shedding
	// domain's connections are closed outright.
	Policy *policy.Engine
}

func (c *Config) setDefaults() {
	if c.Variant == 0 {
		c.Variant = VariantVanilla
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.HashPower == 0 {
		c.HashPower = 14
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 32 << 20
	}
	if c.ConnBufSize == 0 {
		c.ConnBufSize = 16 * 1024
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	for c.Shards&(c.Shards-1) != 0 {
		c.Shards++
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.DomainHeapSize == 0 {
		c.DomainHeapSize = uint64(c.batchCeiling())*2*uint64(c.ConnBufSize) + domainScratchSlack
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// domainScratchSlack is the per-guard-scope scratch headroom beyond the
// connection-buffer copies: request-scoped item staging plus reply
// assembly for a full batch.
const domainScratchSlack = 160 * 1024

// batchCeiling is the largest batch one guard scope can be asked to
// hold: the fixed MaxBatch, or the adaptive controller's ceiling when
// the scheduler is configured with a higher one. The default
// DomainHeapSize tracks it:
//
//	DomainHeapSize = batchCeiling * 2 * ConnBufSize + domainScratchSlack
//
// (one read + one write buffer copy per in-flight event; 192 KiB at a
// ceiling of 1 with 16 KiB buffers, matching the pre-batching default).
func (c *Config) batchCeiling() int {
	b := c.MaxBatch
	if c.Sched != nil && c.Sched.MaxBatch > b {
		b = c.Sched.MaxBatch
	}
	return b
}

// Server errors.
var (
	ErrServerDown      = errors.New("memcache: server terminated")
	ErrConnClosed      = errors.New("memcache: connection closed")
	ErrRequestTooLarge = errors.New("memcache: request exceeds connection buffer")
)

// Server is one simulated Memcached process.
type Server struct {
	cfg Config
	p   *proc.Process
	lib *core.Library // nil for baseline variants
	st  *Storage

	connAllocator connAlloc // baseline variants' malloc for conn buffers
	workers       []*worker
	telBatch      *telemetry.Histogram // events per guard scope, nil without telemetry
	telSplits     *telemetry.Counter   // shard-affinity batch splits, nil without telemetry
	router        *sched.Router        // shard→worker affinity bias, nil without Sched
	rebalancer    *sched.Rebalancer    // hot-slot move planner, nil without Sched
	route         bool                 // load-aware connection placement (Sched.Route)
	steal         bool                 // cross-worker stealing (Sched.Steal, Workers > 1)
	rr            atomic.Int64
	place         atomic.Int64 // placement tie-break cursor (route mode)
	steals        atomic.Int64 // cross-worker steal rounds
	stolenEvents  atomic.Int64 // events taken by stealing
	stealSegments atomic.Int64 // guard scopes run for stolen shard segments
	connIDs       atomic.Int64
	rewinds       atomic.Int64
	closedByAtk   atomic.Int64
	degraded      atomic.Int64 // requests answered on the quarantine path
	shed          atomic.Int64 // connections closed by load shedding
}

type worker struct {
	idx int
	s   *Server
	ch  chan *event
	// stealch is the steal-eligible queue, created only in steal mode:
	// single keyed requests land here (pipelined, keyless, and control
	// events stay on ch, whose events are never stolen). Exposing the
	// eligible backlog on its own channel is what lets an idle sibling
	// take a segment without perturbing event kinds it cannot safely run.
	stealch chan *event
	handle  *proc.Handle

	// ctrl is the worker's adaptive batch-bound controller (nil without
	// Config.Sched — the drain loop then uses the fixed MaxBatch bound).
	// boundGauge, when set, mirrors the bound into telemetry.
	ctrl       *sched.Controller
	boundGauge *telemetry.Gauge
	// evShards is per-round scratch: the shard classification of each
	// drained batch item (owned by the worker goroutine).
	evShards []int

	// reqs is the worker's native request count. Keeping it per worker
	// (its own cache line, uncontended) and summing at exposition via a
	// CounterFunc is what keeps the enabled-telemetry request path free
	// of shared-counter ping-pong.
	reqs atomic.Int64

	// Hardened-build per-worker domain state (owned by the worker
	// goroutine). slots are per-batch-position connection-buffer copies
	// inside the event domain; a rewind invalidates them along with the
	// domain.
	domainReady bool
	slots       []connSlot

	// Reused per-batch scratch (owned by the worker goroutine).
	items   []batchItem
	states  []evState
	results []result
	one     [1]batchItem
	oneRes  [1]result
	dops    deferredOps
	// rw is the worker's reusable reply assembler; drive_machine builds
	// every response of a batch through it, so the steady state allocates
	// nothing per request.
	rw replyState

	// env is the worker's reusable drive_machine environment and
	// scratchAddrs its request-scoped scratch allocation list; curT pins
	// the thread the worker is currently serving on. allocBase and
	// allocDomain are the two scratch allocators, created once per worker
	// so the per-request path allocates neither environment nor closure.
	env          dmEnv
	scratchAddrs []mem.Addr
	curT         *proc.Thread
	allocBase    func(size uint64) (mem.Addr, error)
	allocDomain  func(size uint64) (mem.Addr, error)
}

// initAllocators lazily creates the worker's persistent scratch-allocator
// closures (they capture only the worker, reading the current thread and
// CPU from its per-call fields).
func (w *worker) initAllocators(s *Server) {
	if w.allocBase != nil {
		return
	}
	w.allocBase = func(size uint64) (mem.Addr, error) {
		p, err := s.connAllocator.Alloc(w.env.c, size)
		if err == nil {
			w.scratchAddrs = append(w.scratchAddrs, p)
		}
		return p, err
	}
	w.allocDomain = func(size uint64) (mem.Addr, error) {
		p, err := s.lib.Malloc(w.curT, eventUDI, size)
		if err == nil {
			w.scratchAddrs = append(w.scratchAddrs, p)
		}
		return p, err
	}
}

// connSlot is one pair of connection-buffer deep copies in the event
// domain; batch position i uses slot i. The span leases are minted once
// when the slot is allocated and renewed in O(1) across the batch's
// Enter/Exit transitions; a rewind discards the slot and its leases
// together.
type connSlot struct {
	rbuf mem.Addr
	wbuf mem.Addr
	rl   mem.Lease
	wl   mem.Lease
}

// batchItem is one request of one event, flattened into the worker's
// current batch (a pipelined event contributes one item per request).
type batchItem struct {
	ev  *event
	req []byte
}

// evState is the per-item outcome scratch runHardenedBatch threads
// through the guard scope.
type evState struct {
	done    bool // result decided before the guard ran (preflight failure)
	slot    int
	wlen    int
	closeit bool
	derr    error
	data    []byte
}

type event struct {
	conn *Conn
	req  []byte
	resp chan result
	// reqs/respN replace req/resp for pipelined events (DoPipeline):
	// every request of one event is handled in the same guard scope.
	reqs  [][]byte
	respN chan []result
	// inspect, when non-nil, makes the event a control event: the worker
	// runs the closure on its own thread between requests (chaos-audit
	// hook); conn and req are ignored.
	inspect func(t *proc.Thread) error
}

// nreq is the number of requests the event contributes to a batch.
func (ev *event) nreq() int {
	if ev.reqs != nil {
		return len(ev.reqs)
	}
	return 1
}

type result struct {
	data   []byte
	closed bool
	err    error
}

// Conn is a client connection. All its simulated-memory state is owned by
// the worker it is pinned to.
type Conn struct {
	id     int
	w      *worker
	rbuf   mem.Addr
	wbuf   mem.Addr
	ready  bool
	closed bool
}

// ID returns the connection id.
func (c *Conn) ID() int { return c.id }

// NewServer builds and starts a server: storage is provisioned, workers
// are spawned, and the server is ready for NewConn/Do.
func NewServer(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg: cfg,
		p:   proc.NewProcess("memcached-"+cfg.Variant.String(), proc.WithSeed(cfg.Seed)),
	}
	if cfg.Variant == VariantSDRaD {
		rootHeap := uint64(cfg.ConnBufSize)*2*256 + 2<<20 // 256 live conns + slack
		opts := []core.SetupOption{
			core.WithRootHeapSize(rootHeap),
			core.WithDefaultHeapSize(cfg.DomainHeapSize),
		}
		if cfg.Telemetry != nil {
			opts = append(opts, core.WithTelemetry(cfg.Telemetry))
		}
		if cfg.Policy != nil {
			opts = append(opts, core.WithPolicy(cfg.Policy))
		}
		lib, err := core.Setup(s.p, opts...)
		if err != nil {
			return nil, err
		}
		s.lib = lib
	} else if cfg.Telemetry != nil {
		s.p.AddressSpace().SetTelemetry(cfg.Telemetry)
	}
	if err := s.p.Attach("init", s.provision); err != nil {
		return nil, fmt.Errorf("memcache: provisioning: %w", err)
	}
	var schedCfg sched.Config
	if cfg.Sched != nil {
		// The scheduler needs the slot indirection layer live before any
		// worker serves (the rebalancer moves hot slots through it; the
		// initial identity table changes nothing).
		s.st.EnableRemap()
		if cfg.Workers > 1 {
			// Shard-affinity routing only means something with several
			// workers; a single-worker server skips the per-request key
			// parse on the client path.
			s.router = sched.NewRouter(cfg.Workers, s.st.Shards())
		}
		s.rebalancer = sched.NewRebalancer(sched.RebalanceConfig{})
		schedCfg = *cfg.Sched
		if schedCfg.GuardCostNs == nil && cfg.Telemetry != nil {
			// Estimate the Enter+Exit domain-switch cost from the live
			// latency histograms core already feeds — the controller grows
			// faster while amortization dominates per-item cost.
			reg := cfg.Telemetry.Registry()
			enter := reg.Histogram("sdrad_enter_latency_ns",
				"Latency of sdrad_enter calls in nanoseconds.")
			exit := reg.Histogram("sdrad_exit_latency_ns",
				"Latency of sdrad_exit calls in nanoseconds.")
			schedCfg.GuardCostNs = func() int64 {
				return enter.Quantile(0.5) + exit.Quantile(0.5)
			}
		}
		if schedCfg.OnFloorPinned == nil && cfg.Policy != nil {
			// A controller pinned at the floor by a hot rewind window for a
			// whole window means batching already shrank the blast radius
			// to single requests and the event domain is STILL rewinding:
			// surface it to the policy engine as a backoff signal.
			eng := cfg.Policy
			schedCfg.OnFloorPinned = func(int64) { eng.OnPressure(int(eventUDI)) }
		}
		s.route = schedCfg.Route && cfg.Workers > 1
		s.steal = schedCfg.Steal && cfg.Workers > 1
	}
	for i := 0; i < cfg.Workers; i++ {
		// The channel is buffered so a pipelining client can enqueue a
		// full batch before the worker drains it.
		w := &worker{idx: i, s: s, ch: make(chan *event, cfg.MaxBatch)}
		if s.steal {
			// The eligible queue is deeper than one batch so a backlogged
			// victim shows siblings something worth taking.
			w.stealch = make(chan *event, 4*cfg.MaxBatch)
		}
		if cfg.Sched != nil {
			w.ctrl = sched.NewController(schedCfg, cfg.MaxBatch)
		}
		w.handle = s.p.Spawn(fmt.Sprintf("worker-%d", i), w.run)
		s.workers = append(s.workers, w)
	}
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry.Registry()
		workers := s.workers
		reg.CounterFunc("sdrad_memcache_requests_total",
			"Memcached protocol commands processed.",
			func() int64 {
				var n int64
				for _, w := range workers {
					n += w.reqs.Load()
				}
				return n
			})
		s.telBatch = reg.Histogram("sdrad_memcache_batch_size",
			"Client events handled per guard scope by the batched event loop.")
		occ := reg.GaugeVec("sdrad_memcache_shard_items",
			"Live items per storage shard.", "shard")
		for i := 0; i < s.st.Shards(); i++ {
			s.st.setOccupancyGauge(i, occ.With(strconv.Itoa(i)))
		}
		if cfg.Sched != nil {
			bound := reg.GaugeVec("sdrad_sched_batch_bound",
				"Adaptive drain-batch bound per worker.", "worker")
			for _, w := range s.workers {
				w.boundGauge = bound.With(strconv.Itoa(w.idx))
				w.boundGauge.Set(int64(w.ctrl.Bound()))
			}
			s.telSplits = reg.Counter("sdrad_sched_batch_splits_total",
				"Mixed batches split into per-shard guard scopes.")
			reg.CounterFunc("sdrad_sched_steals_total",
				"Cross-worker steal rounds executed by idle floor workers.", s.steals.Load)
			reg.CounterFunc("sdrad_sched_stolen_events_total",
				"Pending events taken by cross-worker stealing.", s.stolenEvents.Load)
			reg.CounterFunc("sdrad_sched_steal_segments_total",
				"Guard scopes run for stolen shard-affinity segments.", s.stealSegments.Load)
			wait := reg.CounterVec("sdrad_memcache_shard_lock_wait_ns",
				"Nanoseconds spent waiting on contended shard-lock acquisitions.", "shard")
			ops := reg.CounterVec("sdrad_memcache_shard_batch_ops",
				"Deferred ops applied through the batch paths per shard.", "shard")
			for i := 0; i < s.st.Shards(); i++ {
				s.st.setContentionCounters(i, wait.With(strconv.Itoa(i)), ops.With(strconv.Itoa(i)))
			}
		}
	}
	return s, nil
}

// provision sets up storage (and, for the hardened build, the shared
// storage data domain) on the init thread.
func (s *Server) provision(t *proc.Thread) error {
	as := s.p.AddressSpace()
	c := t.CPU()
	switch s.cfg.Variant {
	case VariantSDRaD:
		// The hash table and database live in a dedicated data domain,
		// accessible by the nested event domain of each thread (§V-A).
		heapSz := s.cfg.CacheBytes + 1<<20 // TLSF control + slack
		if err := s.lib.InitDomain(t, storageUDI, core.AsData(), core.Accessible(), core.HeapSize(heapSz)); err != nil {
			return err
		}
		block, err := s.lib.Malloc(t, storageUDI, s.cfg.CacheBytes)
		if err != nil {
			return err
		}
		arena := newBumpArena(block, s.cfg.CacheBytes)
		st, err := NewStorage(c, s.cfg.HashPower, s.cfg.Shards, arena.alloc)
		if err != nil {
			return err
		}
		st.SetArenaBounds(block, s.cfg.CacheBytes)
		s.st = st
	case VariantTLSF:
		base, err := as.MapAnon(int(s.cfg.CacheBytes+baselineSlack(s.cfg)), mem.ProtRW, 0)
		if err != nil {
			return err
		}
		h, err := tlsf.Init(c, base, s.cfg.CacheBytes+baselineSlack(s.cfg))
		if err != nil {
			return err
		}
		s.connAllocator = &tlsfAlloc{h: h}
		return s.provisionBaselineStorage(c)
	case VariantVanilla:
		base, err := as.MapAnon(int(s.cfg.CacheBytes+baselineSlack(s.cfg)), mem.ProtRW, 0)
		if err != nil {
			return err
		}
		h, err := galloc.Init(c, base, s.cfg.CacheBytes+baselineSlack(s.cfg))
		if err != nil {
			return err
		}
		s.connAllocator = &gallocAlloc{h: h}
		return s.provisionBaselineStorage(c)
	default:
		return fmt.Errorf("memcache: unknown variant %d", s.cfg.Variant)
	}
	return nil
}

// baselineSlack is the baseline heap headroom beyond the cache limit:
// connection buffers plus allocator slack.
func baselineSlack(cfg Config) uint64 {
	return uint64(cfg.ConnBufSize)*2*256 + 2<<20
}

// provisionBaselineStorage carves the storage arena out of the variant's
// allocator (Memcached's slab pages come from malloc).
func (s *Server) provisionBaselineStorage(c *mem.CPU) error {
	block, err := s.connAllocator.Alloc(c, s.cfg.CacheBytes)
	if err != nil {
		return err
	}
	arena := newBumpArena(block, s.cfg.CacheBytes)
	st, err := NewStorage(c, s.cfg.HashPower, s.cfg.Shards, arena.alloc)
	if err != nil {
		return err
	}
	st.SetArenaBounds(block, s.cfg.CacheBytes)
	s.st = st
	return nil
}

// run is a worker thread's body: the event loop.
func (w *worker) run(t *proc.Thread) error {
	s := w.s
	if s.cfg.Variant == VariantSDRaD {
		// Create the per-thread event domain and grant it access to the
		// shared database (deep copies of the connection buffer are made
		// per event; the database itself is shared, as in the paper).
		if err := s.lib.InitDomain(t, eventUDI, core.Accessible(), core.HeapSize(s.cfg.DomainHeapSize)); err != nil {
			return err
		}
		if err := s.lib.DProtect(t, eventUDI, storageUDI, mem.ProtRW); err != nil {
			return err
		}
	}
	maxBatch := s.cfg.MaxBatch
	// pending holds an event drained from the channel that could not
	// join the current batch (inspect event, or the batch was full); it
	// leads the next round so event order is preserved.
	var pending *event
	for {
		var ev *event
		if pending != nil {
			ev, pending = pending, nil
		} else if w.stealch == nil {
			select {
			case <-s.p.Done():
				return nil
			case ev = <-w.ch:
			}
		} else {
			// Steal mode: prefer own work (either queue); only when both
			// are empty does the worker consider taking a sibling's
			// backlog, and only from the AIMD floor — a worker with any
			// batching headroom of its own is not idle capacity.
			select {
			case ev = <-w.ch:
			case ev = <-w.stealch:
			default:
			}
			if ev == nil {
				if w.ctrl.AtFloor() && s.trySteal(t, w) {
					continue
				}
				timer := time.NewTimer(w.ctrl.StealInterval())
				select {
				case <-s.p.Done():
					timer.Stop()
					return nil
				case ev = <-w.ch:
					timer.Stop()
				case ev = <-w.stealch:
					timer.Stop()
				case <-timer.C:
					// A traffic-free interval: walk the bound toward the
					// floor so even a never-loaded worker becomes a steal
					// candidate, then rescan.
					w.ctrl.ObserveIdle()
					continue
				}
			}
		}
		if ev.inspect != nil {
			ev.resp <- result{err: ev.inspect(t)}
			continue
		}
		// Drain up to the current bound of pending requests into one
		// batch: the fixed MaxBatch without a controller (the legacy
		// path, unchanged), the adaptive bound with one. Inspect events
		// and overflowing events park in pending and wait for the next
		// round.
		bound := maxBatch
		if w.ctrl != nil {
			bound = w.ctrl.Bound()
		}
		w.items = appendItems(w.items[:0], ev)
	drain:
		for len(w.items) < bound {
			// A nil stealch case can never fire, so the legacy single-queue
			// drain is preserved bit for bit outside steal mode.
			select {
			case ev2 := <-w.ch:
				if ev2.inspect != nil || len(w.items)+ev2.nreq() > bound {
					pending = ev2
					break drain
				}
				w.items = appendItems(w.items, ev2)
			case ev2 := <-w.stealch:
				if len(w.items)+ev2.nreq() > bound {
					pending = ev2
					break drain
				}
				w.items = appendItems(w.items, ev2)
			default:
				break drain
			}
		}
		if w.ctrl == nil {
			deliver(w.items, s.dispatchBatch(t, w, w.items))
			continue
		}
		drained := len(w.items)
		if pending == nil && drained == 1 && w.queued() == 0 && w.ctrl.AtFloor() {
			// Idle floor fast path: a lone event with nothing queued behind
			// it cannot move a controller already at bound 1 with a cold
			// rewind window, so the round skips the clock reads and the
			// observation — at low load the scheduler costs one atomic load
			// per event.
			s.dispatchSched(t, w)
			continue
		}
		t0 := w.ctrl.Now()
		s.dispatchSched(t, w)
		backlog := w.queued()
		if pending != nil {
			backlog++
		}
		w.ctrl.ObserveRound(backlog, drained, w.ctrl.Now()-t0)
		if w.boundGauge != nil {
			w.boundGauge.Set(int64(w.ctrl.Bound()))
		}
	}
}

// dispatchSched is the scheduler's batch dispatch: the drained batch is
// split into contiguous per-shard segments — at event boundaries only,
// so one pipelined event's run is never separated — and each segment
// runs in its own guard scope against a single lock stripe. Segments
// shorter than the controller's MinSplitRun are not worth their own
// Guard/Enter/Exit round and stay merged with their neighbor.
func (s *Server) dispatchSched(t *proc.Thread, w *worker) {
	items := w.items
	minRun := w.ctrl.MinSplitRun()
	if minRun <= 0 || len(items) < 2*minRun {
		deliver(items, s.dispatchBatch(t, w, items))
		return
	}
	// Classify each item by its key's shard (one event's items share the
	// event's classification; keyless requests are -1 and join either
	// neighbor).
	if cap(w.evShards) < len(items) {
		w.evShards = make([]int, len(items))
	}
	shards := w.evShards[:len(items)]
	for i := range items {
		if i > 0 && items[i].ev == items[i-1].ev {
			shards[i] = shards[i-1]
			continue
		}
		shards[i] = -1
		if key := requestKeyBytes(items[i].req); key != nil {
			shards[i] = s.st.ShardFor(key)
		}
	}
	start := 0
	for i := 1; i < len(items); i++ {
		if shards[i] == shards[i-1] || shards[i] < 0 || shards[i-1] < 0 ||
			items[i].ev == items[i-1].ev ||
			i-start < minRun || len(items)-i < minRun {
			continue
		}
		seg := items[start:i]
		deliver(seg, s.dispatchBatch(t, w, seg))
		if s.telSplits != nil {
			s.telSplits.Inc()
		}
		start = i
	}
	seg := items[start:]
	deliver(seg, s.dispatchBatch(t, w, seg))
}

// queued is the worker's undrained event count across both queues.
func (w *worker) queued() int {
	n := len(w.ch)
	if w.stealch != nil {
		n += len(w.stealch)
	}
	return n
}

// trySteal is the cross-worker stealing round: the caller is at the
// AIMD floor with empty queues, so it takes up to half of the most
// backlogged sibling's steal-eligible events (capped at one batch
// ceiling) and runs them in its own guard scopes via dispatchStolen.
// The thief's own controller observes the round, so a fault in stolen
// work heats the thief's rewind window, drops it off the floor, and
// stops it stealing until the window drains — the blast-radius
// convergence the AIMD ladder gives normal traffic applies to stolen
// traffic unchanged. Returns false when no sibling had at least two
// pending events (one pending event is latency, not backlog).
func (s *Server) trySteal(t *proc.Thread, w *worker) bool {
	victim, best := -1, 1
	for _, v := range s.workers {
		if v == w || v.stealch == nil {
			continue
		}
		if n := len(v.stealch); n > best {
			victim, best = v.idx, n
		}
	}
	if victim < 0 {
		return false
	}
	take := best / 2
	if max := w.ctrl.MaxBatch(); take > max {
		take = max
	}
	if take < 1 {
		take = 1
	}
	v := s.workers[victim]
	w.items = w.items[:0]
steal:
	for len(w.items) < take {
		select {
		case ev := <-v.stealch:
			w.items = appendItems(w.items, ev)
		default:
			break steal // raced with the victim's own drain
		}
	}
	if len(w.items) == 0 {
		return false
	}
	s.steals.Add(1)
	s.stolenEvents.Add(int64(len(w.items)))
	t0 := w.ctrl.Now()
	s.dispatchStolen(t, w)
	w.ctrl.ObserveRound(w.queued(), len(w.items), w.ctrl.Now()-t0)
	if w.boundGauge != nil {
		w.boundGauge.Set(int64(w.ctrl.Bound()))
	}
	return true
}

// dispatchStolen runs a stolen segment. Items are grouped by storage
// shard and every group runs as its OWN guard scope: the router's
// epoch-handoff rules promise that one scope never sees a split key
// view, and a fault on the thief discards exactly the stolen group it
// hit — one rewind, one forensics report, and the victim's remaining
// backlog commits untouched. Only single-request keyed events are
// steal-eligible (the submit path enforces it), so reordering across
// groups cannot reorder any one connection's requests: Do is
// synchronous, one event per connection in flight.
func (s *Server) dispatchStolen(t *proc.Thread, w *worker) {
	items := w.items
	if cap(w.evShards) < len(items) {
		w.evShards = make([]int, len(items))
	}
	shards := w.evShards[:len(items)]
	for i := range items {
		shards[i] = -1
		if key := requestKeyBytes(items[i].req); key != nil {
			shards[i] = s.st.ShardFor(key)
		}
	}
	// Stable insertion sort by shard — stolen segments are at most one
	// batch ceiling long, so O(n²) beats allocating a sorter.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && shards[j-1] > shards[j]; j-- {
			shards[j-1], shards[j] = shards[j], shards[j-1]
			items[j-1], items[j] = items[j], items[j-1]
		}
	}
	start := 0
	for i := 1; i <= len(items); i++ {
		if i < len(items) && shards[i] == shards[start] {
			continue
		}
		seg := items[start:i]
		deliver(seg, s.dispatchBatch(t, w, seg))
		s.stealSegments.Add(1)
		start = i
	}
}

// requestKeyBytes extracts the (first) key token of a text-protocol
// request for shard classification, allocation-free; nil for keyless
// commands and binary frames.
func requestKeyBytes(req []byte) []byte {
	if len(req) == 0 || req[0] == BinMagicRequest {
		return nil
	}
	eol := bytes.IndexByte(req, '\r')
	if eol < 0 {
		eol = len(req)
	}
	line := req[:eol]
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return nil
	}
	switch string(line[:sp]) {
	case "get", "gets", "set", "add", "replace", "append", "prepend",
		"cas", "delete", "touch", "incr", "decr", "bset":
	default:
		return nil
	}
	rest := line[sp+1:]
	if end := bytes.IndexByte(rest, ' '); end >= 0 {
		rest = rest[:end]
	}
	if len(rest) == 0 {
		return nil
	}
	return rest
}

// appendItems flattens an event's requests into the batch.
func appendItems(items []batchItem, ev *event) []batchItem {
	if ev.reqs != nil {
		for _, r := range ev.reqs {
			items = append(items, batchItem{ev: ev, req: r})
		}
		return items
	}
	return append(items, batchItem{ev: ev, req: ev.req})
}

// deliver routes per-item results back to the issuing clients. One
// event's items are contiguous in the batch (appendItems never splits
// an event), so a pipelined event's results are a contiguous run.
func deliver(items []batchItem, results []result) {
	i := 0
	for i < len(items) {
		ev := items[i].ev
		if ev.respN != nil {
			n := len(ev.reqs)
			out := make([]result, n)
			copy(out, results[i:i+n])
			ev.respN <- out
			i += n
			continue
		}
		ev.resp <- results[i]
		i++
	}
}

// handleEvent processes one client event on the worker thread (the
// unbatched path: inline harness, and control events).
func (s *Server) handleEvent(t *proc.Thread, w *worker, ev *event) result {
	if ev.inspect != nil {
		return result{err: ev.inspect(t)}
	}
	if s.cfg.Variant != VariantSDRaD {
		return s.handleOne(t, w, ev.conn, ev.req)
	}
	w.one[0] = batchItem{ev: ev, req: ev.req}
	return s.runHardenedBatch(t, w, w.one[:1], w.oneRes[:1])[0]
}

// dispatchBatch handles a drained batch of client events, returning one
// result per item. The hardened build handles the whole batch inside a
// single guard scope; baselines handle items one by one (they have no
// per-event domain cost to amortize).
func (s *Server) dispatchBatch(t *proc.Thread, w *worker, items []batchItem) []result {
	// Safe to reuse across batches: deliver either sends a result by
	// value or copies a pipelined run out before returning.
	if cap(w.results) < len(items) {
		w.results = make([]result, len(items))
	}
	results := w.results[:len(items)]
	if s.cfg.Variant != VariantSDRaD {
		for i := range items {
			results[i] = s.handleOne(t, w, items[i].ev.conn, items[i].req)
		}
		return results
	}
	return s.runHardenedBatch(t, w, items, results)
}

// handleOne is the per-request baseline flow: preflight checks, stage
// the request in the connection read buffer, run drive_machine.
func (s *Server) handleOne(t *proc.Thread, w *worker, conn *Conn, req []byte) result {
	if conn.closed {
		return result{closed: true, err: ErrConnClosed}
	}
	if len(req) > s.cfg.ConnBufSize {
		return result{err: ErrRequestTooLarge}
	}
	w.reqs.Add(1)
	c := t.CPU()
	if !conn.ready {
		if err := s.allocConnBuffers(t, conn); err != nil {
			return result{err: err}
		}
	}
	// Network bytes land in the connection's read buffer (root memory).
	c.Write(conn.rbuf, req)
	return s.handleBaseline(t, w, conn, len(req))
}

// handleBaseline runs drive_machine directly on the connection buffer. A
// memory-safety violation faults with no recovery point: the process
// supervisor terminates the whole server, which is exactly the behaviour
// the paper's baseline exhibits under CVE-2011-4971.
func (s *Server) handleBaseline(t *proc.Thread, w *worker, conn *Conn, rlen int) result {
	c := t.CPU()
	w.initAllocators(s)
	w.curT = t
	w.scratchAddrs = w.scratchAddrs[:0]
	env := &w.env
	*env = dmEnv{
		c:            c,
		rbuf:         conn.rbuf,
		rlen:         rlen,
		wbuf:         conn.wbuf,
		wcap:         s.cfg.ConnBufSize,
		allocScratch: w.allocBase,
		ops:          directOps{st: s.st},
		rl:           c.SpanLease(conn.rbuf, s.cfg.ConnBufSize, mem.AccessRead),
		wl:           c.SpanLease(conn.wbuf, s.cfg.ConnBufSize, mem.AccessWrite),
		reply:        &w.rw,
	}
	wlen, closeit, err := driveMachine(env)
	for _, p := range w.scratchAddrs {
		_ = s.connAllocator.Free(c, p)
	}
	if err != nil {
		return result{err: err}
	}
	resp := materializeResp(c, env.wl, conn.wbuf, wlen)
	conn.closed = closeit
	if closeit {
		s.freeConnBuffers(t, conn)
	}
	return result{data: resp, closed: closeit}
}

// materializeResp copies a drive_machine response out of simulated
// memory into a fresh Go slice for delivery to the client — through the
// write lease's native window when it is valid, through the checked
// reader otherwise.
func materializeResp(c *mem.CPU, wl *mem.Lease, wbuf mem.Addr, wlen int) []byte {
	if wlen <= 0 {
		return nil
	}
	if wl != nil {
		if b, ok := wl.Bytes(wbuf, wlen); ok {
			out := make([]byte, wlen)
			copy(out, b)
			return out
		}
	}
	return c.ReadBytes(wbuf, wlen)
}

// freeConnBuffers releases a closed connection's buffers.
func (s *Server) freeConnBuffers(t *proc.Thread, conn *Conn) {
	if !conn.ready {
		return
	}
	if s.cfg.Variant == VariantSDRaD {
		_ = s.lib.Free(t, core.RootUDI, conn.rbuf)
		_ = s.lib.Free(t, core.RootUDI, conn.wbuf)
	} else {
		c := t.CPU()
		_ = s.connAllocator.Free(c, conn.rbuf)
		_ = s.connAllocator.Free(c, conn.wbuf)
	}
	conn.ready = false
}

// runHardenedBatch is the paper's Figure 3 flow, amortized over a batch:
// every live item of the batch is handled in the worker's nested domain
// on a deep copy of its connection buffer, inside ONE guard scope — one
// context save, one Enter/Exit domain-switch round, one deferred-op
// apply. Database mutations stay deferred to normal domain exit (later
// items of the batch read their predecessors' writes through the
// deferred overlay, preserving sequential semantics); an abnormal exit
// anywhere in the batch rewinds once, discards the whole in-flight
// batch, and closes exactly the connections that had a request in it.
func (s *Server) runHardenedBatch(t *proc.Thread, w *worker, items []batchItem, results []result) []result {
	c := t.CPU()
	w.initAllocators(s)
	w.curT = t
	bufSize := uint64(s.cfg.ConnBufSize)
	// Worker-owned scratch: a rewound batch may leave stale pending ops
	// behind, so the reset here is also what keeps a discarded batch's
	// mutations from leaking into the next one.
	dops := &w.dops
	dops.st = s.st
	dops.pending = dops.pending[:0]
	if cap(w.states) < len(items) {
		w.states = make([]evState, len(items))
	}
	states := w.states[:len(items)]
	live := 0
	for i := range items {
		states[i] = evState{}
		conn := items[i].ev.conn
		if conn.closed {
			states[i].done = true
			results[i] = result{closed: true, err: ErrConnClosed}
			continue
		}
		if len(items[i].req) > s.cfg.ConnBufSize {
			states[i].done = true
			results[i] = result{err: ErrRequestTooLarge}
			continue
		}
		w.reqs.Add(1)
		if !conn.ready {
			if err := s.allocConnBuffers(t, conn); err != nil {
				states[i].done = true
				results[i] = result{err: err}
				continue
			}
		}
		live++
	}
	if live == 0 {
		return results
	}
	// Resilience-policy admission: while the event domain is quarantined
	// (or held off in backoff) the batch is served on the degraded path
	// — no domain re-creation, no guard scope. The Admit call is also
	// what readmits the domain once its cool-down expires.
	if dec := s.lib.Policy().Admit(int(eventUDI)); !dec.Allowed() {
		return s.serveDegraded(t, items, states, results, dec)
	}
	if s.telBatch != nil {
		s.telBatch.Observe(int64(live))
	}
	gerr := s.lib.Guard(t, eventUDI, func() error {
		if !w.domainReady {
			// The domain may have just been re-created (a rewind discards
			// it); re-establish its grant on the shared database. The
			// buffer-copy slots were discarded with the old heap.
			if err := s.lib.DProtect(t, eventUDI, storageUDI, mem.ProtRW); err != nil {
				return err
			}
			w.slots = w.slots[:0]
			w.domainReady = true
		}
		for len(w.slots) < live {
			rb, err := s.lib.Malloc(t, eventUDI, bufSize)
			if err != nil {
				return err
			}
			wb, err := s.lib.Malloc(t, eventUDI, bufSize)
			if err != nil {
				return err
			}
			// Mint the slot's span leases once; Enter/Exit transitions
			// only cost the O(1) renewal recheck from here on.
			w.slots = append(w.slots, connSlot{
				rbuf: rb,
				wbuf: wb,
				rl:   c.NewLease(rb, s.cfg.ConnBufSize, mem.AccessRead),
				wl:   c.NewLease(wb, s.cfg.ConnBufSize, mem.AccessWrite),
			})
		}
		// ④ deep copies: each request is staged through its connection's
		// read buffer (network bytes land in root memory) and copied into
		// the domain slot for its batch position — per item, so a
		// pipelined connection can reuse its read buffer.
		slot := 0
		for i := range items {
			if states[i].done {
				continue
			}
			conn := items[i].ev.conn
			c.Write(conn.rbuf, items[i].req)
			s.lib.Copy(t, w.slots[slot].rbuf, conn.rbuf, len(items[i].req))
			states[i].slot = slot
			slot++
		}
		// ⑤ enter the domain once, ⑥ drive_machine per item on its copy.
		if err := s.lib.Enter(t, eventUDI); err != nil {
			return err
		}
		// Batch-stable environment fields; the item loop only repoints the
		// buffers and leases at each item's slot.
		env := &w.env
		*env = dmEnv{
			c:            c,
			wcap:         s.cfg.ConnBufSize,
			allocScratch: w.allocDomain,
			ops:          dops,
			reply:        &w.rw,
		}
		for i := range items {
			if states[i].done {
				continue
			}
			// A quit earlier in the batch closes the connection for the
			// items behind it, exactly as if they had arrived after the
			// close in the unbatched flow.
			if closedEarlierInBatch(items, states, i) {
				states[i].done = true
				results[i] = result{closed: true, err: ErrConnClosed}
				continue
			}
			slot := &w.slots[states[i].slot]
			w.scratchAddrs = w.scratchAddrs[:0]
			env.rbuf, env.rlen = slot.rbuf, len(items[i].req)
			env.wbuf = slot.wbuf
			env.rl, env.wl = &slot.rl, &slot.wl
			env.noreply = false
			mark := len(dops.pending)
			var derr error
			states[i].wlen, states[i].closeit, derr = driveMachine(env)
			for _, p := range w.scratchAddrs {
				_ = s.lib.Free(t, eventUDI, p)
			}
			if derr != nil {
				// Internal failure for this item only: its deferred ops
				// are rolled back, the rest of the batch proceeds — the
				// same isolation the unbatched flow gives (the erroring
				// event applied nothing).
				dops.pending = dops.pending[:mark]
				states[i].derr = derr
				continue
			}
			// ⑧ capture the response straight from the slot write buffer
			// while it is cache-hot — through the slot's write lease, one
			// copy into the Go-side delivery slice, replacing the old
			// slot→conn-buffer staging copy plus read-back. The domain is
			// reading its own buffer; an abnormal exit later in the batch
			// discards every captured response with the batch.
			states[i].data = materializeResp(c, &slot.wl, slot.wbuf, states[i].wlen)
		}
		// ⑦ exit back to the root domain once.
		if err := s.lib.Exit(t); err != nil {
			return err
		}
		// ⑨ apply the deferred database updates for the whole batch,
		// grouped per storage shard.
		return dops.apply(c)
	}, core.Accessible(), core.HeapSize(s.cfg.DomainHeapSize))
	if gerr != nil {
		var abn *core.AbnormalExit
		if errors.As(gerr, &abn) {
			// ⑫-⑭ rewind happened: the domain, its buffer copies, and the
			// whole in-flight batch (including its un-applied deferred
			// ops) are gone; close every connection with a request in the
			// batch and keep serving.
			w.domainReady = false
			w.slots = w.slots[:0]
			s.rewinds.Add(1)
			if w.ctrl != nil {
				// Multiplicative decrease: the next batches risk less
				// collateral while the rewind window stays hot.
				w.ctrl.NoteRewind()
			}
			for i := range items {
				if states[i].done {
					continue
				}
				conn := items[i].ev.conn
				if !conn.closed {
					conn.closed = true
					s.freeConnBuffers(t, conn)
					s.closedByAtk.Add(1)
				}
				results[i] = result{closed: true}
			}
			return results
		}
		if errors.Is(gerr, core.ErrDomainQuarantined) {
			// The policy refused to re-create the event domain between
			// the Admit above and the Guard (quarantine raced in, e.g. a
			// concurrent rewind crossed the threshold). Close only this
			// batch's connections; the domain, its slots, and the
			// deferred ops never existed, and NO forensics report is
			// synthesized here — the rewind that triggered the
			// quarantine already produced exactly one.
			w.domainReady = false
			w.slots = w.slots[:0]
			for i := range items {
				if states[i].done {
					continue
				}
				conn := items[i].ev.conn
				if !conn.closed {
					conn.closed = true
					s.freeConnBuffers(t, conn)
					s.closedByAtk.Add(1)
				}
				results[i] = result{closed: true, err: gerr}
			}
			return results
		}
		for i := range items {
			if !states[i].done {
				results[i] = result{err: gerr}
			}
		}
		return results
	}
	for i := range items {
		if states[i].done {
			continue
		}
		if states[i].derr != nil {
			results[i] = result{err: states[i].derr}
			continue
		}
		conn := items[i].ev.conn
		if states[i].closeit && !conn.closed {
			conn.closed = true
			s.freeConnBuffers(t, conn)
		}
		results[i] = result{data: states[i].data, closed: states[i].closeit}
	}
	return results
}

// serveDegraded answers a batch while the event domain is quarantined:
// gets are served as misses straight from root memory (the cached data
// died with the discarded domain state's trust anyway — a miss is the
// safe answer), quits close cleanly, and mutations are refused with
// SERVER_ERROR so clients back off. A shedding domain drops its
// connections outright. Nothing here touches the guard scope or the
// shared database, which is the point: the degraded path costs no
// domain re-creation.
func (s *Server) serveDegraded(t *proc.Thread, items []batchItem, states []evState, results []result, dec policy.Decision) []result {
	shedding := dec.State == policy.StateShedding
	for i := range items {
		if states[i].done {
			continue
		}
		conn := items[i].ev.conn
		if shedding {
			if !conn.closed {
				conn.closed = true
				s.freeConnBuffers(t, conn)
				s.shed.Add(1)
			}
			results[i] = result{closed: true, err: ErrConnClosed}
			continue
		}
		s.degraded.Add(1)
		req := items[i].req
		switch {
		case bytes.HasPrefix(req, []byte("get ")), bytes.HasPrefix(req, []byte("gets ")):
			results[i] = result{data: []byte("END\r\n")}
		case bytes.HasPrefix(req, []byte("quit")):
			if !conn.closed {
				conn.closed = true
				s.freeConnBuffers(t, conn)
			}
			results[i] = result{closed: true}
		default:
			results[i] = result{data: []byte("SERVER_ERROR event domain quarantined\r\n")}
		}
	}
	return results
}

// Degraded reports how many requests were answered on the quarantine
// degraded path.
func (s *Server) Degraded() int64 { return s.degraded.Load() }

// Shed reports how many connections were closed by load shedding.
func (s *Server) Shed() int64 { return s.shed.Load() }

// closedEarlierInBatch reports whether an earlier live item of the
// current batch closed item i's connection (quit command).
func closedEarlierInBatch(items []batchItem, states []evState, i int) bool {
	for j := 0; j < i; j++ {
		if !states[j].done && states[j].derr == nil && states[j].closeit &&
			items[j].ev.conn == items[i].ev.conn {
			return true
		}
	}
	return false
}

// allocConnBuffers provisions a connection's buffers in root memory.
func (s *Server) allocConnBuffers(t *proc.Thread, conn *Conn) error {
	sz := uint64(s.cfg.ConnBufSize)
	if s.cfg.Variant == VariantSDRaD {
		rb, err := s.lib.Malloc(t, core.RootUDI, sz)
		if err != nil {
			return err
		}
		wb, err := s.lib.Malloc(t, core.RootUDI, sz)
		if err != nil {
			return err
		}
		conn.rbuf, conn.wbuf = rb, wb
	} else {
		c := t.CPU()
		rb, err := s.connAllocator.Alloc(c, sz)
		if err != nil {
			return err
		}
		wb, err := s.connAllocator.Alloc(c, sz)
		if err != nil {
			return err
		}
		conn.rbuf, conn.wbuf = rb, wb
	}
	conn.ready = true
	return nil
}

// InlineDo serves one request synchronously on an inline worker thread
// created by RunInline.
type InlineDo func(conn *Conn, req []byte) (resp []byte, closed bool, err error)

// RunInline runs body on a dedicated worker thread that both issues and
// serves requests, with no event-channel hop in between. It exists for
// low-noise benchmarking (single-core CI machines drown the variant
// differences in scheduler noise otherwise); the serving path is exactly
// the one the event loop uses. Connections passed to the returned InlineDo
// must have been created by the NewConn method of this call's handle.
func (s *Server) RunInline(name string, body func(newConn func() *Conn, do InlineDo) error) error {
	w := &worker{idx: -1, s: s, ch: nil}
	h := s.p.Spawn(name, func(t *proc.Thread) error {
		if s.cfg.Variant == VariantSDRaD {
			if err := s.lib.InitDomain(t, eventUDI, core.Accessible(), core.HeapSize(s.cfg.DomainHeapSize)); err != nil {
				return err
			}
			if err := s.lib.DProtect(t, eventUDI, storageUDI, mem.ProtRW); err != nil {
				return err
			}
		}
		newConn := func() *Conn {
			return &Conn{id: int(s.connIDs.Add(1)), w: w}
		}
		do := func(conn *Conn, req []byte) ([]byte, bool, error) {
			res := s.handleEvent(t, w, &event{conn: conn, req: req})
			return res.data, res.closed, res.err
		}
		return body(newConn, do)
	})
	return h.Join()
}

// NewConn opens a client connection pinned to a worker: round-robin by
// default, or by the load-aware placement scorer when Sched.Route is on
// — queue depth, EWMA service latency, and rewind-window heat steer new
// connections onto calm workers at the one moment they can still be
// steered.
func (s *Server) NewConn() *Conn {
	return &Conn{
		id: int(s.connIDs.Add(1)),
		w:  s.placeWorker(),
	}
}

// placeWorker picks the worker a new connection is pinned to. Outside
// route mode it is the legacy round-robin cursor, bit for bit. In route
// mode every worker has a controller (route requires Sched), and the
// scorer's rotated tie-break reproduces the round-robin fill order
// exactly while the cluster is idle.
func (s *Server) placeWorker() *worker {
	if !s.route {
		return s.workers[int(s.rr.Add(1)-1)%len(s.workers)]
	}
	loads := make([]sched.WorkerLoad, len(s.workers))
	for i, w := range s.workers {
		ewma, wins := w.ctrl.Load()
		loads[i] = sched.WorkerLoad{Queue: w.queued(), EWMAItemNs: ewma, WindowRewinds: wins}
	}
	return s.workers[sched.PlacementPick(loads, int(s.place.Add(1)-1))]
}

// WorkerIndex reports which worker the connection is pinned to (chaos
// campaigns assert placement decisions through it).
func (c *Conn) WorkerIndex() int { return c.w.idx }

// ConnOn opens a connection pinned to worker idx, bypassing placement.
// Chaos campaigns use it to park a chosen worker or stage a
// deterministic backlog; real accept paths go through NewConn.
func (s *Server) ConnOn(idx int) *Conn {
	return &Conn{id: int(s.connIDs.Add(1)), w: s.workers[idx]}
}

// KeyWorker reports which worker a single keyed request for key routes
// to under shard-affinity routing (the connection's pinning is
// irrelevant for keyed traffic once the scheduler routes). Returns -1
// without a router (scheduler off, or a single worker).
func (s *Server) KeyWorker(key []byte) int {
	if s.router == nil {
		return -1
	}
	return s.router.Worker(s.st.ShardFor(key))
}

// EventDomainUDI is the UDI of the per-worker event-handling domain,
// for policy-snapshot assertions outside the package.
func EventDomainUDI() int { return int(eventUDI) }

// Do sends one request on the connection and waits for the response.
// closed reports that the server closed the connection (quit command or
// attack recovery).
//
// With the scheduler enabled the event is routed to the worker biased
// to the request key's storage shard instead of the connection's pinned
// worker, so concurrent workers flush disjoint lock stripes. Do is
// synchronous, so successive requests of one connection still serialize
// (channel send/receive orders the ownership handoff); a Conn must not
// be shared by concurrent Do callers, as before.
func (c *Conn) Do(req []byte) (resp []byte, closed bool, err error) {
	s := c.w.s
	ev := &event{conn: c, req: req, resp: make(chan result, 1)}
	select {
	case s.submitQueue(c, req) <- ev:
	case <-s.p.Done():
		return nil, true, ErrServerDown
	}
	select {
	case r := <-ev.resp:
		return r.data, r.closed, r.err
	case <-s.p.Done():
		return nil, true, ErrServerDown
	}
}

// workerFor picks the worker an event should run on: the shard-affinity
// bias when the scheduler is routing, the connection's pinned worker
// otherwise (and for keyless requests).
func (s *Server) workerFor(c *Conn, req []byte) *worker {
	if s.router == nil {
		return c.w
	}
	key := requestKeyBytes(req)
	if key == nil {
		return c.w
	}
	return s.workers[s.router.Worker(s.st.ShardFor(key))]
}

// submitQueue picks the channel a single Do request is submitted on:
// the target worker's steal-eligible queue for keyed requests in steal
// mode (a sibling at the floor may take them), its main queue otherwise.
func (s *Server) submitQueue(c *Conn, req []byte) chan<- *event {
	w := s.workerFor(c, req)
	if w.stealch != nil && requestKeyBytes(req) != nil {
		return w.stealch
	}
	return w.ch
}

// PipelineResult is one request's outcome from DoPipeline.
type PipelineResult struct {
	Resp   []byte
	Closed bool
	Err    error
}

// DoPipeline sends reqs back-to-back on the connection and returns one
// result per request, in order. The server handles up to MaxBatch
// pipelined requests of one connection inside a single guard scope —
// one domain switch round, one scratch arena, one deferred-op apply —
// which is where the batched hardened build earns its throughput
// (longer pipelines are split into MaxBatch-sized chunks client-side).
// Requests behind a server-side close (quit, or attack recovery) report
// Closed with ErrConnClosed, exactly as if they were issued after it.
func (c *Conn) DoPipeline(reqs [][]byte) []PipelineResult {
	s := c.w.s
	out := make([]PipelineResult, 0, len(reqs))
	down := func() []PipelineResult {
		for len(out) < len(reqs) {
			out = append(out, PipelineResult{Closed: true, Err: ErrServerDown})
		}
		return out
	}
	maxB := s.cfg.MaxBatch
	// All chunks go to ONE worker: concurrent chunks of a pipeline on
	// two workers would race on the connection's buffers. With the
	// scheduler routing, the pipeline's first key picks the worker.
	w := c.w
	if s.router != nil && len(reqs) > 0 {
		w = s.workerFor(c, reqs[0])
	}
	var evs []*event
	for off := 0; off < len(reqs); off += maxB {
		end := off + maxB
		if end > len(reqs) {
			end = len(reqs)
		}
		ev := &event{conn: c, reqs: reqs[off:end], respN: make(chan []result, 1)}
		select {
		case w.ch <- ev:
			evs = append(evs, ev)
		case <-s.p.Done():
			return down()
		}
	}
	for _, ev := range evs {
		select {
		case rs := <-ev.respN:
			for _, r := range rs {
				out = append(out, PipelineResult{Resp: r.data, Closed: r.closed, Err: r.err})
			}
		case <-s.p.Done():
			return down()
		}
	}
	return out
}

// MaxBatch returns the server's configured guard-scope batch limit.
func (s *Server) MaxBatch() int { return s.cfg.MaxBatch }

// QueueDepth reports how many events are queued (undrained) for worker
// i, across both its queues. It is a monitoring signal: the scheduler
// benchmark and operational dashboards use it to observe backlog; the
// value is stale the moment it is read.
func (s *Server) QueueDepth(i int) int { return s.workers[i].queued() }

// Steals reports completed cross-worker steal rounds.
func (s *Server) Steals() int64 { return s.steals.Load() }

// StolenEvents reports how many pending events stealing moved.
func (s *Server) StolenEvents() int64 { return s.stolenEvents.Load() }

// StealSegments reports the guard scopes run for stolen shard segments.
func (s *Server) StealSegments() int64 { return s.stealSegments.Load() }

// Inspect runs fn on the worker thread that owns this connection, like a
// request but with the worker's thread handed to the closure. The chaos
// engine uses it to run invariant audits and arm fault injectors on the
// serving thread between events; fn must leave the thread in the root
// domain.
func (c *Conn) Inspect(fn func(t *proc.Thread) error) error {
	s := c.w.s
	ev := &event{inspect: fn, resp: make(chan result, 1)}
	select {
	case c.w.ch <- ev:
	case <-s.p.Done():
		return ErrServerDown
	}
	select {
	case r := <-ev.resp:
		return r.err
	case <-s.p.Done():
		return ErrServerDown
	}
}

// Stop shuts the server down and waits for the workers.
func (s *Server) Stop() {
	s.p.Shutdown()
	s.p.Wait()
}

// Crashed reports whether the server process died (baseline under
// attack) and the recorded cause.
func (s *Server) Crashed() (bool, error) {
	if !s.p.Killed() {
		return false, nil
	}
	return s.p.ExitError() != nil, s.p.ExitError()
}

// Rewinds reports how many abnormal domain exits the server recovered.
func (s *Server) Rewinds() int64 { return s.rewinds.Load() }

// MappedBytes is the resident-set-size analog: bytes of simulated memory
// currently mapped by the server process.
func (s *Server) MappedBytes() int64 {
	return s.p.AddressSpace().Stats().MappedBytes.Load()
}

// StorageStats returns cache statistics.
func (s *Server) StorageStats() StorageStats { return s.st.Stats() }

// Storage exposes the shared database, for invariant audits (run it on
// the owning worker thread via Conn.Inspect).
func (s *Server) Storage() *Storage { return s.st }

// Process exposes the simulated process (tests, benchmarks).
func (s *Server) Process() *proc.Process { return s.p }

// Library exposes the SDRaD library of the hardened build (nil
// otherwise).
func (s *Server) Library() *core.Library { return s.lib }

// Variant returns the build variant.
func (s *Server) Variant() Variant { return s.cfg.Variant }

// SchedSnapshots returns each worker's adaptive-controller snapshot
// (nil when the scheduler is disabled).
func (s *Server) SchedSnapshots() []sched.Snapshot {
	if s.cfg.Sched == nil {
		return nil
	}
	out := make([]sched.Snapshot, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.ctrl.Snapshot()
	}
	return out
}

// inspectOn runs fn on worker idx's thread (control event).
func (s *Server) inspectOn(idx int, fn func(t *proc.Thread) error) error {
	c := &Conn{id: int(s.connIDs.Add(1)), w: s.workers[idx]}
	return c.Inspect(fn)
}

// RebalanceTick runs one contention-driven rebalance round: the planner
// inspects the per-shard lock-wait/batch-op deltas and per-slot op
// counts, and each planned hot-slot move executes on worker 0's thread
// (root-domain rights over the storage domain) with the epoch handoff.
// Returns the number of slot moves executed. No-op without Config.Sched.
func (s *Server) RebalanceTick() int {
	if s.rebalancer == nil {
		return 0
	}
	loads := s.st.ContentionStats()
	shardLoads := make([]sched.ShardLoad, len(loads))
	for i, l := range loads {
		shardLoads[i] = sched.ShardLoad{WaitNs: l.WaitNs, BatchOps: l.BatchOps}
	}
	moves := s.rebalancer.Plan(s.st.SlotShard, shardLoads, s.st.SlotLoads())
	executed := 0
	for _, m := range moves {
		mv := m
		err := s.inspectOn(0, func(t *proc.Thread) error {
			_, err := s.st.MoveSlot(t.CPU(), mv.Slot, mv.To)
			return err
		})
		if err != nil {
			break
		}
		executed++
	}
	return executed
}

// StartRebalancer runs RebalanceTick every interval until the returned
// stop function is called or the server shuts down.
func (s *Server) StartRebalancer(interval time.Duration) (stop func()) {
	if s.rebalancer == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.RebalanceTick()
			case <-done:
				return
			case <-s.p.Done():
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
