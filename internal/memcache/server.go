package memcache

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sdrad/internal/core"
	"sdrad/internal/galloc"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/telemetry"
	"sdrad/internal/tlsf"
)

// Variant selects the build under test (Figure 4 of the paper).
type Variant int

// Build variants.
const (
	// VariantVanilla is the unmodified baseline (glibc-like allocator).
	VariantVanilla Variant = iota + 1
	// VariantTLSF swaps the allocator for TLSF but adds no isolation.
	VariantTLSF
	// VariantSDRaD is the hardened build: per-event isolated domains,
	// deep-copied connection buffers, deferred store updates.
	VariantSDRaD
)

func (v Variant) String() string {
	switch v {
	case VariantVanilla:
		return "vanilla"
	case VariantTLSF:
		return "tlsf"
	case VariantSDRaD:
		return "sdrad"
	default:
		return "unknown"
	}
}

// Domain indices used by the hardened build.
const (
	// storageUDI is the shared data domain holding the hash table and
	// slab memory, accessible by every worker's event domain.
	storageUDI = core.UDI(9)
	// eventUDI is each worker's nested event-handling domain (execution
	// domains are per thread, so every worker uses the same index).
	eventUDI = core.UDI(1)
)

// Config sizes the server.
type Config struct {
	// Variant selects the build (default VariantVanilla).
	Variant Variant
	// Workers is the number of worker threads (default 1).
	Workers int
	// HashPower sets the bucket count to 1<<HashPower (default 14).
	HashPower int
	// CacheBytes is the cache memory limit (default 32 MiB).
	CacheBytes uint64
	// ConnBufSize is the per-connection read/write buffer size
	// (default 16 KiB).
	ConnBufSize int
	// DomainHeapSize is the hardened build's per-event-domain heap
	// (default 192 KiB: two connection-buffer copies plus scratch).
	DomainHeapSize uint64
	// Seed fixes process randomness.
	Seed int64
	// Telemetry optionally attaches a recorder: the hardened build wires
	// it through the reference monitor, the vanilla build through the
	// address space only (fault events and MMU counters).
	Telemetry *telemetry.Recorder
}

func (c *Config) setDefaults() {
	if c.Variant == 0 {
		c.Variant = VariantVanilla
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.HashPower == 0 {
		c.HashPower = 14
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 32 << 20
	}
	if c.ConnBufSize == 0 {
		c.ConnBufSize = 16 * 1024
	}
	if c.DomainHeapSize == 0 {
		c.DomainHeapSize = 192 * 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Server errors.
var (
	ErrServerDown      = errors.New("memcache: server terminated")
	ErrConnClosed      = errors.New("memcache: connection closed")
	ErrRequestTooLarge = errors.New("memcache: request exceeds connection buffer")
)

// Server is one simulated Memcached process.
type Server struct {
	cfg Config
	p   *proc.Process
	lib *core.Library // nil for baseline variants
	st  *Storage

	connAllocator connAlloc // baseline variants' malloc for conn buffers
	workers       []*worker
	rr            atomic.Int64
	connIDs       atomic.Int64
	rewinds       atomic.Int64
	closedByAtk   atomic.Int64
}

type worker struct {
	idx    int
	s      *Server
	ch     chan *event
	handle *proc.Handle

	// reqs is the worker's native request count. Keeping it per worker
	// (its own cache line, uncontended) and summing at exposition via a
	// CounterFunc is what keeps the enabled-telemetry request path free
	// of shared-counter ping-pong.
	reqs atomic.Int64

	// Hardened-build per-worker domain state (owned by the worker
	// goroutine).
	domainReady bool
	rbufCopy    mem.Addr
	wbufCopy    mem.Addr
}

type event struct {
	conn *Conn
	req  []byte
	resp chan result
	// inspect, when non-nil, makes the event a control event: the worker
	// runs the closure on its own thread between requests (chaos-audit
	// hook); conn and req are ignored.
	inspect func(t *proc.Thread) error
}

type result struct {
	data   []byte
	closed bool
	err    error
}

// Conn is a client connection. All its simulated-memory state is owned by
// the worker it is pinned to.
type Conn struct {
	id     int
	w      *worker
	rbuf   mem.Addr
	wbuf   mem.Addr
	ready  bool
	closed bool
}

// ID returns the connection id.
func (c *Conn) ID() int { return c.id }

// NewServer builds and starts a server: storage is provisioned, workers
// are spawned, and the server is ready for NewConn/Do.
func NewServer(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg: cfg,
		p:   proc.NewProcess("memcached-"+cfg.Variant.String(), proc.WithSeed(cfg.Seed)),
	}
	if cfg.Variant == VariantSDRaD {
		rootHeap := uint64(cfg.ConnBufSize)*2*256 + 2<<20 // 256 live conns + slack
		opts := []core.SetupOption{
			core.WithRootHeapSize(rootHeap),
			core.WithDefaultHeapSize(cfg.DomainHeapSize),
		}
		if cfg.Telemetry != nil {
			opts = append(opts, core.WithTelemetry(cfg.Telemetry))
		}
		lib, err := core.Setup(s.p, opts...)
		if err != nil {
			return nil, err
		}
		s.lib = lib
	} else if cfg.Telemetry != nil {
		s.p.AddressSpace().SetTelemetry(cfg.Telemetry)
	}
	if err := s.p.Attach("init", s.provision); err != nil {
		return nil, fmt.Errorf("memcache: provisioning: %w", err)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{idx: i, s: s, ch: make(chan *event)}
		w.handle = s.p.Spawn(fmt.Sprintf("worker-%d", i), w.run)
		s.workers = append(s.workers, w)
	}
	if cfg.Telemetry != nil {
		workers := s.workers
		cfg.Telemetry.Registry().CounterFunc("sdrad_memcache_requests_total",
			"Memcached protocol commands processed.",
			func() int64 {
				var n int64
				for _, w := range workers {
					n += w.reqs.Load()
				}
				return n
			})
	}
	return s, nil
}

// provision sets up storage (and, for the hardened build, the shared
// storage data domain) on the init thread.
func (s *Server) provision(t *proc.Thread) error {
	as := s.p.AddressSpace()
	c := t.CPU()
	switch s.cfg.Variant {
	case VariantSDRaD:
		// The hash table and database live in a dedicated data domain,
		// accessible by the nested event domain of each thread (§V-A).
		heapSz := s.cfg.CacheBytes + 1<<20 // TLSF control + slack
		if err := s.lib.InitDomain(t, storageUDI, core.AsData(), core.Accessible(), core.HeapSize(heapSz)); err != nil {
			return err
		}
		block, err := s.lib.Malloc(t, storageUDI, s.cfg.CacheBytes)
		if err != nil {
			return err
		}
		arena := newBumpArena(block, s.cfg.CacheBytes)
		st, err := NewStorage(c, s.cfg.HashPower, arena.alloc)
		if err != nil {
			return err
		}
		s.st = st
	case VariantTLSF:
		base, err := as.MapAnon(int(s.cfg.CacheBytes+baselineSlack(s.cfg)), mem.ProtRW, 0)
		if err != nil {
			return err
		}
		h, err := tlsf.Init(c, base, s.cfg.CacheBytes+baselineSlack(s.cfg))
		if err != nil {
			return err
		}
		s.connAllocator = &tlsfAlloc{h: h}
		return s.provisionBaselineStorage(c)
	case VariantVanilla:
		base, err := as.MapAnon(int(s.cfg.CacheBytes+baselineSlack(s.cfg)), mem.ProtRW, 0)
		if err != nil {
			return err
		}
		h, err := galloc.Init(c, base, s.cfg.CacheBytes+baselineSlack(s.cfg))
		if err != nil {
			return err
		}
		s.connAllocator = &gallocAlloc{h: h}
		return s.provisionBaselineStorage(c)
	default:
		return fmt.Errorf("memcache: unknown variant %d", s.cfg.Variant)
	}
	return nil
}

// baselineSlack is the baseline heap headroom beyond the cache limit:
// connection buffers plus allocator slack.
func baselineSlack(cfg Config) uint64 {
	return uint64(cfg.ConnBufSize)*2*256 + 2<<20
}

// provisionBaselineStorage carves the storage arena out of the variant's
// allocator (Memcached's slab pages come from malloc).
func (s *Server) provisionBaselineStorage(c *mem.CPU) error {
	block, err := s.connAllocator.Alloc(c, s.cfg.CacheBytes)
	if err != nil {
		return err
	}
	arena := newBumpArena(block, s.cfg.CacheBytes)
	st, err := NewStorage(c, s.cfg.HashPower, arena.alloc)
	if err != nil {
		return err
	}
	s.st = st
	return nil
}

// run is a worker thread's body: the event loop.
func (w *worker) run(t *proc.Thread) error {
	s := w.s
	if s.cfg.Variant == VariantSDRaD {
		// Create the per-thread event domain and grant it access to the
		// shared database (deep copies of the connection buffer are made
		// per event; the database itself is shared, as in the paper).
		if err := s.lib.InitDomain(t, eventUDI, core.Accessible(), core.HeapSize(s.cfg.DomainHeapSize)); err != nil {
			return err
		}
		if err := s.lib.DProtect(t, eventUDI, storageUDI, mem.ProtRW); err != nil {
			return err
		}
	}
	for {
		select {
		case <-s.p.Done():
			return nil
		case ev := <-w.ch:
			ev.resp <- s.handleEvent(t, w, ev)
		}
	}
}

// handleEvent processes one client event on the worker thread.
func (s *Server) handleEvent(t *proc.Thread, w *worker, ev *event) result {
	if ev.inspect != nil {
		return result{err: ev.inspect(t)}
	}
	conn := ev.conn
	if conn.closed {
		return result{closed: true, err: ErrConnClosed}
	}
	if len(ev.req) > s.cfg.ConnBufSize {
		return result{err: ErrRequestTooLarge}
	}
	w.reqs.Add(1)
	c := t.CPU()
	if !conn.ready {
		if err := s.allocConnBuffers(t, conn); err != nil {
			return result{err: err}
		}
	}
	// Network bytes land in the connection's read buffer (root memory).
	c.Write(conn.rbuf, ev.req)

	if s.cfg.Variant != VariantSDRaD {
		return s.handleBaseline(t, conn, len(ev.req))
	}
	return s.handleHardened(t, w, conn, len(ev.req))
}

// handleBaseline runs drive_machine directly on the connection buffer. A
// memory-safety violation faults with no recovery point: the process
// supervisor terminates the whole server, which is exactly the behaviour
// the paper's baseline exhibits under CVE-2011-4971.
func (s *Server) handleBaseline(t *proc.Thread, conn *Conn, rlen int) result {
	c := t.CPU()
	var scratch []mem.Addr
	env := &dmEnv{
		c:    c,
		rbuf: conn.rbuf,
		rlen: rlen,
		wbuf: conn.wbuf,
		wcap: s.cfg.ConnBufSize,
		allocScratch: func(size uint64) (mem.Addr, error) {
			p, err := s.connAllocator.Alloc(c, size)
			if err == nil {
				scratch = append(scratch, p)
			}
			return p, err
		},
		ops: directOps{st: s.st},
	}
	wlen, closeit, err := driveMachine(env)
	for _, p := range scratch {
		_ = s.connAllocator.Free(c, p)
	}
	if err != nil {
		return result{err: err}
	}
	resp := c.ReadBytes(conn.wbuf, wlen)
	conn.closed = closeit
	if closeit {
		s.freeConnBuffers(t, conn)
	}
	return result{data: resp, closed: closeit}
}

// freeConnBuffers releases a closed connection's buffers.
func (s *Server) freeConnBuffers(t *proc.Thread, conn *Conn) {
	if !conn.ready {
		return
	}
	if s.cfg.Variant == VariantSDRaD {
		_ = s.lib.Free(t, core.RootUDI, conn.rbuf)
		_ = s.lib.Free(t, core.RootUDI, conn.wbuf)
	} else {
		c := t.CPU()
		_ = s.connAllocator.Free(c, conn.rbuf)
		_ = s.connAllocator.Free(c, conn.wbuf)
	}
	conn.ready = false
}

// handleHardened is the paper's Figure 3 flow: the event is handled in
// the worker's nested domain on a deep copy of the connection buffer;
// database mutations are deferred to normal domain exit; an abnormal exit
// discards the domain and closes only this connection.
func (s *Server) handleHardened(t *proc.Thread, w *worker, conn *Conn, rlen int) result {
	c := t.CPU()
	bufSize := uint64(s.cfg.ConnBufSize)
	dops := &deferredOps{st: s.st}
	var wlen int
	var closeit bool

	gerr := s.lib.Guard(t, eventUDI, func() error {
		if !w.domainReady {
			// The domain may have just been re-created (a rewind discards
			// it); re-establish its grant on the shared database and its
			// buffer copies.
			if err := s.lib.DProtect(t, eventUDI, storageUDI, mem.ProtRW); err != nil {
				return err
			}
			rb, err := s.lib.Malloc(t, eventUDI, bufSize)
			if err != nil {
				return err
			}
			wb, err := s.lib.Malloc(t, eventUDI, bufSize)
			if err != nil {
				return err
			}
			w.rbufCopy, w.wbufCopy = rb, wb
			w.domainReady = true
		}
		// ④ deep copy of the connection buffer into the domain.
		s.lib.Copy(t, w.rbufCopy, conn.rbuf, rlen)
		// ⑤ enter the domain, ⑥ drive_machine on the copy.
		if err := s.lib.Enter(t, eventUDI); err != nil {
			return err
		}
		var scratch []mem.Addr
		env := &dmEnv{
			c:    c,
			rbuf: w.rbufCopy,
			rlen: rlen,
			wbuf: w.wbufCopy,
			wcap: s.cfg.ConnBufSize,
			allocScratch: func(size uint64) (mem.Addr, error) {
				p, err := s.lib.Malloc(t, eventUDI, size)
				if err == nil {
					scratch = append(scratch, p)
				}
				return p, err
			},
			ops: dops,
		}
		var derr error
		wlen, closeit, derr = driveMachine(env)
		for _, p := range scratch {
			_ = s.lib.Free(t, eventUDI, p)
		}
		// ⑦ exit back to the root domain.
		if err := s.lib.Exit(t); err != nil {
			return err
		}
		if derr != nil {
			return derr
		}
		// ⑧ copy response back to the real connection buffer and
		// ⑨ apply the deferred database updates.
		s.lib.Copy(t, conn.wbuf, w.wbufCopy, wlen)
		return dops.apply(c)
	}, core.Accessible(), core.HeapSize(s.cfg.DomainHeapSize))
	if gerr != nil {
		var abn *core.AbnormalExit
		if errors.As(gerr, &abn) {
			// ⑫-⑭ rewind happened: the domain and the copied buffers are
			// gone; close the offending connection and keep serving.
			w.domainReady = false
			conn.closed = true
			s.freeConnBuffers(t, conn)
			s.rewinds.Add(1)
			s.closedByAtk.Add(1)
			return result{closed: true}
		}
		return result{err: gerr}
	}
	resp := c.ReadBytes(conn.wbuf, wlen)
	conn.closed = closeit
	if closeit {
		s.freeConnBuffers(t, conn)
	}
	return result{data: resp, closed: closeit}
}

// allocConnBuffers provisions a connection's buffers in root memory.
func (s *Server) allocConnBuffers(t *proc.Thread, conn *Conn) error {
	sz := uint64(s.cfg.ConnBufSize)
	if s.cfg.Variant == VariantSDRaD {
		rb, err := s.lib.Malloc(t, core.RootUDI, sz)
		if err != nil {
			return err
		}
		wb, err := s.lib.Malloc(t, core.RootUDI, sz)
		if err != nil {
			return err
		}
		conn.rbuf, conn.wbuf = rb, wb
	} else {
		c := t.CPU()
		rb, err := s.connAllocator.Alloc(c, sz)
		if err != nil {
			return err
		}
		wb, err := s.connAllocator.Alloc(c, sz)
		if err != nil {
			return err
		}
		conn.rbuf, conn.wbuf = rb, wb
	}
	conn.ready = true
	return nil
}

// InlineDo serves one request synchronously on an inline worker thread
// created by RunInline.
type InlineDo func(conn *Conn, req []byte) (resp []byte, closed bool, err error)

// RunInline runs body on a dedicated worker thread that both issues and
// serves requests, with no event-channel hop in between. It exists for
// low-noise benchmarking (single-core CI machines drown the variant
// differences in scheduler noise otherwise); the serving path is exactly
// the one the event loop uses. Connections passed to the returned InlineDo
// must have been created by the NewConn method of this call's handle.
func (s *Server) RunInline(name string, body func(newConn func() *Conn, do InlineDo) error) error {
	w := &worker{idx: -1, s: s, ch: nil}
	h := s.p.Spawn(name, func(t *proc.Thread) error {
		if s.cfg.Variant == VariantSDRaD {
			if err := s.lib.InitDomain(t, eventUDI, core.Accessible(), core.HeapSize(s.cfg.DomainHeapSize)); err != nil {
				return err
			}
			if err := s.lib.DProtect(t, eventUDI, storageUDI, mem.ProtRW); err != nil {
				return err
			}
		}
		newConn := func() *Conn {
			return &Conn{id: int(s.connIDs.Add(1)), w: w}
		}
		do := func(conn *Conn, req []byte) ([]byte, bool, error) {
			res := s.handleEvent(t, w, &event{conn: conn, req: req})
			return res.data, res.closed, res.err
		}
		return body(newConn, do)
	})
	return h.Join()
}

// NewConn opens a client connection pinned round-robin to a worker.
func (s *Server) NewConn() *Conn {
	idx := int(s.rr.Add(1)-1) % len(s.workers)
	return &Conn{
		id: int(s.connIDs.Add(1)),
		w:  s.workers[idx],
	}
}

// Do sends one request on the connection and waits for the response.
// closed reports that the server closed the connection (quit command or
// attack recovery).
func (c *Conn) Do(req []byte) (resp []byte, closed bool, err error) {
	s := c.w.s
	ev := &event{conn: c, req: req, resp: make(chan result, 1)}
	select {
	case c.w.ch <- ev:
	case <-s.p.Done():
		return nil, true, ErrServerDown
	}
	select {
	case r := <-ev.resp:
		return r.data, r.closed, r.err
	case <-s.p.Done():
		return nil, true, ErrServerDown
	}
}

// Inspect runs fn on the worker thread that owns this connection, like a
// request but with the worker's thread handed to the closure. The chaos
// engine uses it to run invariant audits and arm fault injectors on the
// serving thread between events; fn must leave the thread in the root
// domain.
func (c *Conn) Inspect(fn func(t *proc.Thread) error) error {
	s := c.w.s
	ev := &event{inspect: fn, resp: make(chan result, 1)}
	select {
	case c.w.ch <- ev:
	case <-s.p.Done():
		return ErrServerDown
	}
	select {
	case r := <-ev.resp:
		return r.err
	case <-s.p.Done():
		return ErrServerDown
	}
}

// Stop shuts the server down and waits for the workers.
func (s *Server) Stop() {
	s.p.Shutdown()
	s.p.Wait()
}

// Crashed reports whether the server process died (baseline under
// attack) and the recorded cause.
func (s *Server) Crashed() (bool, error) {
	if !s.p.Killed() {
		return false, nil
	}
	return s.p.ExitError() != nil, s.p.ExitError()
}

// Rewinds reports how many abnormal domain exits the server recovered.
func (s *Server) Rewinds() int64 { return s.rewinds.Load() }

// MappedBytes is the resident-set-size analog: bytes of simulated memory
// currently mapped by the server process.
func (s *Server) MappedBytes() int64 {
	return s.p.AddressSpace().Stats().MappedBytes.Load()
}

// StorageStats returns cache statistics.
func (s *Server) StorageStats() StorageStats { return s.st.Stats() }

// Process exposes the simulated process (tests, benchmarks).
func (s *Server) Process() *proc.Process { return s.p }

// Library exposes the SDRaD library of the hardened build (nil
// otherwise).
func (s *Server) Library() *core.Library { return s.lib }

// Variant returns the build variant.
func (s *Server) Variant() Variant { return s.cfg.Variant }
