package memcache

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// newTCPServer starts a hardened server behind a loopback listener and
// returns its address.
func newTCPServer(t *testing.T) (*Server, string) {
	t.Helper()
	s, err := NewServer(Config{
		Variant:    VariantSDRaD,
		Workers:    1,
		HashPower:  10,
		CacheBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Stop()
		t.Fatal(err)
	}
	go func() { _ = s.ServeListener(ln) }()
	t.Cleanup(func() { s.Stop(); _ = ln.Close() })
	return s, ln.Addr().String()
}

// TestConnServerCloseMidPipeline drives the engine pipeline through an
// attack-triggered close: the fault discards the whole in-flight batch
// (paper semantics — earlier items' writes never land), requests behind
// the close report ErrConnClosed, a fresh connection serves
// immediately, and a request behind a server Stop reports ErrServerDown
// rather than hanging.
func TestConnServerCloseMidPipeline(t *testing.T) {
	s, err := NewServer(Config{Variant: VariantSDRaD, Workers: 1, HashPower: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	conn := s.NewConn()
	res := conn.DoPipeline([][]byte{
		FormatSet("a", []byte("1"), 0),
		FormatBSet("atk", 1<<20, nil), // CVE analog: rewind + close
		FormatSet("b", []byte("2"), 0),
		FormatGet("a"),
	})
	if len(res) != 4 {
		t.Fatalf("%d results, want 4", len(res))
	}
	// One guard scope per batch: the rewind throws away everything in
	// flight, so even the request ahead of the attack reports closed and
	// its write never reached the store.
	for i, r := range res {
		if !r.Closed {
			t.Fatalf("result %d not closed after mid-batch fault: %+v", i, r)
		}
	}
	// The connection is dead for good: anything issued on it afterwards
	// reports ErrConnClosed.
	if _, _, err := conn.Do(FormatGet("a")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("request on the closed connection: %v, want ErrConnClosed", err)
	}
	// The close is per-connection: a reconnect serves at once, and the
	// discarded batch left no partial writes.
	conn = s.NewConn()
	resp, closed, err := conn.Do(FormatGet("a"))
	if err != nil || closed {
		t.Fatalf("reconnect: closed=%v err=%v", closed, err)
	}
	if !bytes.Equal(resp, []byte("END\r\n")) {
		t.Fatalf("discarded batch leaked a write: %q", resp)
	}
	if resp, _, err := conn.Do(FormatSet("c", []byte("3"), 0)); err != nil || !bytes.HasPrefix(resp, []byte("STORED")) {
		t.Fatalf("server not serving after reconnect: %q err=%v", resp, err)
	}
	s.Stop()
	if _, _, err := conn.Do(FormatGet("c")); !errors.Is(err, ErrServerDown) {
		t.Fatalf("Do after Stop: %v, want ErrServerDown", err)
	}
}

// TestTCPCloseMidPipeline sends a pipelined burst over TCP with an
// attack in the middle: the replies before the attack arrive, the
// stream then ends cleanly (io.EOF, not a hang or a torn reply), and a
// reconnect finds the server healthy.
func TestTCPCloseMidPipeline(t *testing.T) {
	_, addr := newTCPServer(t)
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	var burst bytes.Buffer
	burst.Write(FormatSet("pre", []byte("kept"), 0))
	burst.Write(FormatBSet("atk", 1<<20, nil))
	burst.Write(FormatSet("post", []byte("dropped"), 0))
	if _, err := nc.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(nc)
	rep, err := ReadReply(r)
	if err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
		t.Fatalf("pre-attack reply: %q err=%v", rep, err)
	}
	// The attack rewinds the backend and drops the connection; no reply
	// for it or anything behind it. A clean close, not a torn reply.
	if _, err := ReadReply(r); err != io.EOF {
		t.Fatalf("post-attack read: %v, want io.EOF", err)
	}

	// Reconnect-after-EOF: the server absorbed the rewind and keeps the
	// pre-attack write; the dropped request never reached the store.
	nc2, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	_ = nc2.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc2.Write(append(FormatGet("pre"), FormatGet("post")...)); err != nil {
		t.Fatal(err)
	}
	r2 := bufio.NewReader(nc2)
	rep, err = ReadReply(r2)
	if err != nil {
		t.Fatal(err)
	}
	if val, _, ok := ParseGetValue(rep); !ok || string(val) != "kept" {
		t.Fatalf("pre-attack key after reconnect: %q", rep)
	}
	rep, err = ReadReply(r2)
	if err != nil || !bytes.Equal(rep, []byte("END\r\n")) {
		t.Fatalf("request behind the close leaked into the store: %q err=%v", rep, err)
	}
}

// TestReadReplyPartial feeds ReadReply torn streams: every mid-reply EOF
// must surface as io.ErrUnexpectedEOF so callers (the router's exchange
// path) can tell a torn reply from a clean close.
func TestReadReplyPartial(t *testing.T) {
	torn := []string{
		"VALUE k 0 10\r\nabc",          // EOF inside the data block
		"VALUE k 0 3\r\nabc\r\n",       // data complete, END missing
		"VALUE k 0 3\r\nabc\r\nVALUE ", // second VALUE header torn
		"STAT a 1\r\n",                 // STAT stream without END
		"STORED",                       // terminal line without newline
	}
	for _, s := range torn {
		if _, err := ReadReply(bufio.NewReader(strings.NewReader(s))); err != io.ErrUnexpectedEOF {
			t.Errorf("ReadReply(%q) err = %v, want io.ErrUnexpectedEOF", s, err)
		}
	}
	// A clean EOF before any bytes is io.EOF — the idle-connection case.
	if _, err := ReadReply(bufio.NewReader(strings.NewReader(""))); err != io.EOF {
		t.Errorf("ReadReply on empty stream: %v, want io.EOF", err)
	}
	// Intact replies for contrast.
	whole := []string{
		"STORED\r\n",
		"END\r\n",
		"VALUE k 0 3\r\nabc\r\nEND\r\n",
		"STAT a 1\r\nSTAT b 2\r\nEND\r\n",
	}
	for _, s := range whole {
		rep, err := ReadReply(bufio.NewReader(strings.NewReader(s)))
		if err != nil || string(rep) != s {
			t.Errorf("ReadReply(%q) = %q, %v", s, rep, err)
		}
	}
}
