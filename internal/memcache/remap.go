package memcache

import (
	"errors"
	"time"

	"sdrad/internal/mem"
	"sdrad/internal/telemetry"
)

// The remap table is the contention-driven rebalancer's lever. Legacy
// shard selection is a pure function of the key hash: shard =
// (h>>32) & shardMask. With remap enabled the same high hash bits are
// widened into a *slot* — slotsPerShard slots per shard — and an
// indirection table maps slot → shard. The initial table is the
// identity (slot s → s & shardMask, which is exactly the legacy shard,
// because the shard mask covers the low bits of the slot mask), so
// enabling remap changes nothing until the rebalancer moves a slot.
//
// Consistency protocol (the "epoch handoff"):
//
//   - MoveSlot is serialized by rebalanceMu. It acquires BOTH shard
//     locks (index order), installs the new table and bumps the epoch
//     while holding them, then migrates the slot's items.
//   - Every lock acquisition re-validates: lockShard/lockSlot resolve
//     the shard from the current table, lock it, then re-resolve. If
//     the mapping moved in between, they unlock and retry. Holding the
//     shard lock while the table still points at that shard therefore
//     guarantees the slot cannot be mid-migration: MoveSlot flips the
//     table only while it holds the lock the reader is now inside.
//   - Batches grouped by slot *before* the move re-resolve the shard
//     under the lock (ApplySlotBatch), so a stale grouping never
//     applies to the old shard.
//
// When remap is disabled (the pointer is nil) every path reduces to the
// legacy mask arithmetic with no table load on the hot path.
const slotsPerShard = 4

// remapTable is an immutable slot→shard map; rebalancing installs a new
// copy atomically.
type remapTable struct {
	mask    uint64 // len(shardOf)-1, power of two
	shardOf []int32
}

// ErrRemapDisabled is returned by slot operations before EnableRemap.
var ErrRemapDisabled = errors.New("memcache: slot remap not enabled")

// EnableRemap activates the slot indirection layer with the identity
// mapping (bit-identical shard selection to the legacy path). It is not
// safe to call concurrently with cache operations; the server enables
// it at startup, before serving.
func (st *Storage) EnableRemap() {
	if st.remap.Load() != nil {
		return
	}
	n := len(st.shards) * slotsPerShard
	t := &remapTable{mask: uint64(n) - 1, shardOf: make([]int32, n)}
	for s := range t.shardOf {
		t.shardOf[s] = int32(uint64(s) & st.shardMask)
	}
	st.slotOps = make([]atomicInt64Pad, n)
	st.remap.Store(t)
}

// RemapEnabled reports whether the slot indirection layer is active.
func (st *Storage) RemapEnabled() bool { return st.remap.Load() != nil }

// Slots returns the slot count (0 when remap is disabled).
func (st *Storage) Slots() int {
	if t := st.remap.Load(); t != nil {
		return len(t.shardOf)
	}
	return 0
}

// Epoch returns the remap epoch: it advances once per executed slot
// move.
func (st *Storage) Epoch() uint64 { return st.epoch.Load() }

// slotOf extracts a hash's slot index under table t.
func slotOf(h uint64, t *remapTable) int { return int((h >> 32) & t.mask) }

// SlotForKey returns the slot key maps to, or -1 when remap is
// disabled.
func (st *Storage) SlotForKey(key []byte) int {
	t := st.remap.Load()
	if t == nil {
		return -1
	}
	return slotOf(hashKey(key), t)
}

// SlotShard returns the shard currently owning slot (-1 when remap is
// disabled or slot is out of range).
func (st *Storage) SlotShard(slot int) int {
	t := st.remap.Load()
	if t == nil || slot < 0 || slot >= len(t.shardOf) {
		return -1
	}
	return int(t.shardOf[slot])
}

// shardIndexFor resolves a hash to its current shard index: the remap
// table when enabled, the legacy mask arithmetic when not.
func (st *Storage) shardIndexFor(h uint64) int {
	if t := st.remap.Load(); t != nil {
		return int(t.shardOf[slotOf(h, t)])
	}
	return int((h >> 32) & st.shardMask)
}

// lockMeasured acquires the shard lock, accounting contended
// acquisitions into the shard's lock-wait counter. The uncontended
// TryLock fast path costs the same as a plain Lock.
func (sh *shard) lockMeasured() {
	if sh.mu.TryLock() {
		return
	}
	t0 := time.Now()
	sh.mu.Lock()
	w := time.Since(t0).Nanoseconds()
	sh.waitNs.Add(w)
	if sh.waitC != nil {
		sh.waitC.Add(w)
	}
}

// lockShard resolves the shard for hash h and returns it locked,
// re-validating the resolution after acquisition: if a slot move raced
// in between, it unlocks and retries. On return, holding the lock
// guarantees the table maps h here and cannot change until release
// (MoveSlot flips the table only while holding this lock).
func (st *Storage) lockShard(h uint64) *shard {
	for {
		sh := st.shards[st.shardIndexFor(h)]
		sh.lockMeasured()
		if st.shards[st.shardIndexFor(h)] == sh {
			return sh
		}
		sh.mu.Unlock()
	}
}

// lockSlot is lockShard keyed by slot index.
func (st *Storage) lockSlot(slot int) *shard {
	for {
		si := st.SlotShard(slot)
		if si < 0 {
			return nil
		}
		sh := st.shards[si]
		sh.lockMeasured()
		if st.SlotShard(slot) == si {
			return sh
		}
		sh.mu.Unlock()
	}
}

// ApplySlotBatch applies ops — all of which must map to slot — under a
// single acquisition of the owning shard's lock, resolving that shard
// under the lock so a concurrent slot move can never strand the ops on
// the old shard. Semantics otherwise match ApplyShardBatch.
func (st *Storage) ApplySlotBatch(c *mem.CPU, slot int, ops []BatchOp) error {
	sh := st.lockSlot(slot)
	if sh == nil {
		return ErrRemapDisabled
	}
	defer sh.mu.Unlock()
	st.slotOps[slot].v.Add(int64(len(ops)))
	sh.noteBatchOps(int64(len(ops)))
	v := st.view(c)
	for _, op := range ops {
		if op.Delete {
			sh.deleteLocked(v, op.Key)
			continue
		}
		if len(op.Key) > MaxKeyLen {
			return ErrKeyTooLong
		}
		if err := sh.setLocked(v, op.Key, op.Value, op.Flags); err != nil {
			return err
		}
	}
	return nil
}

// MoveSlot reassigns slot to shard dst, migrating the slot's items with
// both shard locks held and bumping the remap epoch. Returns the number
// of items migrated. Serialized against other moves by rebalanceMu.
func (st *Storage) MoveSlot(c *mem.CPU, slot, dst int) (int, error) {
	if st.remap.Load() == nil {
		return 0, ErrRemapDisabled
	}
	if dst < 0 || dst >= len(st.shards) {
		return 0, errors.New("memcache: slot move destination out of range")
	}
	st.rebalanceMu.Lock()
	defer st.rebalanceMu.Unlock()
	t := st.remap.Load()
	if slot < 0 || slot >= len(t.shardOf) {
		return 0, errors.New("memcache: slot out of range")
	}
	srcIdx := int(t.shardOf[slot])
	if srcIdx == dst {
		return 0, nil
	}
	src, dstSh := st.shards[srcIdx], st.shards[dst]
	lo, hi := src, dstSh
	if dst < srcIdx {
		lo, hi = dstSh, src
	}
	lo.mu.Lock()
	hi.mu.Lock()
	defer hi.mu.Unlock()
	defer lo.mu.Unlock()

	// Install the new table and advance the epoch while both locks are
	// held: every racing operation either resolved the old shard (and is
	// blocked on its lock until migration completes) or will resolve the
	// new table after we release.
	nt := &remapTable{mask: t.mask, shardOf: append([]int32(nil), t.shardOf...)}
	nt.shardOf[slot] = int32(dst)
	st.remap.Store(nt)
	st.epoch.Add(1)

	// Migrate: walk the source shard's buckets and re-home every item
	// whose hash lands in the moving slot. CAS ids travel with the items
	// and the destination counter is raised past them, keeping each
	// key's CAS sequence strictly monotonic across the move.
	v := st.view(c)
	moved := 0
	for b := uint64(0); b < src.nbuckets; b++ {
		ba := src.buckets + mem.Addr(b*8)
		it := v.addr(ba)
		for it != 0 {
			next := v.addr(it + itemOffNext)
			key := itemKey(v, it)
			if slotOf(hashKey(key), nt) == slot {
				value := func() []byte {
					va, vlen := itemValueAddr(v, it)
					return v.readBytes(va, vlen)
				}()
				flags := uint32(v.u64(it + itemOffFlags))
				cas := v.u64(it + itemOffCAS)
				src.unlinkItem(v, it)
				if cas > dstSh.casCounter {
					dstSh.casCounter = cas
				}
				if _, err := dstSh.storeNewLocked(v, key, value, flags, cas); err != nil {
					return moved, err
				}
				moved++
			}
			it = next
		}
	}
	src.noteOccupancy()
	dstSh.noteOccupancy()
	return moved, nil
}

// ShardContention is one shard's cumulative contention counters.
type ShardContention struct {
	WaitNs   int64
	BatchOps int64
}

// ContentionStats snapshots the per-shard contention counters (atomic
// reads; no shard locks taken).
func (st *Storage) ContentionStats() []ShardContention {
	out := make([]ShardContention, len(st.shards))
	for i, sh := range st.shards {
		out[i] = ShardContention{WaitNs: sh.waitNs.Load(), BatchOps: sh.batchOps.Load()}
	}
	return out
}

// SlotLoads snapshots the cumulative per-slot batched-op counters (nil
// when remap is disabled).
func (st *Storage) SlotLoads() []int64 {
	if st.remap.Load() == nil {
		return nil
	}
	out := make([]int64, len(st.slotOps))
	for i := range st.slotOps {
		out[i] = st.slotOps[i].v.Load()
	}
	return out
}

// setContentionCounters attaches telemetry counters mirroring shard
// si's lock-wait nanoseconds and batched ops.
func (st *Storage) setContentionCounters(si int, wait, ops *telemetry.Counter) {
	sh := st.shards[si]
	sh.mu.Lock()
	sh.waitC = wait
	sh.opsC = ops
	sh.mu.Unlock()
}

// noteBatchOps accounts n batched ops to the shard.
func (sh *shard) noteBatchOps(n int64) {
	sh.batchOps.Add(n)
	if sh.opsC != nil {
		sh.opsC.Add(n)
	}
}
