package memcache

import (
	"encoding/binary"

	"sdrad/internal/mem"
)

// Binary protocol support (the memcached "binprot"). CVE-2011-4971 lives
// here in the real server: process_bin_append_prepend /
// process_bin_update trust the header's total-body length, so a crafted
// value (interpreted through signed arithmetic) drives a huge memmove
// that tramples the heap and crashes the daemon. The analog below keeps
// the same structure: the value length is derived from the
// attacker-controlled total-body-length field and used unchecked to copy
// into an item staging buffer.
//
// Request header layout (24 bytes, big endian where multi-byte):
//
//	+0  magic (0x80 request, 0x81 response)
//	+1  opcode
//	+2  key length (u16)
//	+4  extras length (u8)
//	+5  data type
//	+6  vbucket (request) / status (response)
//	+8  total body length (u32)  <-- the CVE field
//	+12 opaque (u32)
//	+16 cas (u64)
const (
	binHeaderSize = 24

	// BinMagicRequest and BinMagicResponse are the frame magics.
	BinMagicRequest  = 0x80
	BinMagicResponse = 0x81
)

// Binary opcodes (subset).
const (
	BinOpGet  = 0x00
	BinOpSet  = 0x01
	BinOpQuit = 0x07
	BinOpNoop = 0x0a
)

// Binary response status codes.
const (
	BinStatusOK          = 0x0000
	BinStatusKeyNotFound = 0x0001
	BinStatusTooLarge    = 0x0003
	BinStatusInvalidArgs = 0x0004
	BinStatusNotStored   = 0x0005
	BinStatusUnknownCmd  = 0x0081
	BinStatusOOM         = 0x0082
)

// binSetExtras is the size of the set request's extras (flags + expiry).
const binSetExtras = 8

// driveBinary processes one binary-protocol request already present in
// the connection buffer. Mirrors memcached's dispatch_bin_command.
func driveBinary(env *dmEnv) (wlen int, closeConn bool, err error) {
	if env.rlen < binHeaderSize {
		return binError(env, BinOpNoop, BinStatusInvalidArgs), false, nil
	}
	hdr := env.c.ReadBytes(env.rbuf, binHeaderSize)
	opcode := hdr[1]
	keyLen := int(binary.BigEndian.Uint16(hdr[2:4]))
	extrasLen := int(hdr[4])
	totalBody := int(int32(binary.BigEndian.Uint32(hdr[8:12])))

	switch opcode {
	case BinOpQuit:
		return 0, true, nil
	case BinOpNoop:
		return binResponse(env, opcode, BinStatusOK, nil, nil), false, nil
	case BinOpGet:
		if keyLen == 0 || binHeaderSize+keyLen > env.rlen {
			return binError(env, opcode, BinStatusInvalidArgs), false, nil
		}
		key := env.c.ReadBytes(env.rbuf+binHeaderSize, keyLen)
		value, flags, ok := env.ops.Get(env.c, key)
		if !ok {
			return binError(env, opcode, BinStatusKeyNotFound), false, nil
		}
		var extras [4]byte
		binary.BigEndian.PutUint32(extras[:], flags)
		return binResponse(env, opcode, BinStatusOK, extras[:], value), false, nil
	case BinOpSet:
		if keyLen == 0 || extrasLen != binSetExtras {
			return binError(env, opcode, BinStatusInvalidArgs), false, nil
		}
		extras := env.c.ReadBytes(env.rbuf+binHeaderSize, extrasLen)
		flags := binary.BigEndian.Uint32(extras[0:4])
		key := env.c.ReadBytes(env.rbuf+binHeaderSize+mem.Addr(extrasLen), keyLen)

		// BUG (intentional — CVE-2011-4971): the value length is derived
		// from the header's total-body-length field with no validation
		// against the bytes actually received or the staging capacity.
		// A huge (or negative-wrapping) totalBody drives an unchecked
		// copy out of the staging buffer.
		vlen := totalBody - keyLen - extrasLen
		staging, aerr := env.allocScratch(stagingSize)
		if aerr != nil {
			return binError(env, opcode, BinStatusOOM), false, nil
		}
		valueOff := binHeaderSize + extrasLen + keyLen
		env.c.Copy(staging, env.rbuf+mem.Addr(valueOff), vlen)
		n := vlen
		if n > stagingSize {
			n = stagingSize
		}
		if n < 0 {
			return binError(env, opcode, BinStatusInvalidArgs), false, nil
		}
		value := env.c.ReadBytes(staging, n)
		if serr := env.ops.Set(env.c, key, value, flags); serr != nil {
			return binError(env, opcode, BinStatusTooLarge), false, nil
		}
		return binResponse(env, opcode, BinStatusOK, nil, nil), false, nil
	default:
		return binError(env, opcode, BinStatusUnknownCmd), false, nil
	}
}

// binResponse writes a binary response frame into the write buffer.
func binResponse(env *dmEnv, opcode byte, status uint16, extras, value []byte) int {
	if env.noreply {
		return 0
	}
	total := len(extras) + len(value)
	frame := make([]byte, binHeaderSize+total)
	frame[0] = BinMagicResponse
	frame[1] = opcode
	frame[4] = byte(len(extras))
	binary.BigEndian.PutUint16(frame[6:8], status)
	binary.BigEndian.PutUint32(frame[8:12], uint32(total))
	copy(frame[binHeaderSize:], extras)
	copy(frame[binHeaderSize+len(extras):], value)
	if len(frame) > env.wcap {
		frame = frame[:env.wcap]
	}
	env.c.Write(env.wbuf, frame)
	return len(frame)
}

func binError(env *dmEnv, opcode byte, status uint16) int {
	return binResponse(env, opcode, status, nil, nil)
}

// FormatBinarySet builds a binary set request whose header claims
// claimedBodyLen total body bytes. An honest request passes
// len(key)+8+len(value); the CVE trigger passes a huge value.
func FormatBinarySet(key string, value []byte, flags uint32, claimedBodyLen int) []byte {
	frame := make([]byte, binHeaderSize+binSetExtras+len(key)+len(value))
	frame[0] = BinMagicRequest
	frame[1] = BinOpSet
	binary.BigEndian.PutUint16(frame[2:4], uint16(len(key)))
	frame[4] = binSetExtras
	binary.BigEndian.PutUint32(frame[8:12], uint32(claimedBodyLen))
	binary.BigEndian.PutUint32(frame[binHeaderSize:], flags)
	copy(frame[binHeaderSize+binSetExtras:], key)
	copy(frame[binHeaderSize+binSetExtras+len(key):], value)
	return frame
}

// HonestBinaryBodyLen returns the correct total-body length for a set.
func HonestBinaryBodyLen(key string, value []byte) int {
	return binSetExtras + len(key) + len(value)
}

// FormatBinaryGet builds a binary get request.
func FormatBinaryGet(key string) []byte {
	frame := make([]byte, binHeaderSize+len(key))
	frame[0] = BinMagicRequest
	frame[1] = BinOpGet
	binary.BigEndian.PutUint16(frame[2:4], uint16(len(key)))
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(key)))
	copy(frame[binHeaderSize:], key)
	return frame
}

// FormatBinaryQuit builds a binary quit request.
func FormatBinaryQuit() []byte {
	frame := make([]byte, binHeaderSize)
	frame[0] = BinMagicRequest
	frame[1] = BinOpQuit
	return frame
}

// ParseBinaryResponse decodes a binary response frame.
func ParseBinaryResponse(frame []byte) (opcode byte, status uint16, extras, value []byte, ok bool) {
	if len(frame) < binHeaderSize || frame[0] != BinMagicResponse {
		return 0, 0, nil, nil, false
	}
	extrasLen := int(frame[4])
	total := int(binary.BigEndian.Uint32(frame[8:12]))
	if binHeaderSize+total > len(frame) || extrasLen > total {
		return 0, 0, nil, nil, false
	}
	body := frame[binHeaderSize : binHeaderSize+total]
	return frame[1], binary.BigEndian.Uint16(frame[6:8]), body[:extrasLen], body[extrasLen:], true
}
