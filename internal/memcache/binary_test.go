package memcache

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestBinarySetGetRoundTrip(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		key, val := "bin-key", []byte("bin-value")
		req := FormatBinarySet(key, val, 9, HonestBinaryBodyLen(key, val))
		resp := mustDo(t, c, req)
		op, status, _, _, ok := ParseBinaryResponse(resp)
		if !ok || op != BinOpSet || status != BinStatusOK {
			t.Fatalf("set resp: op=%#x status=%#x ok=%v", op, status, ok)
		}

		resp = mustDo(t, c, FormatBinaryGet(key))
		op, status, extras, value, ok := ParseBinaryResponse(resp)
		if !ok || op != BinOpGet || status != BinStatusOK {
			t.Fatalf("get resp: op=%#x status=%#x", op, status)
		}
		if !bytes.Equal(value, val) {
			t.Fatalf("value = %q", value)
		}
		if len(extras) != 4 || extras[3] != 9 {
			t.Fatalf("flags extras = %v", extras)
		}
		// Binary and text protocols see the same database.
		tv, flags, ok := ParseGetValue(mustDo(t, c, FormatGet(key)))
		if !ok || !bytes.Equal(tv, val) || flags != 9 {
			t.Fatalf("text view = %q %d %v", tv, flags, ok)
		}
	})
}

func TestBinaryGetMissAndErrors(t *testing.T) {
	s := startServer(t, VariantSDRaD, 1)
	c := s.NewConn()
	_, status, _, _, ok := ParseBinaryResponse(mustDo(t, c, FormatBinaryGet("ghost")))
	if !ok || status != BinStatusKeyNotFound {
		t.Fatalf("miss status = %#x", status)
	}
	// Unknown opcode.
	bad := FormatBinaryGet("x")
	bad[1] = 0x55
	_, status, _, _, ok = ParseBinaryResponse(mustDo(t, c, bad))
	if !ok || status != BinStatusUnknownCmd {
		t.Fatalf("unknown opcode status = %#x", status)
	}
	// Truncated header.
	resp := mustDo(t, c, []byte{BinMagicRequest, BinOpGet})
	if _, status, _, _, ok := ParseBinaryResponse(resp); !ok || status != BinStatusInvalidArgs {
		t.Fatalf("short frame status = %#x ok=%v", status, ok)
	}
	// Zero-length key.
	zk := FormatBinaryGet("")
	if _, status, _, _, _ := ParseBinaryResponse(mustDo(t, c, zk)); status != BinStatusInvalidArgs {
		t.Fatalf("empty key status = %#x", status)
	}
}

func TestBinaryQuit(t *testing.T) {
	s := startServer(t, VariantVanilla, 1)
	c := s.NewConn()
	_, closed, err := c.Do(FormatBinaryQuit())
	if err != nil || !closed {
		t.Fatalf("quit: closed=%v err=%v", closed, err)
	}
}

func TestCVE2011_4971_BinaryBaselineCrashes(t *testing.T) {
	// The faithful CVE: a binary set whose header claims a huge total
	// body length. The baseline trusts it and dies.
	s := startServer(t, VariantVanilla, 2)
	evil := s.NewConn()
	_, _, err := evil.Do(FormatBinarySet("k", []byte("tiny"), 0, 64<<20))
	if err == nil {
		t.Fatal("malicious binary set succeeded")
	}
	if crashed, cause := s.Crashed(); !crashed {
		t.Fatal("baseline survived")
	} else {
		t.Logf("crash: %v", cause)
	}
}

func TestCVE2011_4971_BinarySDRaDRewinds(t *testing.T) {
	s := startServer(t, VariantSDRaD, 2)
	good := s.NewConn()
	mustDo(t, good, FormatSet("persist", []byte("alive"), 0))

	evil := s.NewConn()
	_, closed, err := evil.Do(FormatBinarySet("k", []byte("tiny"), 0, 64<<20))
	if err != nil {
		t.Fatalf("transport err: %v", err)
	}
	if !closed {
		t.Fatal("attacker connection not closed")
	}
	if s.Rewinds() != 1 {
		t.Errorf("rewinds = %d", s.Rewinds())
	}
	val, _, ok := ParseGetValue(mustDo(t, good, FormatGet("persist")))
	if !ok || string(val) != "alive" {
		t.Errorf("data after binary attack = %q", val)
	}
}

func TestBinaryNegativeBodyLenRejected(t *testing.T) {
	// A total-body length smaller than key+extras makes vlen negative —
	// the signed-arithmetic half of the CVE. Our copy path reads zero
	// bytes for negative lengths, so this must surface as a protocol
	// error, not a crash.
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		req := FormatBinarySet("longerkey", []byte("v"), 0, 3) // < key+extras
		resp, closed, err := c.Do(req)
		if err != nil || closed {
			t.Fatalf("negative-vlen request killed the connection: %v", err)
		}
		if _, status, _, _, ok := ParseBinaryResponse(resp); !ok || status != BinStatusInvalidArgs {
			t.Fatalf("status = %#x", status)
		}
		if crashed, _ := s.Crashed(); crashed {
			t.Fatal("server crashed")
		}
	})
}

func TestBinaryOverTCP(t *testing.T) {
	s := startServer(t, VariantSDRaD, 1)
	ln := newLocalListener(t)
	go func() { _ = s.ServeListener(ln) }()
	nc := dialRetry(t, ln.Addr().String())
	defer func() { _ = nc.Close() }()

	key, val := "tcp-bin", []byte("v")
	if _, err := nc.Write(FormatBinarySet(key, val, 0, HonestBinaryBodyLen(key, val))); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := nc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, status, _, _, ok := ParseBinaryResponse(buf[:n]); !ok || status != BinStatusOK {
		t.Fatalf("tcp binary set: %x", buf[:n])
	}
}

func TestParseBinaryResponseRejectsGarbage(t *testing.T) {
	for _, frame := range [][]byte{
		nil,
		{0x81},
		bytes.Repeat([]byte{0}, binHeaderSize), // wrong magic
		append([]byte{0x81, 0, 0, 0, 9}, make([]byte, 19)...), // extras > total
	} {
		if _, _, _, _, ok := ParseBinaryResponse(frame); ok {
			t.Errorf("garbage accepted: %v", frame)
		}
	}
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func dialRetry(t *testing.T, addr string) net.Conn {
	t.Helper()
	var nc net.Conn
	var err error
	for i := 0; i < 20; i++ {
		nc, err = net.Dial("tcp", addr)
		if err == nil {
			return nc
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(err)
	return nil
}
