package memcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sched"
	"sdrad/internal/telemetry"
)

// startSchedServer builds a hardened server with the self-tuning
// scheduler enabled and a telemetry recorder attached.
func startSchedServer(t testing.TB, workers int) (*Server, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.New(telemetry.Options{})
	s, err := NewServer(Config{
		Variant:    VariantSDRaD,
		Workers:    workers,
		HashPower:  10,
		CacheBytes: 4 << 20,
		Telemetry:  rec,
		Sched:      &sched.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, rec
}

// keysForShard mines n distinct keys that all hash to shard si.
func keysForShard(t testing.TB, s *Server, si, n int, prefix string) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < n; i++ {
		if i > 100000 {
			t.Fatalf("could not find %d keys for shard %d", n, si)
		}
		k := fmt.Sprintf("%s-%05d", prefix, i)
		if s.Storage().ShardFor([]byte(k)) == si {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestSchedChunkedPipelineInOrder(t *testing.T) {
	// Pipelines longer than MaxBatch are chunked client-side; with the
	// adaptive scheduler enabled (affinity routing, adaptive bound, batch
	// splitting) ordering and read-your-writes must still be seamless
	// across every chunk boundary.
	s, _ := startSchedServer(t, 2)
	c := s.NewConn()
	n := 3*s.MaxBatch() + 5
	var reqs [][]byte
	for i := 0; i < n; i++ {
		reqs = append(reqs, FormatSet(fmt.Sprintf("sspan-%03d", i), []byte(fmt.Sprintf("val-%03d", i)), 0))
	}
	for i := 0; i < n; i++ {
		reqs = append(reqs, FormatGet(fmt.Sprintf("sspan-%03d", i)))
	}
	res := c.DoPipeline(reqs)
	if len(res) != 2*n {
		t.Fatalf("results = %d, want %d", len(res), 2*n)
	}
	for i := 0; i < n; i++ {
		if r := res[i]; r.Err != nil || string(r.Resp) != "STORED\r\n" {
			t.Fatalf("set %d: %q err=%v", i, r.Resp, r.Err)
		}
		val, _, ok := ParseGetValue(res[n+i].Resp)
		if !ok || string(val) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("get %d = %q", i, res[n+i].Resp)
		}
	}
}

func TestSchedOffIsBitIdenticalToSchedOn(t *testing.T) {
	// The same request sequence must produce byte-identical responses with
	// the scheduler off (the legacy fixed-bound drain) and on — and the
	// sched-off server must not pay for any scheduler machinery.
	mkReqs := func() [][]byte {
		return [][]byte{
			FormatSet("a", []byte("alpha"), 3),
			FormatGet("a"),
			FormatSet("a", []byte("beta"), 4),
			FormatGet("a"),
			FormatDelete("a"),
			FormatGet("a"),
			FormatDelete("a"),
			[]byte("bogus nonsense\r\n"),
			FormatSet("b", []byte("gamma"), 0),
			FormatGet("b"),
		}
	}
	off, _ := startTelServer(t, VariantSDRaD, 1)
	if off.Storage().RemapEnabled() {
		t.Error("sched-off server has the slot remap layer enabled")
	}
	if off.SchedSnapshots() != nil {
		t.Error("sched-off server reports controller snapshots")
	}
	var legacy [][]byte
	cOff := off.NewConn()
	for _, req := range mkReqs() {
		resp, closed, err := cOff.Do(req)
		if err != nil || closed {
			t.Fatalf("sched-off Do(%q): closed=%v err=%v", req, closed, err)
		}
		legacy = append(legacy, resp)
	}

	on, _ := startSchedServer(t, 1)
	res := on.NewConn().DoPipeline(mkReqs())
	for i, r := range res {
		if r.Err != nil || r.Closed {
			t.Fatalf("sched-on res[%d]: closed=%v err=%v", i, r.Closed, r.Err)
		}
		if !bytes.Equal(r.Resp, legacy[i]) {
			t.Errorf("res[%d]: sched-on %q, sched-off %q", i, r.Resp, legacy[i])
		}
	}
}

func TestSchedFaultSemanticsMatchLegacy(t *testing.T) {
	// A mid-batch attack under the scheduler keeps the paper's fault
	// semantics: one rewind, exactly one forensics report, the whole
	// batch discarded — and the controller's multiplicative decrease
	// kicks in.
	s, rec := startSchedServer(t, 1)
	good := s.NewConn()
	mustDo(t, good, FormatSet("persist", []byte("survives"), 0))

	evil := s.NewConn()
	res := evil.DoPipeline([][]byte{
		FormatSet("early", []byte("never-lands"), 0),
		FormatBSet("atk", 16<<20, []byte("payload")),
		FormatSet("late", []byte("never-runs"), 0),
	})
	for i, r := range res {
		if !r.Closed {
			t.Errorf("batch item %d not reported closed after rewind", i)
		}
	}
	if got := s.Rewinds(); got != 1 {
		t.Errorf("rewinds = %d, want 1 for the whole batch", got)
	}
	if reports := rec.Forensics().Reports(); len(reports) != 1 {
		t.Fatalf("forensics reports = %d, want exactly 1", len(reports))
	}
	c := s.NewConn()
	if _, _, ok := ParseGetValue(mustDo(t, c, FormatGet("early"))); ok {
		t.Error("set earlier in the faulting batch leaked into the database")
	}
	val, _, ok := ParseGetValue(mustDo(t, good, FormatGet("persist")))
	if !ok || string(val) != "survives" {
		t.Errorf("bystander data after batch rewind = %q %v", val, ok)
	}
	snap := s.SchedSnapshots()[0]
	if snap.WindowRewinds != 1 {
		t.Errorf("controller window rewinds = %d, want 1", snap.WindowRewinds)
	}
	if snap.Bound > snap.MaxBatch/2 {
		t.Errorf("controller bound = %d after rewind, want <= %d", snap.Bound, snap.MaxBatch/2)
	}
}

// parkWorker blocks worker 0 of s inside a control event until the
// returned release function is called, so the test can stage a batch in
// the worker's channel.
func parkWorker(t *testing.T, s *Server) (release func()) {
	t.Helper()
	parked := make(chan struct{})
	releaseCh := make(chan struct{})
	c := s.NewConn()
	go func() {
		_ = c.Inspect(func(*proc.Thread) error {
			close(parked)
			<-releaseCh
			return nil
		})
	}()
	<-parked
	return func() { close(releaseCh) }
}

// waitQueued polls until worker 0's channel holds n queued events.
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.workers[0].ch) < n {
		if time.Now().After(deadline) {
			t.Fatalf("worker queue stuck at %d events, want %d", len(s.workers[0].ch), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestSchedSplitsMixedBatchAtEventBoundary(t *testing.T) {
	// Two pipelined events with disjoint shard footprints drain into one
	// round; the scheduler splits the batch at the event boundary into two
	// per-shard guard scopes. The second segment faults: the first event's
	// writes must already have landed (its guard scope exited normally),
	// the faulting event is discarded whole, and exactly one rewind and
	// one forensics report are produced for it.
	s, rec := startSchedServer(t, 1)
	aKeys := keysForShard(t, s, 0, 4, "seg-a")
	bKeys := keysForShard(t, s, 1, 3, "seg-b")

	release := parkWorker(t, s)
	connA, connB := s.NewConn(), s.NewConn()
	var aRes, bRes []PipelineResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var reqs [][]byte
		for _, k := range aKeys {
			reqs = append(reqs, FormatSet(k, []byte("landed"), 0))
		}
		aRes = connA.DoPipeline(reqs)
	}()
	waitQueued(t, s, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bRes = connB.DoPipeline([][]byte{
			FormatSet(bKeys[0], []byte("never-lands"), 0),
			FormatSet(bKeys[1], []byte("never-lands"), 0),
			FormatBSet("atk", 16<<20, []byte("payload")),
			FormatSet(bKeys[2], []byte("never-runs"), 0),
		})
	}()
	waitQueued(t, s, 2)
	release()
	wg.Wait()

	for i, r := range aRes {
		if r.Err != nil || r.Closed || string(r.Resp) != "STORED\r\n" {
			t.Fatalf("segment A item %d: %q closed=%v err=%v", i, r.Resp, r.Closed, r.Err)
		}
	}
	for i, r := range bRes {
		if !r.Closed {
			t.Errorf("faulting segment item %d not closed", i)
		}
	}
	if got := s.telSplits.Value(); got < 1 {
		t.Errorf("batch splits = %d, want >= 1", got)
	}
	if got := s.Rewinds(); got != 1 {
		t.Errorf("rewinds = %d, want 1 (only the faulting segment)", got)
	}
	if reports := rec.Forensics().Reports(); len(reports) != 1 {
		t.Fatalf("forensics reports = %d, want exactly 1", len(reports))
	}
	// Segment A committed before segment B faulted; segment B left nothing.
	c := s.NewConn()
	for _, k := range aKeys {
		val, _, ok := ParseGetValue(mustDo(t, c, FormatGet(k)))
		if !ok || string(val) != "landed" {
			t.Errorf("split-off segment write %q = %q %v, want committed", k, val, ok)
		}
	}
	for _, k := range bKeys {
		if _, _, ok := ParseGetValue(mustDo(t, c, FormatGet(k))); ok {
			t.Errorf("faulting segment write %q leaked into the database", k)
		}
	}
}

func TestSchedSplitNeverSeparatesOneEventRun(t *testing.T) {
	// One pipelined event whose keys straddle shards is NEVER split: its
	// items share the event's classification, so a fault late in the event
	// discards every earlier write of the same event (they were all in one
	// guard scope), and the split counter stays at zero.
	s, rec := startSchedServer(t, 1)
	k0 := keysForShard(t, s, 0, 4, "run-a")
	k1 := keysForShard(t, s, 1, 3, "run-b")

	evil := s.NewConn()
	res := evil.DoPipeline([][]byte{
		FormatSet(k0[0], []byte("x"), 0),
		FormatSet(k0[1], []byte("x"), 0),
		FormatSet(k1[0], []byte("x"), 0),
		FormatSet(k1[1], []byte("x"), 0),
		FormatSet(k0[2], []byte("x"), 0),
		FormatSet(k1[2], []byte("x"), 0),
		FormatBSet("atk", 16<<20, []byte("payload")),
		FormatSet(k0[3], []byte("x"), 0),
	})
	for i, r := range res {
		if !r.Closed {
			t.Errorf("item %d of the faulting event not closed", i)
		}
	}
	if got := s.telSplits.Value(); got != 0 {
		t.Errorf("batch splits = %d, want 0 (one event must stay contiguous)", got)
	}
	if got := s.Rewinds(); got != 1 {
		t.Errorf("rewinds = %d, want 1", got)
	}
	if reports := rec.Forensics().Reports(); len(reports) != 1 {
		t.Fatalf("forensics reports = %d, want exactly 1", len(reports))
	}
	c := s.NewConn()
	for _, k := range append(append([]string{}, k0...), k1...) {
		if _, _, ok := ParseGetValue(mustDo(t, c, FormatGet(k))); ok {
			t.Errorf("write %q from the faulting event leaked (event was split)", k)
		}
	}
}

func TestRemapIdentityPreservesShardSelection(t *testing.T) {
	// Enabling the slot indirection layer with its initial identity table
	// must not change any key's shard: slot s & shardMask IS the legacy
	// shard.
	st, _ := newShardedStorage(t, 10, 4, 4<<20)
	legacy := make(map[string]int)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("ident-%04d", i)
		legacy[k] = st.ShardFor([]byte(k))
	}
	st.EnableRemap()
	if !st.RemapEnabled() {
		t.Fatal("remap not enabled")
	}
	if got, want := st.Slots(), 4*slotsPerShard; got != want {
		t.Fatalf("slots = %d, want %d", got, want)
	}
	for k, want := range legacy {
		if got := st.ShardFor([]byte(k)); got != want {
			t.Errorf("key %q: shard %d with identity remap, %d legacy", k, got, want)
		}
		slot := st.SlotForKey([]byte(k))
		if got := st.SlotShard(slot); got != want {
			t.Errorf("key %q: slot %d owned by shard %d, want %d", k, slot, got, want)
		}
	}
}

func TestMoveSlotMigratesItemsAndPreservesCAS(t *testing.T) {
	st, cpu := newShardedStorage(t, 10, 4, 4<<20)
	st.EnableRemap()
	const n = 400
	cas := make(map[string]uint64)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("mv-%04d", i)
		if err := st.Set(cpu, []byte(k), []byte("v-"+k), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("mv-%04d", i)
		_, _, id, ok := st.GetWithCAS(cpu, []byte(k))
		if !ok {
			t.Fatalf("key %q missing before move", k)
		}
		cas[k] = id
	}
	// Move the slot holding mv-0000 to another shard.
	probe := []byte("mv-0000")
	slot := st.SlotForKey(probe)
	src := st.SlotShard(slot)
	dst := (src + 1) % st.Shards()
	inSlot := 0
	for k := range cas {
		if st.SlotForKey([]byte(k)) == slot {
			inSlot++
		}
	}
	epoch0 := st.Epoch()
	moved, err := st.MoveSlot(cpu, slot, dst)
	if err != nil {
		t.Fatal(err)
	}
	if moved != inSlot {
		t.Errorf("moved %d items, slot held %d", moved, inSlot)
	}
	if st.Epoch() != epoch0+1 {
		t.Errorf("epoch = %d, want %d", st.Epoch(), epoch0+1)
	}
	if got := st.SlotShard(slot); got != dst {
		t.Errorf("slot %d owned by shard %d after move, want %d", slot, got, dst)
	}
	if got := st.ShardFor(probe); got != dst {
		t.Errorf("probe key resolves to shard %d after move, want %d", got, dst)
	}
	// Every key readable with its value and CAS id intact; totals conserved.
	for k, want := range cas {
		v, _, id, ok := st.GetWithCAS(cpu, []byte(k))
		if !ok || string(v) != "v-"+k {
			t.Fatalf("key %q after move = %q %v", k, v, ok)
		}
		if id != want {
			t.Errorf("key %q CAS id = %d after move, want %d", k, id, want)
		}
	}
	if got := st.Stats().Items; got != n {
		t.Errorf("items = %d after move, want %d", got, n)
	}
	if err := st.AuditShards(cpu); err != nil {
		t.Fatalf("shard audit after move: %v", err)
	}
	// CAS stays usable and strictly monotonic on the destination shard: a
	// swap with the migrated id succeeds and issues a strictly larger id.
	if out, err := st.CAS(cpu, probe, []byte("swapped"), 0, cas[string(probe)]); err != nil || out != Stored {
		t.Fatalf("cas with migrated id = %v %v", out, err)
	}
	if _, _, id, _ := st.GetWithCAS(cpu, probe); id <= cas[string(probe)] {
		t.Errorf("post-move CAS id %d not monotonic past migrated id %d", id, cas[string(probe)])
	}
	// Moving a slot onto its current owner is a no-op.
	if moved, err := st.MoveSlot(cpu, slot, dst); err != nil || moved != 0 {
		t.Errorf("same-shard move = %d, %v; want no-op", moved, err)
	}
	if st.Epoch() != epoch0+1 {
		t.Errorf("no-op move advanced the epoch to %d", st.Epoch())
	}
}

func TestApplySlotBatchAndDisabledErrors(t *testing.T) {
	st, cpu := newShardedStorage(t, 10, 4, 4<<20)
	if err := st.ApplySlotBatch(cpu, 0, nil); err != ErrRemapDisabled {
		t.Fatalf("apply before enable = %v, want ErrRemapDisabled", err)
	}
	if _, err := st.MoveSlot(cpu, 0, 1); err != ErrRemapDisabled {
		t.Fatalf("move before enable = %v, want ErrRemapDisabled", err)
	}
	st.EnableRemap()
	// Two keys sharing one slot: set a, set b, overwrite a, delete b.
	var a, b []byte
	for i := 0; b == nil; i++ {
		k := []byte(fmt.Sprintf("slotb-%05d", i))
		switch {
		case a == nil:
			a = k
		case st.SlotForKey(k) == st.SlotForKey(a):
			b = k
		}
	}
	slot := st.SlotForKey(a)
	ops := []BatchOp{
		{Key: a, Value: []byte("1"), Flags: 7},
		{Key: b, Value: []byte("2")},
		{Key: a, Value: []byte("3"), Flags: 9},
		{Delete: true, Key: b},
	}
	if err := st.ApplySlotBatch(cpu, slot, ops); err != nil {
		t.Fatal(err)
	}
	v, flags, ok := st.Get(cpu, a)
	if !ok || string(v) != "3" || flags != 9 {
		t.Fatalf("a = %q %d %v, want later write to win", v, flags, ok)
	}
	if _, _, ok := st.Get(cpu, b); ok {
		t.Fatal("deleted key survived slot batch")
	}
	if loads := st.SlotLoads(); loads[slot] != int64(len(ops)) {
		t.Errorf("slot load = %d, want %d", loads[slot], len(ops))
	}
	if err := st.AuditShards(cpu); err != nil {
		t.Fatalf("shard audit after slot batch: %v", err)
	}
}

func TestMoveSlotConcurrentWithTraffic(t *testing.T) {
	// Slot moves ping-pong between two shards while writer goroutines
	// hammer the storage; the epoch handoff must keep every key readable
	// and the shard invariants intact (meaningful under -race).
	as := mem.NewAddressSpace()
	setupCPU := as.NewCPU()
	base, err := as.MapAnon(8<<20, mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	arena := newBumpArena(base, 8<<20)
	st, err := NewStorage(setupCPU, 10, 4, arena.alloc)
	if err != nil {
		t.Fatal(err)
	}
	st.EnableRemap()
	slot := st.SlotForKey([]byte("w0-00000"))
	src := st.SlotShard(slot)

	const writers = 2
	const perWriter = 150
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int, cpu *mem.CPU) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := 0; i < perWriter; i++ {
					k := []byte(fmt.Sprintf("w%d-%05d", wi, i))
					if err := st.Set(cpu, k, []byte(fmt.Sprintf("r%d", round)), 0); err != nil {
						t.Error(err)
						return
					}
					st.Get(cpu, k)
				}
			}
		}(wi, as.NewCPU())
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	moverCPU := as.NewCPU()
	moves := 0
	for done := false; !done || moves < 8; moves++ {
		select {
		case <-writersDone:
			done = true
		default:
		}
		dst := (src + 1 + moves%2) % st.Shards()
		if _, err := st.MoveSlot(moverCPU, slot, dst); err != nil {
			t.Fatal(err)
		}
	}
	<-writersDone

	for wi := 0; wi < writers; wi++ {
		for i := 0; i < perWriter; i++ {
			k := []byte(fmt.Sprintf("w%d-%05d", wi, i))
			if _, _, ok := st.Get(setupCPU, k); !ok {
				t.Errorf("key %q lost across concurrent slot moves", k)
			}
		}
	}
	if err := st.AuditShards(setupCPU); err != nil {
		t.Fatalf("shard audit after concurrent moves: %v", err)
	}
}
