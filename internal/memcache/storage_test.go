package memcache

import (
	"errors"
	"fmt"
	"testing"

	"sdrad/internal/mem"
)

// newStorage builds a single-shard Storage over a fixed arena (the LRU
// ordering tests need one global LRU).
func newStorage(t testing.TB, hashPower int, arenaBytes uint64) (*Storage, *mem.CPU) {
	return newShardedStorage(t, hashPower, 1, arenaBytes)
}

// newShardedStorage builds a Storage with an explicit shard count.
func newShardedStorage(t testing.TB, hashPower, shards int, arenaBytes uint64) (*Storage, *mem.CPU) {
	t.Helper()
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, err := as.MapAnon(int(arenaBytes), mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	arena := newBumpArena(base, arenaBytes)
	st, err := NewStorage(cpu, hashPower, shards, arena.alloc)
	if err != nil {
		t.Fatal(err)
	}
	return st, cpu
}

func TestStorageBasicOps(t *testing.T) {
	st, cpu := newStorage(t, 8, 1<<20)
	if err := st.Set(cpu, []byte("k"), []byte("v"), 3); err != nil {
		t.Fatal(err)
	}
	v, flags, ok := st.Get(cpu, []byte("k"))
	if !ok || string(v) != "v" || flags != 3 {
		t.Fatalf("get = %q %d %v", v, flags, ok)
	}
	if _, _, ok := st.Get(cpu, []byte("miss")); ok {
		t.Fatal("phantom hit")
	}
	if !st.Delete(cpu, []byte("k")) {
		t.Fatal("delete failed")
	}
	if st.Delete(cpu, []byte("k")) {
		t.Fatal("double delete succeeded")
	}
	stats := st.Stats()
	if stats.Items != 0 || stats.Sets != 1 || stats.Gets != 2 || stats.Hits != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestStorageHashCollisions(t *testing.T) {
	// Tiny table: every bucket collides heavily; chains must stay intact
	// through interleaved inserts and deletes.
	st, cpu := newStorage(t, 4, 4<<20)
	const n = 500
	for i := 0; i < n; i++ {
		if err := st.Set(cpu, []byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third key.
	for i := 0; i < n; i += 3 {
		if !st.Delete(cpu, []byte(fmt.Sprintf("key-%03d", i))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		v, _, ok := st.Get(cpu, []byte(fmt.Sprintf("key-%03d", i)))
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("key %d = %q %v", i, v, ok)
		}
	}
}

func TestStorageLRUEvictionOrder(t *testing.T) {
	// One slab class, tight memory: eviction must pick the least
	// recently used item of the class.
	st, cpu := newStorage(t, 8, 300*1024)
	val := make([]byte, 900) // all items land in one class
	var stored []string
	for i := 0; ; i++ {
		key := fmt.Sprintf("k-%04d", i)
		err := st.Set(cpu, []byte(key), val, 0)
		if err != nil {
			t.Fatal(err)
		}
		stored = append(stored, key)
		if st.Stats().Evictions > 0 {
			break
		}
		if i > 1000 {
			t.Fatal("no eviction under memory pressure")
		}
	}
	// The first-stored (least recently used) key is the evicted one.
	if _, _, ok := st.Get(cpu, []byte(stored[0])); ok {
		t.Error("LRU victim survived")
	}
	if _, _, ok := st.Get(cpu, []byte(stored[len(stored)-1])); !ok {
		t.Error("most recent item evicted")
	}
}

func TestStorageLRUBumpOnGet(t *testing.T) {
	st, cpu := newStorage(t, 8, 300*1024)
	val := make([]byte, 900)
	// Fill to just below eviction.
	var keys []string
	for i := 0; ; i++ {
		key := fmt.Sprintf("k-%04d", i)
		if err := st.Set(cpu, []byte(key), val, 0); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		if st.Stats().Evictions > 0 {
			t.Fatal("evicted during fill phase")
		}
		st2 := st.Stats()
		if st2.Bytes > 180*1024 {
			break
		}
	}
	// Touch the oldest key, then insert until eviction: the bumped key
	// must survive, the second-oldest goes.
	if _, _, ok := st.Get(cpu, []byte(keys[0])); !ok {
		t.Fatal("oldest key missing before bump test")
	}
	for i := 0; st.Stats().Evictions == 0; i++ {
		if err := st.Set(cpu, []byte(fmt.Sprintf("new-%04d", i)), val, 0); err != nil {
			t.Fatal(err)
		}
		if i > 1000 {
			t.Fatal("no eviction")
		}
	}
	if _, _, ok := st.Get(cpu, []byte(keys[0])); !ok {
		t.Error("LRU-bumped key was evicted")
	}
	if _, _, ok := st.Get(cpu, []byte(keys[1])); ok {
		t.Error("true LRU victim survived")
	}
}

func TestStorageKeyLimits(t *testing.T) {
	st, cpu := newStorage(t, 8, 1<<20)
	long := make([]byte, MaxKeyLen+1)
	for i := range long {
		long[i] = 'k'
	}
	if err := st.Set(cpu, long, []byte("v"), 0); !errors.Is(err, ErrKeyTooLong) {
		t.Errorf("long key err = %v", err)
	}
	if err := st.Set(cpu, long[:MaxKeyLen], []byte("v"), 0); err != nil {
		t.Errorf("max key err = %v", err)
	}
	// Value too large for any class.
	huge := make([]byte, slabPageSize+1)
	if err := st.Set(cpu, []byte("h"), huge, 0); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("huge value err = %v", err)
	}
}

func TestStorageOverwriteReleasesOldChunk(t *testing.T) {
	st, cpu := newStorage(t, 8, 1<<20)
	// Overwrite the same key many times with same-class values: chunk
	// count must not grow (old chunks recycled via the free list).
	for i := 0; i < 500; i++ {
		if err := st.Set(cpu, []byte("k"), []byte(fmt.Sprintf("value-%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Items != 1 {
		t.Errorf("items = %d", stats.Items)
	}
	if stats.Evictions != 0 {
		t.Errorf("evictions = %d during overwrite churn", stats.Evictions)
	}
}

func TestStorageConditionalOps(t *testing.T) {
	st, cpu := newStorage(t, 8, 1<<20)
	if out, err := st.Add(cpu, []byte("a"), []byte("1"), 0); err != nil || out != Stored {
		t.Fatalf("add = %v %v", out, err)
	}
	if out, _ := st.Add(cpu, []byte("a"), []byte("2"), 0); out != NotStored {
		t.Fatalf("re-add = %v", out)
	}
	if out, _ := st.Replace(cpu, []byte("b"), []byte("x"), 0); out != NotStored {
		t.Fatalf("replace missing = %v", out)
	}
	if out, _ := st.Concat(cpu, []byte("a"), []byte("+"), false); out != Stored {
		t.Fatalf("append = %v", out)
	}
	v, _, _ := st.Get(cpu, []byte("a"))
	if string(v) != "1+" {
		t.Fatalf("after append = %q", v)
	}
	_, _, casid, ok := st.GetWithCAS(cpu, []byte("a"))
	if !ok {
		t.Fatal("gets miss")
	}
	if out, _ := st.CAS(cpu, []byte("a"), []byte("new"), 0, casid); out != Stored {
		t.Fatalf("cas = %v", out)
	}
	if out, _ := st.CAS(cpu, []byte("a"), []byte("newer"), 0, casid); out != CASMismatch {
		t.Fatalf("stale cas = %v", out)
	}
	if out, _ := st.CAS(cpu, []byte("zz"), []byte("x"), 0, 1); out != NotFoundOutcome {
		t.Fatalf("cas missing = %v", out)
	}
	if !st.Touch(cpu, []byte("a")) || st.Touch(cpu, []byte("zz")) {
		t.Error("touch semantics broken")
	}
	st.FlushAll(cpu)
	if st.Stats().Items != 0 {
		t.Error("flush left items")
	}
}

func TestNewStorageValidation(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, _ := as.MapAnon(1<<20, mem.ProtRW, 0)
	arena := newBumpArena(base, 1<<20)
	if _, err := NewStorage(cpu, 2, 1, arena.alloc); err == nil {
		t.Error("tiny hash power accepted")
	}
	if _, err := NewStorage(cpu, 30, 1, arena.alloc); err == nil {
		t.Error("huge hash power accepted")
	}
	// Shard count must be a power of two within range.
	if _, err := NewStorage(cpu, 10, 3, arena.alloc); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	if _, err := NewStorage(cpu, 10, 0, arena.alloc); err == nil {
		t.Error("zero shard count accepted")
	}
	if _, err := NewStorage(cpu, 10, MaxShards*2, arena.alloc); err == nil {
		t.Error("oversized shard count accepted")
	}
	// Arena too small for the bucket array.
	tiny := newBumpArena(base, 8)
	if _, err := NewStorage(cpu, 10, 1, tiny.alloc); err == nil {
		t.Error("arena exhaustion not reported")
	}
}

func TestShardedStorageDistribution(t *testing.T) {
	// Keys must spread across shards, every op must land on the shard
	// ShardFor names, and the summed stats must equal the global view.
	st, cpu := newShardedStorage(t, 12, 8, 8<<20)
	if st.Shards() != 8 {
		t.Fatalf("shards = %d", st.Shards())
	}
	const n = 2000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("dist-key-%05d", i))
		if err := st.Set(cpu, key, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	per := st.ShardStats()
	occupied, items, sets := 0, 0, 0
	for _, s := range per {
		if s.Items > 0 {
			occupied++
		}
		items += s.Items
		sets += s.Sets
	}
	if occupied < 2 {
		t.Errorf("only %d of 8 shards occupied: hash is not partitioning", occupied)
	}
	tot := st.Stats()
	if items != tot.Items || items != n {
		t.Errorf("shard items sum %d, total %d, want %d", items, tot.Items, n)
	}
	if sets != tot.Sets || sets != n {
		t.Errorf("shard sets sum %d, total %d, want %d", sets, tot.Sets, n)
	}
	// Every key readable back, and its shard's stats move on a get.
	for i := 0; i < n; i += 97 {
		key := []byte(fmt.Sprintf("dist-key-%05d", i))
		si := st.ShardFor(key)
		before := st.ShardStats()[si]
		if _, _, ok := st.Get(cpu, key); !ok {
			t.Fatalf("key %d missing", i)
		}
		after := st.ShardStats()[si]
		if after.Gets != before.Gets+1 || after.Hits != before.Hits+1 {
			t.Fatalf("get of key %d did not land on shard %d", i, si)
		}
	}
}

func TestShardedCASIndependence(t *testing.T) {
	// CAS counters are per shard: a CAS id issued on one shard stays
	// valid regardless of store traffic on the others.
	st, cpu := newShardedStorage(t, 10, 4, 4<<20)
	key := []byte("cas-key")
	if err := st.Set(cpu, key, []byte("v0"), 0); err != nil {
		t.Fatal(err)
	}
	_, _, casid, ok := st.GetWithCAS(cpu, key)
	if !ok {
		t.Fatal("gets miss")
	}
	si := st.ShardFor(key)
	// Hammer the other shards with sets.
	stored := 0
	for i := 0; stored < 200; i++ {
		k := []byte(fmt.Sprintf("other-%05d", i))
		if st.ShardFor(k) == si {
			continue
		}
		if err := st.Set(cpu, k, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
		stored++
	}
	if out, err := st.CAS(cpu, key, []byte("v1"), 0, casid); err != nil || out != Stored {
		t.Fatalf("cas after cross-shard traffic = %v %v", out, err)
	}
	if out, _ := st.CAS(cpu, key, []byte("v2"), 0, casid); out != CASMismatch {
		t.Fatalf("stale cas = %v", out)
	}
}

func TestShardedFlushAll(t *testing.T) {
	st, cpu := newShardedStorage(t, 10, 4, 4<<20)
	for i := 0; i < 300; i++ {
		if err := st.Set(cpu, []byte(fmt.Sprintf("f-%04d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	st.FlushAll(cpu)
	if got := st.Stats().Items; got != 0 {
		t.Fatalf("items after flush = %d", got)
	}
	for _, s := range st.ShardStats() {
		if s.Items != 0 || s.Bytes != 0 {
			t.Fatalf("shard not flushed: %+v", s)
		}
	}
	// Storage still usable after flush.
	if err := st.Set(cpu, []byte("post"), []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(cpu, []byte("post")); !ok {
		t.Fatal("set after flush missing")
	}
}

func TestApplyShardBatch(t *testing.T) {
	st, cpu := newShardedStorage(t, 10, 4, 4<<20)
	// Collect keys that all map to one shard, then apply an ordered batch:
	// set a=1, set b=2, set a=3 (overwrite), delete b.
	var keys [][]byte
	for i := 0; len(keys) < 2; i++ {
		k := []byte(fmt.Sprintf("batch-%04d", i))
		if st.ShardFor(k) == 0 {
			keys = append(keys, k)
		}
	}
	a, b := keys[0], keys[1]
	ops := []BatchOp{
		{Key: a, Value: []byte("1"), Flags: 7},
		{Key: b, Value: []byte("2")},
		{Key: a, Value: []byte("3"), Flags: 9},
		{Delete: true, Key: b},
	}
	if err := st.ApplyShardBatch(cpu, 0, ops); err != nil {
		t.Fatal(err)
	}
	v, flags, ok := st.Get(cpu, a)
	if !ok || string(v) != "3" || flags != 9 {
		t.Fatalf("a = %q %d %v, want later write to win", v, flags, ok)
	}
	if _, _, ok := st.Get(cpu, b); ok {
		t.Fatal("deleted key survived batch")
	}
	// Deleting a missing key inside a batch is a no-op, not an error.
	if err := st.ApplyShardBatch(cpu, 0, []BatchOp{{Delete: true, Key: b}}); err != nil {
		t.Fatal(err)
	}
	if err := st.AuditShards(cpu); err != nil {
		t.Fatalf("shard audit after batch: %v", err)
	}
}

func TestAuditShardsAfterChurn(t *testing.T) {
	st, cpu := newShardedStorage(t, 10, 8, 4<<20)
	for i := 0; i < 1500; i++ {
		k := []byte(fmt.Sprintf("churn-%05d", i%400))
		switch i % 5 {
		case 0, 1, 2:
			if err := st.Set(cpu, k, []byte(fmt.Sprintf("val-%d", i)), 0); err != nil {
				t.Fatal(err)
			}
		case 3:
			st.Get(cpu, k)
		case 4:
			st.Delete(cpu, k)
		}
	}
	if err := st.AuditShards(cpu); err != nil {
		t.Fatalf("shard audit after churn: %v", err)
	}
}
