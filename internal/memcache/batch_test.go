package memcache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sdrad/internal/proc"
	"sdrad/internal/telemetry"
)

// startTelServer builds a server with a telemetry recorder attached, so
// tests can count forensics reports per rewind.
func startTelServer(t testing.TB, variant Variant, workers int) (*Server, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.New(telemetry.Options{})
	s, err := NewServer(Config{
		Variant:    variant,
		Workers:    workers,
		HashPower:  10,
		CacheBytes: 4 << 20,
		Telemetry:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, rec
}

func TestPipelineOrderingAndReadYourWrites(t *testing.T) {
	// A pipeline's responses come back in request order, and a get later
	// in the batch observes a set earlier in the same batch (in the
	// hardened build that read goes through the deferred-op overlay).
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		res := c.DoPipeline([][]byte{
			FormatSet("p", []byte("v1"), 0),
			FormatGet("p"),
			FormatSet("p", []byte("v2"), 0),
			FormatGet("p"),
			FormatGet("absent"),
		})
		if len(res) != 5 {
			t.Fatalf("results = %d", len(res))
		}
		for i, r := range res {
			if r.Err != nil || r.Closed {
				t.Fatalf("res[%d]: closed=%v err=%v", i, r.Closed, r.Err)
			}
		}
		if string(res[0].Resp) != "STORED\r\n" || string(res[2].Resp) != "STORED\r\n" {
			t.Errorf("set resps = %q %q", res[0].Resp, res[2].Resp)
		}
		if val, _, ok := ParseGetValue(res[1].Resp); !ok || string(val) != "v1" {
			t.Errorf("read-your-write 1 = %q", res[1].Resp)
		}
		if val, _, ok := ParseGetValue(res[3].Resp); !ok || string(val) != "v2" {
			t.Errorf("read-your-write 2 = %q", res[3].Resp)
		}
		if string(res[4].Resp) != "END\r\n" {
			t.Errorf("miss = %q", res[4].Resp)
		}
	})
}

func TestPipelineSpansMultipleBatches(t *testing.T) {
	// Pipelines longer than MaxBatch are chunked client-side; ordering
	// and results must be seamless across the chunk boundary.
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		n := 3*s.MaxBatch() + 5
		var reqs [][]byte
		for i := 0; i < n; i++ {
			reqs = append(reqs, FormatSet(fmt.Sprintf("span-%03d", i), []byte(fmt.Sprintf("val-%03d", i)), 0))
		}
		for i := 0; i < n; i++ {
			reqs = append(reqs, FormatGet(fmt.Sprintf("span-%03d", i)))
		}
		res := c.DoPipeline(reqs)
		if len(res) != 2*n {
			t.Fatalf("results = %d, want %d", len(res), 2*n)
		}
		for i := 0; i < n; i++ {
			if r := res[i]; r.Err != nil || string(r.Resp) != "STORED\r\n" {
				t.Fatalf("set %d: %q err=%v", i, r.Resp, r.Err)
			}
			val, _, ok := ParseGetValue(res[n+i].Resp)
			if !ok || string(val) != fmt.Sprintf("val-%03d", i) {
				t.Fatalf("get %d = %q", i, res[n+i].Resp)
			}
		}
	})
}

func TestPipelineBatchedVsUnbatchedBitIdentical(t *testing.T) {
	// The same request sequence must produce byte-identical responses
	// whether issued one Do at a time or as one pipeline.
	allVariants(t, func(t *testing.T, v Variant) {
		mkReqs := func() [][]byte {
			return [][]byte{
				FormatSet("a", []byte("alpha"), 3),
				FormatGet("a"),
				FormatSet("a", []byte("beta"), 4),
				FormatGet("a"),
				FormatDelete("a"),
				FormatGet("a"),
				FormatDelete("a"),
				[]byte("bogus nonsense\r\n"),
				FormatSet("b", []byte("gamma"), 0),
				FormatGet("b"),
			}
		}
		s1 := startServer(t, v, 1)
		c1 := s1.NewConn()
		var unbatched [][]byte
		for _, req := range mkReqs() {
			resp, closed, err := c1.Do(req)
			if err != nil || closed {
				t.Fatalf("Do(%q): closed=%v err=%v", req, closed, err)
			}
			unbatched = append(unbatched, resp)
		}
		s2 := startServer(t, v, 1)
		res := s2.NewConn().DoPipeline(mkReqs())
		for i, r := range res {
			if r.Err != nil || r.Closed {
				t.Fatalf("pipeline res[%d]: closed=%v err=%v", i, r.Closed, r.Err)
			}
			if !bytes.Equal(r.Resp, unbatched[i]) {
				t.Errorf("res[%d]: batched %q, unbatched %q", i, r.Resp, unbatched[i])
			}
		}
	})
}

func TestPipelineQuitMidBatch(t *testing.T) {
	// quit mid-pipeline: the batch up to the quit applies (normal exit,
	// deferred ops land), the quit closes the connection, and requests
	// behind it report closed — exactly the unbatched semantics.
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		res := c.DoPipeline([][]byte{
			FormatSet("q", []byte("kept"), 0),
			[]byte("quit\r\n"),
			FormatGet("q"),
		})
		if res[0].Err != nil || res[0].Closed || string(res[0].Resp) != "STORED\r\n" {
			t.Fatalf("set before quit: %q closed=%v err=%v", res[0].Resp, res[0].Closed, res[0].Err)
		}
		if !res[1].Closed {
			t.Error("quit did not close the connection")
		}
		if !res[2].Closed || !errors.Is(res[2].Err, ErrConnClosed) {
			t.Errorf("request behind quit: closed=%v err=%v", res[2].Closed, res[2].Err)
		}
		// The set before the quit was applied.
		c2 := s.NewConn()
		val, _, ok := ParseGetValue(mustDo(t, c2, FormatGet("q")))
		if !ok || string(val) != "kept" {
			t.Errorf("set before quit lost: %q %v", val, ok)
		}
	})
}

func TestPipelineFaultMidBatchDiscardsWholeBatch(t *testing.T) {
	// Paper semantics under batching: a trap anywhere in the batch rewinds
	// ONCE, the entire in-flight batch is discarded (earlier items' writes
	// never reach the database), exactly the batch's connections close,
	// and forensics synthesizes exactly one report.
	s, rec := startTelServer(t, VariantSDRaD, 1)
	good := s.NewConn()
	mustDo(t, good, FormatSet("persist", []byte("survives"), 0))

	evil := s.NewConn()
	res := evil.DoPipeline([][]byte{
		FormatSet("early", []byte("never-lands"), 0),
		FormatBSet("atk", 16<<20, []byte("payload")),
		FormatSet("late", []byte("never-runs"), 0),
	})
	for i, r := range res {
		if !r.Closed {
			t.Errorf("batch item %d not reported closed after rewind", i)
		}
	}
	if got := s.Rewinds(); got != 1 {
		t.Errorf("rewinds = %d, want 1 for the whole batch", got)
	}
	if crashed, cause := s.Crashed(); crashed {
		t.Fatalf("hardened server crashed: %v", cause)
	}
	reports := rec.Forensics().Reports()
	if len(reports) != 1 {
		t.Fatalf("forensics reports = %d, want exactly 1", len(reports))
	}
	rep := reports[0]
	if rep.FailedUDI != int(eventUDI) {
		t.Errorf("report failed UDI = %d, want %d", rep.FailedUDI, int(eventUDI))
	}
	if rep.SiCode == 0 || rep.SignalName == "" {
		t.Errorf("report missing fault identity: %+v", rep)
	}

	// The whole batch was discarded: neither the set before the trap nor
	// the one behind it is visible.
	c := s.NewConn()
	if _, _, ok := ParseGetValue(mustDo(t, c, FormatGet("early"))); ok {
		t.Error("set earlier in the faulting batch leaked into the database")
	}
	if _, _, ok := ParseGetValue(mustDo(t, c, FormatGet("late"))); ok {
		t.Error("set behind the trap leaked into the database")
	}
	// Connections outside the batch are untouched; their data is intact.
	val, _, ok := ParseGetValue(mustDo(t, good, FormatGet("persist")))
	if !ok || string(val) != "survives" {
		t.Errorf("bystander data after batch rewind = %q %v", val, ok)
	}
	// Storage invariants hold after the rewind.
	if err := good.Inspect(func(th *proc.Thread) error {
		return s.Storage().AuditShards(th.CPU())
	}); err != nil {
		t.Errorf("shard audit after batch rewind: %v", err)
	}
}

func TestBatchedVsUnbatchedFaultIdentical(t *testing.T) {
	// The fault a mid-batch attack produces must be the same fault the
	// unbatched flow produces: same signal, same si_code, same failing
	// domain, one forensics report each. (Fault addresses differ — the
	// batch stages buffers at different offsets — and are not compared.)
	s1, rec1 := startTelServer(t, VariantSDRaD, 1)
	evil1 := s1.NewConn()
	_, closed, err := evil1.Do(FormatBSet("atk", 16<<20, []byte("payload")))
	if err != nil || !closed {
		t.Fatalf("unbatched attack: closed=%v err=%v", closed, err)
	}

	s2, rec2 := startTelServer(t, VariantSDRaD, 1)
	evil2 := s2.NewConn()
	res := evil2.DoPipeline([][]byte{
		FormatSet("x", []byte("1"), 0),
		FormatBSet("atk", 16<<20, []byte("payload")),
		FormatSet("y", []byte("2"), 0),
	})
	if !res[1].Closed {
		t.Fatal("batched attack not absorbed")
	}

	r1, r2 := rec1.Forensics().Reports(), rec2.Forensics().Reports()
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("forensics reports = %d unbatched, %d batched; want 1 and 1", len(r1), len(r2))
	}
	a, b := r1[0], r2[0]
	if a.Signal != b.Signal || a.SignalName != b.SignalName {
		t.Errorf("signal: unbatched %d(%s), batched %d(%s)", a.Signal, a.SignalName, b.Signal, b.SignalName)
	}
	if a.SiCode != b.SiCode || a.SiCodeName != b.SiCodeName {
		t.Errorf("si_code: unbatched %d(%s), batched %d(%s)", a.SiCode, a.SiCodeName, b.SiCode, b.SiCodeName)
	}
	if a.FailedUDI != b.FailedUDI {
		t.Errorf("failed UDI: unbatched %d, batched %d", a.FailedUDI, b.FailedUDI)
	}
	if len(a.DomainStack) != len(b.DomainStack) {
		t.Errorf("domain stack depth: unbatched %v, batched %v", a.DomainStack, b.DomainStack)
	}
}

func TestPipelineFaultSparesOtherBatchlessConns(t *testing.T) {
	// Two connections pipeline into the same worker; the batch that traps
	// closes only its own connections. A connection whose event was parked
	// (not drained into the faulting batch) survives.
	s := startServer(t, VariantSDRaD, 1)
	evil := s.NewConn()
	res := evil.DoPipeline([][]byte{
		FormatSet("e1", []byte("x"), 0),
		FormatBSet("atk", 16<<20, []byte("payload")),
	})
	if !res[0].Closed || !res[1].Closed {
		t.Fatalf("attack batch results: %+v", res)
	}
	// A fresh connection on the same (only) worker keeps working.
	c := s.NewConn()
	mustDo(t, c, FormatSet("after", []byte("ok"), 0))
	if val, _, ok := ParseGetValue(mustDo(t, c, FormatGet("after"))); !ok || string(val) != "ok" {
		t.Errorf("post-attack set/get = %q %v", val, ok)
	}
	if got := s.Rewinds(); got != 1 {
		t.Errorf("rewinds = %d", got)
	}
}
