package memcache

import (
	"fmt"

	"sdrad/internal/mem"
)

// AuditShards re-derives every shard's invariants from the raw simulated
// memory and checks them against the shard's bookkeeping. It is the
// storage-level analog of core.Library.Audit, run by the chaos engine
// after fault-injection campaigns: a rewind must never leave a shard
// with a broken chain, a misplaced key, or stats that disagree with the
// structures.
//
// Checked per shard:
//   - every hash-chain item lives in the shard and bucket its key
//     hashes to;
//   - every hash-chain item appears exactly once on its class LRU, and
//     the LRU is a consistent doubly-linked list (forward walk matches
//     backward walk);
//   - class free lists and used counts account for every chunk carved
//     from slab pages (chunks == used + free);
//   - items/bytes stats equal the totals re-derived from the chains.
func (st *Storage) AuditShards(c *mem.CPU) error {
	for si, sh := range st.shards {
		sh.mu.Lock()
		err := sh.audit(c, si)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (sh *shard) audit(c *mem.CPU, si int) error {
	items := 0
	var bytes uint64
	perClass := make(map[int]int)
	onChain := make(map[mem.Addr]bool)
	for b := uint64(0); b < sh.nbuckets; b++ {
		ba := sh.buckets + mem.Addr(b*8)
		for it := c.ReadAddr(ba); it != 0; it = c.ReadAddr(it + itemOffNext) {
			if onChain[it] {
				return fmt.Errorf("memcache audit: shard %d bucket %d: item %#x linked twice", si, b, it)
			}
			onChain[it] = true
			key := itemKey(sview{c: c}, it)
			h := hashKey(key)
			if h%sh.nbuckets != b {
				return fmt.Errorf("memcache audit: shard %d: key %q in bucket %d, hashes to %d",
					si, key, b, h%sh.nbuckets)
			}
			ci := int(c.ReadU64(it + itemOffClass))
			if ci < 0 || ci >= len(sh.classes) {
				return fmt.Errorf("memcache audit: shard %d: item %#x has class %d out of range", si, it, ci)
			}
			perClass[ci]++
			items++
			bytes += itemHeader + c.ReadU64(it+itemOffKeyLen) + c.ReadU64(it+itemOffValLen)
		}
	}
	if items != sh.items {
		return fmt.Errorf("memcache audit: shard %d: chains hold %d items, stats say %d", si, items, sh.items)
	}
	if bytes != sh.bytes {
		return fmt.Errorf("memcache audit: shard %d: chains hold %d bytes, stats say %d", si, bytes, sh.bytes)
	}
	usedTotal := 0
	for ci := range sh.classes {
		cl := &sh.classes[ci]
		// Forward LRU walk: every node must be on a hash chain and of
		// this class; count must match the chain-derived class count.
		lruCount := 0
		var last mem.Addr
		for it := cl.lruHead; it != 0; it = c.ReadAddr(it + itemOffLRUN) {
			if !onChain[it] {
				return fmt.Errorf("memcache audit: shard %d class %d: LRU node %#x not on any hash chain", si, ci, it)
			}
			if int(c.ReadU64(it+itemOffClass)) != ci {
				return fmt.Errorf("memcache audit: shard %d class %d: LRU node %#x has class %d",
					si, ci, it, c.ReadU64(it+itemOffClass))
			}
			lruCount++
			if lruCount > items {
				return fmt.Errorf("memcache audit: shard %d class %d: LRU cycle", si, ci)
			}
			last = it
		}
		if last != cl.lruTail {
			return fmt.Errorf("memcache audit: shard %d class %d: forward walk ends at %#x, tail is %#x",
				si, ci, last, cl.lruTail)
		}
		// Backward walk must see the same number of nodes.
		backCount := 0
		for it := cl.lruTail; it != 0; it = c.ReadAddr(it + itemOffLRUP) {
			backCount++
			if backCount > lruCount {
				return fmt.Errorf("memcache audit: shard %d class %d: backward LRU walk longer than forward", si, ci)
			}
		}
		if backCount != lruCount {
			return fmt.Errorf("memcache audit: shard %d class %d: LRU forward=%d backward=%d",
				si, ci, lruCount, backCount)
		}
		if lruCount != perClass[ci] {
			return fmt.Errorf("memcache audit: shard %d class %d: LRU holds %d, chains hold %d",
				si, ci, lruCount, perClass[ci])
		}
		if cl.used != lruCount {
			return fmt.Errorf("memcache audit: shard %d class %d: used=%d but %d live items",
				si, ci, cl.used, lruCount)
		}
		free := 0
		for ch := cl.freeHead; ch != 0; ch = c.ReadAddr(ch) {
			free++
			if free > cl.chunks {
				return fmt.Errorf("memcache audit: shard %d class %d: free-list cycle", si, ci)
			}
		}
		if cl.used+free != cl.chunks {
			return fmt.Errorf("memcache audit: shard %d class %d: used=%d free=%d chunks=%d",
				si, ci, cl.used, free, cl.chunks)
		}
		usedTotal += cl.used
	}
	if usedTotal != items {
		return fmt.Errorf("memcache audit: shard %d: classes account %d used chunks, %d items live", si, usedTotal, items)
	}
	return nil
}
