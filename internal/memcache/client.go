package memcache

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
)

// FormatSet builds a text-protocol set request.
func FormatSet(key string, value []byte, flags uint32) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "set %s %d 0 %d\r\n", key, flags, len(value))
	b.Write(value)
	b.WriteString("\r\n")
	return b.Bytes()
}

// FormatGet builds a get request.
func FormatGet(key string) []byte {
	return []byte("get " + key + "\r\n")
}

// FormatDelete builds a delete request.
func FormatDelete(key string) []byte {
	return []byte("delete " + key + "\r\n")
}

// FormatBSet builds a binary-set request whose header claims claimedLen
// body bytes while actually carrying data. A claimedLen larger than the
// staging buffer triggers the planted CVE-2011-4971 analog.
func FormatBSet(key string, claimedLen int, data []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "bset %s %d %d\r\n", key, claimedLen, len(data))
	b.Write(data)
	b.WriteString("\r\n")
	return b.Bytes()
}

// ParseGetValue extracts the first value from a get response, reporting
// ok=false on a miss.
func ParseGetValue(resp []byte) (value []byte, flags uint32, ok bool) {
	if !bytes.HasPrefix(resp, []byte("VALUE ")) {
		return nil, 0, false
	}
	nl := bytes.Index(resp, []byte("\r\n"))
	if nl < 0 {
		return nil, 0, false
	}
	header := bytes.Fields(resp[:nl])
	if len(header) != 4 {
		return nil, 0, false
	}
	f, err1 := strconv.ParseUint(string(header[2]), 10, 32)
	n, err2 := strconv.Atoi(string(header[3]))
	if err1 != nil || err2 != nil || nl+2+n > len(resp) {
		return nil, 0, false
	}
	return resp[nl+2 : nl+2+n], uint32(f), true
}

// ServeListener accepts TCP (or net.Pipe) connections and speaks the text
// protocol, bridging each network connection to a simulated server
// connection. It returns when the listener closes or the server process
// dies. Intended for the runnable examples and cmd binaries; benchmarks
// drive the engine through Conn.Do directly.
func (s *Server) ServeListener(ln net.Listener) error {
	go func() {
		<-s.p.Done()
		_ = ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.p.Killed() {
				return ErrServerDown
			}
			return err
		}
		go s.serveNetConn(nc)
	}
}

// serveNetConn reads framed requests off one network connection and
// round-trips them through the engine.
func (s *Server) serveNetConn(nc net.Conn) {
	defer func() { _ = nc.Close() }()
	conn := s.NewConn()
	r := bufio.NewReader(nc)
	for {
		req, err := ReadRequest(r)
		if err != nil {
			return
		}
		resp, closed, err := conn.Do(req)
		if err != nil {
			fmt.Fprintf(nc, "SERVER_ERROR %v\r\n", err)
			return
		}
		if len(resp) > 0 {
			if _, err := nc.Write(resp); err != nil {
				return
			}
		}
		if closed {
			return
		}
	}
}

// ReadRequest frames one request off a client byte stream. Binary frames
// (magic 0x80) carry a 24-byte header; the transport reads
// min(total-body, sane-cap) further bytes — the parser, not the
// transport, trusts the header's length field. Text requests are a
// command line plus, for set/bset, the declared body; the bset frame
// carries the actual byte count in its fourth token so a malicious
// client can claim an arbitrary body length in the third. The cluster
// router shares this framing so a front-end and a backend agree on
// request boundaries byte for byte.
func ReadRequest(r *bufio.Reader) ([]byte, error) {
	magic, err := r.Peek(1)
	if err != nil {
		return nil, err
	}
	if magic[0] == BinMagicRequest {
		hdr := make([]byte, binHeaderSize)
		if _, err := io.ReadFull(r, hdr); err != nil {
			return nil, err
		}
		total := int(uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11]))
		// The wire carries at most what a frame can sanely hold; the
		// claimed length is still what the parser sees in the header.
		if total < 0 || total > 1<<20 {
			total = r.Buffered()
		}
		body := make([]byte, total)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, err
		}
		return append(hdr, body...), nil
	}
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	req := append([]byte(nil), line...)
	fields := bytes.Fields(bytes.TrimRight(line, "\r\n"))
	if len(fields) == 0 {
		return req, nil
	}
	var bodyLen int
	switch string(fields[0]) {
	case "set", "add", "replace":
		if len(fields) >= 5 {
			bodyLen, _ = strconv.Atoi(string(fields[4]))
		}
	case "bset":
		if len(fields) >= 4 {
			bodyLen, _ = strconv.Atoi(string(fields[3]))
		}
	default:
		return req, nil
	}
	if bodyLen < 0 || bodyLen > 1<<20 {
		return req, nil
	}
	body := make([]byte, bodyLen+2) // data + trailing \r\n
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return append(req, body...), nil
}

// RequestKey extracts the routing key of a framed text request: the
// second token of the command line for every keyed command, "" for
// keyless commands (stats, flush_all, version, quit) and binary frames.
// Multi-key gets route by their first key.
func RequestKey(req []byte) string {
	if len(req) == 0 || req[0] == BinMagicRequest {
		return ""
	}
	nl := bytes.IndexByte(req, '\n')
	if nl < 0 {
		nl = len(req)
	}
	fields := bytes.Fields(bytes.TrimRight(req[:nl], "\r\n"))
	if len(fields) < 2 {
		return ""
	}
	switch string(fields[0]) {
	case "get", "gets", "set", "add", "replace", "append", "prepend",
		"cas", "delete", "touch", "incr", "decr", "bset":
		return string(fields[1])
	}
	return ""
}

// ReadReply frames one text-protocol reply off a server byte stream: a
// single terminal line for most commands, or — when the first line opens
// a multi-line reply (VALUE or STAT) — everything through the END line.
// An EOF mid-reply surfaces as io.ErrUnexpectedEOF so callers can tell a
// torn reply from a cleanly closed connection.
func ReadReply(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	reply := append([]byte(nil), line...)
	for {
		fields := bytes.Fields(bytes.TrimRight(line, "\r\n"))
		if len(fields) == 0 {
			return reply, nil
		}
		switch string(fields[0]) {
		case "VALUE":
			// VALUE <key> <flags> <bytes> [<cas>]: consume the data block,
			// then continue with the next line (another VALUE, or END).
			if len(fields) < 4 {
				return reply, nil
			}
			n, convErr := strconv.Atoi(string(fields[3]))
			if convErr != nil || n < 0 || n > 1<<20 {
				return reply, nil
			}
			body := make([]byte, n+2) // data + \r\n
			if _, err := io.ReadFull(r, body); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return nil, err
			}
			reply = append(reply, body...)
		case "STAT":
			// stats replies: STAT lines until END.
		default:
			// Terminal line: single-line reply, or the END of a multi-line
			// one.
			return reply, nil
		}
		line, err = r.ReadBytes('\n')
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		reply = append(reply, line...)
	}
}
