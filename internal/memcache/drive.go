package memcache

import (
	"bytes"
	"fmt"
	"strconv"

	"sdrad/internal/mem"
)

// storeOps abstracts the storage operations drive_machine performs, so
// the SDRaD build can defer mutations to normal domain exit (paper §V-A:
// wrapped slabs_alloc/store_item perform each operation on a copy and the
// database is updated only after the event handler leaves the domain).
type storeOps interface {
	Get(c *mem.CPU, key []byte) (value []byte, flags uint32, ok bool)
	GetWithCAS(c *mem.CPU, key []byte) (value []byte, flags uint32, casid uint64, ok bool)
	// AppendGet appends key's value to dst (the reply scratch) instead of
	// allocating a fresh slice per hit — the copy-once read behind the
	// zero-copy reply assembly.
	AppendGet(c *mem.CPU, key, dst []byte, withCAS bool) (out []byte, flags uint32, casid uint64, ok bool)
	Set(c *mem.CPU, key, value []byte, flags uint32) error
	Add(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error)
	Replace(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error)
	Concat(c *mem.CPU, key, data []byte, prepend bool) (StoreOutcome, error)
	CAS(c *mem.CPU, key, value []byte, flags uint32, casid uint64) (StoreOutcome, error)
	Delete(c *mem.CPU, key []byte) bool
	Touch(c *mem.CPU, key []byte) bool
	FlushAll(c *mem.CPU)
	Stats() StorageStats
}

// directOps applies operations immediately (baseline builds, and the
// post-exit application step of the hardened build).
type directOps struct{ st *Storage }

func (d directOps) Get(c *mem.CPU, key []byte) ([]byte, uint32, bool) { return d.st.Get(c, key) }
func (d directOps) GetWithCAS(c *mem.CPU, key []byte) ([]byte, uint32, uint64, bool) {
	return d.st.GetWithCAS(c, key)
}
func (d directOps) AppendGet(c *mem.CPU, key, dst []byte, withCAS bool) ([]byte, uint32, uint64, bool) {
	return d.st.AppendGet(c, key, dst, withCAS)
}
func (d directOps) Set(c *mem.CPU, key, value []byte, flags uint32) error {
	return d.st.Set(c, key, value, flags)
}
func (d directOps) Add(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	return d.st.Add(c, key, value, flags)
}
func (d directOps) Replace(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	return d.st.Replace(c, key, value, flags)
}
func (d directOps) Concat(c *mem.CPU, key, data []byte, prepend bool) (StoreOutcome, error) {
	return d.st.Concat(c, key, data, prepend)
}
func (d directOps) CAS(c *mem.CPU, key, value []byte, flags uint32, casid uint64) (StoreOutcome, error) {
	return d.st.CAS(c, key, value, flags, casid)
}
func (d directOps) Delete(c *mem.CPU, key []byte) bool { return d.st.Delete(c, key) }
func (d directOps) Touch(c *mem.CPU, key []byte) bool  { return d.st.Touch(c, key) }
func (d directOps) FlushAll(c *mem.CPU)                { d.st.FlushAll(c) }
func (d directOps) Stats() StorageStats                { return d.st.Stats() }

// pendingKind tags a deferred mutation.
type pendingKind int

const (
	pendingSet pendingKind = iota + 1
	pendingDelete
	pendingFlush
)

// pendingOp is one deferred mutation. Key and value reference copies made
// while executing inside the nested domain; the op list itself is part of
// the event handler's state and is dropped wholesale when the domain is
// discarded, which is exactly the paper's atomic deferred-update
// behaviour ("on abnormal domain exit the corrupt key-value pair is
// discarded along with all other domain memory").
type pendingOp struct {
	kind  pendingKind
	key   []byte
	value []byte
	flags uint32
}

// deferredOps reads the shared database directly (the nested domain holds
// an RW grant on the storage data domain, as in the paper) but queues all
// mutations for application after a normal domain exit.
type deferredOps struct {
	st      *Storage
	pending []pendingOp
	// groups is apply-time scratch: per-shard op groups, reused across
	// applies so the steady state allocates nothing.
	groups [][]BatchOp
}

func (d *deferredOps) Get(c *mem.CPU, key []byte) ([]byte, uint32, bool) {
	// Read-your-writes within one event, for the atomic-request property.
	for i := len(d.pending) - 1; i >= 0; i-- {
		op := d.pending[i]
		if op.kind == pendingFlush {
			return nil, 0, false
		}
		if string(op.key) == string(key) {
			if op.kind == pendingDelete {
				return nil, 0, false
			}
			return op.value, op.flags, true
		}
	}
	return d.st.Get(c, key)
}

func (d *deferredOps) AppendGet(c *mem.CPU, key, dst []byte, withCAS bool) ([]byte, uint32, uint64, bool) {
	// Read-your-writes overlay first, mirroring Get; only the CAS id (not
	// assigned until apply time) is taken from the shared DB view.
	for i := len(d.pending) - 1; i >= 0; i-- {
		op := d.pending[i]
		if op.kind == pendingFlush {
			return dst, 0, 0, false
		}
		if string(op.key) == string(key) {
			if op.kind == pendingDelete {
				return dst, 0, 0, false
			}
			var casid uint64
			if withCAS {
				if _, _, id, inDB := d.st.GetWithCAS(c, key); inDB {
					casid = id
				}
			}
			return append(dst, op.value...), op.flags, casid, true
		}
	}
	return d.st.AppendGet(c, key, dst, withCAS)
}

func (d *deferredOps) GetWithCAS(c *mem.CPU, key []byte) ([]byte, uint32, uint64, bool) {
	// Pending writes have no CAS id yet; fall back to the shared DB view
	// for the id and overlay value reads.
	if v, f, ok := d.Get(c, key); ok {
		_, _, casid, inDB := d.st.GetWithCAS(c, key)
		if !inDB {
			casid = 0
		}
		return v, f, casid, true
	}
	return nil, 0, 0, false
}

func (d *deferredOps) Add(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	if _, _, exists := d.Get(c, key); exists {
		return NotStored, nil
	}
	if err := d.Set(c, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

func (d *deferredOps) Replace(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	if _, _, exists := d.Get(c, key); !exists {
		return NotStored, nil
	}
	if err := d.Set(c, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

func (d *deferredOps) Concat(c *mem.CPU, key, data []byte, prepend bool) (StoreOutcome, error) {
	old, flags, exists := d.Get(c, key)
	if !exists {
		return NotStored, nil
	}
	var merged []byte
	if prepend {
		merged = append(append([]byte{}, data...), old...)
	} else {
		merged = append(append([]byte{}, old...), data...)
	}
	if err := d.Set(c, key, merged, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

func (d *deferredOps) CAS(c *mem.CPU, key, value []byte, flags uint32, casid uint64) (StoreOutcome, error) {
	// The compare happens against the shared DB now, the swap at normal
	// domain exit — the same at-most-once atomic-update discipline the
	// paper's deferred stores follow.
	_, _, cur, ok := d.st.GetWithCAS(c, key)
	if !ok {
		return NotFoundOutcome, nil
	}
	if cur != casid {
		return CASMismatch, nil
	}
	if err := d.Set(c, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

func (d *deferredOps) Touch(c *mem.CPU, key []byte) bool {
	// LRU metadata only: safe to apply immediately (the nested domain
	// holds an RW grant on the storage domain).
	return d.st.Touch(c, key)
}

func (d *deferredOps) FlushAll(c *mem.CPU) {
	d.pending = append(d.pending, pendingOp{kind: pendingFlush})
}

func (d *deferredOps) Set(c *mem.CPU, key, value []byte, flags uint32) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	k := make([]byte, len(key))
	copy(k, key)
	v := make([]byte, len(value))
	copy(v, value)
	d.pending = append(d.pending, pendingOp{kind: pendingSet, key: k, value: v, flags: flags})
	return nil
}

func (d *deferredOps) Delete(c *mem.CPU, key []byte) bool {
	_, _, existed := d.Get(c, key)
	k := make([]byte, len(key))
	copy(k, key)
	d.pending = append(d.pending, pendingOp{kind: pendingDelete, key: k})
	return existed
}

func (d *deferredOps) Stats() StorageStats { return d.st.Stats() }

// apply flushes the deferred mutations to the shared database. Called
// after a normal domain exit, with root-domain rights.
//
// Ops are grouped per storage shard so one batch takes each shard lock
// at most once; per-key order is preserved (a key always maps to one
// shard, and the group keeps shard-local order). A flush is a global
// barrier: the groups accumulated before it are applied, then every
// shard is flushed, then grouping restarts. The first store error
// aborts the apply, as in the sequential flow.
func (d *deferredOps) apply(c *mem.CPU) error {
	if len(d.pending) == 0 {
		return nil
	}
	// With the slot remap enabled, group by slot instead of shard: the
	// classification here races with rebalancing, so the apply resolves
	// each slot's current shard under its lock (ApplySlotBatch) — a
	// shard-index grouping computed now could be stale by apply time.
	remap := d.st.RemapEnabled()
	ngrp := d.st.Shards()
	if remap {
		ngrp = d.st.Slots()
	}
	if len(d.groups) < ngrp {
		d.groups = make([][]BatchOp, ngrp)
	}
	flushGroups := func() error {
		for gi := 0; gi < ngrp; gi++ {
			g := d.groups[gi]
			if len(g) == 0 {
				continue
			}
			var err error
			if remap {
				err = d.st.ApplySlotBatch(c, gi, g)
			} else {
				err = d.st.ApplyShardBatch(c, gi, g)
			}
			d.groups[gi] = g[:0]
			if err != nil {
				return err
			}
		}
		return nil
	}
	groupFor := func(key []byte) int {
		if remap {
			return d.st.SlotForKey(key)
		}
		return d.st.ShardFor(key)
	}
	for _, op := range d.pending {
		switch op.kind {
		case pendingSet:
			gi := groupFor(op.key)
			d.groups[gi] = append(d.groups[gi], BatchOp{Key: op.key, Value: op.value, Flags: op.flags})
		case pendingDelete:
			gi := groupFor(op.key)
			d.groups[gi] = append(d.groups[gi], BatchOp{Delete: true, Key: op.key})
		case pendingFlush:
			if err := flushGroups(); err != nil {
				return err
			}
			d.st.FlushAll(c)
		}
	}
	err := flushGroups()
	d.pending = d.pending[:0]
	return err
}

// dmEnv is the environment drive_machine runs in: the request/response
// buffers (which live in the nested domain in the hardened build), an
// allocator for scratch memory in the current domain, and the storage
// operations view.
type dmEnv struct {
	c    *mem.CPU
	rbuf mem.Addr
	rlen int
	wbuf mem.Addr
	wcap int
	// allocScratch obtains request-scoped scratch memory in the current
	// domain (Memcached's item staging buffers).
	allocScratch func(size uint64) (mem.Addr, error)
	ops          storeOps
	// noreply suppresses the response (set by the "noreply" suffix).
	noreply bool
	// rl/wl are optional span leases over the full read/write buffers.
	// When valid they give readLine, the store-body read, and the reply
	// writer native windows; when nil or invalidated (domain switch,
	// rewind, armed injector) every access falls back to the checked
	// accessors with identical fault semantics.
	rl *mem.Lease
	wl *mem.Lease
	// reply is the reusable gather-list reply assembler (lazily created
	// for environments that never wire one up).
	reply *replyState
}

// replyState assembles a response as a gather list over a reusable
// scratch buffer — the writev analog. Segments either reference scratch
// by offset (surviving scratch reallocation) or static protocol bytes,
// and flushReply materializes them into the write buffer in one pass.
type replyState struct {
	segs    []rseg
	scratch []byte
	n       int
}

// rseg is one gather segment: ext set means the bytes themselves
// (static protocol text), otherwise scratch[off:off+n].
type rseg struct {
	ext []byte
	off int
	n   int
}

func (r *replyState) reset() {
	r.segs = r.segs[:0]
	r.scratch = r.scratch[:0]
	r.n = 0
}

func (r *replyState) pushScratch(off, n int) {
	r.segs = append(r.segs, rseg{off: off, n: n})
	r.n += n
}

func (r *replyState) pushExt(b []byte) {
	r.segs = append(r.segs, rseg{ext: b, n: len(b)})
	r.n += len(b)
}

func (env *dmEnv) replyBuf() *replyState {
	if env.reply == nil {
		env.reply = &replyState{}
	}
	return env.reply
}

// flushReply gathers the segments into the write buffer, truncating at
// capacity. With a valid write lease the whole response lands with plain
// copies into the native window; otherwise each segment goes through the
// checked writer.
func (env *dmEnv) flushReply(r *replyState) int {
	if env.noreply {
		return 0
	}
	total := r.n
	if total > env.wcap {
		total = env.wcap
	}
	if env.wl != nil {
		if w, ok := env.wl.Bytes(env.wbuf, total); ok {
			off := 0
			for _, sg := range r.segs {
				if off >= total {
					break
				}
				b := sg.ext
				if b == nil {
					b = r.scratch[sg.off : sg.off+sg.n]
				}
				if off+len(b) > total {
					b = b[:total-off]
				}
				off += copy(w[off:], b)
			}
			return total
		}
	}
	off := 0
	for _, sg := range r.segs {
		if off >= total {
			break
		}
		b := sg.ext
		if b == nil {
			b = r.scratch[sg.off : sg.off+sg.n]
		}
		if off+len(b) > total {
			b = b[:total-off]
		}
		env.c.Write(env.wbuf+mem.Addr(off), b)
		off += len(b)
	}
	return total
}

// stagingSize is the fixed staging buffer the vulnerable binary-set path
// uses — the overflow target of the CVE-2011-4971 analog.
const stagingSize = 1024

// driveMachine processes one client event: it parses the request in the
// connection buffer and executes it, writing the response to the write
// buffer. It mirrors Memcached's drive_machine state machine collapsed to
// one readable function (our transport delivers complete requests).
//
// Returns the response length, whether the connection should close, and a
// protocol-level error (protocol errors produce ERROR responses, not Go
// errors).
func driveMachine(env *dmEnv) (wlen int, closeConn bool, err error) {
	// Binary-protocol frames are identified by their magic byte, exactly
	// as in memcached's try_read_command.
	if env.rlen > 0 && env.c.ReadU8(env.rbuf) == BinMagicRequest {
		return driveBinary(env)
	}
	line, bodyOff := readLine(env)
	if line == nil {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	tokens := tokenize(line)
	if len(tokens) == 0 {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	// The "noreply" suffix suppresses the response (memcached protocol);
	// storage commands still execute.
	if n := len(tokens); n > 1 && string(tokens[n-1]) == "noreply" {
		env.noreply = true
		tokens = tokens[:n-1]
	}
	switch string(tokens[0]) {
	case "get":
		return cmdGet(env, tokens, false)
	case "gets":
		return cmdGet(env, tokens, true)
	case "set", "add", "replace", "append", "prepend", "cas":
		return cmdStore(env, tokens, bodyOff)
	case "bset":
		return cmdBinarySet(env, tokens, bodyOff)
	case "delete":
		return cmdDelete(env, tokens)
	case "incr", "decr":
		return cmdIncrDecr(env, tokens)
	case "touch":
		return cmdTouch(env, tokens)
	case "flush_all":
		env.ops.FlushAll(env.c)
		return writeString(env, "OK\r\n"), false, nil
	case "stats":
		return cmdStats(env)
	case "version":
		return writeString(env, "VERSION 1.6.13-sdrad\r\n"), false, nil
	case "quit":
		return 0, true, nil
	default:
		return writeString(env, "ERROR\r\n"), false, nil
	}
}

// readLine extracts the command line (up to \r\n) from the request
// buffer, returning the line bytes and the offset of the body that
// follows. The read is performed through the CPU so it is subject to the
// current domain's rights.
func readLine(env *dmEnv) (line []byte, bodyOff int) {
	c, rbuf, rlen := env.c, env.rbuf, env.rlen
	max := rlen
	if max > 512 {
		max = 512 // command lines are short; bodies follow separately
	}
	// Leased fast path: one validity check, then a plain bytes.Index over
	// the native window — no per-page run walk at all.
	if env.rl != nil {
		if b, ok := env.rl.Bytes(rbuf, max); ok {
			if i := bytes.Index(b, crlfBytes); i >= 0 {
				return b[:i], i + 2
			}
			return nil, 0
		}
	}
	// Scan page runs in place instead of copying the whole head: the
	// common case (line inside one page) allocates nothing, and the
	// returned slice aliases simulated memory until the buffer is next
	// written.
	var acc []byte // spill, used only when the line crosses a page boundary
	scanned := 0
	for scanned < max {
		run := c.ReadRun(rbuf+mem.Addr(scanned), max-scanned)
		if len(acc) > 0 && acc[len(acc)-1] == '\r' && run[0] == '\n' {
			return acc[:len(acc)-1], scanned + 1
		}
		for i := 0; i+1 < len(run); i++ {
			if run[i] == '\r' && run[i+1] == '\n' {
				if acc == nil {
					return run[:i], scanned + i + 2
				}
				return append(acc, run[:i]...), scanned + i + 2
			}
		}
		acc = append(acc, run...)
		scanned += len(run)
	}
	return nil, 0
}

// readBody returns the store-command body. With a valid read lease the
// slice aliases the leased request window — safe because every store op
// consumes (direct) or copies (deferred) the value before drive_machine
// returns; otherwise it is a checked copy. The bounds were validated by
// the caller against rlen; out-of-buffer body lengths never reach here.
func readBody(env *dmEnv, bodyOff, nbytes int) []byte {
	if env.rl != nil {
		if b, ok := env.rl.Bytes(env.rbuf+mem.Addr(bodyOff), nbytes); ok {
			return b
		}
	}
	return env.c.ReadBytes(env.rbuf+mem.Addr(bodyOff), nbytes)
}

// tokenize splits a command line on single spaces.
func tokenize(line []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			if i > start {
				out = append(out, line[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// Static protocol fragments shared by the reply assembler.
var (
	crlfBytes = []byte("\r\n")
	endBytes  = []byte("END\r\n")
)

// writeString writes a response string to the write buffer; suppressed
// entirely for noreply requests.
func writeString(env *dmEnv, s string) int {
	if env.noreply {
		return 0
	}
	if len(s) > env.wcap {
		s = s[:env.wcap]
	}
	if env.wl != nil {
		if w, ok := env.wl.Bytes(env.wbuf, len(s)); ok {
			copy(w, s)
			return len(s)
		}
	}
	env.c.Write(env.wbuf, []byte(s))
	return len(s)
}

// writeResponse writes a composed response, truncating at capacity.
func writeResponse(env *dmEnv, b []byte) int {
	if env.noreply {
		return 0
	}
	if len(b) > env.wcap {
		b = b[:env.wcap]
	}
	if env.wl != nil {
		if w, ok := env.wl.Bytes(env.wbuf, len(b)); ok {
			copy(w, b)
			return len(b)
		}
	}
	env.c.Write(env.wbuf, b)
	return len(b)
}

func cmdGet(env *dmEnv, tokens [][]byte, withCAS bool) (int, bool, error) {
	if len(tokens) < 2 {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	// Zero-copy assembly: each hit's value is appended once into the
	// reply scratch (straight from cache memory), the header is rendered
	// with strconv appends after it, and the gather list orders header
	// before value on the wire. One flush materializes everything.
	r := env.replyBuf()
	r.reset()
	for _, key := range tokens[1:] {
		vo := len(r.scratch)
		out, flags, casid, ok := env.ops.AppendGet(env.c, key, r.scratch, withCAS)
		r.scratch = out
		if !ok {
			r.scratch = r.scratch[:vo]
			continue
		}
		vn := len(r.scratch) - vo
		ho := len(r.scratch)
		r.scratch = append(r.scratch, "VALUE "...)
		r.scratch = append(r.scratch, key...)
		r.scratch = append(r.scratch, ' ')
		r.scratch = strconv.AppendUint(r.scratch, uint64(flags), 10)
		r.scratch = append(r.scratch, ' ')
		r.scratch = strconv.AppendUint(r.scratch, uint64(vn), 10)
		if withCAS {
			r.scratch = append(r.scratch, ' ')
			r.scratch = strconv.AppendUint(r.scratch, casid, 10)
		}
		r.scratch = append(r.scratch, '\r', '\n')
		r.pushScratch(ho, len(r.scratch)-ho)
		r.pushScratch(vo, vn)
		r.pushExt(crlfBytes)
	}
	r.pushExt(endBytes)
	return env.flushReply(r), false, nil
}

// cmdStore handles all storage commands sharing the
// "<cmd> <key> <flags> <exptime> <bytes> [casid]\r\n<data>\r\n" shape.
func cmdStore(env *dmEnv, tokens [][]byte, bodyOff int) (int, bool, error) {
	cmd := string(tokens[0])
	if len(tokens) < 5 || (cmd == "cas" && len(tokens) < 6) {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	key := tokens[1]
	flags64, err1 := strconv.ParseUint(string(tokens[2]), 10, 32)
	nbytes, err2 := strconv.Atoi(string(tokens[4]))
	if err1 != nil || err2 != nil || nbytes < 0 {
		return writeString(env, "CLIENT_ERROR bad command line format\r\n"), false, nil
	}
	if bodyOff+nbytes > env.rlen {
		return writeString(env, "CLIENT_ERROR bad data chunk\r\n"), false, nil
	}
	value := readBody(env, bodyOff, nbytes)
	flags := uint32(flags64)

	var outcome StoreOutcome
	var err error
	switch cmd {
	case "set":
		err = env.ops.Set(env.c, key, value, flags)
		outcome = Stored
	case "add":
		outcome, err = env.ops.Add(env.c, key, value, flags)
	case "replace":
		outcome, err = env.ops.Replace(env.c, key, value, flags)
	case "append":
		outcome, err = env.ops.Concat(env.c, key, value, false)
	case "prepend":
		outcome, err = env.ops.Concat(env.c, key, value, true)
	case "cas":
		casid, cerr := strconv.ParseUint(string(tokens[5]), 10, 64)
		if cerr != nil {
			return writeString(env, "CLIENT_ERROR bad command line format\r\n"), false, nil
		}
		outcome, err = env.ops.CAS(env.c, key, value, flags, casid)
	}
	if err != nil {
		return writeString(env, "SERVER_ERROR "+err.Error()+"\r\n"), false, nil
	}
	switch outcome {
	case Stored:
		return writeString(env, "STORED\r\n"), false, nil
	case NotStored:
		return writeString(env, "NOT_STORED\r\n"), false, nil
	case CASMismatch:
		return writeString(env, "EXISTS\r\n"), false, nil
	default:
		return writeString(env, "NOT_FOUND\r\n"), false, nil
	}
}

func cmdTouch(env *dmEnv, tokens [][]byte) (int, bool, error) {
	if len(tokens) < 2 {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	if env.ops.Touch(env.c, tokens[1]) {
		return writeString(env, "TOUCHED\r\n"), false, nil
	}
	return writeString(env, "NOT_FOUND\r\n"), false, nil
}

// cmdBinarySet is the CVE-2011-4971 analog. The real vulnerability: a
// crafted binary-protocol packet carries a huge body length which
// Memcached trusts, so a fixed-size buffer is overflowed by a memcpy of
// attacker-controlled length, corrupting the heap and crashing the
// process. Here, the "binary" set command carries the body length in its
// header and the handler copies that many bytes into a fixed staging
// buffer without validating it against the buffer size or against the
// bytes actually received.
func cmdBinarySet(env *dmEnv, tokens [][]byte, bodyOff int) (int, bool, error) {
	if len(tokens) < 3 {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	key := tokens[1]
	bodyLen, err := strconv.Atoi(string(tokens[2]))
	if err != nil || bodyLen < 0 {
		return writeString(env, "CLIENT_ERROR bad command line format\r\n"), false, nil
	}
	staging, err := env.allocScratch(stagingSize)
	if err != nil {
		return writeString(env, "SERVER_ERROR out of memory\r\n"), false, nil
	}
	// BUG (intentional, the planted CVE): bodyLen comes straight from the
	// packet header. A value larger than stagingSize overflows the
	// staging buffer; larger than the connection buffer, it also overruns
	// the source. With SDRaD both are confined to the nested domain and
	// detected by the MMU.
	env.c.Copy(staging, env.rbuf+mem.Addr(bodyOff), bodyLen)
	n := bodyLen
	if n > stagingSize {
		n = stagingSize
	}
	value := env.c.ReadBytes(staging, n)
	if err := env.ops.Set(env.c, key, value, 0); err != nil {
		return writeString(env, "SERVER_ERROR "+err.Error()+"\r\n"), false, nil
	}
	return writeString(env, "STORED\r\n"), false, nil
}

func cmdDelete(env *dmEnv, tokens [][]byte) (int, bool, error) {
	if len(tokens) < 2 {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	if env.ops.Delete(env.c, tokens[1]) {
		return writeString(env, "DELETED\r\n"), false, nil
	}
	return writeString(env, "NOT_FOUND\r\n"), false, nil
}

func cmdIncrDecr(env *dmEnv, tokens [][]byte) (int, bool, error) {
	if len(tokens) < 3 {
		return writeString(env, "ERROR\r\n"), false, nil
	}
	key := tokens[1]
	delta, err := strconv.ParseUint(string(tokens[2]), 10, 64)
	if err != nil {
		return writeString(env, "CLIENT_ERROR invalid numeric delta argument\r\n"), false, nil
	}
	value, flags, ok := env.ops.Get(env.c, key)
	if !ok {
		return writeString(env, "NOT_FOUND\r\n"), false, nil
	}
	cur, err := strconv.ParseUint(string(value), 10, 64)
	if err != nil {
		return writeString(env, "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n"), false, nil
	}
	if string(tokens[0]) == "incr" {
		cur += delta
	} else if cur < delta {
		cur = 0
	} else {
		cur -= delta
	}
	newVal := []byte(strconv.FormatUint(cur, 10))
	if err := env.ops.Set(env.c, key, newVal, flags); err != nil {
		return writeString(env, "SERVER_ERROR "+err.Error()+"\r\n"), false, nil
	}
	return writeResponse(env, append(newVal, '\r', '\n')), false, nil
}

func cmdStats(env *dmEnv) (int, bool, error) {
	s := env.ops.Stats()
	resp := fmt.Sprintf(
		"STAT curr_items %d\r\nSTAT bytes %d\r\nSTAT evictions %d\r\nSTAT cmd_get %d\r\nSTAT cmd_set %d\r\nSTAT get_hits %d\r\nEND\r\n",
		s.Items, s.Bytes, s.Evictions, s.Gets, s.Sets, s.Hits)
	return writeString(env, resp), false, nil
}
