package memcache

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// doText sends a raw text command with an optional body.
func doText(t *testing.T, c *Conn, line string, body []byte) string {
	t.Helper()
	req := []byte(line + "\r\n")
	if body != nil {
		req = append(req, body...)
		req = append(req, '\r', '\n')
	}
	resp, closed, err := c.Do(req)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	if closed {
		t.Fatalf("%q: connection closed", line)
	}
	return string(resp)
}

func storeLine(cmd, key string, flags int, body []byte, extra string) string {
	s := fmt.Sprintf("%s %s %d 0 %d", cmd, key, flags, len(body))
	if extra != "" {
		s += " " + extra
	}
	return s
}

func TestAddReplaceSemantics(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		// add on a fresh key stores; on an existing key refuses.
		if got := doText(t, c, storeLine("add", "k", 0, []byte("v1"), ""), []byte("v1")); got != "STORED\r\n" {
			t.Fatalf("add fresh = %q", got)
		}
		if got := doText(t, c, storeLine("add", "k", 0, []byte("v2"), ""), []byte("v2")); got != "NOT_STORED\r\n" {
			t.Fatalf("add existing = %q", got)
		}
		// replace on existing stores; on missing refuses.
		if got := doText(t, c, storeLine("replace", "k", 0, []byte("v3"), ""), []byte("v3")); got != "STORED\r\n" {
			t.Fatalf("replace existing = %q", got)
		}
		if got := doText(t, c, storeLine("replace", "nope", 0, []byte("x"), ""), []byte("x")); got != "NOT_STORED\r\n" {
			t.Fatalf("replace missing = %q", got)
		}
		val, _, ok := ParseGetValue(mustDo(t, c, FormatGet("k")))
		if !ok || string(val) != "v3" {
			t.Fatalf("final value = %q", val)
		}
	})
}

func TestAppendPrepend(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		mustDo(t, c, FormatSet("k", []byte("mid"), 5))
		if got := doText(t, c, storeLine("append", "k", 0, []byte("-end"), ""), []byte("-end")); got != "STORED\r\n" {
			t.Fatalf("append = %q", got)
		}
		if got := doText(t, c, storeLine("prepend", "k", 0, []byte("pre-"), ""), []byte("pre-")); got != "STORED\r\n" {
			t.Fatalf("prepend = %q", got)
		}
		val, flags, ok := ParseGetValue(mustDo(t, c, FormatGet("k")))
		if !ok || string(val) != "pre-mid-end" {
			t.Fatalf("value = %q", val)
		}
		if flags != 5 {
			t.Errorf("flags lost on concat: %d", flags)
		}
		if got := doText(t, c, storeLine("append", "missing", 0, []byte("x"), ""), []byte("x")); got != "NOT_STORED\r\n" {
			t.Fatalf("append missing = %q", got)
		}
	})
}

// parseGetsCAS extracts the cas id from a gets response.
func parseGetsCAS(t *testing.T, resp string) uint64 {
	t.Helper()
	line := resp[:strings.Index(resp, "\r\n")]
	fields := strings.Fields(line)
	if len(fields) != 5 {
		t.Fatalf("gets header = %q", line)
	}
	id, err := strconv.ParseUint(fields[4], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCASSemantics(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		mustDo(t, c, FormatSet("k", []byte("v1"), 0))
		resp := doText(t, c, "gets k", nil)
		casid := parseGetsCAS(t, resp)

		// Matching cas id: swap succeeds.
		line := storeLine("cas", "k", 0, []byte("v2"), strconv.FormatUint(casid, 10))
		if got := doText(t, c, line, []byte("v2")); got != "STORED\r\n" {
			t.Fatalf("cas match = %q", got)
		}
		// Stale id: EXISTS.
		if got := doText(t, c, line, []byte("v3")); got != "EXISTS\r\n" {
			t.Fatalf("cas stale = %q", got)
		}
		// Missing key: NOT_FOUND.
		miss := storeLine("cas", "ghost", 0, []byte("x"), "1")
		if got := doText(t, c, miss, []byte("x")); got != "NOT_FOUND\r\n" {
			t.Fatalf("cas missing = %q", got)
		}
		// Malformed cas id.
		bad := storeLine("cas", "k", 0, []byte("x"), "notanumber")
		if got := doText(t, c, bad, []byte("x")); !strings.HasPrefix(got, "CLIENT_ERROR") {
			t.Fatalf("cas malformed = %q", got)
		}
		val, _, _ := ParseGetValue(mustDo(t, c, FormatGet("k")))
		if string(val) != "v2" {
			t.Fatalf("final = %q", val)
		}
	})
}

func TestTouchAndFlushAll(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		mustDo(t, c, FormatSet("a", []byte("1"), 0))
		mustDo(t, c, FormatSet("b", []byte("2"), 0))
		if got := doText(t, c, "touch a 100", nil); got != "TOUCHED\r\n" {
			t.Fatalf("touch = %q", got)
		}
		if got := doText(t, c, "touch ghost 100", nil); got != "NOT_FOUND\r\n" {
			t.Fatalf("touch missing = %q", got)
		}
		if got := doText(t, c, "flush_all", nil); got != "OK\r\n" {
			t.Fatalf("flush = %q", got)
		}
		for _, k := range []string{"a", "b"} {
			if got := mustDo(t, c, FormatGet(k)); string(got) != "END\r\n" {
				t.Fatalf("get %s after flush = %q", k, got)
			}
		}
		st := s.StorageStats()
		if st.Items != 0 {
			t.Errorf("items after flush = %d", st.Items)
		}
		// The store is still usable.
		mustDo(t, c, FormatSet("c", []byte("3"), 0))
		if _, _, ok := ParseGetValue(mustDo(t, c, FormatGet("c"))); !ok {
			t.Error("set after flush failed")
		}
	})
}

func TestCASIncrementsOnEveryStore(t *testing.T) {
	s := startServer(t, VariantVanilla, 1)
	c := s.NewConn()
	mustDo(t, c, FormatSet("k", []byte("v1"), 0))
	id1 := parseGetsCAS(t, doText(t, c, "gets k", nil))
	mustDo(t, c, FormatSet("k", []byte("v2"), 0))
	id2 := parseGetsCAS(t, doText(t, c, "gets k", nil))
	if id2 <= id1 {
		t.Errorf("cas ids not monotonic: %d then %d", id1, id2)
	}
}

func TestDeferredFlushAtomicity(t *testing.T) {
	// In the hardened build, flush_all is deferred to normal domain exit
	// like any other mutation; a flush inside an attacked request must
	// never apply.
	s := startServer(t, VariantSDRaD, 1)
	c := s.NewConn()
	mustDo(t, c, FormatSet("keep", []byte("me"), 0))
	// A request that would flush but is served normally: applies.
	if got := doText(t, c, "flush_all", nil); got != "OK\r\n" {
		t.Fatalf("flush = %q", got)
	}
	if got := mustDo(t, c, FormatGet("keep")); string(got) != "END\r\n" {
		t.Fatalf("keep survived flush: %q", got)
	}
}

func TestInlineModeMatchesChannelMode(t *testing.T) {
	// The RunInline fast path must serve exactly like the event loop.
	s := startServer(t, VariantSDRaD, 1)
	normal := s.NewConn()
	mustDo(t, normal, FormatSet("shared", []byte("via-channel"), 0))

	err := s.RunInline("bench", func(newConn func() *Conn, do InlineDo) error {
		c := newConn()
		resp, _, err := do(c, FormatGet("shared"))
		if err != nil {
			return err
		}
		val, _, ok := ParseGetValue(resp)
		if !ok || string(val) != "via-channel" {
			return fmt.Errorf("inline get = %q", resp)
		}
		if resp, _, err := do(c, FormatSet("inline", []byte("v"), 0)); err != nil || string(resp) != "STORED\r\n" {
			return fmt.Errorf("inline set = %q, %v", resp, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Data stored inline is visible through the normal path.
	if _, _, ok := ParseGetValue(mustDo(t, normal, FormatGet("inline"))); !ok {
		t.Error("inline store invisible to channel path")
	}
}

func TestInlineModeRecoversFromAttack(t *testing.T) {
	s := startServer(t, VariantSDRaD, 1)
	err := s.RunInline("bench", func(newConn func() *Conn, do InlineDo) error {
		evil := newConn()
		_, closed, err := do(evil, FormatBSet("atk", 16<<20, nil))
		if err != nil || !closed {
			return fmt.Errorf("attack: closed=%v err=%v", closed, err)
		}
		good := newConn()
		if resp, _, err := do(good, FormatSet("after", []byte("ok"), 0)); err != nil || string(resp) != "STORED\r\n" {
			return fmt.Errorf("post-attack set = %q, %v", resp, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rewinds() != 1 {
		t.Errorf("rewinds = %d", s.Rewinds())
	}
}

func TestNoreplySuppressesResponse(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		resp, closed, err := c.Do([]byte("set k 0 0 2 noreply\r\nhi\r\n"))
		if err != nil || closed {
			t.Fatalf("noreply set: closed=%v err=%v", closed, err)
		}
		if len(resp) != 0 {
			t.Fatalf("noreply produced output: %q", resp)
		}
		// The store happened.
		val, _, ok := ParseGetValue(mustDo(t, c, FormatGet("k")))
		if !ok || string(val) != "hi" {
			t.Fatalf("value = %q ok=%v", val, ok)
		}
		// delete noreply too.
		resp, _, err = c.Do([]byte("delete k noreply\r\n"))
		if err != nil || len(resp) != 0 {
			t.Fatalf("noreply delete: %q, %v", resp, err)
		}
		if got := mustDo(t, c, FormatGet("k")); string(got) != "END\r\n" {
			t.Fatalf("key survived noreply delete: %q", got)
		}
	})
}
