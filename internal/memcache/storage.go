// Package memcache is a faithful architectural port of Memcached used as
// the paper's first case study (§V-A): an in-memory key-value cache with
// a hash table, slab allocation, per-class LRU eviction, an event-driven
// request state machine (drive_machine), and worker threads.
//
// All cache state — buckets, slab pages, items, connection buffers —
// lives in the simulated address space, so a memory-safety bug in request
// handling corrupts (and faults in) simulated memory exactly as the real
// CVE-2011-4971 does in process memory.
//
// Three build variants reproduce the paper's comparison (Figure 4):
//
//   - VariantVanilla: the baseline, backed by a glibc-like first-fit
//     allocator (internal/galloc);
//   - VariantTLSF: identical but allocating from a TLSF heap, isolating
//     the cost of the allocator swap;
//   - VariantSDRaD: the hardened build, where every client event is
//     handled in a nested isolated domain on a deep copy of the
//     connection buffer, store operations are deferred to normal domain
//     exit, and a detected attack discards the domain and closes only
//     the offending connection.
package memcache

import (
	"errors"
	"fmt"
	"sync"

	"sdrad/internal/mem"
)

// Item header layout (all fields little-endian), followed by key bytes
// then value bytes:
//
//	+0:  next item in hash chain (Addr)
//	+8:  LRU next (Addr)
//	+16: LRU prev (Addr)
//	+24: key length
//	+32: value length
//	+40: user flags
//	+48: slab class index
//	+56: CAS unique id
//	+64: key bytes ... value bytes
const (
	itemOffNext   = 0
	itemOffLRUN   = 8
	itemOffLRUP   = 16
	itemOffKeyLen = 24
	itemOffValLen = 32
	itemOffFlags  = 40
	itemOffClass  = 48
	itemOffCAS    = 56
	itemHeader    = 64
)

// Slab geometry: chunk classes grow by factor 1.25 from 96 bytes, pages
// are 64 KiB, mirroring Memcached's defaults.
const (
	slabPageSize   = 64 * 1024
	smallestChunk  = 96
	growthFactorPc = 125 // percent
)

// Storage errors.
var (
	ErrValueTooLarge = errors.New("memcache: object too large for any slab class")
	ErrStoreFull     = errors.New("memcache: out of memory storing item")
	ErrKeyTooLong    = errors.New("memcache: key too long")
)

// MaxKeyLen matches Memcached's 250-byte key limit.
const MaxKeyLen = 250

// slabClass is one chunk-size class with its free list and LRU.
type slabClass struct {
	chunkSize uint64
	freeHead  mem.Addr // chain through first word of free chunks
	lruHead   mem.Addr // most recently used
	lruTail   mem.Addr // least recently used
	chunks    int
	used      int
}

// pageAlloc obtains backing pages for slabs and the bucket array, from
// the cache's pre-sized memory arena (Memcached's -m limit). The variant
// wiring decides where that arena lives: a plain mapping for the
// baselines, an SDRaD data domain for the hardened build.
type pageAlloc func(size uint64) (mem.Addr, error)

// Storage is the shared cache state: hash table + slabs + LRU. It is
// shared by all workers and guarded by a single mutex, like Memcached's
// cache_lock. In the SDRaD variant the mutex conceptually lives in its
// own shared data domain (paper §V-A); the Go mutex here is that domain's
// lock word.
type Storage struct {
	mu sync.Mutex

	buckets  mem.Addr
	nbuckets uint64
	classes  []slabClass
	alloc    pageAlloc

	// casCounter issues CAS unique ids (guarded by mu).
	casCounter uint64

	// Live statistics (guarded by mu).
	items     int
	bytes     uint64
	evictions int
	sets      int
	gets      int
	hits      int
}

// NewStorage builds the cache state: the bucket array is allocated
// immediately; slab pages are claimed on demand.
func NewStorage(c *mem.CPU, hashPower int, alloc pageAlloc) (*Storage, error) {
	if hashPower < 4 || hashPower > 26 {
		return nil, fmt.Errorf("memcache: hash power %d out of range", hashPower)
	}
	st := &Storage{
		nbuckets: 1 << uint(hashPower),
		alloc:    alloc,
	}
	b, err := alloc(st.nbuckets * 8)
	if err != nil {
		return nil, fmt.Errorf("memcache: allocating hash table: %w", err)
	}
	st.buckets = b
	c.Memset(b, 0, int(st.nbuckets*8))
	for sz := uint64(smallestChunk); sz <= slabPageSize; sz = sz * growthFactorPc / 100 {
		sz = (sz + 7) &^ 7
		st.classes = append(st.classes, slabClass{chunkSize: sz})
	}
	return st, nil
}

// classFor returns the index of the smallest class fitting need bytes.
func (st *Storage) classFor(need uint64) (int, error) {
	for i := range st.classes {
		if st.classes[i].chunkSize >= need {
			return i, nil
		}
	}
	return 0, ErrValueTooLarge
}

// hashKey is FNV-1a, as good as Memcached's default for this purpose.
func hashKey(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (st *Storage) bucketAddr(h uint64) mem.Addr {
	return st.buckets + mem.Addr((h%st.nbuckets)*8)
}

// grabChunk returns a free chunk of class ci, claiming a new slab page or
// evicting the class LRU tail when necessary.
func (st *Storage) grabChunk(c *mem.CPU, ci int) (mem.Addr, error) {
	cl := &st.classes[ci]
	if cl.freeHead == 0 {
		if page, err := st.alloc(slabPageSize); err == nil {
			// Carve the page into chunks, threading the free list.
			n := slabPageSize / cl.chunkSize
			for i := uint64(0); i < n; i++ {
				chunk := page + mem.Addr(i*cl.chunkSize)
				c.WriteAddr(chunk, cl.freeHead)
				cl.freeHead = chunk
			}
			cl.chunks += int(n)
		} else {
			// No memory: evict the least recently used item of this
			// class (Memcached's eviction policy).
			if cl.lruTail == 0 {
				return 0, ErrStoreFull
			}
			victim := cl.lruTail
			st.unlinkItem(c, victim)
			st.evictions++
		}
	}
	chunk := cl.freeHead
	cl.freeHead = c.ReadAddr(chunk)
	cl.used++
	return chunk, nil
}

// releaseChunk returns a chunk to its class free list.
func (st *Storage) releaseChunk(c *mem.CPU, ci int, chunk mem.Addr) {
	cl := &st.classes[ci]
	c.WriteAddr(chunk, cl.freeHead)
	cl.freeHead = chunk
	cl.used--
}

// itemKey reads an item's key.
func itemKey(c *mem.CPU, it mem.Addr) []byte {
	klen := c.ReadU64(it + itemOffKeyLen)
	return c.ReadBytes(it+itemHeader, int(klen))
}

// itemKeyEqual reports whether the item's key equals key, comparing page
// runs in place — the hash-chain walk allocates nothing.
func itemKeyEqual(c *mem.CPU, it mem.Addr, key []byte) bool {
	if c.ReadU64(it+itemOffKeyLen) != uint64(len(key)) {
		return false
	}
	addr := it + itemHeader
	for len(key) > 0 {
		run := c.ReadRun(addr, len(key))
		if string(run) != string(key[:len(run)]) {
			return false
		}
		key = key[len(run):]
		addr += mem.Addr(len(run))
	}
	return true
}

// itemValueAddr returns the address and length of an item's value.
func itemValueAddr(c *mem.CPU, it mem.Addr) (mem.Addr, int) {
	klen := c.ReadU64(it + itemOffKeyLen)
	vlen := c.ReadU64(it + itemOffValLen)
	return it + itemHeader + mem.Addr(klen), int(vlen)
}

// lruBump moves an item to the head of its class LRU.
func (st *Storage) lruBump(c *mem.CPU, it mem.Addr) {
	ci := int(c.ReadU64(it + itemOffClass))
	cl := &st.classes[ci]
	if cl.lruHead == it {
		return
	}
	st.lruUnlink(c, it)
	st.lruPush(c, it)
}

func (st *Storage) lruPush(c *mem.CPU, it mem.Addr) {
	ci := int(c.ReadU64(it + itemOffClass))
	cl := &st.classes[ci]
	c.WriteAddr(it+itemOffLRUN, cl.lruHead)
	c.WriteAddr(it+itemOffLRUP, 0)
	if cl.lruHead != 0 {
		c.WriteAddr(cl.lruHead+itemOffLRUP, it)
	}
	cl.lruHead = it
	if cl.lruTail == 0 {
		cl.lruTail = it
	}
}

func (st *Storage) lruUnlink(c *mem.CPU, it mem.Addr) {
	ci := int(c.ReadU64(it + itemOffClass))
	cl := &st.classes[ci]
	next := c.ReadAddr(it + itemOffLRUN)
	prev := c.ReadAddr(it + itemOffLRUP)
	if prev != 0 {
		c.WriteAddr(prev+itemOffLRUN, next)
	} else {
		cl.lruHead = next
	}
	if next != 0 {
		c.WriteAddr(next+itemOffLRUP, prev)
	} else {
		cl.lruTail = prev
	}
}

// hashUnlink removes an item from its hash chain.
func (st *Storage) hashUnlink(c *mem.CPU, it mem.Addr) {
	key := itemKey(c, it)
	ba := st.bucketAddr(hashKey(key))
	cur := c.ReadAddr(ba)
	if cur == it {
		c.WriteAddr(ba, c.ReadAddr(it+itemOffNext))
		return
	}
	for cur != 0 {
		next := c.ReadAddr(cur + itemOffNext)
		if next == it {
			c.WriteAddr(cur+itemOffNext, c.ReadAddr(it+itemOffNext))
			return
		}
		cur = next
	}
}

// unlinkItem fully removes an item (hash chain + LRU) and frees its chunk.
func (st *Storage) unlinkItem(c *mem.CPU, it mem.Addr) {
	st.hashUnlink(c, it)
	st.lruUnlink(c, it)
	vlen := c.ReadU64(it + itemOffValLen)
	klen := c.ReadU64(it + itemOffKeyLen)
	ci := int(c.ReadU64(it + itemOffClass))
	st.releaseChunk(c, ci, it)
	st.items--
	st.bytes -= itemHeader + klen + vlen
}

// Lookup finds an item by key, bumping its LRU position. The caller must
// hold the storage lock.
func (st *Storage) lookupLocked(c *mem.CPU, key []byte) mem.Addr {
	ba := st.bucketAddr(hashKey(key))
	it := c.ReadAddr(ba)
	for it != 0 {
		if itemKeyEqual(c, it, key) {
			return it
		}
		it = c.ReadAddr(it + itemOffNext)
	}
	return 0
}

// Get copies out the value and flags for key, or ok=false.
func (st *Storage) Get(c *mem.CPU, key []byte) (value []byte, flags uint32, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gets++
	it := st.lookupLocked(c, key)
	if it == 0 {
		return nil, 0, false
	}
	st.hits++
	st.lruBump(c, it)
	va, vlen := itemValueAddr(c, it)
	return c.ReadBytes(va, vlen), uint32(c.ReadU64(it + itemOffFlags)), true
}

// storeLocked writes a fresh item for key=value, unlinking any existing
// item first. Caller holds the lock. Returns the new CAS id.
func (st *Storage) storeLocked(c *mem.CPU, key, value []byte, flags uint32) (uint64, error) {
	need := uint64(itemHeader + len(key) + len(value))
	ci, err := st.classFor(need)
	if err != nil {
		return 0, err
	}
	if old := st.lookupLocked(c, key); old != 0 {
		st.unlinkItem(c, old)
	}
	it, err := st.grabChunk(c, ci)
	if err != nil {
		return 0, err
	}
	st.casCounter++
	c.WriteAddr(it+itemOffNext, 0)
	c.WriteAddr(it+itemOffLRUN, 0)
	c.WriteAddr(it+itemOffLRUP, 0)
	c.WriteU64(it+itemOffKeyLen, uint64(len(key)))
	c.WriteU64(it+itemOffValLen, uint64(len(value)))
	c.WriteU64(it+itemOffFlags, uint64(flags))
	c.WriteU64(it+itemOffClass, uint64(ci))
	c.WriteU64(it+itemOffCAS, st.casCounter)
	c.Write(it+itemHeader, key)
	c.Write(it+itemHeader+mem.Addr(len(key)), value)
	// Link: hash chain head + LRU head.
	ba := st.bucketAddr(hashKey(key))
	c.WriteAddr(it+itemOffNext, c.ReadAddr(ba))
	c.WriteAddr(ba, it)
	st.lruPush(c, it)
	st.items++
	st.bytes += need
	return st.casCounter, nil
}

// Set stores key=value, replacing any existing item.
func (st *Storage) Set(c *mem.CPU, key, value []byte, flags uint32) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sets++
	_, err := st.storeLocked(c, key, value, flags)
	return err
}

// StoreOutcome reports conditional-store results.
type StoreOutcome int

// Conditional-store outcomes.
const (
	// Stored: the mutation was applied.
	Stored StoreOutcome = iota + 1
	// NotStored: the existence precondition failed (add on present key,
	// replace/append/prepend on missing key).
	NotStored
	// CASMismatch: the item changed since the witnessed CAS id.
	CASMismatch
	// NotFoundOutcome: cas on a missing key.
	NotFoundOutcome
)

// Add stores only if the key does not exist (memcached add).
func (st *Storage) Add(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	if len(key) > MaxKeyLen {
		return NotStored, ErrKeyTooLong
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sets++
	if st.lookupLocked(c, key) != 0 {
		return NotStored, nil
	}
	if _, err := st.storeLocked(c, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// Replace stores only if the key exists (memcached replace).
func (st *Storage) Replace(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	if len(key) > MaxKeyLen {
		return NotStored, ErrKeyTooLong
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sets++
	if st.lookupLocked(c, key) == 0 {
		return NotStored, nil
	}
	if _, err := st.storeLocked(c, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// Concat appends (or prepends) data to an existing value.
func (st *Storage) Concat(c *mem.CPU, key, data []byte, prepend bool) (StoreOutcome, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sets++
	it := st.lookupLocked(c, key)
	if it == 0 {
		return NotStored, nil
	}
	va, vlen := itemValueAddr(c, it)
	old := c.ReadBytes(va, vlen)
	flags := uint32(c.ReadU64(it + itemOffFlags))
	var merged []byte
	if prepend {
		merged = append(append([]byte{}, data...), old...)
	} else {
		merged = append(append([]byte{}, old...), data...)
	}
	if _, err := st.storeLocked(c, key, merged, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// CAS stores only if the item's CAS id still matches casid.
func (st *Storage) CAS(c *mem.CPU, key, value []byte, flags uint32, casid uint64) (StoreOutcome, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sets++
	it := st.lookupLocked(c, key)
	if it == 0 {
		return NotFoundOutcome, nil
	}
	if c.ReadU64(it+itemOffCAS) != casid {
		return CASMismatch, nil
	}
	if _, err := st.storeLocked(c, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// GetWithCAS is Get plus the item's CAS id (memcached gets).
func (st *Storage) GetWithCAS(c *mem.CPU, key []byte) (value []byte, flags uint32, casid uint64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gets++
	it := st.lookupLocked(c, key)
	if it == 0 {
		return nil, 0, 0, false
	}
	st.hits++
	st.lruBump(c, it)
	va, vlen := itemValueAddr(c, it)
	return c.ReadBytes(va, vlen), uint32(c.ReadU64(it + itemOffFlags)), c.ReadU64(it + itemOffCAS), true
}

// Touch bumps an item's LRU position (expiry is not simulated).
func (st *Storage) Touch(c *mem.CPU, key []byte) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	it := st.lookupLocked(c, key)
	if it == 0 {
		return false
	}
	st.lruBump(c, it)
	return true
}

// FlushAll discards every item.
func (st *Storage) FlushAll(c *mem.CPU) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for ci := range st.classes {
		cl := &st.classes[ci]
		for cl.lruTail != 0 {
			st.unlinkItem(c, cl.lruTail)
		}
	}
}

// Delete removes key, reporting whether it existed.
func (st *Storage) Delete(c *mem.CPU, key []byte) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	it := st.lookupLocked(c, key)
	if it == 0 {
		return false
	}
	st.unlinkItem(c, it)
	return true
}

// StorageStats is a snapshot of cache statistics.
type StorageStats struct {
	Items     int
	Bytes     uint64
	Evictions int
	Sets      int
	Gets      int
	Hits      int
}

// Stats returns a snapshot of the cache statistics.
func (st *Storage) Stats() StorageStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StorageStats{
		Items:     st.items,
		Bytes:     st.bytes,
		Evictions: st.evictions,
		Sets:      st.sets,
		Gets:      st.gets,
		Hits:      st.hits,
	}
}
