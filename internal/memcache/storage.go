// Package memcache is a faithful architectural port of Memcached used as
// the paper's first case study (§V-A): an in-memory key-value cache with
// a hash table, slab allocation, per-class LRU eviction, an event-driven
// request state machine (drive_machine), and worker threads.
//
// All cache state — buckets, slab pages, items, connection buffers —
// lives in the simulated address space, so a memory-safety bug in request
// handling corrupts (and faults in) simulated memory exactly as the real
// CVE-2011-4971 does in process memory.
//
// Three build variants reproduce the paper's comparison (Figure 4):
//
//   - VariantVanilla: the baseline, backed by a glibc-like first-fit
//     allocator (internal/galloc);
//   - VariantTLSF: identical but allocating from a TLSF heap, isolating
//     the cost of the allocator swap;
//   - VariantSDRaD: the hardened build, where every client event is
//     handled in a nested isolated domain on a deep copy of the
//     connection buffer, store operations are deferred to normal domain
//     exit, and a detected attack discards the domain and closes only
//     the offending connection.
package memcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sdrad/internal/mem"
	"sdrad/internal/telemetry"
)

// Item header layout (all fields little-endian), followed by key bytes
// then value bytes:
//
//	+0:  next item in hash chain (Addr)
//	+8:  LRU next (Addr)
//	+16: LRU prev (Addr)
//	+24: key length
//	+32: value length
//	+40: user flags
//	+48: slab class index
//	+56: CAS unique id
//	+64: key bytes ... value bytes
const (
	itemOffNext   = 0
	itemOffLRUN   = 8
	itemOffLRUP   = 16
	itemOffKeyLen = 24
	itemOffValLen = 32
	itemOffFlags  = 40
	itemOffClass  = 48
	itemOffCAS    = 56
	itemHeader    = 64
)

// Slab geometry: chunk classes grow by factor 1.25 from 96 bytes, pages
// are 64 KiB, mirroring Memcached's defaults.
const (
	slabPageSize   = 64 * 1024
	smallestChunk  = 96
	growthFactorPc = 125 // percent
)

// Storage errors.
var (
	ErrValueTooLarge = errors.New("memcache: object too large for any slab class")
	ErrStoreFull     = errors.New("memcache: out of memory storing item")
	ErrKeyTooLong    = errors.New("memcache: key too long")
)

// MaxKeyLen matches Memcached's 250-byte key limit.
const MaxKeyLen = 250

// MaxShards bounds the shard count (and with it the per-shard bucket
// array fragmentation).
const MaxShards = 256

// slabClass is one chunk-size class with its free list and LRU.
type slabClass struct {
	chunkSize uint64
	freeHead  mem.Addr // chain through first word of free chunks
	lruHead   mem.Addr // most recently used
	lruTail   mem.Addr // least recently used
	chunks    int
	used      int
}

// pageAlloc obtains backing pages for slabs and the bucket array, from
// the cache's pre-sized memory arena (Memcached's -m limit). The variant
// wiring decides where that arena lives: a plain mapping for the
// baselines, an SDRaD data domain for the hardened build.
type pageAlloc func(size uint64) (mem.Addr, error)

// shard is one lock-striped slice of the cache: its own hash chains,
// slab classes, LRUs, CAS counter, and statistics, guarded by its own
// mutex. Keys hash-partition across shards, so two workers mutating
// different shards never contend — the sharded analog of Memcached's
// item_locks stripes replacing the old global cache_lock.
type shard struct {
	mu sync.Mutex

	buckets  mem.Addr
	nbuckets uint64
	classes  []slabClass
	alloc    pageAlloc

	// casCounter issues CAS unique ids (guarded by mu). Per-shard
	// counters stay correct because a key always maps to one shard, so
	// the per-key CAS sequence remains strictly monotonic.
	casCounter uint64

	// Live statistics (guarded by mu).
	items     int
	bytes     uint64
	evictions int
	sets      int
	gets      int
	hits      int

	// occ, when set, mirrors items into a telemetry gauge (shard
	// occupancy exposition).
	occ *telemetry.Gauge

	// Contention accounting (atomic — read lock-free by the scheduler's
	// rebalancer): nanoseconds spent waiting on contended acquisitions
	// of mu, and ops applied through the batch paths. waitC/opsC, when
	// set, mirror the counters into telemetry.
	waitNs   atomic.Int64
	batchOps atomic.Int64
	waitC    *telemetry.Counter
	opsC     *telemetry.Counter
}

// noteOccupancy publishes the shard's live item count to its gauge.
func (sh *shard) noteOccupancy() {
	if sh.occ != nil {
		sh.occ.Set(int64(sh.items))
	}
}

// Storage is the shared cache state: hash table + slabs + LRU, split
// into hash-partitioned lock-striped shards. In the SDRaD variant the
// shard mutexes conceptually live in the shared storage data domain
// (paper §V-A); the Go mutexes here are that domain's lock words.
type Storage struct {
	shards []*shard
	// shardMask is len(shards)-1; the shard count is a power of two so
	// selection is a mask of the high hash bits (the bucket index uses
	// the low bits — disjoint bit ranges keep the two choices
	// independent).
	shardMask uint64

	// Arena bounds for span-lease acceleration (SetArenaBounds). Zero
	// arenaLen keeps every operation on the checked accessors.
	arenaBase mem.Addr
	arenaLen  int

	// Slot remap state (see remap.go). remap == nil means the
	// indirection layer is off and shard selection is the legacy mask
	// arithmetic.
	remap       atomic.Pointer[remapTable]
	epoch       atomic.Uint64
	rebalanceMu sync.Mutex
	slotOps     []atomicInt64Pad
}

// atomicInt64Pad pads each per-slot op counter to its own cache line:
// adjacent slots are hot on every batch apply and must not false-share.
type atomicInt64Pad struct {
	v atomic.Int64
	_ [56]byte
}

// NewStorage builds the cache state: bucket arrays are allocated
// immediately (one per shard); slab pages are claimed on demand. shards
// must be a power of two in [1, MaxShards]; each shard receives an
// equal slice of the 1<<hashPower total buckets.
func NewStorage(c *mem.CPU, hashPower, shards int, alloc pageAlloc) (*Storage, error) {
	if hashPower < 4 || hashPower > 26 {
		return nil, fmt.Errorf("memcache: hash power %d out of range", hashPower)
	}
	if shards < 1 || shards > MaxShards || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("memcache: shard count %d not a power of two in [1, %d]", shards, MaxShards)
	}
	total := uint64(1) << uint(hashPower)
	per := total / uint64(shards)
	if per == 0 {
		per = 1
	}
	st := &Storage{shardMask: uint64(shards) - 1}
	for i := 0; i < shards; i++ {
		sh := &shard{nbuckets: per, alloc: alloc}
		b, err := alloc(per * 8)
		if err != nil {
			return nil, fmt.Errorf("memcache: allocating hash table shard %d: %w", i, err)
		}
		sh.buckets = b
		c.Memset(b, 0, int(per*8))
		for sz := uint64(smallestChunk); sz <= slabPageSize; sz = sz * growthFactorPc / 100 {
			sz = (sz + 7) &^ 7
			sh.classes = append(sh.classes, slabClass{chunkSize: sz})
		}
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// SetArenaBounds registers the contiguous memory arena all cache state
// lives in, enabling the span-lease fast path: each exported operation
// verifies (or O(1)-renews) one lease over the whole arena and then runs
// its chain walks and header accesses on native memory. Without bounds
// every access stays on the checked per-access accessors.
func (st *Storage) SetArenaBounds(base mem.Addr, size uint64) {
	st.arenaBase = base
	st.arenaLen = int(size)
}

// Shards returns the shard count.
func (st *Storage) Shards() int { return len(st.shards) }

// setOccupancyGauge attaches a telemetry gauge mirroring shard si's
// live item count.
func (st *Storage) setOccupancyGauge(si int, g *telemetry.Gauge) {
	sh := st.shards[si]
	sh.mu.Lock()
	sh.occ = g
	sh.noteOccupancy()
	sh.mu.Unlock()
}

// ShardFor returns the shard index key maps to: the high 32 hash bits
// select the shard (via the remap table when enabled), the low bits
// (used by bucketAddr) select the bucket within it — disjoint bit
// ranges keep the two choices independent.
func (st *Storage) ShardFor(key []byte) int {
	return st.shardIndexFor(hashKey(key))
}

// classFor returns the index of the smallest class fitting need bytes.
func (sh *shard) classFor(need uint64) (int, error) {
	for i := range sh.classes {
		if sh.classes[i].chunkSize >= need {
			return i, nil
		}
	}
	return 0, ErrValueTooLarge
}

// hashKey is FNV-1a, as good as Memcached's default for this purpose.
func hashKey(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (sh *shard) bucketAddr(h uint64) mem.Addr {
	return sh.buckets + mem.Addr((h%sh.nbuckets)*8)
}

// grabChunk returns a free chunk of class ci, claiming a new slab page or
// evicting the class LRU tail when necessary.
func (sh *shard) grabChunk(v sview, ci int) (mem.Addr, error) {
	cl := &sh.classes[ci]
	if cl.freeHead == 0 {
		if page, err := sh.alloc(slabPageSize); err == nil {
			// Carve the page into chunks, threading the free list.
			n := slabPageSize / cl.chunkSize
			for i := uint64(0); i < n; i++ {
				chunk := page + mem.Addr(i*cl.chunkSize)
				v.putAddr(chunk, cl.freeHead)
				cl.freeHead = chunk
			}
			cl.chunks += int(n)
		} else {
			// No memory: evict the least recently used item of this
			// class (Memcached's eviction policy).
			if cl.lruTail == 0 {
				return 0, ErrStoreFull
			}
			victim := cl.lruTail
			sh.unlinkItem(v, victim)
			sh.evictions++
		}
	}
	chunk := cl.freeHead
	cl.freeHead = v.addr(chunk)
	cl.used++
	return chunk, nil
}

// releaseChunk returns a chunk to its class free list.
func (sh *shard) releaseChunk(v sview, ci int, chunk mem.Addr) {
	cl := &sh.classes[ci]
	v.putAddr(chunk, cl.freeHead)
	cl.freeHead = chunk
	cl.used--
}

// itemKey reads an item's key.
func itemKey(v sview, it mem.Addr) []byte {
	klen := v.u64(it + itemOffKeyLen)
	return v.readBytes(it+itemHeader, int(klen))
}

// itemKeyEqual reports whether the item's key equals key, comparing in
// place — the hash-chain walk allocates nothing.
func itemKeyEqual(v sview, it mem.Addr, key []byte) bool {
	if v.u64(it+itemOffKeyLen) != uint64(len(key)) {
		return false
	}
	addr := it + itemHeader
	if o, ok := v.off(addr, len(key)); ok {
		return bytes.Equal(v.w[o:o+uint64(len(key))], key)
	}
	for len(key) > 0 {
		run := v.c.ReadRun(addr, len(key))
		if string(run) != string(key[:len(run)]) {
			return false
		}
		key = key[len(run):]
		addr += mem.Addr(len(run))
	}
	return true
}

// itemValueAddr returns the address and length of an item's value.
func itemValueAddr(v sview, it mem.Addr) (mem.Addr, int) {
	klen := v.u64(it + itemOffKeyLen)
	vlen := v.u64(it + itemOffValLen)
	return it + itemHeader + mem.Addr(klen), int(vlen)
}

// lruBump moves an item to the head of its class LRU.
func (sh *shard) lruBump(v sview, it mem.Addr) {
	ci := int(v.u64(it + itemOffClass))
	cl := &sh.classes[ci]
	if cl.lruHead == it {
		return
	}
	sh.lruUnlink(v, it)
	sh.lruPush(v, it)
}

func (sh *shard) lruPush(v sview, it mem.Addr) {
	ci := int(v.u64(it + itemOffClass))
	cl := &sh.classes[ci]
	v.putAddr(it+itemOffLRUN, cl.lruHead)
	v.putAddr(it+itemOffLRUP, 0)
	if cl.lruHead != 0 {
		v.putAddr(cl.lruHead+itemOffLRUP, it)
	}
	cl.lruHead = it
	if cl.lruTail == 0 {
		cl.lruTail = it
	}
}

func (sh *shard) lruUnlink(v sview, it mem.Addr) {
	ci := int(v.u64(it + itemOffClass))
	cl := &sh.classes[ci]
	next := v.addr(it + itemOffLRUN)
	prev := v.addr(it + itemOffLRUP)
	if prev != 0 {
		v.putAddr(prev+itemOffLRUN, next)
	} else {
		cl.lruHead = next
	}
	if next != 0 {
		v.putAddr(next+itemOffLRUP, prev)
	} else {
		cl.lruTail = prev
	}
}

// hashUnlink removes an item from its hash chain.
func (sh *shard) hashUnlink(v sview, it mem.Addr) {
	key := itemKey(v, it)
	ba := sh.bucketAddr(hashKey(key))
	cur := v.addr(ba)
	if cur == it {
		v.putAddr(ba, v.addr(it+itemOffNext))
		return
	}
	for cur != 0 {
		next := v.addr(cur + itemOffNext)
		if next == it {
			v.putAddr(cur+itemOffNext, v.addr(it+itemOffNext))
			return
		}
		cur = next
	}
}

// unlinkItem fully removes an item (hash chain + LRU) and frees its chunk.
func (sh *shard) unlinkItem(v sview, it mem.Addr) {
	sh.hashUnlink(v, it)
	sh.lruUnlink(v, it)
	vlen := v.u64(it + itemOffValLen)
	klen := v.u64(it + itemOffKeyLen)
	ci := int(v.u64(it + itemOffClass))
	sh.releaseChunk(v, ci, it)
	sh.items--
	sh.bytes -= itemHeader + klen + vlen
	sh.noteOccupancy()
}

// lookupLocked finds an item by key within the shard. The caller must
// hold the shard lock.
func (sh *shard) lookupLocked(v sview, key []byte) mem.Addr {
	ba := sh.bucketAddr(hashKey(key))
	it := v.addr(ba)
	for it != 0 {
		if itemKeyEqual(v, it, key) {
			return it
		}
		it = v.addr(it + itemOffNext)
	}
	return 0
}

// Get copies out the value and flags for key, or ok=false.
func (st *Storage) Get(c *mem.CPU, key []byte) (value []byte, flags uint32, ok bool) {
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	return sh.getLocked(v, key)
}

func (sh *shard) getLocked(v sview, key []byte) (value []byte, flags uint32, ok bool) {
	sh.gets++
	it := sh.lookupLocked(v, key)
	if it == 0 {
		return nil, 0, false
	}
	sh.hits++
	sh.lruBump(v, it)
	va, vlen := itemValueAddr(v, it)
	return v.readBytes(va, vlen), uint32(v.u64(it + itemOffFlags)), true
}

// AppendGet appends key's value to dst under the shard lock, returning
// the extended slice plus flags, CAS id, and presence. It is the
// copy-once read the zero-copy reply assembly builds on: the value goes
// straight from cache memory into the caller's reply scratch, with no
// intermediate allocation.
func (st *Storage) AppendGet(c *mem.CPU, key, dst []byte, withCAS bool) ([]byte, uint32, uint64, bool) {
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	sh.gets++
	it := sh.lookupLocked(v, key)
	if it == 0 {
		return dst, 0, 0, false
	}
	sh.hits++
	sh.lruBump(v, it)
	va, vlen := itemValueAddr(v, it)
	dst = v.appendBytes(dst, va, vlen)
	flags := uint32(v.u64(it + itemOffFlags))
	var casid uint64
	if withCAS {
		casid = v.u64(it + itemOffCAS)
	}
	return dst, flags, casid, true
}

// storeLocked writes a fresh item for key=value, unlinking any existing
// item first. Caller holds the shard lock. Returns the new CAS id.
func (sh *shard) storeLocked(v sview, key, value []byte, flags uint32) (uint64, error) {
	return sh.storeNewLocked(v, key, value, flags, 0)
}

// storeNewLocked is storeLocked with an explicit CAS id: cas == 0 issues
// a fresh id from the shard counter once the chunk is secured (the
// normal store path); a nonzero cas is written verbatim (slot migration
// re-homing an item with its identity intact).
func (sh *shard) storeNewLocked(v sview, key, value []byte, flags uint32, cas uint64) (uint64, error) {
	need := uint64(itemHeader + len(key) + len(value))
	ci, err := sh.classFor(need)
	if err != nil {
		return 0, err
	}
	if old := sh.lookupLocked(v, key); old != 0 {
		sh.unlinkItem(v, old)
	}
	it, err := sh.grabChunk(v, ci)
	if err != nil {
		return 0, err
	}
	if cas == 0 {
		sh.casCounter++
		cas = sh.casCounter
	}
	v.putAddr(it+itemOffNext, 0)
	v.putAddr(it+itemOffLRUN, 0)
	v.putAddr(it+itemOffLRUP, 0)
	v.putU64(it+itemOffKeyLen, uint64(len(key)))
	v.putU64(it+itemOffValLen, uint64(len(value)))
	v.putU64(it+itemOffFlags, uint64(flags))
	v.putU64(it+itemOffClass, uint64(ci))
	v.putU64(it+itemOffCAS, cas)
	v.write(it+itemHeader, key)
	v.write(it+itemHeader+mem.Addr(len(key)), value)
	// Link: hash chain head + LRU head.
	ba := sh.bucketAddr(hashKey(key))
	v.putAddr(it+itemOffNext, v.addr(ba))
	v.putAddr(ba, it)
	sh.lruPush(v, it)
	sh.items++
	sh.bytes += need
	sh.noteOccupancy()
	return cas, nil
}

func (sh *shard) setLocked(v sview, key, value []byte, flags uint32) error {
	sh.sets++
	_, err := sh.storeLocked(v, key, value, flags)
	return err
}

// Set stores key=value, replacing any existing item.
func (st *Storage) Set(c *mem.CPU, key, value []byte, flags uint32) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	return sh.setLocked(v, key, value, flags)
}

// StoreOutcome reports conditional-store results.
type StoreOutcome int

// Conditional-store outcomes.
const (
	// Stored: the mutation was applied.
	Stored StoreOutcome = iota + 1
	// NotStored: the existence precondition failed (add on present key,
	// replace/append/prepend on missing key).
	NotStored
	// CASMismatch: the item changed since the witnessed CAS id.
	CASMismatch
	// NotFoundOutcome: cas on a missing key.
	NotFoundOutcome
)

// Add stores only if the key does not exist (memcached add).
func (st *Storage) Add(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	if len(key) > MaxKeyLen {
		return NotStored, ErrKeyTooLong
	}
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	sh.sets++
	if sh.lookupLocked(v, key) != 0 {
		return NotStored, nil
	}
	if _, err := sh.storeLocked(v, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// Replace stores only if the key exists (memcached replace).
func (st *Storage) Replace(c *mem.CPU, key, value []byte, flags uint32) (StoreOutcome, error) {
	if len(key) > MaxKeyLen {
		return NotStored, ErrKeyTooLong
	}
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	sh.sets++
	if sh.lookupLocked(v, key) == 0 {
		return NotStored, nil
	}
	if _, err := sh.storeLocked(v, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// Concat appends (or prepends) data to an existing value.
func (st *Storage) Concat(c *mem.CPU, key, data []byte, prepend bool) (StoreOutcome, error) {
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	sh.sets++
	it := sh.lookupLocked(v, key)
	if it == 0 {
		return NotStored, nil
	}
	va, vlen := itemValueAddr(v, it)
	old := v.readBytes(va, vlen)
	flags := uint32(v.u64(it + itemOffFlags))
	var merged []byte
	if prepend {
		merged = append(append([]byte{}, data...), old...)
	} else {
		merged = append(append([]byte{}, old...), data...)
	}
	if _, err := sh.storeLocked(v, key, merged, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// CAS stores only if the item's CAS id still matches casid.
func (st *Storage) CAS(c *mem.CPU, key, value []byte, flags uint32, casid uint64) (StoreOutcome, error) {
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	sh.sets++
	it := sh.lookupLocked(v, key)
	if it == 0 {
		return NotFoundOutcome, nil
	}
	if v.u64(it+itemOffCAS) != casid {
		return CASMismatch, nil
	}
	if _, err := sh.storeLocked(v, key, value, flags); err != nil {
		return NotStored, err
	}
	return Stored, nil
}

// GetWithCAS is Get plus the item's CAS id (memcached gets).
func (st *Storage) GetWithCAS(c *mem.CPU, key []byte) (value []byte, flags uint32, casid uint64, ok bool) {
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	sh.gets++
	it := sh.lookupLocked(v, key)
	if it == 0 {
		return nil, 0, 0, false
	}
	sh.hits++
	sh.lruBump(v, it)
	va, vlen := itemValueAddr(v, it)
	return v.readBytes(va, vlen), uint32(v.u64(it + itemOffFlags)), v.u64(it + itemOffCAS), true
}

// Touch bumps an item's LRU position (expiry is not simulated).
func (st *Storage) Touch(c *mem.CPU, key []byte) bool {
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	it := sh.lookupLocked(v, key)
	if it == 0 {
		return false
	}
	sh.lruBump(v, it)
	return true
}

// FlushAll discards every item, shard by shard. Shards are flushed in
// order under their own locks — there is no cross-shard invariant that
// needs an all-shards critical section.
func (st *Storage) FlushAll(c *mem.CPU) {
	v := st.view(c)
	for _, sh := range st.shards {
		sh.mu.Lock()
		sh.flushLocked(v)
		sh.mu.Unlock()
	}
}

func (sh *shard) flushLocked(v sview) {
	for ci := range sh.classes {
		cl := &sh.classes[ci]
		for cl.lruTail != 0 {
			sh.unlinkItem(v, cl.lruTail)
		}
	}
}

// Delete removes key, reporting whether it existed.
func (st *Storage) Delete(c *mem.CPU, key []byte) bool {
	v := st.view(c)
	sh := st.lockShard(hashKey(key))
	defer sh.mu.Unlock()
	return sh.deleteLocked(v, key)
}

func (sh *shard) deleteLocked(v sview, key []byte) bool {
	it := sh.lookupLocked(v, key)
	if it == 0 {
		return false
	}
	sh.unlinkItem(v, it)
	return true
}

// BatchOp is one deferred mutation applied by ApplyShardBatch. Ops for
// one shard are grouped at apply time so a whole batch takes each shard
// lock at most once.
type BatchOp struct {
	// Delete removes Key; otherwise the op stores Key=Value with Flags.
	Delete bool
	Key    []byte
	Value  []byte
	Flags  uint32
}

// ApplyShardBatch applies ops — all of which must map to shard si —
// under a single acquisition of that shard's lock, preserving op order.
// The first store error aborts the remainder (matching the sequential
// semantics of applying the ops one by one) and is returned.
func (st *Storage) ApplyShardBatch(c *mem.CPU, si int, ops []BatchOp) error {
	sh := st.shards[si]
	v := st.view(c)
	sh.lockMeasured()
	defer sh.mu.Unlock()
	sh.noteBatchOps(int64(len(ops)))
	for _, op := range ops {
		if op.Delete {
			sh.deleteLocked(v, op.Key)
			continue
		}
		if len(op.Key) > MaxKeyLen {
			return ErrKeyTooLong
		}
		if err := sh.setLocked(v, op.Key, op.Value, op.Flags); err != nil {
			return err
		}
	}
	return nil
}

// StorageStats is a snapshot of cache statistics, summed across shards.
type StorageStats struct {
	Items     int
	Bytes     uint64
	Evictions int
	Sets      int
	Gets      int
	Hits      int
}

// Stats returns a snapshot of the cache statistics (summed over shards;
// each shard is snapshotted under its own lock, so the total is a
// consistent per-shard composition, not a global atomic snapshot —
// exactly the fidelity Memcached's own threadlocal stats offer).
func (st *Storage) Stats() StorageStats {
	var out StorageStats
	for _, sh := range st.shards {
		sh.mu.Lock()
		out.Items += sh.items
		out.Bytes += sh.bytes
		out.Evictions += sh.evictions
		out.Sets += sh.sets
		out.Gets += sh.gets
		out.Hits += sh.hits
		sh.mu.Unlock()
	}
	return out
}

// ShardStats returns the per-shard Items/Bytes breakdown, for the shard
// occupancy telemetry gauges.
func (st *Storage) ShardStats() []StorageStats {
	out := make([]StorageStats, len(st.shards))
	for i, sh := range st.shards {
		sh.mu.Lock()
		out[i] = StorageStats{
			Items:     sh.items,
			Bytes:     sh.bytes,
			Evictions: sh.evictions,
			Sets:      sh.sets,
			Gets:      sh.gets,
			Hits:      sh.hits,
		}
		sh.mu.Unlock()
	}
	return out
}
