package memcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sdrad/internal/proc"
	"sdrad/internal/sched"
	"sdrad/internal/telemetry"
)

// startRouteServer builds a hardened server with a caller-chosen
// scheduler config (route/steal knobs under test).
func startRouteServer(t testing.TB, workers int, cfg sched.Config) (*Server, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.New(telemetry.Options{})
	s, err := NewServer(Config{
		Variant:    VariantSDRaD,
		Workers:    workers,
		HashPower:  10,
		CacheBytes: 4 << 20,
		Telemetry:  rec,
		Sched:      &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, rec
}

// parkWorkerAt blocks worker idx inside a control event until released.
func parkWorkerAt(t *testing.T, s *Server, idx int) (release func()) {
	t.Helper()
	parked := make(chan struct{})
	releaseCh := make(chan struct{})
	go func() {
		_ = s.inspectOn(idx, func(*proc.Thread) error {
			close(parked)
			<-releaseCh
			return nil
		})
	}()
	<-parked
	return func() { close(releaseCh) }
}

// waitDepthAt polls until worker idx holds at least n queued events.
func waitDepthAt(t *testing.T, s *Server, idx, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth(idx) < n {
		if time.Now().After(deadline) {
			t.Fatalf("worker %d queue stuck at %d events, want %d", idx, s.QueueDepth(idx), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestRouteOffKeepsLegacyRoundRobinPlacement(t *testing.T) {
	// Without Route — scheduler off entirely, or on without the flag —
	// NewConn must walk the legacy round-robin cursor bit-identically.
	plain, _ := startTelServer(t, VariantSDRaD, 3)
	for i := 0; i < 7; i++ {
		if got := plain.NewConn().WorkerIndex(); got != i%3 {
			t.Fatalf("sched-off conn %d pinned to worker %d, want %d", i, got, i%3)
		}
	}
	schedOn, _ := startRouteServer(t, 3, sched.Config{})
	for i := 0; i < 7; i++ {
		if got := schedOn.NewConn().WorkerIndex(); got != i%3 {
			t.Fatalf("route-off conn %d pinned to worker %d, want %d", i, got, i%3)
		}
	}
	if schedOn.workers[0].stealch != nil {
		t.Fatal("steal-off worker has a steal queue")
	}
}

func TestRoutePlacementAvoidsBackloggedWorker(t *testing.T) {
	s, _ := startRouteServer(t, 2, sched.Config{Route: true})
	// Idle cluster: the scorer's tie-break reproduces round-robin.
	if a, b := s.NewConn().WorkerIndex(), s.NewConn().WorkerIndex(); a != 0 || b != 1 {
		t.Fatalf("idle placement = %d,%d, want 0,1", a, b)
	}
	// Park worker 0 and stage keyed backlog on it (identity bias: even
	// shards → worker 0).
	release := parkWorkerAt(t, s, 0)
	keys := keysForShard(t, s, 0, 3, "route-bl")
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			c := &Conn{id: -1, w: s.workers[0]}
			if _, _, err := c.Do(FormatSet(k, []byte("v"), 0)); err != nil {
				t.Errorf("staged set %q: %v", k, err)
			}
		}(k)
	}
	waitDepthAt(t, s, 0, len(keys))
	// Every new connection now lands on the calm worker 1, regardless of
	// where the tie cursor sits.
	for i := 0; i < 5; i++ {
		if got := s.NewConn().WorkerIndex(); got != 1 {
			t.Fatalf("conn %d placed on backlogged worker %d, want 1", i, got)
		}
	}
	release()
	wg.Wait()
}

func TestStealServesVictimBacklogWhileParked(t *testing.T) {
	s, _ := startRouteServer(t, 2, sched.Config{
		Route:         true,
		Steal:         true,
		IdleRounds:    1,
		StealInterval: 100 * time.Microsecond,
	})
	// Park both workers: the victim stays parked for the whole test, the
	// thief only while the backlog is staged (so the steal sizes are
	// deterministic).
	releaseVictim := parkWorkerAt(t, s, 0)
	releaseThief := parkWorkerAt(t, s, 1)

	keys := keysForShard(t, s, 0, 4, "steal-bl")
	results := make(chan error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			c := &Conn{id: -1, w: s.workers[0]}
			resp, closed, err := c.Do(FormatSet(k, []byte("stolen-ok"), 0))
			if err == nil && (closed || string(resp) != "STORED\r\n") {
				err = fmt.Errorf("set %q: %q closed=%v", k, resp, closed)
			}
			results <- err
		}(k)
		waitDepthAt(t, s, 0, i+1)
	}
	if got := len(s.workers[0].stealch); got != len(keys) {
		t.Fatalf("staged %d steal-eligible events, want %d on stealch", got, len(keys))
	}

	// Release the thief: it collapses to the floor over idle ticks and
	// then steals — 4 pending → take 2, then 2 → take 1, then 1 pending
	// is latency, not backlog, and stays for the victim.
	releaseThief()
	for i := 0; i < len(keys)-1; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d stolen responses arrived while the victim was parked", i)
		}
	}
	if got := s.Steals(); got != 2 {
		t.Errorf("steal rounds = %d, want 2", got)
	}
	if got := s.StolenEvents(); got != 3 {
		t.Errorf("stolen events = %d, want 3", got)
	}
	// One same-shard group per round: 2 segments.
	if got := s.StealSegments(); got != 2 {
		t.Errorf("steal segments = %d, want 2", got)
	}

	// The victim still owns the last event.
	releaseVictim()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Stolen writes committed to the shared database.
	c := s.NewConn()
	for _, k := range keys {
		val, _, ok := ParseGetValue(mustDo(t, c, FormatGet(k)))
		if !ok || string(val) != "stolen-ok" {
			t.Errorf("stolen write %q = %q %v, want committed", k, val, ok)
		}
	}
	if got := s.Rewinds(); got != 0 {
		t.Errorf("rewinds = %d during clean stealing, want 0", got)
	}
}

func TestStealFaultDiscardsOnlyStolenSegment(t *testing.T) {
	s, rec := startRouteServer(t, 2, sched.Config{
		Route:         true,
		Steal:         true,
		IdleRounds:    1,
		StealInterval: 100 * time.Microsecond,
	})
	releaseVictim := parkWorkerAt(t, s, 0)
	releaseThief := parkWorkerAt(t, s, 1)

	// Six events on the victim, staged in order: a trap and an innocent
	// on shard 0, then four innocents on shard 2 (both shards biased to
	// worker 0). The thief takes half: {trap, innocentA, innocentB0} —
	// two shard segments, the fault in the first.
	trapKey := keysForShard(t, s, 0, 1, "atk")[0]
	innocentA := keysForShard(t, s, 0, 1, "innoc-a")[0]
	bKeys := keysForShard(t, s, 2, 4, "innoc-b")

	type outcome struct {
		key    string
		resp   []byte
		closed bool
		err    error
	}
	outcomes := make(chan outcome, 6)
	stage := func(i int, key string, req []byte) {
		go func() {
			c := &Conn{id: -1, w: s.workers[0]}
			resp, closed, err := c.Do(req)
			outcomes <- outcome{key: key, resp: resp, closed: closed, err: err}
		}()
		waitDepthAt(t, s, 0, i+1)
	}
	stage(0, trapKey, FormatBSet(trapKey, 16<<20, []byte("payload")))
	stage(1, innocentA, FormatSet(innocentA, []byte("discarded"), 0))
	for i, k := range bKeys {
		stage(2+i, k, FormatSet(k, []byte("landed"), 0))
	}

	rewinds0 := s.Rewinds()
	releaseThief()

	// Three stolen outcomes arrive while the victim is parked: the trap
	// and innocentA closed by the rewind, bKeys[0] committed.
	got := map[string]outcome{}
	for i := 0; i < 3; i++ {
		select {
		case o := <-outcomes:
			got[o.key] = o
		case <-time.After(5 * time.Second):
			t.Fatalf("stolen outcome %d never arrived", i)
		}
	}
	if o, ok := got[trapKey]; !ok || !o.closed {
		t.Fatalf("trap outcome = %+v, want closed by rewind", o)
	}
	if o, ok := got[innocentA]; !ok || !o.closed {
		t.Fatalf("same-segment innocent outcome = %+v, want closed with its segment", o)
	}
	if o, ok := got[bKeys[0]]; !ok || o.closed || string(o.resp) != "STORED\r\n" {
		t.Fatalf("other-segment stolen outcome = %+v, want committed", o)
	}
	// Exactly one rewind, one forensics report; the thief's window is
	// hot, so it stops stealing — the remaining backlog belongs to the
	// victim.
	if got := s.Rewinds() - rewinds0; got != 1 {
		t.Errorf("rewinds = %d, want 1 (only the stolen segment)", got)
	}
	if reports := rec.Forensics().Reports(); len(reports) != 1 {
		t.Fatalf("forensics reports = %d, want exactly 1", len(reports))
	}
	if got := s.Steals(); got != 1 {
		t.Errorf("steal rounds = %d, want 1 (hot window stops the thief)", got)
	}
	if snap := s.SchedSnapshots()[1]; snap.WindowRewinds != 1 {
		t.Errorf("thief window rewinds = %d, want 1", snap.WindowRewinds)
	}

	// The victim's remaining batches commit untouched.
	releaseVictim()
	for i := 0; i < 3; i++ {
		select {
		case o := <-outcomes:
			if o.err != nil || o.closed || string(o.resp) != "STORED\r\n" {
				t.Fatalf("victim outcome %+v, want committed", o)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("victim outcome never arrived")
		}
	}
	c := s.NewConn()
	if _, _, ok := ParseGetValue(mustDo(t, c, FormatGet(innocentA))); ok {
		t.Error("write from the faulting stolen segment leaked into the database")
	}
	for _, k := range bKeys {
		val, _, ok := ParseGetValue(mustDo(t, c, FormatGet(k)))
		if !ok || string(val) != "landed" {
			t.Errorf("innocent write %q = %q %v, want committed", k, val, ok)
		}
	}
}
