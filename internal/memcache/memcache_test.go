package memcache

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
)

// startServer builds a server with small test-sized defaults.
func startServer(t testing.TB, variant Variant, workers int) *Server {
	t.Helper()
	s, err := NewServer(Config{
		Variant:    variant,
		Workers:    workers,
		HashPower:  10,
		CacheBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// allVariants runs a subtest per variant.
func allVariants(t *testing.T, fn func(t *testing.T, v Variant)) {
	for _, v := range []Variant{VariantVanilla, VariantTLSF, VariantSDRaD} {
		t.Run(v.String(), func(t *testing.T) { fn(t, v) })
	}
}

func mustDo(t *testing.T, c *Conn, req []byte) []byte {
	t.Helper()
	resp, closed, err := c.Do(req)
	if err != nil {
		t.Fatalf("Do(%q): %v", bytes.TrimRight(req[:min(len(req), 40)], "\r\n"), err)
	}
	if closed {
		t.Fatalf("Do(%q): connection closed", req[:min(len(req), 40)])
	}
	return resp
}

func TestSetGetDeleteAllVariants(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 2)
		c := s.NewConn()

		if got := mustDo(t, c, FormatSet("alpha", []byte("value-1"), 7)); string(got) != "STORED\r\n" {
			t.Fatalf("set resp = %q", got)
		}
		resp := mustDo(t, c, FormatGet("alpha"))
		val, flags, ok := ParseGetValue(resp)
		if !ok || string(val) != "value-1" || flags != 7 {
			t.Fatalf("get resp = %q (ok=%v val=%q flags=%d)", resp, ok, val, flags)
		}
		if got := mustDo(t, c, FormatGet("missing")); string(got) != "END\r\n" {
			t.Fatalf("miss resp = %q", got)
		}
		if got := mustDo(t, c, FormatDelete("alpha")); string(got) != "DELETED\r\n" {
			t.Fatalf("delete resp = %q", got)
		}
		if got := mustDo(t, c, FormatDelete("alpha")); string(got) != "NOT_FOUND\r\n" {
			t.Fatalf("re-delete resp = %q", got)
		}
		if got := mustDo(t, c, FormatGet("alpha")); string(got) != "END\r\n" {
			t.Fatalf("get after delete = %q", got)
		}
	})
}

func TestOverwriteAndMultiGet(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		mustDo(t, c, FormatSet("k1", []byte("v1"), 0))
		mustDo(t, c, FormatSet("k2", []byte("v2"), 0))
		mustDo(t, c, FormatSet("k1", []byte("v1-new"), 0))
		resp := mustDo(t, c, []byte("get k1 k2\r\n"))
		text := string(resp)
		if !strings.Contains(text, "v1-new") || !strings.Contains(text, "v2") {
			t.Fatalf("multi-get = %q", text)
		}
		if strings.Count(text, "VALUE") != 2 {
			t.Fatalf("expected 2 values: %q", text)
		}
	})
}

func TestIncrDecr(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		mustDo(t, c, FormatSet("n", []byte("10"), 0))
		if got := mustDo(t, c, []byte("incr n 5\r\n")); string(got) != "15\r\n" {
			t.Fatalf("incr = %q", got)
		}
		if got := mustDo(t, c, []byte("decr n 20\r\n")); string(got) != "0\r\n" {
			t.Fatalf("decr floor = %q", got)
		}
		if got := mustDo(t, c, []byte("incr missing 1\r\n")); string(got) != "NOT_FOUND\r\n" {
			t.Fatalf("incr missing = %q", got)
		}
		mustDo(t, c, FormatSet("s", []byte("abc"), 0))
		if got := mustDo(t, c, []byte("incr s 1\r\n")); !strings.HasPrefix(string(got), "CLIENT_ERROR") {
			t.Fatalf("incr non-numeric = %q", got)
		}
	})
}

func TestProtocolErrors(t *testing.T) {
	s := startServer(t, VariantVanilla, 1)
	c := s.NewConn()
	for _, req := range []string{
		"bogus\r\n",
		"get\r\n",
		"set onlykey\r\n",
		"set k x 0 4\r\nabcd\r\n",
		"delete\r\n",
		"incr n\r\n",
		"\r\n",
	} {
		resp, _, err := c.Do([]byte(req))
		if err != nil {
			t.Fatalf("%q: %v", req, err)
		}
		text := string(resp)
		if !strings.HasPrefix(text, "ERROR") && !strings.HasPrefix(text, "CLIENT_ERROR") {
			t.Errorf("%q -> %q, want an error response", req, text)
		}
	}
	// Unterminated command line.
	resp, _, err := c.Do([]byte("set without newline"))
	if err != nil || !strings.HasPrefix(string(resp), "ERROR") {
		t.Errorf("unterminated = %q, %v", resp, err)
	}
}

func TestStatsAndVersion(t *testing.T) {
	s := startServer(t, VariantSDRaD, 1)
	c := s.NewConn()
	mustDo(t, c, FormatSet("a", []byte("1"), 0))
	mustDo(t, c, FormatGet("a"))
	resp := string(mustDo(t, c, []byte("stats\r\n")))
	if !strings.Contains(resp, "STAT curr_items 1") {
		t.Errorf("stats = %q", resp)
	}
	if !strings.Contains(string(mustDo(t, c, []byte("version\r\n"))), "VERSION") {
		t.Error("no version")
	}
}

func TestQuitClosesConnection(t *testing.T) {
	s := startServer(t, VariantVanilla, 1)
	c := s.NewConn()
	_, closed, err := c.Do([]byte("quit\r\n"))
	if err != nil || !closed {
		t.Fatalf("quit: closed=%v err=%v", closed, err)
	}
	_, closed, err = c.Do(FormatGet("x"))
	if !closed || !errors.Is(err, ErrConnClosed) {
		t.Fatalf("post-quit: closed=%v err=%v", closed, err)
	}
}

func TestLargeValuesAndEviction(t *testing.T) {
	s, err := NewServer(Config{
		Variant:     VariantTLSF,
		Workers:     1,
		HashPower:   8,
		CacheBytes:  1 << 20,    // small: force eviction
		ConnBufSize: 128 * 1024, // large enough to carry the oversized value
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := s.NewConn()
	val := bytes.Repeat([]byte("x"), 4096)
	for i := 0; i < 600; i++ { // ~2.4 MiB through a 1 MiB cache
		key := fmt.Sprintf("key-%04d", i)
		resp := mustDo(t, c, FormatSet(key, val, 0))
		if string(resp) != "STORED\r\n" {
			t.Fatalf("set %d = %q", i, resp)
		}
	}
	st := s.StorageStats()
	if st.Evictions == 0 {
		t.Error("no evictions despite cache pressure")
	}
	// Recent keys are present.
	resp := mustDo(t, c, FormatGet("key-0599"))
	if _, _, ok := ParseGetValue(resp); !ok {
		t.Error("most recent key evicted")
	}
	// Value too large for any slab class.
	huge := bytes.Repeat([]byte("y"), 80*1024)
	if string(mustDo(t, c, FormatSet("huge", huge, 0)))[:12] != "SERVER_ERROR" {
		t.Error("oversized value accepted")
	}
}

func TestCVE2011_4971_BaselineCrashes(t *testing.T) {
	// The unhardened build dies: one malicious request kills the whole
	// process and takes every other client with it (paper §V-A).
	s := startServer(t, VariantVanilla, 2)
	good := s.NewConn()
	mustDo(t, good, FormatSet("persist", []byte("data"), 0))

	evil := s.NewConn()
	_, _, err := evil.Do(FormatBSet("atk", 16<<20, []byte("payload")))
	if err == nil {
		t.Fatal("malicious request succeeded")
	}
	crashed, cause := s.Crashed()
	if !crashed {
		t.Fatal("process survived; expected crash")
	}
	t.Logf("baseline crash cause: %v", cause)
	// All other connections are dead.
	_, _, err = good.Do(FormatGet("persist"))
	if !errors.Is(err, ErrServerDown) {
		t.Errorf("other client err = %v, want ErrServerDown", err)
	}
}

func TestCVE2011_4971_SDRaDRewinds(t *testing.T) {
	// The hardened build recovers: the attack is confined to the event
	// domain, the domain is discarded, only the malicious connection is
	// closed, and data stored by other clients remains intact.
	s := startServer(t, VariantSDRaD, 2)
	good := s.NewConn()
	mustDo(t, good, FormatSet("persist", []byte("survives"), 0))

	evil := s.NewConn()
	resp, closed, err := evil.Do(FormatBSet("atk", 16<<20, []byte("payload")))
	if err != nil {
		t.Fatalf("attack request transport error: %v", err)
	}
	if !closed {
		t.Fatalf("attacker connection not closed (resp %q)", resp)
	}
	if s.Rewinds() != 1 {
		t.Errorf("rewinds = %d", s.Rewinds())
	}
	if crashed, cause := s.Crashed(); crashed {
		t.Fatalf("hardened server crashed: %v", cause)
	}

	// Other clients keep working; stored data intact.
	got := mustDo(t, good, FormatGet("persist"))
	val, _, ok := ParseGetValue(got)
	if !ok || string(val) != "survives" {
		t.Errorf("data after attack = %q", got)
	}
	// The server keeps accepting new work, including on the same worker.
	c2 := s.NewConn()
	mustDo(t, c2, FormatSet("after", []byte("attack"), 0))
	if _, _, ok := ParseGetValue(mustDo(t, c2, FormatGet("after"))); !ok {
		t.Error("set after attack failed")
	}
}

func TestRepeatedAttacksKeepRecovering(t *testing.T) {
	s := startServer(t, VariantSDRaD, 1)
	for i := 0; i < 5; i++ {
		evil := s.NewConn()
		_, closed, err := evil.Do(FormatBSet("atk", 16<<20, nil))
		if err != nil || !closed {
			t.Fatalf("attack %d: closed=%v err=%v", i, closed, err)
		}
		// Normal operation between attacks.
		c := s.NewConn()
		key := fmt.Sprintf("k%d", i)
		mustDo(t, c, FormatSet(key, []byte("v"), 0))
	}
	if s.Rewinds() != 5 {
		t.Errorf("rewinds = %d", s.Rewinds())
	}
	if crashed, _ := s.Crashed(); crashed {
		t.Error("server crashed")
	}
}

func TestDeferredUpdateAtomicity(t *testing.T) {
	// A request that stores data and then triggers the attack must not
	// leave the partial store visible: the deferred update dies with the
	// domain (paper: "due to the atomic nature of the Memcached
	// requests, consistency is not affected").
	s := startServer(t, VariantSDRaD, 1)
	evil := s.NewConn()
	// bset stores the key only after the vulnerable copy; the overflow
	// happens first, so the store must never appear.
	_, closed, _ := evil.Do(FormatBSet("half-stored", 16<<20, []byte("payload")))
	if !closed {
		t.Fatal("attack not detected")
	}
	c := s.NewConn()
	resp := mustDo(t, c, FormatGet("half-stored"))
	if _, _, ok := ParseGetValue(resp); ok {
		t.Error("partial store leaked into the database")
	}
}

func TestBSetWithHonestLengthWorks(t *testing.T) {
	// The binary-set path itself is functional when the header is
	// truthful and within bounds.
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 1)
		c := s.NewConn()
		data := []byte("honest-data")
		if got := mustDo(t, c, FormatBSet("bk", len(data), data)); string(got) != "STORED\r\n" {
			t.Fatalf("bset = %q", got)
		}
		val, _, ok := ParseGetValue(mustDo(t, c, FormatGet("bk")))
		if !ok || string(val) != "honest-data" {
			t.Fatalf("bset round trip = %q", val)
		}
	})
}

func TestConcurrentClients(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		s := startServer(t, v, 4)
		done := make(chan error, 8)
		for g := 0; g < 8; g++ {
			go func(g int) {
				c := s.NewConn()
				for i := 0; i < 50; i++ {
					key := fmt.Sprintf("g%d-k%d", g, i)
					if _, _, err := c.Do(FormatSet(key, []byte(key), 0)); err != nil {
						done <- err
						return
					}
					resp, _, err := c.Do(FormatGet(key))
					if err != nil {
						done <- err
						return
					}
					if val, _, ok := ParseGetValue(resp); !ok || string(val) != key {
						done <- fmt.Errorf("g%d: bad value %q", g, val)
						return
					}
				}
				done <- nil
			}(g)
		}
		for g := 0; g < 8; g++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		st := s.StorageStats()
		if st.Items != 400 {
			t.Errorf("items = %d, want 400", st.Items)
		}
	})
}

func TestServeListenerTCPRoundTrip(t *testing.T) {
	s := startServer(t, VariantSDRaD, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeListener(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nc.Close() }()
	if _, err := nc.Write(FormatSet("tcp-key", []byte("tcp-val"), 0)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := nc.Read(buf)
	if err != nil || string(buf[:n]) != "STORED\r\n" {
		t.Fatalf("set over tcp = %q, %v", buf[:n], err)
	}
	if _, err := nc.Write(FormatGet("tcp-key")); err != nil {
		t.Fatal(err)
	}
	n, err = nc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if val, _, ok := ParseGetValue(buf[:n]); !ok || string(val) != "tcp-val" {
		t.Fatalf("get over tcp = %q", buf[:n])
	}
}

func TestMappedBytesGrowsWithData(t *testing.T) {
	s := startServer(t, VariantSDRaD, 1)
	if s.MappedBytes() == 0 {
		t.Error("no mapped memory")
	}
}

func TestRequestTooLarge(t *testing.T) {
	s := startServer(t, VariantVanilla, 1)
	c := s.NewConn()
	big := FormatSet("k", bytes.Repeat([]byte("z"), 64*1024), 0)
	_, _, err := c.Do(big)
	if !errors.Is(err, ErrRequestTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestVariantString(t *testing.T) {
	if VariantVanilla.String() != "vanilla" || VariantTLSF.String() != "tlsf" ||
		VariantSDRaD.String() != "sdrad" || Variant(9).String() != "unknown" {
		t.Error("Variant.String broken")
	}
}
