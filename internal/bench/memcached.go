package bench

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"sdrad/internal/ckpt"
	"sdrad/internal/memcache"
	"sdrad/internal/telemetry"
	"sdrad/internal/ycsb"
)

// memcacheDB adapts one memcache connection to the YCSB DB interface.
type memcacheDB struct {
	conn *memcache.Conn
}

var errUnexpected = errors.New("bench: unexpected memcached response")

func (d *memcacheDB) Insert(key string, value []byte) error {
	resp, _, err := d.conn.Do(memcache.FormatSet(key, value, 0))
	if err != nil {
		return err
	}
	if !bytes.Equal(resp, []byte("STORED\r\n")) {
		return fmt.Errorf("%w: %q", errUnexpected, resp)
	}
	return nil
}

func (d *memcacheDB) Read(key string) error {
	resp, _, err := d.conn.Do(memcache.FormatGet(key))
	if err != nil {
		return err
	}
	if _, _, ok := memcache.ParseGetValue(resp); !ok {
		return fmt.Errorf("%w: miss", errUnexpected)
	}
	return nil
}

func (d *memcacheDB) Update(key string, value []byte) error { return d.Insert(key, value) }

// memcachedServer builds a server sized for the YCSB scale. The Figure-4
// harness drives the engine through inline worker threads, so the server
// itself needs only one event-loop worker regardless of the measured
// parallelism (each live worker thread pins a protection key; 8 inline
// plus 8 idle event loops would exhaust the 15 keys).
func memcachedServer(variant memcache.Variant, _ int, sc Scale) (*memcache.Server, error) {
	return memcachedServerTel(variant, sc, nil)
}

// memcachedServerTel is memcachedServer with an optional telemetry
// recorder attached to the server's library, for the telemetry-overhead
// cells.
func memcachedServerTel(variant memcache.Variant, sc Scale, rec *telemetry.Recorder) (*memcache.Server, error) {
	return memcache.NewServer(memcache.Config{
		Variant:    variant,
		Workers:    1,
		HashPower:  15,
		CacheBytes: uint64(sc.MemcachedRecords)*1536 + 8<<20,
		Telemetry:  rec,
	})
}

// inlineDo issues one request through an inline worker and validates the
// response for the YCSB op kind.
func inlineSet(do memcache.InlineDo, conn *memcache.Conn, key string, value []byte) error {
	resp, _, err := do(conn, memcache.FormatSet(key, value, 0))
	if err != nil {
		return err
	}
	if !bytes.Equal(resp, []byte("STORED\r\n")) {
		return fmt.Errorf("%w: %q", errUnexpected, resp)
	}
	return nil
}

func inlineGet(do memcache.InlineDo, conn *memcache.Conn, key string) error {
	resp, _, err := do(conn, memcache.FormatGet(key))
	if err != nil {
		return err
	}
	if _, _, ok := memcache.ParseGetValue(resp); !ok {
		return fmt.Errorf("%w: miss", errUnexpected)
	}
	return nil
}

// runMemcachedYCSB measures one (variant, workers) cell of Figure 4.
// Each worker is an inline closed-loop client-server thread: the YCSB op
// stream executes directly on the worker thread with no event-channel hop
// (on the single-core machines this repository targets, the channel
// rendezvous contributes more scheduler noise than the variant difference
// being measured). Contention on the shared cache lock across workers is
// preserved — that is the real serialization point, as in Memcached.
func runMemcachedYCSB(variant memcache.Variant, workers int, sc Scale) (load, run ycsb.Stats, err error) {
	return runMemcachedYCSBTel(variant, workers, sc, nil)
}

// runMemcachedYCSBTel is runMemcachedYCSB with an optional telemetry
// recorder attached, for measuring the enabled-recorder overhead.
func runMemcachedYCSBTel(variant memcache.Variant, workers int, sc Scale, rec *telemetry.Recorder) (load, run ycsb.Stats, err error) {
	// Level the Go-runtime playing field between cells: each cell
	// allocates tens of MiB of simulated pages, and carried-over GC debt
	// otherwise taxes whichever cell runs next.
	runtime.GC()
	s, err := memcachedServerTel(variant, sc, rec)
	if err != nil {
		return load, run, err
	}
	defer s.Stop()
	runner, err := ycsb.NewRunner(ycsb.Config{
		Records:    sc.MemcachedRecords,
		Operations: sc.MemcachedOps,
	})
	if err != nil {
		return load, run, err
	}
	cfg := runner.Config()

	load, err = inlineLoadPhase(s, workers, cfg)
	if err != nil {
		return load, run, err
	}
	run, err = inlineRunPhase(s, workers, runner)
	return load, run, err
}

// inlinePhase fans the op range out over one inline worker thread each and
// reports aggregate throughput over the barrier-to-last-finish wall time
// plus the process CPU the phase consumed.
func inlinePhase(s *memcache.Server, workers int, name string, total int,
	op func(do memcache.InlineDo, conn *memcache.Conn, rng *rand.Rand, i int) error) (ycsb.Stats, error) {
	startGate := make(chan struct{})
	readyCh := make(chan error, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			started := false
			err := s.RunInline(fmt.Sprintf("%s-%d", name, w), func(newConn func() *memcache.Conn, do memcache.InlineDo) error {
				conn := newConn()
				rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
				started = true
				readyCh <- nil
				<-startGate
				lo, hi := w*total/workers, (w+1)*total/workers
				for i := lo; i < hi; i++ {
					if err := op(do, conn, rng, i); err != nil {
						return err
					}
				}
				return nil
			})
			if !started {
				// The worker failed before reaching the gate (e.g.
				// provisioning error): unblock the coordinator.
				readyCh <- err
			}
			errs <- err
		}(w)
	}
	var firstErr error
	for i := 0; i < workers; i++ {
		if err := <-readyCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	cpu0 := ycsb.ProcessCPUSeconds()
	start := time.Now()
	close(startGate)
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	elapsed := time.Since(start)
	cpu := ycsb.ProcessCPUSeconds() - cpu0
	if firstErr != nil {
		return ycsb.Stats{}, firstErr
	}
	return ycsb.Stats{
		Phase:      name,
		Operations: total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
		CPUSeconds: cpu,
	}, nil
}

// inlineLoadPhase populates the keyspace through inline workers.
func inlineLoadPhase(s *memcache.Server, workers int, cfg ycsb.Config) (ycsb.Stats, error) {
	return inlinePhase(s, workers, "load", cfg.Records,
		func(do memcache.InlineDo, conn *memcache.Conn, rng *rand.Rand, i int) error {
			return inlineSet(do, conn, ycsb.Key(i), ycsb.Value(i, cfg.ValueSize))
		})
}

// inlineRunPhase issues one full transaction phase through inline workers.
// Each call draws a fresh identically-seeded key chooser, so repeated run
// phases against the same server replay the same op stream — what lets
// the telemetry-overhead measurement compare arms on one server instance.
func inlineRunPhase(s *memcache.Server, workers int, runner *ycsb.Runner) (ycsb.Stats, error) {
	cfg := runner.Config()
	chooser := runner.KeyChooser()
	return inlinePhase(s, workers, "run", cfg.Operations,
		func(do memcache.InlineDo, conn *memcache.Conn, rng *rand.Rand, i int) error {
			idx := chooser(rng)
			if rng.Float64() < cfg.ReadProportion {
				return inlineGet(do, conn, ycsb.Key(idx))
			}
			return inlineSet(do, conn, ycsb.Key(idx), ycsb.Value(idx, cfg.ValueSize))
		})
}

// medianMemcachedYCSB repeats a cell and keeps the run with the median
// run-phase throughput, damping scheduler noise.
func medianMemcachedYCSB(variant memcache.Variant, workers, repeats int, sc Scale) (ycsb.Stats, ycsb.Stats, error) {
	type sample struct{ load, run ycsb.Stats }
	samples := make([]sample, 0, repeats)
	for i := 0; i < repeats; i++ {
		load, run, err := runMemcachedYCSB(variant, workers, sc)
		if err != nil {
			return load, run, err
		}
		samples = append(samples, sample{load, run})
	}
	sort.Slice(samples, func(i, j int) bool {
		return samples[i].run.Throughput < samples[j].run.Throughput
	})
	mid := samples[len(samples)/2]
	return mid.load, mid.run, nil
}

// Fig4MemcachedThroughput regenerates Figure 4: YCSB load/run throughput
// of the three Memcached builds across worker counts.
func Fig4MemcachedThroughput(sc Scale, workerCounts []int) (*Table, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	t := &Table{
		ID:     "Fig.4",
		Title:  "Memcached YCSB throughput by variant and worker threads",
		Header: []string{"workers", "variant", "load tput", "run tput", "load vs vanilla", "run vs vanilla"},
		Notes: []string{
			fmt.Sprintf("workload: %d records x 1KiB, %d ops, 95/5 read/update, Zipfian (paper: 1e7/1e8)", sc.MemcachedRecords, sc.MemcachedOps),
			"paper: TLSF <1%; SDRaD 2.9-7.1% overhead depending on worker count",
		},
	}
	repeats := 5
	if sc.MemcachedOps <= Quick.MemcachedOps {
		repeats = 1
	} else {
		// Stretch the run phase like measureMemcachedOverhead does: at the
		// stock full scale it lasts well under a second, so one GC pause
		// moves a cell by ~10%. 4x the ops averages those events out.
		sc.MemcachedOps *= 4
	}
	t.Notes[0] = fmt.Sprintf("workload: %d records x 1KiB, %d ops, 95/5 read/update, Zipfian (paper: 1e7/1e8)", sc.MemcachedRecords, sc.MemcachedOps)
	for _, workers := range workerCounts {
		var baseLoad, baseRun float64
		for _, v := range []memcache.Variant{memcache.VariantVanilla, memcache.VariantTLSF, memcache.VariantSDRaD} {
			load, run, err := medianMemcachedYCSB(v, workers, repeats, sc)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s/%d: %w", v, workers, err)
			}
			if v == memcache.VariantVanilla {
				baseLoad, baseRun = load.Throughput, run.Throughput
			}
			t.AddRow(
				fmt.Sprintf("%d", workers),
				v.String(),
				fmtTput(load.Throughput),
				fmtTput(run.Throughput),
				fmtPct(load.Throughput, baseLoad),
				fmtPct(run.Throughput, baseRun),
			)
		}
	}
	return t, nil
}

// MemcachedRewindLatency regenerates the §V-A recovery comparison:
// SDRaD's abnormal-exit latency versus restarting the server and
// reloading its dataset, with the CRIU-style checkpoint/restore costs as
// an extra reference point.
func MemcachedRewindLatency(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Tab.V-A",
		Title:  "Memcached recovery: rewind vs restart+reload vs checkpoint/restore",
		Header: []string{"mechanism", "mean", "stddev", "state preserved"},
		Notes: []string{
			"paper: rewind 3.5µs (σ=0.9µs); container restart ~0.4s; restart+10GiB reload ~2min",
			fmt.Sprintf("reload here rebuilds %d records of 1KiB", sc.MemcachedRecords),
		},
	}

	// Rewind latency on the hardened build (CVE-2011-4971 analog).
	s, err := memcachedServer(memcache.VariantSDRaD, 1, sc)
	if err != nil {
		return nil, err
	}
	samples := make([]time.Duration, 0, sc.RewindTrials)
	for i := 0; i < sc.RewindTrials; i++ {
		evil := s.NewConn()
		start := time.Now()
		_, closed, err := evil.Do(memcache.FormatBSet("atk", 64<<20, nil))
		lat := time.Since(start)
		if err != nil || !closed {
			s.Stop()
			return nil, fmt.Errorf("bench: attack %d not recovered (closed=%v err=%v)", i, closed, err)
		}
		samples = append(samples, lat)
	}
	if got := s.Rewinds(); got != int64(sc.RewindTrials) {
		s.Stop()
		return nil, fmt.Errorf("bench: rewinds = %d, want %d", got, sc.RewindTrials)
	}
	mean, std := meanStd(samples)
	t.AddRow("SDRaD rewind (per attack)", fmtDur(mean), fmtDur(std), "all other clients + full cache")

	// Checkpoint/restore on the loaded server.
	if err := loadRecords(s, sc.MemcachedRecords); err != nil {
		s.Stop()
		return nil, err
	}
	img := ckpt.Capture(s.Process().AddressSpace())
	_, restoreDur, err := img.Restore()
	if err != nil {
		s.Stop()
		return nil, err
	}
	t.AddRow("checkpoint capture (CRIU-style)", fmtDur(img.CaptureCost()), "-",
		fmt.Sprintf("full image: %d pages", img.Pages()))
	t.AddRow("checkpoint restore", fmtDur(restoreDur), "-", "state as of last checkpoint")
	s.Stop()

	// Restart + reload: build a fresh server and reload every record.
	restartSamples := make([]time.Duration, 0, 3)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fresh, err := memcachedServer(memcache.VariantSDRaD, 1, sc)
		if err != nil {
			return nil, err
		}
		if err := loadRecords(fresh, sc.MemcachedRecords); err != nil {
			fresh.Stop()
			return nil, err
		}
		restartSamples = append(restartSamples, time.Since(start))
		fresh.Stop()
	}
	rmean, rstd := meanStd(restartSamples)
	t.AddRow("restart + reload dataset", fmtDur(rmean), fmtDur(rstd), "nothing (cold start)")
	return t, nil
}

// loadRecords fills a server with n YCSB-style records.
func loadRecords(s *memcache.Server, n int) error {
	conn := s.NewConn()
	for i := 0; i < n; i++ {
		resp, _, err := conn.Do(memcache.FormatSet(ycsb.Key(i), ycsb.Value(i, 1024), 0))
		if err != nil {
			return err
		}
		if !bytes.Equal(resp, []byte("STORED\r\n")) {
			return fmt.Errorf("bench: load set failed: %q", resp)
		}
	}
	return nil
}

// MemcachedMemoryOverhead regenerates the §V-A RSS comparison: mapped
// bytes after the YCSB load phase, SDRaD vs baseline.
func MemcachedMemoryOverhead(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Tab.V-A-mem",
		Title:  "Memcached memory overhead after load (mapped bytes, RSS analog)",
		Header: []string{"variant", "mapped", "vs vanilla"},
		Notes:  []string{"paper: mean RSS increase 0.4% for SDRaD"},
	}
	var base float64
	for _, v := range []memcache.Variant{memcache.VariantVanilla, memcache.VariantTLSF, memcache.VariantSDRaD} {
		s, err := memcachedServer(v, 1, sc)
		if err != nil {
			return nil, err
		}
		if err := loadRecords(s, sc.MemcachedRecords); err != nil {
			s.Stop()
			return nil, err
		}
		mapped := float64(s.MappedBytes())
		if v == memcache.VariantVanilla {
			base = mapped
		}
		t.AddRow(v.String(), fmt.Sprintf("%.1f MiB", mapped/(1<<20)), fmtPct(mapped, base))
		s.Stop()
	}
	return t, nil
}
