package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRecovery(t *testing.T) {
	rep, tbl, err := RunRecovery(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != recoverySchema || rep.CalibrationNs <= 0 {
		t.Errorf("schema %q calibration %v", rep.Schema, rep.CalibrationNs)
	}
	if rep.RewindWallNs <= 0 || rep.RestartWallNs <= 0 {
		t.Errorf("wall costs = %v/%v, want > 0", rep.RewindWallNs, rep.RestartWallNs)
	}
	// The resilience claim itself: rewinding a domain must be much
	// cheaper than restarting the process and reloading the dataset —
	// even at tiny scale the gap is well past the CI floor.
	if rep.WallRatio < recoveryRatioFloor {
		t.Errorf("wall ratio = %.2fx, want >= %.0fx", rep.WallRatio, recoveryRatioFloor)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	for _, want := range []string{"Recovery", "rewind", "restart", "wall/recovery"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRecoveryBaselineRoundTrip(t *testing.T) {
	rep := &RecoveryReport{
		Schema:        recoverySchema,
		CalibrationNs: 2.0,
		Records:       100,
		Cycles:        8,
		RewindWallNs:  50_000,
		RestartWallNs: 5_000_000,
		RewindCPUSec:  0.0001,
		RestartCPUSec: 0.01,
		WallRatio:     100,
		CPURatio:      100,
	}
	path := filepath.Join(t.TempDir(), "recovery.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	base, err := LoadRecoveryBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.RewindWallNs != 50_000 || base.CalibrationNs != 2.0 || base.WallRatio != 100 {
		t.Errorf("round trip lost data: %+v", base)
	}

	// Identical report passes the gate.
	if err := rep.CheckAgainst(base); err != nil {
		t.Errorf("identical report failed gate: %v", err)
	}

	// Ratio collapse fails regardless of baseline.
	bad := *rep
	bad.WallRatio = recoveryRatioFloor - 0.5
	if err := bad.CheckAgainst(base); err == nil {
		t.Error("ratio below floor passed the gate")
	}

	// Rewind-cost blowup beyond tolerance fails.
	slow := *rep
	slow.RewindWallNs = rep.RewindWallNs * (1 + (recoveryTolerancePct+50)/100)
	if err := slow.CheckAgainst(base); err == nil {
		t.Error("rewind cost regression passed the gate")
	}

	// The same blowup on a proportionally slower machine passes: the
	// baseline is rescaled by the calibration ratio.
	slow.CalibrationNs = base.CalibrationNs * (1 + (recoveryTolerancePct+50)/100)
	if err := slow.CheckAgainst(base); err != nil {
		t.Errorf("speed-adjusted cost failed the gate: %v", err)
	}
}
