package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"sdrad/internal/memcache"
)

// Parity measurement: how close the hardened server runs to vanilla.
//
// The throughput grid (RunThroughput) answers "did a change slow the
// server down"; the parity harness answers the paper's Figure-4 question
// — "what does the isolation itself cost" — as a per-cell sdrad/vanilla
// ratio. Ratios are far more noise-sensitive than absolute cells on a
// shared single-core runner: two medians measured minutes apart can
// differ by 20% from scheduler drift alone. So parity runs the two
// variants back-to-back inside each round, alternating which goes first,
// and reports the MEDIAN OF PAIRED RATIOS rather than the ratio of two
// independent medians. Pairing cancels the slow drift (thermal, page
// cache, background load) that dominates this machine's variance; only
// the seconds-scale jitter within a round survives into the spread.

// ParityReport captures the paired ratio per cell.
type ParityReport struct {
	Schema        string  `json:"schema"`
	CalibrationNs float64 `json:"calibration_ns"`
	Rounds        int     `json:"rounds"`
	Records       int     `json:"records"`
	Operations    int     `json:"operations"`
	// Ratio maps "w8_d16"-style cell names to the median paired
	// sdrad/vanilla throughput ratio (1.0 = parity).
	Ratio map[string]float64 `json:"ratio"`
	// Vanilla/SDRaD record the per-cell median absolute throughputs of
	// the same paired runs (informational).
	Vanilla map[string]float64 `json:"vanilla"`
	SDRaD   map[string]float64 `json:"sdrad"`
}

// paritySchema versions the JSON layout.
const paritySchema = "sdrad-parity-bench/v1"

// ParityFloor is the ratio the committed baseline's headline cell
// (workers=8, depth=16 — the deepest batching the server amortizes) must
// clear: within 3% of vanilla. It is asserted against the checked-in
// BENCH_throughput.json, which makes the CI gate deterministic — the
// recorded numbers either clear the floor or the recording may not be
// committed.
const ParityFloor = 0.97

// ParityHeadlineWorkers/Depth name the gated cell.
const (
	ParityHeadlineWorkers = 8
	ParityHeadlineDepth   = 16
)

// parityCell names one ratio cell ("w8_d16").
func parityCell(workers, depth int) string {
	return fmt.Sprintf("w%d_d%d", workers, depth)
}

// ParityRatio returns the sdrad/vanilla throughput ratio of one cell of a
// throughput report, or false when the cell is missing. When the report
// recorded a median paired ratio for the cell (RunThroughput has since the
// paired-harness unification), that estimator is returned; dividing the
// two median cells is the fallback for pre-parity baselines.
func (r *ThroughputReport) ParityRatio(workers, depth int) (float64, bool) {
	if ratio, ok := r.ParityRatios[parityCell(workers, depth)]; ok && ratio > 0 {
		return ratio, true
	}
	van := r.RunTput[throughputCell(memcache.VariantVanilla, workers, depth)]
	sd := r.RunTput[throughputCell(memcache.VariantSDRaD, workers, depth)]
	if van <= 0 || sd <= 0 {
		return 0, false
	}
	return sd / van, true
}

// CheckParityFloor asserts that the report's (workers, depth) cell holds
// an sdrad/vanilla ratio of at least floor. Run against the committed
// baseline it is exact and deterministic; run against a live report it
// gates with whatever slack the caller chose for the machine's noise.
func (r *ThroughputReport) CheckParityFloor(workers, depth int, floor float64) error {
	ratio, ok := r.ParityRatio(workers, depth)
	if !ok {
		return fmt.Errorf("bench: parity: report has no w%d d%d cells", workers, depth)
	}
	if ratio < floor {
		return fmt.Errorf("bench: parity: sdrad w%d d%d runs at %.3fx vanilla, floor is %.2fx",
			workers, depth, ratio, floor)
	}
	return nil
}

// medianOf returns the median of a copy of xs.
func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// pairedCell measures one cell as `rounds` back-to-back (vanilla, sdrad)
// pairs, alternating which variant runs first so warm-up favors neither,
// and returns the median ratio plus the median absolute throughputs.
func pairedCell(workers, depth, rounds int, sc Scale, ops int) (ratio, van, sd float64, err error) {
	ratios := make([]float64, 0, rounds)
	vans := make([]float64, 0, rounds)
	sds := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		var v, s float64
		if r%2 == 0 {
			if v, err = channelYCSB(memcache.VariantVanilla, workers, depth, sc, ops); err == nil {
				s, err = channelYCSB(memcache.VariantSDRaD, workers, depth, sc, ops)
			}
		} else {
			if s, err = channelYCSB(memcache.VariantSDRaD, workers, depth, sc, ops); err == nil {
				v, err = channelYCSB(memcache.VariantVanilla, workers, depth, sc, ops)
			}
		}
		if err != nil {
			return 0, 0, 0, err
		}
		ratios = append(ratios, s/v)
		vans = append(vans, v)
		sds = append(sds, s)
	}
	return medianOf(ratios), medianOf(vans), medianOf(sds), nil
}

// RunParity measures the sdrad/vanilla parity ratio across the worker ×
// depth grid with paired runs, returning the machine-readable report and
// a printable table. liveFloor > 0 additionally gates the measured
// headline-cell ratio (a loose tripwire for live CI runs; the strict
// ParityFloor belongs to the committed baseline, which is noise-free).
func RunParity(sc Scale, workerCounts, depths []int, liveFloor float64) (*ParityReport, *Table, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 8}
	}
	if len(depths) == 0 {
		depths = []int{1, 16}
	}
	ops := sc.MemcachedOps
	rounds := 5
	if sc.MemcachedOps <= Quick.MemcachedOps {
		rounds = 3
	} else {
		ops *= 2
	}
	rep := &ParityReport{
		Schema:     paritySchema,
		Rounds:     rounds,
		Records:    sc.MemcachedRecords,
		Operations: ops,
		Ratio:      make(map[string]float64, len(workerCounts)*len(depths)),
		Vanilla:    make(map[string]float64, len(workerCounts)*len(depths)),
		SDRaD:      make(map[string]float64, len(workerCounts)*len(depths)),
	}
	t := &Table{
		ID:     "Parity",
		Title:  "Memcached sdrad/vanilla parity (median of paired back-to-back ratios)",
		Header: []string{"workers", "depth", "vanilla", "sdrad", "ratio"},
		Notes: []string{
			fmt.Sprintf("each cell: %d rounds of back-to-back (vanilla, sdrad) runs, order alternating", rounds),
			"ratio = median over rounds of (sdrad tput / vanilla tput of the SAME round)",
			fmt.Sprintf("committed-baseline gate: BENCH_throughput.json w%d d%d ratio >= %.2f",
				ParityHeadlineWorkers, ParityHeadlineDepth, ParityFloor),
		},
	}
	for _, workers := range workerCounts {
		for _, depth := range depths {
			ratio, van, sd, err := pairedCell(workers, depth, rounds, sc, ops)
			if err != nil {
				return nil, nil, fmt.Errorf("parity w%d/d%d: %w", workers, depth, err)
			}
			cell := parityCell(workers, depth)
			rep.Ratio[cell] = ratio
			rep.Vanilla[cell] = van
			rep.SDRaD[cell] = sd
			t.AddRow(
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", depth),
				fmtTput(van),
				fmtTput(sd),
				fmt.Sprintf("%.3fx", ratio),
			)
		}
	}
	rep.CalibrationNs = calibrationNs()
	if liveFloor > 0 {
		cell := parityCell(ParityHeadlineWorkers, ParityHeadlineDepth)
		if ratio, ok := rep.Ratio[cell]; ok && ratio < liveFloor {
			return rep, t, fmt.Errorf("bench: parity: live w%d d%d ratio %.3fx below live floor %.2fx",
				ParityHeadlineWorkers, ParityHeadlineDepth, ratio, liveFloor)
		}
	}
	return rep, t, nil
}

// WriteJSON writes the parity report to path.
func (r *ParityReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
