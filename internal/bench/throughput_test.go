package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunThroughput(t *testing.T) {
	rep, tbl, err := RunThroughput(tiny, []int{1, 2}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // 2 worker counts x 2 depths
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if len(rep.RunTput) != 8 { // x 2 variants
		t.Errorf("cells = %d", len(rep.RunTput))
	}
	for cell, tput := range rep.RunTput {
		if tput <= 0 {
			t.Errorf("cell %s: throughput %v", cell, tput)
		}
	}
	if rep.Schema != throughputSchema || rep.CalibrationNs <= 0 {
		t.Errorf("schema %q calibration %v", rep.Schema, rep.CalibrationNs)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	for _, want := range []string{"Scaling", "vanilla", "sdrad", "depth"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestThroughputBaselineRoundTrip(t *testing.T) {
	rep := &ThroughputReport{
		Schema:        throughputSchema,
		CalibrationNs: 2.0,
		Records:       1,
		Operations:    2,
		RunTput: map[string]float64{
			"sdrad_w1_d1":  100000,
			"sdrad_w8_d16": 300000,
		},
	}
	path := filepath.Join(t.TempDir(), "tput.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	base, err := LoadThroughputBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.RunTput["sdrad_w8_d16"] != 300000 || base.CalibrationNs != 2.0 {
		t.Errorf("round trip lost data: %+v", base)
	}
	// Identical report passes.
	if err := rep.CheckAgainst(base); err != nil {
		t.Errorf("self-comparison failed: %v", err)
	}
	// A >25% drop in one cell fails and names it.
	cur := &ThroughputReport{
		Schema:        throughputSchema,
		CalibrationNs: 2.0,
		RunTput: map[string]float64{
			"sdrad_w1_d1":  99000,
			"sdrad_w8_d16": 150000,
		},
	}
	err = cur.CheckAgainst(base)
	if err == nil || !strings.Contains(err.Error(), "sdrad_w8_d16") {
		t.Errorf("regression not caught: %v", err)
	}
	// The same drop on a machine measured 2x slower is within tolerance
	// after speed adjustment.
	cur.CalibrationNs = 4.0
	if err := cur.CheckAgainst(base); err != nil {
		t.Errorf("speed adjustment not applied: %v", err)
	}
	// Cells missing from the current report are ignored.
	delete(cur.RunTput, "sdrad_w1_d1")
	if err := cur.CheckAgainst(base); err != nil {
		t.Errorf("missing cell treated as regression: %v", err)
	}
}
