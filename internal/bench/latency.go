package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"sdrad/internal/loadgen"
	"sdrad/internal/memcache"
	"sdrad/internal/sched"
)

// Latency-under-load curves for load-aware connection placement and
// cross-worker stealing (BENCH_latency.json).
//
// Each cell offers a fixed open-loop arrival rate over real TCP against
// two arms of the same hardened build: the pre-change path (scheduler
// on, Route/Steal off — legacy round-robin connection pinning) and the
// routed path (placement scorer + cross-worker stealing). Latency is
// measured against each request's INTENDED start time (loadgen's
// open-loop accounting), so a backlogged worker's queueing delay lands
// in the tail instead of being coordinated away.
//
// Two load profiles per rate:
//
//   - uniform: plain keyed YCSB-style mix. Placement and stealing have
//     nothing to win here; the cells exist to prove the routed path does
//     not tax the common case (p50 within LatencyUniformTolerancePct of
//     the legacy arm on the committed recording).
//
//   - hot-conn skew: the schedule is Zipfian-concentrated onto a few
//     hot connections (loadgen ConnSkew) while an attacker hammers one
//     storage shard's worker with CVE-2011-4971 traps. Every trap costs
//     that worker a rewind (domain teardown + re-init) and pins its
//     AIMD bound to the floor, so the shards routed to it build a
//     backlog. The legacy arm leaves that backlog to the slowed worker;
//     the routed arm's floor-pinned siblings steal shard-aligned
//     segments of it, so innocent requests drain at the speed of the
//     calm workers. The win is measured at the KNEE — the lowest swept
//     rate where the legacy arm's p99 exceeds latencyKneeFactor x its
//     lowest-rate p99 — and gated at LatencyKneeFloor.
//
// On this single-core box the routed arm cannot win by parallelism;
// what the curve shows is avoided rewind collateral and queueing behind
// a rewind-thrashed worker, which is exactly the mechanism the placement
// and stealing layers exist for. The CI gate (CheckLatencyGate) reads
// the committed recording and runs no benchmark, so it is deterministic.

// latencySchema versions the JSON layout.
const latencySchema = "sdrad-latency-bench/v1"

// LatencyKneeFloor is the least the routed arm must win the hot-conn
// skew cell by at the knee rate: legacy p99 >= 1.3x routed p99 on the
// committed recording.
const LatencyKneeFloor = 1.3

// LatencyUniformTolerancePct bounds how much the routed arm may move
// uniform-load p50 relative to the legacy arm below the knee (percent).
const LatencyUniformTolerancePct = 5.0

// latencyKneeFactor defines the knee: the lowest swept rate where the
// legacy skew-arm p99 exceeds this factor times its lowest-rate p99.
const latencyKneeFactor = 3.0

// LatencyCell is one (profile, offered rate) measurement: both arms,
// paired on the same schedule and seed.
type LatencyCell struct {
	Rate float64 `json:"rate"`
	// Legacy arm: scheduler on, Route/Steal off (round-robin pinning).
	RRP50Ns  int64 `json:"rr_p50_ns"`
	RRP95Ns  int64 `json:"rr_p95_ns"`
	RRP99Ns  int64 `json:"rr_p99_ns"`
	RRErrors int   `json:"rr_errors"`
	// Routed arm: placement scorer + cross-worker stealing.
	RoutedP50Ns  int64 `json:"routed_p50_ns"`
	RoutedP95Ns  int64 `json:"routed_p95_ns"`
	RoutedP99Ns  int64 `json:"routed_p99_ns"`
	RoutedErrors int   `json:"routed_errors"`
	// P99Ratio is rr/routed (> 1 means the routed arm's tail is lower);
	// P50DeltaPct is |routed-rr|/rr in percent (the common-case tax).
	P99Ratio    float64 `json:"p99_ratio"`
	P50DeltaPct float64 `json:"p50_delta_pct"`
}

// LatencyReport round-trips through BENCH_latency.json.
type LatencyReport struct {
	Schema        string  `json:"schema"`
	CalibrationNs float64 `json:"calibration_ns"`
	// CPUs/GoVersion document the recording substrate: latency curves
	// measured on a single-core runner do not transfer to a 32-way box,
	// and the gate's honesty depends on saying so.
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	// Workload shape (informational).
	Workers       int       `json:"workers"`
	Conns         int       `json:"conns"`
	ConnSkewTheta float64   `json:"conn_skew_theta"`
	Rates         []float64 `json:"rates"`

	Uniform []LatencyCell `json:"uniform"`
	Skew    []LatencyCell `json:"skew"`

	// KneeRate/KneeP99Ratio cache the gate inputs computed from the
	// cells (CheckLatencyGate recomputes them; a hand-edited cache
	// cannot pass the gate on its own).
	KneeRate              float64 `json:"knee_rate"`
	KneeP99Ratio          float64 `json:"knee_p99_ratio"`
	UniformMaxP50DeltaPct float64 `json:"uniform_max_p50_delta_pct"`
}

// knee finds the knee cell index in the skew curve: the lowest rate
// whose legacy p99 exceeds latencyKneeFactor x the lowest-rate legacy
// p99, or the last cell when the sweep never leaves the flat region.
func (r *LatencyReport) knee() int {
	if len(r.Skew) == 0 {
		return -1
	}
	base := r.Skew[0].RRP99Ns
	for i, c := range r.Skew {
		if float64(c.RRP99Ns) > latencyKneeFactor*float64(base) {
			return i
		}
	}
	return len(r.Skew) - 1
}

// uniformMaxP50Delta is the worst uniform-cell p50 delta at rates below
// or at the knee rate (overloaded uniform cells are queue-dominated and
// say nothing about the per-request tax).
func (r *LatencyReport) uniformMaxP50Delta(kneeRate float64) float64 {
	worst := 0.0
	for _, c := range r.Uniform {
		if c.Rate > kneeRate {
			continue
		}
		if c.P50DeltaPct > worst {
			worst = c.P50DeltaPct
		}
	}
	return worst
}

// CheckLatencyGate asserts the committed recording holds both floors:
// the routed arm wins the hot-conn-skew knee by >= LatencyKneeFloor and
// taxes uniform p50 by <= LatencyUniformTolerancePct. It recomputes the
// knee from the cells, runs no benchmark, and is deterministic.
func (r *LatencyReport) CheckLatencyGate() error {
	if r.Schema != latencySchema {
		return fmt.Errorf("bench: latency: schema %q, want %q", r.Schema, latencySchema)
	}
	k := r.knee()
	if k < 0 || len(r.Uniform) == 0 {
		return fmt.Errorf("bench: latency: report has no cells (run sdrad-bench -latency)")
	}
	cell := r.Skew[k]
	if cell.P99Ratio < LatencyKneeFloor {
		return fmt.Errorf("bench: latency: skew p99 at the knee (%.0f req/s) is %.3fx routed, floor is %.2fx",
			cell.Rate, cell.P99Ratio, LatencyKneeFloor)
	}
	if worst := r.uniformMaxP50Delta(cell.Rate); worst > LatencyUniformTolerancePct {
		return fmt.Errorf("bench: latency: routed arm moves uniform p50 by %.1f%%, tolerance is %.1f%%",
			worst, LatencyUniformTolerancePct)
	}
	return nil
}

// WriteJSON writes the report to path.
func (r *LatencyReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadLatencyBaseline reads a previously committed report.
func LoadLatencyBaseline(path string) (*LatencyReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r LatencyReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Latency workload shape. Two workers keep the story sharp on one core:
// the attacker thrashes one, stealing recruits the other.
const (
	latencyWorkers  = 2
	latencyConns    = 8
	latencySkewTh   = 0.99
	latencyRecords  = 256
	latencyAtkEvery = 15 * time.Millisecond
)

// latencyArmResult is one arm's measured distribution.
type latencyArmResult struct {
	p50, p95, p99 int64
	errors        int
}

// latencyArm serves one open-loop run over real TCP against a fresh
// hardened server: route=false is the pre-change path (scheduler on,
// legacy round-robin pinning), route=true adds placement + stealing.
// With attack=true an attacker goroutine lands a CVE-2011-4971 trap on
// a fixed key every latencyAtkEvery, so one worker's shards thrash with
// rewinds for the whole run.
func latencyArm(route, attack bool, rate, connSkew float64, dur time.Duration, seed int64) (latencyArmResult, error) {
	schedCfg := sched.Config{}
	if route {
		schedCfg.Route = true
		schedCfg.Steal = true
	}
	s, err := memcache.NewServer(memcache.Config{
		Variant:    memcache.VariantSDRaD,
		Workers:    latencyWorkers,
		HashPower:  13,
		CacheBytes: 16 << 20,
		Sched:      &schedCfg,
	})
	if err != nil {
		return latencyArmResult{}, err
	}
	defer s.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return latencyArmResult{}, err
	}
	defer func() { _ = ln.Close() }()
	go func() { _ = s.ServeListener(ln) }()

	// Preload the keyspace so run-phase gets always hit.
	loader := s.NewConn()
	val := bytes.Repeat([]byte("v"), 64)
	for i := 0; i < latencyRecords; i++ {
		key := fmt.Sprintf("user%010d", i)
		resp, closed, err := loader.Do(memcache.FormatSet(key, val, 0))
		if err != nil || closed || !bytes.Equal(resp, []byte("STORED\r\n")) {
			return latencyArmResult{}, fmt.Errorf("bench: latency load: closed=%v err=%v resp=%q", closed, err, resp)
		}
	}

	stopAtk := make(chan struct{})
	atkDone := make(chan struct{})
	if attack {
		trap := memcache.FormatBSet("atk", 16<<20, []byte("payload"))
		addr := ln.Addr().String()
		go func() {
			defer close(atkDone)
			buf := make([]byte, 64)
			for {
				select {
				case <-stopAtk:
					return
				case <-time.After(latencyAtkEvery):
				}
				// The trap costs the serving worker a rewind and the
				// server closes the connection; redial per trap.
				nc, err := net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					continue
				}
				_ = nc.SetDeadline(time.Now().Add(2 * time.Second))
				if _, err := nc.Write(trap); err == nil {
					_, _ = nc.Read(buf)
				}
				_ = nc.Close()
			}
		}()
	} else {
		close(atkDone)
	}

	res, err := loadgen.RunOpenLoop(loadgen.OpenLoopConfig{
		Targets:      []string{ln.Addr().String()},
		Rate:         rate,
		Duration:     dur,
		Conns:        latencyConns,
		ConnSkew:     connSkew,
		ReadFraction: 0.9,
		Records:      latencyRecords,
		ValueSize:    64,
		Seed:         seed,
	})
	close(stopAtk)
	<-atkDone
	if err != nil {
		return latencyArmResult{}, err
	}
	if attack && s.Rewinds() == 0 {
		return latencyArmResult{}, fmt.Errorf("bench: latency: attacker landed no rewinds")
	}
	return latencyArmResult{
		p50:    res.P50.Nanoseconds(),
		p95:    res.P95.Nanoseconds(),
		p99:    res.P99.Nanoseconds(),
		errors: res.Errors,
	}, nil
}

// latencyCellPair measures one (profile, rate) cell: both arms on the
// same schedule and seed, order alternating by cell index so neither
// arm always runs on a freshly quiet machine.
func latencyCellPair(idx int, attack bool, rate, connSkew float64, dur time.Duration, seed int64) (LatencyCell, error) {
	var rr, routed latencyArmResult
	var err error
	if idx%2 == 0 {
		if rr, err = latencyArm(false, attack, rate, connSkew, dur, seed); err == nil {
			routed, err = latencyArm(true, attack, rate, connSkew, dur, seed)
		}
	} else {
		if routed, err = latencyArm(true, attack, rate, connSkew, dur, seed); err == nil {
			rr, err = latencyArm(false, attack, rate, connSkew, dur, seed)
		}
	}
	if err != nil {
		return LatencyCell{}, err
	}
	cell := LatencyCell{
		Rate:         rate,
		RRP50Ns:      rr.p50,
		RRP95Ns:      rr.p95,
		RRP99Ns:      rr.p99,
		RRErrors:     rr.errors,
		RoutedP50Ns:  routed.p50,
		RoutedP95Ns:  routed.p95,
		RoutedP99Ns:  routed.p99,
		RoutedErrors: routed.errors,
	}
	if routed.p99 > 0 {
		cell.P99Ratio = float64(rr.p99) / float64(routed.p99)
	}
	if rr.p50 > 0 {
		d := float64(routed.p50-rr.p50) / float64(rr.p50) * 100
		if d < 0 {
			d = -d
		}
		cell.P50DeltaPct = d
	}
	return cell, nil
}

// RunLatency sweeps the offered-rate curve for both load profiles and
// returns the report plus a printable table.
func RunLatency(sc Scale) (*LatencyReport, *Table, error) {
	rates := []float64{1000, 2000, 4000, 8000}
	dur := 2 * time.Second
	if sc.MemcachedOps <= Quick.MemcachedOps {
		rates = []float64{1000, 2000}
		dur = 400 * time.Millisecond
	}
	rep := &LatencyReport{
		Schema:        latencySchema,
		CPUs:          runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Workers:       latencyWorkers,
		Conns:         latencyConns,
		ConnSkewTheta: latencySkewTh,
		Rates:         rates,
	}
	for i, rate := range rates {
		cell, err := latencyCellPair(i, false, rate, 0, dur, 1000+int64(i))
		if err != nil {
			return nil, nil, fmt.Errorf("latency uniform %.0f: %w", rate, err)
		}
		rep.Uniform = append(rep.Uniform, cell)
	}
	for i, rate := range rates {
		cell, err := latencyCellPair(i, true, rate, latencySkewTh, dur, 2000+int64(i))
		if err != nil {
			return nil, nil, fmt.Errorf("latency skew %.0f: %w", rate, err)
		}
		rep.Skew = append(rep.Skew, cell)
	}
	if k := rep.knee(); k >= 0 {
		rep.KneeRate = rep.Skew[k].Rate
		rep.KneeP99Ratio = rep.Skew[k].P99Ratio
	}
	rep.UniformMaxP50DeltaPct = rep.uniformMaxP50Delta(rep.KneeRate)
	rep.CalibrationNs = calibrationNs()

	t := &Table{
		ID:     "Latency",
		Title:  "Latency under load: legacy round-robin pinning vs placement + stealing (open loop, vs intended start)",
		Header: []string{"profile", "rate", "rr p50/p99", "routed p50/p99", "p99 ratio", "errors rr/routed"},
		Notes: []string{
			fmt.Sprintf("%d workers, %d conns over TCP; skew cells: ConnSkew %.2f + one trap per %v on a fixed shard",
				latencyWorkers, latencyConns, latencySkewTh, latencyAtkEvery),
			"both arms run the scheduler; the legacy arm is Route/Steal off — the pre-change path bit for bit",
			fmt.Sprintf("knee = first rate where legacy skew p99 > %.0fx its lowest-rate p99; gate: knee ratio >= %.2fx, uniform p50 delta <= %.0f%%",
				latencyKneeFactor, LatencyKneeFloor, LatencyUniformTolerancePct),
			fmt.Sprintf("recorded on %d cpu(s), %s: single-core wins come from avoided rewind collateral, not parallelism",
				rep.CPUs, rep.GoVersion),
		},
	}
	addRows := func(profile string, cells []LatencyCell) {
		for _, c := range cells {
			t.AddRow(profile,
				fmt.Sprintf("%.0f/s", c.Rate),
				fmt.Sprintf("%s/%s", time.Duration(c.RRP50Ns), time.Duration(c.RRP99Ns)),
				fmt.Sprintf("%s/%s", time.Duration(c.RoutedP50Ns), time.Duration(c.RoutedP99Ns)),
				fmt.Sprintf("%.3fx", c.P99Ratio),
				fmt.Sprintf("%d/%d", c.RRErrors, c.RoutedErrors),
			)
		}
	}
	addRows("uniform", rep.Uniform)
	addRows("hot-conn skew", rep.Skew)
	return rep, t, nil
}
