package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdrad/internal/cluster"
	"sdrad/internal/memcache"
	"sdrad/internal/ycsb"
)

// ClusterReport captures the router scaling curve: YCSB throughput
// routed through the consistent-hash front-end as the backend count
// grows, plus the availability held while one backend is killed
// mid-run. It round-trips through BENCH_cluster.json so CI can gate the
// routed path without re-measuring on a noisy runner.
type ClusterReport struct {
	Schema        string  `json:"schema"`
	CalibrationNs float64 `json:"calibration_ns"`
	// CPUs records runtime.NumCPU() at measurement time. The scaling
	// gate is CPU-aware: N backends cannot run in parallel on fewer
	// than N cores, so the 3-vs-1 speedup floor only arms when the
	// recording machine actually had the cores (see CheckScaling).
	CPUs       int `json:"cpus"`
	Records    int `json:"records"`
	Operations int `json:"operations"`
	// RoutedTput maps "n1"/"n2"/"n3" to routed run-phase ops/s with that
	// many backends behind the router.
	RoutedTput map[string]float64 `json:"routed_tput"`
	// Scaling3v1 = RoutedTput[n3] / RoutedTput[n1].
	Scaling3v1 float64 `json:"scaling_3v1"`
	// AvailabilityKill is the fraction of requests answered non-degraded
	// while one of three backends was killed at the run's midpoint: the
	// kill costs a bounded burst of degraded replies (the failure
	// threshold times the batch depth, plus probation flaps), then the
	// dead backend's keys spill to ring successors.
	AvailabilityKill float64 `json:"availability_kill"`
	// DegradedKill counts the degraded replies behind AvailabilityKill
	// (informational).
	DegradedKill int `json:"degraded_kill"`
}

const clusterSchema = "sdrad-cluster-bench/v1"

// clusterScalingFloor is the 3-backend speedup the routed path must
// hold over 1 backend — the acceptance floor — when the recording
// machine has at least 3 CPUs to run the backends on.
const clusterScalingFloor = 2.2

// clusterSerialFloor is the floor on the same ratio when the recording
// machine cannot physically parallelize the backends (fewer than 3
// CPUs): adding backends must not *cost* routed capacity. The fan-out
// still splits batches per backend, so serial machines pay the split
// without the parallel win.
const clusterSerialFloor = 0.75

// clusterAvailabilityFloor bounds the kill experiment: at least this
// fraction of requests must be answered non-degraded while a third of
// the fleet dies mid-run.
const clusterAvailabilityFloor = 0.95

// clusterTolerancePct is the regression tolerance for live-vs-baseline
// routed throughput, after calibration rescaling. It is a coarse
// sanity bound, not a precision gate: the routed path crosses two TCP
// hops per request and its throughput drifts with host scheduling
// noise the CPU-loop calibration cannot see, so the precise gates are
// the deterministic floors on the committed recording (CheckScaling).
const clusterTolerancePct = 50.0

// clusterFleet is one router fronting n in-process backends.
type clusterFleet struct {
	backends []*memcache.Server
	lns      []net.Listener
	rt       *cluster.Router
	rln      net.Listener
}

func startClusterFleet(n int, records int, health cluster.HealthConfig) (*clusterFleet, error) {
	f := &clusterFleet{}
	var cfgBackends []cluster.Backend
	for i := 0; i < n; i++ {
		srv, err := memcache.NewServer(memcache.Config{
			Variant:    memcache.VariantSDRaD,
			Workers:    1,
			HashPower:  15,
			CacheBytes: uint64(records)*1536 + 8<<20,
		})
		if err != nil {
			f.stop()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Stop()
			f.stop()
			return nil, err
		}
		go func() { _ = srv.ServeListener(ln) }()
		f.backends = append(f.backends, srv)
		f.lns = append(f.lns, ln)
		cfgBackends = append(cfgBackends, cluster.Backend{
			Name: fmt.Sprintf("b%d", i),
			Addr: ln.Addr().String(),
		})
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Backends: cfgBackends,
		PoolSize: 4,
		Health:   health,
	})
	if err != nil {
		f.stop()
		return nil, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Stop()
		f.stop()
		return nil, err
	}
	go func() { _ = rt.Serve(rln) }()
	f.rt, f.rln = rt, rln
	return f, nil
}

func (f *clusterFleet) stop() {
	if f.rt != nil {
		f.rt.Stop()
	}
	for i, s := range f.backends {
		s.Stop()
		_ = f.lns[i].Close()
	}
}

func (f *clusterFleet) addr() string { return f.rln.Addr().String() }

// killBackend stops backend i in place, as a mid-run crash would.
func (f *clusterFleet) killBackend(i int) {
	f.backends[i].Stop()
	_ = f.lns[i].Close()
}

// driveRouted loads the keyspace through the router, then measures the
// run phase: `clients` connections each issuing depth-sized pipelined
// YCSB bursts. onOp, when non-nil, sees every reply (the kill
// experiment counts degraded answers there); its op counter is global
// across clients.
func driveRouted(addr string, sc Scale, ops, clients, depth int,
	onOp func(n int, degraded bool)) (float64, error) {
	runner, err := ycsb.NewRunner(ycsb.Config{
		Records:    sc.MemcachedRecords,
		Operations: ops,
	})
	if err != nil {
		return 0, err
	}
	cfg := runner.Config()

	// Load phase (unmeasured), pipelined through the router.
	loadConn, err := cluster.Dial(addr, 2*time.Second, 10*time.Second)
	if err != nil {
		return 0, err
	}
	reqs := make([][]byte, 0, depth)
	for i := 0; i < cfg.Records; i += len(reqs) {
		reqs = reqs[:0]
		for j := i; j < cfg.Records && len(reqs) < depth; j++ {
			reqs = append(reqs, memcache.FormatSet(ycsb.Key(j), ycsb.Value(j, cfg.ValueSize), 0))
		}
		out, err := loadConn.DoBatch(reqs)
		if err != nil {
			_ = loadConn.Close()
			return 0, fmt.Errorf("bench: cluster load: %w", err)
		}
		for _, rep := range out {
			if !bytes.Equal(rep, []byte("STORED\r\n")) {
				_ = loadConn.Close()
				return 0, fmt.Errorf("bench: cluster load: %q", rep)
			}
		}
	}
	_ = loadConn.Close()

	// Run phase: each client owns one connection and a deterministic op
	// stream; a global counter drives onOp so the kill trigger fires at
	// the fleet-wide midpoint.
	plan := runner.OpPlanner()
	var opCount atomic.Int64
	errs := make(chan error, clients)
	startGate := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs <- func() error {
				conn, err := cluster.Dial(addr, 2*time.Second, 10*time.Second)
				if err != nil {
					return err
				}
				defer func() { _ = conn.Close() }()
				rng := rand.New(rand.NewSource(int64(c)*7919 + 23))
				lo, hi := c*ops/clients, (c+1)*ops/clients
				burst := make([]ycsb.Op, depth)
				batch := make([][]byte, depth)
				<-startGate
				for i := lo; i < hi; {
					n := depth
					if hi-i < n {
						n = hi - i
					}
					plan(rng, burst[:n])
					for j, op := range burst[:n] {
						if op.Read {
							batch[j] = memcache.FormatGet(ycsb.Key(op.Index))
						} else {
							batch[j] = memcache.FormatSet(ycsb.Key(op.Index), ycsb.Value(op.Index, cfg.ValueSize), 0)
						}
					}
					out, err := conn.DoBatch(batch[:n])
					if err != nil {
						return fmt.Errorf("client %d op %d: %w", c, i, err)
					}
					for j, rep := range out {
						degraded := bytes.HasPrefix(rep, []byte("SERVER_ERROR"))
						if onOp != nil {
							onOp(int(opCount.Add(1)), degraded)
						}
						if degraded {
							if onOp == nil {
								return fmt.Errorf("client %d op %d: degraded reply %q from a healthy fleet", c, i+j, rep)
							}
							continue
						}
						if !burst[j].Read && !bytes.Equal(rep, []byte("STORED\r\n")) {
							return fmt.Errorf("client %d op %d: %q", c, i+j, rep)
						}
					}
					i += n
				}
				return nil
			}()
		}(c)
	}
	start := time.Now()
	close(startGate)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(ops) / elapsed.Seconds(), nil
}

// RunCluster measures the routed scaling curve (1, 2, 3 backends) and
// the availability held through a mid-run backend kill, returning the
// machine-readable report and a printable table.
func RunCluster(sc Scale) (*ClusterReport, *Table, error) {
	const clients, depth = 4, 16
	ops := sc.MemcachedOps
	rep := &ClusterReport{
		Schema:     clusterSchema,
		CPUs:       runtime.NumCPU(),
		Records:    sc.MemcachedRecords,
		Operations: ops,
		RoutedTput: map[string]float64{},
	}
	t := &Table{
		ID:     "Cluster",
		Title:  "Routed YCSB throughput vs backend count, and availability under a mid-run kill",
		Header: []string{"cell", "backends", "ops/s", "note"},
		Notes: []string{
			fmt.Sprintf("workload: %d records, %d ops, 95/5 read/update, Zipfian, %d clients x depth-%d pipelines through sdrad-router", sc.MemcachedRecords, ops, clients, depth),
			fmt.Sprintf("scaling gate (CPU-aware): 3-backend/1-backend >= %.2fx when cpus >= 3, else >= %.2fx (this machine: %d cpus)", clusterScalingFloor, clusterSerialFloor, runtime.NumCPU()),
			fmt.Sprintf("kill cell: one of three backends dies at the midpoint; availability floor %.2f", clusterAvailabilityFloor),
		},
	}
	for n := 1; n <= 3; n++ {
		runtime.GC()
		f, err := startClusterFleet(n, sc.MemcachedRecords, cluster.HealthConfig{})
		if err != nil {
			return nil, nil, err
		}
		tput, err := driveRouted(f.addr(), sc, ops, clients, depth, nil)
		f.stop()
		if err != nil {
			return nil, nil, fmt.Errorf("cluster n%d: %w", n, err)
		}
		rep.RoutedTput[fmt.Sprintf("n%d", n)] = tput
		t.AddRow(fmt.Sprintf("routed_n%d", n), fmt.Sprintf("%d", n), fmtTput(tput), "")
	}
	rep.Scaling3v1 = rep.RoutedTput["n3"] / rep.RoutedTput["n1"]

	// Availability under a mid-run kill: three backends, one dies at the
	// midpoint. Degraded replies are bounded by the failure threshold
	// (times the batch depth) plus probation flaps; everything else must
	// keep serving via ring spill.
	runtime.GC()
	f, err := startClusterFleet(3, sc.MemcachedRecords, cluster.HealthConfig{})
	if err != nil {
		return nil, nil, err
	}
	var killOnce sync.Once
	var degraded atomic.Int64
	tput, err := driveRouted(f.addr(), sc, ops, clients, depth, func(n int, deg bool) {
		if n == ops/2 {
			killOnce.Do(func() { f.killBackend(1) })
		}
		if deg {
			degraded.Add(1)
		}
	})
	f.stop()
	if err != nil {
		return nil, nil, fmt.Errorf("cluster kill: %w", err)
	}
	rep.DegradedKill = int(degraded.Load())
	rep.AvailabilityKill = 1 - float64(rep.DegradedKill)/float64(ops)
	t.AddRow("scaling_3v1", "3/1", fmt.Sprintf("%.2fx", rep.Scaling3v1), "ratio of routed ops/s")
	t.AddRow("kill_3", "3-1", fmtTput(tput),
		fmt.Sprintf("availability %.4f (%d degraded)", rep.AvailabilityKill, rep.DegradedKill))
	rep.CalibrationNs = calibrationNs()
	return rep, t, nil
}

// CheckScaling is the deterministic acceptance gate on a recorded
// report: it runs no benchmark, so runner noise cannot flake it — the
// gate moves only when someone commits a recording that fails it. The
// speedup floor is CPU-aware because consistent-hash fan-out cannot
// parallelize three backends onto one core: with >= 3 CPUs recorded,
// the 3-vs-1 ratio must clear the scaling floor; below that, it must
// clear the serial floor (backends must not cost capacity), and the
// availability floor applies everywhere.
func (r *ClusterReport) CheckScaling() error {
	floor := clusterSerialFloor
	kind := "serial"
	if r.CPUs >= 3 {
		floor = clusterScalingFloor
		kind = "parallel"
	}
	if r.Scaling3v1 < floor {
		return fmt.Errorf("bench: cluster scaling 3v1 = %.2fx below the %s floor %.1fx (recorded on %d cpus)",
			r.Scaling3v1, kind, floor, r.CPUs)
	}
	if r.AvailabilityKill < clusterAvailabilityFloor {
		return fmt.Errorf("bench: availability under kill %.4f below floor %.2f (%d degraded replies)",
			r.AvailabilityKill, clusterAvailabilityFloor, r.DegradedKill)
	}
	return nil
}

// CheckAgainst compares live routed throughput with a baseline, speed-
// adjusted by the calibration ratio, mirroring the channel-path gate.
func (r *ClusterReport) CheckAgainst(base *ClusterReport) error {
	speed := 1.0
	if base.CalibrationNs > 0 && r.CalibrationNs > 0 {
		speed = r.CalibrationNs / base.CalibrationNs
	}
	var regressions []string
	for _, k := range sortedKeys(base.RoutedTput) {
		want := base.RoutedTput[k] / speed
		cur, ok := r.RoutedTput[k]
		if !ok || want <= 0 {
			continue
		}
		if pct := (want - cur) / want * 100; pct > clusterTolerancePct {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ops/s (-%.1f%% vs speed-adjusted baseline)", k, want, cur, pct))
		}
	}
	if r.AvailabilityKill < clusterAvailabilityFloor {
		regressions = append(regressions,
			fmt.Sprintf("availability under kill %.4f below floor %.2f", r.AvailabilityKill, clusterAvailabilityFloor))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: cluster regression beyond %.0f%%: %v", clusterTolerancePct, regressions)
	}
	return nil
}

// WriteJSON writes the report to path.
func (r *ClusterReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadClusterBaseline reads a previously committed report.
func LoadClusterBaseline(path string) (*ClusterReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ClusterReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}
