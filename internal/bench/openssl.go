package bench

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"sdrad/internal/core"
	"sdrad/internal/cryptolib"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// opensslSizes is the paper's input-size sweep for the speed benchmark.
var opensslSizes = []int{16, 64, 256, 1024, 4096, 16384, 32768, 65536}

// opensslSpeedOne measures one (mode, size) cell: EncryptUpdate
// operations for at least minDuration, like `openssl speed -seconds`
// (the paper ran each cipher configuration for 3 s).
func opensslSpeedOne(mode cryptolib.Mode, size int, minDuration time.Duration) (opsPerSec, mbPerSec float64, copied int64, err error) {
	runtime.GC() // level GC debt between cells
	p := proc.NewProcess("openssl-speed", proc.WithSeed(11))
	lib, err := core.Setup(p, core.WithRootHeapSize(4<<20))
	if err != nil {
		return 0, 0, 0, err
	}
	key := bytes.Repeat([]byte{0x5A}, 32)
	err = p.Attach("main", func(t *proc.Thread) error {
		eng := cryptolib.NewEngine()
		cr, err := cryptolib.NewCrypto(t, lib, eng, mode, key, 65536)
		if err != nil {
			return err
		}
		var in, out mem.Addr
		if mode == cryptolib.ModeShared {
			in, out = cr.DataBuf(), cr.SharedOut()
		} else {
			if in, err = lib.Malloc(t, core.RootUDI, uint64(size)); err != nil {
				return err
			}
			if out, err = lib.Malloc(t, core.RootUDI, uint64(size)+cryptolib.GCMTagSize); err != nil {
				return err
			}
		}
		t.CPU().Memset(in, 0x61, size)

		// Warm-up: fault in mappings, build the key schedule cache.
		for i := 0; i < 16; i++ {
			if _, err := cr.EncryptUpdate(t, out, in, size); err != nil {
				return err
			}
		}
		copyBase := lib.Stats().BytesCopied.Load()
		ops := 0
		start := time.Now()
		deadline := start.Add(minDuration)
		for time.Now().Before(deadline) {
			for i := 0; i < 32; i++ {
				if _, err := cr.EncryptUpdate(t, out, in, size); err != nil {
					return err
				}
			}
			ops += 32
		}
		elapsed := time.Since(start)
		copied = (lib.Stats().BytesCopied.Load() - copyBase) / int64(ops)
		opsPerSec = float64(ops) / elapsed.Seconds()
		mbPerSec = float64(ops) * float64(size) / elapsed.Seconds() / (1 << 20)
		return nil
	})
	return opsPerSec, mbPerSec, copied, err
}

// OpenSSLSpeed regenerates the §V-C speed benchmark: aes-256-gcm through
// EVP_EncryptUpdate for each input size, native versus the three
// isolation design choices.
func OpenSSLSpeed(sc Scale, sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = opensslSizes
	}
	t := &Table{
		ID:     "Tab.V-C",
		Title:  "OpenSSL speed: aes-256-gcm EVP_EncryptUpdate by input size and design choice",
		Header: []string{"size", "mode", "ops/s", "MiB/s", "vs native", "bytes copied/op"},
		Notes: []string{
			"paper: 4-80% overhead for small inputs, <2% for >=32KiB; parent-managed shared domain (choice 3) best",
		},
	}
	// CryptoIters scales the per-cell measurement window: the full scale
	// runs each cell for ~400 ms, the quick scale for ~40 ms (the paper
	// used 3 s per cipher configuration).
	window := time.Duration(sc.CryptoIters) * 100 * time.Microsecond
	repeats := 3
	if sc.CryptoIters <= Quick.CryptoIters {
		repeats = 1
	}
	for _, size := range sizes {
		nops, nmb, _, err := medianOpensslCell(cryptolib.ModeNative, size, window, repeats)
		if err != nil {
			return nil, fmt.Errorf("openssl native/%d: %w", size, err)
		}
		t.AddRow(fmtSize(size), cryptolib.ModeNative.String(), fmtTput(nops), fmt.Sprintf("%.1f", nmb), "+0.0%", "0")
		for _, mode := range []cryptolib.Mode{cryptolib.ModeCopyOut, cryptolib.ModeCopyBoth, cryptolib.ModeShared} {
			ops, mb, copied, ratio, err := pairedOpensslCell(mode, size, window, repeats)
			if err != nil {
				return nil, fmt.Errorf("openssl %s/%d: %w", mode, size, err)
			}
			t.AddRow(
				fmtSize(size),
				mode.String(),
				fmtTput(ops),
				fmt.Sprintf("%.1f", mb),
				fmt.Sprintf("%+.1f%%", (ratio-1)*100),
				fmt.Sprintf("%d", copied),
			)
		}
	}
	return t, nil
}

// pairedOpensslCell measures an isolated mode with back-to-back
// native/mode run pairs and returns the median mode cell plus the median
// per-pair throughput ratio (mode/native). Taking the ratio inside each
// pair cancels the machine-state drift (GC debt, co-located load) that
// independent block medians book as variant overhead — the same
// estimator measureMemcachedOverhead uses.
func pairedOpensslCell(mode cryptolib.Mode, size int, window time.Duration, repeats int) (float64, float64, int64, float64, error) {
	type cell struct {
		ops, mb float64
		copied  int64
		ratio   float64
	}
	cells := make([]cell, 0, repeats)
	for i := 0; i < repeats; i++ {
		nops, _, _, err := opensslSpeedOne(cryptolib.ModeNative, size, window)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		ops, mb, copied, err := opensslSpeedOne(mode, size, window)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		cells = append(cells, cell{ops, mb, copied, ops / nops})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].ratio < cells[j].ratio })
	mid := cells[len(cells)/2]
	return mid.ops, mid.mb, mid.copied, mid.ratio, nil
}

// medianOpensslCell repeats one speed cell and returns the run with the
// median ops/s, damping machine-level noise spikes.
func medianOpensslCell(mode cryptolib.Mode, size int, window time.Duration, repeats int) (float64, float64, int64, error) {
	type cell struct {
		ops, mb float64
		copied  int64
	}
	cells := make([]cell, 0, repeats)
	for i := 0; i < repeats; i++ {
		ops, mb, copied, err := opensslSpeedOne(mode, size, window)
		if err != nil {
			return 0, 0, 0, err
		}
		cells = append(cells, cell{ops, mb, copied})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].ops < cells[j].ops })
	mid := cells[len(cells)/2]
	return mid.ops, mid.mb, mid.copied, nil
}

// X509Rewind regenerates the §V-C CVE-2022-3786 experiment: the isolated
// verifier absorbs the stack overflow and keeps serving; the latency of
// one absorbed attack is measured.
func X509Rewind(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Tab.V-C-x509",
		Title:  "CVE-2022-3786: isolated X.509 verification rewind",
		Header: []string{"metric", "value"},
		Notes:  []string{"paper: verified that the CVE triggers a rewind; connection closed, OpenSSL domain reinitialized"},
	}
	p := proc.NewProcess("x509-bench", proc.WithSeed(13))
	lib, err := core.Setup(p)
	if err != nil {
		return nil, err
	}
	var samples []time.Duration
	var goodLat time.Duration
	err = p.Attach("main", func(th *proc.Thread) error {
		v := cryptolib.NewVerifier(lib, 4096)
		evil := cryptolib.MaliciousCertificate()
		good := cryptolib.FormatCertificate("client", "client@example.org")
		for i := 0; i < sc.RewindTrials; i++ {
			start := time.Now()
			_, verr := v.Verify(th, evil)
			lat := time.Since(start)
			var abn *core.AbnormalExit
			if !errors.As(verr, &abn) {
				return fmt.Errorf("bench: attack %d err = %v", i, verr)
			}
			samples = append(samples, lat)
			// Recovery: a good certificate right after.
			start = time.Now()
			res, verr := v.Verify(th, good)
			goodLat = time.Since(start)
			if verr != nil || !res.Valid {
				return fmt.Errorf("bench: recovery %d failed: %v", i, verr)
			}
		}
		if v.Rewinds() != int64(sc.RewindTrials) {
			return fmt.Errorf("bench: rewinds = %d", v.Rewinds())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mean, std := meanStd(samples)
	t.AddRow("attacks absorbed", fmt.Sprintf("%d", sc.RewindTrials))
	t.AddRow("rewind latency (detect+discard+reinit)", fmt.Sprintf("%s (σ=%s)", fmtDur(mean), fmtDur(std)))
	t.AddRow("good verification after attack", fmtDur(goodLat))
	t.AddRow("process survived", fmt.Sprintf("%v", !p.Killed()))
	return t, nil
}

func fmtSize(b int) string {
	if b >= 1024 {
		return fmt.Sprintf("%dKiB", b/1024)
	}
	return fmt.Sprintf("%dB", b)
}
