package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"sdrad/internal/httpd"
	"sdrad/internal/loadgen"
)

// nginxFiles builds the file set for the Figure 5 sweep.
func nginxFiles(sizesKiB []int) map[string]int {
	files := make(map[string]int, len(sizesKiB))
	for _, k := range sizesKiB {
		files[nginxPath(k)] = k * 1024
	}
	return files
}

func nginxPath(kib int) string { return fmt.Sprintf("/f%dk.bin", kib) }

// Fig5NginxThroughput regenerates Figure 5: requests/second of the three
// NGINX builds with one worker across response sizes.
func Fig5NginxThroughput(sc Scale, sizesKiB []int) (*Table, error) {
	if len(sizesKiB) == 0 {
		sizesKiB = []int{0, 1, 4, 16, 64, 128}
	}
	t := &Table{
		ID:     "Fig.5",
		Title:  "NGINX throughput by variant and file size (1 worker, keep-alive)",
		Header: []string{"file size", "variant", "req/s", "vs vanilla"},
		Notes: []string{
			fmt.Sprintf("%d concurrent connections, %d requests per cell (paper: 75 conns)", sc.NginxConns, sc.NginxRequests),
			"paper: SDRaD overhead 6.5% at 1KiB shrinking to 1.6% at 128KiB",
		},
	}
	files := nginxFiles(sizesKiB)
	repeats := 3
	if sc.NginxRequests <= Quick.NginxRequests {
		repeats = 1
	}
	for _, kib := range sizesKiB {
		var base float64
		for _, v := range []httpd.Variant{httpd.VariantVanilla, httpd.VariantTLSF, httpd.VariantSDRaD} {
			tput, err := medianNginxCell(v, files, kib, repeats, sc)
			if err != nil {
				return nil, err
			}
			if v == httpd.VariantVanilla {
				base = tput
			}
			t.AddRow(fmt.Sprintf("%d KiB", kib), v.String(), fmtTput(tput), fmtPct(tput, base))
		}
	}
	return t, nil
}

// medianNginxCell repeats one Figure-5 cell and returns the median
// throughput, damping scheduler noise on shared machines.
func medianNginxCell(v httpd.Variant, files map[string]int, kib, repeats int, sc Scale) (float64, error) {
	tputs := make([]float64, 0, repeats)
	for i := 0; i < repeats; i++ {
		runtime.GC()
		m, err := httpd.NewMaster(httpd.Config{Variant: v, Workers: 1, Files: files})
		if err != nil {
			return 0, err
		}
		res := loadgen.Run(m, loadgen.Config{
			Path:        nginxPath(kib),
			Connections: sc.NginxConns,
			Requests:    sc.NginxRequests,
		})
		crashed, cause := m.Worker(0).Crashed()
		m.Stop()
		if res.Errors > 0 {
			return 0, fmt.Errorf("fig5 %s/%dKiB: %d errors (worker crashed=%v cause=%v)", v, kib, res.Errors, crashed, cause)
		}
		tputs = append(tputs, res.Throughput)
	}
	sort.Float64s(tputs)
	return tputs[len(tputs)/2], nil
}

// NginxWorkerScaling regenerates the paper's §V-B scaling observation:
// "We scaled the number of workers for NGINX with SDRaD and observed
// that the overhead is independent of that number, as expected" —
// workers are separate processes with independent SDRaD instances, so
// per-request isolation cost does not compound.
func NginxWorkerScaling(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Tab.V-B-scaling",
		Title:  "NGINX SDRaD overhead vs worker-process count (1KiB file)",
		Header: []string{"workers", "vanilla req/s", "sdrad req/s", "overhead"},
		Notes:  []string{"paper: overhead independent of the worker count"},
	}
	files := nginxFiles([]int{1})
	repeats := 3
	if sc.NginxRequests <= Quick.NginxRequests {
		repeats = 1
	}
	measure := func(v httpd.Variant, workers int) (float64, error) {
		tputs := make([]float64, 0, repeats)
		for i := 0; i < repeats; i++ {
			runtime.GC()
			m, err := httpd.NewMaster(httpd.Config{Variant: v, Workers: workers, Files: files})
			if err != nil {
				return 0, err
			}
			res := loadgen.Run(m, loadgen.Config{
				Path:        nginxPath(1),
				Connections: sc.NginxConns,
				Requests:    sc.NginxRequests,
			})
			m.Stop()
			if res.Errors > 0 {
				return 0, fmt.Errorf("nginx scaling %s/%d: %d errors", v, workers, res.Errors)
			}
			tputs = append(tputs, res.Throughput)
		}
		sort.Float64s(tputs)
		return tputs[len(tputs)/2], nil
	}
	for _, workers := range []int{1, 2, 4} {
		base, err := measure(httpd.VariantVanilla, workers)
		if err != nil {
			return nil, err
		}
		hard, err := measure(httpd.VariantSDRaD, workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", workers), fmtTput(base), fmtTput(hard), fmtPct(hard, base))
	}
	return t, nil
}

// NginxRewindLatency regenerates the §V-B recovery comparison: parser
// rewind latency versus master-restarts-worker latency, under the
// CVE-2009-2629 analog.
func NginxRewindLatency(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Tab.V-B",
		Title:  "NGINX recovery: parser rewind vs worker restart",
		Header: []string{"mechanism", "mean", "stddev", "connections preserved"},
		Notes:  []string{"paper: rewind 3.4µs (σ=0.67µs); worker restart 996µs (σ=44µs)"},
	}
	files := nginxFiles([]int{1})
	attack := httpd.FormatRequest("/"+strings.Repeat("../", 200), true)

	// Rewind latency on the hardened build.
	m, err := httpd.NewMaster(httpd.Config{Variant: httpd.VariantSDRaD, Workers: 1, Files: files})
	if err != nil {
		return nil, err
	}
	w := m.Worker(0)
	samples := make([]time.Duration, 0, sc.RewindTrials)
	for i := 0; i < sc.RewindTrials; i++ {
		evil := w.NewConn()
		start := time.Now()
		_, closed, err := evil.Do(attack)
		lat := time.Since(start)
		if err != nil || !closed {
			m.Stop()
			return nil, fmt.Errorf("bench: parser attack %d not recovered (closed=%v err=%v)", i, closed, err)
		}
		samples = append(samples, lat)
	}
	mean, std := meanStd(samples)
	t.AddRow("SDRaD parser rewind", fmtDur(mean), fmtDur(std), "all other connections")
	m.Stop()

	// Worker restart on the baseline build.
	mb, err := httpd.NewMaster(httpd.Config{Variant: httpd.VariantVanilla, Workers: 1, Files: files})
	if err != nil {
		return nil, err
	}
	defer mb.Stop()
	restarts := make([]time.Duration, 0, 5)
	for i := 0; i < 5; i++ {
		evil := mb.Worker(0).NewConn()
		if _, _, err := evil.Do(attack); err == nil {
			return nil, fmt.Errorf("bench: baseline attack %d did not kill the worker", i)
		}
		dur, err := mb.RestartWorker(0)
		if err != nil {
			return nil, err
		}
		restarts = append(restarts, dur)
	}
	rmean, rstd := meanStd(restarts)
	t.AddRow("master restarts worker", fmtDur(rmean), fmtDur(rstd), "none (worker's connections lost)")
	return t, nil
}

// NginxMemoryOverhead regenerates the §V-B RSS comparison after serving
// the 128 KiB workload.
func NginxMemoryOverhead(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Tab.V-B-mem",
		Title:  "NGINX memory overhead after 128KiB benchmark (mapped bytes)",
		Header: []string{"variant", "mapped", "vs vanilla"},
		Notes:  []string{"paper: mean RSS increase 3.06% for SDRaD (4 workers)"},
	}
	files := nginxFiles([]int{128})
	var base float64
	for _, v := range []httpd.Variant{httpd.VariantVanilla, httpd.VariantTLSF, httpd.VariantSDRaD} {
		m, err := httpd.NewMaster(httpd.Config{Variant: v, Workers: 4, Files: files})
		if err != nil {
			return nil, err
		}
		res := loadgen.Run(m, loadgen.Config{
			Path:        nginxPath(128),
			Connections: sc.NginxConns,
			Requests:    sc.NginxRequests / 4,
		})
		if res.Errors > 0 {
			m.Stop()
			return nil, fmt.Errorf("nginx mem %s: %d errors", v, res.Errors)
		}
		var mapped float64
		for i := 0; i < m.Workers(); i++ {
			mapped += float64(m.Worker(i).MappedBytes())
		}
		if v == httpd.VariantVanilla {
			base = mapped
		}
		t.AddRow(v.String(), fmt.Sprintf("%.1f MiB", mapped/(1<<20)), fmtPct(mapped, base))
		m.Stop()
	}
	return t, nil
}
