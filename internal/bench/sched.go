package bench

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdrad/internal/memcache"
	"sdrad/internal/proc"
	"sdrad/internal/sched"
)

// Self-tuning scheduler benchmark: the two cells the adaptive
// batch/shard scheduler is supposed to win, measured as paired
// adaptive-vs-fixed runs on the hardened build.
//
//   - Idle p99: one synchronous client, no pipelining (w1 d1). The
//     adaptive controller collapses its bound to 1 and takes the floor
//     fast path, so a lone request must not pay for the adaptive
//     machinery the fixed build does not have. The two builds are
//     measured op-by-op interleaved in one loop so scheduler and GC
//     noise land on both latency streams alike — the paired p99 ratio
//     isolates the real per-op delta instead of sampling luck.
//
//   - Fault storm: bursts of pipelining clients arrive together with an
//     attacker that lands a CVE-2011-4971-style trap at the head of
//     each burst. The fixed build drains the trap into a full mixed
//     batch, so every trap discards the innocent events batched behind
//     it and closes their connections; the adaptive build's
//     multiplicative decrease pins the bound to the floor while the
//     rewind window is hot, so after the first bursts a trap discards
//     only the attacker. Goodput (successful innocent ops/s over the
//     drain windows) is the score. Burst composition is made
//     deterministic by parking the worker between bursts (the chaos
//     campaigns' Inspect trick) and releasing it only once the queue
//     holds the whole burst, trap first.
//
// Like the parity harness, each round runs the two builds back-to-back
// with alternating order and the recorded statistic is the MEDIAN OF
// PAIRED RATIOS; the CI gate reads the committed recording and is
// therefore deterministic.

// SchedReport captures the scheduler cells. It is embedded into
// ThroughputReport (BENCH_throughput.json) next to the scaling cells.
type SchedReport struct {
	Schema        string  `json:"schema"`
	CalibrationNs float64 `json:"calibration_ns"`
	Rounds        int     `json:"rounds"`
	// IdleP99FixedNs/AdaptiveNs are the median (over rounds) exact p99
	// single-op latencies at w1 d1; IdleP99Ratio is the median paired
	// adaptive/fixed ratio (<= 1 means the scheduler is free at idle).
	IdleP99FixedNs    int64   `json:"idle_p99_fixed_ns"`
	IdleP99AdaptiveNs int64   `json:"idle_p99_adaptive_ns"`
	IdleP99Ratio      float64 `json:"idle_p99_ratio"`
	// StormTputFixed/Adaptive are the median fault-storm goodputs
	// (successful ops/s); StormTputRatio is the median paired
	// adaptive/fixed ratio (the gate demands >= 1.15).
	StormTputFixed    float64 `json:"storm_tput_fixed"`
	StormTputAdaptive float64 `json:"storm_tput_adaptive"`
	StormTputRatio    float64 `json:"storm_tput_ratio"`
	// StormCollateralFixed/Adaptive count requests discarded by rewinds
	// (informational: the mechanism behind the ratio).
	StormCollateralFixed    int64 `json:"storm_collateral_fixed"`
	StormCollateralAdaptive int64 `json:"storm_collateral_adaptive"`
}

// schedSchema versions the JSON layout.
const schedSchema = "sdrad-sched-bench/v1"

// SchedIdleCeiling is the most the adaptive build may cost at idle:
// its w1 d1 p99 must not exceed the fixed build's (ratio <= 1.0 on the
// committed recording).
const SchedIdleCeiling = 1.0

// SchedStormFloor is the least the adaptive build must win the fault
// storm by: >= 1.15x the fixed build's goodput on the committed
// recording.
const SchedStormFloor = 1.15

// CheckSchedGate asserts the report's scheduler cells hold both floors.
// Run against the committed baseline it is exact and deterministic.
func (r *ThroughputReport) CheckSchedGate() error {
	s := r.Sched
	if s == nil {
		return fmt.Errorf("bench: sched: report has no scheduler cells (run sdrad-bench -sched)")
	}
	if s.IdleP99Ratio <= 0 || s.StormTputRatio <= 0 {
		return fmt.Errorf("bench: sched: report cells are empty")
	}
	if s.IdleP99Ratio > SchedIdleCeiling {
		return fmt.Errorf("bench: sched: adaptive idle p99 runs at %.3fx fixed, ceiling is %.2fx",
			s.IdleP99Ratio, SchedIdleCeiling)
	}
	if s.StormTputRatio < SchedStormFloor {
		return fmt.Errorf("bench: sched: adaptive fault-storm goodput is %.3fx fixed, floor is %.2fx",
			s.StormTputRatio, SchedStormFloor)
	}
	return nil
}

// schedServer builds the hardened server under test: the same build
// either way, with the self-tuning scheduler on or off.
func schedServer(adaptive bool, workers int) (*memcache.Server, error) {
	cfg := memcache.Config{
		Variant:    memcache.VariantSDRaD,
		Workers:    workers,
		HashPower:  13,
		CacheBytes: 16 << 20,
	}
	if adaptive {
		cfg.Sched = &sched.Config{}
	}
	return memcache.NewServer(cfg)
}

// idleP99Pair measures the exact p99 single-op latency of a lone
// unpipelined client (w1 d1) against the fixed and adaptive builds AT
// THE SAME TIME: both servers are up, and each loop iteration times one
// op on each, alternating which goes first. A GC pause or scheduler
// hiccup therefore lands in both latency streams, and the p99 ratio
// reflects the per-op code-path difference rather than which run got
// unlucky. The warmup phase populates the key and lets the adaptive
// bound collapse to its floor before anything is recorded.
func idleP99Pair(ops int) (fixedP99, adaptiveP99 int64, err error) {
	fsrv, err := schedServer(false, 1)
	if err != nil {
		return 0, 0, err
	}
	defer fsrv.Stop()
	asrv, err := schedServer(true, 1)
	if err != nil {
		return 0, 0, err
	}
	defer asrv.Stop()
	fconn, aconn := fsrv.NewConn(), asrv.NewConn()
	const key = "idle-key"
	val := bytes.Repeat([]byte("v"), 64)
	set := memcache.FormatSet(key, val, 0)
	get := memcache.FormatGet(key)
	// Long enough to collapse the adaptive bound to its floor AND warm
	// both builds' code paths and allocators past cold-start tails.
	for i := 0; i < 256; i++ {
		if _, _, err := fconn.Do(set); err != nil {
			return 0, 0, err
		}
		if _, _, err := aconn.Do(set); err != nil {
			return 0, 0, err
		}
	}
	timeOne := func(conn *memcache.Conn, req []byte) (int64, error) {
		t0 := time.Now()
		resp, closed, err := conn.Do(req)
		ns := time.Since(t0).Nanoseconds()
		if err != nil || closed || len(resp) == 0 {
			return 0, fmt.Errorf("bench: sched idle op: closed=%v err=%v", closed, err)
		}
		return ns, nil
	}
	flats := make([]int64, 0, ops)
	alats := make([]int64, 0, ops)
	for i := 0; i < ops; i++ {
		req := get
		if i%2 == 1 {
			req = set
		}
		var fns, ans int64
		// The order within a pair alternates on a different period than
		// the op type, so each op class sees both positions equally —
		// otherwise whatever systematic cost first-position carries (the
		// pair starts cold after the previous pair's tail) lands entirely
		// on one stream's p99.
		if (i/2)%2 == 0 {
			if fns, err = timeOne(fconn, req); err == nil {
				ans, err = timeOne(aconn, req)
			}
		} else {
			if ans, err = timeOne(aconn, req); err == nil {
				fns, err = timeOne(fconn, req)
			}
		}
		if err != nil {
			return 0, 0, err
		}
		flats = append(flats, fns)
		alats = append(alats, ans)
	}
	p99 := func(lats []int64) int64 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats[len(lats)*99/100]
	}
	return p99(flats), p99(alats), nil
}

// stormGoodput measures fault-storm goodput on one build: `waves`
// scored bursts (after `warmup` unscored ones that let the adaptive
// controller find its footing), each burst being `clients` depth-4
// pipelined events queued behind one attacker trap while the worker is
// parked. Releasing the worker drains the whole burst: the fixed build
// mixes the trap with the events behind it and loses them to the
// rewind; the adaptive build's collapsed bound isolates the trap.
// Returns successful innocent ops per second of drain time and the
// number of requests lost as rewind collateral.
func stormGoodput(adaptive bool, clients, waves, warmup int) (float64, int64, error) {
	const depth = 4
	s, err := schedServer(adaptive, 1)
	if err != nil {
		return 0, 0, err
	}
	defer s.Stop()

	// Preload each client's keyspace so run-phase gets always hit.
	loader := s.NewConn()
	val := bytes.Repeat([]byte("v"), 64)
	for c := 0; c < clients; c++ {
		for k := 0; k < depth; k++ {
			resp, closed, err := loader.Do(memcache.FormatSet(stormKey(c, k), val, 0))
			if err != nil || closed || !bytes.Equal(resp, []byte("STORED\r\n")) {
				return 0, 0, fmt.Errorf("bench: storm load: closed=%v err=%v resp=%q", closed, err, resp)
			}
		}
	}
	// Each client's burst: one set, then gets (read-mostly, like the
	// YCSB cells).
	reqs := make([][][]byte, clients)
	for c := 0; c < clients; c++ {
		reqs[c] = make([][]byte, depth)
		reqs[c][0] = memcache.FormatSet(stormKey(c, 0), val, 0)
		for k := 1; k < depth; k++ {
			reqs[c][k] = memcache.FormatGet(stormKey(c, k))
		}
	}
	trap := memcache.FormatBSet("atk", 16<<20, []byte("payload"))

	parkC := s.NewConn()
	conns := make([]*memcache.Conn, clients)
	for i := range conns {
		conns[i] = s.NewConn()
	}
	var good, lost int64
	var elapsed time.Duration
	results := make([][]memcache.PipelineResult, clients)
	for wv := 0; wv < warmup+waves; wv++ {
		// Park the worker so the burst queues up behind it.
		started := make(chan struct{})
		release := make(chan struct{})
		parkErr := make(chan error, 1)
		go func() {
			parkErr <- parkC.Inspect(func(*proc.Thread) error {
				close(started)
				<-release
				return nil
			})
		}()
		<-started
		// Trap first: the drain after release picks it up at the head of
		// the burst, so whether innocents die with it is decided purely
		// by the batch bound.
		atkDone := make(chan struct{})
		atk := s.NewConn()
		go func() {
			defer close(atkDone)
			atk.Do(trap)
		}()
		if err := waitQueueDepth(s, 1); err != nil {
			return 0, 0, err
		}
		var wg sync.WaitGroup
		for i := range conns {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = conns[i].DoPipeline(reqs[i])
			}(i)
		}
		if err := waitQueueDepth(s, 1+clients); err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		close(release)
		wg.Wait()
		drain := time.Since(t0)
		<-atkDone
		if err := <-parkErr; err != nil {
			return 0, 0, fmt.Errorf("bench: storm park: %v", err)
		}
		for i := range results {
			reconnect := false
			for _, r := range results[i] {
				switch {
				case r.Err != nil && !r.Closed:
					return 0, 0, fmt.Errorf("bench: storm client: %v", r.Err)
				case r.Closed:
					// Collateral: this request died with the batch the
					// attacker's trap discarded.
					reconnect = true
					if wv >= warmup {
						lost++
					}
				default:
					if wv >= warmup {
						good++
					}
				}
			}
			if reconnect {
				conns[i] = s.NewConn()
			}
		}
		if wv >= warmup {
			elapsed += drain
		}
	}
	if s.Rewinds() == 0 {
		return 0, 0, fmt.Errorf("bench: storm: attacker landed no rewinds")
	}
	return float64(good) / elapsed.Seconds(), lost, nil
}

// waitQueueDepth polls until worker 0's queue holds want events.
func waitQueueDepth(s *memcache.Server, want int) error {
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth(0) < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: storm: queue depth %d never reached %d", s.QueueDepth(0), want)
		}
		time.Sleep(10 * time.Microsecond)
	}
	return nil
}

// stormKey names client c's k-th key.
func stormKey(c, k int) string { return fmt.Sprintf("storm-%02d-%02d", c, k) }

// RunSched measures the scheduler cells with paired adaptive-vs-fixed
// rounds and returns the report plus a printable table.
func RunSched(sc Scale) (*SchedReport, *Table, error) {
	rounds := 5
	idleOps := 4000
	stormClients := 8
	stormWaves := 30
	stormWarmup := 4
	if sc.MemcachedOps <= Quick.MemcachedOps {
		rounds = 3
		idleOps = 1500
		stormWaves = 10
	}
	rep := &SchedReport{Schema: schedSchema, Rounds: rounds}

	var idleRatios []float64
	var idleFixed, idleAdaptive []float64
	var stormRatios []float64
	var stormFixed, stormAdaptive []float64
	for r := 0; r < rounds; r++ {
		// Idle cell: the two builds are interleaved inside one loop, so
		// there is no order to alternate.
		fp99, ap99, err := idleP99Pair(idleOps)
		if err != nil {
			return nil, nil, err
		}
		idleRatios = append(idleRatios, float64(ap99)/float64(fp99))
		idleFixed = append(idleFixed, float64(fp99))
		idleAdaptive = append(idleAdaptive, float64(ap99))

		// Storm cell, order alternating.
		var ftput, atput float64
		var flost, alost int64
		if r%2 == 0 {
			if ftput, flost, err = stormGoodput(false, stormClients, stormWaves, stormWarmup); err == nil {
				atput, alost, err = stormGoodput(true, stormClients, stormWaves, stormWarmup)
			}
		} else {
			if atput, alost, err = stormGoodput(true, stormClients, stormWaves, stormWarmup); err == nil {
				ftput, flost, err = stormGoodput(false, stormClients, stormWaves, stormWarmup)
			}
		}
		if err != nil {
			return nil, nil, err
		}
		stormRatios = append(stormRatios, atput/ftput)
		stormFixed = append(stormFixed, ftput)
		stormAdaptive = append(stormAdaptive, atput)
		rep.StormCollateralFixed += flost
		rep.StormCollateralAdaptive += alost
	}
	rep.IdleP99FixedNs = int64(medianOf(idleFixed))
	rep.IdleP99AdaptiveNs = int64(medianOf(idleAdaptive))
	rep.IdleP99Ratio = medianOf(idleRatios)
	rep.StormTputFixed = medianOf(stormFixed)
	rep.StormTputAdaptive = medianOf(stormAdaptive)
	rep.StormTputRatio = medianOf(stormRatios)
	rep.CalibrationNs = calibrationNs()

	t := &Table{
		ID:     "Sched",
		Title:  "Self-tuning scheduler: adaptive vs fixed batch bound (paired rounds)",
		Header: []string{"cell", "fixed", "adaptive", "paired ratio", "gate"},
		Notes: []string{
			fmt.Sprintf("%d rounds; idle ops interleave the two builds, storm runs them back-to-back alternating order", rounds),
			"idle: one unpipelined client, exact p99; storm: bursts of 8 pipelined events queued behind a trap, goodput over drain",
			fmt.Sprintf("collateral requests discarded by rewinds: fixed %d, adaptive %d (all scored waves)",
				rep.StormCollateralFixed, rep.StormCollateralAdaptive),
			fmt.Sprintf("committed-baseline gates: idle ratio <= %.2f, storm ratio >= %.2f", SchedIdleCeiling, SchedStormFloor),
		},
	}
	t.AddRow("idle p99 (w1 d1)",
		fmt.Sprintf("%dns", rep.IdleP99FixedNs),
		fmt.Sprintf("%dns", rep.IdleP99AdaptiveNs),
		fmt.Sprintf("%.3fx", rep.IdleP99Ratio),
		fmt.Sprintf("<= %.2fx", SchedIdleCeiling))
	t.AddRow("fault-storm goodput",
		fmtTput(rep.StormTputFixed),
		fmtTput(rep.StormTputAdaptive),
		fmt.Sprintf("%.3fx", rep.StormTputRatio),
		fmt.Sprintf(">= %.2fx", SchedStormFloor))
	return rep, t, nil
}
