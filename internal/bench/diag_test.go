package bench

import (
	"os"
	"runtime"
	"runtime/debug"
	"testing"

	"sdrad/internal/memcache"
	"sdrad/internal/telemetry"
	"sdrad/internal/ycsb"
)

// TestDiagPhaseNoise is a manual diagnostic: replay identical run phases
// on one server, alternating the recorder's enabled bit, and print each
// phase's CPU cost — the data for judging the noise floor the telemetry
// guard has to beat (and where the cost valley flattens out). Opt-in via
// SDRAD_BENCH_DIAG=1 since it takes ~30s of pure benchmarking.
func TestDiagPhaseNoise(t *testing.T) {
	if os.Getenv("SDRAD_BENCH_DIAG") == "" {
		t.Skip("diagnostic; set SDRAD_BENCH_DIAG=1 to run")
	}
	osc := Quick
	osc.MemcachedOps *= 64
	rec := telemetry.New(telemetry.Options{})
	rec.SetEnabled(false)
	s, err := memcachedServerTel(memcache.VariantSDRaD, osc, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	runner, err := ycsb.NewRunner(ycsb.Config{Records: osc.MemcachedRecords, Operations: osc.MemcachedOps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inlineLoadPhase(s, 1, runner.Config()); err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 3; i++ {
		runtime.GC()
		if _, err := inlineRunPhase(s, 1, runner); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		on := i%2 == 1
		runtime.GC()
		rec.SetEnabled(on)
		st, err := inlineRunPhase(s, 1, runner)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("phase %2d on=%-5v: cpu/op %.0f ns  wall/op %.0f ns", i, on,
			st.CPUSeconds*1e9/float64(st.Operations),
			float64(st.Elapsed.Nanoseconds())/float64(st.Operations))
	}
}
