package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"sdrad/internal/memcache"
	"sdrad/internal/ycsb"
)

// ThroughputReport captures the Memcached scaling curve measured through
// the server's real event-channel path: YCSB run-phase throughput per
// (variant, worker count, pipeline depth) cell. It round-trips through
// BENCH_throughput.json so CI can fail when a change costs the batched
// guard scopes their throughput.
type ThroughputReport struct {
	Schema string `json:"schema"`
	// CalibrationNs is the same machine-speed yardstick the substrate
	// report records; regression checks rescale the baseline by the
	// calibration ratio before comparing.
	CalibrationNs float64 `json:"calibration_ns"`
	// CPUs and GoVersion document the recording machine (informational,
	// not compared — the calibration ratio is the yardstick). Absent in
	// older baselines.
	CPUs      int    `json:"cpus,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Records/Operations document the workload the cells were measured
	// at (informational, not compared).
	Records    int `json:"records"`
	Operations int `json:"operations"`
	// RunTput maps "sdrad_w8_d16"-style cell names to run-phase ops/s.
	// Gated by CheckAgainst at throughputTolerancePct.
	RunTput map[string]float64 `json:"run_tput"`
	// ParityRatios maps "w8_d16"-style cell names to the MEDIAN PAIRED
	// sdrad/vanilla ratio of the same runs (see parity.go for why the
	// paired estimator, not the ratio of the two medians above, is the
	// statistic the parity gate trusts). Absent in pre-parity baselines.
	ParityRatios map[string]float64 `json:"parity_ratios,omitempty"`
	// Sched holds the self-tuning scheduler cells (idle p99 and
	// fault-storm goodput, adaptive vs fixed; see sched.go). Absent in
	// pre-scheduler baselines; gated by CheckSchedGate.
	Sched *SchedReport `json:"sched,omitempty"`
}

// throughputSchema versions the JSON layout.
const throughputSchema = "sdrad-throughput-bench/v1"

// throughputTolerancePct is the throughput drop CI gates on. End-to-end
// server throughput on shared single-core runners is far noisier than
// the substrate micro ops, so the gate is correspondingly wider: it
// exists to catch "the batching amortization broke" (a 2-3x effect at
// depth 16), not single-digit drift.
const throughputTolerancePct = 25.0

// throughputCell names one measured cell.
func throughputCell(v memcache.Variant, workers, depth int) string {
	return fmt.Sprintf("%s_w%d_d%d", v, workers, depth)
}

// channelYCSB measures one (variant, workers, depth) cell through the
// event-channel path: the server runs `workers` real event-loop workers
// and each of `workers` client goroutines owns one connection, issuing
// the YCSB op stream with Conn.Do (depth 1) or Conn.DoPipeline (deeper).
// Unlike the Figure-4 inline harness — which bypasses the channel
// rendezvous to isolate variant cost — this path keeps the rendezvous
// in, because that is precisely what pipelined batches amortize: one
// channel round and one guard scope now carry up to MaxBatch requests.
func channelYCSB(variant memcache.Variant, workers, depth int, sc Scale, ops int) (float64, error) {
	runtime.GC()
	s, err := memcache.NewServer(memcache.Config{
		Variant:    variant,
		Workers:    workers,
		HashPower:  15,
		CacheBytes: uint64(sc.MemcachedRecords)*1536 + 8<<20,
	})
	if err != nil {
		return 0, err
	}
	defer s.Stop()
	runner, err := ycsb.NewRunner(ycsb.Config{
		Records:    sc.MemcachedRecords,
		Operations: ops,
	})
	if err != nil {
		return 0, err
	}
	cfg := runner.Config()
	if depth > s.MaxBatch() {
		depth = s.MaxBatch()
	}

	// Load phase (unmeasured): populate the keyspace pipelined at the
	// batch limit so the measured phase starts from identical state no
	// matter the cell's depth.
	if err := eachConn(s, workers, cfg.Records, func(w, lo, hi int, conn *memcache.Conn) error {
		reqs := make([][]byte, 0, s.MaxBatch())
		for i := lo; i < hi; i += len(reqs) {
			reqs = reqs[:0]
			for j := i; j < hi && len(reqs) < s.MaxBatch(); j++ {
				reqs = append(reqs, memcache.FormatSet(ycsb.Key(j), ycsb.Value(j, cfg.ValueSize), 0))
			}
			for _, r := range conn.DoPipeline(reqs) {
				if r.Err != nil || !bytes.Equal(r.Resp, []byte("STORED\r\n")) {
					return fmt.Errorf("bench: load: err=%v resp=%q", r.Err, r.Resp)
				}
			}
		}
		return nil
	}, nil); err != nil {
		return 0, err
	}

	// Run phase: plan depth-sized bursts and issue each as one pipeline.
	plan := runner.OpPlanner()
	var elapsed time.Duration
	if err := eachConn(s, workers, ops, func(w, lo, hi int, conn *memcache.Conn) error {
		rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
		burst := make([]ycsb.Op, depth)
		reqs := make([][]byte, depth)
		for i := lo; i < hi; {
			n := depth
			if hi-i < n {
				n = hi - i
			}
			plan(rng, burst[:n])
			for j, op := range burst[:n] {
				if op.Read {
					reqs[j] = memcache.FormatGet(ycsb.Key(op.Index))
				} else {
					reqs[j] = memcache.FormatSet(ycsb.Key(op.Index), ycsb.Value(op.Index, cfg.ValueSize), 0)
				}
			}
			var res []memcache.PipelineResult
			if n == 1 {
				resp, closed, err := conn.Do(reqs[0])
				res = []memcache.PipelineResult{{Resp: resp, Closed: closed, Err: err}}
			} else {
				res = conn.DoPipeline(reqs[:n])
			}
			for j, r := range res {
				if r.Err != nil || r.Closed {
					return fmt.Errorf("bench: run op %d: closed=%v err=%v", i+j, r.Closed, r.Err)
				}
				if burst[j].Read {
					if _, _, ok := memcache.ParseGetValue(r.Resp); !ok {
						return fmt.Errorf("bench: run op %d: miss on loaded key", i+j)
					}
				} else if !bytes.Equal(r.Resp, []byte("STORED\r\n")) {
					return fmt.Errorf("bench: run op %d: %q", i+j, r.Resp)
				}
			}
			i += n
		}
		return nil
	}, &elapsed); err != nil {
		return 0, err
	}
	return float64(ops) / elapsed.Seconds(), nil
}

// eachConn fans [0, total) out over `workers` goroutines, each owning a
// fresh connection (NewConn pins round-robin, so with one goroutine per
// worker every event loop serves exactly one client). When elapsed is
// non-nil, the fan-out is gated so it times the barrier-to-last-finish
// wall clock the way inlinePhase does.
func eachConn(s *memcache.Server, workers, total int, body func(w, lo, hi int, conn *memcache.Conn) error,
	elapsed *time.Duration) error {
	conns := make([]*memcache.Conn, workers)
	for w := range conns {
		conns[w] = s.NewConn()
	}
	errs := make(chan error, workers)
	startGate := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-startGate
			errs <- body(w, w*total/workers, (w+1)*total/workers, conns[w])
		}(w)
	}
	var start time.Time
	if elapsed != nil {
		start = time.Now()
	}
	close(startGate)
	wg.Wait()
	if elapsed != nil {
		*elapsed = time.Since(start)
	}
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunThroughput measures the Memcached scaling curve — vanilla and sdrad
// throughput across worker counts and pipeline depths — returning the
// machine-readable report and a printable table.
func RunThroughput(sc Scale, workerCounts, depths []int) (*ThroughputReport, *Table, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if len(depths) == 0 {
		depths = []int{1, 4, 16}
	}
	ops := sc.MemcachedOps
	repeats := 5
	if sc.MemcachedOps <= Quick.MemcachedOps {
		repeats = 1
	} else {
		// Stretch the run phase the way the Figure-4 and substrate cells
		// do: at stock full scale one GC pause moves a cell by ~10%.
		ops *= 2
	}
	rep := &ThroughputReport{
		Schema:       throughputSchema,
		CPUs:         runtime.NumCPU(),
		GoVersion:    runtime.Version(),
		Records:      sc.MemcachedRecords,
		Operations:   ops,
		RunTput:      make(map[string]float64, 2*len(workerCounts)*len(depths)),
		ParityRatios: make(map[string]float64, len(workerCounts)*len(depths)),
	}
	t := &Table{
		ID:     "Scaling",
		Title:  "Memcached YCSB channel-path throughput by workers and pipeline depth",
		Header: []string{"workers", "depth", "vanilla", "sdrad", "paired ratio"},
		Notes: []string{
			fmt.Sprintf("workload: %d records x 1KiB, %d ops, 95/5 read/update, Zipfian, via Conn.Do/DoPipeline", sc.MemcachedRecords, ops),
			"depth>1 sends one pipelined burst per round: the hardened build handles it in ONE guard scope",
			"paired ratio = median over rounds of (sdrad tput / vanilla tput of the SAME round)",
			"gated in CI against BENCH_throughput.json (>25% speed-adjusted throughput drop fails)",
		},
	}
	for _, workers := range workerCounts {
		for _, depth := range depths {
			// Each cell is measured with the paired harness from parity.go:
			// back-to-back (vanilla, sdrad) rounds with alternating order,
			// so the recorded ratio reflects variant cost rather than the
			// scheduler drift between two blocks of repeats minutes apart.
			ratio, van, sd, err := pairedCell(workers, depth, repeats, sc, ops)
			if err != nil {
				return nil, nil, fmt.Errorf("throughput w%d/d%d: %w", workers, depth, err)
			}
			rep.RunTput[throughputCell(memcache.VariantVanilla, workers, depth)] = van
			rep.RunTput[throughputCell(memcache.VariantSDRaD, workers, depth)] = sd
			rep.ParityRatios[parityCell(workers, depth)] = ratio
			t.AddRow(
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", depth),
				fmtTput(van),
				fmtTput(sd),
				fmt.Sprintf("%.3fx", ratio),
			)
		}
	}
	rep.CalibrationNs = calibrationNs()
	return rep, t, nil
}

// WriteJSON writes the report to path.
func (r *ThroughputReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadThroughputBaseline reads a previously committed report.
func LoadThroughputBaseline(path string) (*ThroughputReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ThroughputReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CheckAgainst compares the report's cells with a baseline, returning an
// error naming every cell whose throughput dropped by more than the
// tolerance. The baseline is first rescaled by the calibration speed
// ratio (throughput scales inversely with per-op cost), so a baseline
// committed from one machine transfers to a runner with a different
// clock. Cells missing from either side are ignored.
func (r *ThroughputReport) CheckAgainst(base *ThroughputReport) error {
	speed := 1.0
	if base.CalibrationNs > 0 && r.CalibrationNs > 0 {
		speed = r.CalibrationNs / base.CalibrationNs
	}
	var regressions []string
	for _, k := range sortedKeys(base.RunTput) {
		want := base.RunTput[k] / speed
		cur, ok := r.RunTput[k]
		if !ok || want <= 0 {
			continue
		}
		if pct := (want - cur) / want * 100; pct > throughputTolerancePct {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ops/s (-%.1f%% vs speed-adjusted baseline)", k, want, cur, pct))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: throughput regression beyond %.0f%%: %v",
			throughputTolerancePct, regressions)
	}
	return nil
}
