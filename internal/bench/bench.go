// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§V) on the simulated
// substrate. Each experiment returns a Table that prints in the shape of
// the paper's artifact; the root-level testing.B benchmarks and the
// cmd/sdrad-bench binary both drive these functions.
//
// Absolute numbers differ from the paper — the substrate is a software
// MMU, not a Xeon — but the comparisons the paper draws (who wins, by
// roughly what factor, where the crossovers are) are preserved. See
// EXPERIMENTS.md for the paper-vs-measured record.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Scale sizes the experiments. Quick keeps unit-test latency low; Full
// approaches the paper's configuration as far as the simulation allows.
type Scale struct {
	// MemcachedRecords/Ops: the YCSB load and run sizes (paper: 1e7/1e8).
	MemcachedRecords int
	MemcachedOps     int
	// ClientThreads per YCSB phase (paper: 32 clients × 16 threads).
	ClientThreads int
	// NginxRequests/NginxConns size the ApacheBench runs (paper: 75
	// concurrent connections).
	NginxRequests int
	NginxConns    int
	// CryptoIters is the per-size iteration count for the OpenSSL speed
	// benchmark (paper: 3 s per size).
	CryptoIters int
	// RewindTrials is the sample count for latency measurements.
	RewindTrials int
}

// Quick is the scale used by the test suite.
var Quick = Scale{
	MemcachedRecords: 2000,
	MemcachedOps:     6000,
	ClientThreads:    4,
	NginxRequests:    2000,
	NginxConns:       16,
	CryptoIters:      300,
	RewindTrials:     25,
}

// Full is the scale used by cmd/sdrad-bench.
var Full = Scale{
	MemcachedRecords: 20000,
	MemcachedOps:     100000,
	ClientThreads:    8,
	NginxRequests:    20000,
	NginxConns:       75,
	CryptoIters:      2000,
	RewindTrials:     200,
}

// Table is one rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// fmtDur renders a duration with microsecond precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// fmtPct renders a relative overhead percentage versus a baseline.
func fmtPct(value, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (value-baseline)/baseline*100)
}

// fmtTput renders an operations/second figure.
func fmtTput(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f/s", v)
	}
}

// meanStd computes the mean and standard deviation of samples.
func meanStd(samples []time.Duration) (mean, std time.Duration) {
	if len(samples) == 0 {
		return 0, 0
	}
	var sum float64
	for _, s := range samples {
		sum += float64(s)
	}
	m := sum / float64(len(samples))
	var varsum float64
	for _, s := range samples {
		d := float64(s) - m
		varsum += d * d
	}
	return time.Duration(m), time.Duration(fsqrt(varsum / float64(len(samples))))
}

// fsqrt avoids importing math for one call site.
func fsqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}
