package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny is an even smaller scale than Quick, for unit tests.
var tiny = Scale{
	MemcachedRecords: 300,
	MemcachedOps:     600,
	ClientThreads:    2,
	NginxRequests:    300,
	NginxConns:       4,
	CryptoIters:      20,
	RewindTrials:     4,
}

func TestFig4Memcached(t *testing.T) {
	tbl, err := Fig4MemcachedThroughput(tiny, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 2 worker counts x 3 variants
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Fig.4", "vanilla", "tlsf", "sdrad"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestMemcachedRewindLatency(t *testing.T) {
	tbl, err := MemcachedRewindLatency(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), "rewind") {
		t.Error("missing rewind row")
	}
}

func TestMemcachedMemoryOverhead(t *testing.T) {
	tbl, err := MemcachedMemoryOverhead(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestFig5Nginx(t *testing.T) {
	tbl, err := Fig5NginxThroughput(tiny, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestNginxRewindLatency(t *testing.T) {
	tbl, err := NginxRewindLatency(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestNginxMemoryOverhead(t *testing.T) {
	tbl, err := NginxMemoryOverhead(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestOpenSSLSpeed(t *testing.T) {
	tbl, err := OpenSSLSpeed(tiny, []int{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 { // 2 sizes x 4 modes
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	// The shared mode must copy no bytes per op; copy-both must copy
	// input + output.
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	t.Log("\n" + buf.String())
}

func TestX509Rewind(t *testing.T) {
	tbl, err := X509Rewind(tiny)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), "true") {
		t.Error("process-survived row missing")
	}
}

func TestDomainSwitchBreakdown(t *testing.T) {
	tbl, err := DomainSwitchBreakdown(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestAblations(t *testing.T) {
	for name, fn := range map[string]func(Scale) (*Table, error){
		"stack-reuse": AblationStackReuse,
		"heap-merge":  AblationHeapMerge,
		"scrub":       AblationScrub,
	} {
		tbl, err := fn(tiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "rewind-openssl", tiny); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	if err := Run(&buf, "nope", tiny); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestHelpers(t *testing.T) {
	if fmtDur(1500*time.Nanosecond) == "" || fmtDur(2*time.Millisecond) == "" || fmtDur(3*time.Second) == "" {
		t.Error("fmtDur broken")
	}
	if fmtPct(110, 100) != "+10.0%" {
		t.Errorf("fmtPct = %s", fmtPct(110, 100))
	}
	if fmtPct(1, 0) != "n/a" {
		t.Error("fmtPct zero baseline")
	}
	if fmtTput(2e6) == "" || fmtTput(2e3) == "" || fmtTput(2) == "" {
		t.Error("fmtTput broken")
	}
	mean, std := meanStd([]time.Duration{10, 10, 10})
	if mean != 10 || std != 0 {
		t.Errorf("meanStd = %v %v", mean, std)
	}
	if m, _ := meanStd(nil); m != 0 {
		t.Error("empty meanStd")
	}
	if fmtSize(16) != "16B" || fmtSize(2048) != "2KiB" {
		t.Error("fmtSize broken")
	}
}

func TestNginxWorkerScaling(t *testing.T) {
	tbl, err := NginxWorkerScaling(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}
