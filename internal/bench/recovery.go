package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"sdrad/internal/memcache"
	"sdrad/internal/ycsb"
)

// RecoveryReport quantifies the paper's central resilience claim in
// cost terms: recovering a compromised component by rewinding its
// domain versus recovering it the traditional way, by restarting the
// process and rebuilding its state. Each recovery cycle is driven
// through the hardened memcached server — one CVE-2011-4971 overflow,
// one absorbed rewind, service re-verified — against a control arm that
// pays a full server teardown, rebuild, and dataset reload per cycle.
// The report round-trips through BENCH_recovery.json so CI gates both
// the rewind arm's absolute cost and the rewind-vs-restart ratio.
type RecoveryReport struct {
	Schema string `json:"schema"`
	// CalibrationNs is the machine-speed yardstick shared with the
	// substrate report; regression checks rescale the baseline by the
	// calibration ratio before comparing.
	CalibrationNs float64 `json:"calibration_ns"`
	// Records is the dataset the restart arm must reload per recovery
	// (the state a process restart loses and a rewind keeps).
	Records int `json:"records"`
	// Cycles is the number of measured recoveries per arm.
	Cycles int `json:"cycles"`
	// RewindWallNs/RestartWallNs: median wall-clock per recovery.
	RewindWallNs  float64 `json:"rewind_wall_ns"`
	RestartWallNs float64 `json:"restart_wall_ns"`
	// RewindCPUSec/RestartCPUSec: mean rusage (user+system) CPU-seconds
	// per recovery, from RUSAGE_SELF deltas around each arm.
	RewindCPUSec  float64 `json:"rewind_cpu_seconds"`
	RestartCPUSec float64 `json:"restart_cpu_seconds"`
	// WallRatio/CPURatio: restart cost over rewind cost (>1 means
	// rewinding is cheaper). WallRatio is gated by CheckAgainst.
	WallRatio float64 `json:"wall_ratio"`
	CPURatio  float64 `json:"cpu_ratio"`
}

// recoverySchema versions the JSON layout.
const recoverySchema = "sdrad-recovery-bench/v1"

// recoveryRatioFloor is the invariant CI enforces regardless of
// baseline: a rewind recovery must stay at least this many times
// cheaper (wall clock) than a process restart. The measured gap is
// orders of magnitude; the floor only catches the claim collapsing.
const recoveryRatioFloor = 3.0

// recoveryTolerancePct bounds how much the rewind arm's speed-adjusted
// per-recovery cost may grow over the committed baseline. Single
// recoveries are microsecond-scale events on shared runners, so the
// gate is wide: it exists to catch "rewind recovery got an order of
// magnitude slower", not scheduler jitter.
const recoveryTolerancePct = 150.0

// recoveryKey derives the YCSB key a cycle re-verifies after recovery.
func recoveryKey(records, cycle int) string {
	return ycsb.Key(cycle % records)
}

// loadRecords populates the server with the benchmark dataset through
// one pipelined connection — the state the restart arm pays to rebuild.
func loadRecoveryDataset(s *memcache.Server, records int) error {
	conn := s.NewConn()
	reqs := make([][]byte, 0, s.MaxBatch())
	for i := 0; i < records; i += len(reqs) {
		reqs = reqs[:0]
		for j := i; j < records && len(reqs) < s.MaxBatch(); j++ {
			reqs = append(reqs, memcache.FormatSet(ycsb.Key(j), ycsb.Value(j, 128), 0))
		}
		for _, r := range conn.DoPipeline(reqs) {
			if r.Err != nil || !bytes.Equal(r.Resp, []byte("STORED\r\n")) {
				return fmt.Errorf("bench: recovery load: err=%v resp=%q", r.Err, r.Resp)
			}
		}
	}
	return nil
}

// verifyGet checks post-recovery service: the key must be served with
// its value intact.
func verifyGet(conn *memcache.Conn, key string) error {
	resp, closed, err := conn.Do(memcache.FormatGet(key))
	if err != nil || closed {
		return fmt.Errorf("bench: recovery verify: closed=%v err=%v", closed, err)
	}
	if _, _, ok := memcache.ParseGetValue(resp); !ok {
		return fmt.Errorf("bench: recovery verify: miss (%q)", resp)
	}
	return nil
}

// measureRewindRecovery times `cycles` rewind recoveries: attack →
// absorbed rewind (connection closed, domain discarded) → reconnect →
// service verified on the surviving dataset.
func measureRewindRecovery(records, cycles int) (wallNs []float64, cpuSec float64, err error) {
	s, err := memcache.NewServer(memcache.Config{
		Variant:   memcache.VariantSDRaD,
		Workers:   1,
		HashPower: 15,
	})
	if err != nil {
		return nil, 0, err
	}
	defer s.Stop()
	if err := loadRecoveryDataset(s, records); err != nil {
		return nil, 0, err
	}
	attack := memcache.FormatBSet("atk", 1<<20, nil)
	conn := s.NewConn()
	recoverOnce := func(cycle int) error {
		_, closed, err := conn.Do(attack)
		if err != nil {
			return fmt.Errorf("bench: rewind attack: %w", err)
		}
		if !closed {
			return fmt.Errorf("bench: rewind attack did not close the connection")
		}
		conn = s.NewConn()
		return verifyGet(conn, recoveryKey(records, cycle))
	}
	// Warm-up recovery: first rewind takes the lazy re-init path.
	if err := recoverOnce(0); err != nil {
		return nil, 0, err
	}
	preRewinds := s.Rewinds()
	runtime.GC()
	wallNs = make([]float64, cycles)
	cpu0 := ycsb.ProcessCPUSeconds()
	for i := 0; i < cycles; i++ {
		t0 := time.Now()
		if err := recoverOnce(i); err != nil {
			return nil, 0, err
		}
		wallNs[i] = float64(time.Since(t0).Nanoseconds())
	}
	cpuSec = ycsb.ProcessCPUSeconds() - cpu0
	if got := s.Rewinds() - preRewinds; got != int64(cycles) {
		return nil, 0, fmt.Errorf("bench: rewind arm absorbed %d rewinds, want %d", got, cycles)
	}
	return wallNs, cpuSec, nil
}

// measureRestartRecovery times `cycles` process-restart recoveries: the
// control arm tears the vanilla server down (the process the overflow
// killed), builds a fresh one, reloads the dataset, and re-verifies
// service — the cost the paper's rewind mechanism avoids.
func measureRestartRecovery(records, cycles int) (wallNs []float64, cpuSec float64, err error) {
	cfg := memcache.Config{
		Variant:   memcache.VariantVanilla,
		Workers:   1,
		HashPower: 15,
	}
	s, err := memcache.NewServer(cfg)
	if err != nil {
		return nil, 0, err
	}
	if err := loadRecoveryDataset(s, records); err != nil {
		s.Stop()
		return nil, 0, err
	}
	runtime.GC()
	wallNs = make([]float64, cycles)
	cpu0 := ycsb.ProcessCPUSeconds()
	for i := 0; i < cycles; i++ {
		t0 := time.Now()
		s.Stop()
		s, err = memcache.NewServer(cfg)
		if err != nil {
			return nil, 0, err
		}
		if err := loadRecoveryDataset(s, records); err != nil {
			s.Stop()
			return nil, 0, err
		}
		if err := verifyGet(s.NewConn(), recoveryKey(records, i)); err != nil {
			s.Stop()
			return nil, 0, err
		}
		wallNs[i] = float64(time.Since(t0).Nanoseconds())
	}
	cpuSec = ycsb.ProcessCPUSeconds() - cpu0
	s.Stop()
	return wallNs, cpuSec, nil
}

func medianFloat(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// RunRecovery measures both recovery arms and returns the gateable
// report plus a printable table.
func RunRecovery(sc Scale) (*RecoveryReport, *Table, error) {
	records := sc.MemcachedRecords
	cycles := 8
	if sc.MemcachedOps > Quick.MemcachedOps {
		cycles = 16
	}
	rewindWall, rewindCPU, err := measureRewindRecovery(records, cycles)
	if err != nil {
		return nil, nil, fmt.Errorf("recovery rewind arm: %w", err)
	}
	restartWall, restartCPU, err := measureRestartRecovery(records, cycles)
	if err != nil {
		return nil, nil, fmt.Errorf("recovery restart arm: %w", err)
	}
	rep := &RecoveryReport{
		Schema:        recoverySchema,
		CalibrationNs: calibrationNs(),
		Records:       records,
		Cycles:        cycles,
		RewindWallNs:  medianFloat(rewindWall),
		RestartWallNs: medianFloat(restartWall),
		RewindCPUSec:  rewindCPU / float64(cycles),
		RestartCPUSec: restartCPU / float64(cycles),
	}
	if rep.RewindWallNs > 0 {
		rep.WallRatio = rep.RestartWallNs / rep.RewindWallNs
	}
	if rep.RewindCPUSec > 0 {
		rep.CPURatio = rep.RestartCPUSec / rep.RewindCPUSec
	}
	t := &Table{
		ID:     "Recovery",
		Title:  "Recovery cost per absorbed attack: domain rewind vs process restart",
		Header: []string{"arm", "wall/recovery", "cpu-sec/recovery", "restart/rewind"},
		Notes: []string{
			fmt.Sprintf("%d recovery cycles per arm; restart arm reloads %d records the rewind arm keeps", cycles, records),
			"rewind arm: CVE-2011-4971 overflow -> absorbed rewind -> reconnect -> verified get",
			"restart arm: server teardown -> rebuild -> dataset reload -> verified get",
			fmt.Sprintf("gated in CI against BENCH_recovery.json (ratio floor %.0fx, +%.0f%% rewind-cost growth fails)",
				recoveryRatioFloor, recoveryTolerancePct),
		},
	}
	t.AddRow("rewind", fmtDur(time.Duration(rep.RewindWallNs)), fmt.Sprintf("%.6f", rep.RewindCPUSec), "1.0x")
	t.AddRow("restart", fmtDur(time.Duration(rep.RestartWallNs)), fmt.Sprintf("%.6f", rep.RestartCPUSec),
		fmt.Sprintf("%.1fx", rep.WallRatio))
	return rep, t, nil
}

// WriteJSON writes the report to path.
func (r *RecoveryReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRecoveryBaseline reads a previously committed report.
func LoadRecoveryBaseline(path string) (*RecoveryReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RecoveryReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CheckAgainst gates the report: the rewind-vs-restart wall ratio must
// hold the floor (the resilience claim itself), and the rewind arm's
// speed-adjusted per-recovery cost must not blow past the baseline.
// Cost scales with per-op cost, so the baseline is multiplied by the
// calibration speed ratio before comparing.
func (r *RecoveryReport) CheckAgainst(base *RecoveryReport) error {
	if r.WallRatio < recoveryRatioFloor {
		return fmt.Errorf("bench: recovery ratio %.2fx below floor %.0fx: rewind (%.0fns) is no longer clearly cheaper than restart (%.0fns)",
			r.WallRatio, recoveryRatioFloor, r.RewindWallNs, r.RestartWallNs)
	}
	speed := 1.0
	if base.CalibrationNs > 0 && r.CalibrationNs > 0 {
		speed = r.CalibrationNs / base.CalibrationNs
	}
	if want := base.RewindWallNs * speed; want > 0 {
		if pct := (r.RewindWallNs - want) / want * 100; pct > recoveryTolerancePct {
			return fmt.Errorf("bench: rewind recovery cost regression: %.0fns -> %.0fns (+%.1f%% vs speed-adjusted baseline, tolerance %.0f%%)",
				want, r.RewindWallNs, pct, recoveryTolerancePct)
		}
	}
	return nil
}
