package bench

import (
	"fmt"
	"io"
)

// Experiment names accepted by Run.
var Experiments = []string{
	"fig4", "rewind-memcached", "mem-memcached",
	"fig5", "scaling-nginx", "rewind-nginx", "mem-nginx",
	"openssl", "rewind-openssl",
	"switchcost", "ablations", "substrate", "throughput", "recovery",
	"cluster",
}

// Run executes one named experiment at the given scale and prints its
// table(s) to w.
func Run(w io.Writer, name string, sc Scale) error {
	var tables []*Table
	var err error
	switch name {
	case "fig4":
		var t *Table
		t, err = Fig4MemcachedThroughput(sc, nil)
		tables = append(tables, t)
	case "rewind-memcached":
		var t *Table
		t, err = MemcachedRewindLatency(sc)
		tables = append(tables, t)
	case "mem-memcached":
		var t *Table
		t, err = MemcachedMemoryOverhead(sc)
		tables = append(tables, t)
	case "fig5":
		var t *Table
		t, err = Fig5NginxThroughput(sc, nil)
		tables = append(tables, t)
	case "scaling-nginx":
		var t *Table
		t, err = NginxWorkerScaling(sc)
		tables = append(tables, t)
	case "rewind-nginx":
		var t *Table
		t, err = NginxRewindLatency(sc)
		tables = append(tables, t)
	case "mem-nginx":
		var t *Table
		t, err = NginxMemoryOverhead(sc)
		tables = append(tables, t)
	case "openssl":
		var t *Table
		t, err = OpenSSLSpeed(sc, nil)
		tables = append(tables, t)
	case "rewind-openssl":
		var t *Table
		t, err = X509Rewind(sc)
		tables = append(tables, t)
	case "switchcost":
		var t *Table
		t, err = DomainSwitchBreakdown(sc)
		tables = append(tables, t)
	case "ablations":
		for _, fn := range []func(Scale) (*Table, error){AblationStackReuse, AblationHeapMerge, AblationScrub} {
			t, ferr := fn(sc)
			if ferr != nil {
				return ferr
			}
			tables = append(tables, t)
		}
	case "substrate":
		var t *Table
		_, t, err = RunSubstrate(sc, nil)
		tables = append(tables, t)
	case "throughput":
		var t *Table
		_, t, err = RunThroughput(sc, nil, nil)
		tables = append(tables, t)
	case "recovery":
		var t *Table
		_, t, err = RunRecovery(sc)
		tables = append(tables, t)
	case "cluster":
		var t *Table
		_, t, err = RunCluster(sc)
		tables = append(tables, t)
	default:
		return fmt.Errorf("bench: unknown experiment %q (known: %v)", name, Experiments)
	}
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}
