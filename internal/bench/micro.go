package bench

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"sdrad/internal/core"
	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// switchCost measures the mean Enter+Exit round trip under a given WRPKRU
// cost model, plus the PKRU-write count per round trip.
func switchCost(wrpkruIters, rounds int) (perSwitch time.Duration, pkruWritesPerSwitch float64, err error) {
	p := proc.NewProcess("switch-bench",
		proc.WithSeed(5),
		proc.WithMemOptions(mem.WithWRPKRUCost(wrpkruIters)),
	)
	lib, err := core.Setup(p)
	if err != nil {
		return 0, 0, err
	}
	err = p.Attach("main", func(t *proc.Thread) error {
		return lib.Guard(t, 1, func() error {
			// Warm up: first enter initializes structures.
			if err := lib.Enter(t, 1); err != nil {
				return err
			}
			if err := lib.Exit(t); err != nil {
				return err
			}
			stats := p.AddressSpace().Stats()
			pkru0 := stats.Snapshot().PKRUWrites
			start := time.Now()
			for i := 0; i < rounds; i++ {
				if err := lib.Enter(t, 1); err != nil {
					return err
				}
				if err := lib.Exit(t); err != nil {
					return err
				}
			}
			elapsed := time.Since(start)
			perSwitch = elapsed / time.Duration(rounds)
			pkruWritesPerSwitch = float64(stats.Snapshot().PKRUWrites-pkru0) / float64(rounds)
			return nil
		})
	})
	return perSwitch, pkruWritesPerSwitch, err
}

// DomainSwitchBreakdown regenerates the §V-B profiling observation that
// 30-50% of domain-switch cost is the PKRU write. On real hardware WRPKRU
// costs ~25ns against a lean inline monitor; in the simulation the
// monitor is software, so the experiment sweeps a modeled WRPKRU cost and
// reports the share it contributes — the same saturating curve, with the
// hardware operating point marked by the cost model.
func DomainSwitchBreakdown(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Tab.V-B-profile",
		Title:  "Domain-switch cost breakdown: PKRU-write share vs modeled WRPKRU cost",
		Header: []string{"WRPKRU model (iters)", "per Enter+Exit", "PKRU writes/switch", "PKRU share of switch"},
		Notes: []string{
			"paper: 30-50% of switch cost is the PKRU write (pipeline flush)",
			"share = (T_model - T_0) / T_model, with T_0 the free-WRPKRU switch cost",
		},
	}
	rounds := sc.RewindTrials * 40
	base, writes, err := switchCost(0, rounds)
	if err != nil {
		return nil, err
	}
	t.AddRow("0 (free)", fmtDur(base), fmt.Sprintf("%.1f", writes), "0% (baseline)")
	for _, iters := range []int{100, 400, 1600, 6400, 25600} {
		cost, writes, err := switchCost(iters, rounds)
		if err != nil {
			return nil, err
		}
		share := 0.0
		if cost > base {
			share = float64(cost-base) / float64(cost) * 100
		}
		t.AddRow(fmt.Sprintf("%d", iters), fmtDur(cost), fmt.Sprintf("%.1f", writes), fmt.Sprintf("%.0f%%", share))
	}
	return t, nil
}

// AblationStackReuse measures the §IV-C stack-reuse optimization: domain
// init+destroy cycles with the stack pool on and off.
func AblationStackReuse(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Abl.1",
		Title:  "Ablation: stack-area reuse on domain create/destroy",
		Header: []string{"configuration", "per init+destroy"},
		Notes:  []string{"paper §IV-C: stacks are never unmapped, they are kept for reuse"},
	}
	cycles := sc.RewindTrials * 10
	for _, reuse := range []bool{true, false} {
		p := proc.NewProcess("stack-reuse-bench", proc.WithSeed(6))
		lib, err := core.Setup(p, core.WithStackReuse(reuse))
		if err != nil {
			return nil, err
		}
		var per time.Duration
		err = p.Attach("main", func(th *proc.Thread) error {
			// Warm-up creates the pooled stack.
			if err := lib.InitDomain(th, 1); err != nil {
				return err
			}
			if err := lib.Destroy(th, 1, core.NoHeapMerge); err != nil {
				return err
			}
			start := time.Now()
			for i := 0; i < cycles; i++ {
				if err := lib.InitDomain(th, 1); err != nil {
					return err
				}
				if err := lib.Destroy(th, 1, core.NoHeapMerge); err != nil {
					return err
				}
			}
			per = time.Since(start) / time.Duration(cycles)
			return nil
		})
		if err != nil {
			return nil, err
		}
		label := "reuse on (paper default)"
		if !reuse {
			label = "reuse off"
		}
		t.AddRow(label, fmtDur(per))
	}
	return t, nil
}

// AblationHeapMerge measures transient-domain destruction with heap merge
// versus discard, across live-allocation counts.
func AblationHeapMerge(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Abl.2",
		Title:  "Ablation: transient-domain destroy — heap merge vs discard",
		Header: []string{"live allocations", "merge", "discard"},
		Notes:  []string{"merge retags pages and adopts the subheap; discard unmaps it"},
	}
	measure := func(allocs int, opt core.DestroyOption) (time.Duration, error) {
		p := proc.NewProcess("merge-bench", proc.WithSeed(7))
		lib, err := core.Setup(p, core.WithRootHeapSize(64<<20))
		if err != nil {
			return 0, err
		}
		var dur time.Duration
		err = p.Attach("main", func(th *proc.Thread) error {
			// Root heap must exist to receive merges.
			warm, err := lib.Malloc(th, core.RootUDI, 8)
			if err != nil {
				return err
			}
			defer func() { _ = lib.Free(th, core.RootUDI, warm) }()
			const trials = 10
			start := time.Now()
			for i := 0; i < trials; i++ {
				gerr := lib.Guard(th, 1, func() error {
					for j := 0; j < allocs; j++ {
						if _, err := lib.Malloc(th, 1, 128); err != nil {
							return err
						}
					}
					return nil
				}, core.Accessible(), core.HeapSize(uint64(allocs)*256+256*1024))
				if gerr != nil {
					return gerr
				}
				if err := lib.Destroy(th, 1, opt); err != nil {
					return err
				}
			}
			dur = time.Since(start) / trials
			return nil
		})
		return dur, err
	}
	for _, allocs := range []int{0, 64, 512} {
		mergeDur, err := measure(allocs, core.HeapMerge)
		if err != nil {
			return nil, err
		}
		discardDur, err := measure(allocs, core.NoHeapMerge)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", allocs), fmtDur(mergeDur), fmtDur(discardDur))
	}
	return t, nil
}

// AblationScrub measures the rewind-latency cost of scrubbing discarded
// domain memory (the paper's confidentiality extension).
func AblationScrub(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Abl.3",
		Title:  "Ablation: scrub-on-discard cost per rewind",
		Header: []string{"configuration", "per rewind"},
		Notes:  []string{"paper leaves scrubbing to the developer; this is the library-side option"},
	}
	measure := func(scrub bool) (time.Duration, error) {
		runtime.GC()
		p := proc.NewProcess("scrub-bench", proc.WithSeed(8))
		lib, err := core.Setup(p, core.WithScrubOnDiscard(scrub))
		if err != nil {
			return 0, err
		}
		var per time.Duration
		err = p.Attach("main", func(th *proc.Thread) error {
			trials := sc.RewindTrials
			oneRewind := func(i int) error {
				gerr := lib.Guard(th, 1, func() error {
					if err := lib.Enter(th, 1); err != nil {
						return err
					}
					th.CPU().WriteU8(0xDEAD0000, 1) // trigger rewind
					return nil
				})
				var abn *core.AbnormalExit
				if !errors.As(gerr, &abn) {
					return fmt.Errorf("bench: rewind %d: %v", i, gerr)
				}
				return nil
			}
			// Warm up: populate the stack pool and allocator paths.
			for i := 0; i < 5; i++ {
				if err := oneRewind(-1); err != nil {
					return err
				}
			}
			start := time.Now()
			for i := 0; i < trials; i++ {
				if err := oneRewind(i); err != nil {
					return err
				}
			}
			per = time.Since(start) / time.Duration(trials)
			return nil
		})
		return per, err
	}
	for _, scrub := range []bool{false, true} {
		per, err := measure(scrub)
		if err != nil {
			return nil, err
		}
		label := "no scrub (paper default)"
		if scrub {
			label = "scrub on discard"
		}
		t.AddRow(label, fmtDur(per))
	}
	return t, nil
}
