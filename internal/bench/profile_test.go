package bench

import (
	"os"
	"runtime/pprof"
	"testing"

	"sdrad/internal/memcache"
)

// TestProfileParityCell is a profiling hook, not a regression test: set
// SDRAD_PROFILE to an output path (and optionally SDRAD_PROFILE_VARIANT
// to "vanilla") to capture a CPU profile of the headline parity cell.
//
//	SDRAD_PROFILE=/tmp/sdrad.pb go test ./internal/bench -run ProfileParityCell -count=1
//	go tool pprof -top /tmp/sdrad.pb
func TestProfileParityCell(t *testing.T) {
	path := os.Getenv("SDRAD_PROFILE")
	if path == "" {
		t.Skip("set SDRAD_PROFILE=<path> to capture a profile")
	}
	variant := memcache.VariantSDRaD
	if os.Getenv("SDRAD_PROFILE_VARIANT") == "vanilla" {
		variant = memcache.VariantVanilla
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	defer pprof.StopCPUProfile()
	for i := 0; i < 3; i++ {
		if _, err := channelYCSB(variant, ParityHeadlineWorkers, ParityHeadlineDepth, Quick, 50*Quick.MemcachedOps); err != nil {
			t.Fatal(err)
		}
	}
}
