package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"sdrad/internal/mem"
	"sdrad/internal/memcache"
	"sdrad/internal/telemetry"
	"sdrad/internal/ycsb"
)

// SubstrateReport captures the cost of the simulated-MMU fast paths plus
// the end-to-end Memcached overhead they dominate. It round-trips through
// BENCH_substrate.json so CI can fail on per-op regressions.
type SubstrateReport struct {
	Schema string `json:"schema"`
	// MicroNsPerOp is the ns/op of each substrate micro-operation; these
	// are the gated metrics (>10% regression fails the bench-regression
	// CI job).
	MicroNsPerOp map[string]float64 `json:"micro_ns_per_op"`
	// CalibrationNs is the ns/op of a fixed pure-Go xorshift step on the
	// measuring machine. Regression checks normalize by the calibration
	// ratio, so a baseline recorded on one machine remains meaningful on
	// a runner with a different clock.
	CalibrationNs float64 `json:"calibration_ns"`
	// CPUs and GoVersion document the recording machine (informational,
	// not compared — the calibration ratio is the yardstick). Absent in
	// older baselines.
	CPUs      int    `json:"cpus,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// MemcachedRunOverheadPct records the YCSB run-phase throughput
	// overhead of the sdrad variant vs vanilla per worker count, as a
	// conventional overhead percentage: POSITIVE = sdrad slower (the
	// paper's 2.9-7.1% reads directly against these values), negative =
	// sdrad faster. Recorded for the paper-gap tracking in
	// EXPERIMENTS.md, not gated (too noisy on shared runners).
	MemcachedRunOverheadPct map[string]float64 `json:"memcached_run_overhead_pct,omitempty"`
	// TelemetryRunOverheadPct records the YCSB run-phase throughput cost
	// of an enabled telemetry recorder: sdrad-with-recorder vs plain
	// sdrad, per worker count. Same convention: POSITIVE = recorder
	// costs throughput. Gated by CheckTelemetryOverhead at
	// telemetryBudgetPct.
	TelemetryRunOverheadPct map[string]float64 `json:"telemetry_run_overhead_pct,omitempty"`
}

// substrateSchema versions the JSON layout.
const substrateSchema = "sdrad-substrate-bench/v1"

// substrateTolerancePct is the per-op regression CI gates on.
const substrateTolerancePct = 10.0

// telemetryBudgetPct is the run-phase throughput an enabled telemetry
// recorder may cost before CheckTelemetryOverhead fails: the flight
// recorder, sampled latency clocks, and callback-mirrored counters must
// stay within 2% of plain sdrad.
const telemetryBudgetPct = 2.0

// measureNs times f(n) with calibrated n (targeting ~60ms per timed run)
// and returns the best-of-3 ns per operation, damping scheduler noise the
// way testing.B's own calibration does.
func measureNs(f func(n int)) float64 {
	f(1000) // warm up
	n := 1000
	for {
		start := time.Now()
		f(n)
		el := time.Since(start)
		if el >= 40*time.Millisecond {
			break
		}
		scale := float64(60*time.Millisecond) / float64(el+1)
		if scale > 100 {
			scale = 100
		}
		n = int(float64(n) * scale)
	}
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		f(n)
		perOp := float64(time.Since(start).Nanoseconds()) / float64(n)
		if trial == 0 || perOp < best {
			best = perOp
		}
	}
	return best
}

// substrateSink defeats dead-code elimination in the measurement loops.
var substrateSink uint64

// calibrationNs measures a fixed pure-Go operation (one xorshift step) as
// the machine-speed yardstick for cross-machine baseline comparison.
func calibrationNs() float64 {
	return measureNs(func(n int) {
		var x uint64 = 88172645463325252
		for i := 0; i < n; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		substrateSink = x
	})
}

// measureMicro returns the ns/op of each substrate micro-operation as
// the per-metric minimum over three rounds, each on a freshly built
// address space. The pointer-chasing metrics (translate_miss above all)
// are bimodal across layouts: when the Go allocator happens to scatter
// the page structs, a radix walk costs 2-4× more. The minimum tracks the
// clean-layout cost — the thing a code change regresses — instead of
// allocator luck, which is what makes the 10% CI gate stable.
func measureMicro() (map[string]float64, error) {
	var out map[string]float64
	for round := 0; round < 3; round++ {
		m, err := measureMicroOnce()
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = m
			continue
		}
		for k, v := range m {
			if v < out[k] {
				out[k] = v
			}
		}
	}
	return out, nil
}

// measureMicroOnce runs one round of the substrate micro-operations. The
// operations mirror the internal/mem testing.B benchmarks so the
// committed baseline and `go test -bench` agree on what is measured.
func measureMicroOnce() (map[string]float64, error) {
	as := mem.NewAddressSpace()
	// 2× the TLB reach: a cyclic walk over twice the direct-mapped TLB's
	// entry count misses on every access (each index alternates between
	// two pages) while keeping the host-cache working set small enough
	// that the measurement reads radix-walk cost, not host paging luck.
	const missPages = 512
	addr, err := as.MapAnon(missPages*mem.PageSize, mem.ProtRW, 0)
	if err != nil {
		return nil, err
	}
	c := as.NewCPU()
	page := make([]byte, mem.PageSize)

	micro := map[string]float64{
		"translate_hit": measureNs(func(n int) {
			var s uint64
			for i := 0; i < n; i++ {
				s += uint64(c.ReadU8(addr))
			}
			substrateSink = s
		}),
		"translate_miss": measureNs(func(n int) {
			var s uint64
			for i := 0; i < n; i++ {
				s += uint64(c.ReadU8(addr + mem.Addr(i%missPages)*mem.PageSize))
			}
			substrateSink = s
		}),
		"read_u64": measureNs(func(n int) {
			var s uint64
			for i := 0; i < n; i++ {
				s += c.ReadU64(addr + 8)
			}
			substrateSink = s
		}),
		"read_page": measureNs(func(n int) {
			for i := 0; i < n; i++ {
				c.Read(addr, page)
			}
		}),
		"copy_page": measureNs(func(n int) {
			for i := 0; i < n; i++ {
				c.Copy(addr+mem.PageSize, addr, mem.PageSize)
			}
		}),
	}

	// parallel_rw: aggregate per-op latency with GOMAXPROCS-bounded
	// workers hammering disjoint pages through their own CPUs — the
	// contention scenario the lock-free table and per-CPU stats address.
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 2 {
		workers = 2
	}
	sums := make([]uint64, workers)
	micro["parallel_rw"] = measureNs(func(n int) {
		var wg sync.WaitGroup
		per := n / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cw := as.NewCPU()
				base := addr + mem.Addr(w)*mem.PageSize
				var s uint64
				for i := 0; i < per; i++ {
					off := mem.Addr(i) & (mem.PageSize - 8)
					cw.WriteU8(base+off, byte(i))
					s += uint64(cw.ReadU8(base + off))
				}
				sums[w] = s
			}(w)
		}
		wg.Wait()
		for _, s := range sums {
			substrateSink += s
		}
	}) / float64(workers)
	return micro, nil
}

// measureMemcachedOverhead returns the YCSB run-phase overhead (percent,
// positive = sdrad slower) of the sdrad variant vs vanilla per worker
// count.
//
// Each sample is a back-to-back vanilla/sdrad pair and the reported value
// is the median of the per-pair throughput ratios. Pairing matters on the
// shared single-core machines this repository targets: machine-state
// drift (GC debt, co-located load, thermal) moves both runs of a pair
// together and cancels in the ratio, where block measurement — all
// vanilla runs, then all sdrad runs — would book the drift as variant
// overhead.
func measureMemcachedOverhead(sc Scale, workerCounts []int) (map[string]float64, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	pairs := 7
	osc := sc
	if sc.MemcachedOps <= Quick.MemcachedOps {
		pairs = 1
	} else {
		// Stretch the run phase: at the stock full scale it lasts well
		// under a second, so a single GC pause or scheduler quantum moves
		// a cell by ~10%. 4x the ops averages those events out without
		// changing the workload shape.
		osc.MemcachedOps *= 4
	}
	out := make(map[string]float64, len(workerCounts))
	for _, workers := range workerCounts {
		ratios := make([]float64, 0, pairs)
		for p := 0; p < pairs; p++ {
			_, vanilla, err := runMemcachedYCSB(memcache.VariantVanilla, workers, osc)
			if err != nil {
				return nil, fmt.Errorf("substrate vanilla/%d: %w", workers, err)
			}
			_, sdrad, err := runMemcachedYCSB(memcache.VariantSDRaD, workers, osc)
			if err != nil {
				return nil, fmt.Errorf("substrate sdrad/%d: %w", workers, err)
			}
			ratios = append(ratios, sdrad.Throughput/vanilla.Throughput)
		}
		sort.Float64s(ratios)
		out[fmt.Sprintf("w%d", workers)] = (1 - ratios[len(ratios)/2]) * 100
	}
	return out, nil
}

// measureTelemetryOverhead returns the YCSB run-phase cost (percent,
// positive = recorder costs throughput) of an enabled telemetry
// recorder. The effect being
// measured (a few atomic loads plus a sampled ring write per op) sits an
// order of magnitude below the noise floor of comparing two separately
// built servers — per-process allocator layout alone moves a cell by
// several percent. So each block builds ONE server with a recorder
// attached and replays the identical run-phase op stream four times,
// toggling only the recorder's enabled bit between phases: layout, cache
// state, and heap shape are shared across arms. A paused recorder costs
// one extra short-circuited atomic load over a detached one, far below
// the budget, so the paused arm stands in for plain sdrad.
//
// Two further noise sources get removed at the source rather than
// averaged over. GC is disabled during the measured phases (collecting
// between them): cycle placement moved identical phases by ±10%, and the
// recorder's hot path is allocation-free, so GC CPU carries no telemetry
// signal. What remains is one-sided — preemption and cache pollution
// only ever add CPU — so each arm is summarized by its MINIMUM CPU per
// op across phases, the same estimator measureMicro uses against layout
// luck; real recorder work raises the floor itself, noise only raises
// individual phases. CPU is rusage time, not wall clock: extra
// instructions are charged to the process no matter what else an
// oversubscribed CI runner is doing.
func measureTelemetryOverhead(sc Scale, workerCounts []int) (map[string]float64, error) {
	if len(workerCounts) == 0 {
		// Half the overhead grid: the recorder cost is per-operation, not
		// per-worker, so the two extremes bound it.
		workerCounts = []int{1, 4}
	}
	osc := sc
	if sc.MemcachedOps <= Quick.MemcachedOps {
		// The quick run phase is milliseconds; stretch it until scheduler
		// granularity stops registering at the 2% level.
		osc.MemcachedOps *= 64
	} else {
		osc.MemcachedOps *= 4
	}
	// CPU seconds per op where the platform accounts CPU, else wall
	// clock. Lower = cheaper.
	perOp := func(st ycsb.Stats) float64 {
		if st.CPUSeconds > 0 {
			return st.CPUSeconds / float64(st.Operations)
		}
		return st.Elapsed.Seconds() / float64(st.Operations)
	}
	out := make(map[string]float64, len(workerCounts))
	for _, workers := range workerCounts {
		measureCell := func() (float64, error) {
			var pairRatios []float64
			err := func() error {
				rec := telemetry.New(telemetry.Options{})
				s, err := memcachedServerTel(memcache.VariantSDRaD, osc, rec)
				if err != nil {
					return err
				}
				defer s.Stop()
				runner, err := ycsb.NewRunner(ycsb.Config{
					Records:    osc.MemcachedRecords,
					Operations: osc.MemcachedOps,
				})
				if err != nil {
					return err
				}
				rec.SetEnabled(false)
				if _, err := inlineLoadPhase(s, workers, runner.Config()); err != nil {
					return err
				}
				runtime.GC()
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				// Throwaway phases. Per-op cost follows a valley over a
				// server's life: the first phase runs against a cold cache at
				// several times steady state, the next few run measurably
				// FASTER than the server ever will again (warm caches, young
				// heap), and then TLSF aging raises cost ~8% to a flat
				// plateau a few million ops in. No ordering scheme survives
				// arms landing on different walls of that valley, so the
				// warmup burns all the way through to the plateau before
				// anything is measured.
				for i := 0; i < 10; i++ {
					runtime.GC()
					if _, err := inlineRunPhase(s, workers, runner); err != nil {
						return err
					}
				}
				// Eight paused/enabled pairs. A pair is adjacent in time,
				// so slow drift barely enters its ratio; pair orientation
				// follows the Thue–Morse sequence to cancel what drift
				// does enter; and the MEDIAN over pairs discards the pairs
				// a preemption spike corrupts, which a mean would smear
				// over the whole cell.
				for _, flip := range [8]bool{false, true, true, false, true, false, false, true} {
					order := [2]bool{false, true}
					if flip {
						order = [2]bool{true, false}
					}
					var paused, enabled float64
					for _, on := range order {
						// Collect between phases so heap garbage from one
						// arm is not billed to the next while GC is off.
						runtime.GC()
						rec.SetEnabled(on)
						st, err := inlineRunPhase(s, workers, runner)
						if err != nil {
							return err
						}
						if on {
							enabled = perOp(st)
						} else {
							paused = perOp(st)
						}
					}
					pairRatios = append(pairRatios, paused/enabled)
				}
				return nil
			}()
			if err != nil {
				return 0, fmt.Errorf("telemetry w%d: %w", workers, err)
			}
			sort.Float64s(pairRatios)
			mid := math.Sqrt(pairRatios[3] * pairRatios[4])
			// mid < 1 means the enabled arm was costlier per op; report
			// that as positive overhead.
			return (1 - mid) * 100, nil
		}
		// One re-measure on a fresh server for a cell that lands over
		// budget: the residual scatter of a single cell measurement still
		// brushes the budget line a few percent of the time, while a real
		// regression past the budget fails both attempts.
		for attempt := 0; ; attempt++ {
			v, err := measureCell()
			if err != nil {
				return nil, err
			}
			out[fmt.Sprintf("w%d", workers)] = v
			if v <= telemetryBudgetPct || attempt == 1 {
				break
			}
		}
	}
	return out, nil
}

// CheckTelemetryOverhead fails when any measured cell shows an enabled
// recorder costing more than the telemetry budget.
func (r *SubstrateReport) CheckTelemetryOverhead() error {
	var violations []string
	for _, k := range sortedKeys(r.TelemetryRunOverheadPct) {
		if v := r.TelemetryRunOverheadPct[k]; v > telemetryBudgetPct {
			violations = append(violations,
				fmt.Sprintf("%s: %+.1f%% (budget %.0f%%)", k, v, telemetryBudgetPct))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("bench: telemetry overhead beyond %.0f%%: %v",
			telemetryBudgetPct, violations)
	}
	return nil
}

// RunSubstrate measures the substrate fast paths and the Memcached
// overhead they govern, returning the machine-readable report and a
// printable table.
func RunSubstrate(sc Scale, workerCounts []int) (*SubstrateReport, *Table, error) {
	micro, err := measureMicro()
	if err != nil {
		return nil, nil, err
	}
	overhead, err := measureMemcachedOverhead(sc, workerCounts)
	if err != nil {
		return nil, nil, err
	}
	telOverhead, err := measureTelemetryOverhead(sc, workerCounts)
	if err != nil {
		return nil, nil, err
	}
	rep := &SubstrateReport{
		Schema:                  substrateSchema,
		MicroNsPerOp:            micro,
		CalibrationNs:           calibrationNs(),
		CPUs:                    runtime.NumCPU(),
		GoVersion:               runtime.Version(),
		MemcachedRunOverheadPct: overhead,
		TelemetryRunOverheadPct: telOverhead,
	}
	return rep, rep.Table(), nil
}

// Table renders the report as a bench table.
func (r *SubstrateReport) Table() *Table {
	t := &Table{
		ID:     "Substrate",
		Title:  "simulated-MMU fast-path cost and end-to-end overhead",
		Header: []string{"metric", "value"},
		Notes: []string{
			"micro metrics are gated in CI against BENCH_substrate.json (>10% ns/op regression fails)",
			"overhead = sdrad vs vanilla YCSB run-phase throughput, positive = sdrad slower (paper: 2.9-7.1%)",
		},
	}
	for _, k := range sortedKeys(r.MicroNsPerOp) {
		t.AddRow(k, fmt.Sprintf("%.1f ns/op", r.MicroNsPerOp[k]))
	}
	for _, k := range sortedKeys(r.MemcachedRunOverheadPct) {
		t.AddRow("memcached run "+k, fmt.Sprintf("%+.1f%%", r.MemcachedRunOverheadPct[k]))
	}
	for _, k := range sortedKeys(r.TelemetryRunOverheadPct) {
		t.AddRow("telemetry run "+k, fmt.Sprintf("%+.1f%%", r.TelemetryRunOverheadPct[k]))
	}
	return t
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the report to path.
func (r *SubstrateReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSubstrateBaseline reads a previously committed report.
func LoadSubstrateBaseline(path string) (*SubstrateReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r SubstrateReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CheckAgainst compares the report's micro metrics with a baseline,
// returning an error naming every metric that regressed by more than the
// tolerance. When both reports carry a calibration figure the baseline is
// first rescaled by the machine-speed ratio, so a baseline committed from
// one machine transfers to a runner with a different clock. Metrics
// missing from either side are ignored (they are new or retired, not
// regressed).
func (r *SubstrateReport) CheckAgainst(base *SubstrateReport) error {
	speed := 1.0
	if base.CalibrationNs > 0 && r.CalibrationNs > 0 {
		speed = r.CalibrationNs / base.CalibrationNs
	}
	var regressions []string
	for _, k := range sortedKeys(base.MicroNsPerOp) {
		old := base.MicroNsPerOp[k] * speed
		cur, ok := r.MicroNsPerOp[k]
		if !ok || old <= 0 {
			continue
		}
		if pct := (cur - old) / old * 100; pct > substrateTolerancePct {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%% vs speed-adjusted baseline)", k, old, cur, pct))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: substrate regression beyond %.0f%%: %v",
			substrateTolerancePct, regressions)
	}
	return nil
}
