package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLatency(t *testing.T) {
	rep, tbl, err := RunLatency(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != latencySchema || rep.CalibrationNs <= 0 {
		t.Errorf("schema %q calibration %v", rep.Schema, rep.CalibrationNs)
	}
	if rep.CPUs < 1 || rep.GoVersion == "" {
		t.Errorf("substrate stamp missing: cpus=%d go=%q", rep.CPUs, rep.GoVersion)
	}
	if len(rep.Uniform) != len(rep.Rates) || len(rep.Skew) != len(rep.Rates) {
		t.Fatalf("cells %d/%d for %d rates", len(rep.Uniform), len(rep.Skew), len(rep.Rates))
	}
	for _, c := range append(append([]LatencyCell(nil), rep.Uniform...), rep.Skew...) {
		if c.RRP99Ns < c.RRP50Ns || c.RoutedP99Ns < c.RoutedP50Ns || c.RRP50Ns <= 0 || c.RoutedP50Ns <= 0 {
			t.Errorf("implausible percentiles at %.0f/s: %+v", c.Rate, c)
		}
	}
	if rep.KneeRate == 0 || rep.KneeP99Ratio <= 0 {
		t.Errorf("knee not computed: rate=%v ratio=%v", rep.KneeRate, rep.KneeP99Ratio)
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	for _, want := range []string{"uniform", "hot-conn skew", "p99 ratio", "stealing"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// latencyFixture builds a report that holds both gate floors.
func latencyFixture() *LatencyReport {
	return &LatencyReport{
		Schema: latencySchema,
		Rates:  []float64{1000, 4000},
		Uniform: []LatencyCell{
			{Rate: 1000, RRP50Ns: 100_000, RoutedP50Ns: 102_000, P50DeltaPct: 2.0},
			{Rate: 4000, RRP50Ns: 120_000, RoutedP50Ns: 123_000, P50DeltaPct: 2.5},
		},
		Skew: []LatencyCell{
			{Rate: 1000, RRP99Ns: 1_000_000, RoutedP99Ns: 900_000, P99Ratio: 1.11},
			{Rate: 4000, RRP99Ns: 9_000_000, RoutedP99Ns: 3_000_000, P99Ratio: 3.0},
		},
	}
}

func TestLatencyGateAcceptsHealthyReport(t *testing.T) {
	rep := latencyFixture()
	// The knee is the 4000/s cell (9ms > 3x 1ms); ratio 3.0 >= 1.3 and
	// uniform deltas are within 5%.
	if err := rep.CheckLatencyGate(); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
	path := filepath.Join(t.TempDir(), "lat.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLatencyBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckLatencyGate(); err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}
	if back.Skew[1].RRP99Ns != 9_000_000 {
		t.Errorf("round trip lost data: %+v", back.Skew[1])
	}
}

func TestLatencyGateRejectsThinKneeWin(t *testing.T) {
	rep := latencyFixture()
	rep.Skew[1].P99Ratio = 1.1
	err := rep.CheckLatencyGate()
	if err == nil || !strings.Contains(err.Error(), "knee") {
		t.Fatalf("thin knee win passed the gate: %v", err)
	}
}

func TestLatencyGateRejectsUniformTax(t *testing.T) {
	rep := latencyFixture()
	rep.Uniform[0].P50DeltaPct = 9.0
	err := rep.CheckLatencyGate()
	if err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Fatalf("uniform p50 tax passed the gate: %v", err)
	}
}

func TestLatencyGateRejectsWrongSchema(t *testing.T) {
	rep := latencyFixture()
	rep.Schema = "bogus"
	if err := rep.CheckLatencyGate(); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestLatencyGateIgnoresPostKneeUniformCells(t *testing.T) {
	// A big p50 delta ABOVE the knee rate is queue-dominated noise and
	// must not fail the gate.
	rep := latencyFixture()
	rep.Uniform = append(rep.Uniform, LatencyCell{Rate: 8000, RRP50Ns: 1_000_000, RoutedP50Ns: 1_500_000, P50DeltaPct: 50})
	rep.Rates = append(rep.Rates, 8000)
	rep.Skew = append(rep.Skew, LatencyCell{Rate: 8000, RRP99Ns: 20_000_000, RoutedP99Ns: 8_000_000, P99Ratio: 2.5})
	if err := rep.CheckLatencyGate(); err != nil {
		t.Fatalf("post-knee uniform cell failed the gate: %v", err)
	}
}
