package loadgen

import (
	"bufio"
	"net"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"sdrad/internal/memcache"
)

// startMemcached runs an in-process hardened memcached on a loopback
// listener.
func startMemcached(t *testing.T) string {
	t.Helper()
	srv, err := memcache.NewServer(memcache.Config{
		Variant:    memcache.VariantSDRaD,
		Workers:    1,
		HashPower:  10,
		CacheBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Stop()
		t.Fatal(err)
	}
	go func() { _ = srv.ServeListener(ln) }()
	t.Cleanup(func() { srv.Stop(); _ = ln.Close() })
	return ln.Addr().String()
}

// startSlowEcho runs a TCP server that answers every line-framed
// memcached request with END after a fixed service delay — a stand-in
// for a stalled backend.
func startSlowEcho(t *testing.T, delay time.Duration, served *atomic.Int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					if _, err := memcache.ReadRequest(r); err != nil {
						return
					}
					time.Sleep(delay)
					if _, err := c.Write([]byte("END\r\n")); err != nil {
						return
					}
					if served != nil {
						served.Add(1)
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestOpenLoopMultiTarget(t *testing.T) {
	a, b := startMemcached(t), startMemcached(t)
	res, err := RunOpenLoop(OpenLoopConfig{
		Targets:  []string{a, b},
		Rate:     2000,
		Duration: 250 * time.Millisecond,
		Conns:    2,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intended != 500 {
		t.Fatalf("intended %d, want 500 (rate*duration)", res.Intended)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against healthy targets: %s", res.Errors, res)
	}
	if res.Completed != res.Intended {
		t.Fatalf("completed %d of %d", res.Completed, res.Intended)
	}
	// Round-robin dispatch: both targets served half the schedule.
	if len(res.PerTarget) != 2 || res.PerTarget[0] != 250 || res.PerTarget[1] != 250 {
		t.Fatalf("per-target split %v, want [250 250]", res.PerTarget)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible latency percentiles: %s", res)
	}
}

func TestOpenLoopChargesCoordinatedOmission(t *testing.T) {
	// A single executor against a 5ms-per-op server offered 1000 req/s:
	// the server can do ~200/s, so the backlog grows by ~4 arrivals per
	// service time. A closed-loop generator would report ~5ms per op and
	// hide the overload; intended-start accounting must surface queueing
	// delay far beyond the service time.
	const delay = 5 * time.Millisecond
	var served atomic.Int64
	addr := startSlowEcho(t, delay, &served)
	res, err := RunOpenLoop(OpenLoopConfig{
		Targets:      []string{addr},
		Rate:         1000,
		Duration:     300 * time.Millisecond,
		Conns:        1,
		ReadFraction: 1,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatalf("nothing completed: %s", res)
	}
	if res.P99 < 10*delay {
		t.Fatalf("p99 %v vs intended start; an overloaded target must show queueing delay far above the %v service time", res.P99, delay)
	}
	// The run keeps draining the backlog after the dispatch window, so
	// elapsed exceeds the nominal duration — the generator does not
	// abandon queued arrivals.
	if res.Completed != res.Intended {
		t.Fatalf("open loop dropped queued arrivals: %d of %d", res.Completed, res.Intended)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	if _, err := RunOpenLoop(OpenLoopConfig{}); err == nil {
		t.Fatal("no targets accepted")
	}
}

func TestOpenLoopConnSkewDistribution(t *testing.T) {
	addr := startMemcached(t)
	res, err := RunOpenLoop(OpenLoopConfig{
		Targets:  []string{addr},
		Rate:     20_000,
		Duration: 100 * time.Millisecond,
		Conns:    8,
		ConnSkew: 0.99,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Intended {
		t.Fatalf("completed %d of %d (%d errors)", res.Completed, res.Intended, res.Errors)
	}
	if len(res.PerConn) != 8 {
		t.Fatalf("PerConn has %d entries, want 8", len(res.PerConn))
	}
	counts := append([]int(nil), res.PerConn...)
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != res.Completed {
		t.Fatalf("PerConn sums to %d, want %d", total, res.Completed)
	}
	// The chooser is a scrambled Zipfian, so compare sorted shares: with
	// theta 0.99 over 8 connections the hottest carries ~37% of the
	// schedule and the uniform share is 12.5%.
	hot := float64(counts[0]) / float64(total)
	if hot < 0.25 {
		t.Fatalf("hottest connection carried %.1f%% of the load, want >= 25%% (counts %v)", 100*hot, counts)
	}
	cold := float64(counts[len(counts)-1]) / float64(total)
	if cold > 0.125 {
		t.Fatalf("coldest connection carried %.1f%%, want below the 12.5%% uniform share (counts %v)", 100*cold, counts)
	}
}

func TestOpenLoopConnSkewZeroKeepsSharedQueues(t *testing.T) {
	addr := startMemcached(t)
	res, err := RunOpenLoop(OpenLoopConfig{
		Targets:  []string{addr},
		Rate:     5000,
		Duration: 50 * time.Millisecond,
		Conns:    4,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Intended {
		t.Fatalf("completed %d of %d", res.Completed, res.Intended)
	}
	// Legacy dispatch: a shared queue per target; every executor drains
	// some of it, and the counts still sum to the total.
	total := 0
	for _, c := range res.PerConn {
		total += c
	}
	if total != res.Completed {
		t.Fatalf("PerConn sums to %d, want %d", total, res.Completed)
	}
}
