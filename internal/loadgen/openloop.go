package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sdrad/internal/cluster"
	"sdrad/internal/memcache"
	"sdrad/internal/telemetry"
	"sdrad/internal/ycsb"
)

// OpenLoopConfig describes an open-loop run against one or more
// memcached-protocol TCP targets (backends, or the cluster router).
//
// Unlike the closed-loop Run above — where each connection issues its
// next request only after the previous one returns, so a slow server
// quietly throttles the offered load — the open loop schedules arrivals
// on a fixed timetable and measures every request's latency against its
// *intended* start time. A server that stalls accumulates a backlog and
// the stall shows up in the tail, instead of being coordinated away
// (Tene's "coordinated omission").
type OpenLoopConfig struct {
	// Targets are the TCP addresses load is spread over, round-robin by
	// arrival. At least one is required.
	Targets []string
	// Rate is the total intended arrival rate, requests per second
	// (default 1000).
	Rate float64
	// Duration is the run length (default 1s). Intended arrivals =
	// Rate * Duration.
	Duration time.Duration
	// Conns is the number of executor connections per target (default 4).
	// The executors drain the arrival queue; fewer executors than the
	// service time demands means a growing backlog — which is the point.
	Conns int
	// ConnSkew, when > 0, skews the schedule across executor connections
	// with a scrambled-Zipfian distribution of that theta: arrivals are
	// queued per (target, connection) instead of per target, so a hot
	// connection accumulates a disproportionate share of the load — the
	// hot-conn workload that load-aware placement and cross-worker
	// stealing are built for. 0 keeps the legacy shared per-target
	// queue, where any idle executor of the target drains the next
	// arrival.
	ConnSkew float64
	// ReadFraction is the share of arrivals that are gets (default 0.9;
	// the rest are sets).
	ReadFraction float64
	// Records is the key-space size (default 1000), keys "user%010d".
	Records int
	// KeyChooser picks the record for each arrival (default uniform from
	// a Seed-derived stream; plug ycsb.ZipfianChooser for skew).
	KeyChooser func() int
	// ValueSize is the set payload size in bytes (default 64).
	ValueSize int
	// Seed makes the op/key stream deterministic (default 1).
	Seed int64
	// DialTimeout/IOTimeout bound each executor's exchanges (defaults
	// 2s / 5s).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// Telemetry, when non-nil, receives the intended-start latency
	// distribution as sdrad_loadgen_openloop_latency_ns.
	Telemetry *telemetry.Recorder
}

func (c *OpenLoopConfig) setDefaults() error {
	if len(c.Targets) == 0 {
		return fmt.Errorf("loadgen: open loop needs at least one target")
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.ReadFraction <= 0 || c.ReadFraction > 1 {
		c.ReadFraction = 0.9
	}
	if c.Records <= 0 {
		c.Records = 1000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 5 * time.Second
	}
	return nil
}

// OpenLoopResult summarizes an open-loop run. Percentiles are measured
// against each request's intended start time, so queueing delay from a
// stalled or overloaded target is included.
type OpenLoopResult struct {
	Intended  int // arrivals the schedule generated
	Completed int
	Errors    int
	Elapsed   time.Duration
	// Throughput is completed requests per second of wall time.
	Throughput float64
	// PerTarget counts completed requests by target index.
	PerTarget []int
	// PerConn counts completed requests by global connection index;
	// connection c of target t is index c*len(Targets)+t. Under ConnSkew
	// the sorted shares follow the configured Zipfian.
	PerConn []int
	// P50, P95, P99 are intended-start latency percentiles.
	P50, P95, P99 time.Duration
}

func (r OpenLoopResult) String() string {
	return fmt.Sprintf("open loop: %d/%d completed in %v: %.0f req/s (%d errors) p50=%v p95=%v p99=%v (vs intended start)",
		r.Completed, r.Intended, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Errors,
		r.P50, r.P95, r.P99)
}

// arrival is one scheduled request: what to send and when it was
// supposed to start.
type arrival struct {
	req      []byte
	intended time.Time
}

// RunOpenLoop executes cfg. The request mix is generated up front (a
// pure function of the config), arrivals are released on their
// timetable round-robin across targets, and per-target executor pools
// drain them as fast as the targets allow. Queues are sized for the
// whole schedule so the dispatcher never blocks on a slow target — the
// open-loop invariant; a laggard's backlog is charged to its own
// latency tail, not hidden by a stalled load generator.
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return OpenLoopResult{}, err
	}
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	rng := rand.New(rand.NewSource(cfg.Seed))
	choose := cfg.KeyChooser
	if choose == nil {
		krng := rand.New(rand.NewSource(cfg.Seed + 1))
		records := cfg.Records
		choose = func() int { return krng.Intn(records) }
	}
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}

	// Build the request mix deterministically before the clock starts.
	reqs := make([][]byte, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user%010d", choose())
		if rng.Float64() < cfg.ReadFraction {
			reqs[i] = memcache.FormatGet(key)
		} else {
			reqs[i] = memcache.FormatSet(key, value, 0)
		}
	}

	var lat telemetry.Histogram
	var regLat *telemetry.Histogram
	if cfg.Telemetry != nil {
		regLat = cfg.Telemetry.Registry().Histogram("sdrad_loadgen_openloop_latency_ns",
			"Open-loop request latency vs intended start time, nanoseconds.")
	}
	var completed, errs atomic.Int64
	nTargets := len(cfg.Targets)
	nConns := nTargets * cfg.Conns
	perTarget := make([]atomic.Int64, nTargets)
	perConn := make([]atomic.Int64, nConns)

	// With ConnSkew the queues are per (target, connection) so the
	// Zipfian chooser can pin a share of the schedule to one hot
	// connection; without it they stay per target, drained by whichever
	// executor is free — the legacy dispatch, bit for bit.
	skewed := cfg.ConnSkew > 0
	nQueues := nTargets
	if skewed {
		nQueues = nConns
	}
	queues := make([]chan arrival, nQueues)
	for i := range queues {
		queues[i] = make(chan arrival, n)
	}
	var wg sync.WaitGroup
	for t := range cfg.Targets {
		for c := 0; c < cfg.Conns; c++ {
			q := queues[t]
			g := c*nTargets + t
			if skewed {
				q = queues[g]
			}
			wg.Add(1)
			go func(target, g int, q chan arrival) {
				defer wg.Done()
				var conn *cluster.Client
				defer func() {
					if conn != nil {
						_ = conn.Close()
					}
				}()
				for a := range q {
					if conn == nil {
						var err error
						conn, err = cluster.Dial(cfg.Targets[target], cfg.DialTimeout, cfg.IOTimeout)
						if err != nil {
							errs.Add(1)
							continue
						}
					}
					if _, err := conn.Do(a.req); err != nil {
						errs.Add(1)
						_ = conn.Close()
						conn = nil
						continue
					}
					ns := time.Since(a.intended).Nanoseconds()
					if ns < 0 {
						ns = 0
					}
					lat.Observe(ns)
					if regLat != nil {
						regLat.Observe(ns)
					}
					completed.Add(1)
					perTarget[target].Add(1)
					perConn[g].Add(1)
				}
			}(t, g, q)
		}
	}

	// chooseConn is called from the dispatcher goroutine only (the
	// chooser is not safe for concurrent use); queue g belongs to
	// connection g/nTargets of target g%nTargets.
	var chooseConn func() int
	if skewed {
		chooseConn = ycsb.ZipfianChooser(nConns, cfg.ConnSkew, cfg.Seed+2)
	}

	// Dispatch on the timetable: arrival i is due at start + i*interval.
	start := time.Now()
	for i := 0; i < n; i++ {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		qi := i % nTargets
		if skewed {
			qi = chooseConn()
		}
		queues[qi] <- arrival{req: reqs[i], intended: due}
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := OpenLoopResult{
		Intended:   n,
		Completed:  int(completed.Load()),
		Errors:     int(errs.Load()),
		Elapsed:    elapsed,
		Throughput: float64(completed.Load()) / elapsed.Seconds(),
		PerTarget:  make([]int, nTargets),
		PerConn:    make([]int, nConns),
		P50:        time.Duration(lat.Quantile(0.50)),
		P95:        time.Duration(lat.Quantile(0.95)),
		P99:        time.Duration(lat.Quantile(0.99)),
	}
	for i := range perTarget {
		res.PerTarget[i] = int(perTarget[i].Load())
	}
	for i := range perConn {
		res.PerConn[i] = int(perConn[i].Load())
	}
	return res, nil
}
