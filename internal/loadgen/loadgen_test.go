package loadgen

import (
	"strings"
	"testing"

	"sdrad/internal/httpd"
	"sdrad/internal/telemetry"
)

func TestRunAgainstServer(t *testing.T) {
	m, err := httpd.NewMaster(httpd.Config{
		Variant: httpd.VariantVanilla,
		Workers: 2,
		Files:   map[string]int{"/f.bin": 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	rec := telemetry.New(telemetry.Options{})
	res := Run(m, Config{Path: "/f.bin", Connections: 8, Requests: 400, Telemetry: rec})
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Requests != 400 {
		t.Errorf("requests = %d", res.Requests)
	}
	if res.Throughput <= 0 {
		t.Error("no throughput")
	}
	// Each response carries the 1 KiB body plus headers.
	if res.BytesRead < 400*1024 {
		t.Errorf("bytes read = %d", res.BytesRead)
	}
	if res.String() == "" {
		t.Error("empty result string")
	}
	// Percentiles must be populated and ordered.
	if res.P50 <= 0 {
		t.Errorf("p50 = %v, want > 0", res.P50)
	}
	if res.P50 > res.P95 || res.P95 > res.P99 {
		t.Errorf("percentiles out of order: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	// The run must have fed the recorder's registry histogram too.
	h := rec.Registry().Histogram("sdrad_http_request_latency_ns", "")
	if h.Count() != 400 {
		t.Errorf("registry histogram count = %d, want 400", h.Count())
	}
	var sb strings.Builder
	rec.Registry().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "sdrad_http_request_latency_ns_count 400") {
		t.Errorf("latency histogram missing from exposition:\n%s", sb.String())
	}
}

func TestRunDefaults(t *testing.T) {
	m, err := httpd.NewMaster(httpd.Config{
		Variant: httpd.VariantSDRaD,
		Files:   map[string]int{"/x": 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	res := Run(m, Config{Path: "/x"})
	if res.Requests != 1000 || res.Errors != 0 {
		t.Errorf("defaults run = %+v", res)
	}
}

func TestRunCountsErrorsOnDeadWorker(t *testing.T) {
	m, err := httpd.NewMaster(httpd.Config{
		Variant: httpd.VariantVanilla,
		Workers: 1,
		Files:   map[string]int{"/x": 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	m.Worker(0).Process().Terminate(nil)
	res := Run(m, Config{Path: "/x", Connections: 4, Requests: 100})
	if res.Errors != 4 {
		t.Errorf("errors = %d, want one per connection", res.Errors)
	}
}

func TestRunPipelined(t *testing.T) {
	m, err := httpd.NewMaster(httpd.Config{
		Variant: httpd.VariantSDRaD,
		Workers: 1,
		Files:   map[string]int{"/f.bin": 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	res := Run(m, Config{Path: "/f.bin", Connections: 4, Requests: 403, Pipeline: 8})
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// The budget is fully consumed even when it is not a multiple of the
	// pipeline depth.
	if res.Requests != 403 {
		t.Errorf("requests = %d, want 403", res.Requests)
	}
	if res.BytesRead < 403*512 {
		t.Errorf("bytes read = %d", res.BytesRead)
	}
	if res.P50 <= 0 || res.P50 > res.P95 || res.P95 > res.P99 {
		t.Errorf("percentiles: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
}
