// Package loadgen is an ApacheBench-style HTTP load generator for the
// internal/httpd server, reproducing the paper's NGINX benchmark setup
// (§V-B): a fixed number of concurrent keep-alive connections all
// requesting the same file, reporting requests/second.
package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdrad/internal/httpd"
	"sdrad/internal/telemetry"
)

// Config describes one benchmark run.
type Config struct {
	// Path is the requested file.
	Path string
	// Connections is the number of concurrent keep-alive connections
	// (paper: 75).
	Connections int
	// Requests is the total request budget across all connections.
	Requests int
	// Pipeline is the pipelining depth: each connection sends this many
	// requests back to back per round (default 1, plain request/response).
	// The hardened server handles a pipelined burst inside one guard
	// scope, which is where batching earns its throughput.
	Pipeline int
	// Telemetry, when non-nil, additionally receives every request
	// latency as the sdrad_http_request_latency_ns registry histogram, so
	// a scrape of the server's /metrics shows the client-observed
	// distribution.
	Telemetry *telemetry.Recorder
}

// Result summarizes a run.
type Result struct {
	Requests   int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // requests per second
	BytesRead  int64
	// Reconnects counts connections re-opened after the server closed one
	// mid-run (attack recovery collateral) — the fault-storm benchmarks'
	// collateral-damage signal.
	Reconnects int
	// P50, P95, P99 are per-request latency percentiles, interpolated
	// from a log2-bucketed histogram (approximate, not exact order
	// statistics).
	P50, P95, P99 time.Duration
}

func (r Result) String() string {
	return fmt.Sprintf("%d requests in %v: %.0f req/s (%d errors, %d bytes, %d reconnects) p50=%v p95=%v p99=%v",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Errors, r.BytesRead,
		r.Reconnects, r.P50, r.P95, r.P99)
}

// Run drives the master's workers with Config.Connections concurrent
// clients until Config.Requests requests have completed. Connections are
// spread round-robin over the workers.
func Run(m *httpd.Master, cfg Config) Result {
	if cfg.Connections <= 0 {
		cfg.Connections = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 1
	}
	req := httpd.FormatRequest(cfg.Path, true)
	var burst [][]byte
	for i := 0; i < cfg.Pipeline; i++ {
		burst = append(burst, req)
	}
	var remaining atomic.Int64
	remaining.Store(int64(cfg.Requests))
	var errs, bytesRead, reconnects atomic.Int64
	var wg sync.WaitGroup

	// lat collects every request's wall latency; histograms are safe for
	// concurrent Observe, so all connections share one. A registry copy
	// feeds the server's /metrics when a recorder was provided.
	var lat telemetry.Histogram
	var regLat *telemetry.Histogram
	if cfg.Telemetry != nil {
		regLat = cfg.Telemetry.Registry().Histogram("sdrad_http_request_latency_ns",
			"Client-observed HTTP request latency, nanoseconds.")
	}

	start := time.Now()
	for i := 0; i < cfg.Connections; i++ {
		w := m.Worker(i % m.Workers())
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := w.NewConn()
			if cfg.Pipeline == 1 {
				for remaining.Add(-1) >= 0 {
					t0 := time.Now()
					resp, closed, err := conn.Do(req)
					if err != nil {
						errs.Add(1)
						return
					}
					ns := time.Since(t0).Nanoseconds()
					lat.Observe(ns)
					if regLat != nil {
						regLat.Observe(ns)
					}
					bytesRead.Add(int64(len(resp)))
					if closed {
						reconnects.Add(1)
						conn = w.NewConn()
					}
				}
				return
			}
			// Pipelined mode: claim a burst from the budget, send it as one
			// pipeline, and attribute the burst latency evenly across its
			// requests.
			for {
				n := cfg.Pipeline
				if left := remaining.Add(-int64(n)) + int64(n); left < int64(n) {
					if left <= 0 {
						return
					}
					n = int(left)
				}
				t0 := time.Now()
				res := conn.DoPipeline(burst[:n])
				ns := time.Since(t0).Nanoseconds() / int64(n)
				reconnect := false
				for _, r := range res {
					if r.Err != nil {
						errs.Add(1)
						continue
					}
					lat.Observe(ns)
					if regLat != nil {
						regLat.Observe(ns)
					}
					bytesRead.Add(int64(len(r.Resp)))
					if r.Closed {
						reconnect = true
					}
				}
				if reconnect {
					reconnects.Add(1)
					conn = w.NewConn()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	done := cfg.Requests - int(errs.Load())
	return Result{
		Requests:   done,
		Errors:     int(errs.Load()),
		Elapsed:    elapsed,
		Throughput: float64(done) / elapsed.Seconds(),
		BytesRead:  bytesRead.Load(),
		Reconnects: int(reconnects.Load()),
		P50:        time.Duration(lat.Quantile(0.50)),
		P95:        time.Duration(lat.Quantile(0.95)),
		P99:        time.Duration(lat.Quantile(0.99)),
	}
}
