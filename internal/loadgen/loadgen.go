// Package loadgen is an ApacheBench-style HTTP load generator for the
// internal/httpd server, reproducing the paper's NGINX benchmark setup
// (§V-B): a fixed number of concurrent keep-alive connections all
// requesting the same file, reporting requests/second.
package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdrad/internal/httpd"
)

// Config describes one benchmark run.
type Config struct {
	// Path is the requested file.
	Path string
	// Connections is the number of concurrent keep-alive connections
	// (paper: 75).
	Connections int
	// Requests is the total request budget across all connections.
	Requests int
}

// Result summarizes a run.
type Result struct {
	Requests   int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // requests per second
	BytesRead  int64
}

func (r Result) String() string {
	return fmt.Sprintf("%d requests in %v: %.0f req/s (%d errors, %d bytes)",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Errors, r.BytesRead)
}

// Run drives the master's workers with Config.Connections concurrent
// clients until Config.Requests requests have completed. Connections are
// spread round-robin over the workers.
func Run(m *httpd.Master, cfg Config) Result {
	if cfg.Connections <= 0 {
		cfg.Connections = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	req := httpd.FormatRequest(cfg.Path, true)
	var remaining atomic.Int64
	remaining.Store(int64(cfg.Requests))
	var errs, bytesRead atomic.Int64
	var wg sync.WaitGroup

	start := time.Now()
	for i := 0; i < cfg.Connections; i++ {
		w := m.Worker(i % m.Workers())
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := w.NewConn()
			for remaining.Add(-1) >= 0 {
				resp, closed, err := conn.Do(req)
				if err != nil {
					errs.Add(1)
					return
				}
				bytesRead.Add(int64(len(resp)))
				if closed {
					conn = w.NewConn()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	done := cfg.Requests - int(errs.Load())
	return Result{
		Requests:   done,
		Errors:     int(errs.Load()),
		Elapsed:    elapsed,
		Throughput: float64(done) / elapsed.Seconds(),
		BytesRead:  bytesRead.Load(),
	}
}
