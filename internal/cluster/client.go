package cluster

import (
	"bufio"
	"net"
	"time"

	"sdrad/internal/memcache"
)

// Client is a pipelining memcached text-protocol TCP client: one
// connection, batch writes flushed in one syscall, replies framed with
// the same ReadReply the router uses. It is the client side of every
// TCP surface in the cluster subsystem — the load generator and the
// benches drive routers (and bare backends) with it, and the router's
// backend pools wrap it.
type Client struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	// ioTimeout bounds each exchange (0 = none).
	ioTimeout time.Duration
}

// Dial connects to a memcached-speaking address.
func Dial(addr string, dialTimeout, ioTimeout time.Duration) (*Client, error) {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		nc:        nc,
		r:         bufio.NewReaderSize(nc, 64<<10),
		w:         bufio.NewWriterSize(nc, 64<<10),
		ioTimeout: ioTimeout,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Do sends one request and reads one reply.
func (c *Client) Do(req []byte) ([]byte, error) {
	replies, err := c.DoBatch([][]byte{req})
	if err != nil {
		return nil, err
	}
	return replies[0], nil
}

// DoBatch pipelines reqs in one flush and reads one reply per request,
// in order. Any transport error poisons the connection: the caller must
// Close and redial — replies already read are NOT returned, because a
// torn batch leaves request/reply correspondence unknowable.
func (c *Client) DoBatch(reqs [][]byte) ([][]byte, error) {
	if c.ioTimeout > 0 {
		if err := c.nc.SetDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			return nil, err
		}
	}
	for _, req := range reqs {
		if _, err := c.w.Write(req); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	replies := make([][]byte, len(reqs))
	for i := range reqs {
		rep, err := memcache.ReadReply(c.r)
		if err != nil {
			return nil, err
		}
		replies[i] = rep
	}
	return replies, nil
}
