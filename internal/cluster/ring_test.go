package cluster

import (
	"fmt"
	"testing"
)

func TestRingPlacement(t *testing.T) {
	names := []string{"b0", "b1", "b2"}
	r, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Every key has all three backends as distinct successors, primary
	// first, and placement is deterministic.
	var succ []int
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("user%010d", i)
		succ = r.Successors(key, 0, succ)
		if len(succ) != 3 {
			t.Fatalf("key %s: %d successors, want 3", key, len(succ))
		}
		seen := map[int]bool{}
		for _, b := range succ {
			if b < 0 || b >= 3 || seen[b] {
				t.Fatalf("key %s: bad successor list %v", key, succ)
			}
			seen[b] = true
		}
		if succ[0] != r.Primary(key) {
			t.Fatalf("key %s: Primary %d != Successors[0] %d", key, r.Primary(key), succ[0])
		}
		counts[succ[0]]++
	}
	// Virtual nodes should keep the key shares roughly balanced: no
	// backend below half or above double its fair share.
	for b, n := range counts {
		if n < 500 || n > 2000 {
			t.Errorf("backend %d owns %d/3000 keys; ring badly unbalanced", b, n)
		}
	}
}

func TestRingStableUnderRename(t *testing.T) {
	// Placement hashes names: the same names give the same layout no
	// matter the (address) order they were discovered in... but a
	// different order of the SAME names must preserve each name's keys.
	a, _ := NewRing([]string{"b0", "b1", "b2"}, 64)
	b, _ := NewRing([]string{"b2", "b0", "b1"}, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Name(a.Primary(key)) != b.Name(b.Primary(key)) {
			t.Fatalf("key %s moved when backend order changed", key)
		}
	}
}

func TestRingSpillOrder(t *testing.T) {
	r, _ := NewRing([]string{"b0", "b1", "b2", "b3"}, 32)
	// Successors with max bounds the walk.
	succ := r.Successors("some-key", 2, nil)
	if len(succ) != 2 {
		t.Fatalf("max=2 returned %d successors", len(succ))
	}
	full := r.Successors("some-key", 0, nil)
	if full[0] != succ[0] || full[1] != succ[1] {
		t.Fatalf("bounded walk %v disagrees with full walk %v", succ, full)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty name accepted")
	}
	many := make([]string, 65)
	for i := range many {
		many[i] = fmt.Sprintf("b%d", i)
	}
	if _, err := NewRing(many, 8); err == nil {
		t.Error("65 backends accepted; successor mask holds 64")
	}
}
