package cluster

import (
	"testing"
	"time"
)

// manualClock is a hand-advanced nanosecond clock (the same idiom
// policy.ManualClock uses; duplicated locally to keep the dependency
// direction cluster -> policy-free).
type manualClock struct{ ns int64 }

func (m *manualClock) Now() int64              { return m.ns }
func (m *manualClock) Advance(d time.Duration) { m.ns += int64(d) }

func newTestHealth(names ...string) (*Health, *manualClock) {
	mc := &manualClock{ns: 1}
	h := NewHealth(names, HealthConfig{
		FailThreshold: 3,
		HoldOff:       time.Second,
		HoldOffMax:    8 * time.Second,
		ProbationOKs:  2,
		RewindRate:    50,
		Clock:         mc.Now,
	})
	return h, mc
}

func TestHealthFailureLadder(t *testing.T) {
	h, mc := newTestHealth("b0", "b1")

	// Two failures: still up (threshold 3); a success resets the streak.
	h.ReportFailure(0, "io")
	h.ReportFailure(0, "io")
	if !h.Admitted(0) {
		t.Fatal("demoted below FailThreshold")
	}
	h.ReportOK(0)
	h.ReportFailure(0, "io")
	h.ReportFailure(0, "io")
	if !h.Admitted(0) {
		t.Fatal("success did not reset the failure streak")
	}
	// Third consecutive failure demotes.
	h.ReportFailure(0, "io")
	if h.Admitted(0) {
		t.Fatal("not demoted at FailThreshold")
	}
	if h.State(1) != HealthUp {
		t.Fatal("sibling backend affected")
	}

	// Hold-off not yet served.
	mc.Advance(999 * time.Millisecond)
	if h.Admitted(0) {
		t.Fatal("admitted before hold-off expired")
	}
	// Hold-off served: probation readmit on the next routing decision.
	mc.Advance(2 * time.Millisecond)
	if !h.Admitted(0) {
		t.Fatal("not readmitted after hold-off")
	}
	if h.State(0) != HealthProbation {
		t.Fatalf("state %v after readmit, want probation", h.State(0))
	}

	// One strike on probation re-demotes with a doubled hold-off.
	h.ReportFailure(0, "io")
	if h.Admitted(0) {
		t.Fatal("probation strike did not re-demote")
	}
	mc.Advance(1500 * time.Millisecond)
	if h.Admitted(0) {
		t.Fatal("second hold-off not doubled")
	}
	mc.Advance(600 * time.Millisecond)
	if !h.Admitted(0) {
		t.Fatal("not readmitted after doubled hold-off")
	}

	// Probation served: ProbationOKs successes promote to Up and reset
	// the exponential ladder.
	h.ReportOK(0)
	h.ReportOK(0)
	if h.State(0) != HealthUp {
		t.Fatalf("state %v after probation served, want up", h.State(0))
	}
	snap := h.Snapshot()
	if snap[0].Demotions != 2 || snap[0].Readmissions != 2 {
		t.Fatalf("snapshot counters %+v, want 2 demotions / 2 readmissions", snap[0])
	}
}

func TestHealthTelemetryDemotion(t *testing.T) {
	h, mc := newTestHealth("b0", "b1", "b2")

	// A backend reporting policy state backoff-or-worse demotes at once.
	h.ObserveTelemetry(1, BackendTelemetry{WorstPolicyState: 2})
	if h.State(1) != HealthDemoted {
		t.Fatal("quarantined policy state did not demote")
	}

	// Rewind rate above threshold demotes; rate needs two polls.
	h.ObserveTelemetry(2, BackendTelemetry{Rewinds: 100, WorstPolicyState: -1})
	if h.State(2) != HealthUp {
		t.Fatal("first poll (no rate yet) demoted")
	}
	mc.Advance(time.Second)
	h.ObserveTelemetry(2, BackendTelemetry{Rewinds: 200, WorstPolicyState: -1})
	if h.State(2) != HealthDemoted {
		t.Fatal("100 rewinds/s did not demote at threshold 50")
	}

	// A healthy-looking poll must NOT readmit early: recovery goes
	// through the hold-off + probation, like policy's cool-down.
	h.ObserveTelemetry(1, BackendTelemetry{WorstPolicyState: 0})
	if h.State(1) != HealthDemoted {
		t.Fatal("optimistic poll readmitted a demoted backend early")
	}
	// Benign telemetry on the healthy backend changes nothing.
	h.ObserveTelemetry(0, BackendTelemetry{Rewinds: 3, WorstPolicyState: 0})
	if h.State(0) != HealthUp {
		t.Fatal("benign telemetry demoted a healthy backend")
	}
}

func TestParseMetricsJSON(t *testing.T) {
	body := []byte(`{
		"sdrad_rewinds_total": {"SEGV_PKUERR": 5, "STACK_CHK": 2},
		"sdrad_policy_state": {"4": 2, "5": 0},
		"sdrad_memcache_requests_total": 12345
	}`)
	bt, err := ParseMetricsJSON(body)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Rewinds != 7 {
		t.Errorf("rewinds %v, want 7", bt.Rewinds)
	}
	if bt.WorstPolicyState != 2 {
		t.Errorf("worst policy state %d, want 2", bt.WorstPolicyState)
	}
	// No policy metrics: state reports -1 (unknown), not healthy.
	bt, err = ParseMetricsJSON([]byte(`{"sdrad_rewinds_total": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if bt.Rewinds != 3 || bt.WorstPolicyState != -1 {
		t.Errorf("got %+v, want rewinds 3 / state -1", bt)
	}
	if _, err := ParseMetricsJSON([]byte("not json")); err == nil {
		t.Error("malformed snapshot accepted")
	}
}
