package cluster

import "sync"

// hotEntry is one tracked key in the space-saving summary.
type hotEntry struct {
	key   string
	count uint64
	// err is the over-estimate bound inherited from the evicted entry
	// this one replaced (Metwally et al.'s space-saving bookkeeping).
	err uint64
}

// Sketch is a space-saving top-K frequency tracker for hot-key
// detection: a fixed-capacity stream summary where an unseen key evicts
// the minimum-count entry and inherits its count as error bound. It is
// deterministic for a given observation stream — a property the chaos
// campaign leans on — and sized so the router's per-read overhead is one
// map probe and a counter bump in the common case.
//
// Hot promotion is deliberately sticky: a key must accumulate
// promoteAt observations of its own (count minus inherited error)
// before TopK reports it, so churn at the summary's tail cannot flap
// the replicated set. A periodic Decay halves every count, aging out
// yesterday's hot keys.
type Sketch struct {
	mu       sync.Mutex
	capacity int
	k        int
	// promoteAt is the minimum guaranteed-count for a key to be
	// reported hot.
	promoteAt uint64
	entries   map[string]*hotEntry
	// observations counts Observe calls since the last decay.
	observations uint64
	// decayEvery halves counts after this many observations (0 = never).
	decayEvery uint64
}

// NewSketch builds a tracker reporting at most k hot keys. capacity <= 0
// defaults to max(8*k, 64) summary slots; promoteAt <= 0 defaults to 64
// observations; decayEvery <= 0 defaults to 1<<16.
func NewSketch(k, capacity int, promoteAt, decayEvery uint64) *Sketch {
	if k <= 0 {
		k = 8
	}
	if capacity <= 0 {
		capacity = 8 * k
		if capacity < 64 {
			capacity = 64
		}
	}
	if promoteAt == 0 {
		promoteAt = 64
	}
	if decayEvery == 0 {
		decayEvery = 1 << 16
	}
	return &Sketch{
		capacity:   capacity,
		k:          k,
		promoteAt:  promoteAt,
		entries:    make(map[string]*hotEntry, capacity),
		decayEvery: decayEvery,
	}
}

// Observe records one access to key.
func (s *Sketch) Observe(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observations++
	if s.decayEvery > 0 && s.observations >= s.decayEvery {
		s.observations = 0
		for k, e := range s.entries {
			e.count >>= 1
			e.err >>= 1
			if e.count == 0 {
				delete(s.entries, k)
			}
		}
	}
	if e, ok := s.entries[key]; ok {
		e.count++
		return
	}
	if len(s.entries) < s.capacity {
		s.entries[key] = &hotEntry{key: key, count: 1}
		return
	}
	// Evict the minimum-count entry; ties broken by key so the summary
	// is a pure function of the observation stream.
	var min *hotEntry
	for _, e := range s.entries {
		if min == nil || e.count < min.count || (e.count == min.count && e.key < min.key) {
			min = e
		}
	}
	delete(s.entries, min.key)
	s.entries[key] = &hotEntry{key: key, count: min.count + 1, err: min.count}
}

// TopK returns the current hot set: up to k keys whose guaranteed count
// (count - err) has reached the promotion floor, hottest first. Ties
// break by key for determinism.
func (s *Sketch) TopK() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	type cand struct {
		key   string
		count uint64
	}
	var cands []cand
	for _, e := range s.entries {
		if e.count-e.err >= s.promoteAt {
			cands = append(cands, cand{e.key, e.count})
		}
	}
	// Insertion sort: the candidate set is tiny (bounded by capacity,
	// and in practice by the handful of genuinely hot keys).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if a.count > b.count || (a.count == b.count && a.key < b.key) {
				break
			}
			cands[j-1], cands[j] = b, a
		}
	}
	if len(cands) > s.k {
		cands = cands[:s.k]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.key
	}
	return out
}
