package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// HealthState is a backend's position on the router's fleet-level
// ladder, mirroring internal/policy's domain ladder one level up: a
// healthy backend serves its keys, a demoted backend's keys spill to
// ring successors, and a demoted backend is readmitted *on probation* —
// it gets traffic again, but the next strike within the probation
// window re-demotes it with a doubled hold-off instead of restarting
// the ladder from scratch.
type HealthState int

// Ladder states.
const (
	// HealthUp: the backend serves its key range.
	HealthUp HealthState = iota
	// HealthProbation: readmitted after a demotion; serving, but one
	// strike re-demotes with a doubled hold-off.
	HealthProbation
	// HealthDemoted: not serving; keys spill to ring successors until
	// the hold-off expires.
	HealthDemoted
)

func (s HealthState) String() string {
	switch s {
	case HealthUp:
		return "up"
	case HealthProbation:
		return "probation"
	case HealthDemoted:
		return "demoted"
	default:
		return "unknown"
	}
}

// HealthConfig parameterizes the watcher. The zero value gets defaults
// suited to the simulated backends.
type HealthConfig struct {
	// FailThreshold is the consecutive I/O-failure count that demotes a
	// backend (default 3). Telemetry-driven demotions (policy state,
	// rewind rate) are immediate.
	FailThreshold int
	// HoldOff is the first demotion's duration; each re-demotion from
	// probation doubles it, capped at HoldOffMax (defaults 1s / 30s).
	HoldOff    time.Duration
	HoldOffMax time.Duration
	// ProbationOKs is the consecutive-success count that promotes a
	// probationary backend back to Up (default 8).
	ProbationOKs int
	// RewindRate is the telemetry-observed rewinds/second above which a
	// backend is demoted (default 50; <= 0 disables the rate check).
	RewindRate float64
	// Clock supplies monotonic nanoseconds; nil uses the wall clock.
	// The chaos cluster campaign installs a manual clock so demotion and
	// readmission are deterministic functions of the schedule.
	Clock func() int64
}

func (c *HealthConfig) setDefaults() {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.HoldOff <= 0 {
		c.HoldOff = time.Second
	}
	if c.HoldOffMax <= 0 {
		c.HoldOffMax = 30 * time.Second
	}
	if c.ProbationOKs <= 0 {
		c.ProbationOKs = 8
	}
	if c.RewindRate == 0 {
		c.RewindRate = 50
	}
}

// backendHealth is one backend's ladder position.
type backendHealth struct {
	state HealthState
	// consecFails counts consecutive I/O failures while Up; consecOKs
	// counts consecutive successes while on probation.
	consecFails int
	consecOKs   int
	// demotedUntil is when a demoted backend becomes eligible for
	// probation readmission.
	demotedUntil int64
	// holdOffStep counts demotions since the backend last earned Up, for
	// the exponential hold-off.
	holdOffStep int
	// reason labels the live demotion for metrics and dumps.
	reason string
	// telemetry poll deltas: last observed cumulative rewind count and
	// poll timestamp, for the rewind-rate estimate.
	lastRewinds  float64
	lastPollNs   int64
	pollsSeen    int64
	demotions    int64
	readmissions int64
}

// Health tracks every backend's ladder state. It is consulted on the
// hot path (Admitted) under a read lock and mutated by I/O outcome
// reports and telemetry polls.
type Health struct {
	cfg   HealthConfig
	names []string

	mu       sync.Mutex
	backends []backendHealth
	lastNow  int64

	// onChange, when non-nil, hears every state transition (router
	// metrics and chaos schedules).
	onChange func(backend int, from, to HealthState, reason string)
}

// NewHealth builds a tracker for the named backends, all starting Up.
func NewHealth(names []string, cfg HealthConfig) *Health {
	cfg.setDefaults()
	return &Health{cfg: cfg, names: names, backends: make([]backendHealth, len(names))}
}

// OnChange installs the transition listener (call before serving).
func (h *Health) OnChange(fn func(backend int, from, to HealthState, reason string)) {
	h.onChange = fn
}

// now reads the clock, clamped monotonic under h.mu.
func (h *Health) now() int64 {
	var n int64
	if h.cfg.Clock != nil {
		n = h.cfg.Clock()
	} else {
		n = time.Now().UnixNano()
	}
	if n < h.lastNow {
		n = h.lastNow
	}
	h.lastNow = n
	return n
}

// transition moves backend b to state, firing the listener.
func (h *Health) transition(b int, to HealthState, reason string) {
	bh := &h.backends[b]
	from := bh.state
	if from == to {
		return
	}
	bh.state = to
	bh.reason = reason
	switch to {
	case HealthDemoted:
		bh.demotions++
	case HealthProbation:
		bh.readmissions++
	case HealthUp:
		bh.holdOffStep = 0
	}
	if h.onChange != nil {
		h.onChange(b, from, to, reason)
	}
}

// demote moves backend b to Demoted with the next exponential hold-off.
func (h *Health) demote(b int, now int64, reason string) {
	bh := &h.backends[b]
	bh.holdOffStep++
	hold := int64(h.cfg.HoldOff)
	for i := 1; i < bh.holdOffStep; i++ {
		hold <<= 1
		if hold >= int64(h.cfg.HoldOffMax) || hold <= 0 {
			hold = int64(h.cfg.HoldOffMax)
			break
		}
	}
	if hold > int64(h.cfg.HoldOffMax) {
		hold = int64(h.cfg.HoldOffMax)
	}
	bh.demotedUntil = now + hold
	bh.consecFails = 0
	bh.consecOKs = 0
	h.transition(b, HealthDemoted, reason)
}

// Admitted reports whether backend b may serve traffic right now. An
// expired hold-off is ticked here — the probation readmit happens on the
// first routing decision after the hold-off, exactly as policy.Engine
// readmits on the first Admit after a cool-down.
func (h *Health) Admitted(b int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	bh := &h.backends[b]
	if bh.state != HealthDemoted {
		return true
	}
	now := h.now()
	if now >= bh.demotedUntil {
		bh.consecOKs = 0
		h.transition(b, HealthProbation, "hold-off expired")
		return true
	}
	return false
}

// State returns backend b's current state without ticking readmission.
func (h *Health) State(b int) HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.backends[b].state
}

// ReportOK records a successful exchange with backend b; enough
// successes promote a probationary backend to Up.
func (h *Health) ReportOK(b int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bh := &h.backends[b]
	bh.consecFails = 0
	if bh.state == HealthProbation {
		bh.consecOKs++
		if bh.consecOKs >= h.cfg.ProbationOKs {
			h.transition(b, HealthUp, "probation served")
		}
	}
}

// ReportFailure records a failed exchange (dial error, torn reply,
// timeout). While Up, FailThreshold consecutive failures demote; on
// probation a single strike re-demotes with a doubled hold-off.
func (h *Health) ReportFailure(b int, cause string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	bh := &h.backends[b]
	switch bh.state {
	case HealthProbation:
		h.demote(b, now, "probation strike: "+cause)
	case HealthUp:
		bh.consecFails++
		if bh.consecFails >= h.cfg.FailThreshold {
			h.demote(b, now, cause)
		}
	}
}

// BackendTelemetry is the slice of a backend's /metrics.json snapshot
// the router acts on.
type BackendTelemetry struct {
	// Rewinds is the cumulative rewind count (sum over detection
	// oracles of sdrad_rewinds_total).
	Rewinds float64
	// WorstPolicyState is the highest internal/policy ladder state over
	// the backend's UDIs (0 healthy .. 3 shedding), from
	// sdrad_policy_state; -1 when the backend exports no policy metrics.
	WorstPolicyState int
}

// ParseMetricsJSON extracts BackendTelemetry from a /metrics.json body
// (the telemetry registry's SnapshotJSON format: plain metrics as
// numbers, labeled families as {label: value} objects).
func ParseMetricsJSON(body []byte) (BackendTelemetry, error) {
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(body, &snap); err != nil {
		return BackendTelemetry{}, fmt.Errorf("cluster: metrics snapshot: %w", err)
	}
	bt := BackendTelemetry{WorstPolicyState: -1}
	if raw, ok := snap["sdrad_rewinds_total"]; ok {
		var byCode map[string]float64
		if err := json.Unmarshal(raw, &byCode); err == nil {
			for _, v := range byCode {
				bt.Rewinds += v
			}
		} else {
			var n float64
			if json.Unmarshal(raw, &n) == nil {
				bt.Rewinds = n
			}
		}
	}
	if raw, ok := snap["sdrad_policy_state"]; ok {
		var byUDI map[string]float64
		if err := json.Unmarshal(raw, &byUDI); err == nil {
			for _, v := range byUDI {
				if int(v) > bt.WorstPolicyState {
					bt.WorstPolicyState = int(v)
				}
			}
		}
	}
	return bt, nil
}

// FetchMetrics is the default telemetry fetch: HTTP GET with a short
// timeout. The chaos campaign swaps in a stub so polls are deterministic.
func FetchMetrics(url string) ([]byte, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: metrics fetch: %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// ObserveTelemetry feeds one backend's polled telemetry into the ladder:
// a policy state at Backoff or worse demotes immediately (the backend
// itself has declared its event domain suspect — the router should not
// wait for its own failure counters to notice), and a rewind rate above
// HealthConfig.RewindRate demotes even while the backend still answers.
// Recovery is NOT decided here: a demoted backend waits out its hold-off
// and earns Up through probation traffic, so one optimistic poll cannot
// flap a struggling backend straight back in.
func (h *Health) ObserveTelemetry(b int, bt BackendTelemetry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	bh := &h.backends[b]
	var rate float64
	if bh.pollsSeen > 0 && now > bh.lastPollNs {
		rate = (bt.Rewinds - bh.lastRewinds) / (float64(now-bh.lastPollNs) / 1e9)
	}
	bh.lastRewinds = bt.Rewinds
	bh.lastPollNs = now
	bh.pollsSeen++
	if bh.state == HealthDemoted {
		return
	}
	switch {
	case bt.WorstPolicyState >= 1: // policy.StateBackoff or worse
		h.demote(b, now, fmt.Sprintf("policy state %d", bt.WorstPolicyState))
	case h.cfg.RewindRate > 0 && rate > h.cfg.RewindRate:
		h.demote(b, now, fmt.Sprintf("rewind rate %.0f/s", rate))
	}
}

// HealthSnapshot is one backend's ladder state for dumps and campaign
// assertions.
type HealthSnapshot struct {
	Backend      string `json:"backend"`
	State        string `json:"state"`
	Reason       string `json:"reason,omitempty"`
	HoldOffStep  int    `json:"hold_off_step,omitempty"`
	DeniedForNs  int64  `json:"denied_for_ns,omitempty"`
	Demotions    int64  `json:"demotions"`
	Readmissions int64  `json:"readmissions"`
}

// Snapshot returns every backend's state in backend order.
func (h *Health) Snapshot() []HealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	out := make([]HealthSnapshot, len(h.backends))
	for i := range h.backends {
		bh := &h.backends[i]
		out[i] = HealthSnapshot{
			Backend:      h.names[i],
			State:        bh.state.String(),
			Reason:       bh.reason,
			HoldOffStep:  bh.holdOffStep,
			Demotions:    bh.demotions,
			Readmissions: bh.readmissions,
		}
		if bh.state == HealthDemoted {
			if d := bh.demotedUntil - now; d > 0 {
				out[i].DeniedForNs = d
			}
		}
	}
	return out
}
