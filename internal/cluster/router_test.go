package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"sdrad/internal/memcache"
)

// testBackend is one in-process hardened memcached behind a loopback
// listener.
type testBackend struct {
	name string
	srv  *memcache.Server
	ln   net.Listener
}

func (b *testBackend) stop() {
	b.srv.Stop()
	_ = b.ln.Close()
}

func startBackend(t *testing.T, name string) *testBackend {
	t.Helper()
	srv, err := memcache.NewServer(memcache.Config{
		Variant:    memcache.VariantSDRaD,
		Workers:    1,
		HashPower:  10,
		CacheBytes: 4 << 20,
	})
	if err != nil {
		t.Fatalf("backend %s: %v", name, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Stop()
		t.Fatalf("backend %s: %v", name, err)
	}
	go func() { _ = srv.ServeListener(ln) }()
	return &testBackend{name: name, srv: srv, ln: ln}
}

// startRouter serves cfg's router on a loopback listener and returns it
// with its address.
func startRouter(t *testing.T, cfg Config) (*Router, string) {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rt.Serve(ln) }()
	t.Cleanup(rt.Stop)
	return rt, ln.Addr().String()
}

func mustDial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRouterRoutesAndReassembles(t *testing.T) {
	var backends []*testBackend
	var cfgBackends []Backend
	for i := 0; i < 3; i++ {
		b := startBackend(t, fmt.Sprintf("b%d", i))
		defer b.stop()
		backends = append(backends, b)
		cfgBackends = append(cfgBackends, Backend{Name: b.name, Addr: b.ln.Addr().String()})
	}
	rt, addr := startRouter(t, Config{Backends: cfgBackends})
	c := mustDial(t, addr)

	// A pipelined batch whose keys span all three backends: sets then
	// gets, replies must come back in request order.
	const n = 60
	var sets [][]byte
	for i := 0; i < n; i++ {
		sets = append(sets, memcache.FormatSet(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)), 0))
	}
	replies, err := c.DoBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range replies {
		if !bytes.Equal(rep, []byte("STORED\r\n")) {
			t.Fatalf("set %d: %q", i, rep)
		}
	}
	var gets [][]byte
	for i := 0; i < n; i++ {
		gets = append(gets, memcache.FormatGet(fmt.Sprintf("key%d", i)))
	}
	replies, err = c.DoBatch(gets)
	if err != nil {
		t.Fatal(err)
	}
	spread := map[int]int{}
	for i, rep := range replies {
		val, _, ok := memcache.ParseGetValue(rep)
		if !ok || string(val) != fmt.Sprintf("val%d", i) {
			t.Fatalf("get %d: reply out of order or wrong: %q", i, rep)
		}
		spread[rt.Ring().Primary(fmt.Sprintf("key%d", i))]++
	}
	if len(spread) != 3 {
		t.Fatalf("keys did not span all backends: %v", spread)
	}

	// Protocol odds and ends at the router: version, delete, miss,
	// unroutable garbage, and quit.
	rep, err := c.Do([]byte("version\r\n"))
	if err != nil || !bytes.HasPrefix(rep, []byte("VERSION")) {
		t.Fatalf("version: %q err=%v", rep, err)
	}
	rep, err = c.Do(memcache.FormatDelete("key0"))
	if err != nil || !bytes.Equal(rep, []byte("DELETED\r\n")) {
		t.Fatalf("delete: %q err=%v", rep, err)
	}
	rep, err = c.Do(memcache.FormatGet("key0"))
	if err != nil || !bytes.Equal(rep, []byte("END\r\n")) {
		t.Fatalf("deleted key not a miss: %q err=%v", rep, err)
	}
	rep, err = c.Do([]byte("bogus command\r\n"))
	if err != nil || !bytes.Equal(rep, []byte("ERROR\r\n")) {
		t.Fatalf("garbage: %q err=%v", rep, err)
	}
	if _, err := c.Do([]byte("quit\r\n")); err == nil {
		t.Fatal("quit did not close the client connection")
	}

	// A single burst ending in quit: everything ahead of the quit is
	// still served (real memcached answers, then closes), the request
	// behind it is dropped, and the stream ends cleanly.
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	var burst bytes.Buffer
	burst.Write(memcache.FormatSet("qk", []byte("qv"), 0))
	burst.Write(memcache.FormatGet("qk"))
	burst.WriteString("quit\r\n")
	burst.Write(memcache.FormatSet("dropped", []byte("x"), 0))
	if _, err := nc.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	rep, err = memcache.ReadReply(br)
	if err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
		t.Fatalf("pre-quit set: %q err=%v", rep, err)
	}
	rep, err = memcache.ReadReply(br)
	if err != nil {
		t.Fatal(err)
	}
	if val, _, ok := memcache.ParseGetValue(rep); !ok || string(val) != "qv" {
		t.Fatalf("pre-quit get: %q", rep)
	}
	if _, err := memcache.ReadReply(br); err != io.EOF {
		t.Fatalf("after quit: %v, want io.EOF", err)
	}
	c2 := mustDial(t, addr)
	rep, err = c2.Do(memcache.FormatGet("dropped"))
	if err != nil || !bytes.Equal(rep, []byte("END\r\n")) {
		t.Fatalf("request behind quit leaked into the store: %q err=%v", rep, err)
	}
}

func TestRouterSpillsAroundDeadBackend(t *testing.T) {
	mc := &manualClock{ns: 1}
	var backends []*testBackend
	var cfgBackends []Backend
	for i := 0; i < 3; i++ {
		b := startBackend(t, fmt.Sprintf("b%d", i))
		defer b.stop()
		backends = append(backends, b)
		cfgBackends = append(cfgBackends, Backend{Name: b.name, Addr: b.ln.Addr().String()})
	}
	rt, addr := startRouter(t, Config{
		Backends: cfgBackends,
		Health: HealthConfig{
			FailThreshold: 2,
			HoldOff:       time.Hour, // never readmitted within the test
			Clock:         mc.Now,
		},
	})
	c := mustDial(t, addr)

	// Find a key owned by backend 1 and one owned by backend 0.
	keyOn := func(b int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("spill%d", i)
			if rt.Ring().Primary(k) == b {
				return k
			}
		}
	}
	victimKey, survivorKey := keyOn(1), keyOn(0)
	for _, k := range []string{victimKey, survivorKey} {
		if rep, err := c.Do(memcache.FormatSet(k, []byte("v"), 0)); err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
			t.Fatalf("set %s: %q err=%v", k, rep, err)
		}
	}

	backends[1].stop()

	// Until the failure streak demotes b1, its keys answer degraded; the
	// survivor's keys never miss a beat. FailThreshold 2 means at most a
	// few degraded replies.
	degraded := 0
	for i := 0; i < 10; i++ {
		rep, err := c.Do(memcache.FormatSet(victimKey, []byte("after"), 0))
		if err != nil {
			t.Fatalf("client connection broke on backend death: %v", err)
		}
		if bytes.HasPrefix(rep, []byte("SERVER_ERROR")) {
			degraded++
			continue
		}
		if !bytes.Equal(rep, []byte("STORED\r\n")) {
			t.Fatalf("op %d: %q", i, rep)
		}
	}
	if degraded == 0 || degraded > 4 {
		t.Fatalf("degraded replies %d, want 1..4 (threshold 2 plus in-flight slack)", degraded)
	}
	if rt.Health().State(1) != HealthDemoted {
		t.Fatal("dead backend not demoted")
	}
	// After demotion the victim's keys spill to a successor and serve:
	// the post-demotion sets in the loop above landed there, so the key
	// reads back with the spilled value.
	rep, err := c.Do(memcache.FormatGet(victimKey))
	if val, _, ok := memcache.ParseGetValue(rep); err != nil || !ok || string(val) != "after" {
		t.Fatalf("spilled get: %q err=%v", rep, err)
	}
	if rep, err := c.Do(memcache.FormatSet(victimKey, []byte("spilled"), 0)); err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
		t.Fatalf("spilled set: %q err=%v", rep, err)
	}
	rep, err = c.Do(memcache.FormatGet(victimKey))
	if val, _, ok := memcache.ParseGetValue(rep); err != nil || !ok || string(val) != "spilled" {
		t.Fatalf("spilled read-back: %q err=%v", rep, err)
	}
	if rep, err := c.Do(memcache.FormatGet(survivorKey)); err != nil {
		t.Fatalf("survivor key: %v", err)
	} else if val, _, ok := memcache.ParseGetValue(rep); !ok || string(val) != "v" {
		t.Fatalf("survivor key damaged: %q", rep)
	}
}

func TestRouterQuarantineReadmit(t *testing.T) {
	mc := &manualClock{ns: 1}
	var cfgBackends []Backend
	var backends []*testBackend
	for i := 0; i < 2; i++ {
		b := startBackend(t, fmt.Sprintf("b%d", i))
		defer b.stop()
		backends = append(backends, b)
		cfgBackends = append(cfgBackends, Backend{
			Name: b.name, Addr: b.ln.Addr().String(),
			MetricsURL: fmt.Sprintf("stub://b%d", i),
		})
	}
	// The fetch stub plays a backend whose policy engine has quarantined
	// its event domain, then recovers.
	quarantined := map[string]bool{"stub://b1": true}
	fetch := func(url string) ([]byte, error) {
		if quarantined[url] {
			return []byte(`{"sdrad_policy_state": {"4": 2}}`), nil
		}
		return []byte(`{"sdrad_policy_state": {"4": 0}}`), nil
	}
	rt, addr := startRouter(t, Config{
		Backends: cfgBackends,
		Fetch:    fetch,
		Health: HealthConfig{
			HoldOff:      time.Second,
			ProbationOKs: 2,
			Clock:        mc.Now,
		},
	})
	c := mustDial(t, addr)

	rt.PollOnce()
	if rt.Health().State(1) != HealthDemoted {
		t.Fatal("quarantined backend not demoted on poll")
	}
	// Its keys spill; the cluster keeps serving.
	key := func() string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("q%d", i)
			if rt.Ring().Primary(k) == 1 {
				return k
			}
		}
	}()
	if rep, err := c.Do(memcache.FormatSet(key, []byte("x"), 0)); err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
		t.Fatalf("spill during quarantine: %q err=%v", rep, err)
	}

	// Backend recovers; hold-off expires; the next decision readmits on
	// probation and traffic promotes it back to Up.
	quarantined["stub://b1"] = false
	mc.Advance(1100 * time.Millisecond)
	rt.PollOnce()
	for i := 0; i < 3; i++ {
		if rep, err := c.Do(memcache.FormatSet(key, []byte("back"), 0)); err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
			t.Fatalf("post-readmit set %d: %q err=%v", i, rep, err)
		}
	}
	if got := rt.Health().State(1); got != HealthUp {
		t.Fatalf("backend state %v after probation traffic, want up", got)
	}
	// And the key now routes to its primary again.
	cb := mustDial(t, backends[1].ln.Addr().String())
	rep, err := cb.Do(memcache.FormatGet(key))
	if val, _, ok := memcache.ParseGetValue(rep); err != nil || !ok || string(val) != "back" {
		t.Fatalf("primary did not receive post-readmit writes: %q err=%v", rep, err)
	}
}

func TestRouterHotKeyReplication(t *testing.T) {
	var cfgBackends []Backend
	var backends []*testBackend
	for i := 0; i < 3; i++ {
		b := startBackend(t, fmt.Sprintf("b%d", i))
		defer b.stop()
		backends = append(backends, b)
		cfgBackends = append(cfgBackends, Backend{Name: b.name, Addr: b.ln.Addr().String()})
	}
	rt, addr := startRouter(t, Config{
		Backends:    cfgBackends,
		HotK:        2,
		HotReplicas: 3,
		HotPromote:  32,
		HotRefresh:  64,
	})
	c := mustDial(t, addr)

	if rep, err := c.Do(memcache.FormatSet("hotkey", []byte("original"), 0)); err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
		t.Fatalf("seed set: %q err=%v", rep, err)
	}
	// Hammer the key hot; the refresh promotes and warms it.
	for i := 0; i < 200; i++ {
		rep, err := c.Do(memcache.FormatGet("hotkey"))
		if err != nil {
			t.Fatal(err)
		}
		if val, _, ok := memcache.ParseGetValue(rep); !ok || string(val) != "original" {
			t.Fatalf("read %d: %q — replica fallback lost the value", i, rep)
		}
	}
	rt.RefreshHotSet()
	hotNow := rt.HotKeys()
	if len(hotNow) != 1 || hotNow[0] != "hotkey" {
		t.Fatalf("hot set %v, want [hotkey]", hotNow)
	}
	// A write to the hot key fans out to every replica: each backend
	// must hold the new value directly.
	if rep, err := c.Do(memcache.FormatSet("hotkey", []byte("fanned"), 0)); err != nil || !bytes.Equal(rep, []byte("STORED\r\n")) {
		t.Fatalf("hot write: %q err=%v", rep, err)
	}
	for i, b := range backends {
		cb := mustDial(t, b.ln.Addr().String())
		rep, err := cb.Do(memcache.FormatGet("hotkey"))
		if err != nil {
			t.Fatalf("backend %d: %v", i, err)
		}
		if val, _, ok := memcache.ParseGetValue(rep); !ok || string(val) != "fanned" {
			t.Fatalf("backend %d missing fanned hot write: %q", i, rep)
		}
	}
	// Reads of the hot key still see the fanned value from any replica.
	for i := 0; i < 30; i++ {
		rep, err := c.Do(memcache.FormatGet("hotkey"))
		if err != nil {
			t.Fatal(err)
		}
		if val, _, ok := memcache.ParseGetValue(rep); !ok || string(val) != "fanned" {
			t.Fatalf("hot read %d: %q", i, rep)
		}
	}
}
