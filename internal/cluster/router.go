package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sdrad/internal/memcache"
	"sdrad/internal/telemetry"
)

// Backend names one hardened memcached backend.
type Backend struct {
	// Name is the stable identity hashed onto the ring; key placement
	// follows names, not addresses.
	Name string
	// Addr is the TCP address the backend serves the memcached protocol
	// on.
	Addr string
	// MetricsURL, when non-empty, is the backend's telemetry
	// /metrics.json endpoint; the router polls it for failure-aware
	// routing (policy ladder state, rewind rate).
	MetricsURL string
}

// Config parameterizes a Router.
type Config struct {
	Backends []Backend
	// VirtualNodes per backend on the ring (default 64).
	VirtualNodes int
	// PoolSize is the number of pooled connections per backend (default
	// 2 — each client connection's fan-out borrows one for the duration
	// of an exchange, so the pool bounds per-backend concurrency).
	PoolSize int
	// DialTimeout/IOTimeout bound backend exchanges (defaults 5s / 10s;
	// the IO timeout is what turns a hung backend into a routed-around
	// backend instead of a stuck client).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// Health tunes the demotion/readmission ladder.
	Health HealthConfig
	// PollInterval is the background telemetry poll period; 0 disables
	// the background poller (PollOnce still works — the chaos campaign
	// drives polls manually for determinism).
	PollInterval time.Duration
	// Fetch retrieves a metrics URL (default FetchMetrics; campaigns
	// stub it).
	Fetch func(url string) ([]byte, error)

	// HotK enables hot-key replication: the top-K keys of the read
	// stream (by space-saving sketch) are served from any of
	// HotReplicas ring successors and written through to all of them.
	// 0 disables replication.
	HotK int
	// HotReplicas is the replica count per hot key, primary included
	// (default 2, clamped to the backend count).
	HotReplicas int
	// HotPromote is the sketch's promotion floor: observations a key
	// needs before it counts as hot (default 64).
	HotPromote uint64
	// HotRefresh is the request interval between hot-set recomputations
	// (default 1024).
	HotRefresh uint64

	// MaxInboundBatch caps how many pipelined inbound requests join one
	// fan-out round (default 64).
	MaxInboundBatch int
	// Telemetry, when non-nil, receives router metrics.
	Telemetry *telemetry.Recorder
	// Logf, when non-nil, receives routing state transitions.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	if c.HotReplicas <= 0 {
		c.HotReplicas = 2
	}
	if c.HotReplicas > len(c.Backends) {
		c.HotReplicas = len(c.Backends)
	}
	if c.HotRefresh == 0 {
		c.HotRefresh = 1024
	}
	if c.MaxInboundBatch <= 0 {
		c.MaxInboundBatch = 64
	}
	if c.Fetch == nil {
		c.Fetch = FetchMetrics
	}
}

// pool is a bounded set of idle connections to one backend.
type pool struct {
	addr        string
	idle        chan *Client
	dialTimeout time.Duration
	ioTimeout   time.Duration
}

func (p *pool) get() (*Client, error) {
	select {
	case c := <-p.idle:
		return c, nil
	default:
		return Dial(p.addr, p.dialTimeout, p.ioTimeout)
	}
}

func (p *pool) put(c *Client) {
	select {
	case p.idle <- c:
	default:
		_ = c.Close()
	}
}

func (p *pool) drain() {
	for {
		select {
		case c := <-p.idle:
			_ = c.Close()
		default:
			return
		}
	}
}

// Router is the cluster front-end: it accepts memcached text-protocol
// clients, consistent-hashes keys onto backends, fans pipelined batches
// out per backend concurrently, and reassembles replies in inbound
// order. Routing is failure-aware — demoted backends are skipped and
// their keys spill to ring successors — and hot keys are replicated.
type Router struct {
	cfg    Config
	ring   *Ring
	health *Health
	pools  []*pool
	sketch *Sketch

	// hot is the current hot set: map[string][]int (key -> replica
	// backends in ring order). Replaced wholesale by refreshHotSet.
	hot     atomic.Pointer[map[string][]int]
	hotRR   atomic.Uint64
	reads   atomic.Uint64
	refresh sync.Mutex

	done    chan struct{}
	closing atomic.Bool
	wg      sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// metrics (nil without telemetry)
	mReqs      *telemetry.CounterVec
	mErrors    *telemetry.CounterVec
	mHealth    *telemetry.GaugeVec
	mSpills    *telemetry.Counter
	mDemotions *telemetry.Counter
	mReadmits  *telemetry.Counter
	mFanoutLat *telemetry.Histogram
	mHotKeys   *telemetry.Gauge
	mHotReads  *telemetry.Counter
	mHotWrites *telemetry.Counter
	mClients   *telemetry.Gauge
	mPollErrs  *telemetry.Counter
}

// NewRouter builds a router over the configured backends.
func NewRouter(cfg Config) (*Router, error) {
	cfg.setDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one backend")
	}
	names := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		names[i] = b.Name
	}
	ring, err := NewRing(names, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		health: NewHealth(names, cfg.Health),
		pools:  make([]*pool, len(cfg.Backends)),
		done:   make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	for i, b := range cfg.Backends {
		rt.pools[i] = &pool{
			addr:        b.Addr,
			idle:        make(chan *Client, cfg.PoolSize),
			dialTimeout: cfg.DialTimeout,
			ioTimeout:   cfg.IOTimeout,
		}
	}
	if cfg.HotK > 0 {
		rt.sketch = NewSketch(cfg.HotK, 0, cfg.HotPromote, 0)
	}
	empty := map[string][]int{}
	rt.hot.Store(&empty)
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry.Registry()
		rt.mReqs = reg.CounterVec("sdrad_router_requests_total",
			"Requests routed, by backend.", "backend")
		rt.mErrors = reg.CounterVec("sdrad_router_backend_errors_total",
			"Backend exchange failures (dial, timeout, torn reply), by backend.", "backend")
		rt.mHealth = reg.GaugeVec("sdrad_router_backend_health",
			"Backend ladder state (0 up, 1 probation, 2 demoted).", "backend")
		rt.mSpills = reg.Counter("sdrad_router_spills_total",
			"Requests served by a ring successor because the primary was demoted.")
		rt.mDemotions = reg.Counter("sdrad_router_demotions_total",
			"Backends demoted (I/O failures, policy state, rewind rate).")
		rt.mReadmits = reg.Counter("sdrad_router_readmissions_total",
			"Backends readmitted on probation after a hold-off expired.")
		rt.mFanoutLat = reg.Histogram("sdrad_router_fanout_latency_ns",
			"Per-backend pipelined exchange latency, nanoseconds.")
		rt.mHotKeys = reg.Gauge("sdrad_router_hot_keys",
			"Keys currently replicated by the hot-key sketch.")
		rt.mHotReads = reg.Counter("sdrad_router_hot_reads_total",
			"Reads served from a hot-key replica.")
		rt.mHotWrites = reg.Counter("sdrad_router_hot_fanout_writes_total",
			"Extra replica writes fanned out for hot keys.")
		rt.mClients = reg.Gauge("sdrad_router_client_connections",
			"Live client connections.")
		rt.mPollErrs = reg.Counter("sdrad_router_poll_errors_total",
			"Telemetry poll failures (fetch or parse).")
		for _, n := range names {
			rt.mHealth.With(n).Set(0)
		}
	}
	rt.health.OnChange(func(b int, from, to HealthState, reason string) {
		if rt.mHealth != nil {
			rt.mHealth.With(names[b]).Set(int64(to))
			switch to {
			case HealthDemoted:
				rt.mDemotions.Add(1)
			case HealthProbation:
				rt.mReadmits.Add(1)
			}
		}
		if cfg.Logf != nil {
			cfg.Logf("cluster: backend %s %s -> %s (%s)", names[b], from, to, reason)
		}
	})
	if cfg.PollInterval > 0 {
		rt.wg.Add(1)
		go rt.pollLoop()
	}
	return rt, nil
}

// Health exposes the ladder for dumps and campaign assertions.
func (rt *Router) Health() *Health { return rt.health }

// Ring exposes the key placement for tests and campaign oracles.
func (rt *Router) Ring() *Ring { return rt.ring }

// pollLoop is the background telemetry poller.
func (rt *Router) pollLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-t.C:
			rt.PollOnce()
		}
	}
}

// PollOnce fetches every backend's /metrics.json once and feeds the
// results into the health ladder. Backends without a MetricsURL are
// skipped (their health is driven by exchange outcomes alone). Fetch or
// parse failures count a metric but do NOT demote: a missing telemetry
// endpoint is not a missing backend — the data path has its own failure
// detector.
func (rt *Router) PollOnce() {
	for i, b := range rt.cfg.Backends {
		if b.MetricsURL == "" {
			continue
		}
		body, err := rt.cfg.Fetch(b.MetricsURL)
		if err != nil {
			if rt.mPollErrs != nil {
				rt.mPollErrs.Add(1)
			}
			continue
		}
		bt, err := ParseMetricsJSON(body)
		if err != nil {
			if rt.mPollErrs != nil {
				rt.mPollErrs.Add(1)
			}
			continue
		}
		rt.health.ObserveTelemetry(i, bt)
	}
}

// Serve accepts clients on ln until Stop (or a listener error). One
// goroutine per client connection; each connection's pipelined batches
// fan out concurrently per backend.
func (rt *Router) Serve(ln net.Listener) error {
	go func() {
		<-rt.done
		_ = ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if rt.closing.Load() {
				return nil
			}
			return err
		}
		rt.connMu.Lock()
		rt.conns[nc] = struct{}{}
		rt.connMu.Unlock()
		if rt.mClients != nil {
			rt.mClients.Add(1)
		}
		rt.wg.Add(1)
		go rt.serveConn(nc)
	}
}

// Stop closes the listener and every live client connection, then waits
// for the serving goroutines. A router that returns from Stop has no
// stuck connections — the chaos campaign asserts Stop completes.
func (rt *Router) Stop() {
	if rt.closing.Swap(true) {
		return
	}
	close(rt.done)
	rt.connMu.Lock()
	for nc := range rt.conns {
		_ = nc.Close()
	}
	rt.connMu.Unlock()
	rt.wg.Wait()
	for _, p := range rt.pools {
		p.drain()
	}
}

// reqKind classifies a framed request for routing.
type reqKind int

const (
	kindRead reqKind = iota
	kindWrite
	kindQuit
	kindVersion
	kindFlushAll
	kindUnroutable
)

// classify returns the request kind and routing key.
func classify(req []byte) (reqKind, string) {
	if len(req) == 0 || req[0] == memcache.BinMagicRequest {
		return kindUnroutable, ""
	}
	nl := bytes.IndexByte(req, '\n')
	if nl < 0 {
		nl = len(req)
	}
	fields := bytes.Fields(bytes.TrimRight(req[:nl], "\r\n"))
	if len(fields) == 0 {
		return kindUnroutable, ""
	}
	cmd := string(fields[0])
	switch cmd {
	case "quit":
		return kindQuit, ""
	case "version":
		return kindVersion, ""
	case "flush_all":
		return kindFlushAll, ""
	case "get", "gets":
		if len(fields) < 2 {
			return kindUnroutable, ""
		}
		return kindRead, string(fields[1])
	case "set", "add", "replace", "append", "prepend", "cas",
		"delete", "touch", "incr", "decr", "bset":
		if len(fields) < 2 {
			return kindUnroutable, ""
		}
		return kindWrite, string(fields[1])
	}
	return kindUnroutable, ""
}

// fanReq is one request's routing plan inside a batch.
type fanReq struct {
	idx     int  // inbound position (reply slot)
	shadow  bool // replica write: reply discarded
	primary bool
	req     []byte
}

// serveConn bridges one client connection: frame a pipelined inbound
// batch, fan it out per backend, reassemble replies in inbound order.
func (rt *Router) serveConn(nc net.Conn) {
	defer rt.wg.Done()
	defer func() {
		rt.connMu.Lock()
		delete(rt.conns, nc)
		rt.connMu.Unlock()
		if rt.mClients != nil {
			rt.mClients.Add(-1)
		}
		_ = nc.Close()
	}()
	r := bufio.NewReaderSize(nc, 64<<10)
	w := bufio.NewWriterSize(nc, 64<<10)
	var reqs [][]byte
	succ := make([]int, 0, rt.ring.Backends())
	for {
		// Frame the inbound batch: block for the first request, then keep
		// framing as long as bytes are already buffered — a client that
		// wrote a pipelined burst in one send gets its whole burst into
		// one fan-out round.
		reqs = reqs[:0]
		req, err := memcache.ReadRequest(r)
		if err != nil {
			return
		}
		reqs = append(reqs, req)
		for len(reqs) < rt.cfg.MaxInboundBatch && r.Buffered() > 0 {
			req, err := memcache.ReadRequest(r)
			if err != nil {
				return
			}
			reqs = append(reqs, req)
		}
		replies, quit := rt.routeBatch(reqs, succ)
		for _, rep := range replies {
			if len(rep) > 0 {
				if _, err := w.Write(rep); err != nil {
					return
				}
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// routeBatch fans one inbound batch out per backend and returns the
// replies in inbound order. quit reports a client quit command (replies
// up to it are returned; requests after it are dropped, as a closing
// connection would).
func (rt *Router) routeBatch(reqs [][]byte, succ []int) (replies [][]byte, quit bool) {
	replies = make([][]byte, len(reqs))
	groups := make(map[int][]fanReq)
	hot := *rt.hot.Load()
scan:
	for i, req := range reqs {
		kind, key := classify(req)
		switch kind {
		case kindQuit:
			// Everything ahead of the quit is still served — the truncated
			// batch falls through to the fan-out below; requests behind it
			// are dropped, as a closing connection would drop them.
			reqs = reqs[:i]
			replies = replies[:i]
			quit = true
			break scan
		case kindVersion:
			replies[i] = []byte("VERSION sdrad-router\r\n")
			continue
		case kindFlushAll:
			// Fan to every admitted backend; the router answers once.
			for b := 0; b < rt.ring.Backends(); b++ {
				if rt.health.Admitted(b) {
					groups[b] = append(groups[b], fanReq{idx: i, shadow: true, req: req})
				}
			}
			replies[i] = []byte("OK\r\n")
			continue
		case kindUnroutable:
			replies[i] = []byte("ERROR\r\n")
			continue
		}
		succ = rt.ring.Successors(key, 0, succ)
		if kind == kindRead {
			// Hot keys keep feeding the sketch too — otherwise decay would
			// silently evict a key that is still hot.
			rt.observeRead(key)
		}
		if replicas, ok := hot[key]; ok && kind == kindWrite {
			// Hot write: fan to every admitted replica; the first admitted
			// one answers the client.
			first := true
			for _, b := range replicas {
				if !rt.health.Admitted(b) {
					continue
				}
				groups[b] = append(groups[b], fanReq{idx: i, shadow: !first, primary: b == succ[0], req: req})
				if !first && rt.mHotWrites != nil {
					rt.mHotWrites.Add(1)
				}
				first = false
			}
			if first { // no admitted replica
				replies[i] = unavailableReply()
			}
			continue
		}
		if replicas, ok := hot[key]; ok && kind == kindRead {
			// Hot read: rotate over admitted replicas.
			rr := int(rt.hotRR.Add(1))
			picked := -1
			for off := 0; off < len(replicas); off++ {
				b := replicas[(rr+off)%len(replicas)]
				if rt.health.Admitted(b) {
					picked = b
					break
				}
			}
			if picked < 0 {
				replies[i] = unavailableReply()
				continue
			}
			if rt.mHotReads != nil && picked != succ[0] {
				rt.mHotReads.Add(1)
			}
			groups[picked] = append(groups[picked], fanReq{idx: i, primary: picked == succ[0], req: req})
			continue
		}
		// Normal path: first admitted backend in ring order.
		target := -1
		for _, b := range succ {
			if rt.health.Admitted(b) {
				target = b
				break
			}
		}
		if target < 0 {
			replies[i] = unavailableReply()
			continue
		}
		if target != succ[0] && rt.mSpills != nil {
			rt.mSpills.Add(1)
		}
		groups[target] = append(groups[target], fanReq{idx: i, primary: target == succ[0], req: req})
	}

	// Flush each backend's group concurrently, reassembling by inbound
	// index. Order within one backend's pipeline is preserved by the
	// backend (same connection), and across backends by the index.
	var wg sync.WaitGroup
	for b, group := range groups {
		wg.Add(1)
		go func(b int, group []fanReq) {
			defer wg.Done()
			rt.exchange(b, group, replies)
		}(b, group)
	}
	wg.Wait()

	// Hot-read miss fallback: a replica that has not seen the key yet
	// answers END; retry at the primary so replication warm-up cannot
	// turn a hit into a miss.
	for i, req := range reqs {
		if replies[i] == nil || !bytes.Equal(replies[i], []byte("END\r\n")) {
			continue
		}
		kind, key := classify(req)
		if kind != kindRead {
			continue
		}
		if _, ok := hot[key]; !ok {
			continue
		}
		succ = rt.ring.Successors(key, 1, succ)
		primary := succ[0]
		if !rt.health.Admitted(primary) {
			continue
		}
		one := []fanReq{{idx: i, primary: true, req: req}}
		rt.exchange(primary, one, replies)
	}
	return replies, quit
}

// unavailableReply is the router's degraded answer when no backend can
// serve a key: the client connection stays open and later requests keep
// flowing — a whole-cluster outage for one key range must not turn into
// a client-side connection storm.
func unavailableReply() []byte {
	return []byte("SERVER_ERROR cluster: no backend available\r\n")
}

// exchange sends one backend's group as a single pipelined batch and
// scatters the replies into the reply slots. Transport failures fill
// the group's slots with a degraded reply and strike the backend's
// ladder; a replica (shadow) write failure strikes but keeps the
// client-visible reply from the answering backend.
func (rt *Router) exchange(b int, group []fanReq, replies [][]byte) {
	p := rt.pools[b]
	var t0 time.Time
	if rt.mFanoutLat != nil {
		t0 = time.Now()
	}
	fail := func(cause string) {
		if rt.mErrors != nil {
			rt.mErrors.With(rt.ring.Name(b)).Add(1)
		}
		rt.health.ReportFailure(b, cause)
		for _, fr := range group {
			if !fr.shadow && replies[fr.idx] == nil {
				replies[fr.idx] = unavailableReply()
			}
		}
	}
	c, err := p.get()
	if err != nil {
		fail("dial: " + err.Error())
		return
	}
	batch := make([][]byte, len(group))
	for i, fr := range group {
		batch[i] = fr.req
	}
	out, err := c.DoBatch(batch)
	if err != nil {
		_ = c.Close()
		fail("exchange: " + err.Error())
		return
	}
	p.put(c)
	rt.health.ReportOK(b)
	if rt.mFanoutLat != nil {
		rt.mReqs.With(rt.ring.Name(b)).Add(int64(len(group)))
		rt.mFanoutLat.Observe(time.Since(t0).Nanoseconds())
	}
	for i, fr := range group {
		if !fr.shadow {
			replies[fr.idx] = out[i]
		}
	}
}

// observeRead feeds the hot-key sketch and periodically refreshes the
// hot set.
func (rt *Router) observeRead(key string) {
	if rt.sketch == nil {
		return
	}
	rt.sketch.Observe(key)
	if rt.reads.Add(1)%rt.cfg.HotRefresh == 0 {
		rt.refreshHotSet()
	}
}

// refreshHotSet recomputes the replicated key set from the sketch and
// warms new hot keys: the primary's current value is copied to the
// replicas so reads can fan out immediately without a miss storm.
func (rt *Router) refreshHotSet() {
	rt.refresh.Lock()
	defer rt.refresh.Unlock()
	old := *rt.hot.Load()
	top := rt.sketch.TopK()
	next := make(map[string][]int, len(top))
	succ := make([]int, 0, rt.ring.Backends())
	for _, key := range top {
		succ = rt.ring.Successors(key, rt.cfg.HotReplicas, succ)
		next[key] = append([]int(nil), succ...)
		if _, was := old[key]; !was {
			rt.warmHotKey(key, next[key])
		}
	}
	rt.hot.Store(&next)
	if rt.mHotKeys != nil {
		rt.mHotKeys.Set(int64(len(next)))
	}
}

// RefreshHotSet forces a hot-set recomputation (tests and benches; the
// serving path refreshes every HotRefresh reads).
func (rt *Router) RefreshHotSet() { rt.refreshHotSet() }

// HotKeys returns the currently replicated keys.
func (rt *Router) HotKeys() []string {
	hot := *rt.hot.Load()
	out := make([]string, 0, len(hot))
	for k := range hot {
		out = append(out, k)
	}
	return out
}

// warmHotKey copies key's value from its primary to the other replicas.
// Best effort: a failed warm-up costs a fallback-to-primary on the
// first replica read, not correctness.
func (rt *Router) warmHotKey(key string, replicas []int) {
	if len(replicas) < 2 {
		return
	}
	primary := replicas[0]
	if !rt.health.Admitted(primary) {
		return
	}
	p := rt.pools[primary]
	c, err := p.get()
	if err != nil {
		rt.health.ReportFailure(primary, "warm dial: "+err.Error())
		return
	}
	rep, err := c.Do(memcache.FormatGet(key))
	if err != nil {
		_ = c.Close()
		rt.health.ReportFailure(primary, "warm get: "+err.Error())
		return
	}
	p.put(c)
	val, flags, ok := memcache.ParseGetValue(rep)
	if !ok {
		return // nothing to replicate yet
	}
	set := memcache.FormatSet(key, val, flags)
	for _, b := range replicas[1:] {
		if !rt.health.Admitted(b) {
			continue
		}
		rp := rt.pools[b]
		rc, err := rp.get()
		if err != nil {
			rt.health.ReportFailure(b, "warm dial: "+err.Error())
			continue
		}
		if _, err := rc.Do(set); err != nil {
			_ = rc.Close()
			rt.health.ReportFailure(b, "warm set: "+err.Error())
			continue
		}
		rp.put(rc)
		if rt.mHotWrites != nil {
			rt.mHotWrites.Add(1)
		}
	}
}
