package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"sdrad/internal/ycsb"
)

func TestSketchFindsHotKeys(t *testing.T) {
	s := NewSketch(4, 64, 64, 0)
	// A skewed stream: 4 hot keys carry half the traffic, 996 cold keys
	// the rest.
	rng := rand.New(rand.NewSource(1))
	hot := []string{"h0", "h1", "h2", "h3"}
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			s.Observe(hot[rng.Intn(len(hot))])
		} else {
			s.Observe(fmt.Sprintf("cold%d", rng.Intn(996)))
		}
	}
	top := s.TopK()
	if len(top) != 4 {
		t.Fatalf("TopK returned %d keys (%v), want the 4 hot ones", len(top), top)
	}
	want := map[string]bool{"h0": true, "h1": true, "h2": true, "h3": true}
	for _, k := range top {
		if !want[k] {
			t.Errorf("cold key %q promoted to hot", k)
		}
	}
}

func TestSketchPromotionFloor(t *testing.T) {
	s := NewSketch(8, 64, 100, 0)
	for i := 0; i < 99; i++ {
		s.Observe("almost")
	}
	if top := s.TopK(); len(top) != 0 {
		t.Fatalf("key promoted below the floor: %v", top)
	}
	s.Observe("almost")
	if top := s.TopK(); len(top) != 1 || top[0] != "almost" {
		t.Fatalf("key not promoted at the floor: %v", top)
	}
}

func TestSketchDecay(t *testing.T) {
	// decayEvery 1000: after the hot key stops, two decay rounds halve
	// it below the promotion floor while a new key takes over.
	s := NewSketch(1, 64, 64, 1000)
	for i := 0; i < 200; i++ {
		s.Observe("old-hot")
	}
	if top := s.TopK(); len(top) != 1 || top[0] != "old-hot" {
		t.Fatalf("setup: %v", top)
	}
	for i := 0; i < 3000; i++ {
		s.Observe("new-hot")
	}
	top := s.TopK()
	if len(top) != 1 || top[0] != "new-hot" {
		t.Fatalf("decay did not rotate the hot set: %v", top)
	}
}

func TestSketchDeterministic(t *testing.T) {
	// The summary is a pure function of the observation stream — the
	// chaos campaign's schedule hash depends on this.
	run := func() []string {
		s := NewSketch(4, 32, 32, 0)
		choose := ycsb.ZipfianChooser(500, 0.99, 99)
		for i := 0; i < 10000; i++ {
			s.Observe(fmt.Sprintf("user%010d", choose()))
		}
		return s.TopK()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("zipfian stream promoted no hot keys")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same stream, different hot sets: %v vs %v", a, b)
	}
}
