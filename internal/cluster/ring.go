// Package cluster scales the rewind-and-discard story past one process:
// a stdlib-only TCP front-end that consistent-hashes memcached keys onto
// N hardened backends and routes *around* the ones that are busy
// rewinding. Inside a process, a fault is a cheap local event — the
// monitor discards the domain and the server keeps serving. The router
// applies the same idea one level up: a backend whose telemetry says it
// is rewinding too hard (or whose policy engine has quarantined its
// event domain) is demoted, its keys spill to ring successors, and a
// probation readmit brings it back once it proves itself — mirroring
// internal/policy's backoff/quarantine/probation ladder at fleet scope.
package cluster

import (
	"fmt"
	"sort"
)

// fnv1a hashes s with 64-bit FNV-1a plus a finalizer. Raw FNV-1a has
// weak upper bits on short, similar strings (vnode labels, sequential
// keys), and ring lookups order by the full 64-bit value — the fmix64
// avalanche step spreads the entropy so virtual nodes land uniformly.
// Pure function of the input, deterministic across runs and machines
// (ring layout is part of chaos campaign schedules).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnode is one virtual point on the ring.
type vnode struct {
	hash    uint64
	backend int // index into Ring.names
}

// Ring is an immutable consistent-hash ring with virtual nodes. Lookups
// hash the key onto the circle and walk clockwise; VirtualNodes points
// per backend smooth the key-share distribution (the classic Karger
// construction). Membership changes are not mutations: the router keeps
// the ring fixed and *skips* demoted backends during the walk, so a
// backend's keys spill deterministically to its successors and return to
// it on readmission with no rehashing.
type Ring struct {
	names  []string
	vnodes []vnode
}

// NewRing builds a ring over the named backends. Names — not addresses —
// are hashed, so a deployment keeps its key placement when a backend
// moves hosts, and tests get a layout that is a pure function of the
// configuration.
func NewRing(names []string, virtualNodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if len(names) > 64 {
		// Successors tracks visited backends in a 64-bit mask.
		return nil, fmt.Errorf("cluster: at most 64 backends per ring (got %d)", len(names))
	}
	if virtualNodes <= 0 {
		virtualNodes = 64
	}
	seen := map[string]bool{}
	r := &Ring{names: append([]string(nil), names...)}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("cluster: backend %d has an empty name", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", n)
		}
		seen[n] = true
		for v := 0; v < virtualNodes; v++ {
			r.vnodes = append(r.vnodes, vnode{
				hash:    fnv1a(fmt.Sprintf("%s#%d", n, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		return r.vnodes[a].backend < r.vnodes[b].backend
	})
	return r, nil
}

// Backends returns the backend count.
func (r *Ring) Backends() int { return len(r.names) }

// Name returns backend i's name.
func (r *Ring) Name(i int) string { return r.names[i] }

// Successors appends to dst the distinct backends owning key, in ring
// order: dst[0] is the primary, the rest are the spill order. max bounds
// the result (<= 0 means all backends). The walk wraps; with B backends
// every key has exactly B distinct successors.
func (r *Ring) Successors(key string, max int, dst []int) []int {
	if max <= 0 || max > len(r.names) {
		max = len(r.names)
	}
	h := fnv1a(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	dst = dst[:0]
	var seen uint64 // backend-index bitmask; backends are few
	for i := 0; len(dst) < max && i < len(r.vnodes); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if seen&(1<<uint(v.backend)) != 0 {
			continue
		}
		seen |= 1 << uint(v.backend)
		dst = append(dst, v.backend)
	}
	return dst
}

// Primary returns the backend owning key.
func (r *Ring) Primary(key string) int {
	if len(r.vnodes) == 0 {
		return 0
	}
	h := fnv1a(key)
	i := sort.Search(len(r.vnodes), func(j int) bool { return r.vnodes[j].hash >= h })
	return r.vnodes[i%len(r.vnodes)].backend
}
