// Package httpd is an architectural port of the NGINX worker used as the
// paper's second case study (§V-B): a multi-process web server whose HTTP
// parser — the component most exposed to untrusted input — can be
// sandboxed in an accessible persistent nested domain. A detected memory
// error in the parser then closes only the offending connection, where
// the baseline loses every connection of the crashed worker process.
//
// The planted vulnerability reproduces CVE-2009-2629: the complex-URI
// normalizer resolves "/../" segments by scanning a destination pointer
// backwards for the previous '/' without checking the buffer start, so a
// URI with enough parent references walks the pointer below the buffer
// into foreign memory.
package httpd

import (
	"fmt"

	"sdrad/internal/mem"
	"sdrad/internal/telemetry"
)

// Method is a parsed HTTP method.
type Method int

// Supported methods.
const (
	MethodGET Method = iota + 1
	MethodHEAD
	MethodPOST
)

func (m Method) String() string {
	switch m {
	case MethodGET:
		return "GET"
	case MethodHEAD:
		return "HEAD"
	case MethodPOST:
		return "POST"
	default:
		return "UNKNOWN"
	}
}

// Request is the parse result handed back from the parser domain.
type Request struct {
	Method    Method
	Path      string
	Version   string
	KeepAlive bool
	Headers   int // parsed header count
	// ClientCert carries the X-Client-Cert header value when client
	// certificate verification is enabled (the §V-C NGINX+OpenSSL
	// integration).
	ClientCert string
}

// parseError is a protocol-level parse failure (HTTP 400), distinct from
// memory faults which surface as traps.
type parseError struct{ reason string }

func (e *parseError) Error() string { return "httpd: bad request: " + e.reason }

// parserEnv is the memory environment of one parsing pass: the copied
// request bytes inside the parser's reach and a request pool for
// normalization buffers.
type parserEnv struct {
	c    *mem.CPU
	buf  mem.Addr // request bytes (copied into the nested domain)
	blen int
	pool *Pool // request pool (data domain in the hardened build)
}

// window returns a leased native view of the whole request buffer, or
// nil when the lease is refused (armed injector, revoked rights) — the
// callers then stay on the checked page-run scanners with identical
// fault semantics.
func (env *parserEnv) window() []byte {
	if env.blen <= 0 {
		return nil
	}
	l := env.c.SpanLease(env.buf, env.blen, mem.AccessRead)
	if b, ok := l.Bytes(env.buf, env.blen); ok {
		return b
	}
	return nil
}

// poolWindow returns a leased native view of the whole request pool
// block. The lease is write-kind (PKU write rights imply read), so the
// normalizer can both emit segments and run its backward scan on it.
func (env *parserEnv) poolWindow() ([]byte, bool) {
	if env.pool == nil || env.pool.size == 0 {
		return nil, false
	}
	l := env.c.SpanLease(env.pool.base, int(env.pool.size), mem.AccessWrite)
	return l.Window()
}

// parseRequestLine is phase one of the NGINX parser: method, URI, and
// version, including complex-URI normalization. It returns the byte
// offset where the headers begin.
func parseRequestLine(env *parserEnv, req *Request) (headerOff int, err error) {
	line, next := readLineAt(env, 0)
	if line == nil {
		return 0, &parseError{"missing request line"}
	}
	parts := splitSpaces(line)
	if len(parts) != 3 {
		return 0, &parseError{"malformed request line"}
	}
	switch string(parts[0]) {
	case "GET":
		req.Method = MethodGET
	case "HEAD":
		req.Method = MethodHEAD
	case "POST":
		req.Method = MethodPOST
	default:
		return 0, &parseError{"unsupported method"}
	}
	version := string(parts[2])
	if version != "HTTP/1.0" && version != "HTTP/1.1" {
		return 0, &parseError{"unsupported version"}
	}
	req.Version = version
	req.KeepAlive = version == "HTTP/1.1"

	uri := parts[1]
	if len(uri) == 0 || uri[0] != '/' {
		return 0, &parseError{"invalid URI"}
	}
	if isComplexURI(uri) {
		norm, err := normalizeComplexURI(env, uri)
		if err != nil {
			return 0, err
		}
		req.Path = norm
	} else {
		req.Path = string(uri)
	}
	return next, nil
}

// parseHeaders is phase two: header lines until the empty line.
func parseHeaders(env *parserEnv, req *Request, off int) error {
	for {
		line, next := readLineAt(env, off)
		if line == nil {
			return &parseError{"unterminated headers"}
		}
		off = next
		if len(line) == 0 {
			return nil // empty line: end of headers
		}
		colon := indexByte(line, ':')
		if colon <= 0 {
			return &parseError{"malformed header"}
		}
		name := string(trimSpaces(line[:colon]))
		value := string(trimSpaces(line[colon+1:]))
		req.Headers++
		if asciiEqualFold(name, "Connection") {
			switch {
			case asciiEqualFold(value, "close"):
				req.KeepAlive = false
			case asciiEqualFold(value, "keep-alive"):
				req.KeepAlive = true
			}
		}
		if asciiEqualFold(name, "X-Client-Cert") {
			req.ClientCert = value
		}
		if req.Headers > 100 {
			return &parseError{"too many headers"}
		}
	}
}

// isComplexURI reports whether the URI needs normalization (NGINX's
// "complex URI" detection: dot segments or double slashes).
func isComplexURI(uri []byte) bool {
	for i := 0; i+1 < len(uri); i++ {
		if uri[i] == '/' && (uri[i+1] == '.' || uri[i+1] == '/') {
			return true
		}
	}
	return false
}

// normalizeComplexURI resolves ".", "..", and "//" segments into a
// destination buffer taken from the request pool.
//
// BUG (intentional — the CVE-2009-2629 analog): the ".." handler backs
// the write pointer up to the previous '/' by scanning memory backwards,
// with no check against the start of the destination buffer. A URI such
// as "/../../../.." walks the pointer below the buffer, reading (and
// later writing) memory before it. In the hardened build this escapes
// the request pool and faults inside the parser domain, triggering a
// rewind; in the baseline it runs off the worker heap and kills the
// worker process.
func normalizeComplexURI(env *parserEnv, uri []byte) (string, error) {
	dst, err := env.pool.Alloc(env.c, uint64(len(uri))+1)
	if err != nil {
		return "", &parseError{"request pool exhausted"}
	}
	c := env.c
	// Leased fast path: the normalizer runs on a native window over the
	// pool block. The window covers exactly [pool.base, pool.base+size),
	// so the moment the buggy backward scan walks dp below the pool the
	// code drops to the checked accessors — which read (or fault in)
	// foreign memory at exactly the byte the unleased walk would have
	// touched, keeping the CVE's observable behaviour bit-identical.
	pw, pwok := env.poolWindow()
	var pbase mem.Addr
	if pwok {
		pbase = env.pool.base
	}
	dp := dst // next write position
	i := 0
	for i < len(uri) {
		// Invariant: uri[i] == '/'.
		j := i + 1
		for j < len(uri) && uri[j] != '/' {
			j++
		}
		seg := uri[i+1 : j]
		switch {
		case len(seg) == 0 || (len(seg) == 1 && seg[0] == '.'):
			// "//" or "/./": skip.
		case len(seg) == 2 && seg[0] == '.' && seg[1] == '.':
			// "/../": drop the previous segment by scanning back to the
			// prior '/'. The scan has no lower bound — the planted bug:
			// with enough "..", dp walks below dst into foreign memory.
			// The scan consumes one backward page run at a time; each run
			// is entered by an access check at its highest byte, which is
			// exactly the first byte a descending byte-wise loop would
			// touch, so the walk still faults at the same address.
			dp--
			for {
				if pwok && dp >= pbase {
					// In-pool portion of the scan on the native window.
					if k := lastIndexByte(pw[:int(dp-pbase)+1], '/'); k >= 0 {
						dp = pbase + mem.Addr(k)
						break
					}
					// Not found inside the pool: continue below it on the
					// checked path, which walks foreign memory (and
					// faults) exactly as the unleased scan does.
					dp = pbase - 1
					continue
				}
				run := c.ReadRunBack(dp, mem.PageSize)
				if k := lastIndexByte(run, '/'); k >= 0 {
					dp -= mem.Addr(len(run) - 1 - k)
					break
				}
				dp -= mem.Addr(len(run))
			}
		default:
			if pwok && dp >= pbase && int(dp-pbase)+1+len(seg) <= len(pw) {
				o := int(dp - pbase)
				pw[o] = '/'
				copy(pw[o+1:], seg)
				dp += mem.Addr(1 + len(seg))
				break
			}
			c.WriteU8(dp, '/')
			dp++
			for rem := seg; len(rem) > 0; {
				run := c.WriteRun(dp, len(rem))
				n := copy(run, rem)
				rem = rem[n:]
				dp += mem.Addr(n)
			}
		}
		i = j
	}
	if dp <= dst {
		return "/", nil
	}
	if pwok && dp >= pbase {
		o := int(dst - pbase)
		return string(pw[o : o+int(dp-dst)]), nil
	}
	return string(c.ReadBytes(dst, int(dp-dst))), nil
}

// readLineAt returns the bytes of the CRLF-terminated line starting at
// off, and the offset just past it. A nil line means no terminator was
// found. The scan walks the buffer one page run at a time with no copying
// or allocation in the common case (line within one page); the returned
// slice may alias simulated memory and is only valid until the buffer is
// next written.
func readLineAt(env *parserEnv, off int) (line []byte, next int) {
	if off >= env.blen {
		return nil, off
	}
	// Leased fast path: one validity check for the whole buffer, then a
	// plain in-window CRLF scan.
	if b := env.window(); b != nil {
		if i := findCRLF(b[off:]); i >= 0 {
			return b[off : off+i], off + i + 2
		}
		return nil, off
	}
	c := env.c
	var acc []byte // spill, used only when a line crosses a page boundary
	scanned := 0
	for off+scanned < env.blen {
		run := c.ReadRun(env.buf+mem.Addr(off+scanned), env.blen-off-scanned)
		if len(acc) > 0 && acc[len(acc)-1] == '\r' && run[0] == '\n' {
			return acc[:len(acc)-1], off + scanned + 1
		}
		if i := findCRLF(run); i >= 0 {
			if acc == nil {
				return run[:i], off + scanned + i + 2
			}
			return append(acc, run[:i]...), off + scanned + i + 2
		}
		acc = append(acc, run...)
		scanned += len(run)
	}
	return nil, off
}

// findCRLF returns the index of the first "\r\n" fully inside b, or -1.
func findCRLF(b []byte) int {
	for i := 0; i+1 < len(b); i++ {
		j := indexByte(b[i:len(b)-1], '\r')
		if j < 0 {
			return -1
		}
		i += j
		if b[i+1] == '\n' {
			return i
		}
	}
	return -1
}

func lastIndexByte(b []byte, c byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == c {
			return i
		}
	}
	return -1
}

func splitSpaces(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i <= len(b); i++ {
		if i == len(b) || b[i] == ' ' {
			if i > start {
				out = append(out, b[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func trimSpaces(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// asciiEqualFold is a case-insensitive ASCII comparison.
func asciiEqualFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 32
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Pool is the NGINX request-pool analog: a bump allocator over one block
// of memory, reset between requests. In the hardened build the block
// lives in a data domain accessible to the parser domain (paper §V-B).
type Pool struct {
	base mem.Addr
	size uint64
	off  uint64
	high uint64

	// Optional contention instruments (the parser-pool analog of the
	// memcache shard gauges): high-water fill, resets, and allocation
	// failures. Nil without telemetry; Alloc/Reset run on the worker
	// thread, the instruments are atomics readable from anywhere.
	hwGauge    *telemetry.Gauge
	resetCtr   *telemetry.Counter
	exhaustCtr *telemetry.Counter
}

// NewPool wraps [base, base+size) as a request pool.
func NewPool(base mem.Addr, size uint64) *Pool {
	return &Pool{base: base, size: size}
}

// instrument attaches the pool's telemetry instruments.
func (p *Pool) instrument(hw *telemetry.Gauge, resets, exhaustions *telemetry.Counter) {
	p.hwGauge, p.resetCtr, p.exhaustCtr = hw, resets, exhaustions
}

// HighWater reports the deepest fill the pool has reached.
func (p *Pool) HighWater() uint64 { return p.high }

// Alloc grabs n bytes from the pool.
func (p *Pool) Alloc(c *mem.CPU, n uint64) (mem.Addr, error) {
	n = (n + 7) &^ 7
	if p.off+n > p.size {
		if p.exhaustCtr != nil {
			p.exhaustCtr.Inc()
		}
		return 0, fmt.Errorf("httpd: pool exhausted (%d of %d used)", p.off, p.size)
	}
	a := p.base + mem.Addr(p.off)
	p.off += n
	if p.off > p.high {
		p.high = p.off
		if p.hwGauge != nil {
			p.hwGauge.Set(int64(p.high))
		}
	}
	return a, nil
}

// Reset recycles the pool for the next request, zeroing the used
// prefix so stale request data cannot leak between requests.
func (p *Pool) Reset(c *mem.CPU) {
	if p.off > 0 {
		c.Memset(p.base, 0, int(p.off))
		p.off = 0
		if p.resetCtr != nil {
			p.resetCtr.Inc()
		}
	}
}
