package httpd

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/sched"
	"sdrad/internal/telemetry"
)

func startRouteMaster(t testing.TB, workers int, schedCfg sched.Config, pol *policy.Engine) *Master {
	t.Helper()
	m, err := NewMaster(Config{
		Variant: VariantSDRaD,
		Workers: workers,
		Files:   testFiles,
		Sched:   &schedCfg,
		Policy:  pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestPlaceWorkerLegacyRoundRobin(t *testing.T) {
	// Scheduler off entirely: the legacy cursor, unbuffered event queues.
	plain := startMaster(t, VariantSDRaD, 3)
	for i := 0; i < 7; i++ {
		if got := plain.PlaceWorker(); got != i%3 {
			t.Fatalf("sched-off placement %d = worker %d, want %d", i, got, i%3)
		}
	}
	if got := cap(plain.Worker(0).ch); got != 0 {
		t.Fatalf("sched-off event queue buffered to %d, want rendezvous", got)
	}
	// Scheduler on without Route: same cursor, queues buffered for the
	// batch controller.
	schedOn := startRouteMaster(t, 3, sched.Config{}, nil)
	for i := 0; i < 7; i++ {
		if got := schedOn.PlaceWorker(); got != i%3 {
			t.Fatalf("route-off placement %d = worker %d, want %d", i, got, i%3)
		}
	}
	if got := cap(schedOn.Worker(0).ch); got != schedOn.cfg.MaxBatch {
		t.Fatalf("sched-on event queue cap = %d, want MaxBatch %d", got, schedOn.cfg.MaxBatch)
	}
}

func TestPlaceWorkerAvoidsBackloggedWorker(t *testing.T) {
	m := startRouteMaster(t, 2, sched.Config{Route: true}, nil)
	// Idle cluster: the scorer's tie-break reproduces round-robin.
	if a, b := m.PlaceWorker(), m.PlaceWorker(); a != 0 || b != 1 {
		t.Fatalf("idle placement = %d,%d, want 0,1", a, b)
	}
	// Park worker 0 inside a control event and stage a backlog on its
	// (now buffered) queue.
	w0 := m.Worker(0)
	parked := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = w0.Inspect(func(*proc.Thread) error {
			close(parked)
			<-release
			return nil
		})
	}()
	<-parked
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := w0.NewConn()
			_, _, _ = c.Do(FormatRequest("/index.html", true))
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(w0.ch) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("worker 0 queue stuck at %d events", len(w0.ch))
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Every new connection lands on the calm worker 1, wherever the tie
	// cursor sits.
	for i := 0; i < 5; i++ {
		if got := m.PlaceWorker(); got != 1 {
			t.Fatalf("placement %d = backlogged worker %d, want 1", i, got)
		}
	}
	close(release)
	wg.Wait()
}

func TestPlaceWorkerAvoidsRewindHotWorker(t *testing.T) {
	m := startRouteMaster(t, 2, sched.Config{Route: true}, nil)
	// Heat worker 0's rewind window with a parser attack; placement must
	// prefer the clean worker 1 afterwards even though both are idle.
	evil := m.Worker(0).NewConn()
	if _, closed, err := evil.Do(FormatRequest(attackURI(), true)); err != nil || !closed {
		t.Fatalf("attack: closed=%v err=%v", closed, err)
	}
	for i := 0; i < 4; i++ {
		if got := m.PlaceWorker(); got != 1 {
			t.Fatalf("placement %d = rewind-hot worker %d, want 1", i, got)
		}
	}
}

func TestPoolContentionGauges(t *testing.T) {
	rec := telemetry.New(telemetry.Options{})
	m, err := NewMaster(Config{
		Variant:   VariantSDRaD,
		Workers:   1,
		Files:     testFiles,
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	w := m.Worker(0)
	c := w.NewConn()
	// Only the complex-URI normalizer allocates from the request pool.
	if resp := mustGet(t, c, "/subdir/../index.html"); !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Fatalf("unexpected response %q", resp)
	}
	if hw := w.pool.HighWater(); hw == 0 {
		t.Fatal("pool high-water mark stayed 0 after a parsed request")
	}
	reg := rec.Registry()
	hw := reg.GaugeVec("sdrad_httpd_pool_high_water_bytes", "", "worker").With("0")
	if got := hw.Value(); got != int64(w.pool.HighWater()) {
		t.Errorf("high-water gauge = %d, want %d", got, w.pool.HighWater())
	}
	resets := reg.CounterVec("sdrad_httpd_pool_resets_total", "", "worker").With("0")
	if got := resets.Value(); got < 1 {
		t.Errorf("pool resets counter = %d, want >= 1", got)
	}
	exh := reg.CounterVec("sdrad_httpd_pool_exhaustions_total", "", "worker").With("0")
	if got := exh.Value(); got != 0 {
		t.Errorf("pool exhaustions = %d on a healthy request", got)
	}
}

func TestFloorPinnedFeedsPolicyBackoff(t *testing.T) {
	// Thresholds far out of reach: the rewind ladder alone never
	// escalates, so any Backoff state must come from the controller's
	// floor-pin pressure signal.
	eng := policy.New(policy.Config{
		BackoffThreshold:    1000,
		QuarantineThreshold: 1001,
		ShedThreshold:       1002,
	})
	m := startRouteMaster(t, 1, sched.Config{Window: 50 * time.Millisecond}, eng)
	w := m.Worker(0)
	// Repeated attacks halve the bound to the floor and keep the rewind
	// window hot past the 50ms pin window.
	deadline := time.Now().Add(10 * time.Second)
	for w.SchedSnapshot().FloorPins == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller never reported a floor pin")
		}
		evil := w.NewConn()
		if _, closed, err := evil.Do(FormatRequest(attackURI(), true)); err != nil || !closed {
			t.Fatalf("attack: closed=%v err=%v", closed, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var snap *policy.DomainSnapshot
	for _, ds := range eng.Snapshot() {
		if ds.UDI == int(parserUDI) {
			s := ds
			snap = &s
		}
	}
	if snap == nil {
		t.Fatal("no policy state for the parser UDI")
	}
	if snap.State != policy.StateBackoff.String() {
		t.Fatalf("parser policy state = %s, want %s (floor-pin pressure)", snap.State, policy.StateBackoff)
	}
	if snap.Escalations < 1 {
		t.Fatalf("escalations = %d, want >= 1", snap.Escalations)
	}
}
