package httpd

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sdrad/internal/cryptolib"
)

// certMaster starts a master with client-cert verification enabled.
func certMaster(t *testing.T, v Variant) *Master {
	t.Helper()
	m, err := NewMaster(Config{
		Variant:           v,
		Workers:           1,
		Files:             map[string]int{"/secure.html": 256},
		VerifyClientCerts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

// certRequest builds a GET carrying a client certificate header.
func certRequest(path string, cert []byte) []byte {
	return []byte(fmt.Sprintf(
		"GET %s HTTP/1.1\r\nHost: x\r\nX-Client-Cert: %s\r\nConnection: keep-alive\r\n\r\n",
		path, EncodeCertHeader(cert)))
}

func TestClientCertAccepted(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		m := certMaster(t, v)
		c := m.Worker(0).NewConn()
		good := cryptolib.FormatCertificate("client-1", "c1@example.org")
		resp, _, err := c.Do(certRequest("/secure.html", good))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(resp), "HTTP/1.1 200") {
			t.Fatalf("resp = %q", resp[:40])
		}
	})
}

func TestClientCertRejected(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		m := certMaster(t, v)
		c := m.Worker(0).NewConn()
		bad := cryptolib.FormatCertificate("x", "not-an-email")
		resp, _, err := c.Do(certRequest("/secure.html", bad))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(resp), "HTTP/1.1 403") {
			t.Fatalf("resp = %q", resp[:40])
		}
	})
}

func TestNoCertHeaderStillServes(t *testing.T) {
	m := certMaster(t, VariantSDRaD)
	c := m.Worker(0).NewConn()
	resp, _, err := c.Do(FormatRequest("/secure.html", true))
	if err != nil || !strings.HasPrefix(string(resp), "HTTP/1.1 200") {
		t.Fatalf("resp = %q err = %v", resp[:min(len(resp), 40)], err)
	}
}

func TestCVE2022_3786_BaselineKillsWorker(t *testing.T) {
	// The paper's motivation for isolating the X.509 API: the punycode
	// stack overflow in certificate checking is a DoS against the whole
	// worker.
	m := certMaster(t, VariantVanilla)
	w := m.Worker(0)
	good := w.NewConn()
	if resp, _, err := good.Do(FormatRequest("/secure.html", true)); err != nil ||
		!strings.HasPrefix(string(resp), "HTTP/1.1 200") {
		t.Fatal("pre-attack request failed")
	}

	evil := w.NewConn()
	_, _, err := evil.Do(certRequest("/secure.html", cryptolib.MaliciousCertificate()))
	if !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("attack err = %v, want worker down", err)
	}
	crashed, cause := w.Crashed()
	if !crashed {
		t.Fatal("worker survived the malicious certificate")
	}
	t.Logf("crash cause: %v", cause)
}

func TestCVE2022_3786_SDRaDAbsorbs(t *testing.T) {
	// §V-C: "We verified that the CVE triggers a rewind and NGINX closes
	// the related connection and reinitializes the OpenSSL domain before
	// continuing execution."
	m := certMaster(t, VariantSDRaD)
	w := m.Worker(0)
	good := w.NewConn()

	evil := w.NewConn()
	resp, closed, err := evil.Do(certRequest("/secure.html", cryptolib.MaliciousCertificate()))
	if err != nil {
		t.Fatalf("transport err: %v", err)
	}
	if !closed {
		t.Fatalf("attacker connection not closed (resp %q)", resp[:min(len(resp), 40)])
	}
	if crashed, cause := w.Crashed(); crashed {
		t.Fatalf("worker crashed: %v", cause)
	}
	if w.Rewinds() != 1 {
		t.Errorf("rewinds = %d", w.Rewinds())
	}

	// Other clients keep working — including further certificate checks
	// (the OpenSSL domain was reinitialized).
	goodCert := cryptolib.FormatCertificate("client-2", "c2@example.org")
	respGood, _, err := good.Do(certRequest("/secure.html", goodCert))
	if err != nil || !strings.HasPrefix(string(respGood), "HTTP/1.1 200") {
		t.Fatalf("post-attack verify: %q err=%v", respGood[:min(len(respGood), 40)], err)
	}
}

func TestRepeatedCertAttacksAndParserAttacksTogether(t *testing.T) {
	// Both sandboxes on one worker: the parser domain and the verifier
	// domain recover independently.
	m := certMaster(t, VariantSDRaD)
	w := m.Worker(0)
	survivor := w.NewConn()
	for i := 0; i < 3; i++ {
		evilCert := w.NewConn()
		if _, closed, err := evilCert.Do(certRequest("/x", cryptolib.MaliciousCertificate())); err != nil || !closed {
			t.Fatalf("cert attack %d: closed=%v err=%v", i, closed, err)
		}
		evilURI := w.NewConn()
		if _, closed, err := evilURI.Do(FormatRequest("/"+strings.Repeat("../", 200), true)); err != nil || !closed {
			t.Fatalf("uri attack %d: closed=%v err=%v", i, closed, err)
		}
		resp, _, err := survivor.Do(certRequest("/secure.html", cryptolib.FormatCertificate("s", "s@ok.io")))
		if err != nil || !strings.HasPrefix(string(resp), "HTTP/1.1 200") {
			t.Fatalf("survivor broken after round %d: %v", i, err)
		}
	}
	if w.Rewinds() != 6 {
		t.Errorf("rewinds = %d, want 6", w.Rewinds())
	}
}

func TestOversizedCertRejected(t *testing.T) {
	m := certMaster(t, VariantSDRaD)
	c := m.Worker(0).NewConn()
	huge := cryptolib.FormatCertificate("x", "u@"+strings.Repeat("a", 5000)+".com")
	resp, _, err := c.Do(certRequest("/secure.html", huge))
	// Either the request is too large for the connection buffer or the
	// certificate is rejected; the worker must survive both ways.
	if err == nil && !strings.HasPrefix(string(resp), "HTTP/1.1 403") {
		t.Fatalf("resp = %q", resp[:min(len(resp), 40)])
	}
	if crashed, _ := m.Worker(0).Crashed(); crashed {
		t.Fatal("worker crashed")
	}
}

func TestCertHeaderRoundTrip(t *testing.T) {
	cert := cryptolib.FormatCertificate("cn", "e@x.y")
	enc := EncodeCertHeader(cert)
	if strings.ContainsAny(enc, "\r\n") {
		t.Error("encoded header contains line breaks")
	}
	if string(DecodeCertHeader(enc)) != string(cert) {
		t.Error("round trip failed")
	}
}
