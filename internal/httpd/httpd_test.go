package httpd

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

var testFiles = map[string]int{
	"/index.html": 512,
	"/big.bin":    8 * 1024,
	"/empty.bin":  0,
}

func startMaster(t testing.TB, v Variant, workers int) *Master {
	t.Helper()
	m, err := NewMaster(Config{Variant: v, Workers: workers, Files: testFiles})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func allVariants(t *testing.T, fn func(t *testing.T, v Variant)) {
	for _, v := range []Variant{VariantVanilla, VariantTLSF, VariantSDRaD} {
		t.Run(v.String(), func(t *testing.T) { fn(t, v) })
	}
}

func mustGet(t *testing.T, c *Conn, path string) string {
	t.Helper()
	resp, closed, err := c.Do(FormatRequest(path, true))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	if closed {
		t.Fatalf("GET %s: connection closed", path)
	}
	return string(resp)
}

func TestServeStaticFiles(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		m := startMaster(t, v, 1)
		c := m.Worker(0).NewConn()
		resp := mustGet(t, c, "/index.html")
		if !strings.HasPrefix(resp, "HTTP/1.1 200 OK\r\n") {
			t.Fatalf("resp = %q", resp[:min(len(resp), 80)])
		}
		if !strings.Contains(resp, "Content-Length: 512\r\n") {
			t.Errorf("missing content length: %q", resp[:120])
		}
		body := resp[strings.Index(resp, "\r\n\r\n")+4:]
		if len(body) != 512 {
			t.Errorf("body len = %d", len(body))
		}
		if !strings.HasPrefix(body, "/index.html#") {
			t.Errorf("body content = %q", body[:24])
		}
	})
}

func TestKeepAliveMultipleRequests(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		m := startMaster(t, v, 1)
		c := m.Worker(0).NewConn()
		for i := 0; i < 20; i++ {
			resp := mustGet(t, c, "/big.bin")
			if !strings.HasPrefix(resp, "HTTP/1.1 200") {
				t.Fatalf("request %d failed", i)
			}
		}
	})
}

func Test404(t *testing.T) {
	m := startMaster(t, VariantSDRaD, 1)
	c := m.Worker(0).NewConn()
	resp := mustGet(t, c, "/nope")
	if !strings.HasPrefix(resp, "HTTP/1.1 404") {
		t.Errorf("resp = %q", resp[:40])
	}
}

func TestConnectionClose(t *testing.T) {
	m := startMaster(t, VariantVanilla, 1)
	c := m.Worker(0).NewConn()
	resp, closed, err := c.Do(FormatRequest("/index.html", false))
	if err != nil || !closed {
		t.Fatalf("closed=%v err=%v", closed, err)
	}
	if !strings.Contains(string(resp), "Connection: close") {
		t.Error("missing close header")
	}
	if _, _, err := c.Do(FormatRequest("/index.html", true)); !errors.Is(err, ErrConnClosed) {
		t.Errorf("reuse err = %v", err)
	}
}

func TestHeadRequest(t *testing.T) {
	m := startMaster(t, VariantTLSF, 1)
	c := m.Worker(0).NewConn()
	resp, _, err := c.Do([]byte("HEAD /big.bin HTTP/1.1\r\nHost: x\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(resp)
	if !strings.Contains(text, "Content-Length: 8192") {
		t.Errorf("resp = %q", text)
	}
	if body := text[strings.Index(text, "\r\n\r\n")+4:]; len(body) != 0 {
		t.Errorf("HEAD returned a body of %d bytes", len(body))
	}
}

func TestBadRequests(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		m := startMaster(t, v, 1)
		for _, raw := range []string{
			"BREW /pot HTTP/1.1\r\n\r\n",
			"GET /index.html\r\n\r\n",
			"GET /x HTTP/0.9\r\n\r\n",
			"GET noslash HTTP/1.1\r\n\r\n",
			"garbage\r\n\r\n",
			"GET /x HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n",
		} {
			c := m.Worker(0).NewConn()
			resp, _, err := c.Do([]byte(raw))
			if err != nil {
				t.Fatalf("%q: %v", raw, err)
			}
			if !strings.HasPrefix(string(resp), "HTTP/1.1 400") {
				t.Errorf("%q -> %q, want 400", raw, resp[:min(len(resp), 40)])
			}
		}
	})
}

func TestLegitimateComplexURIs(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		m := startMaster(t, v, 1)
		c := m.Worker(0).NewConn()
		// All of these normalize to /index.html.
		for _, path := range []string{
			"/foo/../index.html",
			"//index.html",
			"/./index.html",
			"/a/b/../../index.html",
			"/a/./b/.././../index.html",
		} {
			resp := mustGet(t, c, path)
			if !strings.HasPrefix(resp, "HTTP/1.1 200") {
				t.Errorf("%s -> %q", path, resp[:min(len(resp), 40)])
			}
		}
		// Normalizing to an unknown path yields 404, not a crash.
		resp := mustGet(t, c, "/foo/../bar")
		if !strings.HasPrefix(resp, "HTTP/1.1 404") {
			t.Errorf("/foo/../bar -> %q", resp[:40])
		}
	})
}

// attackURI underflows the URI normalization buffer (CVE-2009-2629
// analog): far more ".." segments than path depth.
func attackURI() string {
	return "/" + strings.Repeat("../", 200)
}

func TestCVE2009_2629_BaselineKillsWorker(t *testing.T) {
	m := startMaster(t, VariantVanilla, 1)
	w := m.Worker(0)
	good := w.NewConn()
	mustGet(t, good, "/index.html")

	evil := w.NewConn()
	_, _, err := evil.Do(FormatRequest(attackURI(), true))
	if !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("attack err = %v, want worker down", err)
	}
	crashed, cause := w.Crashed()
	if !crashed {
		t.Fatal("worker survived")
	}
	t.Logf("worker crash cause: %v", cause)
	// The good client's connection is gone too — the paper's point.
	if _, _, err := good.Do(FormatRequest("/index.html", true)); !errors.Is(err, ErrWorkerDown) {
		t.Errorf("good client err = %v", err)
	}
	// The master restarts the worker; new connections work again.
	if _, err := m.RestartWorker(0); err != nil {
		t.Fatal(err)
	}
	c := m.Worker(0).NewConn()
	if resp := mustGet(t, c, "/index.html"); !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Error("restarted worker not serving")
	}
	if m.Restarts() != 1 {
		t.Errorf("restarts = %d", m.Restarts())
	}
}

func TestCVE2009_2629_SDRaDRewinds(t *testing.T) {
	m := startMaster(t, VariantSDRaD, 1)
	w := m.Worker(0)
	good := w.NewConn()
	mustGet(t, good, "/index.html")

	evil := w.NewConn()
	resp, closed, err := evil.Do(FormatRequest(attackURI(), true))
	if err != nil {
		t.Fatalf("attack transport err: %v", err)
	}
	if !closed {
		t.Fatalf("attacker connection not closed (resp %q)", resp[:min(len(resp), 60)])
	}
	if w.Rewinds() != 1 {
		t.Errorf("rewinds = %d", w.Rewinds())
	}
	if crashed, cause := w.Crashed(); crashed {
		t.Fatalf("hardened worker crashed: %v", cause)
	}
	// The good client's keep-alive connection is untouched.
	if resp := mustGet(t, good, "/big.bin"); !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Error("good connection broken by rewind")
	}
}

func TestRepeatedParserAttacks(t *testing.T) {
	m := startMaster(t, VariantSDRaD, 1)
	w := m.Worker(0)
	survivor := w.NewConn()
	for i := 0; i < 5; i++ {
		evil := w.NewConn()
		_, closed, err := evil.Do(FormatRequest(attackURI(), true))
		if err != nil || !closed {
			t.Fatalf("attack %d: closed=%v err=%v", i, closed, err)
		}
		if resp := mustGet(t, survivor, "/index.html"); !strings.HasPrefix(resp, "HTTP/1.1 200") {
			t.Fatalf("survivor broken after attack %d", i)
		}
	}
	if w.Rewinds() != 5 {
		t.Errorf("rewinds = %d", w.Rewinds())
	}
}

func TestMultipleWorkersIndependent(t *testing.T) {
	m := startMaster(t, VariantVanilla, 3)
	// Kill worker 1 with the CVE; workers 0 and 2 keep serving.
	evil := m.Worker(1).NewConn()
	if _, _, err := evil.Do(FormatRequest(attackURI(), true)); !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("err = %v", err)
	}
	for _, idx := range []int{0, 2} {
		c := m.Worker(idx).NewConn()
		if resp := mustGet(t, c, "/index.html"); !strings.HasPrefix(resp, "HTTP/1.1 200") {
			t.Errorf("worker %d not serving", idx)
		}
	}
}

func TestConcurrentConnections(t *testing.T) {
	allVariants(t, func(t *testing.T, v Variant) {
		m := startMaster(t, v, 2)
		done := make(chan error, 10)
		for g := 0; g < 10; g++ {
			go func(g int) {
				c := m.Worker(g % 2).NewConn()
				for i := 0; i < 25; i++ {
					resp, _, err := c.Do(FormatRequest("/index.html", true))
					if err != nil {
						done <- err
						return
					}
					if !strings.HasPrefix(string(resp), "HTTP/1.1 200") {
						done <- fmt.Errorf("g%d req%d: %q", g, i, resp[:20])
						return
					}
				}
				done <- nil
			}(g)
		}
		for g := 0; g < 10; g++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestPoolExhaustionIs400(t *testing.T) {
	// A URI bigger than the pool produces a clean 400, not a fault.
	m, err := NewMaster(Config{
		Variant:     VariantSDRaD,
		Files:       testFiles,
		PoolSize:    512,
		ConnBufSize: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	c := m.Worker(0).NewConn()
	long := "/a/./" + strings.Repeat("b", 600) // complex + too big for pool
	resp, _, err := c.Do(FormatRequest(long, true))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(resp), "HTTP/1.1 400") {
		t.Errorf("resp = %q", resp[:min(len(resp), 40)])
	}
}

func TestRequestTooLargeIsError(t *testing.T) {
	m := startMaster(t, VariantVanilla, 1)
	c := m.Worker(0).NewConn()
	big := FormatRequest("/"+strings.Repeat("x", 9000), true)
	if _, _, err := c.Do(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestMappedBytes(t *testing.T) {
	m := startMaster(t, VariantSDRaD, 1)
	if m.Worker(0).MappedBytes() == 0 {
		t.Error("no mapped memory")
	}
}

func TestMethodAndVariantStrings(t *testing.T) {
	if MethodGET.String() != "GET" || MethodHEAD.String() != "HEAD" ||
		MethodPOST.String() != "POST" || Method(9).String() != "UNKNOWN" {
		t.Error("Method.String broken")
	}
	if VariantVanilla.String() != "vanilla" || Variant(9).String() != "unknown" {
		t.Error("Variant.String broken")
	}
}

func TestPipelineOrdering(t *testing.T) {
	// A pipelined burst returns responses in request order, batched vs
	// sequential bit-identical, across all variants.
	allVariants(t, func(t *testing.T, v Variant) {
		m := startMaster(t, v, 1)
		w := m.Worker(0)
		paths := []string{"/index.html", "/big.bin", "/missing.txt", "/empty.bin", "/index.html"}
		var reqs [][]byte
		for _, p := range paths {
			reqs = append(reqs, FormatRequest(p, true))
		}
		seq := w.NewConn()
		var want []string
		for _, p := range paths {
			want = append(want, mustGet(t, seq, p))
		}
		res := w.NewConn().DoPipeline(reqs)
		if len(res) != len(paths) {
			t.Fatalf("results = %d", len(res))
		}
		for i, r := range res {
			if r.Err != nil || r.Closed {
				t.Fatalf("res[%d]: closed=%v err=%v", i, r.Closed, r.Err)
			}
			if string(r.Resp) != want[i] {
				t.Errorf("res[%d] differs from sequential: %q vs %q",
					i, r.Resp[:min(len(r.Resp), 40)], want[i][:min(len(want[i]), 40)])
			}
		}
	})
}

func TestPipelineSpansBatches(t *testing.T) {
	m, err := NewMaster(Config{Variant: VariantSDRaD, Workers: 1, Files: testFiles, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	var reqs [][]byte
	for i := 0; i < 11; i++ {
		reqs = append(reqs, FormatRequest("/index.html", true))
	}
	res := m.Worker(0).NewConn().DoPipeline(reqs)
	if len(res) != 11 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r.Err != nil || r.Closed || !strings.HasPrefix(string(r.Resp), "HTTP/1.1 200") {
			t.Fatalf("res[%d]: %q closed=%v err=%v", i, r.Resp[:min(len(r.Resp), 30)], r.Closed, r.Err)
		}
	}
}

func TestPipelineAttackMidBatchRewindsOnce(t *testing.T) {
	// The parser trap mid-batch rewinds once and discards the whole
	// batch: every request of the burst reports closed, the worker
	// survives, and other connections keep working.
	m := startMaster(t, VariantSDRaD, 1)
	w := m.Worker(0)
	good := w.NewConn()
	mustGet(t, good, "/index.html")

	evil := w.NewConn()
	res := evil.DoPipeline([][]byte{
		FormatRequest("/index.html", true),
		FormatRequest(attackURI(), true),
		FormatRequest("/big.bin", true),
	})
	for i, r := range res {
		if !r.Closed {
			t.Errorf("batch item %d not closed after rewind", i)
		}
	}
	if got := w.Rewinds(); got != 1 {
		t.Errorf("rewinds = %d, want 1 for the whole batch", got)
	}
	if crashed, cause := w.Crashed(); crashed {
		t.Fatalf("worker crashed: %v", cause)
	}
	mustGet(t, good, "/big.bin")
}

func TestPipelineConnectionCloseMidBatch(t *testing.T) {
	// A Connection: close response closes the conn for the requests
	// pipelined behind it, like the sequential flow.
	allVariants(t, func(t *testing.T, v Variant) {
		m := startMaster(t, v, 1)
		res := m.Worker(0).NewConn().DoPipeline([][]byte{
			FormatRequest("/index.html", true),
			FormatRequest("/index.html", false),
			FormatRequest("/index.html", true),
		})
		if res[0].Closed || res[0].Err != nil {
			t.Fatalf("res[0]: closed=%v err=%v", res[0].Closed, res[0].Err)
		}
		if !res[1].Closed || res[1].Err != nil {
			t.Errorf("res[1]: closed=%v err=%v, want server-side close", res[1].Closed, res[1].Err)
		}
		if !res[2].Closed || !errors.Is(res[2].Err, ErrConnClosed) {
			t.Errorf("res[2]: closed=%v err=%v, want closed conn", res[2].Closed, res[2].Err)
		}
	})
}
