package httpd

import (
	"strings"
	"testing"
	"testing/quick"

	"sdrad/internal/mem"
)

// parserFixture builds a parser environment over plain simulated memory.
func parserFixture(t testing.TB, raw string) (*parserEnv, *mem.CPU) {
	t.Helper()
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	buf, err := as.MapAnon(16*1024, mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Write(buf, []byte(raw))
	poolBase, err := as.MapAnon(16*1024, mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &parserEnv{
		c:    cpu,
		buf:  buf,
		blen: len(raw),
		pool: NewPool(poolBase, 16*1024),
	}, cpu
}

func TestParseRequestLineBasics(t *testing.T) {
	cases := []struct {
		raw     string
		method  Method
		path    string
		keep    bool
		wantErr bool
	}{
		{"GET /a/b HTTP/1.1\r\n\r\n", MethodGET, "/a/b", true, false},
		{"GET / HTTP/1.0\r\n\r\n", MethodGET, "/", false, false},
		{"HEAD /x HTTP/1.1\r\n\r\n", MethodHEAD, "/x", true, false},
		{"POST /p HTTP/1.1\r\n\r\n", MethodPOST, "/p", true, false},
		{"BREW /pot HTTP/1.1\r\n\r\n", 0, "", false, true},
		{"GET /x HTTP/2.0\r\n\r\n", 0, "", false, true},
		{"GET noslash HTTP/1.1\r\n\r\n", 0, "", false, true},
		{"GET /x\r\n\r\n", 0, "", false, true},
		{"no-crlf-anywhere", 0, "", false, true},
	}
	for _, tc := range cases {
		env, _ := parserFixture(t, tc.raw)
		var req Request
		_, err := parseRequestLine(env, &req)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: expected error", tc.raw)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.raw, err)
			continue
		}
		if req.Method != tc.method || req.Path != tc.path || req.KeepAlive != tc.keep {
			t.Errorf("%q: got %+v", tc.raw, req)
		}
	}
}

func TestParseHeadersSemantics(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nHost: example\r\nX-Client-Cert: abc|def\r\nConnection: close\r\n\r\n"
	env, _ := parserFixture(t, raw)
	var req Request
	off, err := parseRequestLine(env, &req)
	if err != nil {
		t.Fatal(err)
	}
	if err := parseHeaders(env, &req, off); err != nil {
		t.Fatal(err)
	}
	if req.Headers != 3 {
		t.Errorf("headers = %d", req.Headers)
	}
	if req.KeepAlive {
		t.Error("Connection: close ignored")
	}
	if req.ClientCert != "abc|def" {
		t.Errorf("client cert = %q", req.ClientCert)
	}
}

func TestParseHeadersErrors(t *testing.T) {
	for _, raw := range []string{
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
		"GET / HTTP/1.1\r\nUnterminated: yes",
	} {
		env, _ := parserFixture(t, raw)
		var req Request
		off, err := parseRequestLine(env, &req)
		if err != nil {
			t.Fatalf("%q: request line: %v", raw, err)
		}
		if err := parseHeaders(env, &req, off); err == nil {
			t.Errorf("%q: header error not detected", raw)
		}
	}
}

func TestTooManyHeaders(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < 120; i++ {
		b.WriteString("X-H: v\r\n")
	}
	b.WriteString("\r\n")
	env, _ := parserFixture(t, b.String())
	var req Request
	off, _ := parseRequestLine(env, &req)
	if err := parseHeaders(env, &req, off); err == nil {
		t.Error("header flood accepted")
	}
}

func TestComplexURINormalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a/../b", "/b"},
		{"/a/b/../c", "/a/c"},
		{"//a", "/a"},
		{"/./a", "/a"},
		{"/a/./b", "/a/b"},
		{"/a/b/../../c/d", "/c/d"},
		{"/a//b/./c/..", "/a/b"},
	}
	for _, tc := range cases {
		env, _ := parserFixture(t, "GET "+tc.in+" HTTP/1.1\r\n\r\n")
		var req Request
		if _, err := parseRequestLine(env, &req); err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if req.Path != tc.want {
			t.Errorf("%q -> %q, want %q", tc.in, req.Path, tc.want)
		}
	}
}

func TestIsComplexURI(t *testing.T) {
	for uri, want := range map[string]bool{
		"/plain/path": false,
		"/a/../b":     true,
		"//double":    true,
		"/dot/./x":    true,
		"/":           false,
		"/trailing/.": true,
	} {
		if got := isComplexURI([]byte(uri)); got != want {
			t.Errorf("isComplexURI(%q) = %v", uri, got)
		}
	}
}

// Property: normalization of benign URIs (no leading ".." escapes) never
// faults and always yields an absolute path.
func TestQuickNormalizeBenignURIs(t *testing.T) {
	segChars := []byte("abcXYZ019-_")
	prop := func(segsRaw []uint8, dots []bool) bool {
		// Build a URI whose ".." count never exceeds its depth.
		var sb strings.Builder
		depth := 0
		di := 0
		for _, s := range segsRaw {
			if di < len(dots) && dots[di] && depth > 0 {
				sb.WriteString("/..")
				depth--
			} else {
				sb.WriteByte('/')
				sb.WriteByte(segChars[int(s)%len(segChars)])
				depth++
			}
			di++
			if sb.Len() > 500 {
				break
			}
		}
		if sb.Len() == 0 {
			sb.WriteByte('/')
		}
		uri := sb.String()
		env, _ := parserFixture(t, "GET "+uri+" HTTP/1.1\r\n\r\n")
		var req Request
		if _, err := parseRequestLine(env, &req); err != nil {
			return false
		}
		return strings.HasPrefix(req.Path, "/")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPoolResetZeroes(t *testing.T) {
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, _ := as.MapAnon(4096, mem.ProtRW, 0)
	pool := NewPool(base, 4096)
	a, err := pool.Alloc(cpu, 100)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Memset(a, 0xEE, 100)
	pool.Reset(cpu)
	b, err := pool.Alloc(cpu, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("pool did not recycle: %#x vs %#x", uint64(a), uint64(b))
	}
	for i := 0; i < 100; i++ {
		if cpu.ReadU8(b+mem.Addr(i)) != 0 {
			t.Fatal("stale bytes after reset")
		}
	}
	// Exhaustion.
	if _, err := pool.Alloc(cpu, 8192); err == nil {
		t.Error("oversized pool alloc accepted")
	}
}

func TestHelperFunctions(t *testing.T) {
	if !asciiEqualFold("Connection", "cOnNeCtIoN") || asciiEqualFold("a", "ab") ||
		asciiEqualFold("x", "y") {
		t.Error("asciiEqualFold broken")
	}
	if string(trimSpaces([]byte("  x \t"))) != "x" || len(trimSpaces([]byte("   "))) != 0 {
		t.Error("trimSpaces broken")
	}
	if indexByte([]byte("abc"), 'b') != 1 || indexByte([]byte("abc"), 'z') != -1 {
		t.Error("indexByte broken")
	}
	parts := splitSpaces([]byte("a  b c "))
	if len(parts) != 3 || string(parts[2]) != "c" {
		t.Errorf("splitSpaces = %q", parts)
	}
}
