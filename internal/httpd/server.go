package httpd

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sdrad/internal/core"
	"sdrad/internal/cryptolib"
	"sdrad/internal/galloc"
	"sdrad/internal/mem"
	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/sched"
	"sdrad/internal/stack"
	"sdrad/internal/telemetry"
	"sdrad/internal/tlsf"
)

// Variant selects the build under test (Figure 5 of the paper).
type Variant int

// Build variants.
const (
	// VariantVanilla is the unmodified baseline.
	VariantVanilla Variant = iota + 1
	// VariantTLSF swaps the allocator only.
	VariantTLSF
	// VariantSDRaD runs the HTTP parser in an accessible persistent
	// nested domain with per-request pools in a data domain.
	VariantSDRaD
)

func (v Variant) String() string {
	switch v {
	case VariantVanilla:
		return "vanilla"
	case VariantTLSF:
		return "tlsf"
	case VariantSDRaD:
		return "sdrad"
	default:
		return "unknown"
	}
}

// Domain indices used by the hardened worker.
const (
	parserUDI = core.UDI(1) // the sandboxed HTTP parser
	poolUDI   = core.UDI(8) // data domain holding request pools
)

// Config sizes the server.
type Config struct {
	// Variant selects the build (default VariantVanilla).
	Variant Variant
	// Workers is the number of worker processes (default 1).
	Workers int
	// Files maps URL paths to synthesized static-content sizes.
	Files map[string]int
	// ConnBufSize is the request-buffer size (default 8 KiB).
	ConnBufSize int
	// PoolSize is the per-request pool size (default 16 KiB).
	PoolSize uint64
	// MaxConns sizes the worker heap for concurrent connections
	// (default 128).
	MaxConns int
	// MaxBatch caps how many pipelined requests of one connection the
	// hardened worker handles inside a single guard scope (default 16);
	// longer pipelines are split client-side by Conn.DoPipeline.
	MaxBatch int
	// Sched, when non-nil, enables the adaptive batch controller
	// (internal/sched) on the hardened worker: pipelined batches are
	// chunked to the controller's live bound (grown under load, shrunk
	// while the rewind window is hot) instead of the fixed MaxBatch.
	// Nil keeps the legacy fixed-MaxBatch guard scopes, bit for bit.
	Sched *sched.Config
	// VerifyClientCerts enables X.509 client-certificate checking of the
	// X-Client-Cert request header — the paper's §V-C integration, where
	// NGINX is compiled against the isolated OpenSSL verification API.
	// In the SDRaD variant the (vulnerable) verifier runs in its own
	// nested domain; in the baselines it runs unprotected.
	VerifyClientCerts bool
	// Seed fixes process randomness.
	Seed int64
	// Telemetry optionally attaches a recorder shared by all worker
	// processes; each worker's monitor and address space feed it.
	Telemetry *telemetry.Recorder
	// Policy optionally attaches a resilience-policy engine, shared by
	// all workers of the master (a UDI names a software component — the
	// parser — so quarantining it covers every worker's instance).
	// While the parser domain is quarantined the worker answers 503
	// with a Retry-After header instead of re-creating the domain; a
	// shedding parser closes its connections.
	Policy *policy.Engine
}

func (c *Config) setDefaults() {
	if c.Variant == 0 {
		c.Variant = VariantVanilla
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Files == nil {
		c.Files = map[string]int{"/index.html": 1024}
	}
	if c.ConnBufSize == 0 {
		c.ConnBufSize = 8 * 1024
	}
	if c.PoolSize == 0 {
		c.PoolSize = 16 * 1024
	}
	if c.MaxConns == 0 {
		c.MaxConns = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Server errors.
var (
	ErrWorkerDown = errors.New("httpd: worker process terminated")
	ErrConnClosed = errors.New("httpd: connection closed")
	ErrTooLarge   = errors.New("httpd: request exceeds connection buffer")
)

// Master supervises the worker processes, mirroring the NGINX master: it
// can restart a crashed worker, losing that worker's connections.
type Master struct {
	cfg      Config
	workers  []*Worker
	restarts atomic.Int64

	// route enables load-aware connection placement; rr is the legacy
	// round-robin cursor, place the scorer's tie-break cursor.
	route bool
	rr    atomic.Int64
	place atomic.Int64
}

// NewMaster builds the master and starts its workers.
func NewMaster(cfg Config) (*Master, error) {
	cfg.setDefaults()
	if cfg.Sched != nil && cfg.Variant == VariantSDRaD {
		schedCfg := *cfg.Sched
		if schedCfg.OnFloorPinned == nil && cfg.Policy != nil {
			// A controller pinned at the AIMD floor by a hot rewind window
			// is sustained pressure on the parser domain: feed it to the
			// policy engine as a backoff signal.
			eng := cfg.Policy
			schedCfg.OnFloorPinned = func(int64) { eng.OnPressure(int(parserUDI)) }
		}
		cfg.Sched = &schedCfg
	}
	m := &Master{cfg: cfg}
	if cfg.Sched != nil && cfg.Variant == VariantSDRaD {
		m.route = cfg.Sched.Route && cfg.Workers > 1
	}
	for i := 0; i < cfg.Workers; i++ {
		w, err := newWorker(cfg, i)
		if err != nil {
			return nil, err
		}
		m.workers = append(m.workers, w)
	}
	return m, nil
}

// PlaceWorker picks the worker index for a newly accepted connection.
// Without Config.Sched.Route this is the legacy round-robin cursor, bit
// for bit; with routing on, a placement scorer weighs each worker's
// queue depth, EWMA per-request service latency, and rewind-window heat,
// steering new connections away from backlogged or rewind-hot workers.
// On an idle cluster the scorer's tie-break reproduces round-robin.
func (m *Master) PlaceWorker() int {
	if !m.route {
		return int(m.rr.Add(1)-1) % len(m.workers)
	}
	loads := make([]sched.WorkerLoad, len(m.workers))
	for i, w := range m.workers {
		loads[i].Queue = len(w.ch)
		if w.ctrl != nil {
			loads[i].EWMAItemNs, loads[i].WindowRewinds = w.ctrl.Load()
		}
	}
	return sched.PlacementPick(loads, int(m.place.Add(1)-1))
}

// Worker returns worker i.
func (m *Master) Worker(i int) *Worker { return m.workers[i] }

// Workers returns the worker count.
func (m *Master) Workers() int { return len(m.workers) }

// RestartWorker replaces a dead worker process with a fresh one,
// returning the restart duration (the paper's worker-restart latency
// reference point). Existing connections to the old worker are lost.
func (m *Master) RestartWorker(i int) (time.Duration, error) {
	start := time.Now()
	old := m.workers[i]
	old.Stop()
	w, err := newWorker(m.cfg, i)
	if err != nil {
		return 0, err
	}
	m.workers[i] = w
	m.restarts.Add(1)
	return time.Since(start), nil
}

// Restarts reports how many workers were restarted.
func (m *Master) Restarts() int64 { return m.restarts.Load() }

// Stop terminates all workers.
func (m *Master) Stop() {
	for _, w := range m.workers {
		w.Stop()
	}
}

// Worker is one single-threaded worker process (NGINX workers are
// event-loop processes; the simulated thread is its event loop).
type Worker struct {
	idx int
	cfg Config
	p   *proc.Process
	lib *core.Library // hardened build only

	ch       chan *event
	alloc    connAllocator
	files    map[string]fileEntry
	rewinds  atomic.Int64
	degraded atomic.Int64 // 503s served while the parser was quarantined
	shed     atomic.Int64 // connections closed by load shedding
	handle   *proc.Handle
	// reqs is this worker's native request count; each worker mirrors
	// its own counter into the registry via CounterFunc (callbacks on
	// one name sum), so the request path never touches a counter shared
	// with another worker.
	reqs atomic.Int64

	// ctrl is the adaptive batch controller (nil without Config.Sched).
	ctrl *sched.Controller

	// Parser-domain state (owned by the worker thread).
	domainReady  bool
	parseBuf     mem.Addr
	pool         *Pool
	lastParseErr error // protocol error carried out of the guarded parse

	// Client-certificate verification state (§V-C integration).
	verifier  *cryptolib.Verifier // hardened build: isolated verifier
	certStack *stack.Stack        // baselines: unprotected verifier stack
	certBuf   mem.Addr            // baselines: certificate staging buffer
}

type fileEntry struct {
	addr mem.Addr
	size int
}

type event struct {
	conn *Conn
	req  []byte
	resp chan result
	// reqs/respN carry a pipelined batch: all requests are handled in one
	// guard scope on the hardened build, and respN receives one result per
	// request, in order.
	reqs  [][]byte
	respN chan []result
	// inspect, when non-nil, makes the event a control event: the worker
	// runs the closure on its own thread between requests (chaos-audit
	// hook); conn and req are ignored.
	inspect func(t *proc.Thread) error
}

type result struct {
	data   []byte
	closed bool
	err    error
}

// Conn is a keep-alive client connection pinned to a worker.
type Conn struct {
	id     int
	w      *Worker
	rbuf   mem.Addr
	wbuf   mem.Addr
	wcap   int
	ready  bool
	closed bool
}

var connIDs atomic.Int64

// connAllocator abstracts the per-variant malloc for worker state.
type connAllocator interface {
	Alloc(c *mem.CPU, size uint64) (mem.Addr, error)
	Free(c *mem.CPU, ptr mem.Addr) error
}

type gallocShim struct{ h *galloc.Heap }

func (g gallocShim) Alloc(c *mem.CPU, size uint64) (mem.Addr, error) { return g.h.Alloc(c, size) }
func (g gallocShim) Free(c *mem.CPU, ptr mem.Addr) error             { return g.h.Free(c, ptr) }

type tlsfShim struct{ h *tlsf.Heap }

func (t tlsfShim) Alloc(c *mem.CPU, size uint64) (mem.Addr, error) { return t.h.Alloc(c, size) }
func (t tlsfShim) Free(c *mem.CPU, ptr mem.Addr) error             { return t.h.Free(c, ptr) }

// newWorker provisions and starts one worker process.
func newWorker(cfg Config, idx int) (*Worker, error) {
	// With the scheduler on, the event queue is buffered to MaxBatch so
	// queue depth is visible to the batch controller and the placement
	// scorer; without it the channel stays unbuffered, bit-identical to
	// the legacy rendezvous.
	chCap := 0
	if cfg.Sched != nil && cfg.Variant == VariantSDRaD {
		chCap = cfg.MaxBatch
	}
	w := &Worker{
		idx: idx,
		cfg: cfg,
		p:   proc.NewProcess(fmt.Sprintf("nginx-worker-%d-%s", idx, cfg.Variant.String()), proc.WithSeed(cfg.Seed+int64(idx))),
		ch:  make(chan *event, chCap),
	}
	if cfg.Sched != nil && cfg.Variant == VariantSDRaD {
		w.ctrl = sched.NewController(*cfg.Sched, cfg.MaxBatch)
	}
	if cfg.Variant == VariantSDRaD {
		opts := []core.SetupOption{core.WithRootHeapSize(heapBudget(cfg))}
		if cfg.Telemetry != nil {
			opts = append(opts, core.WithTelemetry(cfg.Telemetry))
		}
		if cfg.Policy != nil {
			opts = append(opts, core.WithPolicy(cfg.Policy))
		}
		lib, err := core.Setup(w.p, opts...)
		if err != nil {
			return nil, err
		}
		w.lib = lib
	} else if cfg.Telemetry != nil {
		w.p.AddressSpace().SetTelemetry(cfg.Telemetry)
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.Registry().CounterFunc("sdrad_http_requests_total",
			"HTTP requests processed across all workers.",
			func() int64 { return w.reqs.Load() })
	}
	if err := w.p.Attach("init", w.provision); err != nil {
		return nil, fmt.Errorf("httpd: provisioning worker %d: %w", idx, err)
	}
	if cfg.Telemetry != nil && w.pool != nil {
		// Request-pool contention gauges, per worker — the parser-pool
		// analog of the memcache shard occupancy instruments.
		reg := cfg.Telemetry.Registry()
		label := strconv.Itoa(idx)
		w.pool.instrument(
			reg.GaugeVec("sdrad_httpd_pool_high_water_bytes",
				"Deepest request-pool fill seen by each worker, in bytes.", "worker").With(label),
			reg.CounterVec("sdrad_httpd_pool_resets_total",
				"Request-pool resets per worker (one per parsed request).", "worker").With(label),
			reg.CounterVec("sdrad_httpd_pool_exhaustions_total",
				"Request-pool allocation failures per worker.", "worker").With(label),
		)
	}
	w.handle = w.p.Spawn("event-loop", w.run)
	return w, nil
}

// heapBudget sizes the worker heap: content plus per-connection buffers
// (a read buffer and a write buffer sized for the largest response).
func heapBudget(cfg Config) uint64 {
	var total uint64 = 4 << 20
	maxFile := 0
	for _, sz := range cfg.Files {
		total += uint64(sz) + 4096
		if sz > maxFile {
			maxFile = sz
		}
	}
	total += uint64(cfg.MaxConns) * (uint64(cfg.ConnBufSize) + uint64(maxFile) + 2048)
	return total
}

// provision maps the worker heap and synthesizes the static content.
func (w *Worker) provision(t *proc.Thread) error {
	c := t.CPU()
	switch w.cfg.Variant {
	case VariantSDRaD:
		// Request pools live in a dedicated data domain (paper §V-B);
		// allocate it before anything else so the memory below a pool is
		// domain metadata, not application data.
		if err := w.lib.InitDomain(t, poolUDI, core.AsData(), core.Accessible(),
			core.HeapSize(w.cfg.PoolSize+64*1024)); err != nil {
			return err
		}
		poolBlock, err := w.lib.Malloc(t, poolUDI, w.cfg.PoolSize)
		if err != nil {
			return err
		}
		w.pool = NewPool(poolBlock, w.cfg.PoolSize)
	case VariantTLSF:
		base, err := w.p.AddressSpace().MapAnon(int(heapBudget(w.cfg)), mem.ProtRW, 0)
		if err != nil {
			return err
		}
		h, err := tlsf.Init(c, base, heapBudget(w.cfg))
		if err != nil {
			return err
		}
		w.alloc = tlsfShim{h: h}
	case VariantVanilla:
		base, err := w.p.AddressSpace().MapAnon(int(heapBudget(w.cfg)), mem.ProtRW, 0)
		if err != nil {
			return err
		}
		h, err := galloc.Init(c, base, heapBudget(w.cfg))
		if err != nil {
			return err
		}
		w.alloc = gallocShim{h: h}
	}
	if w.cfg.Variant != VariantSDRaD {
		// The baseline request pool comes from the worker heap, allocated
		// first so the memory below it is allocator metadata.
		poolBlock, err := w.alloc.Alloc(c, w.cfg.PoolSize)
		if err != nil {
			return err
		}
		w.pool = NewPool(poolBlock, w.cfg.PoolSize)
	}
	if w.cfg.VerifyClientCerts && w.cfg.Variant != VariantSDRaD {
		// The baseline verifier runs on an ordinary stack with its
		// staging buffer in the worker heap — no isolation.
		base, err := w.p.AddressSpace().MapAnon(64*1024, mem.ProtRW, 0)
		if err != nil {
			return err
		}
		w.certStack = stack.New(base, 64*1024, w.p.Rand64())
		buf, err := w.alloc.Alloc(c, maxCertSize)
		if err != nil {
			return err
		}
		w.certBuf = buf
	}
	// Static content, deterministic bytes, in root/key0 memory.
	w.files = make(map[string]fileEntry, len(w.cfg.Files))
	paths := make([]string, 0, len(w.cfg.Files))
	for p := range w.cfg.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		size := w.cfg.Files[path]
		addr, err := w.allocRoot(t, uint64(size)+1)
		if err != nil {
			return err
		}
		pattern := []byte(path + "#")
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = pattern[i%len(pattern)]
		}
		c.Write(addr, buf)
		w.files[path] = fileEntry{addr: addr, size: size}
	}
	return nil
}

// allocRoot allocates from root memory in the way the variant provides.
func (w *Worker) allocRoot(t *proc.Thread, size uint64) (mem.Addr, error) {
	if w.cfg.Variant == VariantSDRaD {
		return w.lib.Malloc(t, core.RootUDI, size)
	}
	return w.alloc.Alloc(t.CPU(), size)
}

// run is the worker's event loop.
func (w *Worker) run(t *proc.Thread) error {
	if w.cfg.Variant == VariantSDRaD {
		// The persistent parser domain, created once; its recovery point
		// is re-established per request by the Guard (the paper saves the
		// first parser entry point as the rewind context).
		if err := w.lib.InitDomain(t, parserUDI, core.Accessible()); err != nil {
			return err
		}
		if err := w.lib.DProtect(t, parserUDI, poolUDI, mem.ProtRW); err != nil {
			return err
		}
		if w.cfg.VerifyClientCerts {
			w.verifier = cryptolib.NewVerifier(w.lib, maxCertSize)
		}
	}
	for {
		select {
		case <-w.p.Done():
			return nil
		case ev := <-w.ch:
			if ev.reqs != nil {
				ev.respN <- w.handleBatch(t, ev)
				continue
			}
			ev.resp <- w.handleEvent(t, ev)
		}
	}
}

// NewConn opens a keep-alive connection to this worker.
func (w *Worker) NewConn() *Conn {
	return &Conn{id: int(connIDs.Add(1)), w: w}
}

// Do sends one HTTP request and returns the raw response.
func (c *Conn) Do(req []byte) (resp []byte, closed bool, err error) {
	ev := &event{conn: c, req: req, resp: make(chan result, 1)}
	select {
	case c.w.ch <- ev:
	case <-c.w.p.Done():
		return nil, true, ErrWorkerDown
	}
	select {
	case r := <-ev.resp:
		return r.data, r.closed, r.err
	case <-c.w.p.Done():
		return nil, true, ErrWorkerDown
	}
}

// PipelineResult is one request's outcome from DoPipeline.
type PipelineResult struct {
	Resp   []byte
	Closed bool
	Err    error
}

// DoPipeline sends reqs back-to-back on the connection and returns one
// result per request, in order. The hardened worker parses up to
// Config.MaxBatch pipelined requests inside a single guard scope; longer
// pipelines are split into MaxBatch-sized chunks client-side. Requests
// behind a server-side close report Closed, as if issued after it.
func (c *Conn) DoPipeline(reqs [][]byte) []PipelineResult {
	w := c.w
	out := make([]PipelineResult, 0, len(reqs))
	down := func() []PipelineResult {
		for len(out) < len(reqs) {
			out = append(out, PipelineResult{Closed: true, Err: ErrWorkerDown})
		}
		return out
	}
	maxB := w.cfg.MaxBatch
	var evs []*event
	for off := 0; off < len(reqs); off += maxB {
		end := off + maxB
		if end > len(reqs) {
			end = len(reqs)
		}
		ev := &event{conn: c, reqs: reqs[off:end], respN: make(chan []result, 1)}
		select {
		case w.ch <- ev:
			evs = append(evs, ev)
		case <-w.p.Done():
			return down()
		}
	}
	for _, ev := range evs {
		select {
		case rs := <-ev.respN:
			for _, r := range rs {
				out = append(out, PipelineResult{Resp: r.data, Closed: r.closed, Err: r.err})
			}
		case <-w.p.Done():
			return down()
		}
	}
	return out
}

// Inspect runs fn on the worker's event-loop thread between requests. The
// chaos engine uses it to run invariant audits and arm fault injectors on
// the serving thread; fn must leave the thread in the root domain.
func (w *Worker) Inspect(fn func(t *proc.Thread) error) error {
	ev := &event{inspect: fn, resp: make(chan result, 1)}
	select {
	case w.ch <- ev:
	case <-w.p.Done():
		return ErrWorkerDown
	}
	select {
	case r := <-ev.resp:
		return r.err
	case <-w.p.Done():
		return ErrWorkerDown
	}
}

// Stop terminates the worker process.
func (w *Worker) Stop() {
	w.p.Shutdown()
	w.p.Wait()
}

// Crashed reports whether the worker process died with a cause.
func (w *Worker) Crashed() (bool, error) {
	if !w.p.Killed() {
		return false, nil
	}
	return w.p.ExitError() != nil, w.p.ExitError()
}

// Rewinds reports recovered parser attacks.
func (w *Worker) Rewinds() int64 { return w.rewinds.Load() }

// SchedSnapshot returns the worker's adaptive-controller state (zero
// value when the scheduler is disabled).
func (w *Worker) SchedSnapshot() sched.Snapshot {
	if w.ctrl == nil {
		return sched.Snapshot{}
	}
	return w.ctrl.Snapshot()
}

// Degraded reports 503 responses served while the parser domain was
// quarantined.
func (w *Worker) Degraded() int64 { return w.degraded.Load() }

// Shed reports connections closed by load shedding.
func (w *Worker) Shed() int64 { return w.shed.Load() }

// MappedBytes is the worker's resident-set-size analog.
func (w *Worker) MappedBytes() int64 {
	return w.p.AddressSpace().Stats().MappedBytes.Load()
}

// Process exposes the worker's simulated process.
func (w *Worker) Process() *proc.Process { return w.p }

// Library exposes the SDRaD library (nil for baselines).
func (w *Worker) Library() *core.Library { return w.lib }

// handleEvent serves one HTTP request.
func (w *Worker) handleEvent(t *proc.Thread, ev *event) result {
	if ev.inspect != nil {
		return result{err: ev.inspect(t)}
	}
	return w.handleRequest(t, ev.conn, ev.req)
}

// handleBatch serves a pipelined batch of requests from one connection.
// The hardened build parses the whole batch inside a single guard scope
// (one context save, one recovery point) with the per-phase Enter/Exit
// transitions per request; a rewind anywhere in the batch discards the
// whole batch and closes the connection. Baselines have no guard cost to
// amortize and run the requests back to back.
func (w *Worker) handleBatch(t *proc.Thread, ev *event) []result {
	results := make([]result, len(ev.reqs))
	if w.cfg.Variant != VariantSDRaD {
		for i, req := range ev.reqs {
			results[i] = w.handleRequest(t, ev.conn, req)
		}
		return results
	}
	if w.ctrl == nil {
		return w.runHardenedBatch(t, ev.conn, ev.reqs, results)
	}
	// Adaptive chunking: each chunk is one guard scope sized to the
	// controller's live bound, so a rewind while the window is hot
	// discards (and a fault closes) less of the pipeline; the bound
	// regrows between chunks under sustained depth.
	for off := 0; off < len(ev.reqs); {
		bound := w.ctrl.Bound()
		end := off + bound
		if end > len(ev.reqs) {
			end = len(ev.reqs)
		}
		t0 := w.ctrl.Now()
		w.runHardenedBatch(t, ev.conn, ev.reqs[off:end], results[off:end])
		w.ctrl.ObserveRound(len(w.ch)+len(ev.reqs)-end, end-off, w.ctrl.Now()-t0)
		off = end
	}
	return results
}

// handleRequest is the sequential per-request flow.
func (w *Worker) handleRequest(t *proc.Thread, conn *Conn, reqBytes []byte) result {
	if conn.closed {
		return result{closed: true, err: ErrConnClosed}
	}
	if len(reqBytes) > w.cfg.ConnBufSize {
		return result{err: ErrTooLarge}
	}
	w.reqs.Add(1)
	// Resilience-policy admission: a quarantined parser is not
	// re-created; the request is answered 503 with Retry-After (or the
	// connection shed) without touching the guard scope.
	if w.cfg.Variant == VariantSDRaD {
		if dec := w.lib.Policy().Admit(int(parserUDI)); !dec.Allowed() {
			return w.respondDegraded(t, conn, dec.State, dec.RetryAfterNs)
		}
	}
	c := t.CPU()
	if !conn.ready {
		if err := w.allocConnBuffers(t, conn); err != nil {
			return result{err: err}
		}
	}
	c.Write(conn.rbuf, reqBytes)

	var req Request
	var perr error
	if w.cfg.Variant == VariantSDRaD {
		res := w.parseHardened(t, conn, len(reqBytes), &req)
		if res != nil {
			return *res
		}
		perr = w.lastParseErr
		w.lastParseErr = nil
	} else {
		env := &parserEnv{c: c, buf: conn.rbuf, blen: len(reqBytes), pool: w.pool}
		hdrOff, err := parseRequestLine(env, &req)
		if err == nil {
			err = parseHeaders(env, &req, hdrOff)
		}
		w.pool.Reset(c)
		perr = err
	}
	status := ""
	if perr == nil && w.cfg.VerifyClientCerts {
		var closed bool
		status, closed = w.checkClientCert(t, conn, &req)
		if closed {
			return result{closed: true}
		}
	}
	return w.respond(t, conn, &req, perr, status)
}

// maxCertSize bounds the client certificates the server accepts.
const maxCertSize = 4096

// checkClientCert verifies the X-Client-Cert header (if present) through
// the X.509 checker carrying the CVE-2022-3786 analog. In the hardened
// build a malicious certificate is absorbed by the verifier domain and
// only the offending connection closes; in the baselines the stack-canary
// failure kills the worker process.
func (w *Worker) checkClientCert(t *proc.Thread, conn *Conn, req *Request) (status string, closeConn bool) {
	if req.ClientCert == "" {
		return "", false
	}
	cert := DecodeCertHeader(req.ClientCert)
	if len(cert) > maxCertSize {
		return "HTTP/1.1 403 Forbidden\r\n", false
	}
	if w.cfg.Variant == VariantSDRaD {
		res, err := w.verifier.Verify(t, cert)
		if err != nil {
			var abn *core.AbnormalExit
			if errors.As(err, &abn) {
				// The certificate attacked the verifier; the domain is
				// discarded and re-created on the next verification.
				w.rewinds.Add(1)
				conn.closed = true
				w.freeConnBuffers(t, conn)
				return "", true
			}
			return "HTTP/1.1 403 Forbidden\r\n", false
		}
		if !res.Valid {
			return "HTTP/1.1 403 Forbidden\r\n", false
		}
		return "", false
	}
	// Baseline: the vulnerable verifier runs unprotected. A malicious
	// certificate smashes the canary and the resulting SIGABRT kills the
	// worker (the panic propagates to the process supervisor).
	c := t.CPU()
	c.Write(w.certBuf, cert)
	res, err := cryptolib.VerifyCertificate(c, w.certStack, w.certBuf, len(cert))
	if err != nil || !res.Valid {
		return "HTTP/1.1 403 Forbidden\r\n", false
	}
	return "", false
}

// EncodeCertHeader flattens a certificate blob into a header-safe value.
func EncodeCertHeader(cert []byte) string {
	return strings.ReplaceAll(string(cert), "\n", "|")
}

// DecodeCertHeader reverses EncodeCertHeader.
func DecodeCertHeader(v string) []byte {
	return []byte(strings.ReplaceAll(v, "|", "\n"))
}

// parseHardened runs the two parser phases inside the persistent parser
// domain on a copy of the request bytes (paper Figure: domain transitions
// occur repeatedly in one request; one recovery point covers all phases).
// It returns a non-nil result when the connection must be closed due to a
// rewind.
func (w *Worker) parseHardened(t *proc.Thread, conn *Conn, rlen int, req *Request) *result {
	lib := w.lib
	gerr := lib.Guard(t, parserUDI, func() error {
		if !w.domainReady {
			if err := lib.DProtect(t, parserUDI, poolUDI, mem.ProtRW); err != nil {
				return err
			}
			buf, err := lib.Malloc(t, parserUDI, uint64(w.cfg.ConnBufSize))
			if err != nil {
				return err
			}
			w.parseBuf = buf
			w.domainReady = true
		}
		// Copy the request bytes into the parser domain (the paper copies
		// the linked header/URI data so the parser never touches root
		// memory directly).
		lib.Copy(t, w.parseBuf, conn.rbuf, rlen)
		env := &parserEnv{c: t.CPU(), buf: w.parseBuf, blen: rlen, pool: w.pool}

		// Phase 1: request line (with the vulnerable URI normalizer).
		if err := lib.Enter(t, parserUDI); err != nil {
			return err
		}
		hdrOff, perr := parseRequestLine(env, req)
		if err := lib.Exit(t); err != nil {
			return err
		}
		// Phase 2: headers.
		if perr == nil {
			if err := lib.Enter(t, parserUDI); err != nil {
				return err
			}
			perr = parseHeaders(env, req, hdrOff)
			if err := lib.Exit(t); err != nil {
				return err
			}
		}
		w.pool.Reset(t.CPU())
		w.lastParseErr = perr
		return nil
	}, core.Accessible())
	if gerr == nil {
		return nil
	}
	var abn *core.AbnormalExit
	if errors.As(gerr, &abn) {
		// Rewind: the parser domain is gone (recreated lazily); close
		// only this connection. The pool data domain survives; reset it.
		w.domainReady = false
		w.pool.Reset(t.CPU())
		w.rewinds.Add(1)
		if w.ctrl != nil {
			w.ctrl.NoteRewind()
		}
		conn.closed = true
		w.freeConnBuffers(t, conn)
		return &result{closed: true}
	}
	var qe *core.QuarantineError
	if errors.As(gerr, &qe) {
		// The shared policy engine escalated between the admission
		// pre-check and the lazy re-init inside the guard (a sibling
		// worker's rewinds): same degraded answer, connection stays open.
		w.domainReady = false
		r := w.respondDegraded(t, conn, quarantineState(qe), qe.RetryAfterNs)
		return &r
	}
	return &result{err: gerr}
}

// quarantineState maps a monitor-side denial back onto the policy ladder
// state that drives the degraded response.
func quarantineState(qe *core.QuarantineError) policy.State {
	if qe.State == policy.StateShedding.String() {
		return policy.StateShedding
	}
	return policy.StateQuarantined
}

// runHardenedBatch parses every request of a pipelined batch inside ONE
// guard scope: the per-request phase transitions (Enter/Exit around the
// request line and the headers) still happen, but the context save and
// the recovery point are established once for the batch. An abnormal
// exit anywhere rewinds once, discards the whole in-flight batch, and
// closes the connection — the batch analog of the paper's single-event
// rewind semantics.
func (w *Worker) runHardenedBatch(t *proc.Thread, conn *Conn, reqs [][]byte, results []result) []result {
	lib := w.lib
	c := t.CPU()
	n := len(reqs)
	done := make([]bool, n)
	perrs := make([]error, n)
	parsed := make([]Request, n)
	live := 0
	for i, req := range reqs {
		if conn.closed {
			done[i] = true
			results[i] = result{closed: true, err: ErrConnClosed}
			continue
		}
		if len(req) > w.cfg.ConnBufSize {
			done[i] = true
			results[i] = result{err: ErrTooLarge}
			continue
		}
		w.reqs.Add(1)
		if !conn.ready {
			if err := w.allocConnBuffers(t, conn); err != nil {
				done[i] = true
				results[i] = result{err: err}
				continue
			}
		}
		live++
	}
	if live == 0 {
		return results
	}
	// Resilience-policy admission for the whole batch (one guard scope,
	// one decision): every live request gets the degraded response.
	if dec := lib.Policy().Admit(int(parserUDI)); !dec.Allowed() {
		for i := range reqs {
			if done[i] {
				continue
			}
			if conn.closed {
				results[i] = result{closed: true, err: ErrConnClosed}
				continue
			}
			results[i] = w.respondDegraded(t, conn, dec.State, dec.RetryAfterNs)
		}
		return results
	}
	gerr := lib.Guard(t, parserUDI, func() error {
		if !w.domainReady {
			if err := lib.DProtect(t, parserUDI, poolUDI, mem.ProtRW); err != nil {
				return err
			}
			buf, err := lib.Malloc(t, parserUDI, uint64(w.cfg.ConnBufSize))
			if err != nil {
				return err
			}
			w.parseBuf = buf
			w.domainReady = true
		}
		for i, req := range reqs {
			if done[i] {
				continue
			}
			// Stage through the connection read buffer (a pipelined
			// connection reuses it per request) and copy into the domain.
			c.Write(conn.rbuf, req)
			lib.Copy(t, w.parseBuf, conn.rbuf, len(req))
			env := &parserEnv{c: c, buf: w.parseBuf, blen: len(req), pool: w.pool}
			if err := lib.Enter(t, parserUDI); err != nil {
				return err
			}
			hdrOff, perr := parseRequestLine(env, &parsed[i])
			if err := lib.Exit(t); err != nil {
				return err
			}
			if perr == nil {
				if err := lib.Enter(t, parserUDI); err != nil {
					return err
				}
				perr = parseHeaders(env, &parsed[i], hdrOff)
				if err := lib.Exit(t); err != nil {
					return err
				}
			}
			w.pool.Reset(c)
			perrs[i] = perr
		}
		return nil
	}, core.Accessible())
	if gerr != nil {
		var abn *core.AbnormalExit
		if errors.As(gerr, &abn) {
			// Rewind: one discard for the whole batch, the connection with
			// a request in flight closes.
			w.domainReady = false
			w.pool.Reset(c)
			w.rewinds.Add(1)
			if w.ctrl != nil {
				w.ctrl.NoteRewind()
			}
			if !conn.closed {
				conn.closed = true
				w.freeConnBuffers(t, conn)
			}
			for i := range reqs {
				if !done[i] {
					results[i] = result{closed: true}
				}
			}
			return results
		}
		var qe *core.QuarantineError
		if errors.As(gerr, &qe) {
			// Re-init denied mid-flight by the shared engine: answer the
			// whole batch degraded, exactly one decision, no discard.
			w.domainReady = false
			st := quarantineState(qe)
			for i := range reqs {
				if done[i] {
					continue
				}
				if conn.closed {
					results[i] = result{closed: true, err: ErrConnClosed}
					continue
				}
				results[i] = w.respondDegraded(t, conn, st, qe.RetryAfterNs)
			}
			return results
		}
		for i := range reqs {
			if !done[i] {
				results[i] = result{err: gerr}
			}
		}
		return results
	}
	// Respond in batch order. A response that closes the connection
	// (Connection: close, or a certificate-verifier rewind) closes it for
	// the requests behind it, exactly as in the sequential flow.
	for i := range reqs {
		if done[i] {
			continue
		}
		if conn.closed {
			results[i] = result{closed: true, err: ErrConnClosed}
			continue
		}
		status := ""
		if perrs[i] == nil && w.cfg.VerifyClientCerts {
			var closed bool
			status, closed = w.checkClientCert(t, conn, &parsed[i])
			if closed {
				results[i] = result{closed: true}
				continue
			}
		}
		results[i] = w.respond(t, conn, &parsed[i], perrs[i], status)
	}
	return results
}

// respondDegraded is the worker's resilience-policy response: while the
// parser domain is quarantined or backing off the worker answers 503
// Service Unavailable with a Retry-After header covering the remaining
// hold-off (NGINX's standard overload answer), keeping the connection
// open; once the policy escalates to shedding the connection is closed
// outright. The response is synthesized host-side — the degraded path
// deliberately touches no simulated domain memory.
func (w *Worker) respondDegraded(t *proc.Thread, conn *Conn, state policy.State, retryAfterNs int64) result {
	if state == policy.StateShedding {
		if !conn.closed {
			conn.closed = true
			w.freeConnBuffers(t, conn)
			w.shed.Add(1)
		}
		return result{closed: true}
	}
	w.degraded.Add(1)
	secs := (retryAfterNs + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	resp := fmt.Sprintf("HTTP/1.1 503 Service Unavailable\r\n"+
		"Server: sdrad-httpd/1.23\r\nRetry-After: %d\r\nContent-Length: 0\r\n"+
		"Connection: keep-alive\r\n\r\n", secs)
	return result{data: []byte(resp)}
}

// respond builds the HTTP response in the connection write buffer.
// statusOverride, when non-empty, replaces the normal status line (403
// from certificate checking).
func (w *Worker) respond(t *proc.Thread, conn *Conn, req *Request, perr error, statusOverride string) result {
	c := t.CPU()
	var status string
	var body fileEntry
	var haveBody bool
	switch {
	case statusOverride != "":
		status = statusOverride
	case perr != nil:
		status = "HTTP/1.1 400 Bad Request\r\n"
		req.KeepAlive = false
	default:
		if fe, ok := w.files[req.Path]; ok {
			status = "HTTP/1.1 200 OK\r\n"
			body = fe
			haveBody = req.Method != MethodHEAD
		} else {
			status = "HTTP/1.1 404 Not Found\r\n"
		}
	}
	conLine := "Connection: keep-alive\r\n"
	if !req.KeepAlive {
		conLine = "Connection: close\r\n"
	}
	header := fmt.Sprintf("%sServer: sdrad-httpd/1.23\r\nContent-Length: %d\r\n%s\r\n",
		status, body.size, conLine)
	if len(header)+body.size > conn.wcap {
		return result{err: ErrTooLarge}
	}
	c.Write(conn.wbuf, []byte(header))
	wlen := len(header)
	if haveBody && body.size > 0 {
		// The file content is copied from the content store to the
		// connection buffer — the per-size cost that shapes Figure 5.
		c.Copy(conn.wbuf+mem.Addr(wlen), body.addr, body.size)
		wlen += body.size
	}
	resp := c.ReadBytes(conn.wbuf, wlen)
	if !req.KeepAlive {
		conn.closed = true
		w.freeConnBuffers(t, conn)
	}
	return result{data: resp, closed: !req.KeepAlive}
}

// freeConnBuffers releases a closed connection's buffers back to the
// worker heap.
func (w *Worker) freeConnBuffers(t *proc.Thread, conn *Conn) {
	if !conn.ready {
		return
	}
	if w.cfg.Variant == VariantSDRaD {
		_ = w.lib.Free(t, core.RootUDI, conn.rbuf)
		_ = w.lib.Free(t, core.RootUDI, conn.wbuf)
	} else {
		_ = w.alloc.Free(t.CPU(), conn.rbuf)
		_ = w.alloc.Free(t.CPU(), conn.wbuf)
	}
	conn.ready = false
}

// allocConnBuffers provisions connection buffers sized for the largest
// configured response.
func (w *Worker) allocConnBuffers(t *proc.Thread, conn *Conn) error {
	maxFile := 0
	for _, fe := range w.files {
		if fe.size > maxFile {
			maxFile = fe.size
		}
	}
	conn.wcap = maxFile + 1024
	rb, err := w.allocRoot(t, uint64(w.cfg.ConnBufSize))
	if err != nil {
		return err
	}
	wb, err := w.allocRoot(t, uint64(conn.wcap))
	if err != nil {
		return err
	}
	conn.rbuf, conn.wbuf = rb, wb
	conn.ready = true
	return nil
}

// FormatRequest builds a simple HTTP/1.1 GET request.
func FormatRequest(path string, keepAlive bool) []byte {
	conn := "keep-alive"
	if !keepAlive {
		conn = "close"
	}
	return []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: bench\r\nConnection: %s\r\n\r\n", path, conn))
}
