package httpd

import (
	"bufio"
	"bytes"
	"net"
)

// ServeListener bridges real TCP (or net.Pipe) connections to the
// simulated workers. Placement is PlaceWorker's: legacy round-robin, or
// the load-aware scorer when Config.Sched.Route is on. It returns when
// the listener closes. Intended for the runnable examples and the cmd
// binary; benchmarks use Conn.Do directly.
func (m *Master) ServeListener(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		w := m.Worker(m.PlaceWorker())
		go serveNetConn(w, nc)
	}
}

// serveNetConn pumps HTTP requests from one network connection through a
// worker.
func serveNetConn(w *Worker, nc net.Conn) {
	defer func() { _ = nc.Close() }()
	conn := w.NewConn()
	r := bufio.NewReader(nc)
	for {
		req, err := readHTTPRequest(r)
		if err != nil {
			return
		}
		resp, closed, err := conn.Do(req)
		if err != nil {
			return
		}
		if _, err := nc.Write(resp); err != nil {
			return
		}
		if closed {
			return
		}
	}
}

// readHTTPRequest reads one request head (through the blank line). Bodies
// are not supported by the simulated server's GET/HEAD surface.
func readHTTPRequest(r *bufio.Reader) ([]byte, error) {
	var req []byte
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return nil, err
		}
		req = append(req, line...)
		if bytes.Equal(bytes.TrimRight(line, "\r\n"), nil) {
			return req, nil
		}
	}
}
