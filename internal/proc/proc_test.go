package proc

import (
	"errors"
	"sync/atomic"
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/sig"
	"sdrad/internal/stack"
)

func TestAttachRunsBody(t *testing.T) {
	p := NewProcess("test")
	ran := false
	err := p.Attach("main", func(th *Thread) error {
		ran = true
		if th.ID() == 0 || th.Name() != "main" || th.Process() != p {
			t.Error("thread identity wrong")
		}
		if th.CPU().PKRU() != mem.PKRUInit {
			t.Error("thread PKRU not initialized")
		}
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("attach = %v, ran = %v", err, ran)
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	p := NewProcess("test")
	want := errors.New("boom")
	if err := p.Attach("main", func(*Thread) error { return want }); !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
	if p.Killed() {
		t.Error("body error should not kill the process")
	}
}

func TestUnhandledFaultKillsProcess(t *testing.T) {
	p := NewProcess("victim")
	err := p.Attach("main", func(th *Thread) error {
		th.CPU().WriteU8(0xBAD0000, 1) // unmapped
		return nil
	})
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want CrashError", err)
	}
	if crash.Info.Signal != sig.SIGSEGV || crash.Info.Code != int(mem.CodeMapErr) {
		t.Errorf("info = %+v", crash.Info)
	}
	if !p.Killed() {
		t.Error("process should be dead")
	}
	if p.ExitError() == nil {
		t.Error("exit error not recorded")
	}
	select {
	case <-p.Done():
	default:
		t.Error("Done channel not closed")
	}
	if crash.Error() == "" {
		t.Error("empty crash message")
	}
}

func TestStackSmashDeliversSIGABRT(t *testing.T) {
	p := NewProcess("victim")
	err := p.Attach("main", func(th *Thread) error {
		as := p.AddressSpace()
		base, _ := as.MapAnon(4096, mem.ProtRW, 0)
		s := stack.New(base, 4096, p.Rand64())
		f, _ := s.PushFrame(th.CPU(), 32)
		th.CPU().Memset(f.Locals(), 0x61, 40) // smash: locals + canary
		return f.Pop(th.CPU())
	})
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v", err)
	}
	if crash.Info.Signal != sig.SIGABRT {
		t.Errorf("signal = %v, want SIGABRT", crash.Info.Signal)
	}
}

func TestForeignPanicPropagates(t *testing.T) {
	p := NewProcess("test")
	defer func() {
		if recover() == nil {
			t.Error("foreign panic was swallowed")
		}
	}()
	_ = p.Attach("main", func(*Thread) error { panic("programming error") })
}

func TestSpawnAndJoin(t *testing.T) {
	p := NewProcess("test")
	var count atomic.Int64
	var handles []*Handle
	for i := 0; i < 8; i++ {
		handles = append(handles, p.Spawn("w", func(th *Thread) error {
			count.Add(1)
			return nil
		}))
	}
	for _, h := range handles {
		if err := h.Join(); err != nil {
			t.Fatal(err)
		}
	}
	if count.Load() != 8 {
		t.Errorf("count = %d", count.Load())
	}
	p.Wait()
}

func TestThreadIDsUnique(t *testing.T) {
	p := NewProcess("test")
	seen := make(chan int, 16)
	var hs []*Handle
	for i := 0; i < 16; i++ {
		hs = append(hs, p.Spawn("w", func(th *Thread) error {
			seen <- th.ID()
			return nil
		}))
	}
	for _, h := range hs {
		_ = h.Join()
	}
	close(seen)
	ids := make(map[int]bool)
	for id := range seen {
		if ids[id] {
			t.Fatalf("duplicate thread id %d", id)
		}
		ids[id] = true
	}
}

func TestThreadConstructors(t *testing.T) {
	p := NewProcess("test")
	p.RegisterThreadConstructor(func(th *Thread) error {
		th.Local = "constructed-" + th.Name()
		return nil
	})
	err := p.Attach("main", func(th *Thread) error {
		if th.Local != "constructed-main" {
			t.Errorf("Local = %v", th.Local)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Spawn("worker", func(th *Thread) error {
		if th.Local != "constructed-worker" {
			t.Errorf("Local = %v", th.Local)
		}
		return nil
	})
	if err := h.Join(); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorErrorAborts(t *testing.T) {
	p := NewProcess("test")
	want := errors.New("ctor failed")
	p.RegisterThreadConstructor(func(*Thread) error { return want })
	ran := false
	err := p.Attach("main", func(*Thread) error { ran = true; return nil })
	if !errors.Is(err, want) || ran {
		t.Errorf("err = %v, ran = %v", err, ran)
	}
}

func TestSpawnAfterTermination(t *testing.T) {
	p := NewProcess("test")
	p.Terminate(errors.New("dead"))
	h := p.Spawn("late", func(*Thread) error { return nil })
	if err := h.Join(); !errors.Is(err, ErrTerminated) {
		t.Errorf("err = %v", err)
	}
	if err := p.Attach("late", func(*Thread) error { return nil }); !errors.Is(err, ErrTerminated) {
		t.Errorf("attach err = %v", err)
	}
}

func TestTerminateIdempotent(t *testing.T) {
	p := NewProcess("test")
	first := errors.New("first")
	p.Terminate(first)
	p.Terminate(errors.New("second"))
	if !errors.Is(p.ExitError(), first) {
		t.Error("first cause did not win")
	}
}

func TestShutdownClean(t *testing.T) {
	p := NewProcess("test")
	p.Shutdown()
	if !p.Killed() || p.ExitError() != nil {
		t.Error("shutdown should kill with nil error")
	}
}

func TestSignalMaskBlockedFaultStillFatal(t *testing.T) {
	p := NewProcess("test")
	p.Signals().Register(sig.SIGSEGV, func(*sig.Info, any) sig.Action {
		return sig.ActionHandled // lies; supervisor terminates anyway
	})
	err := p.Attach("main", func(th *Thread) error {
		th.SetSigMask(sig.Mask(0).Block(sig.SIGSEGV))
		th.CPU().ReadU8(0xBAD0000)
		return nil
	})
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v", err)
	}
}

func TestRand64Differs(t *testing.T) {
	p := NewProcess("test", WithSeed(99))
	a, b := p.Rand64(), p.Rand64()
	if a == b {
		t.Error("consecutive Rand64 equal")
	}
	q := NewProcess("test2", WithSeed(99))
	if q.Rand64() != a {
		t.Error("seeded sequence not reproducible")
	}
}

func TestWithMemOptions(t *testing.T) {
	p := NewProcess("test", WithMemOptions(mem.WithGuardGap(0)))
	as := p.AddressSpace()
	a, _ := as.MapAnon(mem.PageSize, mem.ProtRW, 0)
	b, _ := as.MapAnon(mem.PageSize, mem.ProtRW, 0)
	if b != a+mem.PageSize {
		t.Errorf("guard gap option not applied: %#x vs %#x", uint64(a), uint64(b))
	}
}
