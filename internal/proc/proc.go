// Package proc simulates the process and thread abstractions the SDRaD
// library lives in: a process owns one simulated address space and signal
// table; threads are goroutines that each carry a CPU context (with its
// own PKRU register), a signal mask, and a thread-local slot for the
// SDRaD per-thread control data.
//
// The package also implements the "kernel half" of fault handling: a
// thread body that panics with a simulated trap (*mem.Fault or
// *stack.SmashError) has the trap converted to a signal and delivered
// through the process signal table. If no handler recovers — e.g. the
// fault happened in the SDRaD root domain — the process terminates, which
// is precisely the baseline behaviour the paper improves upon.
package proc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"sdrad/internal/mem"
	"sdrad/internal/sig"
	"sdrad/internal/stack"
)

// Errors reported by the process layer.
var (
	ErrTerminated = errors.New("proc: process terminated")
)

// CrashError records an unrecovered fault that terminated the process.
type CrashError struct {
	// Thread is the name of the faulting thread.
	Thread string
	// Info is the delivered signal information.
	Info sig.Info
}

// Error implements error.
func (e *CrashError) Error() string {
	return fmt.Sprintf("proc: thread %q killed by %s", e.Thread, e.Info.String())
}

// Process is a simulated OS process.
type Process struct {
	name string
	as   *mem.AddressSpace
	sigs *sig.Table

	mu           sync.Mutex
	rng          *rand.Rand
	nextTID      int
	constructors []func(*Thread) error
	destructors  []func(*Thread)

	killed   atomic.Bool
	exitOnce sync.Once
	exitErr  error
	done     chan struct{}
	wg       sync.WaitGroup
}

// Option configures a Process.
type Option func(*cfg)

type cfg struct {
	seed    int64
	memOpts []mem.Option
}

// WithSeed fixes the process random seed (canaries, ASLR analog).
func WithSeed(seed int64) Option { return func(c *cfg) { c.seed = seed } }

// WithMemOptions forwards options to the process address space.
func WithMemOptions(opts ...mem.Option) Option {
	return func(c *cfg) { c.memOpts = append(c.memOpts, opts...) }
}

// NewProcess creates a process with a fresh address space and default
// signal dispositions.
func NewProcess(name string, opts ...Option) *Process {
	c := cfg{seed: 1}
	for _, o := range opts {
		o(&c)
	}
	return &Process{
		name: name,
		as:   mem.NewAddressSpace(c.memOpts...),
		sigs: sig.NewTable(),
		rng:  rand.New(rand.NewSource(c.seed)),
		done: make(chan struct{}),
	}
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// AddressSpace returns the process address space.
func (p *Process) AddressSpace() *mem.AddressSpace { return p.as }

// Signals returns the process signal table.
func (p *Process) Signals() *sig.Table { return p.sigs }

// Rand64 returns process-seeded randomness (stack canaries etc.).
func (p *Process) Rand64() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Uint64()
}

// RegisterThreadConstructor registers fn to run on every thread before its
// start routine, in registration order. SDRaD uses this to set up its
// per-thread control data, mirroring the library's thread constructor
// (paper §IV-B, "Initialization").
func (p *Process) RegisterThreadConstructor(fn func(*Thread) error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.constructors = append(p.constructors, fn)
}

// RegisterThreadDestructor registers fn to run when a thread finishes
// (normally or after a crash), in registration order. SDRaD uses this to
// release the thread's execution domains — and their protection keys —
// mirroring pthread TLS destructors.
func (p *Process) RegisterThreadDestructor(fn func(*Thread)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.destructors = append(p.destructors, fn)
}

// runDestructors invokes registered thread destructors.
func (p *Process) runDestructors(t *Thread) {
	p.mu.Lock()
	dtors := make([]func(*Thread), len(p.destructors))
	copy(dtors, p.destructors)
	p.mu.Unlock()
	for _, fn := range dtors {
		fn(t)
	}
}

// Killed reports whether the process has terminated.
func (p *Process) Killed() bool { return p.killed.Load() }

// Done returns a channel closed when the process terminates.
func (p *Process) Done() <-chan struct{} { return p.done }

// ExitError returns the recorded termination cause, nil while running or
// after a clean Shutdown.
func (p *Process) ExitError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exitErr
}

// Terminate kills the process, recording cause. Idempotent; the first
// cause wins. Running thread goroutines are not preempted (goroutines
// cannot be killed) but observe Killed()/Done().
func (p *Process) Terminate(cause error) {
	p.exitOnce.Do(func() {
		p.mu.Lock()
		p.exitErr = cause
		p.mu.Unlock()
		p.killed.Store(true)
		close(p.done)
	})
}

// Shutdown terminates the process without an error cause (clean exit).
func (p *Process) Shutdown() { p.Terminate(nil) }

// Wait blocks until all spawned threads have finished.
func (p *Process) Wait() { p.wg.Wait() }

// Thread is a simulated thread: a goroutine with a CPU context, a signal
// mask, and the SDRaD thread-local slot. A Thread must only be used from
// its own goroutine.
type Thread struct {
	id   int
	name string
	proc *Process
	cpu  *mem.CPU
	mask sig.Mask

	// Local is the thread-local storage slot used by the SDRaD library
	// for its per-thread control data.
	Local any
}

// ID returns the thread id (unique within the process).
func (t *Thread) ID() int { return t.id }

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// CPU returns the thread's CPU context.
func (t *Thread) CPU() *mem.CPU { return t.cpu }

// SigMask returns the thread's current signal mask.
func (t *Thread) SigMask() sig.Mask { return t.mask }

// SetSigMask replaces the thread's signal mask (sigprocmask). The mask is
// part of the execution context SDRaD saves and restores across rewinds.
func (t *Thread) SetSigMask(m sig.Mask) { t.mask = m }

// newThread allocates a thread structure.
func (p *Process) newThread(name string) *Thread {
	p.mu.Lock()
	p.nextTID++
	id := p.nextTID
	p.mu.Unlock()
	return &Thread{id: id, name: name, proc: p, cpu: p.as.NewCPU()}
}

// runConstructors invokes registered thread constructors.
func (p *Process) runConstructors(t *Thread) error {
	p.mu.Lock()
	ctors := make([]func(*Thread) error, len(p.constructors))
	copy(ctors, p.constructors)
	p.mu.Unlock()
	for _, fn := range ctors {
		if err := fn(t); err != nil {
			return fmt.Errorf("thread constructor: %w", err)
		}
	}
	return nil
}

// Attach turns the calling goroutine into a simulated thread of p and runs
// body under the fault supervisor, returning the body error or the
// CrashError for an unrecovered trap. This is how a program's main thread
// enters the simulation.
func (p *Process) Attach(name string, body func(*Thread) error) error {
	if p.Killed() {
		return ErrTerminated
	}
	t := p.newThread(name)
	if err := p.runConstructors(t); err != nil {
		return err
	}
	defer p.runDestructors(t)
	return p.supervise(t, body)
}

// Handle represents a spawned thread; Join waits for it.
type Handle struct {
	t    *Thread
	done chan struct{}
	err  error
}

// Join blocks until the thread finishes and returns its error.
func (h *Handle) Join() error {
	<-h.done
	return h.err
}

// Thread returns the underlying thread (for identification; do not call
// CPU methods from another goroutine).
func (h *Handle) Thread() *Thread { return h.t }

// Spawn starts body on a new simulated thread (new goroutine) under the
// fault supervisor, mirroring pthread_create.
func (p *Process) Spawn(name string, body func(*Thread) error) *Handle {
	t := p.newThread(name)
	h := &Handle{t: t, done: make(chan struct{})}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(h.done)
		if p.Killed() {
			h.err = ErrTerminated
			return
		}
		if err := p.runConstructors(t); err != nil {
			h.err = err
			return
		}
		defer p.runDestructors(t)
		h.err = p.supervise(t, body)
	}()
	return h
}

// supervise runs body, converting escaped simulated traps into signal
// delivery and process termination. Traps that SDRaD recovers via its
// rewind mechanism never reach this point — they are recovered inside the
// library's guard scopes. A trap arriving here is, by construction, an
// unhandled fault (root-domain fault, or no handler installed) and kills
// the process, exactly like the default SIGSEGV disposition.
func (p *Process) supervise(t *Thread, body func(*Thread) error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		info, ok := trapToSignal(r)
		if !ok {
			panic(r) // programming error, not a simulated trap
		}
		// The process signal table may still have a handler that wants to
		// observe the fault (e.g. to log it); whatever it returns, a trap
		// that propagated this far cannot be recovered, so the process
		// dies. This matches Linux: returning from a SIGSEGV handler
		// without fixing the cause re-faults forever.
		p.sigs.Deliver(&info, t.mask, t)
		if rec := p.as.Telemetry(); rec != nil {
			rec.RecordCrash(t.id)
		}
		crash := &CrashError{Thread: t.name, Info: info}
		p.Terminate(crash)
		err = crash
	}()
	return body(t)
}

// trapToSignal maps simulated trap panic values onto signals.
func trapToSignal(r any) (sig.Info, bool) {
	switch v := r.(type) {
	case *mem.Fault:
		return sig.Info{
			Signal: sig.SIGSEGV,
			Code:   int(v.Code),
			Addr:   uint64(v.Addr),
			PKey:   v.PKey,
			Cause:  v,
		}, true
	case *stack.SmashError:
		// __stack_chk_fail aborts the process: SIGABRT.
		return sig.Info{
			Signal: sig.SIGABRT,
			Addr:   uint64(v.CanaryAddr),
			Cause:  v,
		}, true
	default:
		return sig.Info{}, false
	}
}
