// Package stack simulates per-domain machine stacks with stack-protector
// canaries.
//
// SDRaD gives every execution domain a disjoint stack so that code running
// in a nested domain cannot affect the stacks of other domains (paper
// §IV-C, "Stack Management"). The paper's second error-detection oracle —
// besides PKU faults — is the GCC stack protector: a canary word placed
// between a frame's local buffers and its control data, verified on
// function return; SDRaD replaces glibc's __stack_chk_fail with its own
// handler so a smashed canary triggers an abnormal domain exit instead of
// process termination.
//
// In the simulation, domain code that wants stack-allocated buffers pushes
// a Frame, obtains the address of its locals, and pops the frame when the
// (simulated) function returns. Pop verifies the canary and panics with a
// *SmashError on mismatch, which the SDRaD monitor treats exactly like a
// detected run-time attack.
package stack

import (
	"errors"
	"fmt"

	"sdrad/internal/mem"
)

// Errors returned by stack operations.
var (
	ErrStackOverflow = errors.New("stack: push would overflow the stack region")
	ErrFrameOrder    = errors.New("stack: frames must be popped in LIFO order")
)

// SmashError is the panic value raised when a canary check fails — the
// simulation's __stack_chk_fail. It implements error.
type SmashError struct {
	// CanaryAddr is the address of the clobbered canary word.
	CanaryAddr mem.Addr
	// Got is the corrupted value found in place of the canary.
	Got uint64
}

// Error implements error.
func (e *SmashError) Error() string {
	return fmt.Sprintf("stack: smashing detected at 0x%x (canary is %#x)", uint64(e.CanaryAddr), e.Got)
}

// AsSmash extracts a *SmashError from a recovered panic value.
func AsSmash(recovered any) *SmashError {
	s, _ := recovered.(*SmashError)
	return s
}

// Stack is a downward-growing simulated stack inside one contiguous
// region of domain memory. It is used by a single thread at a time.
type Stack struct {
	base   mem.Addr // lowest valid address
	size   uint64
	sp     mem.Addr // current stack pointer
	canary uint64
	depth  int // live frames
}

// New returns a stack over [base, base+size) with the given canary value.
// The stack pointer starts at the top. The canary is per process in real
// systems; internal/proc supplies a random one.
func New(base mem.Addr, size uint64, canary uint64) *Stack {
	return &Stack{base: base, size: size, sp: base + mem.Addr(size), canary: canary}
}

// Base returns the lowest address of the stack region.
func (s *Stack) Base() mem.Addr { return s.base }

// Size returns the stack region size.
func (s *Stack) Size() uint64 { return s.size }

// SP returns the current stack pointer.
func (s *Stack) SP() mem.Addr { return s.sp }

// Depth returns the number of live frames.
func (s *Stack) Depth() int { return s.depth }

// Reset discards all frames and returns the stack pointer to the top.
// SDRaD uses this when rewinding: the failing domain's stack content is
// discarded wholesale.
func (s *Stack) Reset() {
	s.sp = s.base + mem.Addr(s.size)
	s.depth = 0
}

// Remaining returns the bytes left between the stack pointer and the base.
func (s *Stack) Remaining() uint64 { return uint64(s.sp - s.base) }

// Frame is one pushed stack frame: a canary word above a block of locals.
//
//	higher addresses
//	  ... caller frames ...
//	  canary (8 bytes)        <- overwritten by locals overflowing upward
//	  locals (localsSize)     <- Locals() points here
//	lower addresses            <- SP after push
type Frame struct {
	s          *Stack
	locals     mem.Addr
	localsSize int
	canaryAddr mem.Addr
	savedSP    mem.Addr
	popped     bool
}

// PushFrame allocates a frame with localsSize bytes of locals (rounded up
// to 8) protected by a canary, writing the canary and zeroing the locals.
func (s *Stack) PushFrame(c *mem.CPU, localsSize int) (*Frame, error) {
	if localsSize < 0 {
		localsSize = 0
	}
	sz := (uint64(localsSize) + 7) &^ 7
	need := sz + 8
	if uint64(s.sp-s.base) < need {
		return nil, ErrStackOverflow
	}
	f := &Frame{s: s, localsSize: int(sz), savedSP: s.sp}
	s.sp -= 8
	f.canaryAddr = s.sp
	c.WriteU64(f.canaryAddr, s.canary)
	s.sp -= mem.Addr(sz)
	f.locals = s.sp
	if sz > 0 {
		c.Memset(f.locals, 0, int(sz))
	}
	s.depth++
	return f, nil
}

// Locals returns the lowest address of the frame's local storage.
func (f *Frame) Locals() mem.Addr { return f.locals }

// LocalsSize returns the (aligned) size of the local storage.
func (f *Frame) LocalsSize() int { return f.localsSize }

// CanaryIntact reports whether the canary still holds its value, without
// popping the frame.
func (f *Frame) CanaryIntact(c *mem.CPU) bool {
	return c.ReadU64(f.canaryAddr) == f.s.canary
}

// MustVerify checks the canary and panics with *SmashError if it was
// clobbered, without releasing the frame. The SDRaD monitor uses it on
// domain exit to validate the return record regardless of frame order.
func (f *Frame) MustVerify(c *mem.CPU) {
	if got := c.ReadU64(f.canaryAddr); got != f.s.canary {
		panic(&SmashError{CanaryAddr: f.canaryAddr, Got: got})
	}
}

// Pop verifies the canary and releases the frame. A clobbered canary
// raises *SmashError (the __stack_chk_fail analog). Frames must pop in
// LIFO order.
func (f *Frame) Pop(c *mem.CPU) error {
	if f.popped {
		return ErrFrameOrder
	}
	if f.s.sp != f.locals {
		return ErrFrameOrder
	}
	got := c.ReadU64(f.canaryAddr)
	f.popped = true
	f.s.sp = f.savedSP
	f.s.depth--
	if got != f.s.canary {
		panic(&SmashError{CanaryAddr: f.canaryAddr, Got: got})
	}
	return nil
}
