package stack

import (
	"errors"
	"testing"

	"sdrad/internal/mem"
)

const testCanary = 0xDEAD10CCFEEDFACE

func newStack(t testing.TB, size uint64) (*Stack, *mem.CPU) {
	t.Helper()
	as := mem.NewAddressSpace()
	cpu := as.NewCPU()
	base, err := as.MapAnon(int(size), mem.ProtRW, 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(base, size, testCanary), cpu
}

func TestPushPop(t *testing.T) {
	s, cpu := newStack(t, 4096)
	top := s.SP()
	f, err := s.PushFrame(cpu, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 {
		t.Errorf("depth = %d", s.Depth())
	}
	if f.LocalsSize() != 104 { // rounded to 8
		t.Errorf("locals size = %d", f.LocalsSize())
	}
	// Locals are zeroed and writable.
	if cpu.ReadU8(f.Locals()) != 0 {
		t.Error("locals not zeroed")
	}
	cpu.Memset(f.Locals(), 0x42, f.LocalsSize())
	if !f.CanaryIntact(cpu) {
		t.Error("canary clobbered by in-bounds write")
	}
	if err := f.Pop(cpu); err != nil {
		t.Fatal(err)
	}
	if s.SP() != top || s.Depth() != 0 {
		t.Error("pop did not restore SP/depth")
	}
}

func TestCanarySmashDetected(t *testing.T) {
	s, cpu := newStack(t, 4096)
	f, err := s.PushFrame(cpu, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the locals by one word: clobbers the canary above them.
	cpu.Memset(f.Locals(), 0x41, f.LocalsSize()+8)
	if f.CanaryIntact(cpu) {
		t.Fatal("canary should be clobbered")
	}
	var smash *SmashError
	func() {
		defer func() {
			smash = AsSmash(recover())
		}()
		_ = f.Pop(cpu)
	}()
	if smash == nil {
		t.Fatal("Pop did not raise SmashError")
	}
	if smash.Got != 0x4141414141414141 {
		t.Errorf("got = %#x", smash.Got)
	}
	if smash.Error() == "" {
		t.Error("empty error text")
	}
	// SP restored even on smash (the handler rewinds anyway).
	if s.Depth() != 0 {
		t.Error("depth not restored")
	}
}

func TestNestedFramesLIFO(t *testing.T) {
	s, cpu := newStack(t, 4096)
	f1, _ := s.PushFrame(cpu, 32)
	f2, _ := s.PushFrame(cpu, 32)
	if err := f1.Pop(cpu); !errors.Is(err, ErrFrameOrder) {
		t.Errorf("out-of-order pop err = %v", err)
	}
	if err := f2.Pop(cpu); err != nil {
		t.Fatal(err)
	}
	if err := f2.Pop(cpu); !errors.Is(err, ErrFrameOrder) {
		t.Errorf("double pop err = %v", err)
	}
	if err := f1.Pop(cpu); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowRefused(t *testing.T) {
	s, cpu := newStack(t, 4096)
	if _, err := s.PushFrame(cpu, 8192); !errors.Is(err, ErrStackOverflow) {
		t.Errorf("oversized push err = %v", err)
	}
	// Fill the stack with frames until it refuses.
	n := 0
	for {
		_, err := s.PushFrame(cpu, 256)
		if err != nil {
			if !errors.Is(err, ErrStackOverflow) {
				t.Fatalf("unexpected err %v", err)
			}
			break
		}
		n++
	}
	if n == 0 || n > 16 {
		t.Errorf("pushed %d frames into 4 KiB", n)
	}
}

func TestReset(t *testing.T) {
	s, cpu := newStack(t, 4096)
	top := s.SP()
	for i := 0; i < 3; i++ {
		if _, err := s.PushFrame(cpu, 64); err != nil {
			t.Fatal(err)
		}
	}
	s.Reset()
	if s.SP() != top || s.Depth() != 0 {
		t.Error("reset did not restore state")
	}
	if s.Remaining() != s.Size() {
		t.Error("remaining != size after reset")
	}
}

func TestZeroAndNegativeLocals(t *testing.T) {
	s, cpu := newStack(t, 4096)
	f, err := s.PushFrame(cpu, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.LocalsSize() != 0 {
		t.Errorf("size = %d", f.LocalsSize())
	}
	if err := f.Pop(cpu); err != nil {
		t.Fatal(err)
	}
	f, err = s.PushFrame(cpu, -5)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Pop(cpu); err != nil {
		t.Fatal(err)
	}
}

func TestAsSmashForeign(t *testing.T) {
	if AsSmash("boom") != nil {
		t.Error("AsSmash should ignore foreign panics")
	}
}
