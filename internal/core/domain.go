package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
	"sdrad/internal/stack"
	"sdrad/internal/tlsf"
)

// Kind distinguishes execution domains (stack + heap, may run code) from
// data domains (shareable heap pages, cannot execute).
type Kind int

// Domain kinds.
const (
	ExecDomain Kind = iota + 1
	DataDomain
)

func (k Kind) String() string {
	switch k {
	case ExecDomain:
		return "exec"
	case DataDomain:
		return "data"
	default:
		return "unknown"
	}
}

// Domain is one isolated domain: a protection key, a disjoint stack
// (execution domains), and a disjoint TLSF subheap.
type Domain struct {
	udi  UDI
	kind Kind
	key  int
	lib  *Library

	parent   *Domain
	children []*Domain

	// Init-time configuration.
	accessible           bool
	handlerAtGrandparent bool
	stackSize            uint64
	heapSize             uint64

	// Stack (execution domains only).
	stk       *stack.Stack
	stackBase mem.Addr

	// Heap: region mapped at init, TLSF control built lazily on the
	// first allocation ("Upon first call to memory management within a
	// domain, its heap is initialized", §IV-C). heapKeep is set by
	// discardHeap when the region stays mapped for pooling (exec
	// domains with stack reuse): releaseDomain then parks it with the
	// pooled stack instead of losing it.
	heapBase mem.Addr
	heap     *tlsf.Heap
	heapKeep bool

	// Recovery context (execution domains): valid while a Guard scope is
	// active for this domain on its owning thread.
	contextValid bool
	scopeID      uint64
	savedMask    sig.Mask

	initialized bool
	entered     bool
	ownerTID    int // thread that initialized an exec domain

	// pkruCache holds the last derived PKRU policy for executing this
	// domain, packed as generation<<32|policy (see Library.computePKRU).
	pkruCache atomic.Uint64

	// grants are the data-domain access rights configured via DProtect.
	grants map[UDI]mem.Prot

	// heapMu serializes heap operations for shared domains (the root
	// domain and data domains are reachable from several threads; nested
	// execution-domain heaps are single-threaded by construction).
	heapMu sync.Mutex
}

// lockHeap/unlockHeap serialize allocator operations on shared domains.
func (d *Domain) lockHeap()   { d.heapMu.Lock() }
func (d *Domain) unlockHeap() { d.heapMu.Unlock() }

// UDI returns the domain's index.
func (d *Domain) UDI() UDI { return d.udi }

// Kind returns the domain kind.
func (d *Domain) Kind() Kind { return d.kind }

// Key returns the domain's protection key.
func (d *Domain) Key() int { return d.key }

// Accessible reports whether the parent may access this domain's memory.
func (d *Domain) Accessible() bool { return d.accessible }

func (d *Domain) isRoot() bool { return d.udi == RootUDI }

// InitOption configures domain initialization (the C API's option flags).
type InitOption func(*initCfg)

type initCfg struct {
	data                 bool
	accessible           bool
	handlerAtGrandparent bool
	stackSize            uint64
	heapSize             uint64
}

// AsData creates a data domain: shareable pages that hold data only.
func AsData() InitOption { return func(c *initCfg) { c.data = true } }

// Accessible makes the new domain's memory accessible to its parent
// (otherwise data must cross through a shared data domain, as with the
// paper's OpenSSL wrapper).
func Accessible() InitOption { return func(c *initCfg) { c.accessible = true } }

// HandlerAtGrandparent directs abnormal exits of this domain to the
// recovery point of its parent's initialization (Figure 2: the deeply
// nested persistent domain rewinds to the root-level recovery point).
func HandlerAtGrandparent() InitOption {
	return func(c *initCfg) { c.handlerAtGrandparent = true }
}

// StackSize overrides the default stack size for this domain.
func StackSize(n uint64) InitOption { return func(c *initCfg) { c.stackSize = n } }

// HeapSize overrides the default heap size for this domain.
func HeapSize(n uint64) InitOption { return func(c *initCfg) { c.heapSize = n } }

// DestroyOption selects what happens to the domain heap on Destroy.
type DestroyOption int

// Destroy options (Table I: sdrad_destroy's options argument).
const (
	// NoHeapMerge discards the domain's heap memory.
	NoHeapMerge DestroyOption = iota
	// HeapMerge merges the domain's subheap into the parent's heap: live
	// allocations survive and become the parent's (only valid for
	// domains accessible to their parent).
	HeapMerge
)

// InitDomain creates and initializes a domain (Table I ①, creation half).
// For execution domains the recovery context is established by the Guard
// scope; InitDomain alone leaves the domain without a valid context.
//
// The paper's semantics enforced here:
//   - an execution domain index is per thread and initializes once
//     (re-initialization requires Deinit or Destroy first);
//   - data domains are process-global and shareable across threads;
//   - the new domain's parent is the domain current at creation time;
//   - handler-at-grandparent requires a non-root parent.
func (l *Library) InitDomain(t *proc.Thread, udi UDI, opts ...InitOption) error {
	cfg := initCfg{
		stackSize: l.defaultStackSize,
		heapSize:  l.defaultHeapSize,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if udi == RootUDI {
		return ErrRootOperation
	}
	// Resilience-policy admission: a nested execution domain that was
	// quarantined (or is in a backoff hold-off) after repeated rewinds
	// may not be re-created until the policy readmits it. Data domains
	// are exempt — they never fault on their own and hold shared state
	// the degraded paths still need.
	if l.policy != nil && !cfg.data {
		if dec := l.policy.Admit(int(udi)); !dec.Allowed() {
			return &QuarantineError{
				UDI:          udi,
				State:        dec.State.String(),
				RetryAfterNs: dec.RetryAfterNs,
			}
		}
	}
	ts := l.state(t)
	l.monitorEnter(t)
	defer l.monitorExit(t)

	if _, ok := ts.domains[udi]; ok {
		return ErrAlreadyInit
	}
	if dd := l.lookupDataDomain(udi); dd != nil {
		return fmt.Errorf("%w: %d is a data domain", ErrUDIInUse, udi)
	}
	if cfg.handlerAtGrandparent && ts.current.isRoot() {
		return ErrNoGrandparent
	}

	d := &Domain{
		udi:                  udi,
		lib:                  l,
		parent:               ts.current,
		accessible:           cfg.accessible,
		handlerAtGrandparent: cfg.handlerAtGrandparent,
		stackSize:            cfg.stackSize,
		heapSize:             cfg.heapSize,
		ownerTID:             t.ID(),
	}
	if cfg.data {
		d.kind = DataDomain
	} else {
		d.kind = ExecDomain
	}

	if err := l.provisionDomain(t, d); err != nil {
		return err
	}
	// Publication of the new child is synchronized: the parent may be the
	// shared root domain, whose child list other threads read while
	// deriving their policies.
	l.mu.Lock()
	d.initialized = true
	ts.current.children = append(ts.current.children, d)
	if d.kind == DataDomain {
		l.dataDomains[udi] = d
	}
	l.bumpPolicyGen()
	l.mu.Unlock()
	if d.kind != DataDomain {
		ts.domains[udi] = d
	}
	l.stats.Inits.Add(1)
	if rec := l.tel.Load(); rec != nil {
		rec.RecordDomainInit(t.ID(), int(udi), int(d.kind), d.heapSize)
	}
	return nil
}

// provisionDomain allocates the protection key, stack, and heap region.
func (l *Library) provisionDomain(t *proc.Thread, d *Domain) error {
	as := l.p.AddressSpace()

	// Stack first: a pooled stack brings its key along (§IV-C stack
	// reuse keeps both the mapping and its key), and — when the pooled
	// entry carries a discarded heap region large enough — the heap
	// mapping too, so post-rewind re-initialization skips PkeyAlloc and
	// both MapAnon calls (the TLSF control rebuilds lazily on first
	// Malloc).
	if d.kind == ExecDomain {
		if ps := l.takePooledStack(d.stackSize, d.heapSize); ps != nil {
			d.stk = ps.stk
			d.stackBase = ps.stk.Base()
			d.key = ps.key
			if ps.heapBase != 0 && ps.heapSize >= d.heapSize {
				d.heapBase = ps.heapBase
				d.heapSize = ps.heapSize
				return nil
			}
			if ps.heapBase != 0 {
				// Pooled heap too small for this domain: release the
				// region rather than orphaning it.
				_ = as.Unmap(ps.heapBase, int(ps.heapSize))
			}
		} else {
			key, err := as.PkeyAlloc()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrTooManyDomains, err)
			}
			d.key = key
			base, err := as.MapAnon(int(d.stackSize), mem.ProtRW, d.key)
			if err != nil {
				return fmt.Errorf("sdrad: mapping stack: %w", err)
			}
			d.stackBase = base
			d.stk = stack.New(base, d.stackSize, l.p.Rand64())
		}
	} else {
		key, err := as.PkeyAlloc()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrTooManyDomains, err)
		}
		d.key = key
	}

	base, err := as.MapAnon(int(d.heapSize), mem.ProtRW, d.key)
	if err != nil {
		return fmt.Errorf("sdrad: mapping heap: %w", err)
	}
	d.heapBase = base
	return nil
}

// ensureHeap lazily builds the TLSF control structure inside the domain's
// heap region. The monitor must have access to the domain key when this
// runs (callers raise it).
func (d *Domain) ensureHeap(c *mem.CPU) error {
	if d.heap != nil {
		return nil
	}
	h, err := tlsf.Init(c, d.heapBase, d.heapSize)
	if err != nil {
		return fmt.Errorf("sdrad: initializing domain heap: %w", err)
	}
	d.heap = h
	return nil
}

// Deinit discards the recovery context of a child domain but leaves its
// memory intact (Table I ⑧): the domain can be re-guarded later. In the
// Go adaptation, Guard invalidates the context automatically when it
// returns, so Deinit mainly exists for API fidelity and for invalidating
// a context explicitly mid-guard.
func (l *Library) Deinit(t *proc.Thread, udi UDI) error {
	ts := l.state(t)
	l.monitorEnter(t)
	defer l.monitorExit(t)
	d, ok := ts.domains[udi]
	if !ok {
		return ErrUnknownDomain
	}
	if d.isRoot() {
		return ErrRootOperation
	}
	if d.kind != ExecDomain {
		return ErrBadDomainKind
	}
	d.contextValid = false
	return nil
}

// Destroy deletes a child domain (Table I ⑦). The domain must not be
// executing. With HeapMerge the domain's subheap — which must be
// accessible to the parent — is merged into the parent domain's heap and
// its pages are retagged with the parent's key; otherwise the heap memory
// is discarded. Stacks are pooled for reuse.
func (l *Library) Destroy(t *proc.Thread, udi UDI, opt DestroyOption) error {
	ts := l.state(t)
	l.monitorEnter(t)
	defer l.monitorExit(t)

	d := ts.domains[udi]
	if d == nil {
		// Data domains are global.
		d = l.lookupDataDomain(udi)
	}
	if d == nil {
		return ErrUnknownDomain
	}
	if d.isRoot() {
		return ErrRootOperation
	}
	if ts.current == d {
		return ErrDomainBusy
	}

	if opt == HeapMerge {
		if !d.accessible || d.parent == nil {
			return ErrNotChild
		}
		if err := l.mergeHeapIntoParent(t, d); err != nil {
			return err
		}
		if rec := l.tel.Load(); rec != nil {
			rec.RecordHeapMerge(t.ID(), int(udi), d.heapSize)
		}
	} else {
		l.discardHeap(t, d)
	}
	l.releaseDomain(t, d)
	l.stats.Destroys.Add(1)
	return nil
}

// mergeHeapIntoParent retags the child's heap pages with the parent's key
// and adopts the subheap into the parent's TLSF instance.
func (l *Library) mergeHeapIntoParent(t *proc.Thread, d *Domain) error {
	parent := d.parent
	as := l.p.AddressSpace()
	c := t.CPU()
	// The monitor needs both keys while restitching.
	raised := mem.PKRUAllow(c.PKRU(), d.key, true)
	raised = mem.PKRUAllow(raised, parent.key, true)
	l.wrpkru(t, raised)
	if parent.isRoot() {
		if err := l.ensureRootHeap(c); err != nil {
			return err
		}
	} else if err := parent.ensureHeap(c); err != nil {
		return err
	}
	// The parent heap may be shared (root, data domains): serialize the
	// adoption against concurrent allocator traffic.
	parent.lockHeap()
	defer parent.unlockHeap()
	if d.heap == nil {
		// Heap never used: hand the whole region to the parent as a pool.
		if err := as.PkeyMprotect(d.heapBase, int(d.heapSize), mem.ProtRW, parent.key); err != nil {
			return err
		}
		return parent.heap.AddRegion(c, d.heapBase, d.heapSize)
	}
	if err := as.PkeyMprotect(d.heapBase, int(d.heapSize), mem.ProtRW, parent.key); err != nil {
		return err
	}
	return parent.heap.Merge(c, d.heap)
}

// discardHeap scrubs (when configured) and releases a domain's heap
// region. For execution domains with stack reuse enabled the region is
// kept mapped with its key and rides along with the pooled stack
// (releaseDomain parks it): the discard semantics are identical — the
// contents are dead, scrubbed under the same policy as unmapped heaps —
// but the next domain init on this thread skips PkeyAlloc + MapAnon +
// a fresh TLSF region build.
func (l *Library) discardHeap(t *proc.Thread, d *Domain) {
	as := l.p.AddressSpace()
	if l.scrubOnDiscard {
		zero := make([]byte, mem.PageSize)
		for off := uint64(0); off < d.heapSize; off += mem.PageSize {
			_ = as.KernelWrite(d.heapBase+mem.Addr(off), zero)
		}
	}
	if d.kind == ExecDomain && l.reuseStacks && d.stk != nil {
		d.heapKeep = true
	} else {
		_ = as.Unmap(d.heapBase, int(d.heapSize))
	}
	d.heap = nil
	if rec := l.tel.Load(); rec != nil {
		rec.RecordDiscard(t.ID(), int(d.udi), d.heapSize)
	}
}

// releaseDomain removes the domain from the tables and recycles or
// releases its stack and key.
func (l *Library) releaseDomain(t *proc.Thread, d *Domain) {
	ts := l.state(t)
	as := l.p.AddressSpace()
	l.mu.Lock()
	d.initialized = false
	d.contextValid = false
	if d.parent != nil {
		kids := d.parent.children
		for i, c := range kids {
			if c == d {
				d.parent.children = append(kids[:i], kids[i+1:]...)
				break
			}
		}
	}
	if d.kind == DataDomain {
		delete(l.dataDomains, d.udi)
	}
	l.bumpPolicyGen()
	l.mu.Unlock()
	if d.kind == DataDomain {
		_ = as.PkeyFree(d.key)
	} else {
		delete(ts.domains, d.udi)
		if l.scrubOnDiscard && d.stk != nil {
			zero := make([]byte, mem.PageSize)
			for off := uint64(0); off < d.stackSize; off += mem.PageSize {
				_ = as.KernelWrite(d.stackBase+mem.Addr(off), zero)
			}
		}
		if d.stk != nil {
			ps := &pooledStack{stk: d.stk, key: d.key, size: d.stackSize}
			if d.heapKeep {
				ps.heapBase, ps.heapSize = d.heapBase, d.heapSize
			}
			if !l.returnPooledStack(ps) {
				_ = as.Unmap(d.stackBase, int(d.stackSize))
				if d.heapKeep {
					_ = as.Unmap(d.heapBase, int(d.heapSize))
				}
				_ = as.PkeyFree(d.key)
			}
		}
	}
	// Parent policy may have referenced this child's key.
	ts.refreshPKRU(t, l)
}

// refreshPKRU re-derives and installs the PKRU policy for the thread's
// current domain, keeping the monitor key raised if it currently is.
func (ts *threadState) refreshPKRU(t *proc.Thread, l *Library) {
	pkru := l.computePKRU(ts, ts.current)
	if ad, _ := mem.PKRURights(t.CPU().PKRU(), l.monitorKey); !ad {
		pkru = mem.PKRUAllow(pkru, l.monitorKey, true)
	}
	l.wrpkru(t, pkru)
}

// discardDomain implements the abnormal-exit discard: the domain's heap
// is thrown away unconditionally (never merged — "subheaps are never
// merged back after abnormal exits, as the data must be considered
// corrupted"), its stack is reset and pooled, and it is deleted.
func (l *Library) discardDomain(t *proc.Thread, d *Domain) {
	l.discardHeap(t, d)
	l.releaseDomain(t, d)
	l.stats.Destroys.Add(1)
}
