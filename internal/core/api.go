package core

import (
	"errors"
	"fmt"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/stack"
	"sdrad/internal/tlsf"
)

// Malloc allocates size bytes in domain udi (Table I ②). Allowed targets
// are the current domain itself, accessible child domains of the current
// domain, and data domains the current domain can write (its own
// accessible children or domains granted via DProtect) — "note that this
// is only allowed for child domains of the current domain that are
// accessible; for inaccessible domains, a shared data domain needs to be
// used to exchange data" (§IV-A).
func (l *Library) Malloc(t *proc.Thread, udi UDI, size uint64) (mem.Addr, error) {
	ts := l.state(t)
	l.monitorEnter(t)
	defer l.monitorExit(t)

	d, err := l.resolveAllocTarget(ts, udi)
	if err != nil {
		return 0, err
	}
	if hook := l.allocFault; hook != nil {
		if err := hook(udi, size); err != nil {
			return 0, fmt.Errorf("%w: domain %d: %v", ErrHeapExhausted, udi, err)
		}
	}
	c := t.CPU()
	// The monitor raises the target key for the duration of the
	// allocator operation.
	l.wrpkru(t, mem.PKRUAllow(c.PKRU(), d.key, true))
	if d.isRoot() {
		if err := l.ensureRootHeap(c); err != nil {
			return 0, err
		}
	} else if err := d.ensureHeap(c); err != nil {
		return 0, err
	}
	// Unlock via defer: an allocator walking corrupted metadata can trap
	// mid-operation, and the heap lock must not survive the panic unwind.
	d.lockHeap()
	defer d.unlockHeap()
	p, err := d.heap.Alloc(c, size)
	if err != nil {
		if errors.Is(err, tlsf.ErrOOM) {
			return 0, fmt.Errorf("%w: domain %d: %v", ErrHeapExhausted, udi, err)
		}
		return 0, err
	}
	return p, nil
}

// SetAllocFault installs (or, with nil, removes) an allocation-fault hook
// consulted by Malloc before the allocator runs: a non-nil error makes the
// call fail as heap exhaustion. The chaos engine uses it to inject OOM
// under live workload load; install and remove it from the serving thread
// (or while no thread is calling Malloc), as the field is unsynchronized.
func (l *Library) SetAllocFault(fn func(udi UDI, size uint64) error) { l.allocFault = fn }

// Free releases memory previously allocated in domain udi (Table I ③).
func (l *Library) Free(t *proc.Thread, udi UDI, addr mem.Addr) error {
	ts := l.state(t)
	l.monitorEnter(t)
	defer l.monitorExit(t)

	d, err := l.resolveAllocTarget(ts, udi)
	if err != nil {
		return err
	}
	if d.heap == nil {
		return fmt.Errorf("sdrad: free in domain %d with uninitialized heap", udi)
	}
	c := t.CPU()
	l.wrpkru(t, mem.PKRUAllow(c.PKRU(), d.key, true))
	d.lockHeap()
	defer d.unlockHeap()
	return d.heap.Free(c, addr)
}

// resolveAllocTarget finds the domain udi and checks the access policy
// for memory-management calls issued by the current domain.
func (l *Library) resolveAllocTarget(ts *threadState, udi UDI) (*Domain, error) {
	cur := ts.current
	if udi == cur.udi {
		return cur, nil
	}
	// Accessible execution child of the current domain.
	if d, ok := ts.domains[udi]; ok {
		if d.parent == cur && d.accessible {
			return d, nil
		}
		return nil, ErrNotChild
	}
	// Data domains: the creating parent (if accessible) or any domain
	// holding a write grant may manage memory in them.
	if dd := l.lookupDataDomain(udi); dd != nil {
		if dd.parent == cur && dd.accessible {
			return dd, nil
		}
		l.mu.Lock()
		prot, ok := cur.grants[udi]
		l.mu.Unlock()
		if ok && prot&mem.ProtWrite != 0 {
			return dd, nil
		}
		return nil, ErrNotChild
	}
	return nil, ErrUnknownDomain
}

// ensureRootHeap lazily maps and initializes the root domain heap.
func (l *Library) ensureRootHeap(c *mem.CPU) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.root.heap != nil {
		return nil
	}
	if l.root.heapBase == 0 {
		base, err := l.p.AddressSpace().MapAnon(int(l.rootHeapSize), mem.ProtRW, l.rootKey)
		if err != nil {
			return fmt.Errorf("sdrad: mapping root heap: %w", err)
		}
		l.root.heapBase = base
		l.root.heapSize = l.rootHeapSize
	}
	return l.root.ensureHeap(c)
}

// DProtect configures domain udi's access rights PROT on the target data
// domain tddi (Table I ④). udi must be the current domain or one of its
// children; tddi must be a data domain. Rights take effect the next time
// the domain's policy is installed (immediately if udi is current).
func (l *Library) DProtect(t *proc.Thread, udi, tddi UDI, prot mem.Prot) error {
	ts := l.state(t)
	l.monitorEnter(t)
	defer l.monitorExit(t)

	var d *Domain
	switch {
	case udi == ts.current.udi:
		d = ts.current
	default:
		child, ok := ts.domains[udi]
		if !ok || child.parent != ts.current {
			return ErrNotChild
		}
		d = child
	}
	dd := l.lookupDataDomain(tddi)
	if dd == nil {
		return fmt.Errorf("%w: data domain %d", ErrUnknownDomain, tddi)
	}
	// Grants of the shared root domain are read concurrently by other
	// threads' policy derivations.
	l.mu.Lock()
	if d.grants == nil {
		d.grants = make(map[UDI]mem.Prot)
	}
	if prot == mem.ProtNone {
		delete(d.grants, tddi)
	} else {
		d.grants[tddi] = prot
	}
	l.bumpPolicyGen()
	l.mu.Unlock()
	return nil
}

// Enter switches execution into nested domain udi (Table I ⑤): the
// monitor saves the current domain, switches to the nested domain's
// stack (pushing a canary-protected return record, the analog of pushing
// the sdrad_enter return address on the new stack), and installs the
// nested domain's memory-access policy.
func (l *Library) Enter(t *proc.Thread, udi UDI) error {
	ts := l.state(t)
	// Telemetry costs one atomic load when disabled; when enabled,
	// latency is clocked only on the sampled transitions (keyed off the
	// native transition counter, so no extra hot-path write either).
	rec := l.tel.Load()
	var telT0 int64
	sampled := false
	if rec != nil {
		if sampled = rec.Sampled(uint64(l.stats.DomainSwitches.Load())); sampled {
			telT0 = rec.Clock()
		}
	}
	l.monitorEnter(t)
	defer l.monitorExit(t)

	d, ok := ts.domains[udi]
	if !ok {
		return ErrUnknownDomain
	}
	if d.kind != ExecDomain {
		return ErrBadDomainKind
	}
	if d.isRoot() {
		return ErrRootOperation
	}
	if d.parent != ts.current {
		return ErrNotChild
	}
	if !d.contextValid {
		return ErrNoContext
	}
	if d.entered {
		return ErrDomainBusy
	}
	c := t.CPU()
	// Push the return record on the nested domain's stack; requires its
	// key raised.
	l.wrpkru(t, mem.PKRUAllow(c.PKRU(), d.key, true))
	frame, err := d.stk.PushFrame(c, 0)
	if err != nil {
		return fmt.Errorf("sdrad: entering domain %d: %w", udi, err)
	}
	ts.enterStack = append(ts.enterStack, enterRecord{prev: ts.current, entered: d, frame: frame})
	d.entered = true
	ts.current = d
	// No lease invalidation: the switch only rewrote PKRU, and lease
	// validity re-derives rights from the live PKRU on every access, so
	// windows the new domain lacks rights for go invalid by themselves.
	l.stats.DomainSwitches.Add(1)
	if sampled {
		rec.RecordEnter(t.ID(), int(udi), rec.Clock()-telT0)
	}
	return nil
}

// Exit leaves the current nested domain back to its parent (Table I ⑥).
// The return record pushed by Enter is popped with its canary verified: a
// domain that smashed its own stack deep enough to clobber the record is
// detected here, mirroring __stack_chk_fail firing on return.
func (l *Library) Exit(t *proc.Thread) error {
	ts := l.state(t)
	tel := l.tel.Load()
	var telT0 int64
	sampled := false
	if tel != nil {
		if sampled = tel.Sampled(uint64(l.stats.DomainSwitches.Load())); sampled {
			telT0 = tel.Clock()
		}
	}
	l.monitorEnter(t)
	defer l.monitorExit(t)

	if len(ts.enterStack) == 0 || ts.current.isRoot() {
		return ErrNotEntered
	}
	rec := ts.enterStack[len(ts.enterStack)-1]
	if rec.entered != ts.current {
		return ErrNotEntered
	}
	d := ts.current
	c := t.CPU()
	// Verify the return record's canary before restoring the parent: a
	// clobbered record means the domain smashed its stack, and the panic
	// below is recovered by the Guard as an abnormal exit attributed to
	// the still-current domain.
	rec.frame.MustVerify(c)
	// Discard the domain stack contents (the isolated call has returned;
	// any leaked frames go with it).
	d.stk.Reset()
	ts.enterStack = ts.enterStack[:len(ts.enterStack)-1]
	d.entered = false
	ts.current = rec.prev
	l.stats.DomainSwitches.Add(1)
	if sampled {
		tel.RecordExit(t.ID(), int(d.udi), tel.Clock()-telT0)
	}
	return nil
}

// Copy moves n bytes between addresses using the current domain's rights
// and counts the bytes against the copy statistics — the explicit
// argument/result marshalling the paper identifies as SDRaD's main data
// cost.
func (l *Library) Copy(t *proc.Thread, dst, src mem.Addr, n int) {
	t.CPU().Copy(dst, src, n)
	l.stats.BytesCopied.Add(int64(n))
}

// WriteBytes copies p into domain memory at addr under current rights.
func (l *Library) WriteBytes(t *proc.Thread, addr mem.Addr, p []byte) {
	t.CPU().Write(addr, p)
	l.stats.BytesCopied.Add(int64(len(p)))
}

// ReadBytes copies n bytes at addr out of domain memory under current
// rights.
func (l *Library) ReadBytes(t *proc.Thread, addr mem.Addr, n int) []byte {
	b := t.CPU().ReadBytes(addr, n)
	l.stats.BytesCopied.Add(int64(n))
	return b
}

// Stack returns the simulated stack of execution domain udi on this
// thread, so code running inside the domain can push canary-protected
// frames for its stack-allocated buffers (the simulation's equivalent of
// running with -fstack-protector on the domain stack). The root domain
// has no simulated stack.
func (l *Library) Stack(t *proc.Thread, udi UDI) (*stack.Stack, error) {
	ts := l.state(t)
	d, ok := ts.domains[udi]
	if !ok {
		return nil, ErrUnknownDomain
	}
	if d.kind != ExecDomain || d.isRoot() {
		return nil, ErrBadDomainKind
	}
	return d.stk, nil
}
