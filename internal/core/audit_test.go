package core

import (
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// The PKRU integrity condition is one-sided: a quiescent thread's
// register may deny rights the policy grants (a sibling thread widened
// the shared root's policy since this thread's last transition), but
// must never grant rights the policy denies.

func TestAuditToleratesStaleRestrictivePKRU(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		before := th.CPU().PKRU()
		ready := make(chan struct{})
		release := make(chan struct{})
		h := p.Spawn("sibling", func(th2 *proc.Thread) error {
			return l.Guard(th2, 1, func() error {
				close(ready)
				<-release
				return nil
			}, Accessible())
		})
		<-ready
		// The sibling initialized an accessible domain under the shared
		// root; the policy widened but this thread's register cannot have
		// moved without a transition of its own.
		if got := th.CPU().PKRU(); got != before {
			t.Fatalf("register moved without a transition: 0x%08x -> 0x%08x", before, got)
		}
		rep := l.Audit(th)
		if rep.PKRU == rep.ExpectedPKRU {
			t.Fatal("test vacuous: sibling's domain did not widen root policy")
		}
		if !rep.Ok() {
			t.Errorf("stale-restrictive register flagged: %v", rep.Findings)
		}
		if rep.PKRUStaleDenies == 0 {
			t.Error("stale deny bits not reported")
		}
		if rep.PKRUStaleDenies&rep.ExpectedPKRU != 0 {
			t.Errorf("stale bits 0x%08x overlap policy denies 0x%08x",
				rep.PKRUStaleDenies, rep.ExpectedPKRU)
		}
		close(release)
		if err := h.Join(); err != nil {
			t.Fatalf("sibling: %v", err)
		}
		return nil
	})
}

func TestAuditFlagsStalePermissivePKRU(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		// Install rights the policy denies: the monitor key is never
		// accessible from domain code.
		l.wrpkru(th, mem.PKRUAllow(th.CPU().PKRU(), l.monitorKey, true))
		rep := l.Audit(th)
		l.wrpkru(th, rep.ExpectedPKRU)
		if rep.Ok() {
			t.Fatal("register granting the monitor key passed the audit")
		}
		found := false
		for _, f := range rep.Findings {
			if len(f) >= 4 && f[:4] == "pkru" {
				found = true
			}
		}
		if !found {
			t.Errorf("no pkru finding in %v", rep.Findings)
		}
		return nil
	})
}
