package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sdrad/internal/mem"
	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
	"sdrad/internal/stack"
	"sdrad/internal/telemetry"
)

// UDI is a user domain index: the developer-chosen handle for a domain
// (Table I of the paper).
type UDI int

// RootUDI is the reserved index of the root domain.
const RootUDI UDI = 0

// Default region sizes; the C library reads these from environment
// variables, here they are Setup options.
const (
	DefaultStackSize    = 64 * 1024
	DefaultHeapSize     = 256 * 1024
	DefaultRootHeapSize = 8 * 1024 * 1024
)

// Library is the SDRaD reference monitor plus its control data. One
// Library serves one simulated process. The Go struct plays the role of
// the paper's "monitor data domain": a dedicated protection key guards a
// mapped monitor region that the monitor touches only while it has raised
// its own access rights, so domain code can never tamper with rewind
// state (requirement R4).
type Library struct {
	p *proc.Process

	rootKey    int
	monitorKey int
	// monitorBase is the monitor data domain mapping; the reference
	// monitor keeps its transition ledger there (a per-call counter and
	// the current domain index), accessible only while monitor rights
	// are raised.
	monitorBase mem.Addr

	defaultStackSize uint64
	defaultHeapSize  uint64
	rootHeapSize     uint64
	scrubOnDiscard   bool
	reuseStacks      bool
	rewindLimit      int64
	onRewind         func(RewindEvent)
	allocFault       func(udi UDI, size uint64) error
	// policy is the optional resilience-policy engine ("Unlimited
	// Lives"): consulted after every rewind and before every nested
	// exec-domain (re-)initialization. Nil disables all policy checks.
	policy *policy.Engine

	// pkruToken authorizes the monitor's PKRU writes on locked CPUs.
	pkruToken uint64

	mu          sync.Mutex
	threads     map[int]*threadState
	dataDomains map[UDI]*Domain
	stackPool   []*pooledStack
	root        *Domain // shared root domain
	// ledgerFree/ledgerNext manage the per-thread transition-ledger slots
	// in the monitor data domain (see monitorEnter).
	ledgerFree []mem.Addr
	ledgerNext int

	// policyGen versions every input of computePKRU (domain topology,
	// init states, keys, DProtect grants). Bumped under mu at the end of
	// each mutating critical section (via bumpPolicyGen, which also
	// revokes span leases), so a policy cached against the current
	// generation is always derived from current state.
	policyGen atomic.Uint64

	scopeCtr atomic.Uint64
	stats    Stats

	// tel is the optional telemetry recorder (nil = disabled). Hot paths
	// pay exactly one atomic pointer load to find out it is off.
	tel atomic.Pointer[telemetry.Recorder]
}

// The monitor data domain page is carved into 16-byte transition-ledger
// slots: [0:8) call count, [8:16) owning thread id. Slot 0 is the shared
// fallback (mutex-guarded) for the unlikely case of more live threads
// than slots; slots 1.. are exclusive to one live thread each, so the
// per-call ledger write needs no lock.
const (
	ledgerSlotSize = 16
	ledgerSlots    = int(mem.PageSize / ledgerSlotSize)
)

// pooledStack is a destroyed domain's stack kept mapped for reuse
// (paper §IV-C: "we never unmap the stack area ... but keep it for
// reuse"). When the domain's heap was discarded (not merged), the heap
// region rides along — heapBase/heapSize non-zero — still mapped with
// the same protection key, so re-initializing a domain after a rewind
// skips PkeyAlloc, both MapAnon calls, and reuses the region for a
// fresh TLSF build.
type pooledStack struct {
	stk      *stack.Stack
	key      int
	size     uint64
	heapBase mem.Addr
	heapSize uint64
}

// threadState is the per-thread SDRaD control data (the C library keeps
// it in the monitor data domain, keyed by thread id).
type threadState struct {
	t       *proc.Thread
	domains map[UDI]*Domain // execution domains of this thread
	current *Domain         // currently executing domain
	// enterStack records Enter nesting so Exit can restore the previous
	// domain ("switch back to the parent domain's stack").
	enterStack []enterRecord
	// ledgerSlot is this thread's transition-ledger slot in the monitor
	// data domain; ledgerShared marks the mutex-guarded fallback slot.
	ledgerSlot   mem.Addr
	ledgerShared bool
}

type enterRecord struct {
	prev    *Domain
	entered *Domain
	// frame is the canary-protected return record pushed on the entered
	// domain's stack; verified on Exit.
	frame *stack.Frame
}

// Stats counts monitor activity.
type Stats struct {
	// DomainSwitches counts Enter+Exit transitions.
	DomainSwitches atomic.Int64
	// Rewinds counts abnormal domain exits recovered by Guards.
	Rewinds atomic.Int64
	// MonitorCalls counts reference-monitor invocations (API calls).
	MonitorCalls atomic.Int64
	// Inits and Destroys count domain life-cycle events.
	Inits    atomic.Int64
	Destroys atomic.Int64
	// BytesCopied counts explicit argument/result copies through
	// lib.Copy (the paper's memcpy overhead source).
	BytesCopied atomic.Int64
}

// SetupOption configures Setup.
type SetupOption func(*Library)

// WithDefaultStackSize sets the default nested-domain stack size.
func WithDefaultStackSize(n uint64) SetupOption {
	return func(l *Library) { l.defaultStackSize = n }
}

// WithDefaultHeapSize sets the default nested-domain heap size.
func WithDefaultHeapSize(n uint64) SetupOption {
	return func(l *Library) { l.defaultHeapSize = n }
}

// WithRootHeapSize sets the root domain heap size.
func WithRootHeapSize(n uint64) SetupOption {
	return func(l *Library) { l.rootHeapSize = n }
}

// WithScrubOnDiscard zeroes discarded domain memory. The paper leaves
// scrubbing to the developer; this option is the library-side variant
// discussed under Limitations (confidentiality of destroyed domains).
func WithScrubOnDiscard(on bool) SetupOption {
	return func(l *Library) { l.scrubOnDiscard = on }
}

// WithStackReuse toggles the stack-reuse optimization (§IV-C); disabling
// it is used by the ablation benchmarks.
func WithStackReuse(on bool) SetupOption {
	return func(l *Library) { l.reuseStacks = on }
}

// RewindEvent describes one absorbed attack, for incident reporting.
// The paper (§VI, Applicability) suggests feeding rewinds to a Security
// Information and Event Management system as early warnings of an attack
// campaign, and blocking repeat offenders upstream.
type RewindEvent struct {
	// Seq is the process-wide rewind sequence number (1-based).
	Seq int64
	// ThreadID and ThreadName identify the victim thread.
	ThreadID   int
	ThreadName string
	// FailedUDI is the discarded domain.
	FailedUDI UDI
	// Signal, Code, Addr, PKey describe the detection oracle.
	Signal sig.Signal
	Code   int
	Addr   uint64
	PKey   int
}

// WithRewindObserver registers a callback invoked on every abnormal
// domain exit, after the failing domain has been discarded and before
// execution resumes at the recovery point. The callback runs on the
// victim thread and must not call back into the library.
func WithRewindObserver(fn func(RewindEvent)) SetupOption {
	return func(l *Library) { l.onRewind = fn }
}

// WithTelemetry attaches a telemetry recorder: domain-lifecycle events
// feed its flight recorder, every rewind synthesizes a forensics report,
// and the monitor's native counters are mirrored into its metrics
// registry. One recorder may serve several libraries (e.g. one per worker
// process); their counter callbacks sum into one series.
func WithTelemetry(rec *telemetry.Recorder) SetupOption {
	return func(l *Library) { l.tel.Store(rec) }
}

// WithRewindLimit forces process termination once limit rewinds have
// been absorbed, implementing the paper's probabilistic-defense
// protection (§VI, Limitations): unbounded rewinding would let an
// attacker probe ASLR-style defenses indefinitely, so after the limit
// the application is restarted instead of rewound.
func WithRewindLimit(limit int) SetupOption {
	return func(l *Library) { l.rewindLimit = int64(limit) }
}

// WithPolicy attaches a resilience-policy engine: the monitor consults
// it after every absorbed rewind (the decision lands in the rewind's
// forensics report) and before re-initializing a nested execution
// domain — a quarantined or shedding domain's re-init fails with
// ErrDomainQuarantined, and the application routes to its degraded
// path. When a telemetry recorder is also attached, Setup wires the
// engine's gauges and escalation counters into its registry.
func WithPolicy(e *policy.Engine) SetupOption {
	return func(l *Library) { l.policy = e }
}

// Setup initializes SDRaD for a process: it allocates the root and
// monitor protection keys, maps the monitor data domain, installs the
// SIGSEGV handler, and registers the thread constructor that gives every
// thread its root-domain state. It mirrors the constructor that the C
// library runs before main() (paper §IV-B, "Initialization").
func Setup(p *proc.Process, opts ...SetupOption) (*Library, error) {
	l := &Library{
		p:                p,
		defaultStackSize: DefaultStackSize,
		defaultHeapSize:  DefaultHeapSize,
		rootHeapSize:     DefaultRootHeapSize,
		reuseStacks:      true,
		threads:          make(map[int]*threadState),
		dataDomains:      make(map[UDI]*Domain),
	}
	for _, o := range opts {
		o(l)
	}
	l.pkruToken = p.Rand64()
	as := p.AddressSpace()
	var err error
	if l.rootKey, err = as.PkeyAlloc(); err != nil {
		return nil, fmt.Errorf("sdrad: allocating root key: %w", err)
	}
	if l.monitorKey, err = as.PkeyAlloc(); err != nil {
		return nil, fmt.Errorf("sdrad: allocating monitor key: %w", err)
	}
	if l.monitorBase, err = as.MapAnon(mem.PageSize, mem.ProtRW, l.monitorKey); err != nil {
		return nil, fmt.Errorf("sdrad: mapping monitor domain: %w", err)
	}

	// The shared root domain: all application memory tagged with the
	// root key (and untagged key-0 memory) belongs to it.
	l.root = &Domain{
		udi:  RootUDI,
		kind: ExecDomain,
		key:  l.rootKey,
		lib:  l,
	}

	// SIGSEGV handler: in the real library this is where rewinding
	// starts. In the simulation, faults inside guarded domains are
	// recovered by the Guard scopes before they ever reach the process
	// signal table; a delivery here therefore means the fault was not
	// attributable to a guarded nested domain and the process must die
	// (paper: "For faults occurring in the root domain ... the process
	// is still terminated").
	p.Signals().Register(sig.SIGSEGV, func(info *sig.Info, tls any) sig.Action {
		return sig.ActionTerminate
	})

	if rec := l.tel.Load(); rec != nil {
		l.attachTelemetry(rec)
		l.policy.AttachTelemetry(rec) // nil-engine safe
	}

	p.RegisterThreadConstructor(func(t *proc.Thread) error {
		l.initThread(t)
		return nil
	})
	// Thread exit releases the thread's execution domains (and their
	// protection keys) like a pthread TLS destructor; without this,
	// short-lived threads with nested domains would exhaust the 15 keys.
	p.RegisterThreadDestructor(func(t *proc.Thread) {
		l.destroyThread(t)
	})
	return l, nil
}

// destroyThread tears down a finished thread's SDRaD state: every
// execution domain it initialized is destroyed (heaps discarded, stacks
// pooled, keys recycled) and its control data is dropped.
func (l *Library) destroyThread(t *proc.Thread) {
	ts, ok := t.Local.(*threadState)
	if !ok {
		return
	}
	// The thread is gone: no domain can be "current" anymore.
	ts.current = l.root
	ts.enterStack = nil
	for udi, d := range ts.domains {
		if d.isRoot() {
			continue
		}
		d.contextValid = false
		d.entered = false
		l.discardHeap(t, d)
		l.releaseDomain(t, d)
		delete(ts.domains, udi)
	}
	l.mu.Lock()
	delete(l.threads, t.ID())
	if !ts.ledgerShared && ts.ledgerSlot != 0 {
		// Recycle the ledger slot without zeroing it: the accumulated
		// count stays in the monitor domain, so the audit's sum over all
		// slots remains the total call count.
		l.ledgerFree = append(l.ledgerFree, ts.ledgerSlot)
		ts.ledgerSlot = 0
	}
	l.mu.Unlock()
	if rec := l.tel.Load(); rec != nil {
		rec.RecordThreadExit(t.ID())
	}
}

// initThread builds the per-thread control data and grants the thread
// root-domain rights.
func (l *Library) initThread(t *proc.Thread) {
	ts := &threadState{
		t:       t,
		domains: make(map[UDI]*Domain),
		current: l.root,
	}
	ts.domains[RootUDI] = l.root
	t.Local = ts
	l.mu.Lock()
	l.threads[t.ID()] = ts
	switch {
	case len(l.ledgerFree) > 0:
		ts.ledgerSlot = l.ledgerFree[len(l.ledgerFree)-1]
		l.ledgerFree = l.ledgerFree[:len(l.ledgerFree)-1]
	case l.ledgerNext+1 < ledgerSlots:
		l.ledgerNext++ // slot 0 stays the shared fallback
		ts.ledgerSlot = l.monitorBase + mem.Addr(l.ledgerNext*ledgerSlotSize)
	default:
		ts.ledgerSlot = l.monitorBase
		ts.ledgerShared = true
	}
	l.mu.Unlock()
	// From here on, only the reference monitor may touch PKRU (R4).
	t.CPU().LockWRPKRU(l.pkruToken)
	// The thread starts executing in the root domain.
	l.wrpkru(t, l.computePKRU(ts, l.root))
	if rec := l.tel.Load(); rec != nil {
		rec.RecordThreadStart(t.ID())
	}
}

// state returns the thread's SDRaD control data, initializing it if the
// thread predates Setup (possible in tests).
func (l *Library) state(t *proc.Thread) *threadState {
	if ts, ok := t.Local.(*threadState); ok {
		return ts
	}
	l.initThread(t)
	return t.Local.(*threadState)
}

// Process returns the process this library instance serves.
func (l *Library) Process() *proc.Process { return l.p }

// RootKey returns the protection key of the root domain. Application
// substrates use it to tag memory they map themselves.
func (l *Library) RootKey() int { return l.rootKey }

// MonitorBase returns the address of the monitor data domain (exposed for
// the security tests that verify domain code cannot touch it).
func (l *Library) MonitorBase() mem.Addr { return l.monitorBase }

// Stats returns the live monitor counters.
func (l *Library) Stats() *Stats { return &l.stats }

// Policy returns the attached resilience-policy engine, or nil. The
// result is safe to use either way: a nil *policy.Engine allows
// everything.
func (l *Library) Policy() *policy.Engine { return l.policy }

// Current returns the UDI of the domain the thread is executing in.
func (l *Library) Current(t *proc.Thread) UDI {
	return l.state(t).current.udi
}

// monitorEnter raises the monitor's own access rights (one WRPKRU) and
// records the call in the monitor data domain. Every public API call is
// bracketed by monitorEnter/monitorExit, which is where the two PKRU
// writes per transition — the dominant switch cost in the paper's
// profiling — come from.
//
// The transition ledger is sharded: each live thread owns a 16-byte slot
// in the monitor data domain, so the per-call read-modify-write is
// thread-private and needs no lock (a real monitor keeps per-thread
// transition logs for the same reason). The audit sums the slots against
// the global call counter.
func (l *Library) monitorEnter(t *proc.Thread) {
	c := t.CPU()
	l.wrpkru(t, mem.PKRUAllow(c.PKRU(), l.monitorKey, true))
	l.stats.MonitorCalls.Add(1)
	ts := l.state(t)
	if ts.ledgerShared {
		// Fallback slot shared by overflow threads: serialize the RMW.
		// Unlock via defer: the ledger writes go through the CPU and can
		// trap (e.g. under fault injection); the library mutex must not
		// survive the panic unwind.
		l.mu.Lock()
		defer l.mu.Unlock()
	}
	slot := ts.ledgerSlot
	c.WriteU64(slot, c.ReadU64(slot)+1)
	c.WriteU64(slot+8, uint64(t.ID()))
}

// monitorExit lowers rights back to the policy of the thread's current
// domain, recomputed from the (possibly just-changed) control data. The
// monitor owns the PKRU register: whatever internal raises an API call
// performed are dropped here.
func (l *Library) monitorExit(t *proc.Thread) {
	ts := l.state(t)
	l.wrpkru(t, l.computePKRU(ts, ts.current))
}

// wrpkru is the monitor's PKRU write, presenting the lockdown token.
func (l *Library) wrpkru(t *proc.Thread, v uint32) {
	t.CPU().MonitorWRPKRU(l.pkruToken, v)
}

// computePKRU derives the PKRU policy for executing domain d on thread
// ts: the domain's own key is fully accessible; the root domain is
// read-only from nested domains (globals readable, not writable); keys of
// accessible initialized children are granted; data-domain grants
// configured via DProtect apply; everything else — including the monitor
// key — is denied.
//
// It locks the library mutex because the root domain is shared by all
// threads: its child list and grants can be mutated concurrently by other
// threads initializing domains.
//
// The derived value is cached on the domain, tagged with the policy
// generation it was derived from; monitorExit — two per API call — then
// costs an atomic load instead of a locked walk. Every policy input
// mutates under the library mutex with a generation bump at the end of
// the critical section, so a cache entry tagged with the current
// generation is always current (a walk that raced a mutation reads the
// pre-bump generation and caches a value that can never be served).
// bumpPolicyGen advances the policy generation and, with it, the
// address-space lease epoch: a policy change can alter PKRU derivation
// without touching the page table, and outstanding span leases must not
// survive it. Called at the end of each mutating critical section.
func (l *Library) bumpPolicyGen() {
	l.policyGen.Add(1)
	l.p.AddressSpace().BumpLeaseEpoch()
}

func (l *Library) computePKRU(ts *threadState, d *Domain) uint32 {
	gen := l.policyGen.Load()
	// The tag packs the generation into 32 bits; the generation counts
	// domain-topology mutations and cannot realistically wrap.
	if c := d.pkruCache.Load(); c != 0 && c>>32 == gen&0xffffffff {
		return uint32(c)
	}
	pkru := l.derivePKRU(d)
	d.pkruCache.Store((gen&0xffffffff)<<32 | uint64(pkru))
	return pkru
}

// derivePKRU is the uncached policy walk.
func (l *Library) derivePKRU(d *Domain) uint32 {
	pkru := mem.PKRUDenyAll
	pkru = mem.PKRUAllow(pkru, d.key, true)
	if d.isRoot() {
		// Untagged (key 0) memory also belongs to the root domain.
		pkru = mem.PKRUAllow(pkru, 0, true)
	} else {
		pkru = mem.PKRUAllow(pkru, l.rootKey, false)
		pkru = mem.PKRUAllow(pkru, 0, false)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range d.children {
		if c.accessible && c.initialized {
			pkru = mem.PKRUAllow(pkru, c.key, true)
		}
	}
	for tddi, prot := range d.grants {
		dd := l.dataDomains[tddi]
		if dd == nil || !dd.initialized {
			continue
		}
		switch {
		case prot&mem.ProtWrite != 0:
			pkru = mem.PKRUAllow(pkru, dd.key, true)
		case prot&mem.ProtRead != 0:
			pkru = mem.PKRUAllow(pkru, dd.key, false)
		}
	}
	return pkru
}

// lookupDataDomain returns the global data domain for udi, or nil.
func (l *Library) lookupDataDomain(udi UDI) *Domain {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dataDomains[udi]
}

// newScope issues a unique recovery-scope identifier.
func (l *Library) newScope() uint64 { return l.scopeCtr.Add(1) }

// takePooledStack returns a reusable stack of at least size bytes, or
// nil. Entries whose pooled heap also fits heapSize are preferred — the
// caller then skips the heap mapping entirely.
func (l *Library) takePooledStack(size, heapSize uint64) *pooledStack {
	if !l.reuseStacks {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	best := -1
	for i, ps := range l.stackPool {
		if ps.size < size {
			continue
		}
		if ps.heapBase != 0 && ps.heapSize >= heapSize {
			best = i
			break
		}
		if best == -1 {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	ps := l.stackPool[best]
	l.stackPool = append(l.stackPool[:best], l.stackPool[best+1:]...)
	return ps
}

// HeapPooled reports whether addr falls inside a discarded heap region
// currently parked in the stack pool. External auditors (e.g. the chaos
// engine's residual-mapping check) use it to tell a legitimate pooled
// heap — still mapped, scrubbed, awaiting reuse — from a leaked mapping.
func (l *Library) HeapPooled(addr mem.Addr) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ps := range l.stackPool {
		if ps.heapBase != 0 && addr >= ps.heapBase && addr < ps.heapBase+mem.Addr(ps.heapSize) {
			return true
		}
	}
	return false
}

// returnPooledStack parks a stack (and its protection key) for reuse.
// Returns false if pooling is disabled, in which case the caller unmaps.
func (l *Library) returnPooledStack(ps *pooledStack) bool {
	if !l.reuseStacks {
		return false
	}
	ps.stk.Reset()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stackPool = append(l.stackPool, ps)
	return true
}
