package core

import (
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
	"sdrad/internal/telemetry"
)

// attachTelemetry wires the recorder through the layers this library
// owns: the address space records fault events, the signal table records
// deliveries, and the monitor's native counters are mirrored into the
// registry as callbacks — exposition reads them, the hot paths gain no
// extra writes.
func (l *Library) attachTelemetry(rec *telemetry.Recorder) {
	l.p.AddressSpace().SetTelemetry(rec)
	l.p.Signals().SetObserver(func(info *sig.Info, action sig.Action) {
		rec.RecordSignal(0, info.Signal.String(), int(info.Signal), info.Code, info.Addr)
	})
	reg := rec.Registry()
	reg.CounterFunc("sdrad_domain_transitions_total",
		"Enter/Exit domain transitions performed by the reference monitor.",
		func() int64 { return l.stats.DomainSwitches.Load() })
	reg.CounterFunc("sdrad_domain_inits_total",
		"Domains initialized.",
		func() int64 { return l.stats.Inits.Load() })
	reg.CounterFunc("sdrad_domain_destroys_total",
		"Domains destroyed (including rewind discards).",
		func() int64 { return l.stats.Destroys.Load() })
	reg.CounterFunc("sdrad_monitor_calls_total",
		"Reference-monitor invocations.",
		func() int64 { return l.stats.MonitorCalls.Load() })
	reg.CounterFunc("sdrad_bytes_copied_total",
		"Bytes marshalled across domain boundaries via the monitor.",
		func() int64 { return l.stats.BytesCopied.Load() })
}

// Telemetry returns the attached recorder, or nil.
func (l *Library) Telemetry() *telemetry.Recorder { return l.tel.Load() }

// siCodeName names a trap's si_code for metric labels and forensics:
// SIGSEGV codes carry the MMU's discrimination; a stack-protector SIGABRT
// has no si_code and is labeled by its oracle instead.
func siCodeName(info sig.Info) string {
	if info.Signal == sig.SIGABRT {
		return "STACK_CHK"
	}
	return mem.FaultCode(info.Code).String()
}

// buildRewindReport captures everything about the failing domain that the
// discard is about to destroy. Called from handleTrap before step ⑬; the
// sequence number is filled in afterwards.
func buildRewindReport(t *proc.Thread, ts *threadState, failing *Domain, info sig.Info, cause any, limit int64) telemetry.RewindReport {
	rep := telemetry.RewindReport{
		ThreadID:    t.ID(),
		ThreadName:  t.Name(),
		FailedUDI:   int(failing.udi),
		Signal:      int(info.Signal),
		SignalName:  info.Signal.String(),
		SiCode:      info.Code,
		SiCodeName:  siCodeName(info),
		Addr:        info.Addr,
		PKey:        info.PKey,
		HeapBase:    uint64(failing.heapBase),
		HeapBytes:   failing.heapSize,
		HeapPages:   int((failing.heapSize + mem.PageSize - 1) / mem.PageSize),
		StackBytes:  failing.stackSize,
		StackPages:  int((failing.stackSize + mem.PageSize - 1) / mem.PageSize),
		RewindLimit: limit,
	}
	for _, er := range ts.enterStack {
		rep.DomainStack = append(rep.DomainStack, int(er.entered.udi))
	}
	if failing.heap != nil {
		rep.LiveAllocs = failing.heap.AllocCount() - failing.heap.FreeCount()
	}
	if f, ok := cause.(*mem.Fault); ok {
		rep.Injected = f.Injected
	}
	return rep
}
