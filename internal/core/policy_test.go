package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"sdrad/internal/policy"
	"sdrad/internal/proc"
	"sdrad/internal/telemetry"
)

// policyLib builds a library with telemetry and a tight-threshold policy
// engine on a manual clock, so escalation is a pure function of the
// fault schedule.
func policyLib(t *testing.T) (*proc.Process, *Library, *policy.Engine, *policy.ManualClock, *telemetry.Recorder) {
	t.Helper()
	clk := &policy.ManualClock{}
	eng := policy.New(policy.Config{
		Window:              time.Second,
		BackoffThreshold:    2,
		QuarantineThreshold: 4,
		ShedThreshold:       6,
		BackoffBase:         10 * time.Millisecond,
		BackoffMax:          40 * time.Millisecond,
		Cooldown:            100 * time.Millisecond,
		Clock:               clk.Now,
	})
	rec := telemetry.New(telemetry.Options{TransitionSampleShift: -1})
	p, l := newLib(t, WithTelemetry(rec), WithPolicy(eng))
	return p, l, eng, clk, rec
}

// TestPolicyConsultedOnRewind: the monitor consults the engine after
// every absorbed rewind, stamps the decision into the forensics report,
// and emits a policy flight event attributed to the victim thread.
func TestPolicyConsultedOnRewind(t *testing.T) {
	p, l, eng, _, rec := policyLib(t)
	run(t, p, func(th *proc.Thread) error {
		var abn *AbnormalExit
		if err := faultGuard(t, l, th, 0xDEAD0000, true); !errors.As(err, &abn) {
			t.Fatalf("first fault: err = %v, want AbnormalExit", err)
		}
		rep, ok := rec.Forensics().Last()
		if !ok {
			t.Fatal("no forensics report")
		}
		if rep.PolicyState != "healthy" || rep.PolicyAction != "rewind" || rep.PolicyWindowCount != 1 {
			t.Errorf("report policy fields = %q/%q/%d, want healthy/rewind/1",
				rep.PolicyState, rep.PolicyAction, rep.PolicyWindowCount)
		}
		// Second fault crosses the backoff threshold (2-in-window).
		if err := faultGuard(t, l, th, 0xDEAD0000, true); !errors.As(err, &abn) {
			t.Fatalf("second fault: err = %v, want AbnormalExit", err)
		}
		rep, _ = rec.Forensics().Last()
		if rep.PolicyState != "backoff" || rep.PolicyAction != "backoff" || rep.PolicyWindowCount != 2 {
			t.Errorf("escalated report = %q/%q/%d, want backoff/backoff/2",
				rep.PolicyState, rep.PolicyAction, rep.PolicyWindowCount)
		}
		if rep.PolicyRetryAfterNs != int64(10*time.Millisecond) {
			t.Errorf("retry-after = %d, want 10ms", rep.PolicyRetryAfterNs)
		}
		// The flight recorder saw one policy event per rewind, with the
		// victim thread attached.
		var policyEvents int
		for _, ev := range rec.Flight().Snapshot() {
			if ev.Kind == "policy" {
				policyEvents++
				if ev.Thread != th.ID() || ev.UDI != 1 {
					t.Errorf("policy event tid/udi = %d/%d, want %d/1", ev.Thread, ev.UDI, th.ID())
				}
			}
		}
		if policyEvents != 2 {
			t.Errorf("policy flight events = %d, want 2", policyEvents)
		}
		if snaps := eng.Snapshot(); len(snaps) != 1 || snaps[0].TotalRewinds != 2 {
			t.Errorf("engine snapshot = %+v, want one domain with 2 rewinds", snaps)
		}
		return nil
	})
}

// TestPolicyDeniesReInit: once the domain is in a hold-off, the next
// Guard is refused at InitDomain with a QuarantineError, and admission
// reopens after the hold-off expires on the engine clock.
func TestPolicyDeniesReInit(t *testing.T) {
	p, l, _, clk, _ := policyLib(t)
	run(t, p, func(th *proc.Thread) error {
		for i := 0; i < 2; i++ {
			var abn *AbnormalExit
			if err := faultGuard(t, l, th, 0xDEAD0000, true); !errors.As(err, &abn) {
				t.Fatalf("fault %d: err = %v, want AbnormalExit", i, err)
			}
		}
		// Backoff hold-off (10ms) is running: re-init denied.
		err := faultGuard(t, l, th, 0xDEAD0000, false)
		if !errors.Is(err, ErrDomainQuarantined) {
			t.Fatalf("held-off guard err = %v, want ErrDomainQuarantined", err)
		}
		var qe *QuarantineError
		if !errors.As(err, &qe) {
			t.Fatalf("err %v does not unwrap to *QuarantineError", err)
		}
		if qe.UDI != 1 || qe.State != "backoff" {
			t.Errorf("quarantine error = %+v, want UDI 1 backoff", qe)
		}
		if qe.RetryAfterNs <= 0 || qe.RetryAfterNs > int64(10*time.Millisecond) {
			t.Errorf("retry-after = %d, want (0, 10ms]", qe.RetryAfterNs)
		}
		// Denial leaves no domain state behind: after the hold-off the
		// same Guard succeeds.
		clk.Advance(20 * time.Millisecond)
		if err := faultGuard(t, l, th, 0xDEAD0000, false); err != nil {
			t.Fatalf("readmitted guard err = %v, want nil", err)
		}
		return nil
	})
}

// TestPolicyExemptsDataDomains: data domains hold state, not execution —
// they never rewind, so admission control does not apply.
func TestPolicyExemptsDataDomains(t *testing.T) {
	p, l, eng, _, _ := policyLib(t)
	run(t, p, func(th *proc.Thread) error {
		// Drive UDI 2's execution-domain record into backoff via the
		// shared engine (the engine keys by UDI, not domain kind).
		eng.OnRewind(2)
		eng.OnRewind(2)
		if dec := eng.Admit(2); dec.Allowed() {
			t.Fatal("expected UDI 2 to be in a hold-off")
		}
		if err := l.InitDomain(th, 2, AsData()); err != nil {
			t.Fatalf("data-domain init err = %v, want nil (policy exempt)", err)
		}
		return nil
	})
}

// TestPolicyDisabledBitIdentical: with no engine configured the policy
// hook must be invisible — the same fault schedule produces
// bit-identical forensics (timestamps excepted) and stats whether the
// library was built without WithPolicy or with WithPolicy(nil).
func TestPolicyDisabledBitIdentical(t *testing.T) {
	type outcome struct {
		reports []telemetry.RewindReport
		rewinds int64
		errs    []string
	}
	runSchedule := func(opts ...SetupOption) outcome {
		rec := telemetry.New(telemetry.Options{TransitionSampleShift: -1})
		p, l := newLib(t, append([]SetupOption{WithTelemetry(rec)}, opts...)...)
		var out outcome
		run(t, p, func(th *proc.Thread) error {
			// Mixed schedule: faults, clean rounds, a fault in a second
			// domain.
			schedule := []struct {
				udi   UDI
				fault bool
			}{{1, true}, {1, false}, {1, true}, {1, true}, {1, false}}
			for _, s := range schedule {
				err := faultGuard(t, l, th, 0xDEAD0000, s.fault)
				if err != nil {
					out.errs = append(out.errs, err.Error())
				} else {
					out.errs = append(out.errs, "")
				}
				_ = s.udi
			}
			return nil
		})
		out.rewinds = l.Stats().Rewinds.Load()
		out.reports = rec.Forensics().Reports()
		for i := range out.reports {
			out.reports[i].TimeNs = 0 // wall-clock, not schedule-determined
		}
		return out
	}

	base := runSchedule()
	nilPolicy := runSchedule(WithPolicy(nil))
	if !reflect.DeepEqual(base, nilPolicy) {
		t.Errorf("WithPolicy(nil) diverged from no-policy baseline:\nbase: %+v\nnil:  %+v", base, nilPolicy)
	}
	for _, rep := range base.reports {
		if rep.PolicyState != "" || rep.PolicyAction != "" {
			t.Errorf("policy fields set without a policy: %+v", rep)
		}
	}
	if base.rewinds != 3 {
		t.Errorf("baseline rewinds = %d, want 3", base.rewinds)
	}
}
