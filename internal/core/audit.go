package core

import (
	"fmt"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// This file exposes the reference monitor's bookkeeping read-only, so the
// chaos engine (internal/chaos) can audit it after every absorbed rewind.
// "Unlimited Lives" (Gülmez et al.) shows that in-process recovery systems
// fail exactly here — state left inconsistent after a rollback — so the
// audit re-derives every invariant the monitor relies on instead of
// trusting the monitor's own view.

// DomainAudit is the audited snapshot of one live domain.
type DomainAudit struct {
	UDI  UDI
	Kind Kind
	Key  int
	// Guarded and Entered mirror the recovery-context and nesting flags.
	Guarded bool
	Entered bool
	// StackBase/StackSize and HeapBase/HeapSize are the provisioned
	// regions (stack fields are zero for data domains). Campaigns record
	// them before an attack to verify a discarded domain's heap pages
	// really left the address space.
	StackBase mem.Addr
	StackSize uint64
	HeapBase  mem.Addr
	HeapSize  uint64
	// HeapLive reports whether the lazily-built TLSF control exists (and
	// was therefore Check-ed by the audit).
	HeapLive bool
}

// AuditReport is the result of one invariant audit on one thread.
type AuditReport struct {
	ThreadID   int
	CurrentUDI UDI
	EnterDepth int
	// PKRU is the register value observed on entry; ExpectedPKRU is the
	// policy re-derived from the control data. The register must never
	// grant a right the policy denies; it may deny rights the policy
	// grants (see PKRUStaleDenies).
	PKRU         uint32
	ExpectedPKRU uint32
	// PKRUStaleDenies holds the deny bits set in the live register but
	// clear in the policy. Non-zero is legal on a quiescent thread:
	// PKRU is per-thread hardware state, so a sibling thread growing the
	// shared domain topology (initializing a domain under root) widens
	// the derived policy without touching this thread's register — the
	// new rights are picked up at its next monitor transition. Only the
	// opposite direction (stale rights the policy revoked) is an
	// integrity violation.
	PKRUStaleDenies uint32
	// LedgerCalls is the monitor-call counter read from the transition
	// ledger in the monitor data domain; MonitorCalls is the Go-side
	// statistic it must match when the process is quiescent.
	LedgerCalls  uint64
	MonitorCalls int64
	// Rewinds mirrors Stats.Rewinds at audit time, for rewind-accounting
	// checks by the caller.
	Rewinds int64
	// Domains lists this thread's execution domains (excluding root) and
	// every global data domain.
	Domains []DomainAudit
	// PooledStacks is the stack-reuse pool size.
	PooledStacks int
	// PooledHeaps counts pool entries that also carry a discarded heap
	// region kept mapped for reuse.
	PooledHeaps int
	// AccountedBytes sums the mapped bytes attributable to SDRaD state
	// visible from this thread: the monitor page, the root heap, this
	// thread's domain stacks and heaps, data-domain heaps, and pooled
	// stacks. On a single-threaded process MappedBytes minus application
	// mappings must equal it; campaigns track its stability.
	AccountedBytes uint64
	// MappedBytes is the address-space mapped-bytes gauge at audit time.
	MappedBytes int64
	// Findings lists every violated invariant; empty means the audit
	// passed.
	Findings []string
}

// Ok reports whether the audit found no violations.
func (r *AuditReport) Ok() bool { return len(r.Findings) == 0 }

func (r *AuditReport) findingf(format string, args ...any) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// Audit re-derives the monitor's invariants for the calling thread and
// reports violations. It must run on the thread it audits, like every
// library call. The checks assume the process is quiescent (no other
// thread mid-API-call); campaign drivers audit between requests.
//
// Audit deliberately does not use monitorEnter/monitorExit: the ledger
// and MonitorCalls counters are themselves audited, so the audit must not
// move them. It temporarily raises protection keys to walk allocator
// metadata and restores the observed PKRU value before returning.
func (l *Library) Audit(t *proc.Thread) *AuditReport {
	ts := l.state(t)
	c := t.CPU()
	as := l.p.AddressSpace()

	r := &AuditReport{
		ThreadID:     t.ID(),
		CurrentUDI:   ts.current.udi,
		EnterDepth:   len(ts.enterStack),
		PKRU:         c.PKRU(),
		MonitorCalls: l.stats.MonitorCalls.Load(),
		Rewinds:      l.stats.Rewinds.Load(),
		MappedBytes:  as.Stats().MappedBytes.Load(),
	}
	// The ERIM-style integrity condition for PKU sandboxes is one-sided:
	// the register must not hold rights the policy denies — clear deny
	// bits where the policy sets them mean a rewind (or a monitor bug)
	// left stale rights installed. The other direction is legal: a
	// sibling thread initializing a domain under the shared root widens
	// the policy, and this thread's register only catches up at its next
	// monitor transition (PKRU is per-thread hardware state).
	r.ExpectedPKRU = l.computePKRU(ts, ts.current)
	if excess := ^r.PKRU & r.ExpectedPKRU; excess != 0 {
		r.findingf("pkru grants rights the policy denies: have 0x%08x, policy for domain %d is 0x%08x (stale grant bits 0x%08x)",
			r.PKRU, ts.current.udi, r.ExpectedPKRU, excess)
	}
	r.PKRUStaleDenies = r.PKRU &^ r.ExpectedPKRU

	// Transition-ledger consistency: the ledger is sharded into
	// per-thread slots (see monitorEnter); their sum moves in lockstep
	// with the Go-side statistic.
	var ledger [mem.PageSize]byte
	if err := as.KernelRead(l.monitorBase, ledger[:]); err != nil {
		r.findingf("monitor ledger unreadable: %v", err)
	} else {
		var sum uint64
		for off := 0; off < len(ledger); off += ledgerSlotSize {
			s := ledger[off:]
			sum += uint64(s[0]) | uint64(s[1])<<8 |
				uint64(s[2])<<16 | uint64(s[3])<<24 |
				uint64(s[4])<<32 | uint64(s[5])<<40 |
				uint64(s[6])<<48 | uint64(s[7])<<56
		}
		r.LedgerCalls = sum
		if r.LedgerCalls != uint64(r.MonitorCalls) {
			r.findingf("monitor ledger desync: ledger=%d stats=%d",
				r.LedgerCalls, r.MonitorCalls)
		}
	}

	l.auditEnterStack(r, ts)
	keys := l.auditDomains(t, r, ts)
	l.auditPool(r, as, keys)

	r.AccountedBytes += mem.PageSize // monitor data domain
	l.mu.Lock()
	if l.root.heapBase != 0 {
		r.AccountedBytes += l.root.heapSize
	}
	l.mu.Unlock()
	if r.MappedBytes >= 0 && r.AccountedBytes > uint64(r.MappedBytes) {
		r.findingf("accounted SDRaD bytes %d exceed mapped bytes %d",
			r.AccountedBytes, r.MappedBytes)
	}

	// Heap walks below raised keys; restore the rights observed on entry.
	l.wrpkru(t, r.PKRU)
	return r
}

// auditEnterStack validates the Enter/Exit nesting records: the chain of
// prev/entered links must be contiguous, end at the current domain, and
// every return-record canary must still be intact.
func (l *Library) auditEnterStack(r *AuditReport, ts *threadState) {
	if len(ts.enterStack) == 0 {
		if !ts.current.isRoot() {
			r.findingf("current domain %d with empty enter stack", ts.current.udi)
		}
		return
	}
	c := ts.t.CPU()
	for i, rec := range ts.enterStack {
		if rec.entered == nil || rec.prev == nil || rec.frame == nil {
			r.findingf("enter record %d incomplete", i)
			continue
		}
		if !rec.entered.entered {
			r.findingf("enter record %d: domain %d not flagged entered", i, rec.entered.udi)
		}
		if i > 0 && rec.prev != ts.enterStack[i-1].entered {
			r.findingf("enter record %d: broken nesting chain", i)
		}
		// The return record lives on the entered domain's stack; raise its
		// key to read the canary.
		l.wrpkru(ts.t, mem.PKRUAllow(c.PKRU(), rec.entered.key, true))
		if !rec.frame.CanaryIntact(c) {
			r.findingf("enter record %d: return-record canary smashed in domain %d",
				i, rec.entered.udi)
		}
	}
	if top := ts.enterStack[len(ts.enterStack)-1].entered; top != ts.current {
		r.findingf("enter stack top is domain %d but current is %d",
			top.udi, ts.current.udi)
	}
}

// auditDomains validates this thread's execution domains and the global
// data domains: region mappings, page keys, key uniqueness, and TLSF heap
// consistency. It returns the set of live protection keys seen.
func (l *Library) auditDomains(t *proc.Thread, r *AuditReport, ts *threadState) map[int]UDI {
	as := l.p.AddressSpace()
	keys := map[int]UDI{l.rootKey: RootUDI, l.monitorKey: -1}

	var domains []*Domain
	for _, d := range ts.domains {
		if !d.isRoot() {
			domains = append(domains, d)
		}
	}
	l.mu.Lock()
	for _, d := range l.dataDomains {
		domains = append(domains, d)
	}
	l.mu.Unlock()

	for _, d := range domains {
		da := DomainAudit{
			UDI: d.udi, Kind: d.kind, Key: d.key,
			Guarded: d.contextValid, Entered: d.entered,
			StackBase: d.stackBase, StackSize: d.stackSize,
			HeapBase: d.heapBase, HeapSize: d.heapSize,
			HeapLive: d.heap != nil,
		}
		r.Domains = append(r.Domains, da)

		if !d.initialized {
			r.findingf("domain %d in table but not initialized", d.udi)
		}
		if prev, dup := keys[d.key]; dup {
			r.findingf("domain %d shares protection key %d with domain %d",
				d.udi, d.key, prev)
		}
		keys[d.key] = d.udi
		if !as.KeyAllocated(d.key) {
			r.findingf("domain %d key %d not allocated in the address space",
				d.udi, d.key)
		}
		if d.entered {
			found := false
			for _, rec := range ts.enterStack {
				if rec.entered == d {
					found = true
				}
			}
			if !found {
				r.findingf("domain %d flagged entered but absent from enter stack", d.udi)
			}
		}
		l.auditRegion(r, as, d.udi, "heap", d.heapBase, d.heapSize, d.key)
		r.AccountedBytes += d.heapSize
		if d.kind == ExecDomain {
			l.auditRegion(r, as, d.udi, "stack", d.stackBase, d.stackSize, d.key)
			r.AccountedBytes += d.stackSize
		}
		if d.heap != nil {
			l.auditHeap(t, r, d)
		}
	}
	// The root heap is shared; check it too when it exists.
	if l.root.heap != nil {
		l.auditHeap(t, r, l.root)
	}
	return keys
}

// auditRegion checks one provisioned region: fully mapped, and every page
// tagged with the domain's key.
func (l *Library) auditRegion(r *AuditReport, as *mem.AddressSpace, udi UDI, what string, base mem.Addr, size uint64, key int) {
	if base == 0 || size == 0 {
		r.findingf("domain %d has no %s region", udi, what)
		return
	}
	if !as.Mapped(base, int(size)) {
		r.findingf("domain %d %s region [0x%x,+%d) not fully mapped", udi, what, uint64(base), size)
		return
	}
	for off := uint64(0); off < size; off += mem.PageSize {
		if _, pkey, ok := as.PageInfo(base + mem.Addr(off)); !ok || pkey != key {
			r.findingf("domain %d %s page 0x%x tagged key %d, want %d",
				udi, what, uint64(base)+off, pkey, key)
			return
		}
	}
}

// auditHeap runs the TLSF consistency check on a domain heap, raising the
// domain key for the walk.
func (l *Library) auditHeap(t *proc.Thread, r *AuditReport, d *Domain) {
	c := t.CPU()
	l.wrpkru(t, mem.PKRUAllow(c.PKRU(), d.key, true))
	err := func() error {
		d.lockHeap()
		defer d.unlockHeap()
		return d.heap.Check(c)
	}()
	if err != nil {
		r.findingf("domain %d heap check: %v", d.udi, err)
	}
}

// auditPool validates the stack-reuse pool: keys still allocated and not
// shared with live domains, and — when scrub-on-discard is on — every
// pooled page zeroed, proving discard really scrubbed. Pooled heap
// regions (discarded exec-domain heaps that ride along with their
// stack) get the same treatment: mapped, accounted, and scrubbed.
func (l *Library) auditPool(r *AuditReport, as *mem.AddressSpace, keys map[int]UDI) {
	l.mu.Lock()
	pool := make([]*pooledStack, len(l.stackPool))
	copy(pool, l.stackPool)
	l.mu.Unlock()
	r.PooledStacks = len(pool)
	buf := make([]byte, mem.PageSize)
	// scrubbed checks every page of a pooled region reads back zero.
	scrubbed := func(what string, i int, base mem.Addr, size uint64) {
		for off := uint64(0); off < size; off += mem.PageSize {
			if err := as.KernelRead(base+mem.Addr(off), buf); err != nil {
				r.findingf("pooled %s %d unreadable at +0x%x: %v", what, i, off, err)
				return
			}
			for _, b := range buf {
				if b != 0 {
					r.findingf("pooled %s %d not scrubbed at +0x%x", what, i, off)
					return
				}
			}
		}
	}
	for i, ps := range pool {
		if owner, dup := keys[ps.key]; dup {
			r.findingf("pooled stack %d key %d still tags live domain %d", i, ps.key, owner)
		}
		if !as.KeyAllocated(ps.key) {
			r.findingf("pooled stack %d key %d not allocated", i, ps.key)
		}
		if ps.heapBase != 0 {
			if !as.Mapped(ps.heapBase, int(ps.heapSize)) {
				r.findingf("pooled heap %d region not mapped", i)
			} else {
				r.PooledHeaps++
				r.AccountedBytes += ps.heapSize
				if l.scrubOnDiscard {
					scrubbed("heap", i, ps.heapBase, ps.heapSize)
				}
			}
		}
		if !as.Mapped(ps.stk.Base(), int(ps.size)) {
			r.findingf("pooled stack %d region not mapped", i)
			continue
		}
		r.AccountedBytes += ps.size
		if l.scrubOnDiscard {
			scrubbed("stack", i, ps.stk.Base(), ps.size)
		}
	}
}
