package core

import (
	"errors"
	"math/rand"
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// TestRandomizedDomainLifecycles drives a random interleaving of the
// Table-I operations on one thread and checks the monitor's invariants
// continuously:
//
//  1. the thread is always in a well-defined current domain;
//  2. after any completed Guard, the thread is back where it started;
//  3. rewinds never kill the process;
//  4. protection keys never leak (every Init either succeeds or leaves
//     the key pool unchanged, and Destroy releases what Init took unless
//     the stack pool retains it).
func TestRandomizedDomainLifecycles(t *testing.T) {
	p := proc.NewProcess("fuzz", proc.WithSeed(123))
	l, err := Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))

	err = p.Attach("main", func(th *proc.Thread) error {
		for iter := 0; iter < 400; iter++ {
			udi := UDI(1 + rng.Intn(4))
			action := rng.Intn(10)
			switch {
			case action < 5:
				// Guarded round trip with random inner behaviour.
				inner := rng.Intn(4)
				gerr := l.Guard(th, udi, func() error {
					switch inner {
					case 0:
						// Empty body.
						return nil
					case 1:
						// Enter/exit with domain-heap traffic.
						ptr, err := l.Malloc(th, udi, uint64(8+rng.Intn(500)))
						if err != nil {
							return err
						}
						if err := l.Enter(th, udi); err != nil {
							return err
						}
						th.CPU().WriteU64(ptr, uint64(iter))
						if err := l.Exit(th); err != nil {
							return err
						}
						return l.Free(th, udi, ptr)
					case 2:
						// Fault inside the domain (rewind).
						if err := l.Enter(th, udi); err != nil {
							return err
						}
						th.CPU().WriteU8(0xF00D0000, 1)
						return nil
					default:
						// Nested guard one level deeper.
						inner := UDI(10 + rng.Intn(3))
						if err := l.Enter(th, udi); err != nil {
							return err
						}
						gerr := l.Guard(th, inner, func() error {
							if err := l.Enter(th, inner); err != nil {
								return err
							}
							if rng.Intn(2) == 0 {
								th.CPU().WriteU8(0xF00D0000, 1)
							}
							return l.Exit(th)
						})
						var abn *AbnormalExit
						if gerr != nil && !errors.As(gerr, &abn) {
							// The inner domain may persist from an earlier
							// iteration under a different parent; a domain
							// is only re-guardable by its own parent.
							if errors.Is(gerr, ErrNotChild) || errors.Is(gerr, ErrTooManyDomains) {
								return l.Exit(th)
							}
							return gerr
						}
						if cur := l.Current(th); cur != udi {
							t.Fatalf("iter %d: after nested guard current=%d want %d", iter, cur, udi)
						}
						return l.Exit(th)
					}
				}, Accessible(), HeapSize(64*1024))
				var abn *AbnormalExit
				if gerr != nil && !errors.As(gerr, &abn) {
					// Key exhaustion is a legal outcome when many domains
					// are live.
					if errors.Is(gerr, ErrTooManyDomains) {
						continue
					}
					t.Fatalf("iter %d: guard error %v", iter, gerr)
				}
			case action < 7:
				// Destroy if it exists.
				err := l.Destroy(th, udi, DestroyOption(rng.Intn(2)))
				if err != nil && !errors.Is(err, ErrUnknownDomain) && !errors.Is(err, ErrNotChild) {
					t.Fatalf("iter %d: destroy error %v", iter, err)
				}
			case action < 8:
				// Plain init (no guard); may already exist.
				err := l.InitDomain(th, udi, Accessible(), HeapSize(64*1024))
				if err != nil && !errors.Is(err, ErrAlreadyInit) && !errors.Is(err, ErrTooManyDomains) {
					t.Fatalf("iter %d: init error %v", iter, err)
				}
			case action < 9:
				// Root heap traffic interleaved.
				ptr, err := l.Malloc(th, RootUDI, uint64(8+rng.Intn(200)))
				if err != nil {
					return err
				}
				if err := l.Free(th, RootUDI, ptr); err != nil {
					return err
				}
			default:
				// Deinit of possibly-unknown domains.
				err := l.Deinit(th, udi)
				if err != nil && !errors.Is(err, ErrUnknownDomain) {
					t.Fatalf("iter %d: deinit error %v", iter, err)
				}
			}
			// Invariant: outside a guard, we are in the root domain with
			// the root policy installed.
			if cur := l.Current(th); cur != RootUDI {
				t.Fatalf("iter %d: current = %d outside guards", iter, cur)
			}
			if ad, _ := mem.PKRURights(th.CPU().PKRU(), l.RootKey()); ad {
				t.Fatalf("iter %d: root key inaccessible in root domain", iter)
			}
			if ad, _ := mem.PKRURights(th.CPU().PKRU(), l.monitorKey); !ad {
				t.Fatalf("iter %d: monitor key accessible outside monitor", iter)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Killed() {
		t.Fatalf("process died during fuzz: %v", p.ExitError())
	}
}

// TestRandomizedMultithreaded runs the lifecycle fuzz on several threads
// concurrently, sharing the root domain and a common data domain.
func TestRandomizedMultithreaded(t *testing.T) {
	p := proc.NewProcess("fuzz-mt", proc.WithSeed(321))
	l, err := Setup(p)
	if err != nil {
		t.Fatal(err)
	}
	const shared = UDI(9)
	if err := p.Attach("init", func(th *proc.Thread) error {
		return l.InitDomain(th, shared, AsData(), Accessible(), HeapSize(1<<20))
	}); err != nil {
		t.Fatal(err)
	}

	worker := func(seed int64) func(th *proc.Thread) error {
		return func(th *proc.Thread) error {
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 120; iter++ {
				gerr := l.Guard(th, 1, func() error {
					if err := l.DProtect(th, 1, shared, mem.ProtRW); err != nil {
						return err
					}
					if err := l.Enter(th, 1); err != nil {
						return err
					}
					if rng.Intn(4) == 0 {
						th.CPU().WriteU8(0xF00D0000, 1) // rewind
					}
					return l.Exit(th)
				}, Accessible())
				var abn *AbnormalExit
				if gerr != nil && !errors.As(gerr, &abn) {
					return gerr
				}
				// Shared data-domain traffic from root (accessible child
				// of the shared root domain).
				ptr, err := l.Malloc(th, shared, uint64(16+rng.Intn(100)))
				if err != nil {
					return err
				}
				th.CPU().WriteU64(ptr, uint64(iter))
				if err := l.Free(th, shared, ptr); err != nil {
					return err
				}
			}
			return nil
		}
	}
	h1 := p.Spawn("w1", worker(1))
	h2 := p.Spawn("w2", worker(2))
	h3 := p.Spawn("w3", worker(3))
	for _, h := range []*proc.Handle{h1, h2, h3} {
		if err := h.Join(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Killed() {
		t.Fatalf("process died: %v", p.ExitError())
	}
}
