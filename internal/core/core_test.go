package core

import (
	"errors"
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
)

// newLib builds a process with SDRaD set up.
func newLib(t testing.TB, opts ...SetupOption) (*proc.Process, *Library) {
	t.Helper()
	p := proc.NewProcess("test", proc.WithSeed(7))
	l, err := Setup(p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p, l
}

// run attaches a main thread and runs body, failing the test on error.
func run(t *testing.T, p *proc.Process, body func(th *proc.Thread) error) {
	t.Helper()
	if err := p.Attach("main", body); err != nil {
		t.Fatal(err)
	}
}

func TestSetupAllocatesKeys(t *testing.T) {
	p, l := newLib(t)
	if l.RootKey() == 0 {
		t.Error("root key is key 0")
	}
	if l.Process() != p {
		t.Error("process not recorded")
	}
	if l.MonitorBase() == 0 {
		t.Error("monitor domain not mapped")
	}
}

func TestThreadStartsInRoot(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if got := l.Current(th); got != RootUDI {
			t.Errorf("current = %d", got)
		}
		// Root policy: root key and key 0 writable, monitor key denied.
		pkru := th.CPU().PKRU()
		if ad, wd := mem.PKRURights(pkru, l.RootKey()); ad || wd {
			t.Error("root key not writable in root domain")
		}
		if ad, _ := mem.PKRURights(pkru, 0); ad {
			t.Error("key 0 not accessible in root domain")
		}
		return nil
	})
}

func TestMonitorDataDomainProtected(t *testing.T) {
	// R4: domain code (even root-domain code) must not be able to touch
	// the monitor data domain; the attempt is fatal.
	p, l := newLib(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		th.CPU().WriteU64(l.MonitorBase(), 0xABAD1DEA)
		return nil
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want crash", err)
	}
	if crash.Info.Code != int(mem.CodePkuErr) {
		t.Errorf("code = %d, want SEGV_PKUERR", crash.Info.Code)
	}
}

func TestRootMallocFree(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		a, err := l.Malloc(th, RootUDI, 100)
		if err != nil {
			return err
		}
		th.CPU().Memset(a, 0x7F, 100)
		if th.CPU().ReadU8(a+99) != 0x7F {
			t.Error("root heap data lost")
		}
		return l.Free(th, RootUDI, a)
	})
}

func TestInitDomainErrors(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, RootUDI); !errors.Is(err, ErrRootOperation) {
			t.Errorf("init root err = %v", err)
		}
		if err := l.InitDomain(th, 1); err != nil {
			return err
		}
		if err := l.InitDomain(th, 1); !errors.Is(err, ErrAlreadyInit) {
			t.Errorf("double init err = %v", err)
		}
		if err := l.InitDomain(th, 2, AsData()); err != nil {
			return err
		}
		if err := l.InitDomain(th, 2); !errors.Is(err, ErrUDIInUse) {
			t.Errorf("exec over data err = %v", err)
		}
		// Grandparent handler from root parent is invalid.
		if err := l.InitDomain(th, 3, HandlerAtGrandparent()); !errors.Is(err, ErrNoGrandparent) {
			t.Errorf("grandparent-from-root err = %v", err)
		}
		return nil
	})
}

func TestEnterRequiresGuardContext(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, 1); err != nil {
			return err
		}
		if err := l.Enter(th, 1); !errors.Is(err, ErrNoContext) {
			t.Errorf("enter without guard err = %v", err)
		}
		if err := l.Enter(th, 99); !errors.Is(err, ErrUnknownDomain) {
			t.Errorf("enter unknown err = %v", err)
		}
		if err := l.Exit(th); !errors.Is(err, ErrNotEntered) {
			t.Errorf("exit at root err = %v", err)
		}
		return nil
	})
}

// TestListing1Lifecycle follows the paper's Listing 1: allocate the
// argument in an accessible nested domain, enter, compute, exit, read the
// result back, destroy.
func TestListing1Lifecycle(t *testing.T) {
	p, l := newLib(t)
	const udiF = UDI(5)
	run(t, p, func(th *proc.Thread) error {
		arg := []byte("argument-bytes")
		var result byte
		err := l.Guard(th, udiF, func() error {
			adr, err := l.Malloc(th, udiF, uint64(len(arg)))
			if err != nil {
				return err
			}
			l.WriteBytes(th, adr, arg) // copy arg into the domain
			if err := l.Enter(th, udiF); err != nil {
				return err
			}
			if got := l.Current(th); got != udiF {
				t.Errorf("current inside = %d", got)
			}
			// F: checksum the argument inside the domain.
			var sum byte
			for i := 0; i < len(arg); i++ {
				sum += th.CPU().ReadU8(adr + mem.Addr(i))
			}
			// Store result in domain heap, retrieve after exit (the
			// domain is accessible to the parent).
			rptr, err := l.Malloc(th, udiF, 8)
			if err != nil {
				return err
			}
			th.CPU().WriteU8(rptr, sum)
			if err := l.Exit(th); err != nil {
				return err
			}
			result = th.CPU().ReadU8(rptr) // parent reads accessible child
			if err := l.Free(th, udiF, rptr); err != nil {
				return err
			}
			return l.Free(th, udiF, adr)
		}, Accessible())
		if err != nil {
			return err
		}
		var want byte
		for _, b := range arg {
			want += b
		}
		if result != want {
			t.Errorf("result = %d, want %d", result, want)
		}
		return l.Destroy(th, udiF, NoHeapMerge)
	})
	if got := l.Stats().DomainSwitches.Load(); got != 2 {
		t.Errorf("switches = %d, want 2", got)
	}
}

func TestNestedDomainCannotWriteRoot(t *testing.T) {
	// R3: the root domain is read-only from nested domains; a write is a
	// PKU violation triggering an abnormal exit.
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		rootBuf, err := l.Malloc(th, RootUDI, 64)
		if err != nil {
			return err
		}
		th.CPU().WriteU8(rootBuf, 42)
		err = l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			// Reading root data is allowed (globals are readable)...
			if got := th.CPU().ReadU8(rootBuf); got != 42 {
				t.Errorf("read from nested = %d", got)
			}
			// ...but writing root data faults.
			th.CPU().WriteU8(rootBuf, 99)
			t.Error("unreachable: write must fault")
			return nil
		})
		var abn *AbnormalExit
		if !errors.As(err, &abn) {
			t.Fatalf("err = %v, want AbnormalExit", err)
		}
		if abn.FailedUDI != 1 {
			t.Errorf("failed udi = %d", abn.FailedUDI)
		}
		if abn.Code != int(mem.CodePkuErr) {
			t.Errorf("code = %d, want PKUERR", abn.Code)
		}
		// The write never landed.
		if got := th.CPU().ReadU8(rootBuf); got != 42 {
			t.Errorf("root data corrupted: %d", got)
		}
		// Execution continues in the root domain.
		if l.Current(th) != RootUDI {
			t.Error("not back in root")
		}
		return nil
	})
	if p.Killed() {
		t.Error("process died despite rewind")
	}
	if got := l.Stats().Rewinds.Load(); got != 1 {
		t.Errorf("rewinds = %d", got)
	}
}

func TestAbnormalExitDiscardsDomain(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		var heapPtr mem.Addr
		err := l.Guard(th, 1, func() error {
			var err error
			heapPtr, err = l.Malloc(th, 1, 64)
			if err != nil {
				return err
			}
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			th.CPU().WriteU8(0xDEAD0000, 1) // unmapped -> MAPERR
			return nil
		}, Accessible())
		var abn *AbnormalExit
		if !errors.As(err, &abn) || abn.Code != int(mem.CodeMapErr) {
			t.Fatalf("err = %v", err)
		}
		// Domain is gone: its heap pages left the domain — either unmapped
		// or parked, scrubbed, in the reuse pool — and the UDI is free to
		// re-initialize.
		if p.AddressSpace().Mapped(heapPtr, 1) && !l.HeapPooled(heapPtr) {
			t.Error("discarded domain heap still mapped outside the reuse pool")
		}
		if err := l.InitDomain(th, 1); err != nil {
			t.Errorf("re-init after discard: %v", err)
		}
		return nil
	})
}

func TestHeapPoolingReusesRegionAfterRewind(t *testing.T) {
	// A rewind parks the discarded exec-domain heap alongside its stack in
	// the reuse pool; the next provisioning of the domain reuses the same
	// region instead of mapping a fresh one, so mapped bytes stay flat
	// across crash/re-init cycles.
	p, l := newLib(t, WithScrubOnDiscard(true))
	run(t, p, func(th *proc.Thread) error {
		crash := func() mem.Addr {
			var heapPtr mem.Addr
			err := l.Guard(th, 1, func() error {
				var err error
				heapPtr, err = l.Malloc(th, 1, 64)
				if err != nil {
					return err
				}
				if err := l.Enter(th, 1); err != nil {
					return err
				}
				th.CPU().WriteU8(0xDEAD0000, 1) // unmapped -> rewind
				return nil
			}, Accessible())
			var abn *AbnormalExit
			if !errors.As(err, &abn) {
				t.Fatalf("guard err = %v", err)
			}
			return heapPtr
		}
		first := crash()
		if !l.HeapPooled(first) {
			t.Fatal("discarded heap not parked in the reuse pool")
		}
		rep := l.Audit(th)
		if rep.PooledHeaps == 0 {
			t.Error("audit reports no pooled heaps")
		}
		if len(rep.Findings) != 0 {
			t.Errorf("audit findings after pooling: %v", rep.Findings)
		}
		mappedAfterFirst := p.AddressSpace().Stats().MappedBytes.Load()
		second := crash()
		if second != first {
			t.Errorf("pooled heap not reused: first alloc 0x%x, second 0x%x", first, second)
		}
		if got := p.AddressSpace().Stats().MappedBytes.Load(); got != mappedAfterFirst {
			t.Errorf("mapped bytes drifted across pooled rewind cycle: %d, want %d",
				got, mappedAfterFirst)
		}
		return nil
	})
}

func TestStackSmashOnExitRewinds(t *testing.T) {
	// The domain overflows a stack buffer far enough to clobber the
	// Enter return record; the canary check on Exit detects it
	// (__stack_chk_fail analog) and the guard rewinds with SIGABRT.
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		err := l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			d := l.state(th).current
			f, err := d.stk.PushFrame(th.CPU(), 32)
			if err != nil {
				return err
			}
			// Overflow: 32 locals + own canary + the Enter record canary
			// above it.
			th.CPU().Memset(f.Locals(), 0x41, 32+8+8)
			return l.Exit(th)
		})
		var abn *AbnormalExit
		if !errors.As(err, &abn) {
			t.Fatalf("err = %v", err)
		}
		if abn.Signal != sig.SIGABRT {
			t.Errorf("signal = %v, want SIGABRT", abn.Signal)
		}
		return nil
	})
}

func TestRootFaultTerminatesProcess(t *testing.T) {
	p, l := newLib(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		// Even inside a Guard, a fault attributed to the ROOT domain is
		// not recoverable (paper: abnormal root exit terminates).
		return l.Guard(th, 1, func() error {
			// Not entered: current is still root.
			th.CPU().WriteU8(0xDEAD0000, 1)
			return nil
		})
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want crash", err)
	}
	if !p.Killed() {
		t.Error("process survived root fault")
	}
}

func TestPersistentDomainKeepsState(t *testing.T) {
	p, l := newLib(t)
	const udi = UDI(4)
	run(t, p, func(th *proc.Thread) error {
		var ptr mem.Addr
		// First guard: allocate and store.
		err := l.Guard(th, udi, func() error {
			var err error
			ptr, err = l.Malloc(th, udi, 16)
			if err != nil {
				return err
			}
			if err := l.Enter(th, udi); err != nil {
				return err
			}
			th.CPU().WriteU64(ptr, 0xC0FFEE)
			return l.Exit(th)
		}, Accessible())
		if err != nil {
			return err
		}
		// Second guard on the same domain (persistent pattern): state
		// survives.
		return l.Guard(th, udi, func() error {
			if err := l.Enter(th, udi); err != nil {
				return err
			}
			if got := th.CPU().ReadU64(ptr); got != 0xC0FFEE {
				t.Errorf("persistent state = %#x", got)
			}
			return l.Exit(th)
		})
	})
}

func TestGuardDoubleInit(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		return l.Guard(th, 1, func() error {
			// Guarding an already-guarded domain is the C library's
			// "already initialized in the current thread" error.
			if err := l.Guard(th, 1, func() error { return nil }); !errors.Is(err, ErrAlreadyInit) {
				t.Errorf("nested guard err = %v", err)
			}
			return nil
		})
	})
}

func TestTransientHeapMerge(t *testing.T) {
	p, l := newLib(t)
	const udi = UDI(2)
	run(t, p, func(th *proc.Thread) error {
		// Root needs its heap initialized to receive the merge.
		warm, err := l.Malloc(th, RootUDI, 8)
		if err != nil {
			return err
		}
		defer func() { _ = l.Free(th, RootUDI, warm) }()

		var live mem.Addr
		err = l.Guard(th, udi, func() error {
			live, err = l.Malloc(th, udi, 32)
			if err != nil {
				return err
			}
			th.CPU().WriteU64(live, 0xFACE)
			if err := l.Enter(th, udi); err != nil {
				return err
			}
			return l.Exit(th)
		}, Accessible())
		if err != nil {
			return err
		}
		// Transient pattern with merge: the allocation survives into the
		// parent (root) domain.
		if err := l.Destroy(th, udi, HeapMerge); err != nil {
			return err
		}
		if got := th.CPU().ReadU64(live); got != 0xFACE {
			t.Errorf("merged data = %#x", got)
		}
		// The merged block is now managed (and freeable) by root.
		if err := l.Free(th, RootUDI, live); err != nil {
			t.Errorf("freeing merged block: %v", err)
		}
		// Pages were retagged to the root key.
		_, pkey, ok := p.AddressSpace().PageInfo(live)
		if !ok || pkey != l.RootKey() {
			t.Errorf("merged page key = %d, want root %d", pkey, l.RootKey())
		}
		return nil
	})
}

func TestHeapMergeRequiresAccessible(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.Guard(th, 2, func() error { return nil }); err != nil {
			return err
		}
		if err := l.Destroy(th, 2, HeapMerge); !errors.Is(err, ErrNotChild) {
			t.Errorf("merge of inaccessible err = %v", err)
		}
		return l.Destroy(th, 2, NoHeapMerge)
	})
}

func TestInaccessibleChildUnreadableByParent(t *testing.T) {
	p, l := newLib(t)
	err := p.Attach("main", func(th *proc.Thread) error {
		var secret mem.Addr
		err := l.Guard(th, 3, func() error {
			if err := l.Enter(th, 3); err != nil {
				return err
			}
			var err error
			secret, err = l.Malloc(th, 3, 16)
			if err != nil {
				return err
			}
			th.CPU().WriteU64(secret, 0x5EC12E7)
			return l.Exit(th)
		}) // NOT Accessible
		if err != nil {
			return err
		}
		// Parent (root) read of the inaccessible child faults — and since
		// the fault is attributed to root, the process dies.
		_ = th.CPU().ReadU64(secret)
		return nil
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want crash (root cannot read inaccessible child)", err)
	}
	if crash.Info.Code != int(mem.CodePkuErr) {
		t.Errorf("code = %d", crash.Info.Code)
	}
}

func TestAccessibleChildReadableByParent(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		var ptr mem.Addr
		err := l.Guard(th, 3, func() error {
			var err error
			ptr, err = l.Malloc(th, 3, 16)
			if err != nil {
				return err
			}
			if err := l.Enter(th, 3); err != nil {
				return err
			}
			th.CPU().WriteU64(ptr, 0xAB)
			return l.Exit(th)
		}, Accessible())
		if err != nil {
			return err
		}
		if got := th.CPU().ReadU64(ptr); got != 0xAB {
			t.Errorf("parent read = %#x", got)
		}
		th.CPU().WriteU64(ptr, 0xCD) // parent may also write
		return nil
	})
}

func TestDataDomainGrants(t *testing.T) {
	p, l := newLib(t)
	const (
		shared = UDI(10)
		worker = UDI(11)
	)
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, shared, AsData(), Accessible()); err != nil {
			return err
		}
		buf, err := l.Malloc(th, shared, 64)
		if err != nil {
			return err
		}
		th.CPU().WriteU64(buf, 0xDA7A)

		// Worker domain with read-only grant on the shared data domain.
		if err := l.InitDomain(th, worker); err != nil {
			return err
		}
		if err := l.DProtect(th, worker, shared, mem.ProtRead); err != nil {
			return err
		}
		err = l.Guard(th, 12, func() error { return nil }) // unrelated guard to exercise paths
		if err != nil {
			return err
		}

		// Enter worker under guard: read succeeds, write rewinds.
		gerr := l.Guard(th, worker, func() error {
			if err := l.Enter(th, worker); err != nil {
				return err
			}
			if got := th.CPU().ReadU64(buf); got != 0xDA7A {
				t.Errorf("granted read = %#x", got)
			}
			th.CPU().WriteU64(buf, 1) // read-only grant: faults
			return nil
		})
		var abn *AbnormalExit
		if !errors.As(gerr, &abn) || abn.Code != int(mem.CodePkuErr) {
			t.Fatalf("write with RO grant: %v", gerr)
		}

		// Upgrade to RW (worker domain was discarded by the rewind; use a
		// fresh one).
		const worker2 = UDI(13)
		if err := l.InitDomain(th, worker2); err != nil {
			return err
		}
		if err := l.DProtect(th, worker2, shared, mem.ProtRW); err != nil {
			return err
		}
		return l.Guard(th, worker2, func() error {
			if err := l.Enter(th, worker2); err != nil {
				return err
			}
			th.CPU().WriteU64(buf, 0xBEEF)
			return l.Exit(th)
		})
	})
}

func TestGuardOnExistingDomainNeedsValidParent(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		// Create domain 1 as child of root.
		if err := l.Guard(th, 1, func() error { return nil }); err != nil {
			return err
		}
		// Re-guard domain 1 from inside another domain: parent mismatch.
		return l.Guard(th, 2, func() error {
			if err := l.Enter(th, 2); err != nil {
				return err
			}
			if err := l.Guard(th, 1, func() error { return nil }); !errors.Is(err, ErrNotChild) {
				t.Errorf("re-guard from wrong parent err = %v", err)
			}
			return l.Exit(th)
		})
	})
}

func TestDeinitInvalidatesContext(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		return l.Guard(th, 1, func() error {
			if err := l.Deinit(th, 1); err != nil {
				return err
			}
			if err := l.Enter(th, 1); !errors.Is(err, ErrNoContext) {
				t.Errorf("enter after deinit err = %v", err)
			}
			return nil
		})
	})
}

func TestDeinitErrors(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.Deinit(th, 42); !errors.Is(err, ErrUnknownDomain) {
			t.Errorf("deinit unknown err = %v", err)
		}
		if err := l.Deinit(th, RootUDI); !errors.Is(err, ErrRootOperation) {
			t.Errorf("deinit root err = %v", err)
		}
		return nil
	})
}

func TestDestroyErrors(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.Destroy(th, 42, NoHeapMerge); !errors.Is(err, ErrUnknownDomain) {
			t.Errorf("destroy unknown err = %v", err)
		}
		if err := l.Destroy(th, RootUDI, NoHeapMerge); !errors.Is(err, ErrRootOperation) {
			t.Errorf("destroy root err = %v", err)
		}
		return l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			if err := l.Destroy(th, 1, NoHeapMerge); !errors.Is(err, ErrDomainBusy) {
				t.Errorf("destroy current err = %v", err)
			}
			return l.Exit(th)
		})
	})
}

func TestStackReusePool(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, 1); err != nil {
			return err
		}
		d1 := l.state(th).domains[1]
		base1 := d1.stackBase
		key1 := d1.key
		if err := l.Destroy(th, 1, NoHeapMerge); err != nil {
			return err
		}
		// The stack mapping survives destruction (reuse optimization).
		if !p.AddressSpace().Mapped(base1, 1) {
			t.Error("stack unmapped despite reuse pool")
		}
		if err := l.InitDomain(th, 2); err != nil {
			return err
		}
		d2 := l.state(th).domains[2]
		if d2.stackBase != base1 || d2.key != key1 {
			t.Errorf("stack not reused: base %#x->%#x key %d->%d",
				uint64(base1), uint64(d2.stackBase), key1, d2.key)
		}
		return l.Destroy(th, 2, NoHeapMerge)
	})
}

func TestStackReuseDisabled(t *testing.T) {
	p, l := newLib(t, WithStackReuse(false))
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, 1); err != nil {
			return err
		}
		d1 := l.state(th).domains[1]
		base1 := d1.stackBase
		if err := l.Destroy(th, 1, NoHeapMerge); err != nil {
			return err
		}
		if p.AddressSpace().Mapped(base1, 1) {
			t.Error("stack still mapped with reuse disabled")
		}
		return nil
	})
}

func TestKeyExhaustion(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		// Keys: 0 (default), root, monitor => 13 left.
		var made []UDI
		for i := UDI(1); ; i++ {
			err := l.InitDomain(th, i)
			if err != nil {
				if !errors.Is(err, ErrTooManyDomains) {
					t.Fatalf("unexpected init error: %v", err)
				}
				break
			}
			made = append(made, i)
		}
		if len(made) != 13 {
			t.Errorf("created %d domains before exhaustion, want 13", len(made))
		}
		// Destroying one frees a slot (stack pooled with its key).
		if err := l.Destroy(th, made[0], NoHeapMerge); err != nil {
			return err
		}
		if err := l.InitDomain(th, 99); err != nil {
			t.Errorf("init after destroy: %v", err)
		}
		return nil
	})
}

func TestHandlerAtGrandparentFig2(t *testing.T) {
	// Figure 2: transient outer domain T, persistent nested domain P with
	// handler-at-grandparent. A fault in P rewinds past T's guard to the
	// root-level recovery point.
	p, l := newLib(t)
	const (
		udiT = UDI(1)
		udiP = UDI(2)
	)
	run(t, p, func(th *proc.Thread) error {
		reachedAfterInner := false
		err := l.Guard(th, udiT, func() error {
			if err := l.Enter(th, udiT); err != nil {
				return err
			}
			err := l.Guard(th, udiP, func() error {
				if err := l.Enter(th, udiP); err != nil {
					return err
				}
				th.CPU().WriteU8(0xDEAD0000, 1) // fault inside P
				return nil
			}, HandlerAtGrandparent())
			// Unreachable: the rewind targets T's scope and unwinds
			// through this point.
			reachedAfterInner = true
			return err
		})
		var abn *AbnormalExit
		if !errors.As(err, &abn) {
			t.Fatalf("outer guard err = %v", err)
		}
		if abn.FailedUDI != udiP {
			t.Errorf("failed udi = %d, want %d (P)", abn.FailedUDI, udiP)
		}
		if reachedAfterInner {
			t.Error("inner guard returned instead of unwinding")
		}
		if l.Current(th) != RootUDI {
			t.Errorf("current = %d, want root", l.Current(th))
		}
		// T survives (memory intact) but its context is gone; the error
		// handler may destroy or re-guard it (paper's choice).
		if err := l.Enter(th, udiT); !errors.Is(err, ErrNoContext) {
			t.Errorf("T context after rewind = %v", err)
		}
		return l.Destroy(th, udiT, NoHeapMerge)
	})
	if p.Killed() {
		t.Error("process died")
	}
}

func TestDeepNestingThreeLevels(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		return l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			err := l.Guard(th, 2, func() error {
				if err := l.Enter(th, 2); err != nil {
					return err
				}
				err := l.Guard(th, 3, func() error {
					if err := l.Enter(th, 3); err != nil {
						return err
					}
					if l.Current(th) != 3 {
						t.Error("not in level-3 domain")
					}
					return l.Exit(th)
				})
				if err != nil {
					return err
				}
				if l.Current(th) != 2 {
					t.Error("not back in level 2")
				}
				return l.Exit(th)
			})
			if err != nil {
				return err
			}
			return l.Exit(th)
		})
	})
}

func TestRewindFromMiddleLevel(t *testing.T) {
	// Fault in level-2 domain: level-2 guard catches; level-1 continues.
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		return l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			err := l.Guard(th, 2, func() error {
				if err := l.Enter(th, 2); err != nil {
					return err
				}
				th.CPU().WriteU8(0xDEAD0000, 1)
				return nil
			})
			var abn *AbnormalExit
			if !errors.As(err, &abn) || abn.FailedUDI != 2 {
				t.Fatalf("inner guard err = %v", err)
			}
			if l.Current(th) != 1 {
				t.Errorf("current = %d, want 1", l.Current(th))
			}
			// Level-1 can keep working after the nested rewind.
			ptr, err := l.Malloc(th, 1, 8)
			if err != nil {
				return err
			}
			th.CPU().WriteU64(ptr, 7)
			return l.Exit(th)
		}, Accessible())
	})
}

func TestMultithreadedIsolation(t *testing.T) {
	p, l := newLib(t)
	const udi = UDI(6)
	barrier := make(chan struct{})
	worker := func(val byte) func(th *proc.Thread) error {
		return func(th *proc.Thread) error {
			// Same UDI on two threads: independent domains.
			return l.Guard(th, udi, func() error {
				ptr, err := l.Malloc(th, udi, 8)
				if err != nil {
					return err
				}
				if err := l.Enter(th, udi); err != nil {
					return err
				}
				th.CPU().WriteU8(ptr, val)
				<-barrier
				if got := th.CPU().ReadU8(ptr); got != val {
					t.Errorf("thread saw %d, want %d", got, val)
				}
				return l.Exit(th)
			}, Accessible())
		}
	}
	h1 := p.Spawn("w1", worker(1))
	h2 := p.Spawn("w2", worker(2))
	close(barrier)
	if err := h1.Join(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Join(); err != nil {
		t.Fatal(err)
	}
}

func TestRewindOnOneThreadLeavesOthersRunning(t *testing.T) {
	p, l := newLib(t)
	faulted := make(chan struct{})
	hVictim := p.Spawn("victim", func(th *proc.Thread) error {
		err := l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			th.CPU().WriteU8(0xDEAD0000, 1)
			return nil
		})
		close(faulted)
		var abn *AbnormalExit
		if !errors.As(err, &abn) {
			t.Errorf("victim err = %v", err)
		}
		return nil
	})
	hOther := p.Spawn("other", func(th *proc.Thread) error {
		<-faulted
		// The other thread is unaffected: it can create and use domains.
		return l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			return l.Exit(th)
		})
	})
	if err := hVictim.Join(); err != nil {
		t.Fatal(err)
	}
	if err := hOther.Join(); err != nil {
		t.Fatal(err)
	}
	if p.Killed() {
		t.Error("process died")
	}
}

func TestMallocResolutionErrors(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if _, err := l.Malloc(th, 42, 8); !errors.Is(err, ErrUnknownDomain) {
			t.Errorf("malloc unknown err = %v", err)
		}
		// Inaccessible child: parent cannot malloc into it.
		if err := l.InitDomain(th, 1); err != nil {
			return err
		}
		if _, err := l.Malloc(th, 1, 8); !errors.Is(err, ErrNotChild) {
			t.Errorf("malloc into inaccessible err = %v", err)
		}
		// Free into a domain whose heap was never initialized.
		if err := l.InitDomain(th, 2, Accessible()); err != nil {
			return err
		}
		if err := l.Free(th, 2, 0x1000); err == nil {
			t.Error("free with uninitialized heap succeeded")
		}
		return nil
	})
}

func TestHeapExhaustionError(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, 1, Accessible(), HeapSize(32*1024)); err != nil {
			return err
		}
		if _, err := l.Malloc(th, 1, 1<<20); !errors.Is(err, ErrHeapExhausted) {
			t.Errorf("oversized malloc err = %v", err)
		}
		return nil
	})
}

func TestScrubOnDiscard(t *testing.T) {
	p, l := newLib(t, WithScrubOnDiscard(true))
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, 1, Accessible()); err != nil {
			return err
		}
		d := l.state(th).domains[1]
		stackBase := d.stackBase
		ptr, err := l.Malloc(th, 1, 64)
		if err != nil {
			return err
		}
		th.CPU().Memset(ptr, 0x55, 64)
		if err := l.Destroy(th, 1, NoHeapMerge); err != nil {
			return err
		}
		// The pooled (still mapped) stack was scrubbed.
		buf := make([]byte, 64)
		if err := p.AddressSpace().KernelRead(stackBase, buf); err != nil {
			return err
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("stack not scrubbed")
			}
		}
		return nil
	})
}

func TestDProtectErrors(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if err := l.InitDomain(th, 1); err != nil {
			return err
		}
		if err := l.DProtect(th, 1, 42, mem.ProtRead); !errors.Is(err, ErrUnknownDomain) {
			t.Errorf("dprotect unknown target err = %v", err)
		}
		if err := l.InitDomain(th, 2, AsData()); err != nil {
			return err
		}
		if err := l.DProtect(th, 42, 2, mem.ProtRead); !errors.Is(err, ErrNotChild) {
			t.Errorf("dprotect unknown subject err = %v", err)
		}
		// Revoking a grant with ProtNone.
		if err := l.DProtect(th, 1, 2, mem.ProtRW); err != nil {
			return err
		}
		if err := l.DProtect(th, 1, 2, mem.ProtNone); err != nil {
			return err
		}
		d := l.state(th).domains[1]
		if _, ok := d.grants[2]; ok {
			t.Error("grant not revoked")
		}
		return nil
	})
}

func TestMonitorLedgerCountsCalls(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		before := l.Stats().MonitorCalls.Load()
		if err := l.InitDomain(th, 1); err != nil {
			return err
		}
		if l.Stats().MonitorCalls.Load() <= before {
			t.Error("monitor calls not counted")
		}
		// The ledger inside the monitor data domain advanced too (sharded
		// into per-thread slots; sum them).
		var buf [mem.PageSize]byte
		if err := p.AddressSpace().KernelRead(l.MonitorBase(), buf[:]); err != nil {
			return err
		}
		var n uint64
		for off := 0; off < len(buf); off += 16 {
			n += uint64(buf[off]) | uint64(buf[off+1])<<8 | uint64(buf[off+2])<<16 | uint64(buf[off+3])<<24
		}
		if n == 0 {
			t.Error("monitor ledger empty")
		}
		return nil
	})
}

func TestKindString(t *testing.T) {
	if ExecDomain.String() != "exec" || DataDomain.String() != "data" || Kind(9).String() != "unknown" {
		t.Error("Kind.String broken")
	}
}

func TestAbnormalExitErrorText(t *testing.T) {
	e := &AbnormalExit{FailedUDI: 3, Signal: sig.SIGSEGV, Code: 4, Addr: 0x1000}
	if e.Error() == "" {
		t.Error("empty error")
	}
	inner := &mem.Fault{Addr: 0x1000, Kind: mem.AccessWrite, Code: mem.CodePkuErr}
	e.Cause = inner
	var f *mem.Fault
	if !errors.As(e, &f) {
		t.Error("unwrap chain broken")
	}
}
