package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
	"sdrad/internal/telemetry"
)

// faultGuard runs one guarded round in domain 1: malloc, enter, then
// either a store to an unmapped address (fault=true) or a clean exit.
func faultGuard(t *testing.T, l *Library, th *proc.Thread, addr mem.Addr, fault bool) error {
	t.Helper()
	return l.Guard(th, 1, func() error {
		if _, err := l.Malloc(th, 1, 64); err != nil {
			return err
		}
		if err := l.Enter(th, 1); err != nil {
			return err
		}
		if !fault {
			return l.Exit(th)
		}
		th.CPU().WriteU8(addr, 1)
		return nil
	}, Accessible())
}

func TestRewindForensicsReportFields(t *testing.T) {
	rec := telemetry.New(telemetry.Options{TransitionSampleShift: -1})
	p, l := newLib(t, WithTelemetry(rec))
	run(t, p, func(th *proc.Thread) error {
		err := faultGuard(t, l, th, 0xDEAD0000, true)
		var abn *AbnormalExit
		if !errors.As(err, &abn) {
			t.Fatalf("err = %v, want AbnormalExit", err)
		}
		if rec.Forensics().Added() != 1 {
			t.Fatalf("forensics Added() = %d, want 1", rec.Forensics().Added())
		}
		rep, ok := rec.Forensics().Last()
		if !ok {
			t.Fatal("no forensics report retained")
		}
		if rep.Seq != 1 || rep.RewindCount != 1 {
			t.Errorf("seq/rewind_count = %d/%d, want 1/1", rep.Seq, rep.RewindCount)
		}
		if rep.FailedUDI != int(abn.FailedUDI) || rep.FailedUDI != 1 {
			t.Errorf("failed_udi = %d, want %d", rep.FailedUDI, abn.FailedUDI)
		}
		if rep.SignalName != "SIGSEGV" || rep.Signal != int(sig.SIGSEGV) {
			t.Errorf("signal = %d/%q, want SIGSEGV", rep.Signal, rep.SignalName)
		}
		if rep.SiCode != int(mem.CodeMapErr) || rep.SiCodeName != "SEGV_MAPERR" {
			t.Errorf("si_code = %d/%q, want SEGV_MAPERR", rep.SiCode, rep.SiCodeName)
		}
		if rep.Addr != 0xDEAD0000 {
			t.Errorf("addr = %#x, want 0xDEAD0000", rep.Addr)
		}
		if n := len(rep.DomainStack); n == 0 || rep.DomainStack[n-1] != 1 {
			t.Errorf("domain_stack = %v, want failing domain 1 last", rep.DomainStack)
		}
		if rep.HeapBytes == 0 || rep.HeapPages == 0 || rep.StackBytes == 0 || rep.StackPages == 0 {
			t.Errorf("discard accounting empty: %+v", rep)
		}
		if rep.LiveAllocs != 1 {
			t.Errorf("live_allocs = %d, want 1 (one malloc, never freed)", rep.LiveAllocs)
		}
		if rep.Injected {
			t.Error("organic fault reported as injected")
		}
		if rep.TimeNs <= 0 {
			t.Errorf("time_ns = %d, want > 0", rep.TimeNs)
		}
		if rep.ThreadName != "main" {
			t.Errorf("thread_name = %q, want main", rep.ThreadName)
		}
		if rep.RewindLimit != 0 {
			t.Errorf("rewind_limit = %d, want 0 (unlimited)", rep.RewindLimit)
		}
		return nil
	})

	// The fault, the rewind, and the sampled transitions must all be on
	// the flight record; the rewind metric must carry the si_code label.
	kinds := map[string]bool{}
	for _, ev := range rec.Flight().Snapshot() {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"enter", "fault", "rewind"} {
		if !kinds[k] {
			t.Errorf("flight record missing %q event (have %v)", k, kinds)
		}
	}
	var b strings.Builder
	if err := rec.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`sdrad_rewinds_total{si_code="SEGV_MAPERR"} 1`,
		`sdrad_domain_faults_total{udi="1"} 1`,
		"sdrad_domain_transitions_total",
		"sdrad_monitor_calls_total",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStackCanaryForensics(t *testing.T) {
	// A canary-detected rewind has no memory fault: the report must say
	// SIGABRT/STACK_CHK and carry no faulting address.
	rec := telemetry.New(telemetry.Options{})
	p, l := newLib(t, WithTelemetry(rec))
	run(t, p, func(th *proc.Thread) error {
		err := l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			d := l.state(th).current
			f, err := d.stk.PushFrame(th.CPU(), 32)
			if err != nil {
				return err
			}
			th.CPU().Memset(f.Locals(), 0x41, 32+8+8)
			return l.Exit(th)
		})
		var abn *AbnormalExit
		if !errors.As(err, &abn) {
			t.Fatalf("err = %v, want AbnormalExit", err)
		}
		return nil
	})
	rep, ok := rec.Forensics().Last()
	if !ok {
		t.Fatal("no forensics report for canary rewind")
	}
	if rep.SignalName != "SIGABRT" || rep.SiCodeName != "STACK_CHK" {
		t.Fatalf("canary report = %s/%s, want SIGABRT/STACK_CHK", rep.SignalName, rep.SiCodeName)
	}
}

// scenarioResult captures everything externally observable about a fault
// scenario: what the guards returned, what the MMU logged, and how many
// rewinds the monitor absorbed.
type scenarioResult struct {
	exits   []AbnormalExit
	faults  []mem.FaultRecord
	rewinds int64
}

// runFaultScenario drives a fixed schedule — fault, clean round, fault —
// against a fresh process built with opts.
func runFaultScenario(t *testing.T, opts ...SetupOption) scenarioResult {
	t.Helper()
	p, l := newLib(t, opts...)
	var res scenarioResult
	run(t, p, func(th *proc.Thread) error {
		for i, fault := range []bool{true, false, true} {
			err := faultGuard(t, l, th, 0xDEAD0000+mem.Addr(i)<<12, fault)
			if !fault {
				if err != nil {
					t.Fatalf("clean round %d failed: %v", i, err)
				}
				continue
			}
			var abn *AbnormalExit
			if !errors.As(err, &abn) {
				t.Fatalf("round %d: err = %v, want AbnormalExit", i, err)
			}
			cp := *abn
			cp.Cause = nil // pointer identity differs across runs by construction
			res.exits = append(res.exits, cp)
		}
		return nil
	})
	res.faults = p.AddressSpace().RecentFaults()
	res.rewinds = l.Stats().Rewinds.Load()
	return res
}

// TestFaultSemanticsUnchangedByTelemetry is the regression guard for the
// recorder's observer role: with an attached recorder (sampling every
// transition, the most intrusive setting) the guards must return
// bit-identical AbnormalExits, the MMU must log a bit-identical fault
// sequence, and the monitor must absorb the same number of rewinds as a
// run with telemetry off.
func TestFaultSemanticsUnchangedByTelemetry(t *testing.T) {
	plain := runFaultScenario(t)
	rec := telemetry.New(telemetry.Options{TransitionSampleShift: -1})
	traced := runFaultScenario(t, WithTelemetry(rec))

	if !reflect.DeepEqual(plain.exits, traced.exits) {
		t.Errorf("AbnormalExits diverge:\n plain: %+v\ntraced: %+v", plain.exits, traced.exits)
	}
	if !reflect.DeepEqual(plain.faults, traced.faults) {
		t.Errorf("MMU fault logs diverge:\n plain: %+v\ntraced: %+v", plain.faults, traced.faults)
	}
	if plain.rewinds != traced.rewinds {
		t.Errorf("rewind counts diverge: plain %d, traced %d", plain.rewinds, traced.rewinds)
	}
	// And the recorder saw what the run produced: one report per rewind,
	// each matching the logged fault that caused it.
	if got := rec.Forensics().Added(); got != traced.rewinds {
		t.Fatalf("forensics Added() = %d, want %d (one report per rewind)", got, traced.rewinds)
	}
	reports := rec.Forensics().Reports()
	if len(reports) != len(traced.exits) {
		t.Fatalf("retained %d reports, want %d", len(reports), len(traced.exits))
	}
	for i, rep := range reports {
		if rep.SiCode != traced.exits[i].Code || rep.Addr != traced.exits[i].Addr {
			t.Errorf("report %d (code=%d addr=%#x) does not match exit (code=%d addr=%#x)",
				i, rep.SiCode, rep.Addr, traced.exits[i].Code, traced.exits[i].Addr)
		}
	}
}
