package core

import (
	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
	"sdrad/internal/stack"
	"sdrad/internal/telemetry"
)

// rewindPanic is the unwinding value that carries an abnormal domain exit
// from the point of detection to its recovery scope — the simulation's
// longjmp. It is created exclusively by the reference monitor's trap
// handler and consumed by the Guard whose scope it targets.
type rewindPanic struct {
	scope uint64
	exit  *AbnormalExit
}

// Guard establishes a recovery point for domain udi and runs body.
//
// It is the Go realization of the sdrad_init() double-return semantics
// (see the package comment): the domain is created (or re-validated, for
// the persistent pattern where a previous Guard deinitialized its
// context), body runs — typically allocating arguments in the domain,
// entering it, invoking the isolated function, and exiting — and then:
//
//   - on normal completion, Guard returns body's error and invalidates the
//     domain's recovery context (the automatic analog of the paper's rule
//     that a domain must be destroyed or deinitialized before the function
//     that initialized it returns);
//   - on an abnormal domain exit targeting this recovery point, Guard
//     returns an *AbnormalExit describing the failed domain;
//   - on an abnormal exit targeting an outer recovery point
//     (handler-at-grandparent), Guard performs its bookkeeping and lets
//     the rewind continue unwinding.
//
// The domain itself persists across Guards unless destroyed: call Destroy
// inside or after body for the transient pattern, or re-Guard the same
// udi for the persistent pattern.
func (l *Library) Guard(t *proc.Thread, udi UDI, body func() error, opts ...InitOption) error {
	ts := l.state(t)
	d, ok := ts.domains[udi]
	switch {
	case ok && d.contextValid:
		return ErrAlreadyInit
	case ok:
		if d.parent != ts.current {
			return ErrNotChild
		}
	default:
		if err := l.InitDomain(t, udi, opts...); err != nil {
			return err
		}
		d = ts.domains[udi]
	}
	scope := l.newScope()
	l.monitorEnter(t)
	d.scopeID = scope
	d.contextValid = true
	d.savedMask = t.SigMask()
	l.monitorExit(t)
	return l.runGuarded(t, ts, d, scope, body)
}

// runGuarded executes body under the recovery scope.
func (l *Library) runGuarded(t *proc.Thread, ts *threadState, d *Domain, scope uint64, body func() error) (err error) {
	// The scope ends with this frame: whatever happens, the domain's
	// recovery context is no longer valid afterwards (auto-Deinit). This
	// must run after the recovery handling below, which still needs the
	// context to attribute traps.
	defer func() {
		if dd, live := ts.domains[d.udi]; live && dd == d {
			d.contextValid = false
		}
	}()
	defer func() {
		r := recover()
		if r == nil {
			// Normal completion: if body forgot to exit the domain, do
			// the bookkeeping so the thread is back in the parent.
			if ts.current == d {
				l.forceExit(t, ts, d)
			}
			return
		}
		switch v := r.(type) {
		case *rewindPanic:
			if v.scope == scope {
				l.finishRewind(t, ts, d)
				err = v.exit
				return
			}
			l.unwindThrough(t, ts, d)
			panic(v)
		default:
			info, isTrap := trapInfo(r)
			if !isTrap {
				panic(r)
			}
			// Innermost guard: play the SDRaD signal handler.
			rp, fatal := l.handleTrap(t, ts, info, r)
			if fatal {
				// Root-domain fault or no reachable recovery point: the
				// raw trap continues to the process supervisor, which
				// terminates the process (default SIGSEGV disposition).
				panic(r)
			}
			if rp.scope == scope {
				l.finishRewind(t, ts, d)
				err = rp.exit
				return
			}
			l.unwindThrough(t, ts, d)
			panic(rp)
		}
	}()
	return body()
}

// trapInfo classifies a recovered panic value as a simulated trap.
func trapInfo(r any) (sig.Info, bool) {
	switch v := r.(type) {
	case *mem.Fault:
		return sig.Info{
			Signal: sig.SIGSEGV,
			Code:   int(v.Code),
			Addr:   uint64(v.Addr),
			PKey:   v.PKey,
			Cause:  v,
		}, true
	case *stack.SmashError:
		return sig.Info{Signal: sig.SIGABRT, Addr: uint64(v.CanaryAddr), Cause: v}, true
	default:
		return sig.Info{}, false
	}
}

// handleTrap is the simulation's SDRaD SIGSEGV/stack-protector handler:
// it attributes the trap to the currently executing domain and, if that
// domain is nested and guarded, performs the abnormal-exit sequence
// (paper Figure 1, steps 11-14):
//
//	⑪ halt the domain, restore the privileges of the parent domain,
//	⑫ restore the calling environment (here: aim the rewind at the
//	   recovery scope of the failing domain, or of its parent when
//	   handler-at-grandparent was requested),
//	⑬ delete the failing domain and discard its memory,
//	⑭ (the Guard then transfers control to the caller's error handling).
//
// It returns fatal=true when the trap cannot be recovered: the thread was
// executing in the root domain, or no valid recovery context exists.
func (l *Library) handleTrap(t *proc.Thread, ts *threadState, info sig.Info, cause any) (rp *rewindPanic, fatal bool) {
	// A synchronous fault with the signal blocked is fatal (sig package
	// semantics); replicate the check the kernel would perform.
	if info.Signal == sig.SIGSEGV && t.SigMask().Has(sig.SIGSEGV) {
		return nil, true
	}
	failing := ts.current
	if failing.isRoot() {
		return nil, true
	}
	if !failing.contextValid {
		return nil, true
	}
	targetScope := failing.scopeID
	if failing.handlerAtGrandparent {
		parent := failing.parent
		if parent == nil || parent.isRoot() || !parent.contextValid {
			return nil, true
		}
		targetScope = parent.scopeID
	}

	// Forensics capture must precede the discard: the enter stack, the
	// heap region, and its live-allocation count are the evidence the
	// rewind is about to destroy.
	rec := l.tel.Load()
	var rep telemetry.RewindReport
	if rec != nil {
		rep = buildRewindReport(t, ts, failing, info, cause, l.rewindLimit)
	}

	// ⑪ restore the parent's execution: pop the enter record for the
	// failing domain if it was entered.
	l.monitorEnter(t)
	if n := len(ts.enterStack); n > 0 && ts.enterStack[n-1].entered == failing {
		ts.current = ts.enterStack[n-1].prev
		ts.enterStack = ts.enterStack[:n-1]
		failing.entered = false
	}
	// Revoke the thread's span leases before the discard frees or recycles
	// the failing domain's memory: nothing issued inside the discarded
	// scope may survive the rewind.
	t.CPU().InvalidateLeases()
	// ⑬ delete the domain, discard its memory (never merged: corrupted).
	l.discardDomain(t, failing)
	seq := l.stats.Rewinds.Add(1)
	l.monitorExit(t)

	// Resilience-policy consultation (Unlimited Lives): the engine
	// records the rewind in the failing UDI's sliding window and decides
	// whether this component keeps its immediate-re-init privilege,
	// enters backoff, is quarantined, or sheds load. The decision is
	// part of the rewind's post-mortem.
	if l.policy != nil {
		dec := l.policy.OnRewind(int(failing.udi))
		if rec != nil {
			rep.PolicyState = dec.State.String()
			rep.PolicyAction = dec.Action.String()
			rep.PolicyWindowCount = dec.WindowCount
			rep.PolicyRetryAfterNs = dec.RetryAfterNs
			rec.RecordPolicy(t.ID(), int(failing.udi), int(dec.State), int(dec.Action), uint64(dec.WindowCount))
		}
	}
	if rec != nil {
		rep.Seq = seq
		rep.RewindCount = seq
		rec.RecordRewind(rep)
	}
	if l.onRewind != nil {
		l.onRewind(RewindEvent{
			Seq:        seq,
			ThreadID:   t.ID(),
			ThreadName: t.Name(),
			FailedUDI:  failing.udi,
			Signal:     info.Signal,
			Code:       info.Code,
			Addr:       info.Addr,
			PKey:       info.PKey,
		})
	}
	// Rewind budget exhausted: stop absorbing and let the process die,
	// forcing the restart that re-randomizes probabilistic defenses.
	if l.rewindLimit > 0 && seq >= l.rewindLimit {
		return nil, true
	}

	errCause, _ := cause.(error)
	return &rewindPanic{
		scope: targetScope,
		exit: &AbnormalExit{
			FailedUDI: failing.udi,
			Signal:    info.Signal,
			Code:      info.Code,
			Addr:      info.Addr,
			PKey:      info.PKey,
			Cause:     errCause,
		},
	}, false
}

// finishRewind completes a rewind at its target Guard: execution resumes
// in the guarded domain's parent with the signal mask saved at
// initialization restored (sigsetjmp/siglongjmp semantics).
func (l *Library) finishRewind(t *proc.Thread, ts *threadState, d *Domain) {
	l.monitorEnter(t)
	// If the guarded domain was still entered when the rewind started
	// deeper inside it (handler-at-grandparent), exit it now.
	if ts.current == d {
		if n := len(ts.enterStack); n > 0 && ts.enterStack[n-1].entered == d {
			ts.current = ts.enterStack[n-1].prev
			ts.enterStack = ts.enterStack[:n-1]
			d.entered = false
			d.stk.Reset()
		}
	}
	t.SetSigMask(d.savedMask)
	t.CPU().InvalidateLeases()
	l.monitorExit(t)
}

// unwindThrough performs the bookkeeping for a Guard a rewind passes
// through: if the guard's domain is still the current one it is exited
// (its state is preserved — the paper leaves destroying intermediate
// persistent domains to the developer's error handler).
func (l *Library) unwindThrough(t *proc.Thread, ts *threadState, d *Domain) {
	l.monitorEnter(t)
	if ts.current == d {
		if n := len(ts.enterStack); n > 0 && ts.enterStack[n-1].entered == d {
			ts.current = ts.enterStack[n-1].prev
			ts.enterStack = ts.enterStack[:n-1]
			d.entered = false
			if d.stk != nil {
				d.stk.Reset()
			}
		}
	}
	t.CPU().InvalidateLeases()
	l.monitorExit(t)
}

// forceExit restores the parent domain when body returned without calling
// Exit.
func (l *Library) forceExit(t *proc.Thread, ts *threadState, d *Domain) {
	l.monitorEnter(t)
	if n := len(ts.enterStack); n > 0 && ts.enterStack[n-1].entered == d {
		ts.current = ts.enterStack[n-1].prev
		ts.enterStack = ts.enterStack[:n-1]
		d.entered = false
		d.stk.Reset()
	}
	t.CPU().InvalidateLeases()
	l.monitorExit(t)
}
