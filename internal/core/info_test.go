package core

import (
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

func TestThreadDomainsSnapshot(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if got := l.ThreadDomains(th); len(got) != 0 {
			t.Fatalf("fresh thread has %d domains", len(got))
		}
		if err := l.InitDomain(th, 5, Accessible(), HeapSize(128*1024), StackSize(32*1024)); err != nil {
			return err
		}
		if err := l.InitDomain(th, 6, AsData(), Accessible()); err != nil {
			return err
		}
		// Touch domain 5's heap so allocator usage is reported.
		ptr, err := l.Malloc(th, 5, 1000)
		if err != nil {
			return err
		}
		infos := l.ThreadDomains(th)
		if len(infos) != 2 {
			t.Fatalf("domains = %d", len(infos))
		}
		byUDI := map[UDI]DomainInfo{}
		for _, in := range infos {
			byUDI[in.UDI] = in
		}
		d5 := byUDI[5]
		if d5.Kind != ExecDomain || !d5.Accessible || d5.Guarded || d5.Entered {
			t.Errorf("d5 = %+v", d5)
		}
		if d5.ParentUDI != RootUDI || d5.StackSize != 32*1024 || d5.HeapSize != 128*1024 {
			t.Errorf("d5 geometry = %+v", d5)
		}
		if d5.HeapUsed < 1000 || d5.HeapFree == 0 {
			t.Errorf("d5 heap usage = %d used / %d free", d5.HeapUsed, d5.HeapFree)
		}
		d6 := byUDI[6]
		if d6.Kind != DataDomain {
			t.Errorf("d6 = %+v", d6)
		}
		// Policy is intact afterwards (info walk raised keys internally).
		if ad, _ := mem.PKRURights(th.CPU().PKRU(), l.monitorKey); !ad {
			t.Error("monitor key leaked accessible after ThreadDomains")
		}
		return l.Free(th, 5, ptr)
	})
}

func TestThreadDomainsGuardedFlag(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		return l.Guard(th, 1, func() error {
			for _, in := range l.ThreadDomains(th) {
				if in.UDI == 1 && !in.Guarded {
					t.Error("guarded domain not reported as guarded")
				}
			}
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			for _, in := range l.ThreadDomains(th) {
				if in.UDI == 1 && !in.Entered {
					t.Error("entered domain not reported as entered")
				}
			}
			return l.Exit(th)
		})
	})
}
