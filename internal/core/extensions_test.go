package core

import (
	"errors"
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
)

// triggerRewind runs a guarded fault on domain udi.
func triggerRewind(t *testing.T, l *Library, th *proc.Thread, udi UDI) *AbnormalExit {
	t.Helper()
	err := l.Guard(th, udi, func() error {
		if err := l.Enter(th, udi); err != nil {
			return err
		}
		th.CPU().WriteU8(0xDEAD0000, 1)
		return nil
	})
	var abn *AbnormalExit
	if !errors.As(err, &abn) {
		t.Fatalf("expected abnormal exit, got %v", err)
	}
	return abn
}

func TestRewindObserverReceivesEvents(t *testing.T) {
	var events []RewindEvent
	p := proc.NewProcess("obs", proc.WithSeed(7))
	l, err := Setup(p, WithRewindObserver(func(e RewindEvent) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	run(t, p, func(th *proc.Thread) error {
		triggerRewind(t, l, th, 1)
		triggerRewind(t, l, th, 2)
		return nil
	})
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("seq = %d, %d", events[0].Seq, events[1].Seq)
	}
	if events[0].FailedUDI != 1 || events[1].FailedUDI != 2 {
		t.Errorf("udis = %d, %d", events[0].FailedUDI, events[1].FailedUDI)
	}
	if events[0].Signal != sig.SIGSEGV || events[0].ThreadName != "main" {
		t.Errorf("event = %+v", events[0])
	}
}

func TestRewindLimitForcesRestart(t *testing.T) {
	// §VI: after the configured number of rewinds, the process must be
	// terminated (and restarted by its supervisor) instead of absorbing
	// further attacks — protection for probabilistic defenses.
	p := proc.NewProcess("limit", proc.WithSeed(7))
	l, err := Setup(p, WithRewindLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	err = p.Attach("main", func(th *proc.Thread) error {
		// Two rewinds absorbed normally.
		triggerRewind(t, l, th, 1)
		triggerRewind(t, l, th, 2)
		// The third hits the limit: the fault escapes to the supervisor.
		gerr := l.Guard(th, 3, func() error {
			if err := l.Enter(th, 3); err != nil {
				return err
			}
			th.CPU().WriteU8(0xDEAD0000, 1)
			return nil
		})
		t.Errorf("unreachable: guard returned %v", gerr)
		return nil
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want crash", err)
	}
	if !p.Killed() {
		t.Error("process survived past the rewind limit")
	}
	if got := l.Stats().Rewinds.Load(); got != 3 {
		t.Errorf("rewinds = %d", got)
	}
}

func TestWRPKRULockdownBlocksApplicationWrites(t *testing.T) {
	// R4: application code must not be able to forge PKRU values. The
	// simulation models the binary-inspection guarantee by panicking on
	// WRPKRU from non-monitor code.
	p, _ := newLib(t)
	defer func() {
		if r := recover(); r == nil {
			t.Error("application WRPKRU did not panic")
		}
	}()
	_ = p.Attach("main", func(th *proc.Thread) error {
		th.CPU().WRPKRU(mem.PKRUAllowAll) // forbidden
		return nil
	})
}

func TestWRPKRULockdownForeignToken(t *testing.T) {
	p, _ := newLib(t)
	defer func() {
		if r := recover(); r == nil {
			t.Error("foreign-token WRPKRU did not panic")
		}
	}()
	_ = p.Attach("main", func(th *proc.Thread) error {
		th.CPU().MonitorWRPKRU(0xBAD70CE4, mem.PKRUAllowAll)
		return nil
	})
}

func TestWRPKRULockOnce(t *testing.T) {
	as := mem.NewAddressSpace()
	c := as.NewCPU()
	if !c.LockWRPKRU(1) {
		t.Fatal("first lock failed")
	}
	if c.LockWRPKRU(2) {
		t.Fatal("relock succeeded")
	}
	if !c.WRPKRULocked() {
		t.Fatal("not locked")
	}
	// The original token still works.
	c.MonitorWRPKRU(1, mem.PKRUAllowAll)
	if c.PKRU() != mem.PKRUAllowAll {
		t.Error("monitor write did not apply")
	}
}

func TestDomainIsolationSurvivesLockdown(t *testing.T) {
	// End-to-end sanity: the whole Guard/Enter/Exit/rewind flow works
	// with the lockdown active (it is always active after Setup).
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		if !th.CPU().WRPKRULocked() {
			t.Error("lockdown not active after Setup")
		}
		return l.Guard(th, 1, func() error {
			if err := l.Enter(th, 1); err != nil {
				return err
			}
			return l.Exit(th)
		})
	})
}

func TestThreadExitReleasesDomainKeys(t *testing.T) {
	// Regression: short-lived threads with nested domains must not leak
	// protection keys — thread exit runs the SDRaD destructor (the
	// pthread TLS destructor analog).
	p, l := newLib(t)
	for gen := 0; gen < 10; gen++ {
		h := p.Spawn("ephemeral", func(th *proc.Thread) error {
			// Each generation claims several keys.
			for udi := UDI(1); udi <= 4; udi++ {
				if err := l.Guard(th, udi, func() error {
					if err := l.Enter(th, udi); err != nil {
						return err
					}
					return l.Exit(th)
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err := h.Join(); err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
	}
	// 10 generations x 4 domains = 40 inits; without the destructor the
	// 15-key pool would have been exhausted after the first generations.
	if got := l.Stats().Inits.Load(); got != 40 {
		t.Errorf("inits = %d", got)
	}
}

func TestThreadExitKeepsDataDomains(t *testing.T) {
	// Data domains are process-global: the creating thread's exit must
	// not tear them down.
	p, l := newLib(t)
	var shared mem.Addr
	h := p.Spawn("creator", func(th *proc.Thread) error {
		if err := l.InitDomain(th, 7, AsData(), Accessible()); err != nil {
			return err
		}
		ptr, err := l.Malloc(th, 7, 16)
		if err != nil {
			return err
		}
		th.CPU().WriteU64(ptr, 0xDA7A)
		shared = ptr
		return nil
	})
	if err := h.Join(); err != nil {
		t.Fatal(err)
	}
	h2 := p.Spawn("consumer", func(th *proc.Thread) error {
		if got := th.CPU().ReadU64(shared); got != 0xDA7A {
			t.Errorf("shared data = %#x", got)
		}
		return l.Free(th, 7, shared)
	})
	if err := h2.Join(); err != nil {
		t.Fatal(err)
	}
}
