package core

import (
	"errors"
	"testing"

	"sdrad/internal/mem"
	"sdrad/internal/proc"
	"sdrad/internal/sig"
)

// TestRewindDuringExit injects a fault that fires on Exit's first memory
// access — mid domain-teardown, while the victim is still the current
// domain. The rewind must absorb it like any in-domain fault: the Guard
// reports an abnormal exit of the victim and the library keeps working.
func TestRewindDuringExit(t *testing.T) {
	p, l := newLib(t)
	run(t, p, func(th *proc.Thread) error {
		c := th.CPU()
		const victim = UDI(5)
		gerr := l.Guard(th, victim, func() error {
			if err := l.Enter(th, victim); err != nil {
				return err
			}
			c.SetFaultInjector(func(addr mem.Addr, kind mem.AccessKind) *mem.Fault {
				return &mem.Fault{Kind: kind, Code: mem.CodePkuErr, PKey: l.RootKey()}
			})
			return l.Exit(th)
		}, Accessible())
		if c.FaultInjectorArmed() {
			c.SetFaultInjector(nil)
			t.Fatal("injector never fired during Exit")
		}
		var abn *AbnormalExit
		if !errors.As(gerr, &abn) {
			t.Fatalf("guard returned %v, want abnormal exit", gerr)
		}
		if abn.FailedUDI != victim {
			t.Errorf("failed domain %d, want %d", abn.FailedUDI, victim)
		}
		if abn.Signal != sig.SIGSEGV || abn.Code != int(mem.CodePkuErr) {
			t.Errorf("oracle %v code=%d, want SIGSEGV/SEGV_PKUERR", abn.Signal, abn.Code)
		}
		if got := l.Stats().Rewinds.Load(); got != 1 {
			t.Errorf("rewinds = %d, want 1", got)
		}
		if got := l.Current(th); got != RootUDI {
			t.Errorf("current = %d after rewind, want root", got)
		}
		// The library must still run guarded domains normally.
		return l.Guard(th, UDI(6), func() error {
			if err := l.Enter(th, UDI(6)); err != nil {
				return err
			}
			return l.Exit(th)
		}, Accessible())
	})
}

// TestRewindLimitExhausted exercises the §VI rewind budget: with
// WithRewindLimit(2), the first fault is absorbed but the second hits the
// limit mid-campaign and the process dies instead of rewinding — the
// restart that re-randomizes probabilistic defenses.
func TestRewindLimitExhausted(t *testing.T) {
	p := proc.NewProcess("test", proc.WithSeed(7))
	l, err := Setup(p, WithRewindLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	const victim = UDI(5)
	attack := func(th *proc.Thread) error {
		return l.Guard(th, victim, func() error {
			if err := l.Enter(th, victim); err != nil {
				return err
			}
			th.CPU().WriteU64(l.MonitorBase(), 0xdead)
			return errors.New("unreachable")
		}, Accessible())
	}
	err = p.Attach("main", func(th *proc.Thread) error {
		gerr := attack(th)
		var abn *AbnormalExit
		if !errors.As(gerr, &abn) {
			t.Errorf("first fault: guard returned %v, want absorbed abnormal exit", gerr)
		}
		if got := l.Stats().Rewinds.Load(); got != 1 {
			t.Errorf("rewinds after first fault = %d, want 1", got)
		}
		// Second fault exhausts the budget: the guard never returns.
		_ = attack(th)
		t.Error("execution continued past the rewind limit")
		return nil
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("attach returned %v, want crash", err)
	}
	if !p.Killed() {
		t.Error("process survived an exhausted rewind budget")
	}
	if got := l.Stats().Rewinds.Load(); got != 2 {
		t.Errorf("rewinds = %d, want 2 (limit)", got)
	}
}

// TestDoubleFaultInRewindObserver documents the semantics of a fault
// raised inside the rewind observer itself: the observer runs on the
// victim thread mid-recovery, so a second fault there cannot be rewound —
// it escapes to the supervisor and kills the process, like a SIGSEGV
// inside a SIGSEGV handler.
func TestDoubleFaultInRewindObserver(t *testing.T) {
	p := proc.NewProcess("test", proc.WithSeed(7))
	var cpu *mem.CPU
	l, err := Setup(p, WithRewindObserver(func(RewindEvent) {
		_ = cpu.ReadU8(mem.Addr(1) << 40) // unmapped: double fault
	}))
	if err != nil {
		t.Fatal(err)
	}
	const victim = UDI(5)
	err = p.Attach("main", func(th *proc.Thread) error {
		cpu = th.CPU()
		gerr := l.Guard(th, victim, func() error {
			if err := l.Enter(th, victim); err != nil {
				return err
			}
			th.CPU().WriteU64(l.MonitorBase(), 0xdead)
			return errors.New("unreachable")
		}, Accessible())
		t.Errorf("guard returned %v, but the double fault should have killed the process", gerr)
		return nil
	})
	var crash *proc.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("attach returned %v, want crash", err)
	}
	if crash.Info.Signal != sig.SIGSEGV {
		t.Errorf("crash signal %v, want SIGSEGV", crash.Info.Signal)
	}
	if !p.Killed() {
		t.Error("process survived a double fault")
	}
	// The first rewind completed its bookkeeping before the observer ran.
	if got := l.Stats().Rewinds.Load(); got != 1 {
		t.Errorf("rewinds = %d, want 1", got)
	}
}
