// Package core implements SDRaD — Secure Domain Rewind and Discard — the
// primary contribution of the reproduced paper, over the simulated PKU
// substrate of internal/mem.
//
// The library compartmentalizes a simulated process into isolated domains:
// a root domain holding all initial memory and nested execution/data
// domains, each tagged with its own protection key. A reference monitor
// mediates domain life-cycle operations (Table I of the paper: init,
// malloc, free, dprotect, enter, exit, destroy, deinit) and performs
// secure rewinding: when a run-time defense detects an attack inside a
// nested domain — a protection-key violation, a plain segfault, or a
// smashed stack canary — the monitor discards the domain's memory and
// unwinds the victim thread to the recovery point established when the
// domain was initialized, so the application can keep serving.
//
// # Go adaptation of the setjmp/longjmp recovery point
//
// C SDRaD's sdrad_init() saves an execution context and "returns twice":
// normally at initialization, and again after an abnormal domain exit. Go
// cannot re-enter an unwound stack frame, so the recovery point is scoped
// instead: Guard(t, udi, opts, body) initializes the domain, runs body
// (which enters the domain, calls the isolated function, and exits), and
// — when an abnormal exit targets this domain's recovery point — recovers
// the unwinding panic and returns an *AbnormalExit carrying the failed
// domain index, exactly the information the C API encodes in the second
// return of sdrad_init. Rewinds that target an outer recovery point
// (handler-at-grandparent configurations, Figure 2 of the paper) pass
// through inner Guards untouched apart from bookkeeping.
package core

import (
	"errors"
	"fmt"

	"sdrad/internal/sig"
)

// Errors returned by the SDRaD API.
var (
	// ErrAlreadyInit: the domain index is already initialized with a
	// valid recovery context on this thread (paper: "A domain can only be
	// initialized once per thread").
	ErrAlreadyInit = errors.New("sdrad: domain already initialized")
	// ErrUnknownDomain: no such domain index.
	ErrUnknownDomain = errors.New("sdrad: unknown domain")
	// ErrBadDomainKind: operation not applicable to this domain kind
	// (e.g. entering a data domain).
	ErrBadDomainKind = errors.New("sdrad: operation not valid for this domain kind")
	// ErrNotChild: the operation requires an accessible child of the
	// current domain.
	ErrNotChild = errors.New("sdrad: domain is not an accessible child of the current domain")
	// ErrNoContext: the domain has no valid recovery context (it must be
	// (re-)initialized inside a Guard before entering).
	ErrNoContext = errors.New("sdrad: domain has no valid recovery context")
	// ErrRootOperation: the operation cannot target the root domain.
	ErrRootOperation = errors.New("sdrad: operation not permitted on the root domain")
	// ErrDomainBusy: the domain is currently entered.
	ErrDomainBusy = errors.New("sdrad: domain is currently executing")
	// ErrNotEntered: Exit called with no entered nested domain.
	ErrNotEntered = errors.New("sdrad: no nested domain to exit")
	// ErrNoGrandparent: handler-at-grandparent requested but the parent
	// is the root domain, which has no recovery point.
	ErrNoGrandparent = errors.New("sdrad: handler-at-grandparent requires a non-root parent")
	// ErrUDIInUse: the index is taken by a global data domain.
	ErrUDIInUse = errors.New("sdrad: domain index in use")
	// ErrHeapExhausted wraps allocator out-of-memory conditions.
	ErrHeapExhausted = errors.New("sdrad: domain heap exhausted")
	// ErrTooManyDomains: no protection keys left for a new domain.
	ErrTooManyDomains = errors.New("sdrad: protection keys exhausted")
	// ErrDomainQuarantined: the resilience-policy engine refused to
	// re-initialize the domain (backoff hold-off, quarantine cool-down,
	// or load shedding). Match with errors.Is; retrieve the hold-off
	// with errors.As on *QuarantineError.
	ErrDomainQuarantined = errors.New("sdrad: domain re-initialization denied by resilience policy")
)

// QuarantineError carries the policy decision behind a denied domain
// re-initialization. It unwraps to ErrDomainQuarantined.
type QuarantineError struct {
	// UDI is the denied domain.
	UDI UDI
	// State names the ladder state ("backoff", "quarantined",
	// "shedding").
	State string
	// RetryAfterNs is how long admission stays denied; 0 means the
	// denial is permanent (shedding).
	RetryAfterNs int64
}

// Error implements error.
func (e *QuarantineError) Error() string {
	if e.RetryAfterNs > 0 {
		return fmt.Sprintf("sdrad: domain %d re-initialization denied (%s, retry after %dns)",
			e.UDI, e.State, e.RetryAfterNs)
	}
	return fmt.Sprintf("sdrad: domain %d re-initialization denied (%s)", e.UDI, e.State)
}

// Unwrap makes errors.Is(err, ErrDomainQuarantined) match.
func (e *QuarantineError) Unwrap() error { return ErrDomainQuarantined }

// AbnormalExit reports that a guarded domain suffered an abnormal domain
// exit: a run-time defense detected an attack, the domain's memory was
// discarded, and execution was rewound to the recovery point that caught
// this value. It implements error; retrieve it with errors.As.
type AbnormalExit struct {
	// FailedUDI is the domain that was executing when the attack was
	// detected (the C API's second sdrad_init return value).
	FailedUDI UDI
	// Signal and Code describe the detection oracle: SIGSEGV with
	// SEGV_PKUERR/SEGV_MAPERR/SEGV_ACCERR for memory faults, SIGABRT for
	// stack-canary violations.
	Signal sig.Signal
	Code   int
	// Addr is the faulting address, when applicable.
	Addr uint64
	// PKey is the protection key involved in a SEGV_PKUERR.
	PKey int
	// Cause carries the underlying trap value.
	Cause error
}

// Error implements error.
func (e *AbnormalExit) Error() string {
	return fmt.Sprintf("sdrad: abnormal exit of domain %d (%v code=%d addr=0x%x)",
		e.FailedUDI, e.Signal, e.Code, e.Addr)
}

// Unwrap exposes the underlying trap for errors.Is/As chains.
func (e *AbnormalExit) Unwrap() error { return e.Cause }
