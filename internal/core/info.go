package core

import (
	"sdrad/internal/mem"
	"sdrad/internal/proc"
)

// DomainInfo is an observability snapshot of one domain, for debugging
// and operational dashboards (complementing the §VI incident feed).
type DomainInfo struct {
	UDI        UDI
	Kind       Kind
	Key        int
	ParentUDI  UDI
	Accessible bool
	// Guarded reports whether a recovery context is currently valid.
	Guarded bool
	// Entered reports whether the thread is executing inside the domain.
	Entered bool
	// StackSize and HeapSize are the provisioned region sizes.
	StackSize uint64
	HeapSize  uint64
	// HeapUsed and HeapFree are allocator-reported payload bytes; zero
	// until the lazily-built heap exists.
	HeapUsed uint64
	HeapFree uint64
}

// ThreadDomains returns snapshots of every execution domain the calling
// thread has initialized (excluding the root), plus every global data
// domain, in unspecified order.
func (l *Library) ThreadDomains(t *proc.Thread) []DomainInfo {
	ts := l.state(t)
	l.monitorEnter(t)
	defer l.monitorExit(t)

	var out []DomainInfo
	for _, d := range ts.domains {
		if d.isRoot() {
			continue
		}
		out = append(out, l.domainInfo(t, d))
	}
	l.mu.Lock()
	dataDomains := make([]*Domain, 0, len(l.dataDomains))
	for _, d := range l.dataDomains {
		dataDomains = append(dataDomains, d)
	}
	l.mu.Unlock()
	for _, d := range dataDomains {
		out = append(out, l.domainInfo(t, d))
	}
	return out
}

// domainInfo builds one snapshot; the monitor raises the domain key to
// read allocator state.
func (l *Library) domainInfo(t *proc.Thread, d *Domain) DomainInfo {
	info := DomainInfo{
		UDI:        d.udi,
		Kind:       d.kind,
		Key:        d.key,
		Accessible: d.accessible,
		Guarded:    d.contextValid,
		Entered:    d.entered,
		StackSize:  d.stackSize,
		HeapSize:   d.heapSize,
	}
	if d.parent != nil {
		info.ParentUDI = d.parent.udi
	}
	if d.heap != nil {
		c := t.CPU()
		l.wrpkru(t, mem.PKRUAllow(c.PKRU(), d.key, true))
		// Usage walks allocator metadata and can trap on a corrupted heap;
		// unlock via defer so the lock does not survive the unwind.
		used, free := func() (uint64, uint64) {
			d.lockHeap()
			defer d.unlockHeap()
			u, f, _, _ := d.heap.Usage(c)
			return u, f
		}()
		info.HeapUsed = used
		info.HeapFree = free
	}
	return info
}
