// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark core
// workload machinery the paper uses to evaluate Memcached (§V-A): a load
// phase that inserts a keyspace of fixed-size values and a run phase that
// issues a read/update mix with Zipfian-distributed keys, reporting
// throughput and latency percentiles.
//
// The paper's configuration — 1 KiB values, 95/5 read/update, Zipfian
// request distribution — is the default.
package ycsb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// DB is the key-value interface the workload drives; adapters bridge it
// to the system under test.
type DB interface {
	Insert(key string, value []byte) error
	Read(key string) error
	Update(key string, value []byte) error
}

// Config is a YCSB core workload description.
type Config struct {
	// Records is the number of keys loaded (paper: 1e7, scaled down for
	// the simulated substrate).
	Records int
	// Operations is the number of run-phase operations.
	Operations int
	// ReadProportion is the fraction of reads (paper: 0.95).
	ReadProportion float64
	// ValueSize is the value payload size (paper: 1 KiB).
	ValueSize int
	// Distribution selects the request distribution: "zipfian" (default)
	// or "uniform".
	Distribution string
	// ZipfianTheta is the Zipfian skew parameter (default 0.99, YCSB's
	// constant). Higher values concentrate more of the load on fewer
	// keys; cluster hot-key experiments crank it up to make the hot set
	// unmistakable.
	ZipfianTheta float64
	// Seed fixes the generator.
	Seed int64
	// Threads is the number of client threads (each gets its own DB via
	// the factory passed to Run).
	Threads int
}

func (c *Config) setDefaults() {
	if c.Records == 0 {
		c.Records = 10000
	}
	if c.Operations == 0 {
		c.Operations = 100000
	}
	if c.ReadProportion == 0 {
		c.ReadProportion = 0.95
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.Distribution == "" {
		c.Distribution = "zipfian"
	}
	if c.ZipfianTheta == 0 {
		c.ZipfianTheta = zipfianConstant
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
}

// Key formats record i as a YCSB-style key.
func Key(i int) string { return fmt.Sprintf("user%010d", i) }

// Value builds the deterministic payload for a record.
func Value(i, size int) []byte {
	v := make([]byte, size)
	pat := []byte(fmt.Sprintf("v%08d-", i))
	for j := range v {
		v[j] = pat[j%len(pat)]
	}
	return v
}

// Stats reports one phase's outcome.
type Stats struct {
	Phase      string
	Operations int
	Errors     int
	Elapsed    time.Duration
	// Throughput is operations per second.
	Throughput float64
	// CPUSeconds is the user+system CPU time the whole process consumed
	// during this phase (0 where the platform offers no accounting).
	// Overhead comparisons prefer CPUSeconds/Operations over Throughput
	// because it is immune to preemption by unrelated processes.
	CPUSeconds float64
	// P50, P95, P99 are latency percentiles.
	P50, P95, P99 time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("[%s] %d ops in %v: %.0f ops/s (p50=%v p95=%v p99=%v, %d errors)",
		s.Phase, s.Operations, s.Elapsed.Round(time.Millisecond), s.Throughput,
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Errors)
}

// maxLatencySamples bounds the latency reservoir per thread.
const maxLatencySamples = 4096

// Runner executes the workload phases against DB instances produced by a
// factory (one DB per client thread, like YCSB client threads owning a
// connection each).
type Runner struct {
	cfg Config
}

// NewRunner validates the config and builds a runner.
func NewRunner(cfg Config) (*Runner, error) {
	cfg.setDefaults()
	if cfg.ReadProportion < 0 || cfg.ReadProportion > 1 {
		return nil, errors.New("ycsb: read proportion out of range")
	}
	if cfg.Distribution != "zipfian" && cfg.Distribution != "uniform" {
		return nil, fmt.Errorf("ycsb: unknown distribution %q", cfg.Distribution)
	}
	if cfg.ZipfianTheta < 0 || cfg.ZipfianTheta >= 1 {
		// The Gray et al. generator's alpha = 1/(1-theta) needs theta in
		// (0, 1); 0 selects the YCSB default via setDefaults.
		return nil, fmt.Errorf("ycsb: zipfian theta %v out of range (0, 1)", cfg.ZipfianTheta)
	}
	return &Runner{cfg: cfg}, nil
}

// Load runs the load phase: Records inserts partitioned across Threads.
func (r *Runner) Load(factory func(thread int) DB) Stats {
	return r.runPhase("load", r.cfg.Records, factory, func(db DB, rng *rand.Rand, i int) error {
		return db.Insert(Key(i), Value(i, r.cfg.ValueSize))
	}, true)
}

// Run runs the transaction phase: Operations reads/updates with the
// configured key distribution.
func (r *Runner) Run(factory func(thread int) DB) Stats {
	gen := r.newGenerator()
	return r.runPhase("run", r.cfg.Operations, factory, func(db DB, rng *rand.Rand, _ int) error {
		idx := int(gen.next(rng))
		if rng.Float64() < r.cfg.ReadProportion {
			return db.Read(Key(idx))
		}
		return db.Update(Key(idx), Value(idx, r.cfg.ValueSize))
	}, false)
}

// runPhase fans ops out over client threads and aggregates stats.
func (r *Runner) runPhase(name string, total int, factory func(int) DB,
	op func(db DB, rng *rand.Rand, i int) error, partition bool) Stats {

	threads := r.cfg.Threads
	type threadResult struct {
		errs    int
		samples []time.Duration
	}
	results := make(chan threadResult, threads)
	cpu0 := ProcessCPUSeconds()
	start := time.Now()
	for th := 0; th < threads; th++ {
		go func(th int) {
			db := factory(th)
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(th)*7919))
			var tr threadResult
			lo := th * total / threads
			hi := (th + 1) * total / threads
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				err := op(db, rng, i)
				lat := time.Since(t0)
				if err != nil {
					tr.errs++
					continue
				}
				if len(tr.samples) < maxLatencySamples {
					tr.samples = append(tr.samples, lat)
				} else {
					// Reservoir sampling keeps the percentile estimate
					// unbiased without unbounded memory.
					j := rng.Intn(i - lo + 1)
					if j < maxLatencySamples {
						tr.samples[j] = lat
					}
				}
			}
			results <- tr
		}(th)
	}
	var all []time.Duration
	errs := 0
	for th := 0; th < threads; th++ {
		tr := <-results
		errs += tr.errs
		all = append(all, tr.samples...)
	}
	elapsed := time.Since(start)
	cpu := ProcessCPUSeconds() - cpu0
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return all[idx]
	}
	done := total - errs
	return Stats{
		Phase:      name,
		Operations: done,
		Errors:     errs,
		Elapsed:    elapsed,
		Throughput: float64(done) / elapsed.Seconds(),
		CPUSeconds: cpu,
		P50:        pct(0.50),
		P95:        pct(0.95),
		P99:        pct(0.99),
	}
}

// KeyChooser returns an independent record-index chooser following the
// configured distribution, for external executors that drive the
// workload on their own threads (the benchmark harness's inline mode).
func (r *Runner) KeyChooser() func(rng *rand.Rand) int {
	g := r.newGenerator()
	return func(rng *rand.Rand) int { return int(g.next(rng)) }
}

// Config returns the runner's effective configuration (with defaults
// applied).
func (r *Runner) Config() Config { return r.cfg }

// Op is one planned transaction-phase operation: a read or an update of
// the record at Index.
type Op struct {
	Read  bool
	Index int
}

// OpPlanner returns a batch-granular KeyChooser: each call fills ops
// with operations following the configured read proportion and key
// distribution. Executors that pipeline several operations per network
// round plan a whole burst up front, then issue it as one unit. Like
// KeyChooser, the planner may be shared across threads as long as each
// thread passes its own rng.
func (r *Runner) OpPlanner() func(rng *rand.Rand, ops []Op) {
	g := r.newGenerator()
	p := r.cfg.ReadProportion
	return func(rng *rand.Rand, ops []Op) {
		for i := range ops {
			ops[i] = Op{Read: rng.Float64() < p, Index: int(g.next(rng))}
		}
	}
}

// generator produces record indices in [0, Records).
type generator struct {
	uniform bool
	n       uint64
	z       *zipfian
}

func (r *Runner) newGenerator() *generator {
	if r.cfg.Distribution == "uniform" {
		return &generator{uniform: true, n: uint64(r.cfg.Records)}
	}
	return &generator{n: uint64(r.cfg.Records), z: newZipfian(uint64(r.cfg.Records), r.cfg.ZipfianTheta)}
}

// ZipfianChooser returns a self-contained seeded Zipfian record chooser:
// scrambled ranks (hot keys spread over the keyspace, as in YCSB) with a
// configurable skew. theta <= 0 selects the YCSB default (0.99); theta
// must stay below 1. Unlike Runner.KeyChooser the rng is owned by the
// chooser, so callers that only need a key stream — the cluster load
// generator, hot-key experiments — don't thread one through. Not safe
// for concurrent use; give each goroutine its own chooser.
func ZipfianChooser(records int, theta float64, seed int64) func() int {
	if theta <= 0 {
		theta = zipfianConstant
	}
	g := &generator{n: uint64(records), z: newZipfian(uint64(records), theta)}
	rng := rand.New(rand.NewSource(seed))
	return func() int { return int(g.next(rng)) }
}

func (g *generator) next(rng *rand.Rand) uint64 {
	if g.uniform {
		return uint64(rng.Int63n(int64(g.n)))
	}
	// Scrambled Zipfian, as in YCSB: hash the rank so hot keys spread
	// over the keyspace.
	return fnv64(g.z.next(rng)) % g.n
}

// zipfianConstant is YCSB's default theta.
const zipfianConstant = 0.99

// zipfian is the Gray et al. bounded Zipfian generator used by YCSB.
type zipfian struct {
	items                            uint64
	theta, alpha, zetan, eta, zeta2t float64
}

func newZipfian(items uint64, theta float64) *zipfian {
	z := &zipfian{items: items, theta: theta}
	z.zeta2t = zetaStatic(2, theta)
	z.zetan = zetaStatic(items, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - z.zeta2t/z.zetan)
	return z
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^t.
func zetaStatic(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// fnv64 is FNV-1a over the 8 little-endian bytes of v.
func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
