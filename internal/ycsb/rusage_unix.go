//go:build unix

package ycsb

import "syscall"

// ProcessCPUSeconds returns the user+system CPU time consumed by this
// process so far. Phase deltas of this value are far more stable than
// wall clock on oversubscribed machines (CI runners, single-vCPU VMs):
// preemption by unrelated processes stretches elapsed time but does not
// charge CPU to us, while extra work done by the code under test does.
func ProcessCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	tv := func(t syscall.Timeval) float64 {
		return float64(t.Sec) + float64(t.Usec)/1e6
	}
	return tv(ru.Utime) + tv(ru.Stime)
}
