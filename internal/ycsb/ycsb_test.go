package ycsb

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// mapDB is an in-memory reference DB.
type mapDB struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapDB() *mapDB { return &mapDB{m: make(map[string][]byte)} }

func (d *mapDB) Insert(key string, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[key] = value
	return nil
}

func (d *mapDB) Read(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.m[key]
	if !ok {
		return errMiss
	}
	return nil
}

func (d *mapDB) Update(key string, value []byte) error { return d.Insert(key, value) }

var errMiss = &missError{}

type missError struct{}

func (*missError) Error() string { return "miss" }

func TestConfigValidation(t *testing.T) {
	if _, err := NewRunner(Config{ReadProportion: 1.5}); err == nil {
		t.Error("bad proportion accepted")
	}
	if _, err := NewRunner(Config{Distribution: "pareto"}); err == nil {
		t.Error("bad distribution accepted")
	}
	if _, err := NewRunner(Config{}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestLoadThenRunNoMisses(t *testing.T) {
	r, err := NewRunner(Config{Records: 500, Operations: 2000, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	db := newMapDB()
	factory := func(int) DB { return db }
	load := r.Load(factory)
	if load.Errors != 0 || load.Operations != 500 {
		t.Fatalf("load = %+v", load)
	}
	if len(db.m) != 500 {
		t.Fatalf("records = %d", len(db.m))
	}
	run := r.Run(factory)
	if run.Errors != 0 {
		t.Fatalf("run errors = %d (reads of unloaded keys?)", run.Errors)
	}
	if run.Operations != 2000 {
		t.Errorf("ops = %d", run.Operations)
	}
	if run.Throughput <= 0 || run.Elapsed <= 0 {
		t.Error("throughput/elapsed not computed")
	}
}

func TestKeyAndValueDeterministic(t *testing.T) {
	if Key(42) != "user0000000042" {
		t.Errorf("key = %q", Key(42))
	}
	v1, v2 := Value(7, 100), Value(7, 100)
	if string(v1) != string(v2) || len(v1) != 100 {
		t.Error("value not deterministic")
	}
}

func TestZipfianBounds(t *testing.T) {
	z := newZipfian(1000, zipfianConstant)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := z.next(rng)
		if v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	// The hottest item should receive far more than its uniform share.
	const n = 1000
	z := newZipfian(n, zipfianConstant)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.next(rng)]++
	}
	if counts[0] < draws/n*20 {
		t.Errorf("rank-0 count %d not skewed (uniform share %d)", counts[0], draws/n)
	}
	// And ranks should be roughly monotone: rank 0 >> rank 500.
	if counts[0] < counts[500]*10 {
		t.Errorf("head %d vs middle %d insufficiently skewed", counts[0], counts[500])
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	// After scrambling, the hottest key should NOT be key 0 specifically;
	// hotness spreads over the keyspace but remains concentrated.
	r, _ := NewRunner(Config{Records: 1000})
	g := r.newGenerator()
	rng := rand.New(rand.NewSource(3))
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		counts[g.next(rng)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 { // the hottest key gets ~10% with theta .99 at n=1000
		t.Errorf("max count %d: distribution not concentrated", max)
	}
	if len(counts) < 400 {
		t.Errorf("only %d distinct keys drawn", len(counts))
	}
}

func TestUniformGenerator(t *testing.T) {
	r, _ := NewRunner(Config{Records: 100, Distribution: "uniform"})
	g := r.newGenerator()
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := g.next(rng)
		if v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("uniform count[%d] = %d", i, c)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Phase: "run", Operations: 10, Elapsed: time.Second, Throughput: 10}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestErrorsCounted(t *testing.T) {
	r, _ := NewRunner(Config{Records: 100, Operations: 100})
	// Empty DB: every read misses.
	db := newMapDB()
	run := r.Run(func(int) DB { return db })
	if run.Errors == 0 {
		t.Error("misses not counted as errors")
	}
}
