package ycsb

import (
	"math"
	"sort"
	"testing"
)

// TestZipfianChooserDistribution checks the seeded chooser against the
// closed-form Zipfian head probabilities: the hottest key's observed
// share must track 1/zeta(n, theta), and skew must grow with theta.
func TestZipfianChooserDistribution(t *testing.T) {
	const samples = 200000
	cases := []struct {
		name    string
		records int
		theta   float64
	}{
		{"default-theta", 1000, 0}, // 0 selects 0.99
		{"mild-skew", 1000, 0.5},
		{"ycsb-constant", 1000, 0.99},
		{"small-keyspace", 64, 0.99},
	}
	topShare := map[string]float64{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			choose := ZipfianChooser(tc.records, tc.theta, 42)
			counts := make([]int, tc.records)
			for i := 0; i < samples; i++ {
				k := choose()
				if k < 0 || k >= tc.records {
					t.Fatalf("key %d out of range [0, %d)", k, tc.records)
				}
				counts[k]++
			}
			sort.Sort(sort.Reverse(sort.IntSlice(counts)))
			theta := tc.theta
			if theta <= 0 {
				theta = 0.99
			}
			// Expected share of the hottest rank is 1/zeta_n(theta); the
			// scramble moves which key is hottest but not how hot it is.
			want := 1 / zetaStatic(uint64(tc.records), theta)
			got := float64(counts[0]) / samples
			if math.Abs(got-want) > 0.35*want+0.005 {
				t.Errorf("top-1 share %.4f, want ~%.4f", got, want)
			}
			topShare[tc.name] = got
		})
	}
	if topShare["mild-skew"] >= topShare["ycsb-constant"] {
		t.Errorf("skew not monotonic in theta: top-1 %.4f (theta 0.5) >= %.4f (theta 0.99)",
			topShare["mild-skew"], topShare["ycsb-constant"])
	}
}

// TestZipfianChooserSeeded proves the chooser is a pure function of
// (records, theta, seed).
func TestZipfianChooserSeeded(t *testing.T) {
	a := ZipfianChooser(512, 0.9, 7)
	b := ZipfianChooser(512, 0.9, 7)
	c := ZipfianChooser(512, 0.9, 8)
	diverged := false
	for i := 0; i < 1000; i++ {
		av, bv, cv := a(), b(), c()
		if av != bv {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, av, bv)
		}
		if av != cv {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced an identical 1000-draw stream")
	}
}

// TestZipfianThetaConfig exercises the Runner-level plumbing: an explicit
// theta flows to the generator, and invalid values are rejected.
func TestZipfianThetaConfig(t *testing.T) {
	if _, err := NewRunner(Config{ZipfianTheta: 1.0}); err == nil {
		t.Error("theta 1.0 accepted; generator needs theta < 1")
	}
	if _, err := NewRunner(Config{ZipfianTheta: -0.1}); err == nil {
		t.Error("negative theta accepted")
	}
	r, err := NewRunner(Config{Records: 100, ZipfianTheta: 0.5})
	if err != nil {
		t.Fatalf("valid theta rejected: %v", err)
	}
	if got := r.Config().ZipfianTheta; got != 0.5 {
		t.Errorf("theta not preserved: %v", got)
	}
	r, err = NewRunner(Config{Records: 100})
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if got := r.Config().ZipfianTheta; got != zipfianConstant {
		t.Errorf("default theta %v, want %v", got, zipfianConstant)
	}
}
