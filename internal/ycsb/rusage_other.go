//go:build !unix

package ycsb

// ProcessCPUSeconds is unavailable off unix; callers treat 0 deltas as
// "no CPU accounting" and fall back to wall-clock throughput.
func ProcessCPUSeconds() float64 { return 0 }
