package tlsf

import (
	"errors"
	"math/rand"
	"testing"

	"sdrad/internal/mem"
)

func TestReallocNilAndZero(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, err := h.Realloc(cpu, 0, 100) // == Alloc
	if err != nil || p == 0 {
		t.Fatalf("realloc(0, 100) = %v, %v", p, err)
	}
	q, err := h.Realloc(cpu, p, 0) // == Free
	if err != nil || q != 0 {
		t.Fatalf("realloc(p, 0) = %v, %v", q, err)
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
}

func TestReallocGrowInPlace(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, _ := h.Alloc(cpu, 64)
	cpu.Memset(p, 0xAA, 64)
	// The neighbour is the big free tail: growth happens in place.
	q, err := h.Realloc(cpu, p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("grow did not reuse block: %#x -> %#x", uint64(p), uint64(q))
	}
	if h.UsableSize(cpu, q) < 4096 {
		t.Errorf("usable = %d", h.UsableSize(cpu, q))
	}
	for i := 0; i < 64; i++ {
		if cpu.ReadU8(q+mem.Addr(i)) != 0xAA {
			t.Fatal("payload lost on in-place grow")
		}
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
}

func TestReallocGrowByMove(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, _ := h.Alloc(cpu, 64)
	barrier, _ := h.Alloc(cpu, 64) // blocks in-place growth
	cpu.Memset(p, 0xBB, 64)
	q, err := h.Realloc(cpu, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Error("expected a move past the barrier")
	}
	for i := 0; i < 64; i++ {
		if cpu.ReadU8(q+mem.Addr(i)) != 0xBB {
			t.Fatal("payload lost on move")
		}
	}
	_ = barrier
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
}

func TestReallocShrinkReleasesSpace(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	_, free0, _, _ := h.Usage(cpu)
	p, _ := h.Alloc(cpu, 8192)
	q, err := h.Realloc(cpu, p, 64)
	if err != nil || q != p {
		t.Fatalf("shrink = %v, %v", q, err)
	}
	_, free1, _, _ := h.Usage(cpu)
	if free1 <= free0-8192 {
		t.Errorf("shrink released nothing: free %d -> %d", free0, free1)
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(cpu, q); err != nil {
		t.Fatal(err)
	}
	_, free2, _, freeBlocks := h.Usage(cpu)
	if free2 != free0 || freeBlocks != 1 {
		t.Errorf("after free: %d bytes in %d blocks, want %d in 1", free2, freeBlocks, free0)
	}
}

func TestReallocErrors(t *testing.T) {
	h, cpu := newHeap(t, 64*1024)
	p, _ := h.Alloc(cpu, 64)
	if _, err := h.Realloc(cpu, p+1, 128); !errors.Is(err, ErrBadFree) {
		t.Errorf("unaligned err = %v", err)
	}
	if _, err := h.Realloc(cpu, 0x10, 128); !errors.Is(err, ErrBadFree) {
		t.Errorf("foreign err = %v", err)
	}
	if _, err := h.Realloc(cpu, p, maxAlloc+1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge err = %v", err)
	}
	if err := h.Free(cpu, p); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Realloc(cpu, p, 128); !errors.Is(err, ErrBadFree) {
		t.Errorf("freed err = %v", err)
	}
}

func TestReallocRandomized(t *testing.T) {
	h, cpu := newHeap(t, 512*1024)
	rng := rand.New(rand.NewSource(11))
	type alloc struct {
		p   mem.Addr
		n   int
		tag byte
	}
	var live []alloc
	for i := 0; i < 2500; i++ {
		switch {
		case len(live) == 0 || rng.Intn(3) == 0:
			n := 1 + rng.Intn(1200)
			p, err := h.Alloc(cpu, uint64(n))
			if errors.Is(err, ErrOOM) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			tag := byte(i | 1)
			cpu.Memset(p, tag, n)
			live = append(live, alloc{p, n, tag})
		case rng.Intn(2) == 0:
			k := rng.Intn(len(live))
			a := live[k]
			n := 1 + rng.Intn(2400)
			p, err := h.Realloc(cpu, a.p, uint64(n))
			if errors.Is(err, ErrOOM) {
				continue
			}
			if err != nil {
				t.Fatalf("iter %d: realloc: %v", i, err)
			}
			keep := min(a.n, n)
			for j := 0; j < keep; j += max(1, keep/8) {
				if cpu.ReadU8(p+mem.Addr(j)) != a.tag {
					t.Fatalf("iter %d: payload byte %d lost across realloc", i, j)
				}
			}
			cpu.Memset(p, a.tag, n) // retag full extent
			live[k] = alloc{p, n, a.tag}
		default:
			k := rng.Intn(len(live))
			if err := h.Free(cpu, live[k].p); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%300 == 0 {
			if err := h.Check(cpu); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		}
	}
	for _, a := range live {
		if err := h.Free(cpu, a.p); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Check(cpu); err != nil {
		t.Fatal(err)
	}
	_, _, usedBlocks, freeBlocks := h.Usage(cpu)
	if usedBlocks != 0 || freeBlocks != 1 {
		t.Errorf("end state: %d used / %d free blocks", usedBlocks, freeBlocks)
	}
}
